package cpsinw

// The benchmark harness regenerates every table and figure of the paper
// (DESIGN.md section 6). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark prints the paper-style report once (on the first
// iteration) and then times the regeneration, so a single -bench run both
// reproduces the evaluation artifacts and measures the harness.

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/dict"
	"cpsinw/internal/experiments"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
	"cpsinw/internal/service"
)

var printOnce sync.Map

func printReport(b *testing.B, key, report string) {
	b.Helper()
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n%s\n", report)
	}
}

// BenchmarkTableI regenerates Table I (process steps -> defect models).
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableI()
		printReport(b, "tableI", r.Report())
	}
}

// BenchmarkTableII regenerates Table II (device parameters).
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.TableII()
		printReport(b, "tableII", r.Report())
	}
}

// BenchmarkTableIII regenerates Table III (polarity-defect detection in
// the 2-input XOR), including the analog IDDQ confirmation.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableIII(true)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "tableIII", r.Report())
	}
}

// BenchmarkFigure3 regenerates Figure 3 (GOS I-V curves, compact model +
// synthetic-TCAD cross-check).
func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(61)
		tc := experiments.Figure3TCAD()
		printReport(b, "figure3", r.Report()+fmt.Sprintf("TCAD cross-check ID(SAT): %v\n", tc))
	}
}

// BenchmarkFigure4 regenerates Figure 4 (electron density maps).
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4()
		printReport(b, "figure4", r.Report())
	}
}

// BenchmarkFigure5 regenerates Figure 5 (leakage-delay vs Vcut for the
// open polarity gates of INV, NAND and XOR).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5(experiments.Figure5Options{Points: 9})
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "figure5", r.Report())
	}
}

// BenchmarkChannelBreakMasking regenerates the section V-C masking
// measurements on the XOR2 (FO4).
func BenchmarkChannelBreakMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ChannelBreakMasking()
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "masking", r.Report())
	}
}

// BenchmarkNANDTwoPattern regenerates the section V-C NAND two-pattern
// stuck-open verification.
func BenchmarkNANDTwoPattern(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.NANDTwoPattern()
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "nand2p", r.Report())
	}
}

// BenchmarkChannelBreakAlgorithm regenerates the section V-C channel-
// break procedure validation across the benchmark suite.
func BenchmarkChannelBreakAlgorithm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ChannelBreakAlgorithm(nil)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "cbalg", r.Report())
	}
}

// BenchmarkATPGCampaign regenerates the classical-vs-extended ATPG
// comparison across the benchmark suite.
func BenchmarkATPGCampaign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.ATPGCampaign(nil)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "campaign", r.Report())
	}
}

// BenchmarkAblationPGD regenerates the drain-side asymmetry ablation.
func BenchmarkAblationPGD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationPGD(6)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "ablation", r.Report())
	}
}

// BenchmarkGOSDetect regenerates the gate-level GOS detectability study.
func BenchmarkGOSDetect(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.GOSDetect(nil)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "gosdetect", r.Report())
	}
}

// BenchmarkBreakSeverity regenerates the partial-break regime study.
func BenchmarkBreakSeverity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BreakSeverity(8)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "breaksev", r.Report())
	}
}

// BenchmarkBridgeCampaignReport regenerates the interconnect-bridge
// study (the engine comparison lives in BenchmarkBridgeCampaign below).
func BenchmarkBridgeCampaignReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.BridgeCampaign(nil)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "bridges", r.Report())
	}
}

// BenchmarkDelayFault regenerates the circuit-level delay-fault study.
func BenchmarkDelayFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.DelayFault(6)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "delayfault", r.Report())
	}
}

// BenchmarkDiagnosis regenerates the diagnosis-resolution study.
func BenchmarkDiagnosis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Diagnosis(nil)
		if err != nil {
			b.Fatal(err)
		}
		printReport(b, "diagnosis", r.Report())
	}
}

// --- engine micro-benchmarks: the substrates the harness is built on ---

// BenchmarkDeviceEval times one compact-model evaluation.
func BenchmarkDeviceEval(b *testing.B) {
	m := NewDevice()
	bias := device.Bias{VCG: 1.2, VPGS: 1.2, VPGD: 1.2, VD: 1.2}
	sum := 0.0
	for i := 0; i < b.N; i++ {
		sum += m.ID(bias)
	}
	_ = sum
}

// BenchmarkStuckAtFaultSim times 64-way parallel-pattern stuck-at fault
// simulation of the 8-bit ripple-carry adder.
func BenchmarkStuckAtFaultSim(b *testing.B) {
	c := bench.RippleCarryAdder(8)
	faults := core.Universe(c, core.ClassicalOnly())
	patterns := randomPatterns(c, 64)
	sim := faultsim.New(c)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.RunStuckAt(faults, patterns)
	}
}

// BenchmarkTransistorCampaign is the perf-regression harness of the
// fault engines: a full CP transistor-fault campaign (channel break +
// stuck-on + polarity, with IDDQ) on the largest benchmark circuit
// (mult3, 39 gates) through the serial oracle, the compiled cone
// engine and the packed PPSFP engine. All engines return bit-identical
// detections (enforced by internal/faultsim's differential tests and
// re-checked here), so the ratios are pure engine speedup;
// BENCH_faultsim.json at the repo root records the trajectory. Run
// just this comparison with:
//
//	go test -bench=BenchmarkTransistorCampaign -benchtime=3x
func BenchmarkTransistorCampaign(b *testing.B) {
	c := bench.Multiplier(3)
	faults := core.Universe(c, core.UniverseOptions{
		ChannelBreak: true, StuckOn: true, Polarity: true,
	})
	patterns := faultsim.ExhaustivePatterns(c)

	run := func(b *testing.B, engine faultsim.Engine) []faultsim.Detection {
		sim := faultsim.New(c)
		sim.Engine = engine
		var last []faultsim.Detection
		b.ResetTimer()
		evals0 := engineGateEvals(engine)
		for i := 0; i < b.N; i++ {
			ds, err := sim.RunTransistor(faults, patterns, true)
			if err != nil {
				b.Fatal(err)
			}
			last = ds
		}
		reportGateEvals(b, engine, evals0)
		return last
	}

	results := map[string][]faultsim.Detection{}
	for _, engine := range []faultsim.Engine{faultsim.EngineReference, faultsim.EngineCompiled, faultsim.EnginePacked} {
		engine := engine
		b.Run(engine.String(), func(b *testing.B) { results[engine.String()] = run(b, engine) })
	}
	ref := results["reference"]
	for name, cmp := range results {
		if len(ref) != len(cmp) {
			continue // a -bench filter skipped an engine: nothing to compare
		}
		for i := range ref {
			if ref[i].Method != cmp[i].Method || ref[i].Pattern != cmp[i].Pattern {
				b.Fatalf("%s disagrees on %v: (%q, %d) vs (%q, %d)",
					name, ref[i].Fault, ref[i].Method, ref[i].Pattern, cmp[i].Method, cmp[i].Pattern)
			}
		}
	}
}

// BenchmarkBridgeCampaign is the same perf-regression harness for the
// bridge engines: neighbour-extracted bridges on mult3 with IDDQ
// observation, per engine, detections re-checked identical.
func BenchmarkBridgeCampaign(b *testing.B) {
	c := bench.Multiplier(3)
	bridges := core.NeighborBridges(c, 4)
	patterns := faultsim.ExhaustivePatterns(c)

	run := func(b *testing.B, engine faultsim.Engine) []faultsim.BridgeDetection {
		sim := faultsim.New(c)
		sim.Engine = engine
		var last []faultsim.BridgeDetection
		b.ResetTimer()
		evals0 := engineGateEvals(engine)
		for i := 0; i < b.N; i++ {
			ds, err := sim.RunBridgesObserved(context.Background(), bridges, patterns, true)
			if err != nil {
				b.Fatal(err)
			}
			last = ds
		}
		reportGateEvals(b, engine, evals0)
		return last
	}

	results := map[string][]faultsim.BridgeDetection{}
	for _, engine := range []faultsim.Engine{faultsim.EngineReference, faultsim.EngineCompiled, faultsim.EnginePacked} {
		engine := engine
		b.Run(engine.String(), func(b *testing.B) { results[engine.String()] = run(b, engine) })
	}
	ref := results["reference"]
	for name, cmp := range results {
		if len(ref) != len(cmp) {
			continue // a -bench filter skipped an engine: nothing to compare
		}
		for i := range ref {
			if ref[i].Detected != cmp[i].Detected || ref[i].Method != cmp[i].Method || ref[i].Pattern != cmp[i].Pattern {
				b.Fatalf("%s disagrees on %v: (%v, %q, %d) vs (%v, %q, %d)",
					name, ref[i].Bridge, ref[i].Detected, ref[i].Method, ref[i].Pattern,
					cmp[i].Detected, cmp[i].Method, cmp[i].Pattern)
			}
		}
	}
}

// engineGateEvals reads the engine-native gate-evaluation counter for
// one engine from the process-wide faultsim stats. The units differ per
// engine (scalar LUT lookups, packed 64-lane evaluations, full hooked
// switch-level maps), so the throughput figures below compare an engine
// only against itself over time.
func engineGateEvals(engine faultsim.Engine) uint64 {
	s := faultsim.ReadEngineStats()
	switch engine {
	case faultsim.EngineReference:
		return s.ReferenceGateEvals
	case faultsim.EnginePacked:
		return s.PackedGateEvals
	case faultsim.EngineAuto:
		// Auto resolves to compiled or packed per campaign; charge both.
		return s.ConeGateEvals + s.PackedGateEvals
	default:
		return s.ConeGateEvals
	}
}

// reportGateEvals attaches engine-native gate-evals/sec (and per op) to
// the benchmark result, from the counter delta across the timed loop.
func reportGateEvals(b *testing.B, engine faultsim.Engine, evals0 uint64) {
	delta := engineGateEvals(engine) - evals0
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(delta)/sec, "gate_evals/s")
	}
	b.ReportMetric(float64(delta)/float64(b.N), "gate_evals/op")
}

// BenchmarkFaultSimScaling is the gates x faults x patterns scaling
// sweep over the generated corpus: array multipliers at ~100, ~1k and
// ~10k gates (mult5 / mult16 / mult50, sizes pinned by
// internal/bench's TestCorpusScales), a fixed 64-fault sample of the
// CP transistor universe and 64 random patterns, per engine (including
// the auto chooser, which must match or beat the best single engine on
// every row — that requirement is what calibrates ChooseEngine's
// constants, see docs/benchmarks.md). The fault
// and pattern budgets are held constant across sizes so the per-op
// time isolates how each engine's cost grows with gate count;
// gate_evals/s shows whether the cone restriction and bitplane packing
// hold their throughput as circuits grow. Dated results live in
// BENCH_faultsim.json ("scaling" entries). -short keeps only the
// ~100-gate row (the CI bench-smoke budget):
//
//	go test -bench=BenchmarkFaultSimScaling -benchtime=3x
func BenchmarkFaultSimScaling(b *testing.B) {
	const nFaults, nPatterns = 64, 64
	for _, name := range []string{"mult5", "mult16", "mult50"} {
		if testing.Short() && name != "mult5" {
			continue
		}
		c, err := bench.Get(name)
		if err != nil {
			b.Fatal(err)
		}
		all := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		// Deterministic stride sample: same faults every run, spread
		// across the whole circuit rather than clustered at its inputs.
		faults := all
		if len(all) > nFaults {
			faults = make([]core.Fault, 0, nFaults)
			for i := 0; i < nFaults; i++ {
				faults = append(faults, all[i*len(all)/nFaults])
			}
		}
		patterns := randomPatterns(c, nPatterns)

		results := map[string][]faultsim.Detection{}
		for _, engine := range []faultsim.Engine{faultsim.EngineReference, faultsim.EngineCompiled, faultsim.EnginePacked, faultsim.EngineAuto} {
			engine := engine
			b.Run(fmt.Sprintf("%s/%s", name, engine), func(b *testing.B) {
				sim := faultsim.New(c)
				sim.Engine = engine
				var last []faultsim.Detection
				b.ResetTimer()
				evals0 := engineGateEvals(engine)
				for i := 0; i < b.N; i++ {
					ds, err := sim.RunTransistor(faults, patterns, true)
					if err != nil {
						b.Fatal(err)
					}
					last = ds
				}
				reportGateEvals(b, engine, evals0)
				b.ReportMetric(float64(c.Statistics().Gates), "gates")
				results[engine.String()] = last
			})
		}
		ref := results["reference"]
		for ename, cmp := range results {
			if len(ref) != len(cmp) {
				continue // a -bench filter skipped an engine
			}
			for i := range ref {
				if ref[i].Method != cmp[i].Method || ref[i].Pattern != cmp[i].Pattern {
					b.Fatalf("%s: %s disagrees on %v: (%q, %d) vs (%q, %d)",
						name, ename, ref[i].Fault, ref[i].Method, ref[i].Pattern, cmp[i].Method, cmp[i].Pattern)
				}
			}
		}
	}
}

// BenchmarkDictionaryCapture prices the fault-dictionary signature
// sink on the workload its acceptance budget names: a full packed
// mult16 campaign (stuck-at + CP transistor universe, IDDQ observed,
// 64 random patterns) run end to end — pattern build, stuck-at sweep,
// voltage sweep, +IDDQ sweep, report — with ("on") and without ("off")
// a dictionary store attached. "on" additionally harvests signatures
// in the sweeps capture instruments (the stuck-at and +IDDQ passes;
// the voltage-only sweep runs uncaptured), compresses them and writes
// the artifact atomically. Capture rows are written straight from the
// engine's lane words — no second simulation pass — but a full
// signature must resolve every (fault, pattern) lane where the
// uncaptured engine stops at each fault's first detection, so the
// captured sweeps evaluate ~1.4x the gates; BENCH_faultsim.json
// records dated results and the budget discussion. Both runs must
// agree on coverage exactly.
//
//	go test -bench=BenchmarkDictionaryCapture -benchtime=5x
func BenchmarkDictionaryCapture(b *testing.B) {
	req := service.CampaignRequest{
		Benchmark: "mult16",
		Faults: service.FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, StuckOn: true,
			IDDQ: true,
		},
		Patterns: 64,
		Engine:   "packed",
	}
	norm, c, err := req.Normalize()
	if err != nil {
		b.Fatal(err)
	}
	store, err := dict.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key := service.CanonicalKey(c, norm)

	run := func(b *testing.B, ro *service.RunObserver) *service.CampaignReport {
		var last *service.CampaignReport
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := service.RunCampaignObserved(context.Background(), c, norm, ro)
			if err != nil {
				b.Fatal(err)
			}
			last = rep
		}
		return last
	}

	reports := map[string]*service.CampaignReport{}
	b.Run("off", func(b *testing.B) { reports["off"] = run(b, nil) })
	b.Run("on", func(b *testing.B) {
		reports["on"] = run(b, &service.RunObserver{Dict: store, DictKey: key})
	})
	off, on := reports["off"], reports["on"]
	if off == nil || on == nil {
		return // a -bench filter skipped a subtest: nothing to compare
	}
	for name, pair := range map[string][2]*service.CoverageJSON{
		"stuck_at":        {off.StuckAt, on.StuckAt},
		"transistor":      {off.Transistor, on.Transistor},
		"transistor_iddq": {off.TransistorIDDQ, on.TransistorIDDQ},
	} {
		was, now := pair[0], pair[1]
		if (was == nil) != (now == nil) ||
			(was != nil && (was.Detected != now.Detected || was.Total != now.Total)) {
			b.Fatalf("capture changed %s coverage: %+v vs %+v", name, was, now)
		}
	}
	if on.Dictionary == nil {
		b.Fatal("observed campaign produced no dictionary artifact")
	}
}

// BenchmarkSwitchLevelXOR2 times one switch-level evaluation of the XOR2
// with an injected polarity fault.
func BenchmarkSwitchLevelXOR2(b *testing.B) {
	spec := gates.Get(gates.XOR2)
	in := []logic.V{logic.L1, logic.L0}
	faults := map[string]logic.TFault{"t3": logic.TFaultStuckAtN}
	for i := 0; i < b.N; i++ {
		logic.EvalSwitch(spec, in, faults, nil)
	}
}

func randomPatterns(c *logic.Circuit, n int) []faultsim.Pattern {
	out := make([]faultsim.Pattern, n)
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for k := range out {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(next()&1 == 1)
		}
		out[k] = p
	}
	return out
}
