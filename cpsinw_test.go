package cpsinw

import (
	"strings"
	"testing"

	"cpsinw/internal/device"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

func TestFacadeDevice(t *testing.T) {
	dev := NewDevice()
	if dev.IDSat() <= 0 {
		t.Fatal("device does not conduct")
	}
	faulty := NewDeviceWithDefects(device.Defects{GOS: device.GOSAtPGS})
	if faulty.IDSat() >= dev.IDSat() {
		t.Error("GOS injection did not reduce the drive")
	}
}

func TestFacadeBenchRoundTrip(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n"
	c, err := ParseBench("x", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "XOR(a, b)") {
		t.Errorf("write-back missing gate: %s", b.String())
	}
}

func TestFacadeBenchmarksAndUniverse(t *testing.T) {
	suite := Benchmarks()
	c17, ok := suite["c17"]
	if !ok {
		t.Fatal("c17 missing from suite")
	}
	u := FaultUniverse(c17)
	if len(u) < 100 {
		t.Errorf("universe too small: %d", len(u))
	}
}

func TestFacadeATPGAndFaultSim(t *testing.T) {
	c := Benchmarks()["fa_cp"]
	res := RunATPG(c)
	if res.Coverage() < 90 {
		t.Errorf("full-adder coverage %.1f%%", res.Coverage())
	}
	var pats []faultsim.Pattern
	pats = append(pats, res.Set.Patterns...)
	pats = append(pats, res.Set.IDDQPatterns...)
	cov := FaultSimulate(c, pats)
	if cov.Percent() < 90 {
		t.Errorf("stuck-at coverage of the generated set: %.1f%%", cov.Percent())
	}
}

func TestFacadeExperiments(t *testing.T) {
	if got := Repro.TableI().Report(); !strings.Contains(got, "Bosch") {
		t.Error("TableI report broken")
	}
	if got := Repro.TableII().Report(); !strings.Contains(got, "22nm") {
		t.Error("TableII report broken")
	}
	r3 := Repro.Figure3(10)
	if len(r3.Variants) != 4 {
		t.Error("Figure3 variants missing")
	}
	r4 := Repro.Figure4()
	if len(r4.Cases) != 4 {
		t.Error("Figure4 cases missing")
	}
	t3, err := Repro.TableIII(false)
	if err != nil || len(t3.Rows) != 8 {
		t.Errorf("TableIII: %v", err)
	}
	np, err := Repro.NANDTwoPattern()
	if err != nil || !np.AllDetected() {
		t.Errorf("NANDTwoPattern: %v", err)
	}
}

func TestFacadeTypesAreUsable(t *testing.T) {
	// The facade should expose enough to write a custom flow without
	// touching internal packages directly beyond the returned types.
	c := Benchmarks()["tmr"]
	vals := c.Eval(map[string]logic.V{
		"x0": logic.L1, "y0": logic.L1,
		"x1": logic.L1, "y1": logic.L1,
		"x2": logic.L1, "y2": logic.L1,
	})
	if vals["v"] != logic.L0 {
		t.Errorf("TMR vote = %v", vals["v"])
	}
}

func TestFacadeExtensions(t *testing.T) {
	if testing.Short() {
		t.Skip("extension experiments in -short mode")
	}
	diag, err := Repro.Diagnosis()
	if err != nil {
		t.Fatal(err)
	}
	if len(diag.Rows) == 0 {
		t.Error("diagnosis returned no rows")
	}
	bc, err := Repro.BridgeCampaign()
	if err != nil {
		t.Fatal(err)
	}
	if len(bc.Rows) == 0 {
		t.Error("bridge campaign returned no rows")
	}
	bs, err := Repro.BreakSeverity(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs.Points) != 5 {
		t.Errorf("break severity points = %d", len(bs.Points))
	}
}

func TestFacadeTestProgram(t *testing.T) {
	c := Benchmarks()["fa_cp"]
	res := RunATPG(c)
	prog := BuildTestProgram(c, res)
	if len(prog.Steps) == 0 {
		t.Fatal("empty program")
	}
	if v := ExecuteTestProgram(prog, nil); !v.Pass {
		t.Errorf("golden device fails: %s", v.FailReason)
	}
}
