#!/usr/bin/env bash
# obs-smoke.sh — end-to-end observability smoke test.
#
# Builds cpsinw-serve (race detector on), boots it, submits a real
# campaign, follows the SSE stream to its terminal frame, checks
# /healthz, the trace endpoint and the legacy JSON metrics form, and
# pipes the final /metrics scrape through the exposition linter. Any
# malformed exposition line, missing progress frame or non-terminal
# stream end fails the script. CI runs this as the obs-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
addr="127.0.0.1:18080"
debug="127.0.0.1:16060"

cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build (race) =="
go build -race -o "$workdir/cpsinw-serve" ./cmd/cpsinw-serve
go build -o "$workdir/promlint" ./internal/obs/promlint

echo "== boot =="
"$workdir/cpsinw-serve" -addr "$addr" -debug-addr "$debug" \
    -log-format json -progress-interval 10ms >"$workdir/serve.log" 2>&1 &
server_pid=$!

for _ in $(seq 1 100); do
    curl -sf "http://$addr/healthz" >/dev/null 2>&1 && break
    sleep 0.1
done
curl -sf "http://$addr/healthz" | grep -q '"ready": *true' || {
    echo "server never became ready" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "== submit campaign =="
id=$(curl -sf -X POST "http://$addr/v1/campaigns" \
    -d '{"benchmark":"mult3","faults":{"stuck_at":true,"polarity":true,"stuck_open":true,"bridges":true,"iddq":true},"atpg":true}' \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[[ -n "$id" ]] || { echo "no campaign id in submit response" >&2; exit 1; }
echo "campaign $id"

echo "== follow SSE to the terminal frame =="
curl -sN --max-time 60 "http://$addr/v1/campaigns/$id/events" >"$workdir/events.txt"
grep -q '^event: progress$' "$workdir/events.txt" || {
    echo "no progress frame streamed" >&2
    cat "$workdir/events.txt" >&2
    exit 1
}
tail -5 "$workdir/events.txt" | grep -q '"state":"done"' || {
    echo "stream did not end with a terminal done state" >&2
    tail -5 "$workdir/events.txt" >&2
    exit 1
}

echo "== trace =="
curl -sf "http://$addr/v1/campaigns/$id/trace" | grep -q '"name": *"campaign"' || {
    echo "trace endpoint missing the campaign root span" >&2
    exit 1
}

echo "== metrics (prometheus + lint) =="
curl -sf "http://$addr/metrics" >"$workdir/metrics.txt"
"$workdir/promlint" "$workdir/metrics.txt"
grep -q '^cpsinw_jobs_completed_total 1$' "$workdir/metrics.txt" || {
    echo "completed counter missing from the scrape" >&2
    grep cpsinw_jobs "$workdir/metrics.txt" >&2 || true
    exit 1
}
grep -q 'cpsinw_faultsim_gate_evals_total{engine="compiled"}' "$workdir/metrics.txt" || {
    echo "per-engine gate-eval counter missing" >&2
    exit 1
}

echo "== metrics (legacy json) =="
curl -sf "http://$addr/metrics?format=json" | grep -q '"jobs_completed": *1' || {
    echo "legacy JSON metrics missing jobs_completed" >&2
    exit 1
}

echo "== pprof debug listener =="
curl -sf "http://$debug/debug/pprof/" >/dev/null
curl -sf "http://$debug/debug/vars" | grep -q '"cpsinw"' || {
    echo "expvar snapshot missing" >&2
    exit 1
}

echo "== access log =="
grep -q '"msg":"http request"' "$workdir/serve.log" || {
    echo "no structured access-log lines" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "obs smoke OK"
