#!/usr/bin/env bash
# shard-smoke.sh — sharded campaign execution + durable result store
# smoke test.
#
# Builds cpsinw-serve (race detector on), boots it with a result store,
# runs a sharded campaign and checks the shard scheduler showed up in
# /metrics and the per-shard aggregation in the job's progress. Then it
# kills the server outright and boots a second life over the same
# store: resubmitting the identical campaign must be answered from the
# persisted report — born done, cache_hit true — with every
# cpsinw_faultsim_gate_evals_total sample still exactly 0, proving the
# second life simulated nothing. CI runs this as the shard-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
addr="127.0.0.1:18082"
resultdir="$workdir/results"
body='{"benchmark":"mult3","faults":{"stuck_at":true,"polarity":true,"iddq":true},"engine":"packed","shards":4}'

cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build (race) =="
go build -race -o "$workdir/cpsinw-serve" ./cmd/cpsinw-serve

boot() {
    "$workdir/cpsinw-serve" -addr "$addr" -debug-addr "" -result-dir "$resultdir" \
        -log-format json >>"$workdir/serve.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "server never became ready" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

submit() {
    curl -sf -X POST "http://$addr/v1/campaigns" -d "$body" \
        | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1
}

wait_done() {
    local id=$1 state=""
    for _ in $(seq 1 300); do
        state=$(curl -sf "http://$addr/v1/campaigns/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
        [[ "$state" == "done" ]] && return 0
        [[ "$state" == "failed" || "$state" == "canceled" ]] && break
        sleep 0.2
    done
    echo "campaign $id ended in state '$state'" >&2
    curl -s "http://$addr/v1/campaigns/$id" >&2 || true
    exit 1
}

echo "== boot (first life) =="
boot

echo "== sharded campaign =="
id=$(submit)
[[ -n "$id" ]] || { echo "no campaign id in submit response" >&2; exit 1; }
wait_done "$id"

echo "== shard observability =="
metrics=$(curl -sf "http://$addr/metrics")
scheduled=$(printf '%s\n' "$metrics" | awk '/^cpsinw_shard_scheduled_total /{print $2}')
[[ "${scheduled:-0}" == "4" ]] || {
    echo "cpsinw_shard_scheduled_total = '${scheduled:-missing}', want 4" >&2
    exit 1
}
curl -sf "http://$addr/v1/campaigns/$id/trace" | grep -q '"shard"' || {
    echo "campaign trace has no per-shard spans" >&2
    exit 1
}
shardfiles=$(ls "$resultdir/shards" | wc -l)
[[ "$shardfiles" -eq 4 ]] || { echo "store holds $shardfiles shard artifacts, want 4" >&2; exit 1; }

echo "== kill (no graceful shutdown) =="
kill -9 "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""

echo "== boot (second life, same store) =="
boot

echo "== resubmit: answered from the store, zero simulation =="
id2=$(submit)
[[ -n "$id2" ]] || { echo "no campaign id in second submit" >&2; exit 1; }
status=$(curl -sf "http://$addr/v1/campaigns/$id2")
echo "$status" | grep -q '"state": *"done"' || { echo "second life did not answer done: $status" >&2; exit 1; }
echo "$status" | grep -q '"cache_hit": *true' || { echo "second life missed the store: $status" >&2; exit 1; }

metrics2=$(curl -sf "http://$addr/metrics")
evals=$(printf '%s\n' "$metrics2" | awk '/^cpsinw_faultsim_gate_evals_total/{print $NF}')
[[ -n "$evals" ]] || { echo "no cpsinw_faultsim_gate_evals_total samples in second life" >&2; exit 1; }
for v in $evals; do
    [[ "$v" == "0" ]] || {
        echo "second life simulated: cpsinw_faultsim_gate_evals_total sample = $v, want 0" >&2
        printf '%s\n' "$metrics2" | grep gate_evals >&2
        exit 1
    }
done
hits=$(printf '%s\n' "$metrics2" | awk '/^cpsinw_resultstore_report_hits_total /{print $2}')
[[ "${hits:-0}" == "1" ]] || { echo "cpsinw_resultstore_report_hits_total = '${hits:-missing}', want 1" >&2; exit 1; }

echo "shard smoke passed: 4 shards scheduled and persisted; restart answered from the store with 0 gate evaluations"
