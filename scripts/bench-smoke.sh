#!/usr/bin/env bash
# bench-smoke.sh — scaling-sweep smoke test with the auto-chooser gate.
#
# Runs the -short BenchmarkFaultSimScaling row (the ~100-gate mult5
# sweep, all four engines: reference, compiled, packed and auto) and
# fails if engine=auto loses more than 2x to the best engine of the
# same row in the same run. The best engine per row is pinned by the
# dated scaling entries in BENCH_faultsim.json; comparing auto against
# the best *measured* engine of the same run applies that bar without
# trusting cross-machine ns/op, so a mis-calibrated ChooseEngine
# (choosing compiled where packed wins, or vice versa) fails CI even on
# runners much slower than the recording machine. The benchmark itself
# re-checks that every engine, auto included, returns bit-identical
# detections. CI runs this as part of the bench-smoke step.
set -euo pipefail

cd "$(dirname "$0")/.."
out=$(go test -short -run '^$' -bench 'BenchmarkFaultSimScaling' -benchtime 3x -timeout 10m .)
echo "$out"

echo "== auto-chooser gate (auto <= 2x best engine per row) =="
echo "$out" | awk '
    $4 == "ns/op" && $1 ~ /^BenchmarkFaultSimScaling\// {
        split($1, a, "/")
        row = a[2]
        eng = a[3]
        sub(/-[0-9]+$/, "", eng)   # strip the -GOMAXPROCS suffix
        ns[row "," eng] = $3
        rows[row] = 1
    }
    END {
        if (length(rows) == 0) {
            print "no scaling rows in benchmark output" > "/dev/stderr"
            exit 1
        }
        fail = 0
        for (row in rows) {
            if (!((row "," "auto") in ns)) {
                printf "%s: no engine=auto measurement\n", row > "/dev/stderr"
                fail = 1
                continue
            }
            best = ""
            for (key in ns) {
                split(key, k, ",")
                if (k[1] != row || k[2] == "auto") continue
                if (best == "" || ns[key] < ns[row "," best]) best = k[2]
            }
            auto = ns[row "," "auto"]
            bestNs = ns[row "," best]
            printf "%s: auto %.0f ns/op vs best (%s) %.0f ns/op (%.2fx)\n", \
                row, auto, best, bestNs, auto / bestNs
            if (auto > 2 * bestNs) {
                printf "%s: engine=auto loses >2x to %s — recalibrate ChooseEngine (docs/benchmarks.md)\n", \
                    row, best > "/dev/stderr"
                fail = 1
            }
        }
        exit fail
    }
'
echo "bench smoke OK"
