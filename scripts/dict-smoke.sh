#!/usr/bin/env bash
# dict-smoke.sh — persistent fault-dictionary smoke test.
#
# Builds cpsinw-serve and cpsinw-diagnose (race detector on), boots the
# server with a dictionary store, runs a real campaign, diagnoses an
# observed failure over HTTP, then kills the server and boots a fresh
# process over the same store: the second life must answer /v1/diagnose
# from the persisted artifact with zero re-simulation (its campaign
# counter stays at 0). Finally the offline CLI must address the same
# artifact — inspect and match it by key, and rebuild the same campaign
# into a fresh store landing on the byte-identical content address,
# proving CLI-built dictionaries and server-built dictionaries share
# one key scheme. CI runs this as the dict-smoke job.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
addr="127.0.0.1:18081"
dictdir="$workdir/dict"

cleanup() {
    [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build (race) =="
go build -race -o "$workdir/cpsinw-serve" ./cmd/cpsinw-serve
go build -race -o "$workdir/cpsinw-diagnose" ./cmd/cpsinw-diagnose

boot() {
    "$workdir/cpsinw-serve" -addr "$addr" -debug-addr "" -dict-dir "$dictdir" \
        -log-format json >>"$workdir/serve.log" 2>&1 &
    server_pid=$!
    for _ in $(seq 1 100); do
        curl -sf "http://$addr/healthz" >/dev/null 2>&1 && return 0
        sleep 0.1
    done
    echo "server never became ready" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "== boot (first life) =="
boot

echo "== campaign with dictionary capture =="
id=$(curl -sf -X POST "http://$addr/v1/campaigns" \
    -d '{"benchmark":"mult3","faults":{"stuck_at":true,"polarity":true,"stuck_open":true,"stuck_on":true,"iddq":true}}' \
    | sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' | head -1)
[[ -n "$id" ]] || { echo "no campaign id in submit response" >&2; exit 1; }

state=""
for _ in $(seq 1 300); do
    state=$(curl -sf "http://$addr/v1/campaigns/$id" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p')
    [[ "$state" == "done" ]] && break
    [[ "$state" == "failed" || "$state" == "canceled" ]] && break
    sleep 0.2
done
[[ "$state" == "done" ]] || {
    echo "campaign ended in state '$state'" >&2
    cat "$workdir/serve.log" >&2
    exit 1
}

echo "== dictionary artifact =="
curl -sf "http://$addr/v1/campaigns/$id/dictionary" >"$workdir/dict.json"
key=$(sed -n 's/.*"key": *"\([0-9a-f]\{64\}\)".*/\1/p' "$workdir/dict.json" | head -1)
[[ -n "$key" ]] || { echo "no artifact key in dictionary metadata" >&2; cat "$workdir/dict.json" >&2; exit 1; }
[[ -f "$dictdir/$key.cpd" ]] || { echo "artifact $key.cpd missing from the store" >&2; ls "$dictdir" >&2; exit 1; }
echo "artifact $key"

# mult3 is simulated exhaustively (64 patterns); an observation that
# fails every pattern overlaps every detected fault, so a non-empty
# candidate ranking is guaranteed.
failing=$(seq -s, 0 63)

echo "== diagnose (first life) =="
curl -sf -X POST "http://$addr/v1/diagnose" \
    -d "{\"campaign_id\":\"$id\",\"failing_patterns\":[$failing]}" >"$workdir/diag1.json"
grep -q '"fault":' "$workdir/diag1.json" || {
    echo "diagnosis returned no candidates" >&2
    cat "$workdir/diag1.json" >&2
    exit 1
}

echo "== restart over the same store =="
kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
server_pid=""
boot

echo "== diagnose (second life, zero re-simulation) =="
curl -sf -X POST "http://$addr/v1/diagnose" \
    -d "{\"key\":\"$key\",\"failing_patterns\":[$failing]}" >"$workdir/diag2.json"
grep -q '"fault":' "$workdir/diag2.json" || {
    echo "restarted server returned no candidates" >&2
    cat "$workdir/diag2.json" >&2
    exit 1
}
curl -sf "http://$addr/metrics?format=json" | grep -q '"jobs_completed": *0' || {
    echo "restarted server ran a campaign to answer a diagnosis" >&2
    exit 1
}

echo "== offline CLI against the server's artifact =="
"$workdir/cpsinw-diagnose" inspect -dir "$dictdir" -key "$key" | grep -q 'mult3' || {
    echo "cpsinw-diagnose inspect could not read the server's artifact" >&2
    exit 1
}
"$workdir/cpsinw-diagnose" match -dir "$dictdir" -key "$key" -fail "$failing" -top 3 \
    | grep -q 'diagnosis:' || {
    echo "cpsinw-diagnose match produced no ranking" >&2
    exit 1
}

echo "== CLI rebuild lands on the same content address =="
"$workdir/cpsinw-diagnose" build -dir "$workdir/dict2" -circuit mult3 -iddq >"$workdir/build.txt"
grep -q "$key" "$workdir/build.txt" || {
    echo "CLI-built artifact key differs from the server's for the same campaign" >&2
    cat "$workdir/build.txt" >&2
    exit 1
}
[[ -f "$workdir/dict2/$key.cpd" ]] || {
    echo "CLI-built artifact missing under the shared key" >&2
    ls "$workdir/dict2" >&2
    exit 1
}

echo "dict smoke OK"
