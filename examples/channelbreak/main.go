// Channel-break walkthrough: the paper's central result, end to end.
//
//  1. In static-polarity gates a nanowire break behaves as a classical
//     stuck-open fault: the output floats on some vectors and two-pattern
//     tests catch it.
//  2. In dynamic-polarity gates the redundant pass structure masks the
//     break completely — classical tests (including two-pattern) fail.
//  3. The paper's new procedure detects it anyway: deliberately complement
//     the polarity of the device under test (inject stuck-at n/p-type
//     through the accessible polarity terminals) and watch whether the
//     injected fault manifests. A fault-free-looking response reveals the
//     break.
package main

import (
	"fmt"
	"log"
	"strings"

	"cpsinw"
	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

func main() {
	log.SetFlags(0)

	// --- 1. SP gate: classical stuck-open behaviour. ---
	nand, err := cpsinw.ParseBench("nand", strings.NewReader(
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n"))
	if err != nil {
		log.Fatal(err)
	}
	cb := core.Fault{Kind: core.FaultChannelBreak, Gate: nand.Gates[0].Name, Transistor: "t1"}
	tp, ok := atpg.GenerateTwoPattern(nand, cb, atpg.Options{})
	if !ok {
		log.Fatal("no two-pattern test for the NAND break")
	}
	fmt.Printf("NAND t1 channel break: two-pattern test %s -> %s\n",
		fmtPat(nand, tp.Init), fmtPat(nand, tp.Test))
	ds, err := faultsim.New(nand).RunTwoPattern([]core.Fault{cb}, [][2]faultsim.Pattern{{tp.Init, tp.Test}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  detected by simulation: %v\n\n", ds[0].Detected())

	// --- 2. DP gate: the break is masked. ---
	xor, err := cpsinw.ParseBench("xor", strings.NewReader(
		"INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n"))
	if err != nil {
		log.Fatal(err)
	}
	spec := gates.Get(gates.XOR2)
	fmt.Println("XOR2 channel breaks under exhaustive single- and two-pattern testing:")
	var cbs []core.Fault
	for _, tr := range spec.Transistors {
		cbs = append(cbs, core.Fault{Kind: core.FaultChannelBreak, Gate: xor.Gates[0].Name, Transistor: tr.Name})
	}
	patterns := faultsim.ExhaustivePatterns(xor)
	var pairs [][2]faultsim.Pattern
	for _, p1 := range patterns {
		for _, p2 := range patterns {
			pairs = append(pairs, [2]faultsim.Pattern{p1, p2})
		}
	}
	single, err := faultsim.New(xor).RunTransistor(cbs, patterns, true)
	if err != nil {
		log.Fatal(err)
	}
	two, err := faultsim.New(xor).RunTwoPattern(cbs, pairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  single-pattern coverage: %.0f%%, two-pattern coverage: %.0f%% (masked!)\n\n",
		faultsim.Summarise(single).Percent(), faultsim.Summarise(two).Percent())

	// --- 3. The paper's procedure. ---
	fmt.Println("the paper's channel-break procedure (section V-C):")
	for _, f := range cbs {
		plan, ok := atpg.GenerateChannelBreakDP(xor, f, atpg.Options{})
		if !ok {
			log.Fatalf("no plan for %v", f)
		}
		healthy, broken, err := atpg.VerifyChannelBreakPlan(xor, plan)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "separates healthy from broken"
		if !healthy || broken {
			verdict = "FAILS"
		}
		fmt.Printf("  %s: inject %v, apply %s, observe %s -> healthy shows fault: %v, broken looks clean: %v (%s)\n",
			f.Transistor, plan.Injection, fmtPat(xor, plan.Pattern), plan.Observe, healthy, !broken, verdict)
	}
}

func fmtPat(c *logic.Circuit, p faultsim.Pattern) string {
	var b strings.Builder
	for i, pi := range c.Inputs {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", pi, p[pi])
	}
	return b.String()
}
