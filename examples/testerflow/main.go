// Tester flow: the complete production-test story, end to end.
//
// Generate the extended-model test set for a CP circuit, assemble it into
// an ordered tester program (logic vectors, two-pattern sequences, IDDQ
// measurements, channel-break procedures), then play manufacturing: run
// the program against a batch of devices — one golden, the rest carrying
// a random defect each — and bin them.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cpsinw"
	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
)

func main() {
	log.SetFlags(0)

	c := cpsinw.Benchmarks()["rca4"]
	fmt.Printf("device under test: %s  %s\n\n", c.Name, c.Statistics())

	// 1. Generate the test set under the extended CP fault model.
	res := cpsinw.RunATPG(c)
	fmt.Printf("ATPG: %.1f%% coverage, %d vector applications\n",
		res.Coverage(), res.Set.TotalVectors())

	// 2. Assemble the tester program.
	prog := cpsinw.BuildTestProgram(c, res)
	kinds := map[atpg.StepKind]int{}
	for _, s := range prog.Steps {
		kinds[s.Kind]++
	}
	fmt.Printf("tester program: %d steps (%d logic, %d two-pattern, %d IDDQ, %d CB procedures)\n\n",
		len(prog.Steps), kinds[atpg.StepLogic], kinds[atpg.StepTwoPattern],
		kinds[atpg.StepIDDQ], kinds[atpg.StepCBProcedure])

	// 3. Manufacture a lot: one golden device + defective ones.
	universe := cpsinw.FaultUniverse(c)
	var testable []core.Fault
	for _, f := range universe {
		if _, ok := f.Kind.TFault(); ok || f.Kind.IsLineFault() {
			testable = append(testable, f)
		}
	}
	rng := rand.New(rand.NewSource(2015))
	lot := make([]*core.Fault, 12)
	for i := 1; i < len(lot); i++ {
		f := testable[rng.Intn(len(testable))]
		lot[i] = &f
	}

	// 4. Test the lot.
	passed, failed := 0, 0
	for i, defect := range lot {
		v := cpsinw.ExecuteTestProgram(prog, defect)
		label := "golden"
		if defect != nil {
			label = defect.String()
		}
		verdict := "PASS"
		detail := ""
		if !v.Pass {
			verdict = "FAIL"
			detail = fmt.Sprintf(" @ step %d (%v): %s", v.FailStep, v.StepKind, v.FailReason)
			failed++
		} else {
			passed++
		}
		fmt.Printf("device %2d [%-40s] %s%s\n", i, label, verdict, detail)
	}
	fmt.Printf("\nlot summary: %d passed, %d failed\n", passed, failed)
	if lot[0] == nil && passed >= 1 {
		fmt.Println("golden device passed — no overkill on this program")
	}
}
