// Quickstart: build the paper's reference TIG-SiNWFET, sweep its transfer
// characteristic, simulate a CP inverter electrically, and run a complete
// ATPG flow on a benchmark circuit — the public API end to end.
package main

import (
	"fmt"
	"log"

	"cpsinw"
	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/spice"
)

func main() {
	log.SetFlags(0)

	// 1. The device: Table II geometry, controllable polarity.
	dev := cpsinw.NewDevice()
	fmt.Printf("TIG-SiNWFET: ID(SAT) = %.3g A, VthN = %.3f V, on/off = %.2g\n",
		dev.IDSat(), dev.VThN(0), dev.IDSat()/dev.OffCurrent())

	// Conduction needs all three gates to agree (CG = PGS = PGD).
	v := dev.P.VDD
	nOn := dev.ID(device.Bias{VCG: v, VPGS: v, VPGD: v, VD: v})
	blocked := dev.ID(device.Bias{VCG: v, VPGS: 0, VPGD: 0, VD: v})
	fmt.Printf("n-type on: %.3g A, polarity-blocked: %.3g A\n\n", nOn, blocked)

	// 2. A CP inverter at the analog level (the paper's simulation flow).
	inv := gates.Get(gates.INV)
	netlist, err := gates.BuildAnalog(inv, gates.BuildOptions{
		Inputs: []circuit.Waveform{circuit.Pulse{
			V0: 0, V1: v, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
			Width: 600e-12, Period: 1.4e-9,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	eng, err := spice.NewEngine(netlist, spice.Options{})
	if err != nil {
		log.Fatal(err)
	}
	wf, err := eng.Tran(2e-12, 1.4e-9, []string{"a", "out"})
	if err != nil {
		log.Fatal(err)
	}
	tphl, err := spice.PropDelay(wf, "a", "out", v, true, false, 0)
	if err != nil {
		log.Fatal(err)
	}
	tplh, err := spice.PropDelay(wf, "a", "out", v, false, true, 500e-12)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CP inverter: tpHL = %.1f ps, tpLH = %.1f ps\n\n", tphl*1e12, tplh*1e12)

	// 3. Gate-level: a CP full adder is just two gates (XOR3 + MAJ).
	fa := cpsinw.Benchmarks()["fa_cp"]
	fmt.Printf("CP full adder: %s\n", fa.Statistics())

	// 4. ATPG under the extended fault model of the paper.
	res := cpsinw.RunATPG(fa)
	fmt.Printf("extended-model ATPG coverage: %.1f%% with %d vector applications\n",
		res.Coverage(), res.Set.TotalVectors())
	fmt.Printf("  stuck-at %d/%d, polarity %d/%d, DP channel breaks %d/%d\n",
		res.StuckAtCovered, res.StuckAtTargeted,
		res.PolarityCovered, res.PolarityTargeted,
		res.CBDPCovered, res.CBDPTargeted)
}
