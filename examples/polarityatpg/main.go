// Polarity ATPG: run the full extended-model test-generation flow on an
// arithmetic circuit built from native CP cells (an 8-bit ripple-carry
// adder of XOR3/MAJ full adders), and compare against the classical
// stuck-at flow — the headline system-level result of the reproduction:
// classical tests leave the CP-specific faults uncovered.
package main

import (
	"fmt"
	"log"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
)

func main() {
	log.SetFlags(0)

	c := bench.RippleCarryAdder(8)
	fmt.Printf("circuit: %s  %s\n\n", c.Name, c.Statistics())

	universe := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	var nLine, nPol, nCB int
	for _, f := range universe {
		switch {
		case f.Kind.IsLineFault():
			nLine++
		case f.Kind.IsPolarityFault():
			nPol++
		default:
			nCB++
		}
	}
	fmt.Printf("fault universe: %d (line stuck-at %d, polarity %d, channel break %d)\n\n",
		len(universe), nLine, nPol, nCB)

	// Classical flow: stuck-at ATPG only, voltage observation.
	var saFaults []core.Fault
	for _, f := range universe {
		if f.Kind.IsLineFault() {
			saFaults = append(saFaults, f)
		}
	}
	var saPats []faultsim.Pattern
	for _, f := range saFaults {
		if p, ok := atpg.GenerateStuckAt(c, f, atpg.Options{}); ok {
			saPats = append(saPats, p)
		}
	}
	saPats = atpg.CompactPatterns(c, saFaults, saPats)
	sim := faultsim.New(c)
	saCov := faultsim.Summarise(sim.RunStuckAt(saFaults, saPats))

	var trFaults []core.Fault
	for _, f := range universe {
		if !f.Kind.IsLineFault() {
			trFaults = append(trFaults, f)
		}
	}
	accidental, err := sim.RunTransistor(trFaults, saPats, false)
	if err != nil {
		log.Fatal(err)
	}
	accCov := faultsim.Summarise(accidental)
	fmt.Printf("classical flow: %d compacted vectors\n", len(saPats))
	fmt.Printf("  stuck-at coverage:              %.1f%%\n", saCov.Percent())
	fmt.Printf("  CP-fault coverage (accidental): %.1f%% -> %d faults escape\n\n",
		accCov.Percent(), len(accCov.Undetected))

	// Extended flow.
	res := atpg.Generate(c, universe, atpg.Options{})
	fmt.Printf("extended CP flow: %.1f%% of the full universe\n", res.Coverage())
	fmt.Printf("  line stuck-at:        %d/%d\n", res.StuckAtCovered, res.StuckAtTargeted)
	fmt.Printf("  polarity (new model): %d/%d\n", res.PolarityCovered, res.PolarityTargeted)
	fmt.Printf("  channel break DP:     %d/%d via the paper's procedure\n", res.CBDPCovered, res.CBDPTargeted)
	fmt.Printf("  vectors: %d combinational + %d IDDQ + %d CB plans\n",
		len(res.Set.Patterns), len(res.Set.IDDQPatterns), len(res.Set.CBPlans))

	if len(res.Untestable) > 0 {
		fmt.Printf("  untestable in this circuit: %d (input-correlation limited)\n", len(res.Untestable))
	}
}
