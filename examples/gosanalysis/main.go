// GOS analysis: reproduce the paper's device-level inductive fault
// analysis (Figures 3 and 4) — inject gate-oxide shorts at each of the
// three gates, compare I-V characteristics and channel electron
// densities, and show how the defect position changes the signature.
package main

import (
	"fmt"
	"log"

	"cpsinw/internal/device"
	"cpsinw/internal/experiments"
	"cpsinw/internal/tcad"
)

func main() {
	log.SetFlags(0)

	fmt.Println("== device-level GOS signatures (compact model) ==")
	m := device.Default()
	ffSat := m.IDSat()
	ffVth := m.VThN(0)
	fmt.Printf("%-12s  %-12s  %-10s  %-12s\n", "variant", "ID(SAT) [A]", "dVth [mV]", "min ID [A]")
	for _, loc := range []device.GOSLocation{device.GOSNone, device.GOSAtPGS, device.GOSAtCG, device.GOSAtPGD} {
		dev := m
		if loc != device.GOSNone {
			dev = m.WithDefects(device.Defects{GOS: loc})
		}
		minID := 0.0
		for _, p := range dev.OutputCurve(0, m.P.VDD, 31, m.P.VDD, m.P.VDD, m.P.VDD) {
			if p.I < minID {
				minID = p.I
			}
		}
		fmt.Printf("%-12s  %-12.3g  %-10.0f  %-12.3g\n",
			"GOS@"+loc.String(), dev.IDSat(), (dev.VThN(0)-ffVth)*1000, minID)
	}
	fmt.Printf("fault-free ID(SAT) = %.3g A\n\n", ffSat)

	fmt.Println("== channel electron density (synthetic TCAD, Figure 4) ==")
	fmt.Print(experiments.Figure4().Report())

	// Show the defect-size dependence: the paper notes the ID(SAT) drop is
	// proportional to the electron absorption capability of the defect,
	// determined by the GOS size.
	fmt.Println("\n== GOS size dependence (GOS at PGS) ==")
	fmt.Printf("%-10s  %-12s  %-10s\n", "size [nm]", "ID(SAT) [A]", "dVth [mV]")
	for _, size := range []float64{1, 2, 3, 4} {
		dev := m.WithDefects(device.Defects{GOS: device.GOSAtPGS, GOSSize: size})
		fmt.Printf("%-10g  %-12.3g  %-10.0f\n", size, dev.IDSat(), (dev.VThN(0)-ffVth)*1000)
	}

	// Cross-check: the synthetic TCAD solver agrees on the ordering.
	p := device.DefaultParams()
	bias := tcad.SaturationBias(p)
	fmt.Println("\n== synthetic TCAD ID(SAT) cross-check ==")
	for _, loc := range []device.GOSLocation{device.GOSNone, device.GOSAtPGS, device.GOSAtCG, device.GOSAtPGD} {
		d := device.Defects{}
		if loc != device.GOSNone {
			d.GOS = loc
		}
		st := tcad.NewSolver(p, d).Solve(bias)
		fmt.Printf("GOS@%-5s ID = %.3g A  (source barrier T = %.3g)\n", loc, st.ID, st.TBarrierS)
	}
}
