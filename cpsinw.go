// Package cpsinw is a fault-modeling and test-generation toolkit for
// Controllable-Polarity Silicon NanoWire (CP-SiNW) circuits, reproducing
// and extending:
//
//	H. Ghasemzadeh Mohammadi, P.-E. Gaillardon, G. De Micheli,
//	"Fault Modeling in Controllable Polarity Silicon Nanowire Circuits",
//	DATE 2015, pp. 453-458.
//
// The package is a facade over the full stack in internal/: a TIG-SiNWFET
// compact device model and synthetic TCAD solver, an analog (SPICE-class)
// circuit simulator with a hand-rolled netlist format, the SP/DP CP gate
// library, switch-level and gate-level logic simulation, the paper's fault
// models (including the new stuck-at n-type / p-type polarity faults),
// fault simulation, ATPG (PODEM, IDDQ justification, two-pattern
// stuck-open tests and the paper's channel-break procedure for dynamic-
// polarity gates), and an experiment harness regenerating every table and
// figure of the paper.
//
// Quick start:
//
//	dev := cpsinw.NewDevice()                    // Table II device
//	curve := dev.TransferCurve(0, 1.2, 61, 1.2, 1.2, 1.2)
//	ckt, _ := cpsinw.ParseBench("c17", reader)   // gate-level netlist
//	res := cpsinw.RunATPG(ckt)                   // extended CP fault model
//	fmt.Println(res.Coverage())
package cpsinw

import (
	"io"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/experiments"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// NewDevice returns the paper's reference TIG-SiNWFET compact model
// (Table II geometry, reproduction calibration).
func NewDevice() *device.Model { return device.Default() }

// NewDeviceWithDefects returns a reference device with defects injected.
func NewDeviceWithDefects(d device.Defects) *device.Model {
	return device.Default().WithDefects(d)
}

// ParseBench reads a gate-level circuit in the .bench-style format
// (NAND/NOR/NOT/BUF/XOR/MAJ over named nets).
func ParseBench(name string, r io.Reader) (*logic.Circuit, error) {
	return logic.ParseBench(name, r)
}

// WriteBench writes a circuit in the .bench-style format.
func WriteBench(w io.Writer, c *logic.Circuit) error {
	return logic.WriteBench(w, c)
}

// Benchmarks returns the built-in benchmark suite (c17, CP full adders,
// ripple-carry adders, parity trees, a TMR voter, array multipliers and a
// seeded random circuit).
func Benchmarks() map[string]*logic.Circuit { return bench.Suite() }

// FaultUniverse enumerates the extended CP fault list of a circuit:
// classical line stuck-at faults plus the transistor-level faults of the
// paper (channel break, stuck-on, stuck-at n-type/p-type, GOS, PG opens).
func FaultUniverse(c *logic.Circuit) []core.Fault {
	return core.Universe(c, core.AllFaults())
}

// RunATPG generates tests for the full testable CP fault model of a
// circuit: PODEM for stuck-at faults, polarity-fault tests with IDDQ
// fallback, two-pattern stuck-open tests for static-polarity gates and
// the paper's channel-break procedure for dynamic-polarity gates.
func RunATPG(c *logic.Circuit) *atpg.CampaignResult {
	universe := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	return atpg.Generate(c, universe, atpg.Options{})
}

// FaultSimulate runs the pattern set against the circuit's stuck-at
// faults and returns the coverage summary.
func FaultSimulate(c *logic.Circuit, patterns []faultsim.Pattern) faultsim.Coverage {
	faults := core.Universe(c, core.ClassicalOnly())
	return faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, patterns))
}

// Experiments exposes the paper-reproduction harness: each method
// regenerates one table or figure.
type Experiments struct{}

// Repro is the entry point to the reproduction harness.
var Repro Experiments

// TableI regenerates the fabrication-process/defect table.
func (Experiments) TableI() *experiments.TableIResult { return experiments.TableI() }

// TableII regenerates the device parameter table.
func (Experiments) TableII() *experiments.TableIIResult { return experiments.TableII() }

// TableIII regenerates the XOR2 polarity-defect detection table; analog
// adds the IDDQ confirmation by DC simulation.
func (Experiments) TableIII(analog bool) (*experiments.TableIIIResult, error) {
	return experiments.TableIII(analog)
}

// Figure3 regenerates the GOS I-V study.
func (Experiments) Figure3(points int) *experiments.Figure3Result {
	return experiments.Figure3(points)
}

// Figure4 regenerates the electron-density study.
func (Experiments) Figure4() *experiments.Figure4Result { return experiments.Figure4() }

// Figure5 regenerates the open-polarity-gate leakage/delay sweeps.
func (Experiments) Figure5(opt experiments.Figure5Options) (*experiments.Figure5Result, error) {
	return experiments.Figure5(opt)
}

// ChannelBreakMasking regenerates the section V-C masking measurements.
func (Experiments) ChannelBreakMasking() (*experiments.MaskingResult, error) {
	return experiments.ChannelBreakMasking()
}

// NANDTwoPattern verifies the paper's NAND two-pattern stuck-open set.
func (Experiments) NANDTwoPattern() (*experiments.NANDTwoPatternResult, error) {
	return experiments.NANDTwoPattern()
}

// ChannelBreakAlgorithm validates the paper's channel-break procedure
// across the DP gates of the benchmark suite.
func (Experiments) ChannelBreakAlgorithm() (*experiments.CBAlgorithmResult, error) {
	return experiments.ChannelBreakAlgorithm(nil)
}

// ATPGCampaign compares the classical stuck-at flow against the extended
// CP flow across the benchmark suite.
func (Experiments) ATPGCampaign() (*experiments.CampaignResult, error) {
	return experiments.ATPGCampaign(nil)
}

// AblationPGD runs the drain-side quasi-ballistic ablation study.
func (Experiments) AblationPGD(points int) (*experiments.AblationResult, error) {
	return experiments.AblationPGD(points)
}

// GOSDetect runs the gate-level GOS detectability extension.
func (Experiments) GOSDetect() (*experiments.GOSDetectResult, error) {
	return experiments.GOSDetect(nil)
}

// BreakSeverity runs the partial-break regime extension.
func (Experiments) BreakSeverity(points int) (*experiments.BreakSeverityResult, error) {
	return experiments.BreakSeverity(points)
}

// BridgeCampaign runs the interconnect-bridge extension.
func (Experiments) BridgeCampaign() (*experiments.BridgeCampaignResult, error) {
	return experiments.BridgeCampaign(nil)
}

// DelayFault runs the circuit-level delay-fault extension.
func (Experiments) DelayFault(points int) (*experiments.DelayFaultResult, error) {
	return experiments.DelayFault(points)
}

// Diagnosis runs the fault-dictionary diagnosis extension.
func (Experiments) Diagnosis() (*experiments.DiagnosisResult, error) {
	return experiments.Diagnosis(nil)
}

// BuildTestProgram assembles a tester program from an ATPG campaign and
// Execute runs it against a device under test; see internal/atpg.
func BuildTestProgram(c *logic.Circuit, res *atpg.CampaignResult) *atpg.Program {
	return atpg.BuildProgram(c, res)
}

// ExecuteTestProgram runs a tester program against a device with the
// given injected fault (nil for a golden device).
func ExecuteTestProgram(p *atpg.Program, fault *core.Fault) atpg.Verdict {
	return atpg.Execute(p, fault)
}
