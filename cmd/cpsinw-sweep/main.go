// Command cpsinw-sweep runs the paper's Figure 5 experiment: the floating
// polarity-gate voltage (Vcut) sweeps on the pull-up and pull-down
// transistors of the INV, NAND and XOR gates, reporting static leakage
// and propagation delay per point.
//
// Usage:
//
//	cpsinw-sweep [-points n] [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cpsinw/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-sweep: ")

	points := flag.Int("points", 9, "Vcut samples per curve")
	csv := flag.Bool("csv", false, "emit raw CSV instead of tables")
	flag.Parse()

	res, err := experiments.Figure5(experiments.Figure5Options{Points: *points})
	if err != nil {
		log.Fatal(err)
	}
	if !*csv {
		fmt.Print(res.Report())
		return
	}
	fmt.Fprintln(os.Stdout, "gate,transistor,terminal,vcut,leakage_A,delay_s,functional")
	for _, p := range res.Panels {
		for _, c := range p.Curves {
			for _, pt := range c.Points {
				delay := ""
				if !math.IsNaN(pt.Delay) {
					delay = fmt.Sprintf("%.6g", pt.Delay)
				}
				fmt.Fprintf(os.Stdout, "%s,%s,%s,%.3f,%.6g,%s,%v\n",
					p.Gate, p.Transistor, c.Terminal, pt.Vcut, pt.Leakage, delay, pt.Functional)
			}
		}
	}
}
