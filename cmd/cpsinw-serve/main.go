// Command cpsinw-serve runs the fault-campaign service: an HTTP/JSON
// API over the reproduction's fault simulation and ATPG engines with a
// bounded job queue, a worker pool and a content-addressed result
// cache.
//
// Usage:
//
//	cpsinw-serve [-addr :8080] [-workers n] [-queue n] [-cache n] [-job-timeout 60s]
//
// Endpoints:
//
//	POST /v1/campaigns             submit a campaign (netlist or benchmark + fault config)
//	GET  /v1/campaigns/{id}        job status
//	GET  /v1/campaigns/{id}/report finished report as JSON
//	GET  /healthz                  liveness
//	GET  /metrics                  queue depth, cache hit rate, latency percentiles
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpsinw/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded submission queue depth")
	cacheSize := flag.Int("cache", 128, "result cache entries (LRU)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job deadline")
	flag.Parse()

	srv := service.NewServer(service.ManagerConfig{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheSize:  *cacheSize,
		JobTimeout: *jobTimeout,
	})
	defer srv.Close()

	mgr := srv.Manager()
	expvar.Publish("cpsinw", expvar.Func(func() interface{} {
		return mgr.Metrics().Snapshot(mgr.QueueDepth(), mgr.Workers(), mgr.Cache())
	}))

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.Handle("GET /debug/vars", expvar.Handler())

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("listening on %s (workers=%d queue=%d cache=%d)", *addr, mgr.Workers(), *queue, *cacheSize)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	log.Print("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
}
