// Command cpsinw-serve runs the fault-campaign service: an HTTP/JSON
// API over the reproduction's fault simulation and ATPG engines with a
// bounded job queue, a worker pool, a content-addressed result cache
// and full observability (Prometheus metrics, SSE progress streams,
// per-campaign span traces, pprof).
//
// Usage:
//
//	cpsinw-serve [-addr :8080] [-workers n] [-queue n] [-cache n]
//	             [-job-timeout 60s] [-progress-interval 100ms]
//	             [-dict-dir path] [-result-dir path] [-shard-retries n]
//	             [-log-level info] [-log-format text]
//	             [-debug-addr 127.0.0.1:6060]
//
// Endpoints (main listener):
//
//	POST /v1/campaigns                  submit a campaign (netlist or benchmark + fault config)
//	GET  /v1/campaigns/{id}             job status (includes live progress)
//	GET  /v1/campaigns/{id}/report      finished report as JSON
//	GET  /v1/campaigns/{id}/events      SSE progress stream, ends with the terminal state
//	GET  /v1/campaigns/{id}/trace       per-campaign span tree (stage timings)
//	GET  /v1/campaigns/{id}/dictionary  fault-dictionary artifact metadata (needs -dict-dir)
//	POST /v1/campaigns/{id}/resume      resubmit a resumable campaign (needs -result-dir)
//	GET  /v1/resumable                  campaigns recoverable after a restart (needs -result-dir)
//	POST /v1/diagnose                   rank faults against an observed failure (needs -dict-dir)
//	GET  /healthz                       readiness: queue depth vs capacity, accepting flag
//	GET  /metrics                       Prometheus text exposition (?format=json: legacy flat JSON)
//
// Debug listener (-debug-addr, loopback only; empty disables):
//
//	GET  /debug/pprof/...             net/http/pprof profiles
//	GET  /debug/vars                  expvar, including the cpsinw metrics snapshot
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpsinw/internal/obs"
	"cpsinw/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-serve: ")

	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker pool size (0: GOMAXPROCS)")
	queue := flag.Int("queue", 64, "bounded submission queue depth")
	cacheSize := flag.Int("cache", 128, "result cache entries (LRU)")
	jobTimeout := flag.Duration("job-timeout", 60*time.Second, "per-job deadline")
	progressEvery := flag.Duration("progress-interval", 100*time.Millisecond,
		"minimum spacing between streamed progress events (negative: unthrottled)")
	dictDir := flag.String("dict-dir", "",
		"fault-dictionary store directory; campaigns persist signature dictionaries there and /v1/diagnose answers from them (empty disables)")
	resultDir := flag.String("result-dir", "",
		"durable result store directory: campaigns run sharded, sub-jobs and merged reports persist under content addresses, and unfinished campaigns resume after restarts (empty disables)")
	shardRetries := flag.Int("shard-retries", 1, "re-attempts before quarantining a failed campaign shard (negative disables)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logFormat := flag.String("log-format", "text", "log format: text (logfmt) or json")
	debugAddr := flag.String("debug-addr", "127.0.0.1:6060",
		"debug listener (pprof, expvar); loopback only; empty disables")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	format, err := obs.ParseFormat(*logFormat)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.New(os.Stderr, level, format).With("service", "cpsinw-serve")

	srv := service.NewServer(service.ManagerConfig{
		Workers:          *workers,
		QueueDepth:       *queue,
		CacheSize:        *cacheSize,
		JobTimeout:       *jobTimeout,
		ProgressInterval: *progressEvery,
		DictDir:          *dictDir,
		ResultDir:        *resultDir,
		ShardRetries:     *shardRetries,
		Logger:           logger,
	})
	defer srv.Close()

	mgr := srv.Manager()
	expvar.Publish("cpsinw", expvar.Func(func() interface{} {
		return mgr.Metrics().Snapshot(mgr.QueueDepth(), mgr.Workers(), mgr.Cache())
	}))

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           obs.AccessLog(logger, srv.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 2)
	var debugSrv *http.Server
	if *debugAddr != "" {
		if err := requireLoopback(*debugAddr); err != nil {
			log.Fatal(err)
		}
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
		logger.Info("debug listener up", "addr", *debugAddr)
	}

	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("listening",
		"addr", *addr, "workers", mgr.Workers(), "queue", *queue, "cache", *cacheSize,
		"job_timeout", jobTimeout.String(), "progress_interval", progressEvery.String())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}

	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("shutdown", "error", err.Error())
	}
	// Drain instead of hard-stopping: in-flight shards finish and persist
	// to the result store, queued campaigns park as resumable state that
	// the next process recovers via GET /v1/resumable.
	mgr.Drain()
	if debugSrv != nil {
		debugSrv.Shutdown(shutCtx)
	}
}

// debugMux serves the pprof profile handlers and expvar. It lives on
// its own listener so profiling endpoints never share the campaign
// API's exposure.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// requireLoopback refuses a debug address that would expose the pprof
// and expvar handlers beyond the local machine.
func requireLoopback(addr string) error {
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("-debug-addr %q: %w", addr, err)
	}
	if host == "localhost" {
		return nil
	}
	ip := net.ParseIP(host)
	if ip == nil || !ip.IsLoopback() {
		return fmt.Errorf("-debug-addr %q is not loopback; profiling endpoints must stay local", addr)
	}
	return nil
}
