// Command cpsinw-timing runs static timing analysis on a gate-level
// circuit with analog-characterised CP cell delays, optionally injecting
// a delay-degrading defect, and generates transition (delay) fault tests.
//
// Usage:
//
//	cpsinw-timing [-circuit name | < netlist.bench] [-clock 500p]
//	              [-slow gate=factor] [-transition] [-engine auto]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/circuit"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
	"cpsinw/internal/timing"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-timing: ")

	circuitName := flag.String("circuit", "", "built-in benchmark name (empty: read .bench from stdin)")
	clock := flag.String("clock", "", "clock period for slack report (e.g. 500p)")
	slow := flag.String("slow", "", "inject delay degradation: gate=factor (e.g. fa0_c=3.5)")
	transition := flag.Bool("transition", false, "generate transition-fault tests")
	engineName := flag.String("engine", "compiled", "transition-test simulation engine: auto, compiled, packed or reference")
	flag.Parse()

	engine, err := faultsim.ParseEngine(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	var c *logic.Circuit
	if *circuitName != "" {
		var err error
		c, err = bench.Get(*circuitName)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		c, err = logic.ParseBench("stdin", os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("circuit: %s  %s\n\n", c.Name, c.Statistics())

	opt := timing.Options{}
	if *slow != "" {
		parts := strings.SplitN(*slow, "=", 2)
		if len(parts) != 2 {
			log.Fatalf("bad -slow %q, want gate=factor", *slow)
		}
		f, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			log.Fatalf("bad factor in -slow: %v", err)
		}
		opt.DelayFactor = map[string]float64{parts[0]: f}
	}

	a, err := timing.Analyse(c, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("critical path delay: %s\n", report.FormatSI(a.Tmax))
	fmt.Printf("critical path: %s\n\n", strings.Join(a.CriticalPath, " -> "))

	t := report.Table{Title: "output arrivals", Headers: []string{"output", "arrival [s]", "slack"}}
	var period float64
	if *clock != "" {
		period, err = circuit.ParseValue(*clock)
		if err != nil {
			log.Fatalf("bad -clock: %v", err)
		}
	}
	for _, po := range c.Outputs {
		slack := "-"
		if period > 0 {
			slack = report.FormatSI(period - a.Arrival[po])
		}
		t.Add(po, a.Arrival[po], slack)
	}
	fmt.Print(t.String())
	if period > 0 {
		if v := a.Violations(c, period); len(v) > 0 {
			fmt.Printf("\nTIMING VIOLATIONS at %s: %s\n", report.FormatSI(period), strings.Join(v, ", "))
		} else {
			fmt.Printf("\ntiming met at %s\n", report.FormatSI(period))
		}
	}

	if *transition {
		tests, covered, total, err := timing.TransitionCampaign(c, atpg.Options{Engine: engine})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ntransition faults: %d/%d covered with %d two-pattern tests\n",
			covered, total, len(tests))
	}
}
