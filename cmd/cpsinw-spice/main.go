// Command cpsinw-spice is a small analog circuit simulator for the
// project's SPICE-like netlist format (see internal/circuit): TIG-SiNWFET
// instances with defect annotations, R/C elements, DC/pulse/PWL sources
// and subcircuits. It runs a DC operating point or a transient analysis
// and prints node voltages / CSV waveforms.
//
// Usage:
//
//	cpsinw-spice -op < netlist.sp
//	cpsinw-spice -tran 1.6n -step 1p -probe out,in < netlist.sp
//
// Example netlist (a defect-free CP inverter):
//
//   - inverter
//     VDD vdd 0 1.2
//     VIN in 0 pulse(0 1.2 100p 10p 10p 600p 1.4n)
//     M1 out in 0 0 vdd      ; pull-up: p-type (PGs grounded)
//     M2 out in vdd vdd 0    ; pull-down: n-type (PGs at VDD)
//     CL out 0 0.2f
//     .end
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cpsinw/internal/circuit"
	"cpsinw/internal/spice"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-spice: ")

	op := flag.Bool("op", false, "DC operating point")
	tran := flag.String("tran", "", "transient stop time (e.g. 1.6n)")
	step := flag.String("step", "1p", "transient step")
	probe := flag.String("probe", "", "comma-separated nodes to record (default: all)")
	flag.Parse()

	var p circuit.Parser
	net, err := p.Parse(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := spice.NewEngine(net, spice.Options{})
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case *tran != "":
		stop, err := circuit.ParseValue(*tran)
		if err != nil {
			log.Fatalf("bad -tran: %v", err)
		}
		h, err := circuit.ParseValue(*step)
		if err != nil {
			log.Fatalf("bad -step: %v", err)
		}
		nodes := net.Nodes()
		if *probe != "" {
			nodes = nil
			for _, n := range strings.Split(*probe, ",") {
				nodes = append(nodes, strings.TrimSpace(n))
			}
		}
		wf, err := eng.Tran(h, stop, nodes)
		if err != nil {
			log.Fatal(err)
		}
		// CSV: time, then probed node voltages, then source currents.
		header := []string{"t"}
		header = append(header, nodes...)
		for _, s := range net.Sources {
			header = append(header, "I("+s.Name+")")
		}
		fmt.Println(strings.Join(header, ","))
		for i, t := range wf.T {
			row := []string{fmt.Sprintf("%.6g", t)}
			for _, n := range nodes {
				row = append(row, fmt.Sprintf("%.6g", wf.V[n][i]))
			}
			for _, s := range net.Sources {
				row = append(row, fmt.Sprintf("%.6g", wf.I[s.Name][i]))
			}
			fmt.Println(strings.Join(row, ","))
		}
	default:
		if !*op {
			log.Println("no analysis selected; defaulting to -op")
		}
		sol, err := eng.DC(0)
		if err != nil {
			log.Fatal(err)
		}
		for _, n := range net.Nodes() {
			fmt.Printf("V(%s) = %.6g\n", n, sol.V(n))
		}
		for _, s := range net.Sources {
			fmt.Printf("I(%s) = %.6g\n", s.Name, sol.I(s.Name))
		}
	}
}
