// Command sinwfet-iv dumps I-V characteristics of the TIG-SiNWFET compact
// model — the curves behind the paper's Figure 3 — as CSV.
//
// Usage:
//
//	sinwfet-iv [-curve transfer|output] [-gos none|pgs|cg|pgd]
//	           [-gossize nm] [-break sev] [-points n]
//	           [-vpgs v] [-vpgd v] [-vcg v] [-vd v]
//
// The transfer curve sweeps VCG at fixed VD; the output curve sweeps VD at
// fixed VCG. Unset bias flags default to VDD.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cpsinw/internal/device"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sinwfet-iv: ")

	curve := flag.String("curve", "transfer", "curve kind: transfer (ID-VCG) or output (ID-VD)")
	gos := flag.String("gos", "none", "gate-oxide short location: none, pgs, cg, pgd")
	gosSize := flag.Float64("gossize", 0, "GOS size in nm (0 = reference 2 nm when -gos set)")
	breakSev := flag.Float64("break", 0, "channel break severity in [0,1]")
	points := flag.Int("points", 61, "sweep points")
	vpgs := flag.Float64("vpgs", -1, "PGS bias (V); default VDD")
	vpgd := flag.Float64("vpgd", -1, "PGD bias (V); default VDD")
	vcg := flag.Float64("vcg", -1, "CG bias for output curves (V); default VDD")
	vd := flag.Float64("vd", -1, "drain bias for transfer curves (V); default VDD")
	flag.Parse()

	m := device.Default()
	vdd := m.P.VDD
	def := func(v float64) float64 {
		if v < 0 {
			return vdd
		}
		return v
	}

	var d device.Defects
	switch *gos {
	case "none":
	case "pgs":
		d.GOS = device.GOSAtPGS
	case "cg":
		d.GOS = device.GOSAtCG
	case "pgd":
		d.GOS = device.GOSAtPGD
	default:
		log.Fatalf("unknown -gos %q", *gos)
	}
	d.GOSSize = *gosSize
	d.BreakSeverity = *breakSev
	if d.Defective() {
		m = m.WithDefects(d)
	}

	var pts []device.IVPoint
	var xName string
	switch *curve {
	case "transfer":
		pts = m.TransferCurve(0, vdd, *points, def(*vpgs), def(*vpgd), def(*vd))
		xName = "VCG"
	case "output":
		pts = m.OutputCurve(0, vdd, *points, def(*vcg), def(*vpgs), def(*vpgd))
		xName = "VD"
	default:
		log.Fatalf("unknown -curve %q", *curve)
	}

	fmt.Fprintf(os.Stdout, "# TIG-SiNWFET %s curve, gos=%s break=%.2f\n", *curve, *gos, *breakSev)
	fmt.Fprintf(os.Stdout, "%s,ID\n", xName)
	for _, p := range pts {
		fmt.Fprintf(os.Stdout, "%.6g,%.6g\n", p.V, p.I)
	}
	fmt.Fprintf(os.Stderr, "ID(SAT) = %.4g A, VthN = %.3f V\n", m.IDSat(), m.VThN(0))
}
