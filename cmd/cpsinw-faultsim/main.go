// Command cpsinw-faultsim runs fault simulation campaigns on a gate-level
// circuit (.bench format on stdin or a built-in benchmark by name): the
// classical stuck-at model, the paper's CP transistor faults with and
// without IDDQ observation, and the Table III exhaustive polarity study
// when the circuit is a single XOR2.
//
// Usage:
//
//	cpsinw-faultsim [-circuit name | < netlist.bench] [-patterns n] [-engine auto]
//	cpsinw-faultsim [-shards k] [-result-dir path]   sharded campaign with durable shard reuse
//	cpsinw-faultsim -tableiii
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"sync/atomic"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/experiments"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
	"cpsinw/internal/resultstore"
	"cpsinw/internal/service"
	"cpsinw/internal/shard"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-faultsim: ")

	circuitName := flag.String("circuit", "", "built-in benchmark name (empty: read .bench from stdin)")
	patterns := flag.Int("patterns", 256, "random patterns (exhaustive when inputs <= 12)")
	tableIII := flag.Bool("tableiii", false, "run the paper's Table III polarity study on the XOR2 and exit")
	seed := flag.Int64("seed", 1, "random pattern seed")
	engineName := flag.String("engine", "compiled", "fault-simulation engine: auto, compiled, packed or reference")
	list := flag.Bool("list", false, "list built-in benchmarks and exit")
	shards := flag.Int("shards", 1, "split the campaign into k sub-jobs merged bit-identically (0: auto-size, 1: single-shot)")
	resultDir := flag.String("result-dir", "", "durable result store; completed shards are reused across runs (empty disables)")
	flag.Parse()

	engine, err := faultsim.ParseEngine(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	if *list {
		for _, n := range bench.Names() {
			fmt.Println(n)
		}
		fmt.Println("# ISCAS-scale reconstructions (internal/bench/testdata/iscas):")
		for _, n := range bench.ISCASNames() {
			fmt.Println(n)
		}
		fmt.Println("# parameterized families (any size):")
		for _, f := range bench.Families() {
			fmt.Println(f)
		}
		return
	}
	if *tableIII {
		r, err := experiments.TableIII(true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(r.Report())
		return
	}

	var c *logic.Circuit
	var netlistSrc string
	if *circuitName != "" {
		var err error
		c, err = bench.Get(*circuitName)
		if err != nil {
			log.Fatalf("%v (use -list)", err)
		}
	} else {
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		netlistSrc = string(raw)
		c, err = logic.ParseBench("stdin", strings.NewReader(netlistSrc))
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("circuit: %s  %s\n\n", c.Name, c.Statistics())

	if *shards != 1 || *resultDir != "" {
		runSharded(*circuitName, netlistSrc, *patterns, *seed, *engineName, *shards, *resultDir)
		return
	}

	pats := service.BuildPatterns(c, *patterns, *seed)
	sim := faultsim.New(c)
	sim.Engine = engine

	saFaults := core.Universe(c, core.ClassicalOnly())
	saCov := faultsim.Summarise(sim.RunStuckAt(saFaults, pats))

	trUniverse := core.Universe(c, core.UniverseOptions{ChannelBreak: true, Polarity: true, StuckOn: true})
	noIDDQ, err := sim.RunTransistor(trUniverse, pats, false)
	if err != nil {
		log.Fatal(err)
	}
	withIDDQ, err := sim.RunTransistor(trUniverse, pats, true)
	if err != nil {
		log.Fatal(err)
	}
	covNo := faultsim.Summarise(noIDDQ)
	covYes := faultsim.Summarise(withIDDQ)

	t := report.Table{
		Title:   fmt.Sprintf("fault simulation with %d patterns", len(pats)),
		Headers: []string{"model", "faults", "detected", "coverage"},
	}
	t.Add("classical stuck-at", saCov.Total, saCov.Detected, fmt.Sprintf("%.1f%%", saCov.Percent()))
	t.Add("CP transistor (voltage only)", covNo.Total, covNo.Detected, fmt.Sprintf("%.1f%%", covNo.Percent()))
	t.Add("CP transistor (+IDDQ)", covYes.Total, covYes.Detected, fmt.Sprintf("%.1f%%", covYes.Percent()))
	fmt.Print(t.String())

	if len(covYes.Undetected) > 0 {
		fmt.Printf("\nundetected CP faults (%d):\n", len(covYes.Undetected))
		for i, f := range covYes.Undetected {
			if i == 20 {
				fmt.Printf("  ... and %d more\n", len(covYes.Undetected)-20)
				break
			}
			fmt.Printf("  %v\n", f)
		}
	}
}

// runSharded routes the campaign through the sharded executor: fault
// lists split into content-addressed sub-jobs whose merged results are
// bit-identical to the single-shot run, and -result-dir reuses
// completed shards across invocations of the same campaign.
func runSharded(benchmark, netlist string, patterns int, seed int64, engine string, shards int, resultDir string) {
	req := service.CampaignRequest{
		Benchmark: benchmark,
		Netlist:   netlist,
		Faults: service.FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, StuckOn: true, IDDQ: true,
		},
		Patterns: patterns,
		Seed:     seed,
		Engine:   engine,
		Shards:   shards,
	}
	norm, c, err := req.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	opt := service.ShardedOptions{Key: service.CanonicalKey(c, norm), Shards: norm.Shards}
	var scheduled, hits atomic.Int64 // callbacks fire on scheduler goroutines
	opt.Events = shard.Events{Scheduled: func(shard.SubJob) { scheduled.Add(1) }}
	opt.OnCacheHit = func(shard.SubJob) { hits.Add(1) }
	if resultDir != "" {
		store, err := resultstore.Open(resultDir)
		if err != nil {
			log.Fatal(err)
		}
		opt.Store = store
	}
	rep, err := service.RunCampaignSharded(context.Background(), c, norm, opt, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range rep.Tables {
		fmt.Print(t.String())
		fmt.Println()
	}
	fmt.Printf("campaign %s: %d shards (%d reused from store), %d ms\n",
		opt.Key[:12], scheduled.Load(), hits.Load(), rep.ElapsedMS)
}
