// Command cpsinw-diagnose works with persistent fault-dictionary
// artifacts (.cpd files): build one from a circuit without a running
// server, inspect a stored artifact, and rank fault candidates against
// an observed tester response — the offline twin of the service's
// POST /v1/diagnose.
//
// Usage:
//
//	cpsinw-diagnose build   -dir store [-circuit name | < netlist.bench]
//	                        [-patterns n] [-seed n] [-engine auto] [-iddq]
//	                        [-stuck-at] [-polarity] [-stuck-open] [-stuck-on]
//	cpsinw-diagnose inspect (-file art.cpd | -dir store -key hex)
//	cpsinw-diagnose match   (-file art.cpd | -dir store -key hex)
//	                        -fail 1,5,9 [-leak 2,3] [-top 5]
//
// build runs the same one-pass campaign the service runs: signatures
// are harvested from the simulation sweeps themselves, and the artifact
// key is the campaign's canonical content address, so a dictionary
// built here is byte-addressable by a cpsinw-serve instance pointed at
// the same -dict-dir (and vice versa).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"cpsinw/internal/dict"
	"cpsinw/internal/report"
	"cpsinw/internal/service"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-diagnose: ")

	if len(os.Args) < 2 {
		log.Fatal("usage: cpsinw-diagnose {build|inspect|match} [flags] (see -h of each)")
	}
	switch os.Args[1] {
	case "build":
		runBuild(os.Args[2:])
	case "inspect":
		runInspect(os.Args[2:])
	case "match":
		runMatch(os.Args[2:])
	default:
		log.Fatalf("unknown subcommand %q (want build, inspect or match)", os.Args[1])
	}
}

func runBuild(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	dir := fs.String("dir", "", "dictionary store directory (required)")
	circuit := fs.String("circuit", "", "built-in benchmark name (empty: read .bench from stdin)")
	patterns := fs.Int("patterns", 256, "random patterns (exhaustive when inputs <= 12)")
	seed := fs.Int64("seed", 1, "random pattern seed")
	engine := fs.String("engine", "", "fault-simulation engine: auto, compiled, packed or reference")
	stuckAt := fs.Bool("stuck-at", true, "include classical stuck-at faults")
	polarity := fs.Bool("polarity", true, "include polarity (SA-n/SA-p) faults")
	stuckOpen := fs.Bool("stuck-open", true, "include channel-break faults")
	stuckOn := fs.Bool("stuck-on", true, "include stuck-on faults")
	iddq := fs.Bool("iddq", false, "observe IDDQ (populates the leak plane)")
	fs.Parse(args)
	if *dir == "" {
		log.Fatal("build: -dir is required")
	}

	req := service.CampaignRequest{
		Benchmark: *circuit,
		Faults: service.FaultConfig{
			StuckAt: *stuckAt, Polarity: *polarity,
			StuckOpen: *stuckOpen, StuckOn: *stuckOn,
			IDDQ: *iddq,
		},
		Patterns: *patterns,
		Seed:     *seed,
		Engine:   *engine,
	}
	if *circuit == "" {
		raw, err := io.ReadAll(os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
		req.Netlist = string(raw)
	}
	norm, c, err := req.Normalize()
	if err != nil {
		log.Fatal(err)
	}
	store, err := dict.Open(*dir)
	if err != nil {
		log.Fatal(err)
	}
	key := service.CanonicalKey(c, norm)
	rep, err := service.RunCampaignObserved(context.Background(), c, norm,
		&service.RunObserver{Dict: store, DictKey: key})
	if err != nil {
		log.Fatal(err)
	}
	if rep.Dictionary == nil {
		log.Fatal("campaign produced no dictionary (no capturable fault class enabled)")
	}
	m := rep.Dictionary
	fmt.Printf("built %s\n", store.Dir()+"/"+m.Key+dict.ArtifactExt)
	fmt.Printf("circuit %s: %d entries over %d patterns, %d bytes compressed\n",
		c.Name, m.Entries, m.Patterns, m.CompressedBytes)
	fmt.Printf("resolution: %d detected, %d signature classes, %d uniquely diagnosable\n",
		m.Detected, m.Classes, m.UniquelyDiagnosable)
}

// load resolves the artifact from either -file or -dir/-key.
func load(file, dir, key string) *dict.Dictionary {
	switch {
	case file != "" && (dir != "" || key != ""):
		log.Fatal("-file and -dir/-key are mutually exclusive")
	case file != "":
		f, err := os.Open(file)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		d, err := dict.Read(f)
		if err != nil {
			log.Fatalf("%s: %v", file, err)
		}
		return d
	case dir != "" && key != "":
		store, err := dict.Open(dir)
		if err != nil {
			log.Fatal(err)
		}
		d, err := store.Get(key)
		if err != nil {
			log.Fatal(err)
		}
		return d
	}
	log.Fatal("need -file, or -dir and -key")
	return nil
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	file := fs.String("file", "", "artifact file (.cpd)")
	dir := fs.String("dir", "", "dictionary store directory")
	key := fs.String("key", "", "artifact key (64 hex digits)")
	escapes := fs.Bool("escapes", false, "also list undetected (undiagnosable) faults")
	fs.Parse(args)
	d := load(*file, *dir, *key)

	m := d.Meta
	t := report.Table{
		Title:   "fault dictionary " + m.Key[:12],
		Headers: []string{"field", "value"},
	}
	t.Add("circuit", m.Circuit)
	t.Add("created", m.CreatedAt)
	t.Add("engine", m.Engine)
	t.Add("patterns", m.Patterns)
	t.Add("seed", m.Seed)
	t.Add("iddq", m.IDDQ)
	t.Add("entries", m.Entries)
	t.Add("detected", m.Resolution.Detected)
	t.Add("signature classes", m.Resolution.Classes)
	t.Add("uniquely diagnosable", m.Resolution.UniquelyDiagnosable)
	fmt.Print(t.String())
	if *escapes {
		esc := d.Escapes()
		fmt.Printf("\nescapes (%d):\n", len(esc))
		for _, f := range esc {
			fmt.Printf("  %s\n", f)
		}
	}
}

func runMatch(args []string) {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	file := fs.String("file", "", "artifact file (.cpd)")
	dir := fs.String("dir", "", "dictionary store directory")
	key := fs.String("key", "", "artifact key (64 hex digits)")
	fail := fs.String("fail", "", "comma-separated failing pattern indices")
	leak := fs.String("leak", "", "comma-separated leaking (IDDQ) pattern indices")
	top := fs.Int("top", 5, "candidates to print")
	fs.Parse(args)
	d := load(*file, *dir, *key)

	failing := parseIndices("fail", *fail, d.Meta.Patterns)
	leaking := parseIndices("leak", *leak, d.Meta.Patterns)
	if len(failing) == 0 && len(leaking) == 0 {
		log.Fatal("match: at least one -fail or -leak index is required")
	}
	cands := d.Diagnose(dict.ObservationFrom(d.Meta.Patterns, failing, leaking), *top)
	if len(cands) == 0 {
		fmt.Println("no overlapping fault signatures (observation matches nothing in the dictionary)")
		return
	}
	t := report.Table{
		Title:   fmt.Sprintf("diagnosis: %d failing / %d leaking patterns", len(failing), len(leaking)),
		Headers: []string{"#", "fault", "class", "score", "overlap", "sig len", "exact"},
	}
	for i, cd := range cands {
		t.Add(i+1, cd.Fault, cd.Class, fmt.Sprintf("%.3f", cd.Score), cd.Intersection, cd.SignatureLen, cd.Exact)
	}
	fmt.Print(t.String())
}

// parseIndices parses a comma-separated index list, validating range.
func parseIndices(name, s string, nPatterns int) []int {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	out := []int{}
	for _, tok := range strings.Split(s, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(tok))
		if err != nil {
			log.Fatalf("-%s: bad index %q", name, tok)
		}
		if i < 0 || i >= nPatterns {
			log.Fatalf("-%s: index %d out of range (dictionary has %d patterns)", name, i, nPatterns)
		}
		out = append(out, i)
	}
	return out
}
