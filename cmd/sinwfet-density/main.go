// Command sinwfet-density prints the electron-density profile of the
// TIG-SiNWFET channel from the synthetic TCAD solver — the paper's
// Figure 4 — as CSV, plus the channel-average comparison against the
// values reported in the paper.
//
// Usage:
//
//	sinwfet-density [-gos none|pgs|cg|pgd] [-all]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"cpsinw/internal/device"
	"cpsinw/internal/experiments"
	"cpsinw/internal/tcad"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sinwfet-density: ")

	gos := flag.String("gos", "none", "gate-oxide short location: none, pgs, cg, pgd")
	all := flag.Bool("all", false, "print the Figure 4 comparison table for all four cases")
	flag.Parse()

	if *all {
		fmt.Print(experiments.Figure4().Report())
		return
	}

	var d device.Defects
	switch *gos {
	case "none":
	case "pgs":
		d.GOS = device.GOSAtPGS
	case "cg":
		d.GOS = device.GOSAtCG
	case "pgd":
		d.GOS = device.GOSAtPGD
	default:
		log.Fatalf("unknown -gos %q", *gos)
	}

	p := device.DefaultParams()
	prof := tcad.ElectronDensity(p, d, tcad.SaturationBias(p))
	fmt.Fprintf(os.Stdout, "# electron density along the channel, gos=%s\n", *gos)
	fmt.Fprintln(os.Stdout, "x_nm,region,ne_cm3")
	for i := range prof.X {
		fmt.Fprintf(os.Stdout, "%.2f,%s,%.4g\n", prof.X[i], prof.Regions[i], prof.NE[i])
	}
	fmt.Fprintf(os.Stderr, "channel mean = %.4g cm^-3 (paper: %.4g)\n",
		prof.Mean, experiments.PaperDensity[d.GOS])
}
