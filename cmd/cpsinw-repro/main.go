// Command cpsinw-repro regenerates every table and figure of the paper
// (Ghasemzadeh Mohammadi et al., "Fault Modeling in Controllable Polarity
// Silicon Nanowire Circuits", DATE 2015) and prints the paper-style
// reports. Select individual experiments with -only.
//
// Usage:
//
//	cpsinw-repro [-only t1,t2,t3,f3,f4,f5,vc1,vc2,vc3,a1,a2,e1,e2,e3,e4,e5,e6] [-fast]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"cpsinw/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-repro: ")

	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	fast := flag.Bool("fast", false, "reduced sweep resolutions")
	flag.Parse()

	selected := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			selected[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	want := func(id string) bool { return len(selected) == 0 || selected[id] }

	points := 9
	f3points := 61
	if *fast {
		points, f3points = 5, 17
	}

	run := func(id, title string, f func() (string, error)) {
		if !want(id) {
			return
		}
		start := time.Now()
		out, err := f()
		if err != nil {
			log.Fatalf("%s: %v", id, err)
		}
		fmt.Printf("### %s — %s (%.2fs)\n\n%s\n", strings.ToUpper(id), title, time.Since(start).Seconds(), out)
	}

	run("t1", "Table I: fabrication process and defect model", func() (string, error) {
		return experiments.TableI().Report(), nil
	})
	run("t2", "Table II: device parameters", func() (string, error) {
		return experiments.TableII().Report(), nil
	})
	run("f3", "Figure 3: GOS I-V study", func() (string, error) {
		rep := experiments.Figure3(f3points).Report()
		rep += fmt.Sprintf("synthetic-TCAD ID(SAT) cross-check: %v\n", experiments.Figure3TCAD())
		return rep, nil
	})
	run("f4", "Figure 4: electron density", func() (string, error) {
		return experiments.Figure4().Report(), nil
	})
	run("f5", "Figure 5: open polarity gate sweeps", func() (string, error) {
		r, err := experiments.Figure5(experiments.Figure5Options{Points: points})
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("t3", "Table III: polarity defects in the XOR2", func() (string, error) {
		r, err := experiments.TableIII(true)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("vc1", "Section V-C: channel-break masking", func() (string, error) {
		r, err := experiments.ChannelBreakMasking()
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("vc2", "Section V-C: NAND two-pattern set", func() (string, error) {
		r, err := experiments.NANDTwoPattern()
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("vc3", "Section V-C: channel-break procedure on DP gates", func() (string, error) {
		r, err := experiments.ChannelBreakAlgorithm(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("a1", "Extension: ATPG campaign (classical vs extended)", func() (string, error) {
		r, err := experiments.ATPGCampaign(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("a2", "Ablation: PGD quasi-ballistic softening", func() (string, error) {
		r, err := experiments.AblationPGD(6)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e1", "Extension: gate-level GOS detectability", func() (string, error) {
		r, err := experiments.GOSDetect(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e2", "Extension: partial break severity regimes", func() (string, error) {
		r, err := experiments.BreakSeverity(8)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e3", "Extension: interconnect bridge campaign", func() (string, error) {
		r, err := experiments.BridgeCampaign(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e4", "Extension: circuit-level delay faults from partial breaks", func() (string, error) {
		r, err := experiments.DelayFault(6)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e5", "Extension: fault-dictionary diagnosis resolution", func() (string, error) {
		r, err := experiments.Diagnosis(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
	run("e6", "Extension: dictionary-driven dynamic test compaction", func() (string, error) {
		r, err := experiments.Compaction(nil)
		if err != nil {
			return "", err
		}
		return r.Report(), nil
	})
}
