// Command cpsinw-atpg generates tests for a gate-level circuit under the
// extended controllable-polarity fault model: PODEM for stuck-at faults,
// polarity-fault tests with the IDDQ fallback, two-pattern stuck-open
// tests for static-polarity gates and the paper's channel-break procedure
// for dynamic-polarity gates.
//
// Usage:
//
//	cpsinw-atpg [-circuit name | < netlist.bench] [-classical] [-engine auto] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("cpsinw-atpg: ")

	circuitName := flag.String("circuit", "", "built-in benchmark name (empty: read .bench from stdin)")
	classical := flag.Bool("classical", false, "target only classical line stuck-at faults")
	engineName := flag.String("engine", "compiled", "fault-dropping simulation engine: auto, compiled, packed or reference")
	verbose := flag.Bool("v", false, "print every generated vector")
	flag.Parse()

	engine, err := faultsim.ParseEngine(*engineName)
	if err != nil {
		log.Fatal(err)
	}

	var c *logic.Circuit
	if *circuitName != "" {
		var err error
		c, err = bench.Get(*circuitName)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		c, err = logic.ParseBench("stdin", os.Stdin)
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("circuit: %s  %s\n\n", c.Name, c.Statistics())

	opts := core.UniverseOptions{LineStuckAt: true, ChannelBreak: true, Polarity: true}
	if *classical {
		opts = core.ClassicalOnly()
	}
	universe := core.Universe(c, opts)
	res := atpg.Generate(c, universe, atpg.Options{Engine: engine})

	t := report.Table{
		Title:   "ATPG results",
		Headers: []string{"fault class", "targeted", "covered"},
	}
	t.Add("line stuck-at", res.StuckAtTargeted, res.StuckAtCovered)
	t.Add("stuck-at n/p-type (polarity)", res.PolarityTargeted, res.PolarityCovered)
	t.Add("channel break (SP, two-pattern)", res.CBSPTargeted, res.CBSPCovered)
	t.Add("channel break (DP, new procedure)", res.CBDPTargeted, res.CBDPCovered)
	fmt.Print(t.String())
	fmt.Printf("\noverall coverage: %.1f%%\n", res.Coverage())
	fmt.Printf("test vectors: %d combinational, %d IDDQ, %d two-pattern pairs, %d channel-break plans\n",
		len(res.Set.Patterns), len(res.Set.IDDQPatterns), len(res.Set.TwoPattern), len(res.Set.CBPlans))
	if len(res.Untestable) > 0 {
		fmt.Printf("untestable faults (%d):\n", len(res.Untestable))
		for i, f := range res.Untestable {
			if i == 20 {
				fmt.Printf("  ... and %d more\n", len(res.Untestable)-20)
				break
			}
			fmt.Printf("  %v\n", f)
		}
	}

	if *verbose {
		fmt.Println("\ncombinational patterns:")
		for i, p := range res.Set.Patterns {
			fmt.Printf("  %3d: %s\n", i, formatPattern(c, p))
		}
		fmt.Println("IDDQ patterns:")
		for i, p := range res.Set.IDDQPatterns {
			fmt.Printf("  %3d: %s\n", i, formatPattern(c, p))
		}
		fmt.Println("two-pattern tests:")
		for i, tp := range res.Set.TwoPattern {
			fmt.Printf("  %3d: %v: %s -> %s\n", i, tp.Fault, formatPattern(c, tp.Init), formatPattern(c, tp.Test))
		}
		fmt.Println("channel-break plans:")
		for i, plan := range res.Set.CBPlans {
			fmt.Printf("  %3d: %v: inject %v, apply %s, observe %s\n",
				i, plan.Fault, plan.Injection, formatPattern(c, plan.Pattern), plan.Observe)
		}
	}
}

func formatPattern(c *logic.Circuit, p faultsim.Pattern) string {
	var b strings.Builder
	for _, pi := range c.Inputs {
		v := p[pi]
		b.WriteString(v.String())
	}
	return b.String()
}
