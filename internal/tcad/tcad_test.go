package tcad

import (
	"math"
	"testing"
	"testing/quick"

	"cpsinw/internal/device"
)

func satProfile(t *testing.T, d device.Defects) *DensityProfile {
	t.Helper()
	p := device.DefaultParams()
	return ElectronDensity(p, d, SaturationBias(p))
}

func TestGridRegions(t *testing.T) {
	p := device.DefaultParams()
	g := NewGrid(p, 1)
	if g.N() < 100 {
		t.Fatalf("grid too coarse: %d nodes", g.N())
	}
	// The five regions must appear in order.
	last := RegionPGS
	seen := map[Region]bool{RegionPGS: true}
	for _, r := range g.Reg {
		if r < last {
			t.Fatalf("regions out of order: %v after %v", r, last)
		}
		last = r
		seen[r] = true
	}
	for _, r := range []Region{RegionPGS, RegionSpacerS, RegionCG, RegionSpacerD, RegionPGD} {
		if !seen[r] {
			t.Errorf("region %v missing from grid", r)
		}
	}
	if g.X[0] != 0 || math.Abs(g.X[g.N()-1]-p.TotalLength()) > 1e-9 {
		t.Errorf("grid extent [%v, %v], want [0, %v]", g.X[0], g.X[g.N()-1], p.TotalLength())
	}
}

func TestRegionString(t *testing.T) {
	for r, want := range map[Region]string{
		RegionPGS: "PGS", RegionSpacerS: "spacer-S", RegionCG: "CG",
		RegionSpacerD: "spacer-D", RegionPGD: "PGD", Region(42): "invalid",
	} {
		if got := r.String(); got != want {
			t.Errorf("Region(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestFaultFreeDensityMatchesFigure4(t *testing.T) {
	prof := satProfile(t, device.Defects{})
	// Paper: fault-free channel electron density 1.558e19 cm^-3.
	if prof.Mean < 0.5e19 || prof.Mean > 5e19 {
		t.Errorf("fault-free mean density = %.3e, want ~1.5e19 (0.5e19..5e19)", prof.Mean)
	}
}

func TestGOSDensityOrderingMatchesFigure4(t *testing.T) {
	// Paper Figure 4 ordering: FF (1.558e19) > CG GOS (1.763e18) >
	// PGD GOS (1.316e18) >> PGS GOS (1.426e17).
	ff := satProfile(t, device.Defects{}).Mean
	cg := satProfile(t, device.Defects{GOS: device.GOSAtCG}).Mean
	pgd := satProfile(t, device.Defects{GOS: device.GOSAtPGD}).Mean
	pgs := satProfile(t, device.Defects{GOS: device.GOSAtPGS}).Mean
	if !(ff > cg && cg > pgd && pgd > pgs) {
		t.Fatalf("ordering violated: ff=%.3e cg=%.3e pgd=%.3e pgs=%.3e", ff, cg, pgd, pgs)
	}
	// Ratios: FF/CG ~ 8.8x, FF/PGD ~ 11.8x, FF/PGS ~ 109x. Accept a factor
	// ~3 band around each.
	checkRatio := func(name string, got, want float64) {
		if got < want/3 || got > want*3 {
			t.Errorf("%s density ratio = %.1f, want ~%.1f (band /3..x3)", name, got, want)
		}
	}
	checkRatio("FF/CG", ff/cg, 8.8)
	checkRatio("FF/PGD", ff/pgd, 11.8)
	checkRatio("FF/PGS", ff/pgs, 109)
}

func TestGOSWellIsLocalised(t *testing.T) {
	// The density disturbance must be centred on the defective gate:
	// the depression relative to the fault-free profile is deepest in the
	// defective region. (Absolute density is lowest at the drain pinch-off
	// in every profile, so compare ratios, not raw minima.)
	ff := satProfile(t, device.Defects{})
	prof := satProfile(t, device.Defects{GOS: device.GOSAtPGS})
	depression := func(r Region) float64 {
		worst := 1.0
		for i, reg := range prof.Regions {
			if reg != r || ff.NE[i] <= 0 {
				continue
			}
			if ratio := prof.NE[i] / ff.NE[i]; ratio < worst {
				worst = ratio
			}
		}
		return worst
	}
	atPGS := depression(RegionPGS)
	atCG := depression(RegionCG)
	if atPGS >= atCG {
		t.Errorf("GOS@PGS: depression at PGS (%.3g) should be deeper than at CG (%.3g)", atPGS, atCG)
	}
}

func TestSolverCurrentOnOff(t *testing.T) {
	p := device.DefaultParams()
	s := NewSolver(p, device.Defects{})
	on := s.Solve(SaturationBias(p)).ID
	off := s.Solve(device.Bias{VCG: 0, VPGS: p.VDD, VPGD: p.VDD, VD: p.VDD}).ID
	if on <= 0 {
		t.Fatalf("on current %v, want > 0", on)
	}
	if off < 0 {
		off = -off
	}
	if on/math.Max(off, 1e-30) < 1e3 {
		t.Errorf("solver on/off = %.3g (on=%.3g off=%.3g), want >= 1e3", on/off, on, off)
	}
}

func TestSolverIDSatOrderingMatchesFigure3(t *testing.T) {
	p := device.DefaultParams()
	bias := SaturationBias(p)
	id := func(d device.Defects) float64 {
		return NewSolver(p, d).Solve(bias).ID
	}
	ff := id(device.Defects{})
	pgs := id(device.Defects{GOS: device.GOSAtPGS})
	cg := id(device.Defects{GOS: device.GOSAtCG})
	pgd := id(device.Defects{GOS: device.GOSAtPGD})
	if !(pgs < cg && cg < ff) {
		t.Errorf("solver ID(SAT): want PGS < CG < FF, got pgs=%.3g cg=%.3g ff=%.3g", pgs, cg, ff)
	}
	if pgd <= ff {
		t.Errorf("solver GOS@PGD should increase ID: pgd=%.3g ff=%.3g", pgd, ff)
	}
}

func TestBreakKillsSolverCurrent(t *testing.T) {
	p := device.DefaultParams()
	bias := SaturationBias(p)
	ff := NewSolver(p, device.Defects{}).Solve(bias).ID
	br := NewSolver(p, device.Defects{BreakSeverity: 1}).Solve(bias).ID
	if br/ff > 1e-6 {
		t.Errorf("break residual = %.3g, want <= 1e-6", br/ff)
	}
}

func TestTransferCurveMonotoneProperty(t *testing.T) {
	p := device.DefaultParams()
	pts := TransferCurve(p, device.Defects{}, 0, p.VDD, 25, p.VDD, p.VDD, p.VDD)
	for i := 1; i < len(pts); i++ {
		if pts[i].I < pts[i-1].I-1e-15 {
			t.Errorf("solver transfer curve not monotone at point %d", i)
		}
	}
}

func TestDensityPositivity(t *testing.T) {
	f := func(a, b, c uint8) bool {
		p := device.DefaultParams()
		bias := device.Bias{
			VCG:  p.VDD * float64(a%7) / 6,
			VPGS: p.VDD * float64(b%7) / 6,
			VPGD: p.VDD * float64(c%7) / 6,
			VD:   p.VDD,
		}
		prof := ElectronDensity(p, device.Defects{}, bias)
		for _, n := range prof.NE {
			if n <= 0 || math.IsNaN(n) || math.IsInf(n, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSaturationBias(t *testing.T) {
	p := device.DefaultParams()
	b := SaturationBias(p)
	if b.VCG != p.VDD || b.VPGS != p.VDD || b.VPGD != p.VDD || b.VD != p.VDD || b.VS != 0 {
		t.Errorf("SaturationBias = %+v", b)
	}
}
