package tcad

import (
	"math"

	"cpsinw/internal/device"
)

// Physical constants.
const (
	kBoltzmannEV = 8.617333262e-5 // eV/K
	nIntrinsic   = 1.0e10         // Si intrinsic carrier density (cm^-3) at 300K
	qElectron    = 1.602176634e-19
)

// Solver computes the 1-D channel state of a (possibly defective)
// TIG-SiNWFET at a given bias.
//
// The electrostatics use a charge-sheet approximation: the surface
// potential under each electrode follows the gate voltage through a
// coupling factor, and the mobile charge follows
// n = N0·ln(1+exp((psi-EFn-phiB/2)/kT)), which is exponential in
// subthreshold and linear (oxide-capacitance limited) above threshold.
// The electron quasi-Fermi level ramps from source to drain with a
// drain-weighted profile (most of VDS drops at the pinch-off point).
type Solver struct {
	Grid  *Grid
	Calib SolverCalib
	Def   device.Defects

	gosResp device.GOSEffect // shared drive/threshold calibration with internal/device
}

// SolverCalib collects the electrostatic and transport calibration of the
// synthetic TCAD model.
type SolverCalib struct {
	GateCoupling   float64 // gate-to-surface-potential coupling under an electrode
	SpacerCoupling float64 // residual fringing coupling in the spacers
	N0             float64 // charge-sheet density scale (cm^-3)
	FermiPower     float64 // exponent of the source->drain quasi-Fermi ramp
	BarrierWidth0  float64 // Schottky barrier width at zero PG overdrive (nm)
	BarrierSlope   float64 // barrier thinning per volt of PG overdrive (nm/V)
	WKBLength      float64 // tunnelling attenuation length (nm)
	Vinj           float64 // injection velocity scale (cm/s)
	AreaCM2        float64 // nanowire cross-section (cm^2)

	// GOS local-well structure: the hole-injection well depth by location
	// and its spatial decay (nm). The well shapes the density profile;
	// the channel-average density is then calibrated against the paper's
	// Figure 4 values through device.EffectOfGOS (a single source of
	// truth shared with the compact model).
	GOSDecayNM float64
	GOSDepth   map[device.GOSLocation]float64
	// GOSFieldBoost: a drain-side GOS enhances the channel field and
	// slightly raises ID (paper section IV-B).
	GOSFieldBoost float64
}

// DefaultSolverCalib returns the calibration used in the reproduction.
func DefaultSolverCalib() SolverCalib {
	return SolverCalib{
		GateCoupling:   0.86,
		SpacerCoupling: 0.52,
		N0:             6.5e17,
		FermiPower:     4,
		BarrierWidth0:  9.0,
		BarrierSlope:   6.0,
		WKBLength:      1.5,
		Vinj:           1.1e7,
		AreaCM2:        math.Pi * 7.5e-7 * 7.5e-7, // pi*R^2 with R = 7.5 nm, in cm^2
		GOSDecayNM:     14,
		GOSDepth: map[device.GOSLocation]float64{
			device.GOSAtPGS: 0.9965,
			device.GOSAtCG:  0.975,
			device.GOSAtPGD: 0.96,
		},
		GOSFieldBoost: 0.10,
	}
}

// NewSolver builds a solver over a 1 nm grid for the given device
// parameters and defects.
func NewSolver(p device.Params, d device.Defects) *Solver {
	size := d.GOSSize
	if d.GOS != device.GOSNone && size == 0 {
		size = 2
	}
	return &Solver{
		Grid:    NewGrid(p, 1),
		Calib:   DefaultSolverCalib(),
		Def:     d,
		gosResp: device.EffectOfGOS(d.GOS, size),
	}
}

// State is the solved channel state at one bias point.
type State struct {
	Bias      device.Bias
	Psi       []float64 // surface potential along the channel (V)
	NE        []float64 // electron density along the channel (cm^-3)
	NH        []float64 // hole density along the channel (cm^-3)
	ID        float64   // drain current (A), positive into the drain
	TBarrierS float64   // source Schottky transmission (0..1)
	TBarrierD float64   // drain Schottky transmission (0..1)
}

// gateVoltageAt returns the electrode voltage controlling node i and its
// coupling; spacers see the average of their neighbours through fringing.
func (s *Solver) gateVoltageAt(i int, b device.Bias) (v, coupling float64) {
	c := s.Calib
	switch s.Grid.Reg[i] {
	case RegionPGS:
		return b.VPGS, c.GateCoupling
	case RegionCG:
		return b.VCG, c.GateCoupling
	case RegionPGD:
		return b.VPGD, c.GateCoupling
	case RegionSpacerS:
		return 0.5 * (b.VPGS + b.VCG), c.SpacerCoupling
	case RegionSpacerD:
		return 0.5 * (b.VCG + b.VPGD), c.SpacerCoupling
	}
	return 0, 0
}

// fermiAt returns the electron quasi-Fermi level at position x: a
// drain-weighted ramp, so most of VDS drops near the drain (pinch-off).
func (s *Solver) fermiAt(x float64, b device.Bias) float64 {
	total := s.Grid.Params.TotalLength()
	u := x / total
	return b.VS + (b.VD-b.VS)*math.Pow(u, s.Calib.FermiPower)
}

// chargeSheet converts a band overdrive (V) into a mobile density (cm^-3).
func (s *Solver) chargeSheet(overdrive float64) float64 {
	vt := kBoltzmannEV * s.Grid.Params.Temperature
	x := overdrive / vt
	var l float64
	switch {
	case x > 40:
		l = x
	case x < -40:
		l = math.Exp(-40)
	default:
		l = math.Log1p(math.Exp(x))
	}
	n := s.Calib.N0 * l
	if n < nIntrinsic*1e-6 {
		n = nIntrinsic * 1e-6
	}
	return n
}

// Solve computes the channel state at bias b.
func (s *Solver) Solve(b device.Bias) *State {
	g := s.Grid
	n := g.N()
	phiB := g.Params.PhiB

	st := &State{
		Bias: b,
		Psi:  make([]float64, n),
		NE:   make([]float64, n),
		NH:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		gv, cpl := s.gateVoltageAt(i, b)
		// The GOS threshold shift raises the barrier under every gate
		// downstream of the injected holes; apply it as an effective
		// gate-voltage loss (shared calibration with internal/device).
		st.Psi[i] = cpl*(gv-s.gosResp.DVth) - phiB/2
		ef := s.fermiAt(g.X[i], b)
		st.NE[i] = s.chargeSheet(st.Psi[i] - ef - phiB/2)
		st.NH[i] = s.chargeSheet(ef - st.Psi[i] - phiB/2)
	}

	s.applyGOS(st)
	s.applyBreak(st)
	s.computeCurrent(st)
	return st
}

// applyGOS carves the hole-injection well of a gate-oxide short into the
// electron-density profile, then calibrates the channel average to the
// paper's Figure 4 response (device.EffectOfGOS.DensityFactor).
func (s *Solver) applyGOS(st *State) {
	if s.Def.GOS == device.GOSNone {
		return
	}
	depth, ok := s.Calib.GOSDepth[s.Def.GOS]
	if !ok {
		return
	}
	size := s.Def.GOSSize
	if size == 0 {
		size = 2
	}
	reach := s.Calib.GOSDecayNM * size / 2

	var centre float64
	switch s.Def.GOS {
	case device.GOSAtPGS:
		centre = s.Grid.RegionCentre(RegionPGS)
	case device.GOSAtCG:
		centre = s.Grid.RegionCentre(RegionCG)
	case device.GOSAtPGD:
		centre = s.Grid.RegionCentre(RegionPGD)
	}

	meanBefore := mean(st.NE)
	for i := range st.NE {
		d := math.Abs(s.Grid.X[i] - centre)
		well := depth * math.Exp(-d/reach)
		st.NE[i] *= 1 - well
		st.NH[i] *= 1 + 3*well // injected holes accumulate around the short
	}
	// Channel-average calibration against Figure 4.
	want := meanBefore * s.gosResp.DensityFactor
	if m := mean(st.NE); m > 0 && want > 0 {
		scale := want / m
		for i := range st.NE {
			st.NE[i] *= scale
			if st.NE[i] < nIntrinsic*1e-6 {
				st.NE[i] = nIntrinsic * 1e-6
			}
		}
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// applyBreak zeroes the density inside the broken segment (centre of the
// channel) proportionally to the severity.
func (s *Solver) applyBreak(st *State) {
	sev := s.Def.BreakSeverity
	if sev <= 0 {
		return
	}
	centre := s.Grid.Params.TotalLength() / 2
	for i := range st.NE {
		d := math.Abs(s.Grid.X[i] - centre)
		if d < 3 { // 3 nm break extent
			st.NE[i] *= 1 - sev
			st.NH[i] *= 1 - sev
			if st.NE[i] < nIntrinsic*1e-6 {
				st.NE[i] = nIntrinsic * 1e-6
			}
		}
	}
}

// computeCurrent evaluates a Landauer-like drain current: the density at
// the virtual source (the barrier top inside the control-gate window)
// times the injection velocity and cross-section, gated by the WKB
// transmissions of the two Schottky junctions. The drive response of a
// GOS (loss at PGS/CG, slight field-boost gain at PGD) comes from the
// shared calibration in internal/device.
func (s *Solver) computeCurrent(st *State) {
	c := s.Calib
	b := st.Bias
	g := s.Grid
	phiB := g.Params.PhiB
	vt := kBoltzmannEV * g.Params.Temperature

	// Virtual source: minimum charge-sheet density inside the CG window,
	// evaluated from the electrostatic profile (pre-defect structure, with
	// the GOS threshold shift already applied through Psi).
	nVS := math.Inf(1)
	for i, r := range g.Reg {
		if r != RegionCG {
			continue
		}
		ef := s.fermiAt(g.X[i], b)
		nHere := s.chargeSheet(st.Psi[i] - ef - phiB/2)
		if nHere < nVS {
			nVS = nHere
		}
	}
	if math.IsInf(nVS, 1) {
		nVS = 0
	}

	trans := func(vpg, vterm float64) float64 {
		w := c.BarrierWidth0 - c.BarrierSlope*(vpg-vterm)
		if w < 0.4 {
			w = 0.4
		}
		return math.Exp(-w / c.WKBLength)
	}
	st.TBarrierS = trans(b.VPGS, b.VS)
	st.TBarrierD = trans(b.VPGD, b.VD)

	drive := s.gosResp.DriveFactor
	if drive == 0 {
		drive = 1
	}
	boost := 1.0
	if s.Def.GOS == device.GOSAtPGD {
		boost += c.GOSFieldBoost
		drive = 1 // the PGD density loss does not throttle the virtual source
	}

	vds := b.VD - b.VS
	shape := math.Tanh(vds / (8 * vt))
	st.ID = qElectron * nVS * c.AreaCM2 * c.Vinj *
		st.TBarrierS * math.Sqrt(st.TBarrierD) * shape * drive * boost

	if sev := s.Def.BreakSeverity; sev > 0 {
		st.ID *= math.Exp(-20.7 * sev)
	}
}
