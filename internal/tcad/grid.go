// Package tcad is a synthetic device-level simulator for the TIG-SiNWFET,
// standing in for the Sentaurus 3-D TCAD flow of the paper. It discretises
// the nanowire along the transport axis into a 1-D grid spanning the five
// gated regions (PGS gate, spacer, CG gate, spacer, PGD gate), solves a
// region-coupled electrostatic potential with a damped fixed-point
// iteration that accounts for channel charge screening, evaluates
// Boltzmann carrier statistics, and computes current through WKB-style
// Schottky barrier transmissions at the NiSi junctions.
//
// Defects are injected physically: a gate-oxide short becomes a local
// carrier injection/recombination well centred on the defect; a nanowire
// break becomes a transport-blocking barrier segment.
//
// The paper consumes TCAD through two artifacts only — I-V curves
// (Figure 3) and electron-density maps (Figure 4) — both of which this
// package reproduces with documented calibration (see DESIGN.md section 2).
package tcad

import "cpsinw/internal/device"

// Region identifies which electrode controls a grid segment.
type Region int

const (
	RegionPGS Region = iota
	RegionSpacerS
	RegionCG
	RegionSpacerD
	RegionPGD
)

// String names the region as in the paper's figures.
func (r Region) String() string {
	switch r {
	case RegionPGS:
		return "PGS"
	case RegionSpacerS:
		return "spacer-S"
	case RegionCG:
		return "CG"
	case RegionSpacerD:
		return "spacer-D"
	case RegionPGD:
		return "PGD"
	}
	return "invalid"
}

// Grid is the 1-D spatial discretisation of the device channel.
type Grid struct {
	X      []float64 // node positions from source junction (nm)
	Reg    []Region  // controlling region of each node
	Params device.Params
}

// NewGrid builds a uniform grid with roughly the given node spacing (nm)
// over the full gated length of the device.
func NewGrid(p device.Params, spacing float64) *Grid {
	if spacing <= 0 {
		spacing = 1
	}
	total := p.TotalLength()
	n := int(total/spacing) + 1
	if n < 11 {
		n = 11
	}
	g := &Grid{
		X:      make([]float64, n),
		Reg:    make([]Region, n),
		Params: p,
	}
	b1 := p.LPGS
	b2 := b1 + p.LSpacer
	b3 := b2 + p.LCG
	b4 := b3 + p.LSpacer
	for i := 0; i < n; i++ {
		x := total * float64(i) / float64(n-1)
		g.X[i] = x
		switch {
		case x < b1:
			g.Reg[i] = RegionPGS
		case x < b2:
			g.Reg[i] = RegionSpacerS
		case x < b3:
			g.Reg[i] = RegionCG
		case x < b4:
			g.Reg[i] = RegionSpacerD
		default:
			g.Reg[i] = RegionPGD
		}
	}
	return g
}

// N returns the number of grid nodes.
func (g *Grid) N() int { return len(g.X) }

// RegionCentre returns the x coordinate (nm) of the centre of a region.
func (g *Grid) RegionCentre(r Region) float64 {
	p := g.Params
	switch r {
	case RegionPGS:
		return p.LPGS / 2
	case RegionSpacerS:
		return p.LPGS + p.LSpacer/2
	case RegionCG:
		return p.LPGS + p.LSpacer + p.LCG/2
	case RegionSpacerD:
		return p.LPGS + p.LSpacer + p.LCG + p.LSpacer/2
	case RegionPGD:
		return p.TotalLength() - p.LPGD/2
	}
	return 0
}
