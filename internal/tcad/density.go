package tcad

import (
	"math"

	"cpsinw/internal/device"
)

// DensityProfile is an electron-density map along the channel, the
// 1-D analogue of the paper's Figure 4 cross-sections.
type DensityProfile struct {
	X       []float64 // positions (nm)
	NE      []float64 // electron density (cm^-3)
	Regions []Region  // controlling electrode per node
	Mean    float64   // average density over the gated channel (cm^-3)
	Defects device.Defects
}

// SaturationBias returns the n-type saturation bias used for the Figure 4
// extraction: all gates and the drain at VDD, source grounded.
func SaturationBias(p device.Params) device.Bias {
	return device.Bias{VCG: p.VDD, VPGS: p.VDD, VPGD: p.VDD, VD: p.VDD, VS: 0}
}

// ElectronDensity solves the device at the given bias and returns the
// electron-density profile together with its channel average.
func ElectronDensity(p device.Params, d device.Defects, b device.Bias) *DensityProfile {
	s := NewSolver(p, d)
	st := s.Solve(b)
	prof := &DensityProfile{
		X:       append([]float64(nil), s.Grid.X...),
		NE:      append([]float64(nil), st.NE...),
		Regions: append([]Region(nil), s.Grid.Reg...),
		Defects: d,
	}
	sum := 0.0
	for _, n := range st.NE {
		sum += n
	}
	prof.Mean = sum / float64(len(st.NE))
	return prof
}

// MinNearRegion returns the minimum electron density within the given
// region, used to localise the GOS disturbance.
func (p *DensityProfile) MinNearRegion(r Region) float64 {
	min := math.Inf(1)
	for i, reg := range p.Regions {
		if reg == r && p.NE[i] < min {
			min = p.NE[i]
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// TransferCurve sweeps VCG at fixed polarity-gate and drain bias through
// the full solver, mirroring device.Model.TransferCurve but with the
// physical solver (used to cross-validate the compact model).
func TransferCurve(p device.Params, d device.Defects, lo, hi float64, n int, vpgs, vpgd, vd float64) []device.IVPoint {
	if n < 2 {
		n = 2
	}
	s := NewSolver(p, d)
	pts := make([]device.IVPoint, n)
	for i := range pts {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		st := s.Solve(device.Bias{VCG: v, VPGS: vpgs, VPGD: vpgd, VD: vd})
		pts[i] = device.IVPoint{V: v, I: st.ID}
	}
	return pts
}
