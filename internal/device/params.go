// Package device implements a compact analog model of the
// Three-Independent-Gate Silicon NanoWire FET (TIG-SiNWFET), the
// controllable-polarity device studied by Ghasemzadeh Mohammadi,
// Gaillardon and De Micheli (DATE 2015).
//
// The device has three gates along the channel: a Polarity Gate at the
// source junction (PGS), a Control Gate (CG) in the middle and a Polarity
// Gate at the drain junction (PGD). The polarity gates modulate the
// thickness of the Schottky barriers at the NiSi source/drain contacts and
// thereby select the carrier type (electrons when biased high, holes when
// biased low); the control gate switches the channel like a conventional
// MOSFET gate. The device conducts n-type when CG = PGS = PGD = '1',
// p-type when CG = PGS = PGD = '0', and is off when CG xor (PGS and PGD).
//
// The model is a smooth, Newton-friendly analytic approximation calibrated
// against the qualitative targets reported in the paper (Figures 3-5):
// EKV-style channel conduction multiplied by sigmoid Schottky barrier
// transmissions, one per polarity gate, with a reduced drain-side exponent
// that captures the quasi-ballistic transport under PGD. Manufacturing
// defects (gate-oxide shorts, channel breaks, floating polarity gates) are
// injected through the Defects struct.
package device

// Geometry and physical parameters of the TIG-SiNWFET, following Table II
// of the paper. Lengths are in nanometres unless noted.
type Params struct {
	LCG         float64 // control gate length (nm)
	LPGS        float64 // source-side polarity gate length (nm)
	LPGD        float64 // drain-side polarity gate length (nm)
	LSpacer     float64 // spacer length LCP between gates (nm)
	TOx         float64 // gate oxide thickness (nm)
	RNW         float64 // nanowire radius (nm)
	NChannel    float64 // channel doping concentration (cm^-3)
	PhiB        float64 // Schottky barrier height (eV)
	VDD         float64 // nominal supply voltage (V)
	Temperature float64 // lattice temperature (K)
}

// DefaultParams returns the Table II parameter set of the paper:
// LCG = LPGS = LPGD = 22 nm, LCP = 18 nm, TOx = 5.1 nm, RNW = 7.5 nm,
// channel doping 1e15 cm^-3, Schottky barrier 0.41 eV, VDD = 1.2 V.
func DefaultParams() Params {
	return Params{
		LCG:         22,
		LPGS:        22,
		LPGD:        22,
		LSpacer:     18,
		TOx:         5.1,
		RNW:         7.5,
		NChannel:    1e15,
		PhiB:        0.41,
		VDD:         1.2,
		Temperature: 300,
	}
}

// TotalLength returns the source-to-drain extent of the gated region in nm:
// three gates and the two spacers separating them.
func (p Params) TotalLength() float64 {
	return p.LPGS + p.LSpacer + p.LCG + p.LSpacer + p.LPGD
}

// Electrical calibration of the compact model. The calibration constants
// are fitted so that circuit-level experiments reproduce the qualitative
// shapes of the paper's Figures 3 and 5 (see DESIGN.md section 4).
type Calib struct {
	In0 float64 // electron branch prefactor (A)
	Ip0 float64 // hole branch prefactor (A)

	VtnCG float64 // control-gate threshold for the electron branch (V)
	VtpCG float64 // control-gate threshold magnitude for the hole branch (V)
	NCG   float64 // subthreshold slope factor of the CG barrier

	VtPG float64 // polarity-gate barrier-thinning threshold (V)
	SPG  float64 // source-side polarity-gate transmission slope (V)
	SPGD float64 // drain-side slope: softer control (quasi-ballistic region)
	WPGD float64 // exponent weight of the drain-side PG (quasi-ballistic, <1)

	VSat   float64 // drain saturation voltage scale (V)
	Lambda float64 // channel length modulation (1/V)
	GMin   float64 // parasitic ohmic leak floor (S)
	IAmb   float64 // ambipolar off-state leakage floor prefactor (A)
	IMix0  float64 // mixed-carrier (band-to-band) leak prefactor (A): flows when
	// the source barrier is electron-transparent while the drain barrier is
	// hole-transparent — the leakage mechanism excited by polarity-gate
	// opens and bridges (paper Figure 5)

	CGate float64 // per-gate capacitance to channel (F)
	CPar  float64 // drain/source parasitic capacitance (F)
	RAcc  float64 // source/drain access resistance (Ohm)
}

// DefaultCalib returns the calibration used throughout the reproduction.
// The absolute current level (~5 uA on-current) matches the scale implied
// by Figure 3; thresholds are chosen so the logic gates operate correctly
// at VDD = 1.2 V with the switching point near VDD/2.
func DefaultCalib() Calib {
	return Calib{
		In0:    3.1e-7,
		Ip0:    1.55e-7, // hole branch weaker: electrons win rail fights
		VtnCG:  0.42,
		VtpCG:  0.42,
		NCG:    0.072, // ~ 2.8 kT/q: SS ~ 165 mV/dec through Schottky channel
		VtPG:   0.45,
		SPG:    0.045, // steep WKB-like injection barrier (>10 decades over VDD)
		SPGD:   0.18,  // drain-side extraction barrier: weakly controlled
		WPGD:   0.55,  // drain PG matters less for carrier control
		VSat:   0.35,
		Lambda: 0.06,
		GMin:   1e-12,
		IAmb:   4e-12,
		IMix0:  2e-9,
		CGate:  9e-18, // aF-scale GAA gate capacitance
		CPar:   6e-18,
		RAcc:   9.5e3,
	}
}

// GOSLocation identifies which gate dielectric carries a gate-oxide short.
type GOSLocation int

const (
	GOSNone GOSLocation = iota
	GOSAtPGS
	GOSAtCG
	GOSAtPGD
)

// String returns the paper's name for the location.
func (l GOSLocation) String() string {
	switch l {
	case GOSNone:
		return "none"
	case GOSAtPGS:
		return "PGS"
	case GOSAtCG:
		return "CG"
	case GOSAtPGD:
		return "PGD"
	}
	return "invalid"
}

// GOSEffect captures how a gate-oxide short at a given location perturbs
// the device characteristics. The three locations behave differently
// because of their position along the channel (paper section IV-B):
//
//   - GOS at PGS sits next to the electron source: injected holes are
//     pulled in by the high electron density, collapsing the local carrier
//     density (x~109 reduction) and shifting VTh by +170 mV.
//   - GOS at CG injects in the channel middle: moderate density loss and a
//     smaller VTh shift.
//   - GOS at PGD sits in the quasi-ballistic drain region: the field
//     enhancement slightly increases ID and leaves VTh untouched.
type GOSEffect struct {
	DriveFactor   float64 // multiplies the branch prefactor
	DVth          float64 // added to the CG threshold (V)
	GGate         float64 // gate-to-channel ohmic injection conductance (S)
	DensityFactor float64 // average channel electron density multiplier
}

// gosEffects is the calibrated per-location defect response for a
// unit-size (2 nm) gate-oxide short.
var gosEffects = map[GOSLocation]GOSEffect{
	GOSAtPGS: {DriveFactor: 0.46, DVth: 0.215, GGate: 2.4e-7, DensityFactor: 1.426e17 / 1.558e19},
	GOSAtCG:  {DriveFactor: 0.68, DVth: 0.034, GGate: 1.6e-7, DensityFactor: 1.763e18 / 1.558e19},
	GOSAtPGD: {DriveFactor: 1.08, DVth: 0.0, GGate: 0.9e-7, DensityFactor: 1.316e18 / 1.558e19},
}

// EffectOfGOS returns the calibrated defect response for a GOS of the given
// size (nm) at the given location. Effects scale with size: DriveFactor and
// DensityFactor move away from 1 and GGate grows proportionally. Size 2 nm
// is the reference used in the paper's TCAD experiments.
func EffectOfGOS(loc GOSLocation, sizeNM float64) GOSEffect {
	e, ok := gosEffects[loc]
	if !ok {
		return GOSEffect{DriveFactor: 1, DensityFactor: 1}
	}
	if sizeNM <= 0 {
		return GOSEffect{DriveFactor: 1, DensityFactor: 1}
	}
	s := sizeNM / 2.0 // relative to the 2 nm reference
	scaled := GOSEffect{
		DriveFactor:   1 + (e.DriveFactor-1)*s,
		DVth:          e.DVth * s,
		GGate:         e.GGate * s,
		DensityFactor: 1 + (e.DensityFactor-1)*clamp01(s),
	}
	if scaled.DriveFactor < 0.02 {
		scaled.DriveFactor = 0.02
	}
	if scaled.DensityFactor < 1e-4 {
		scaled.DensityFactor = 1e-4
	}
	return scaled
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// Defects describes the manufacturing defects injected into one device
// instance. The zero value is a defect-free device.
type Defects struct {
	GOS     GOSLocation // gate-oxide short location (GOSNone for none)
	GOSSize float64     // GOS size in nm (0 means the 2 nm reference when GOS set)

	// BreakSeverity in [0,1]: 0 = intact channel, 1 = full nanowire break
	// (stuck-open). Intermediate values model partial breaks that only
	// degrade the driving current.
	BreakSeverity float64

	// FloatPGS / FloatPGD detach the respective polarity gate from its
	// net; the floating node voltage (the paper's Vcut) is supplied by
	// the circuit simulator through an auxiliary source.
	FloatPGS bool
	FloatPGD bool
}

// Defective reports whether any defect is present.
func (d Defects) Defective() bool {
	return d.GOS != GOSNone || d.BreakSeverity > 0 || d.FloatPGS || d.FloatPGD
}
