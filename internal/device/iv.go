package device

// IVPoint is a single point of a transfer or output characteristic.
type IVPoint struct {
	V float64 // swept voltage (V)
	I float64 // drain current (A)
}

// TransferCurve sweeps VCG from lo to hi in n points at the given drain
// bias with the polarity gates held at vpgs/vpgd and the source grounded,
// returning the ID-VCG transfer characteristic (the curves of Figure 3).
func (m *Model) TransferCurve(lo, hi float64, n int, vpgs, vpgd, vd float64) []IVPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]IVPoint, n)
	for i := range pts {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = IVPoint{V: v, I: m.ID(Bias{VCG: v, VPGS: vpgs, VPGD: vpgd, VD: vd})}
	}
	return pts
}

// OutputCurve sweeps VD from lo to hi in n points at fixed gate biases,
// returning the ID-VD output characteristic.
func (m *Model) OutputCurve(lo, hi float64, n int, vcg, vpgs, vpgd float64) []IVPoint {
	if n < 2 {
		n = 2
	}
	pts := make([]IVPoint, n)
	for i := range pts {
		v := lo + (hi-lo)*float64(i)/float64(n-1)
		pts[i] = IVPoint{V: v, I: m.ID(Bias{VCG: vcg, VPGS: vpgs, VPGD: vpgd, VD: v})}
	}
	return pts
}

// IDSat returns the n-type saturation current: all gates and the drain at
// VDD, source grounded.
func (m *Model) IDSat() float64 {
	v := m.P.VDD
	return m.ID(Bias{VCG: v, VPGS: v, VPGD: v, VD: v})
}

// VThN extracts the n-type threshold voltage with the constant-current
// method: the VCG at which ID crosses iCrit with the device biased in
// saturation. When iCrit <= 0, 1% of the device's own saturation current
// is used, which makes the extraction insensitive to pure drive loss and
// isolates the electrostatic threshold shift (as the paper's TCAD
// extraction does). The curve is monotonic in VCG, so a bisection is exact.
func (m *Model) VThN(iCrit float64) float64 {
	v := m.P.VDD
	if iCrit <= 0 {
		iCrit = 0.01 * m.IDSat()
	}
	// Reference the VCG=0 floor so that defect injection currents (a GOS
	// feeds the channel ohmically regardless of VCG) do not contaminate
	// the extraction of the channel turn-on.
	base := m.ID(Bias{VCG: 0, VPGS: v, VPGD: v, VD: v})
	lo, hi := 0.0, v
	at := func(vcg float64) float64 {
		return m.ID(Bias{VCG: vcg, VPGS: v, VPGD: v, VD: v}) - base - iCrit
	}
	if at(lo) > 0 {
		return lo
	}
	if at(hi) < 0 {
		return hi
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if at(mid) > 0 {
			hi = mid
		} else {
			lo = mid
		}
	}
	return 0.5 * (lo + hi)
}

// OffCurrent returns the worst-case off-state leakage magnitude across the
// blocking configurations with matched polarity gates — the states that
// occur in logic gates, whose polarity gates are driven pairwise
// (drain at VDD).
func (m *Model) OffCurrent() float64 {
	v := m.P.VDD
	worst := 0.0
	for _, g := range [][3]float64{
		{0, v, v}, {v, 0, 0},
	} {
		i := m.ID(Bias{VCG: g[0], VPGS: g[1], VPGD: g[2], VD: v})
		if a := abs(i); a > worst {
			worst = a
		}
	}
	return worst
}

// AmbipolarLeak returns the worst leakage across the mixed polarity-gate
// configurations (one PG electron-transparent, the other hole-
// transparent), the band-to-band path excited by polarity-gate defects.
func (m *Model) AmbipolarLeak() float64 {
	v := m.P.VDD
	worst := 0.0
	for _, g := range [][3]float64{
		{v, 0, v}, {v, v, 0}, {0, 0, v}, {0, v, 0},
	} {
		i := m.ID(Bias{VCG: g[0], VPGS: g[1], VPGD: g[2], VD: v})
		if a := abs(i); a > worst {
			worst = a
		}
	}
	return worst
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
