package device

import "math"

// Model is an instantiated TIG-SiNWFET compact model: geometry, electrical
// calibration and (optionally) injected defects. Model values are immutable
// after construction and safe for concurrent use.
type Model struct {
	P Params
	C Calib
	D Defects

	gos GOSEffect // resolved defect response (identity when no GOS)
}

// New returns a defect-free model with the given parameters and calibration.
func New(p Params, c Calib) *Model {
	return &Model{P: p, C: c, gos: GOSEffect{DriveFactor: 1, DensityFactor: 1}}
}

// Default returns the paper's reference device: Table II geometry with the
// reproduction calibration.
func Default() *Model {
	return New(DefaultParams(), DefaultCalib())
}

// WithDefects returns a copy of the model with the given defects injected.
func (m *Model) WithDefects(d Defects) *Model {
	n := *m
	n.D = d
	size := d.GOSSize
	if d.GOS != GOSNone && size == 0 {
		size = 2 // reference GOS size (nm)
	}
	n.gos = EffectOfGOS(d.GOS, size)
	return &n
}

// thermal voltage kT/q at the model temperature.
func (m *Model) vt() float64 { return 8.617333262e-5 * m.P.Temperature }

// ekv is the EKV interpolation ln^2(1+exp(x/2)): exponential for x << 0
// (subthreshold) and ~x^2/4 for x >> 0 (strong inversion drive).
func ekv(x float64) float64 {
	if x > 60 {
		// ln(1+e^(x/2)) -> x/2 for large x; avoids overflow.
		return x * x / 4
	}
	l := math.Log1p(math.Exp(x / 2))
	return l * l
}

// sigmoid is the logistic function with overflow guards.
func sigmoid(x float64) float64 {
	if x > 40 {
		return 1
	}
	if x < -40 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// smoothmin returns a smooth approximation of min(a,b) with softness eps.
func smoothmin(a, b, eps float64) float64 {
	return 0.5 * (a + b - math.Sqrt((a-b)*(a-b)+eps*eps))
}

// smoothmax returns a smooth approximation of max(a,b) with softness eps.
func smoothmax(a, b, eps float64) float64 {
	return 0.5 * (a + b + math.Sqrt((a-b)*(a-b)+eps*eps))
}

// Bias holds the four independent terminal voltages of the device (the
// source completes the set; all voltages are absolute node voltages).
type Bias struct {
	VCG  float64 // control gate
	VPGS float64 // source-side polarity gate
	VPGD float64 // drain-side polarity gate
	VD   float64 // drain
	VS   float64 // source
}

const softV = 0.02 // smoothing voltage for terminal symmetry (V)

// ID returns the drain current (A) flowing into the drain terminal for the
// given bias. Positive current flows drain -> source. Both carrier
// branches (electron and hole) are evaluated; polarity selection emerges
// from the barrier transmissions rather than from an explicit mode switch,
// exactly like in the physical ambipolar device.
func (m *Model) ID(b Bias) float64 {
	in := m.branchN(b)
	ip := m.branchP(b)
	mix := m.branchMix(b)
	leak := m.C.GMin * (b.VD - b.VS)
	gosI := m.gosInjection(b)
	breakF := m.breakFactor()
	return (in+ip+mix)*breakF + leak + gosI
}

// breakFactor collapses the channel conductance as the nanowire break
// severity approaches 1. The exponential form keeps partial breaks as
// drive degradation (delay faults) and full breaks as stuck-opens.
func (m *Model) breakFactor() float64 {
	s := m.D.BreakSeverity
	if s <= 0 {
		return 1
	}
	if s >= 1 {
		return 1e-9 // residual tunnelling floor, electrically open
	}
	return math.Exp(-20.7 * s) // ~1e-9 at s=1
}

// branchN computes the electron branch. Electrons are injected at the
// lower-potential terminal; both Schottky barriers must be thinned
// (PG voltages high relative to the adjacent terminal) and the CG barrier
// lowered (VCG high relative to the electron source).
func (m *Model) branchN(b Bias) float64 {
	c := m.C
	vsm := smoothmin(b.VD, b.VS, softV) // electron source potential
	vdm := smoothmax(b.VD, b.VS, softV)
	vth := c.VtnCG + m.gos.DVth
	drive := ekv((b.VCG - vsm - vth) / c.NCG)
	// Source-side barrier referenced to the electron source, drain-side to
	// the electron drain. For VDS >= 0 these are the physical PGS/PGD
	// junctions; for VDS < 0 the roles swap, handled by the smooth min/max.
	tS := sigmoid((b.VPGS - vsm - c.VtPG) / c.SPG)
	tD := math.Pow(sigmoid((b.VPGD-vdm+c.VSat-c.VtPG)/c.SPGD), c.WPGD)
	if b.VD < b.VS { // swapped roles: PGD faces the electron source
		tS = sigmoid((b.VPGD - vsm - c.VtPG) / c.SPG)
		tD = math.Pow(sigmoid((b.VPGS-vdm+c.VSat-c.VtPG)/c.SPGD), c.WPGD)
	}
	vds := b.VD - b.VS
	f := math.Tanh(vds/c.VSat) * (1 + c.Lambda*math.Abs(vds))
	amb := c.IAmb * math.Tanh(vds/c.VSat)
	return c.In0*m.gos.DriveFactor*drive*tS*tD*f + amb
}

// branchP computes the hole branch, the mirror image of branchN: holes are
// injected at the higher-potential terminal, the barriers thin when the
// polarity gates are low relative to the adjacent terminals, and the CG
// must be low relative to the hole source.
func (m *Model) branchP(b Bias) float64 {
	c := m.C
	vdm := smoothmax(b.VD, b.VS, softV) // hole source potential
	vsm := smoothmin(b.VD, b.VS, softV)
	vth := c.VtpCG + m.gos.DVth // GOS hole injection also weakens the p branch
	drive := ekv((vdm - b.VCG - vth) / c.NCG)
	tS := sigmoid((vdm - b.VPGD - c.VtPG) / c.SPG)
	tD := math.Pow(sigmoid((vsm-b.VPGS+c.VSat-c.VtPG)/c.SPGD), c.WPGD)
	if b.VD < b.VS { // swapped: PGS faces the hole source
		tS = sigmoid((vdm - b.VPGS - c.VtPG) / c.SPG)
		tD = math.Pow(sigmoid((vsm-b.VPGD+c.VSat-c.VtPG)/c.SPGD), c.WPGD)
	}
	vds := b.VD - b.VS
	f := math.Tanh(vds/c.VSat) * (1 + c.Lambda*math.Abs(vds))
	amb := c.IAmb * math.Tanh(vds/c.VSat)
	return c.Ip0*m.gos.DriveFactor*drive*tS*tD*f + amb
}

// branchMix models the mixed-carrier (band-to-band / recombination) leak:
// electrons inject at the low terminal when its adjacent polarity gate is
// biased high while holes inject at the high terminal when its adjacent
// polarity gate is biased low. This ambipolar path is negligible at the
// nominal polarity biases but dominates the static leakage when a
// polarity gate floats to an intermediate Vcut or bridges to the wrong
// rail (paper section V-A).
func (m *Model) branchMix(b Bias) float64 {
	c := m.C
	if c.IMix0 <= 0 {
		return 0
	}
	vsm := smoothmin(b.VD, b.VS, softV)
	vdm := smoothmax(b.VD, b.VS, softV)
	pgLow, pgHigh := b.VPGS, b.VPGD // PG adjacent to the low / high terminal
	if b.VD < b.VS {
		pgLow, pgHigh = b.VPGD, b.VPGS
	}
	tn := sigmoid((pgLow - vsm - c.VtPG) / c.SPG)  // electron entry at the low side
	tp := sigmoid((vdm - pgHigh - c.VtPG) / c.SPG) // hole entry at the high side
	vds := b.VD - b.VS
	return c.IMix0 * tn * tp * math.Tanh(vds/c.VSat)
}

// gosInjection models the ohmic path a gate-oxide short opens between the
// defective gate and the channel. Current injected from the gate splits
// toward source and drain; the drain share appears as the paper's
// "negative ID" when the drain is biased low while the defective gate is
// high.
func (m *Model) gosInjection(b Bias) float64 {
	if m.D.GOS == GOSNone || m.gos.GGate == 0 {
		return 0
	}
	var vg float64
	var toDrain float64 // fraction of the injected current exiting at drain
	switch m.D.GOS {
	case GOSAtPGS:
		vg, toDrain = b.VPGS, 0.25 // near the source: mostly exits at source
	case GOSAtCG:
		vg, toDrain = b.VCG, 0.5
	case GOSAtPGD:
		vg, toDrain = b.VPGD, 0.75 // near the drain
	}
	// Current flowing out of the drain terminal is negative drain current.
	return -m.gos.GGate * toDrain * (vg - b.VD)
}

// GateCurrents returns the currents (A) flowing *into* the CG, PGS and PGD
// terminals. For a defect-free device the gates are capacitive only and
// the DC gate currents are zero; a gate-oxide short adds the ohmic
// injection path at the defective gate.
func (m *Model) GateCurrents(b Bias) (icg, ipgs, ipgd float64) {
	if m.D.GOS == GOSNone || m.gos.GGate == 0 {
		return 0, 0, 0
	}
	var vg float64
	switch m.D.GOS {
	case GOSAtPGS:
		vg = b.VPGS
	case GOSAtCG:
		vg = b.VCG
	case GOSAtPGD:
		vg = b.VPGD
	}
	// The short injects toward both terminals; use the average channel
	// potential as the far node.
	vch := 0.5 * (b.VD + b.VS)
	ig := m.gos.GGate * (vg - vch)
	switch m.D.GOS {
	case GOSAtPGS:
		return 0, ig, 0
	case GOSAtCG:
		return ig, 0, 0
	case GOSAtPGD:
		return 0, 0, ig
	}
	return 0, 0, 0
}

// Conducts reports whether the device conducts for the given *logic*
// levels on its three gates, per the paper's conduction rule:
// n-type conduction iff CG=PGS=PGD=1, p-type iff CG=PGS=PGD=0,
// off when CG xor (PGS and PGD) = 1.
func Conducts(cg, pgs, pgd bool) bool {
	if cg && pgs && pgd {
		return true // n-type
	}
	if !cg && !pgs && !pgd {
		return true // p-type
	}
	return false
}

// OffByXorRule evaluates the paper's blocking condition
// CG xor (PGS and PGD) for logic levels.
func OffByXorRule(cg, pgs, pgd bool) bool {
	return cg != (pgs && pgd)
}
