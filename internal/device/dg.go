package device

// Double-Gate (DG) SiNWFET support. The paper (section III-A) notes that
// its fault-modeling methodology transfers directly to other controllable-
// polarity devices such as the DG-SiNWFET, which exposes a single polarity
// gate controlling both Schottky junctions. Electrically a DG device is a
// TIG device with PGS and PGD tied together; these helpers make that
// explicit so DG-style circuits and fault models can reuse the whole
// stack.

// IDDG returns the drain current of the device operated double-gate
// style: one polarity gate voltage drives both junction gates.
func (m *Model) IDDG(vcg, vpg, vd, vs float64) float64 {
	return m.ID(Bias{VCG: vcg, VPGS: vpg, VPGD: vpg, VD: vd, VS: vs})
}

// ConductsDG evaluates the DG conduction rule for logic levels: the
// device conducts n-type when CG = PG = 1 and p-type when CG = PG = 0 —
// the TIG rule with the polarity gates merged.
func ConductsDG(cg, pg bool) bool {
	return Conducts(cg, pg, pg)
}

// DGTransferCurve sweeps VCG with the merged polarity gate held at vpg.
func (m *Model) DGTransferCurve(lo, hi float64, n int, vpg, vd float64) []IVPoint {
	return m.TransferCurve(lo, hi, n, vpg, vpg, vd)
}
