package device

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultParamsMatchTableII(t *testing.T) {
	p := DefaultParams()
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"LCG", p.LCG, 22},
		{"LPGS", p.LPGS, 22},
		{"LPGD", p.LPGD, 22},
		{"LSpacer", p.LSpacer, 18},
		{"TOx", p.TOx, 5.1},
		{"RNW", p.RNW, 7.5},
		{"NChannel", p.NChannel, 1e15},
		{"PhiB", p.PhiB, 0.41},
		{"VDD", p.VDD, 1.2},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %v, want %v", c.name, c.got, c.want)
		}
	}
	if got, want := p.TotalLength(), 22.0*3+18*2; got != want {
		t.Errorf("TotalLength = %v, want %v", got, want)
	}
}

func TestConductionRule(t *testing.T) {
	// The paper: conduction iff CG=PGS=PGD=1 (n) or =0 (p); blocked when
	// CG xor (PGS and PGD) = 1.
	for _, cg := range []bool{false, true} {
		for _, pgs := range []bool{false, true} {
			for _, pgd := range []bool{false, true} {
				want := (cg && pgs && pgd) || (!cg && !pgs && !pgd)
				if got := Conducts(cg, pgs, pgd); got != want {
					t.Errorf("Conducts(%v,%v,%v) = %v, want %v", cg, pgs, pgd, got, want)
				}
				// The XOR blocking rule must agree whenever the PGs match.
				if pgs == pgd {
					off := OffByXorRule(cg, pgs, pgd)
					if off == Conducts(cg, pgs, pgd) {
						t.Errorf("xor rule disagrees with conduction at %v,%v,%v", cg, pgs, pgd)
					}
				}
			}
		}
	}
}

func TestNTypeOnOffRatio(t *testing.T) {
	m := Default()
	on := m.IDSat()
	off := m.OffCurrent()
	if on <= 0 {
		t.Fatalf("IDSat = %v, want > 0", on)
	}
	if ratio := on / off; ratio < 1e4 {
		t.Errorf("on/off ratio = %.3g, want >= 1e4 (on=%.3g off=%.3g)", ratio, on, off)
	}
}

func TestPTypeConduction(t *testing.T) {
	m := Default()
	v := m.P.VDD
	// p-type configuration: all gates low, source at VDD, drain low.
	// Current flows from the high terminal to the low one (positive into
	// the high-to-low direction: here VD < VS so ID < 0).
	i := m.ID(Bias{VCG: 0, VPGS: 0, VPGD: 0, VD: 0, VS: v})
	if i >= 0 {
		t.Fatalf("p-type current = %v, want < 0 (conventional current out of drain)", i)
	}
	if math.Abs(i) < 1e-7 {
		t.Errorf("p-type |ID| = %v, want >= 0.1 uA", math.Abs(i))
	}
}

func TestPolarityBlocking(t *testing.T) {
	m := Default()
	v := m.P.VDD
	on := m.IDSat()
	// Matched polarity gates with an opposing control gate: hard blocking
	// (these are the off states of logic gates, whose PGs are paired).
	blocked := []Bias{
		{VCG: v, VPGS: 0, VPGD: 0, VD: v},
		{VCG: 0, VPGS: v, VPGD: v, VD: v},
	}
	for _, b := range blocked {
		i := math.Abs(m.ID(b))
		if i > on/1e3 {
			t.Errorf("bias %+v conducts %.3g A, want < %.3g", b, i, on/1e3)
		}
	}
	// Mixed polarity gates excite the ambipolar (band-to-band) path: a
	// measurable leak, but still orders of magnitude below the on-current.
	mixed := []Bias{
		{VCG: v, VPGS: 0, VPGD: v, VD: v},
		{VCG: v, VPGS: v, VPGD: 0, VD: v},
	}
	for _, b := range mixed {
		i := math.Abs(m.ID(b))
		if i > on/25 {
			t.Errorf("mixed bias %+v conducts %.3g A, want < %.3g", b, i, on/25)
		}
	}
	if amb := m.AmbipolarLeak(); amb <= m.OffCurrent() {
		t.Errorf("ambipolar leak (%.3g) should exceed the hard-blocked floor (%.3g)", amb, m.OffCurrent())
	}
}

func TestIDZeroAtZeroVDS(t *testing.T) {
	m := Default()
	v := m.P.VDD
	for _, vg := range []float64{0, 0.3, 0.6, v} {
		i := m.ID(Bias{VCG: vg, VPGS: v, VPGD: v, VD: 0.7, VS: 0.7})
		if math.Abs(i) > 1e-12 {
			t.Errorf("ID at VDS=0, VCG=%v: %v, want ~0", vg, i)
		}
	}
}

func TestIDAntisymmetryProperty(t *testing.T) {
	// Swapping drain and source must flip the sign of the current
	// (device geometry is symmetric in our model).
	m := Default()
	f := func(vcg, vpgs, vpgd, vd, vs uint8) bool {
		b := Bias{
			VCG:  1.2 * float64(vcg%13) / 12,
			VPGS: 1.2 * float64(vpgs%13) / 12,
			VPGD: 1.2 * float64(vpgd%13) / 12,
			VD:   1.2 * float64(vd%13) / 12,
			VS:   1.2 * float64(vs%13) / 12,
		}
		fwd := m.ID(b)
		sw := b
		sw.VD, sw.VS = b.VS, b.VD
		// For the swap to be a pure mirror the polarity gates must also
		// swap (they are tied to physical junctions).
		sw.VPGS, sw.VPGD = b.VPGD, b.VPGS
		rev := m.ID(sw)
		sum := math.Abs(fwd + rev)
		scale := math.Max(math.Abs(fwd), math.Abs(rev))
		return sum <= 1e-9+1e-6*scale
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestIDMonotonicInVCGProperty(t *testing.T) {
	// With the device n-configured and in saturation, ID must be
	// non-decreasing in VCG.
	m := Default()
	v := m.P.VDD
	f := func(a, b uint8) bool {
		v1 := v * float64(a%100) / 99
		v2 := v * float64(b%100) / 99
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		i1 := m.ID(Bias{VCG: v1, VPGS: v, VPGD: v, VD: v})
		i2 := m.ID(Bias{VCG: v2, VPGS: v, VPGD: v, VD: v})
		return i2 >= i1-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestGOSAtPGSShiftsVthBy170mV(t *testing.T) {
	m := Default()
	faulty := m.WithDefects(Defects{GOS: GOSAtPGS})
	dv := faulty.VThN(0) - m.VThN(0)
	if dv < 0.12 || dv > 0.22 {
		t.Errorf("GOS@PGS VTh shift = %.0f mV, want ~170 mV (120..220)", dv*1000)
	}
}

func TestGOSDriveOrdering(t *testing.T) {
	// Paper Fig. 3: PGS GOS reduces ID(SAT) most, CG moderately, PGD
	// slightly *increases* it.
	m := Default()
	ff := m.IDSat()
	pgs := m.WithDefects(Defects{GOS: GOSAtPGS}).IDSat()
	cg := m.WithDefects(Defects{GOS: GOSAtCG}).IDSat()
	pgd := m.WithDefects(Defects{GOS: GOSAtPGD}).IDSat()
	if !(pgs < cg && cg < ff) {
		t.Errorf("ID(SAT) ordering want PGS < CG < FF, got pgs=%.3g cg=%.3g ff=%.3g", pgs, cg, ff)
	}
	if pgd <= ff {
		t.Errorf("GOS@PGD should slightly increase ID(SAT): pgd=%.3g ff=%.3g", pgd, ff)
	}
	if pgd > 1.3*ff {
		t.Errorf("GOS@PGD increase too large: pgd=%.3g ff=%.3g", pgd, ff)
	}
}

func TestGOSNegativeIDAtLowVD(t *testing.T) {
	// Paper Fig. 3: with a GOS, the gate injects into the channel and the
	// drain current goes negative when the drain is biased low while the
	// defective gate is high.
	m := Default()
	v := m.P.VDD
	for _, loc := range []GOSLocation{GOSAtPGS, GOSAtCG, GOSAtPGD} {
		faulty := m.WithDefects(Defects{GOS: loc})
		i := faulty.ID(Bias{VCG: v, VPGS: v, VPGD: v, VD: 0.0})
		if i >= 0 {
			t.Errorf("GOS@%v: ID at VD=0 = %.3g, want negative", loc, i)
		}
	}
}

func TestGOSNoVthShiftAtPGD(t *testing.T) {
	m := Default()
	faulty := m.WithDefects(Defects{GOS: GOSAtPGD})
	dv := math.Abs(faulty.VThN(0) - m.VThN(0))
	if dv > 0.03 {
		t.Errorf("GOS@PGD VTh shift = %.0f mV, want ~0", dv*1000)
	}
}

func TestChannelBreakCollapsesCurrent(t *testing.T) {
	m := Default()
	full := m.WithDefects(Defects{BreakSeverity: 1})
	if r := full.IDSat() / m.IDSat(); r > 1e-6 {
		t.Errorf("full break residual ratio = %.3g, want <= 1e-6", r)
	}
	partial := m.WithDefects(Defects{BreakSeverity: 0.1})
	r := partial.IDSat() / m.IDSat()
	if r <= 1e-3 || r >= 1 {
		t.Errorf("partial break ratio = %.3g, want in (1e-3, 1)", r)
	}
}

func TestBreakFactorMonotoneProperty(t *testing.T) {
	m := Default()
	f := func(a, b uint8) bool {
		s1 := float64(a%101) / 100
		s2 := float64(b%101) / 100
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		i1 := m.WithDefects(Defects{BreakSeverity: s1}).IDSat()
		i2 := m.WithDefects(Defects{BreakSeverity: s2}).IDSat()
		return i2 <= i1+1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTransferCurveShape(t *testing.T) {
	m := Default()
	v := m.P.VDD
	pts := m.TransferCurve(0, v, 61, v, v, v)
	if len(pts) != 61 {
		t.Fatalf("len = %d, want 61", len(pts))
	}
	if pts[0].I > pts[len(pts)-1].I/100 {
		t.Errorf("transfer curve should span >= 2 decades: I(0)=%.3g I(VDD)=%.3g", pts[0].I, pts[len(pts)-1].I)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].I < pts[i-1].I-1e-12 {
			t.Errorf("transfer curve not monotone at %d: %v < %v", i, pts[i].I, pts[i-1].I)
		}
	}
}

func TestGateCurrentsOnlyWithGOS(t *testing.T) {
	m := Default()
	v := m.P.VDD
	icg, ipgs, ipgd := m.GateCurrents(Bias{VCG: v, VPGS: v, VPGD: v, VD: v})
	if icg != 0 || ipgs != 0 || ipgd != 0 {
		t.Errorf("defect-free gate currents = %v %v %v, want 0", icg, ipgs, ipgd)
	}
	f := m.WithDefects(Defects{GOS: GOSAtCG})
	icg, _, _ = f.GateCurrents(Bias{VCG: v, VPGS: v, VPGD: v, VD: 0, VS: 0})
	if icg <= 0 {
		t.Errorf("GOS@CG gate current = %v, want > 0 (injecting)", icg)
	}
}

func TestEffectOfGOSScaling(t *testing.T) {
	small := EffectOfGOS(GOSAtPGS, 1)
	ref := EffectOfGOS(GOSAtPGS, 2)
	big := EffectOfGOS(GOSAtPGS, 4)
	if !(small.DVth < ref.DVth && ref.DVth < big.DVth) {
		t.Errorf("DVth should grow with size: %v %v %v", small.DVth, ref.DVth, big.DVth)
	}
	if !(small.DriveFactor > ref.DriveFactor && ref.DriveFactor > big.DriveFactor) {
		t.Errorf("DriveFactor should fall with size: %v %v %v", small.DriveFactor, ref.DriveFactor, big.DriveFactor)
	}
	if e := EffectOfGOS(GOSNone, 2); e.DriveFactor != 1 || e.DVth != 0 {
		t.Errorf("GOSNone effect should be identity, got %+v", e)
	}
}

func TestDefectsDefective(t *testing.T) {
	if (Defects{}).Defective() {
		t.Error("zero Defects reported defective")
	}
	for _, d := range []Defects{
		{GOS: GOSAtCG},
		{BreakSeverity: 0.5},
		{FloatPGS: true},
		{FloatPGD: true},
	} {
		if !d.Defective() {
			t.Errorf("%+v not reported defective", d)
		}
	}
}

func TestGOSLocationString(t *testing.T) {
	want := map[GOSLocation]string{
		GOSNone: "none", GOSAtPGS: "PGS", GOSAtCG: "CG", GOSAtPGD: "PGD", GOSLocation(99): "invalid",
	}
	for loc, s := range want {
		if loc.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(loc), loc.String(), s)
		}
	}
}
