package iddq

import (
	"math"
	"testing"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
)

func buildXOR2(t *testing.T, bridges []gates.PGBridge) *circuit.Netlist {
	t.Helper()
	n, err := gates.BuildAnalog(gates.Get(gates.XOR2), gates.BuildOptions{Bridges: bridges})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestMeasureStatesGolden(t *testing.T) {
	n := buildXOR2(t, nil)
	ms, err := MeasureStates(n, []string{"VIN0", "VIN1"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("states = %d, want 4", len(ms))
	}
	for _, m := range ms {
		if m.Current <= 0 {
			t.Errorf("state %d: current %.3g, want > 0 (gmin floor at least)", m.Vector, m.Current)
		}
		if m.Current > 1e-8 {
			t.Errorf("state %d: golden current %.3g too high", m.Vector, m.Current)
		}
	}
	// Waveforms restored afterwards.
	if _, ok := n.SourceByName("VIN0").W.(circuit.DC); !ok {
		t.Error("input waveform not restored")
	}
}

func TestMeasureStatesUnknownSource(t *testing.T) {
	n := buildXOR2(t, nil)
	if _, err := MeasureStates(n, []string{"NOPE"}, 1.2); err == nil {
		t.Error("unknown source accepted")
	}
}

func TestBridgeRaisesIDDQ(t *testing.T) {
	golden, err := MeasureStates(buildXOR2(t, nil), []string{"VIN0", "VIN1"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := MeasureStates(buildXOR2(t, []gates.PGBridge{{Transistor: "t1", ToVdd: true}}),
		[]string{"VIN0", "VIN1"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cls := Classify(golden, faulty, 100)
	if !cls.Detectable {
		t.Errorf("stuck-at-n bridge not IDDQ-detectable: %+v", cls)
	}
	if cls.Ratio < 100 {
		t.Errorf("ratio %.3g, want >= 100", cls.Ratio)
	}
	// The incriminating vector must be a real measurement.
	if m, ok := At(faulty, cls.Vector); !ok || math.Abs(m.Current-cls.Measured) > 1e-15 {
		t.Error("classification vector inconsistent with measurements")
	}
}

func TestGoldenSelfClassification(t *testing.T) {
	golden, err := MeasureStates(buildXOR2(t, nil), []string{"VIN0", "VIN1"}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	cls := Classify(golden, golden, 10)
	if cls.Detectable {
		t.Errorf("golden circuit classified as faulty: %+v", cls)
	}
	if math.Abs(cls.Ratio-1) > 1e-9 {
		t.Errorf("self ratio = %v, want 1", cls.Ratio)
	}
}

func TestWorstAndAt(t *testing.T) {
	ms := []Measurement{{Vector: 0, Current: 1}, {Vector: 1, Current: 5}, {Vector: 2, Current: 3}}
	if w := Worst(ms); w.Vector != 1 || w.Current != 5 {
		t.Errorf("Worst = %+v", w)
	}
	if _, ok := At(ms, 7); ok {
		t.Error("At found a missing vector")
	}
	if m, ok := At(ms, 2); !ok || m.Current != 3 {
		t.Errorf("At(2) = %+v, %v", m, ok)
	}
}

func TestClassifyDefaultThreshold(t *testing.T) {
	g := []Measurement{{Vector: 0, Current: 1e-12}}
	d := []Measurement{{Vector: 0, Current: 1e-10}}
	cls := Classify(g, d, 0) // default threshold 10
	if !cls.Detectable || cls.Ratio < 99 {
		t.Errorf("classification: %+v", cls)
	}
	_ = device.DefaultParams() // keep the device import meaningful for build tags
}
