// Package iddq implements quiescent supply-current (IDDQ) testing support:
// analog measurement of a circuit's static current in each input state and
// the golden-vs-faulty classification the paper uses to declare pull-up
// polarity faults "detectable by leakage observation" (section V-B, a
// variation above x1e6 in their setup).
package iddq

import (
	"fmt"
	"math"

	"cpsinw/internal/circuit"
	"cpsinw/internal/spice"
)

// Measurement is the static current of one circuit state.
type Measurement struct {
	Vector  int     // input vector (LSB-first)
	Current float64 // total quiescent current delivered by the sources (A)
}

// MeasureStates DC-solves the netlist for every combination of the given
// input sources driven to {0, vdd} and returns the per-state quiescent
// current. The input sources are addressed by name; their waveforms are
// replaced in place and restored before returning.
func MeasureStates(n *circuit.Netlist, inputs []string, vdd float64) ([]Measurement, error) {
	saved := make([]circuit.Waveform, len(inputs))
	srcs := make([]*circuit.VSource, len(inputs))
	for i, name := range inputs {
		s := n.SourceByName(name)
		if s == nil {
			return nil, fmt.Errorf("iddq: source %q not found", name)
		}
		srcs[i], saved[i] = s, s.W
	}
	defer func() {
		for i, s := range srcs {
			s.W = saved[i]
		}
	}()

	out := make([]Measurement, 0, 1<<uint(len(inputs)))
	for v := 0; v < 1<<uint(len(inputs)); v++ {
		for i, s := range srcs {
			level := 0.0
			if v>>uint(i)&1 == 1 {
				level = vdd
			}
			s.W = circuit.DC(level)
			// Complementary companion source, when present (DP literals).
			if comp := n.SourceByName(s.Name + "N"); comp != nil {
				comp.W = circuit.DC(vdd - level)
			}
		}
		eng, err := spice.NewEngine(n, spice.Options{})
		if err != nil {
			return nil, err
		}
		sol, err := eng.DC(0)
		if err != nil {
			return nil, fmt.Errorf("iddq: state %d: %w", v, err)
		}
		total := 0.0
		for _, s := range n.Sources {
			// A source delivering current shows a negative branch value;
			// accumulate the delivered magnitude.
			if i := sol.I(s.Name); i < 0 {
				total -= i
			}
		}
		out = append(out, Measurement{Vector: v, Current: total})
	}
	return out, nil
}

// Worst returns the largest per-state current.
func Worst(ms []Measurement) Measurement {
	var w Measurement
	for _, m := range ms {
		if m.Current > w.Current {
			w = m
		}
	}
	return w
}

// At returns the measurement of one vector.
func At(ms []Measurement, vector int) (Measurement, bool) {
	for _, m := range ms {
		if m.Vector == vector {
			return m, true
		}
	}
	return Measurement{}, false
}

// Classification is the verdict of comparing a device under test against
// a golden reference.
type Classification struct {
	Vector     int     // most incriminating state
	Golden     float64 // golden current at that state (A)
	Measured   float64 // DUT current at that state (A)
	Ratio      float64 // measured / golden
	Detectable bool
}

// Classify compares per-state currents of a DUT against the golden
// circuit and reports the state with the worst ratio. threshold is the
// minimum ratio considered detectable (the paper observes ~1e6 for
// polarity bridges; production IDDQ thresholds are far lower).
func Classify(golden, dut []Measurement, threshold float64) Classification {
	if threshold <= 0 {
		threshold = 10
	}
	var best Classification
	for i := range dut {
		g := golden[i].Current
		d := dut[i].Current
		ratio := math.Inf(1)
		if g > 0 {
			ratio = d / g
		}
		if d == 0 {
			ratio = 0
		}
		if ratio > best.Ratio {
			best = Classification{
				Vector:   dut[i].Vector,
				Golden:   g,
				Measured: d,
				Ratio:    ratio,
			}
		}
	}
	best.Detectable = best.Ratio >= threshold
	return best
}
