package dict

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// On-disk artifact layout (version 1):
//
//	magic   "CPSDICT1"                        8 bytes
//	hlen    uint32 LE                         4 bytes
//	header  JSON-encoded Meta                 hlen bytes
//	entries Meta.Entries records, each:
//	          uvarint fault-key length
//	          fault key bytes
//	          Out bitset  (see codec.go)
//	          Leak bitset
//	footer  SHA-256 of everything above       32 bytes
//
// Every multi-byte integer is little-endian. The checksum makes a
// truncated or bit-rotted artifact fail loudly on load instead of
// silently mis-diagnosing.

const (
	magic         = "CPSDICT1"
	formatVersion = 1
	maxHeaderLen  = 1 << 20
)

// Marshal serialises the dictionary into the versioned artifact form.
// The dictionary is normalised first, so equal content yields equal
// bytes regardless of the order entries were appended in.
func (d *Dictionary) Marshal() ([]byte, error) {
	d.Meta.Version = formatVersion
	if err := d.Normalize(); err != nil {
		return nil, err
	}
	header, err := json.Marshal(d.Meta)
	if err != nil {
		return nil, err
	}
	if len(header) > maxHeaderLen {
		return nil, fmt.Errorf("dict: header %d bytes exceeds %d", len(header), maxHeaderLen)
	}
	out := make([]byte, 0, len(header)+64*len(d.Entries)+44)
	out = append(out, magic...)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(header)))
	out = append(out, header...)
	var buf [binary.MaxVarintLen64]byte
	for i := range d.Entries {
		e := &d.Entries[i]
		out = append(out, buf[:binary.PutUvarint(buf[:], uint64(len(e.Fault)))]...)
		out = append(out, e.Fault...)
		out = appendBitset(out, e.Out)
		out = appendBitset(out, e.Leak)
	}
	sum := sha256.Sum256(out)
	return append(out, sum[:]...), nil
}

// Write streams the artifact to w.
func (d *Dictionary) Write(w io.Writer) error {
	raw, err := d.Marshal()
	if err != nil {
		return err
	}
	_, err = w.Write(raw)
	return err
}

// Unmarshal parses and checksum-verifies an artifact.
func Unmarshal(raw []byte) (*Dictionary, error) {
	if len(raw) < len(magic)+4+sha256.Size {
		return nil, fmt.Errorf("dict: artifact truncated (%d bytes)", len(raw))
	}
	if string(raw[:len(magic)]) != magic {
		return nil, fmt.Errorf("dict: bad magic %q", raw[:len(magic)])
	}
	body, footer := raw[:len(raw)-sha256.Size], raw[len(raw)-sha256.Size:]
	if sum := sha256.Sum256(body); !bytes.Equal(sum[:], footer) {
		return nil, fmt.Errorf("dict: checksum mismatch — artifact corrupt or truncated")
	}
	hlen := binary.LittleEndian.Uint32(raw[len(magic):])
	if hlen > maxHeaderLen || int(hlen) > len(body)-len(magic)-4 {
		return nil, fmt.Errorf("dict: header length %d out of range", hlen)
	}
	rest := body[len(magic)+4:]
	d := &Dictionary{}
	if err := json.Unmarshal(rest[:hlen], &d.Meta); err != nil {
		return nil, fmt.Errorf("dict: bad header: %w", err)
	}
	if d.Meta.Version != formatVersion {
		return nil, fmt.Errorf("dict: unsupported format version %d (want %d)", d.Meta.Version, formatVersion)
	}
	if d.Meta.Patterns < 0 || d.Meta.Entries < 0 {
		return nil, fmt.Errorf("dict: negative dimensions in header")
	}
	rest = rest[hlen:]
	d.Entries = make([]Entry, 0, d.Meta.Entries)
	for i := 0; i < d.Meta.Entries; i++ {
		klen, sz := binary.Uvarint(rest)
		if sz <= 0 || klen > uint64(len(rest)-sz) {
			return nil, fmt.Errorf("dict: entry %d: truncated fault key", i)
		}
		e := Entry{Fault: string(rest[sz : sz+int(klen)])}
		rest = rest[sz+int(klen):]
		var err error
		if e.Out, rest, err = decodeBitset(rest, d.Meta.Patterns); err != nil {
			return nil, fmt.Errorf("dict: entry %d (%s): %w", i, e.Fault, err)
		}
		if e.Leak, rest, err = decodeBitset(rest, d.Meta.Patterns); err != nil {
			return nil, fmt.Errorf("dict: entry %d (%s): %w", i, e.Fault, err)
		}
		d.Entries = append(d.Entries, e)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dict: %d trailing bytes after entries", len(rest))
	}
	// Recompute class labels and the resolution summary from the decoded
	// signatures rather than trusting the header copy.
	if err := d.Normalize(); err != nil {
		return nil, err
	}
	return d, nil
}

// Read parses an artifact from r.
func Read(r io.Reader) (*Dictionary, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Unmarshal(raw)
}
