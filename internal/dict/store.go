package dict

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is a content-addressed artifact directory: one <key>.cpd file
// per campaign, where the key is the campaign's canonical SHA-256 hex
// key. Loads are cached; puts are atomic (tmp + rename) so a crashed
// writer never leaves a half-written artifact behind.
type Store struct {
	dir   string
	mu    sync.Mutex
	cache map[string]*Dictionary
}

// ArtifactExt is the artifact file suffix.
const ArtifactExt = ".cpd"

// Open creates the directory if needed and returns a store over it.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("dict: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &Store{dir: dir, cache: map[string]*Dictionary{}}, nil
}

// Dir reports the backing directory.
func (s *Store) Dir() string { return s.dir }

// ValidKey reports whether key is a well-formed artifact key, for
// callers that want to reject bad input before hitting the store.
func ValidKey(key string) bool { return validKey(key) }

// validKey guards against path traversal: artifact keys are exactly the
// 64 lowercase hex digits of a SHA-256.
func validKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key+ArtifactExt)
}

// Put persists the dictionary under its Meta.Key and returns the file
// path and compressed size. The write is atomic within the store
// directory.
func (s *Store) Put(d *Dictionary) (string, int64, error) {
	if !validKey(d.Meta.Key) {
		return "", 0, fmt.Errorf("dict: invalid artifact key %q", d.Meta.Key)
	}
	raw, err := d.Marshal()
	if err != nil {
		return "", 0, err
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return "", 0, err
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return "", 0, err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return "", 0, err
	}
	dst := s.path(d.Meta.Key)
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return "", 0, err
	}
	s.mu.Lock()
	s.cache[d.Meta.Key] = d
	s.mu.Unlock()
	return dst, int64(len(raw)), nil
}

// Get loads the dictionary for key, from cache or disk. os.ErrNotExist
// surfaces (wrapped) when no artifact is stored under the key.
func (s *Store) Get(key string) (*Dictionary, error) {
	if !validKey(key) {
		return nil, fmt.Errorf("dict: invalid artifact key %q", key)
	}
	s.mu.Lock()
	if d, ok := s.cache[key]; ok {
		s.mu.Unlock()
		return d, nil
	}
	s.mu.Unlock()
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, err
	}
	d, err := Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("dict: artifact %s: %w", key, err)
	}
	if d.Meta.Key != key {
		return nil, fmt.Errorf("dict: artifact %s carries key %q", key, d.Meta.Key)
	}
	s.mu.Lock()
	s.cache[key] = d
	s.mu.Unlock()
	return d, nil
}

// Stat reports whether an artifact exists for key and its size on disk,
// without parsing it.
func (s *Store) Stat(key string) (int64, bool) {
	if !validKey(key) {
		return 0, false
	}
	fi, err := os.Stat(s.path(key))
	if err != nil {
		return 0, false
	}
	return fi.Size(), true
}

// Keys lists the artifact keys present on disk, sorted by filename.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	keys := []string{}
	for _, e := range ents {
		name := e.Name()
		if len(name) == 64+len(ArtifactExt) && filepath.Ext(name) == ArtifactExt && validKey(name[:64]) {
			keys = append(keys, name[:64])
		}
	}
	return keys, nil
}
