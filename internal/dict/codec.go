package dict

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Signature bitsets compress under three competing codecs and each one
// ships under whichever is smallest for that bitset:
//
//	0 raw    — the little-endian word image; dense signatures.
//	1 sparse — set-bit positions, delta-varint coded; the common case
//	           (most faults are detected by a handful of patterns).
//	2 runs   — alternating zero/one run lengths, varint coded, starting
//	           with the zero run; clustered signatures.
//
// Encoded form: one codec byte, a uvarint payload length, then the
// payload. The bit width is not repeated — it is fixed per dictionary
// and comes from the Meta header.
const (
	codecRaw    = 0
	codecSparse = 1
	codecRuns   = 2
)

func encodeRaw(b Bitset) []byte {
	out := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(out[8*i:], w)
	}
	return out
}

func encodeSparse(b Bitset) []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 16)
	prev := -1
	for wi, w := range b.words {
		for w != 0 {
			i := wi<<6 + bits.TrailingZeros64(w)
			w &= w - 1
			out = append(out, buf[:binary.PutUvarint(buf[:], uint64(i-prev))]...)
			prev = i
		}
	}
	return out
}

func encodeRuns(b Bitset) []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, 16)
	pos, cur := 0, false
	for pos < b.bits {
		run := 0
		for pos+run < b.bits && b.Test(pos+run) == cur {
			run++
		}
		out = append(out, buf[:binary.PutUvarint(buf[:], uint64(run))]...)
		pos += run
		cur = !cur
	}
	return out
}

// appendBitset appends the smallest encoding of b.
func appendBitset(dst []byte, b Bitset) []byte {
	payload := encodeRaw(b)
	codec := byte(codecRaw)
	if s := encodeSparse(b); len(s) < len(payload) {
		payload, codec = s, codecSparse
	}
	if r := encodeRuns(b); len(r) < len(payload) {
		payload, codec = r, codecRuns
	}
	var buf [binary.MaxVarintLen64]byte
	dst = append(dst, codec)
	dst = append(dst, buf[:binary.PutUvarint(buf[:], uint64(len(payload)))]...)
	return append(dst, payload...)
}

// decodeBitset consumes one encoded bitset of width nbits from src and
// returns the remaining bytes.
func decodeBitset(src []byte, nbits int) (Bitset, []byte, error) {
	if len(src) < 2 {
		return Bitset{}, nil, fmt.Errorf("dict: truncated bitset header")
	}
	codec := src[0]
	n, sz := binary.Uvarint(src[1:])
	if sz <= 0 || n > uint64(len(src)-1-sz) {
		return Bitset{}, nil, fmt.Errorf("dict: truncated bitset payload")
	}
	payload := src[1+sz : 1+sz+int(n)]
	rest := src[1+sz+int(n):]
	b := NewBitset(nbits)
	switch codec {
	case codecRaw:
		if len(payload) != 8*len(b.words) {
			return Bitset{}, nil, fmt.Errorf("dict: raw bitset payload %d bytes, want %d", len(payload), 8*len(b.words))
		}
		for i := range b.words {
			b.words[i] = binary.LittleEndian.Uint64(payload[8*i:])
		}
		b.maskTail()
	case codecSparse:
		prev := -1
		for len(payload) > 0 {
			d, sz := binary.Uvarint(payload)
			if sz <= 0 {
				return Bitset{}, nil, fmt.Errorf("dict: bad sparse delta")
			}
			payload = payload[sz:]
			i := prev + int(d)
			if i <= prev || i >= nbits {
				return Bitset{}, nil, fmt.Errorf("dict: sparse bit %d out of range [0,%d)", i, nbits)
			}
			b.Set(i)
			prev = i
		}
	case codecRuns:
		pos, cur := 0, false
		for len(payload) > 0 {
			run, sz := binary.Uvarint(payload)
			if sz <= 0 {
				return Bitset{}, nil, fmt.Errorf("dict: bad run length")
			}
			payload = payload[sz:]
			if uint64(nbits-pos) < run {
				return Bitset{}, nil, fmt.Errorf("dict: run overflows %d-bit signature", nbits)
			}
			if cur {
				for i := pos; i < pos+int(run); i++ {
					b.Set(i)
				}
			}
			pos += int(run)
			cur = !cur
		}
		if pos != nbits {
			return Bitset{}, nil, fmt.Errorf("dict: runs cover %d of %d bits", pos, nbits)
		}
	default:
		return Bitset{}, nil, fmt.Errorf("dict: unknown bitset codec %d", codec)
	}
	return b, rest, nil
}
