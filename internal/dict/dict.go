// Package dict implements the persistent packed-signature fault
// dictionary: per-fault pattern-detection bitsets harvested from a
// simulation campaign, compressed into a versioned content-addressed
// artifact that answers diagnosis queries after a process restart
// without re-simulating anything.
//
// The package is deliberately self-contained — faults are opaque string
// keys and signatures are plain bitsets — so the simulator, the ATPG
// compactor, the HTTP service and the CLI can all share one artifact
// format without import cycles.
package dict

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"
)

// Bitset is a fixed-width bitset over pattern indices. The zero value
// is an empty zero-width set.
type Bitset struct {
	bits  int
	words []uint64
}

// NewBitset returns an all-zero bitset of the given width.
func NewBitset(nbits int) Bitset {
	if nbits < 0 {
		nbits = 0
	}
	return Bitset{bits: nbits, words: make([]uint64, (nbits+63)/64)}
}

// FromWords copies a packed word slice (as produced by the simulator's
// signature capture) into a bitset, masking any tail bits beyond nbits.
func FromWords(nbits int, words []uint64) Bitset {
	b := NewBitset(nbits)
	copy(b.words, words)
	b.maskTail()
	return b
}

func (b *Bitset) maskTail() {
	if r := uint(b.bits & 63); r != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << r) - 1
	}
}

// Bits reports the width of the set.
func (b Bitset) Bits() int { return b.bits }

// Set marks pattern i.
func (b Bitset) Set(i int) {
	if i < 0 || i >= b.bits {
		return
	}
	b.words[i>>6] |= 1 << uint(i&63)
}

// Clear unmarks pattern i.
func (b Bitset) Clear(i int) {
	if i < 0 || i >= b.bits {
		return
	}
	b.words[i>>6] &^= 1 << uint(i&63)
}

// Test reports whether pattern i is marked.
func (b Bitset) Test(i int) bool {
	if i < 0 || i >= b.bits {
		return false
	}
	return b.words[i>>6]>>uint(i&63)&1 == 1
}

// Count returns the number of marked patterns.
func (b Bitset) Count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any pattern is marked.
func (b Bitset) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether two bitsets have identical width and contents.
func (b Bitset) Equal(o Bitset) bool {
	if b.bits != o.bits {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (b Bitset) Clone() Bitset {
	c := Bitset{bits: b.bits, words: make([]uint64, len(b.words))}
	copy(c.words, b.words)
	return c
}

// Members lists the marked pattern indices in ascending order.
func (b Bitset) Members() []int {
	out := make([]int, 0, b.Count())
	for wi, w := range b.words {
		for w != 0 {
			l := bits.TrailingZeros64(w)
			out = append(out, wi<<6+l)
			w &= w - 1
		}
	}
	return out
}

// Key returns a compact binary identity for the set: the little-endian
// word image. Within one dictionary every signature has the same width,
// so equal keys mean equal sets. This replaces decimal string rendering
// in hot class-partition loops.
func (b Bitset) Key() string {
	buf := make([]byte, 8*len(b.words))
	for i, w := range b.words {
		binary.LittleEndian.PutUint64(buf[8*i:], w)
	}
	return string(buf)
}

// AndCount returns the cardinality of the intersection. Widths must
// match; a mismatch counts over the shorter word span.
func AndCount(a, b Bitset) int {
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(a.words[i] & b.words[i])
	}
	return c
}

// And returns a∩b at a's width.
func And(a, b Bitset) Bitset {
	c := NewBitset(a.bits)
	n := len(a.words)
	if len(b.words) < n {
		n = len(b.words)
	}
	for i := 0; i < n; i++ {
		c.words[i] = a.words[i] & b.words[i]
	}
	return c
}

// AndAnyClear reports whether a∩b is non-empty after clearing bit i
// from the mask b. Used by the compactor to ask "is this fault still
// covered if pattern i is dropped" in one pass.
func AndAnyClear(a, mask Bitset, i int) bool {
	n := len(a.words)
	if len(mask.words) < n {
		n = len(mask.words)
	}
	drop := i >> 6
	bit := uint64(1) << uint(i&63)
	for w := 0; w < n; w++ {
		m := mask.words[w]
		if w == drop {
			m &^= bit
		}
		if a.words[w]&m != 0 {
			return true
		}
	}
	return false
}

// Jaccard returns |a∩b| / |a∪b| over the combined out+leak planes of a
// signature pair, or 0 when both are empty.
func Jaccard(aOut, aLeak, bOut, bLeak Bitset) float64 {
	inter := AndCount(aOut, bOut) + AndCount(aLeak, bLeak)
	union := aOut.Count() + aLeak.Count() + bOut.Count() + bLeak.Count() - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Entry is one fault's full detection signature: the patterns whose
// output response deviates, and the patterns under which the fault
// leaks (IDDQ). Fault is an opaque stable key (core.Fault.String()).
type Entry struct {
	Fault string
	Class string
	Out   Bitset
	Leak  Bitset
}

// Detected reports whether the entry's fault is detected at all.
func (e Entry) Detected() bool { return e.Out.Any() || e.Leak.Any() }

// sigKey is the binary class identity of the combined signature. Out
// and Leak have the same fixed width within a dictionary, so plain
// concatenation is injective.
func (e Entry) sigKey() string { return e.Out.Key() + e.Leak.Key() }

// Resolution summarises the diagnostic power of a dictionary: how many
// equivalence classes the pattern set splits the fault universe into.
type Resolution struct {
	Faults              int `json:"faults"`
	Detected            int `json:"detected"`
	Classes             int `json:"classes"`
	UniquelyDiagnosable int `json:"uniquely_diagnosable"`
}

// Meta describes a dictionary artifact. It is stored as the JSON
// header of the on-disk format and served verbatim by the dictionary
// metadata endpoint.
type Meta struct {
	Version    int        `json:"version"`
	Key        string     `json:"key"`
	Circuit    string     `json:"circuit"`
	Patterns   int        `json:"patterns"`
	Entries    int        `json:"entries"`
	Seed       int64      `json:"seed,omitempty"`
	Engine     string     `json:"engine,omitempty"`
	IDDQ       bool       `json:"iddq"`
	CreatedAt  string     `json:"created_at,omitempty"`
	Resolution Resolution `json:"resolution"`
}

// Dictionary is the in-memory form of an artifact.
type Dictionary struct {
	Meta    Meta
	Entries []Entry
}

// Normalize sorts entries by fault key, recomputes class labels and the
// resolution summary, and validates signature widths. Write calls it
// before serialising, so artifacts are canonical byte-for-byte given
// the same content.
func (d *Dictionary) Normalize() error {
	sort.Slice(d.Entries, func(a, b int) bool { return d.Entries[a].Fault < d.Entries[b].Fault })
	classOf := map[string]int{}
	res := Resolution{Faults: len(d.Entries)}
	classSize := map[int]int{}
	for i := range d.Entries {
		e := &d.Entries[i]
		if e.Out.Bits() != d.Meta.Patterns || e.Leak.Bits() != d.Meta.Patterns {
			return fmt.Errorf("dict: entry %q signature width %d/%d, dictionary has %d patterns",
				e.Fault, e.Out.Bits(), e.Leak.Bits(), d.Meta.Patterns)
		}
		if i > 0 && e.Fault == d.Entries[i-1].Fault {
			return fmt.Errorf("dict: duplicate fault key %q", e.Fault)
		}
		if e.Detected() {
			res.Detected++
		}
		k := e.sigKey()
		id, ok := classOf[k]
		if !ok {
			id = len(classOf)
			classOf[k] = id
		}
		e.Class = fmt.Sprintf("c%03d", id)
		classSize[id]++
	}
	res.Classes = len(classOf)
	for _, n := range classSize {
		if n == 1 {
			res.UniquelyDiagnosable++
		}
	}
	d.Meta.Entries = len(d.Entries)
	d.Meta.Resolution = res
	return nil
}

// Lookup returns the entry for a fault key, if present. Entries must be
// sorted (Normalize, or any dictionary read from disk).
func (d *Dictionary) Lookup(fault string) (Entry, bool) {
	i := sort.Search(len(d.Entries), func(i int) bool { return d.Entries[i].Fault >= fault })
	if i < len(d.Entries) && d.Entries[i].Fault == fault {
		return d.Entries[i], true
	}
	return Entry{}, false
}
