package dict

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func randomBitset(rng *rand.Rand, nbits int, density float64) Bitset {
	b := NewBitset(nbits)
	for i := 0; i < nbits; i++ {
		if rng.Float64() < density {
			b.Set(i)
		}
	}
	return b
}

func TestBitsetCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	widths := []int{0, 1, 5, 63, 64, 65, 127, 128, 129, 1000}
	densities := []float64{0, 0.01, 0.1, 0.5, 0.95, 1}
	for _, w := range widths {
		for _, dn := range densities {
			b := randomBitset(rng, w, dn)
			enc := appendBitset(nil, b)
			got, rest, err := decodeBitset(enc, w)
			if err != nil {
				t.Fatalf("width %d density %.2f: %v", w, dn, err)
			}
			if len(rest) != 0 {
				t.Fatalf("width %d density %.2f: %d leftover bytes", w, dn, len(rest))
			}
			if !got.Equal(b) {
				t.Fatalf("width %d density %.2f: round trip lost bits", w, dn)
			}
		}
	}
}

func TestBitsetCodecPicksSmallest(t *testing.T) {
	// A one-hot 1000-bit set must not ship as 125 raw bytes.
	b := NewBitset(1000)
	b.Set(999)
	enc := appendBitset(nil, b)
	if len(enc) >= 125 {
		t.Fatalf("one-hot 1000-bit signature encoded to %d bytes", len(enc))
	}
	// A solid run should beat the sparse listing.
	r := NewBitset(1000)
	for i := 100; i < 900; i++ {
		r.Set(i)
	}
	enc = appendBitset(nil, r)
	if len(enc) > 10 {
		t.Fatalf("single-run signature encoded to %d bytes", len(enc))
	}
}

func TestBitsetOps(t *testing.T) {
	a := NewBitset(130)
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		a.Set(i)
	}
	for _, i := range []int{0, 64, 128} {
		b.Set(i)
	}
	if got := AndCount(a, b); got != 2 {
		t.Fatalf("AndCount = %d, want 2", got)
	}
	if !AndAnyClear(a, b, 64) {
		t.Fatal("AndAnyClear should still see bit 0")
	}
	b.Clear(0)
	if AndAnyClear(a, b, 64) {
		t.Fatal("AndAnyClear should be empty after dropping 64")
	}
	if got := a.Members(); len(got) != 5 || got[0] != 0 || got[4] != 129 {
		t.Fatalf("Members = %v", got)
	}
	if a.Key() == b.Key() {
		t.Fatal("distinct bitsets share a key")
	}
	if !a.Clone().Equal(a) {
		t.Fatal("clone differs")
	}
}

func testDictionary(nPatterns int) *Dictionary {
	d := &Dictionary{Meta: Meta{
		Key:      strings.Repeat("ab", 32),
		Circuit:  "testckt",
		Patterns: nPatterns,
		IDDQ:     true,
	}}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 40; i++ {
		e := Entry{
			Fault: fmt.Sprintf("G%02d/fault", i),
			Out:   randomBitset(rng, nPatterns, 0.08),
			Leak:  randomBitset(rng, nPatterns, 0.02),
		}
		d.Entries = append(d.Entries, e)
	}
	// Two deliberate equivalence pairs and one escape.
	d.Entries[5].Out = d.Entries[4].Out.Clone()
	d.Entries[5].Leak = d.Entries[4].Leak.Clone()
	d.Entries[39].Out = NewBitset(nPatterns)
	d.Entries[39].Leak = NewBitset(nPatterns)
	return d
}

func TestFileRoundTrip(t *testing.T) {
	d := testDictionary(150)
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Entries != len(d.Entries) || got.Meta.Patterns != 150 {
		t.Fatalf("meta mismatch: %+v", got.Meta)
	}
	if got.Meta.Resolution != d.Meta.Resolution {
		t.Fatalf("resolution %+v vs %+v", got.Meta.Resolution, d.Meta.Resolution)
	}
	for i := range d.Entries {
		if got.Entries[i].Fault != d.Entries[i].Fault ||
			!got.Entries[i].Out.Equal(d.Entries[i].Out) ||
			!got.Entries[i].Leak.Equal(d.Entries[i].Leak) ||
			got.Entries[i].Class != d.Entries[i].Class {
			t.Fatalf("entry %d differs after round trip", i)
		}
	}
	// Canonical: marshalling the decoded dictionary reproduces the bytes.
	raw2, err := got.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, raw2) {
		t.Fatal("re-marshal is not byte-identical")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	d := testDictionary(90)
	raw, err := d.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": raw[:len(raw)-5],
		"bitflip":   append(append([]byte{}, raw[:50]...), append([]byte{raw[50] ^ 1}, raw[51:]...)...),
		"badmagic":  append([]byte("NOTADICT"), raw[8:]...),
	}
	for name, corrupt := range cases {
		if _, err := Unmarshal(corrupt); err == nil {
			t.Errorf("%s: corrupt artifact accepted", name)
		}
	}
}

func TestNormalizeResolution(t *testing.T) {
	d := testDictionary(100)
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	res := d.Meta.Resolution
	if res.Faults != 40 || res.Detected != 39 {
		t.Fatalf("faults/detected = %d/%d", res.Faults, res.Detected)
	}
	// 40 entries, one duplicated pair → at most 39 classes; the empty
	// signature is its own class.
	if res.Classes != 39 {
		t.Fatalf("classes = %d, want 39", res.Classes)
	}
	if res.UniquelyDiagnosable != 38 {
		t.Fatalf("uniquely diagnosable = %d, want 38", res.UniquelyDiagnosable)
	}
	// The equivalence pair must share a class label.
	a, _ := d.Lookup("G04/fault")
	b, _ := d.Lookup("G05/fault")
	if a.Class != b.Class {
		t.Fatalf("equivalent faults in classes %q and %q", a.Class, b.Class)
	}
	if got := d.Escapes(); len(got) != 1 || got[0] != "G39/fault" {
		t.Fatalf("escapes = %v", got)
	}
}

func TestDiagnoseDeterministicTieBreak(t *testing.T) {
	d := &Dictionary{Meta: Meta{Key: strings.Repeat("cd", 32), Patterns: 64}}
	sig := NewBitset(64)
	sig.Set(3)
	sig.Set(17)
	// Shuffled insert order; equivalent signatures must rank by fault key.
	for _, name := range []string{"zeta/f", "alpha/f", "mid/f"} {
		d.Entries = append(d.Entries, Entry{Fault: name, Out: sig.Clone(), Leak: NewBitset(64)})
	}
	if err := d.Normalize(); err != nil {
		t.Fatal(err)
	}
	obs := ObservationFrom(64, []int{3, 17}, nil)
	for trial := 0; trial < 5; trial++ {
		got := d.Diagnose(obs, 0)
		if len(got) != 3 {
			t.Fatalf("trial %d: %d candidates", trial, len(got))
		}
		if got[0].Fault != "alpha/f" || got[1].Fault != "mid/f" || got[2].Fault != "zeta/f" {
			t.Fatalf("trial %d: tie-break order %q %q %q", trial, got[0].Fault, got[1].Fault, got[2].Fault)
		}
		if !got[0].Exact || got[0].Score != 1 {
			t.Fatalf("trial %d: exact match scored %v", trial, got[0])
		}
	}
	// topK truncates after the deterministic sort.
	if got := d.Diagnose(obs, 2); len(got) != 2 || got[0].Fault != "alpha/f" {
		t.Fatalf("topK=2 gave %v", got)
	}
	// Disjoint observation: no candidates.
	if got := d.Diagnose(ObservationFrom(64, []int{40}, nil), 0); len(got) != 0 {
		t.Fatalf("disjoint observation matched %v", got)
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := testDictionary(120)
	path, size, err := st.Put(d)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != size {
		t.Fatalf("stat %s: %v (size %d, want %d)", path, err, fi.Size(), size)
	}
	if filepath.Base(path) != d.Meta.Key+ArtifactExt {
		t.Fatalf("artifact stored as %s", path)
	}

	// A fresh store over the same directory — the restart — must serve
	// the artifact from disk alone.
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Get(d.Meta.Key)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta.Resolution != d.Meta.Resolution || len(got.Entries) != len(d.Entries) {
		t.Fatalf("reloaded dictionary differs: %+v", got.Meta)
	}
	if sz, ok := st2.Stat(d.Meta.Key); !ok || sz != size {
		t.Fatalf("Stat = (%d, %v)", sz, ok)
	}
	keys, err := st2.Keys()
	if err != nil || len(keys) != 1 || keys[0] != d.Meta.Key {
		t.Fatalf("Keys = %v, %v", keys, err)
	}
}

func TestStoreRejectsBadKeys(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"", "short", strings.Repeat("g", 64), "../../../../etc/passwd",
		strings.Repeat("A", 64), // uppercase hex is not canonical
	} {
		if _, err := st.Get(key); err == nil {
			t.Errorf("Get(%q) accepted", key)
		}
		d := testDictionary(10)
		d.Meta.Key = key
		if _, _, err := st.Put(d); err == nil {
			t.Errorf("Put with key %q accepted", key)
		}
	}
}

func TestStoreGetMissing(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get(strings.Repeat("00", 32)); !os.IsNotExist(err) {
		t.Fatalf("missing artifact: %v", err)
	}
}
