package dict

import "sort"

// Observation is a failing device's tester response: the patterns whose
// outputs mismatched and (when the campaign observed IDDQ) the patterns
// under which the device leaked. Widths must match the dictionary's
// pattern count.
type Observation struct {
	Out  Bitset
	Leak Bitset
}

// ObservationFrom builds an observation from explicit pattern index
// lists, the shape the diagnosis API accepts.
func ObservationFrom(nPatterns int, failing, leaking []int) Observation {
	o := Observation{Out: NewBitset(nPatterns), Leak: NewBitset(nPatterns)}
	for _, i := range failing {
		o.Out.Set(i)
	}
	for _, i := range leaking {
		o.Leak.Set(i)
	}
	return o
}

// Candidate is one ranked diagnosis: a stored fault whose signature
// overlaps the observation, scored by Jaccard similarity over the
// combined out+leak planes.
type Candidate struct {
	Fault        string  `json:"fault"`
	Class        string  `json:"class"`
	Score        float64 `json:"score"`
	Intersection int     `json:"intersection"`
	SignatureLen int     `json:"signature_len"`
	Exact        bool    `json:"exact"`
}

// Diagnose ranks dictionary faults against the observation in one
// bitset-AND pass over the entries — no simulation. Ranking is fully
// deterministic: score descending, then fault key ascending, so equal-
// score candidates always come back in the same order. topK <= 0 means
// 5, matching the interactive default.
func (d *Dictionary) Diagnose(obs Observation, topK int) []Candidate {
	if topK <= 0 {
		topK = 5
	}
	cands := []Candidate{}
	for i := range d.Entries {
		e := &d.Entries[i]
		inter := AndCount(e.Out, obs.Out) + AndCount(e.Leak, obs.Leak)
		if inter == 0 {
			continue
		}
		sigLen := e.Out.Count() + e.Leak.Count()
		obsLen := obs.Out.Count() + obs.Leak.Count()
		union := sigLen + obsLen - inter
		c := Candidate{
			Fault:        e.Fault,
			Class:        e.Class,
			Score:        float64(inter) / float64(union),
			Intersection: inter,
			SignatureLen: sigLen,
			Exact:        inter == union,
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].Score != cands[b].Score {
			return cands[a].Score > cands[b].Score
		}
		return cands[a].Fault < cands[b].Fault
	})
	if len(cands) > topK {
		cands = cands[:topK]
	}
	return cands
}

// Escapes lists fault keys with empty signatures — faults this pattern
// set can never diagnose because it never detects them.
func (d *Dictionary) Escapes() []string {
	out := []string{}
	for i := range d.Entries {
		if !d.Entries[i].Detected() {
			out = append(out, d.Entries[i].Fault)
		}
	}
	return out
}
