package report

import "encoding/json"

// tableJSON is the wire form of a Table: the service layer returns the
// same tables the CLI renders as text, so API consumers and terminal
// users see identical data.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// MarshalJSON renders the table as {title, headers, rows}.
func (t *Table) MarshalJSON() ([]byte, error) {
	j := tableJSON{Title: t.Title, Headers: t.Headers, Rows: t.Rows}
	if j.Headers == nil {
		j.Headers = []string{}
	}
	if j.Rows == nil {
		j.Rows = [][]string{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a table from its wire form.
func (t *Table) UnmarshalJSON(data []byte) error {
	var j tableJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	t.Title, t.Headers, t.Rows = j.Title, j.Headers, j.Rows
	return nil
}

// seriesJSON is the wire form of a Series; each curve keeps its column
// name alongside the shared X axis.
type seriesJSON struct {
	Title   string      `json:"title,omitempty"`
	Columns []string    `json:"columns"`
	X       []float64   `json:"x"`
	Y       [][]float64 `json:"y"`
}

// MarshalJSON renders the series as {title, columns, x, y}.
func (s *Series) MarshalJSON() ([]byte, error) {
	j := seriesJSON{Title: s.Title, Columns: s.Columns, X: s.X, Y: s.Y}
	if j.Columns == nil {
		j.Columns = []string{}
	}
	if j.X == nil {
		j.X = []float64{}
	}
	if j.Y == nil {
		j.Y = [][]float64{}
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a series from its wire form.
func (s *Series) UnmarshalJSON(data []byte) error {
	var j seriesJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	s.Title, s.Columns, s.X, s.Y = j.Title, j.Columns, j.X, j.Y
	return nil
}
