package report

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tab := &Table{Title: "coverage", Headers: []string{"model", "pct"}}
	tab.Add("stuck-at", "93.9%")
	tab.Add("polarity", "100.0%")

	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"title":"coverage","headers":["model","pct"],"rows":[["stuck-at","93.9%"],["polarity","100.0%"]]}`
	if string(data) != want {
		t.Errorf("marshal:\n got %s\nwant %s", data, want)
	}

	var back Table
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, tab) {
		t.Errorf("round trip: got %+v want %+v", back, *tab)
	}
}

func TestTableJSONEmpty(t *testing.T) {
	data, err := json.Marshal(&Table{})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"headers":[],"rows":[]}`
	if string(data) != want {
		t.Errorf("got %s want %s", data, want)
	}
}

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := &Series{
		Title:   "fig5",
		Columns: []string{"vdd", "iddq"},
		X:       []float64{0.8, 1.0},
		Y:       [][]float64{{1e-9, 2e-9}},
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Series
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&back, s) {
		t.Errorf("round trip: got %+v want %+v", back, *s)
	}
}
