package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Headers: []string{"name", "value"},
	}
	tab.Add("alpha", 1.5e-12)
	tab.Add("beta", "text")
	tab.Add("gamma", 42)
	out := tab.String()
	if !strings.Contains(out, "== demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "1.5p") {
		t.Errorf("SI formatting missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every row's second column starts at the same offset.
	idx := strings.Index(lines[1], "value")
	for _, l := range lines[3:] {
		if len(l) < idx {
			t.Errorf("row too short: %q", l)
		}
	}
}

func TestSeriesCSV(t *testing.T) {
	s := Series{
		Title:   "curve",
		Columns: []string{"x", "y1", "y2"},
		X:       []float64{0, 1, 2},
		Y:       [][]float64{{10, 11, 12}, {20, 21, 22}},
	}
	out := s.String()
	want := []string{"# curve", "x,y1,y2", "0,10,20", "1,11,21", "2,12,22"}
	for _, w := range want {
		if !strings.Contains(out, w) {
			t.Errorf("CSV missing %q:\n%s", w, out)
		}
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		1.23e-15: "1.23f",
		4.5e-12:  "4.5p",
		6.7e-9:   "6.7n",
		8.9e-6:   "8.9u",
		1.2e-3:   "1.2m",
		3.4:      "3.4",
		5.6e3:    "5.6k",
		7.8e6:    "7.8M",
		9.1e9:    "9.1G",
	}
	for in, want := range cases {
		if got := FormatSI(in); got != want {
			t.Errorf("FormatSI(%g) = %q, want %q", in, got, want)
		}
	}
	if got := FormatSI(-2.5e-9); got != "-2.5n" {
		t.Errorf("negative: %q", got)
	}
}
