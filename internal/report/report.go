// Package report renders the experiment results as fixed-width text
// tables and CSV series, shared by the command-line tools, the
// experiment harness and EXPERIMENTS.md generation.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSI(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = pad(c, widths[i])
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
}

// String renders to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a named (x, y...) data set rendered as CSV — one per
// figure curve.
type Series struct {
	Title   string
	Columns []string
	X       []float64
	Y       [][]float64 // one slice per column beyond X
}

// RenderCSV writes the series as CSV with a comment header.
func (s *Series) RenderCSV(w io.Writer) {
	if s.Title != "" {
		fmt.Fprintf(w, "# %s\n", s.Title)
	}
	fmt.Fprintln(w, strings.Join(s.Columns, ","))
	for i := range s.X {
		row := []string{fmt.Sprintf("%.6g", s.X[i])}
		for _, col := range s.Y {
			if i < len(col) {
				row = append(row, fmt.Sprintf("%.6g", col[i]))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// String renders the CSV to a string.
func (s *Series) String() string {
	var b strings.Builder
	s.RenderCSV(&b)
	return b.String()
}

// FormatSI formats a value with an engineering suffix (f..G), keeping
// three significant digits — readable currents, delays and capacitances.
func FormatSI(v float64) string {
	abs := v
	if abs < 0 {
		abs = -abs
	}
	switch {
	case v == 0:
		return "0"
	case abs >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case abs >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case abs >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case abs >= 1:
		return fmt.Sprintf("%.3g", v)
	case abs >= 1e-3:
		return fmt.Sprintf("%.3gm", v*1e3)
	case abs >= 1e-6:
		return fmt.Sprintf("%.3gu", v*1e6)
	case abs >= 1e-9:
		return fmt.Sprintf("%.3gn", v*1e9)
	case abs >= 1e-12:
		return fmt.Sprintf("%.3gp", v*1e12)
	default:
		return fmt.Sprintf("%.3gf", v*1e15)
	}
}
