package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestDelayFaultSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("analog delay-fault sweep in -short mode")
	}
	r, err := DelayFault(6)
	if err != nil {
		t.Fatal(err)
	}
	if r.TmaxFF <= 0 || r.Clock <= r.TmaxFF {
		t.Fatalf("timing baseline broken: Tmax=%.3g clock=%.3g", r.TmaxFF, r.Clock)
	}
	// The sweep must show all three regimes: benign (no violation),
	// at-speed-detectable delay fault, and stuck-open.
	benign, violating, stuckOpen := 0, 0, 0
	for _, row := range r.Rows {
		switch {
		case math.IsInf(row.CellFactor, 1):
			stuckOpen++
		case row.Violation:
			violating++
		default:
			benign++
		}
		if row.Transitions == 0 {
			t.Error("no transition tests cover the victim output")
		}
	}
	if benign == 0 {
		t.Error("no benign region: even tiny breaks violate")
	}
	if violating == 0 {
		t.Error("no at-speed-detectable delay-fault region")
	}
	if stuckOpen == 0 {
		t.Error("no stuck-open region at full severity")
	}
	// Tmax is monotone in severity within the functional regime.
	last := 0.0
	for _, row := range r.Rows {
		if math.IsInf(row.Tmax, 1) {
			break
		}
		if row.Tmax < last-1e-15 {
			t.Errorf("Tmax not monotone at severity %.2f", row.Severity)
		}
		last = row.Tmax
	}
	if !strings.Contains(r.Report(), "at-speed fail") {
		t.Error("report incomplete")
	}
}
