package experiments

import (
	"strings"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/logic"
)

func TestBridgeCampaignDefaults(t *testing.T) {
	r, err := BridgeCampaign(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Bridges == 0 {
			t.Errorf("%s: no bridges enumerated", row.Circuit)
		}
		if row.Detected > row.Bridges {
			t.Errorf("%s: detected %d > total %d", row.Circuit, row.Detected, row.Bridges)
		}
		// Stuck-at vectors provide substantial but usually incomplete
		// accidental bridge coverage.
		if row.Detected == 0 {
			t.Errorf("%s: stuck-at set detected no bridges at all", row.Circuit)
		}
	}
	if !strings.Contains(r.Report(), "Neighbour bridges") {
		t.Error("report incomplete")
	}
}

func TestBridgeCampaignCustomCircuit(t *testing.T) {
	r, err := BridgeCampaign(map[string]*logic.Circuit{"c17": bench.C17()})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 || r.Rows[0].Circuit != "c17" {
		t.Fatalf("rows: %+v", r.Rows)
	}
	// c17's exhaustive-quality stuck-at set catches all neighbour bridges.
	if r.Rows[0].Detected != r.Rows[0].Bridges {
		t.Errorf("c17 bridge coverage %d/%d", r.Rows[0].Detected, r.Rows[0].Bridges)
	}
}
