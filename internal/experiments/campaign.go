package experiments

import (
	"fmt"
	"math"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/circuit"
	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
	"cpsinw/internal/spice"
)

// CampaignRow compares the classical stuck-at test flow against the
// extended CP flow on one benchmark.
type CampaignRow struct {
	Circuit string
	Stats   logic.Stats

	// Extended fault universe size (stuck-at + polarity + channel break).
	Faults int

	// ClassicalCoveragePct: coverage of the extended universe achieved by
	// the classical stuck-at pattern set (voltage observation only) —
	// the paper's "current fault models are insufficient" measurement.
	ClassicalCoveragePct float64
	ClassicalVectors     int

	// ExtendedCoveragePct: coverage with the full CP flow (polarity ATPG
	// with IDDQ, two-pattern stuck-open, DP channel-break procedure).
	ExtendedCoveragePct float64
	ExtendedVectors     int
}

// CampaignResult is the ATPG evaluation across the benchmark suite.
type CampaignResult struct {
	Rows []CampaignRow
}

// ATPGCampaign runs both flows over the given circuits (the standard
// suite when nil).
func ATPGCampaign(circuits map[string]*logic.Circuit) (*CampaignResult, error) {
	if circuits == nil {
		circuits = bench.Suite()
	}
	var names []string
	for name := range circuits {
		names = append(names, name)
	}
	sort.Strings(names)

	res := &CampaignResult{}
	for _, name := range names {
		c := circuits[name]
		row := CampaignRow{Circuit: name, Stats: c.Statistics()}

		universe := core.Universe(c, core.UniverseOptions{
			LineStuckAt: true, ChannelBreak: true, Polarity: true,
		})
		row.Faults = len(universe)

		// --- Classical flow: stuck-at ATPG, voltage observation only. ---
		var saFaults []core.Fault
		for _, f := range universe {
			if f.Kind.IsLineFault() {
				saFaults = append(saFaults, f)
			}
		}
		var saPatterns []faultsim.Pattern
		for _, f := range saFaults {
			if pat, ok := atpg.GenerateStuckAt(c, f, atpg.Options{}); ok {
				saPatterns = append(saPatterns, pat)
			}
		}
		saPatterns = atpg.CompactPatterns(c, saFaults, saPatterns)
		row.ClassicalVectors = len(saPatterns)

		sim := faultsim.New(c)
		detected := 0
		saCov := faultsim.Summarise(sim.RunStuckAt(saFaults, saPatterns))
		detected += saCov.Detected
		// The classical patterns may accidentally catch some transistor
		// faults through output observation; credit them fairly.
		var trFaults []core.Fault
		for _, f := range universe {
			if !f.Kind.IsLineFault() {
				trFaults = append(trFaults, f)
			}
		}
		trDet, err := sim.RunTransistor(trFaults, saPatterns, false)
		if err != nil {
			return nil, err
		}
		detected += faultsim.Summarise(trDet).Detected
		row.ClassicalCoveragePct = 100 * float64(detected) / float64(len(universe))

		// --- Extended CP flow. ---
		gen := atpg.Generate(c, universe, atpg.Options{})
		covered := gen.StuckAtCovered + gen.PolarityCovered + gen.CBSPCovered + gen.CBDPCovered
		row.ExtendedCoveragePct = 100 * float64(covered) / float64(len(universe))
		row.ExtendedVectors = gen.Set.TotalVectors()

		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Report renders the campaign comparison.
func (r *CampaignResult) Report() string {
	t := report.Table{
		Title: "ATPG campaign: classical stuck-at flow vs extended CP fault model",
		Headers: []string{"Circuit", "Gates", "DP", "Faults",
			"Classical cov [%]", "Classical vec", "Extended cov [%]", "Extended vec"},
	}
	for _, row := range r.Rows {
		t.Add(row.Circuit, row.Stats.Gates, row.Stats.DPGates, row.Faults,
			fmt.Sprintf("%.1f", row.ClassicalCoveragePct), row.ClassicalVectors,
			fmt.Sprintf("%.1f", row.ExtendedCoveragePct), row.ExtendedVectors)
	}
	return t.String()
}

// AblationRow is one Vcut sample of the A2 study: the PGD-open delay
// ratio (vs the Vcut=0 reference) under the default (quasi-ballistic,
// softly-controlled drain barrier) and the ablated (sharply-controlled,
// symmetric) calibration. A NaN ratio marks a non-functional point.
type AblationRow struct {
	Vcut      float64
	AsymRatio float64
	SymRatio  float64
}

// AblationResult studies the quasi-ballistic drain-side softening
// (DESIGN.md A2). With the softening, the INV pull-up degrades gracefully
// under a PGD open (the paper's 7x delay rise across a usable Vcut
// window); with a sharply-controlled drain barrier the device cuts off
// almost immediately, collapsing the functional window.
type AblationResult struct {
	Rows []AblationRow
	// AsymWindow / SymWindow: largest functional Vcut for PGD-open.
	AsymWindow, SymWindow float64
}

// AblationPGD sweeps Vcut on the floated PGD of the INV pull-up under
// both calibrations.
func AblationPGD(points int) (*AblationResult, error) {
	if points < 3 {
		points = 6
	}
	symmetric := device.DefaultCalib()
	symmetric.SPGD = symmetric.SPG
	symmetric.WPGD = 1.0

	asymM := device.New(device.DefaultParams(), device.DefaultCalib())
	symM := device.New(device.DefaultParams(), symmetric)

	ref := map[string]float64{}
	for name, m := range map[string]*device.Model{"asym": asymM, "sym": symM} {
		d, ok, err := invT1Delay(m, gates.PGDTerminal, 0)
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("ablation: %s reference not functional", name)
		}
		ref[name] = d
	}

	res := &AblationResult{}
	for i := 0; i < points; i++ {
		vcut := 0.6 * float64(i) / float64(points-1)
		row := AblationRow{Vcut: vcut, AsymRatio: math.NaN(), SymRatio: math.NaN()}
		if d, ok, err := invT1Delay(asymM, gates.PGDTerminal, vcut); err != nil {
			return nil, err
		} else if ok {
			row.AsymRatio = d / ref["asym"]
			res.AsymWindow = vcut
		}
		if d, ok, err := invT1Delay(symM, gates.PGDTerminal, vcut); err != nil {
			return nil, err
		} else if ok {
			row.SymRatio = d / ref["sym"]
			res.SymWindow = vcut
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// invT1Delay measures the INV low-to-high output delay with the pull-up
// transistor's selected polarity gate floated at vcut, under the given
// device model. ok is false when the output no longer switches (the SOF
// regime).
func invT1Delay(m *device.Model, term gates.PGTerminal, vcut float64) (float64, bool, error) {
	vdd := m.P.VDD
	pulse := circuit.Pulse{
		V0: 0, V1: vdd,
		Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
		Width: 600e-12, Period: 1.4e-9,
	}
	n, err := gates.BuildAnalog(gates.Get(gates.INV), gates.BuildOptions{
		Model:  m,
		Inputs: []circuit.Waveform{pulse},
		Floats: []gates.FloatPG{{Transistor: "t1", Terminal: term, Vcut: vcut}},
	})
	if err != nil {
		return 0, false, err
	}
	eng, err := spice.NewEngine(n, spice.Options{})
	if err != nil {
		return 0, false, err
	}
	wf, err := eng.Tran(2e-12, 1.4e-9, []string{gates.InputNode(0), gates.NodeOut})
	if err != nil {
		return 0, false, err
	}
	d, derr := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, false, true, 500e-12)
	if derr != nil {
		return 0, false, nil // no crossing: outside the functional window
	}
	return d, true, nil
}

// Report renders the ablation table.
func (r *AblationResult) Report() string {
	t := report.Table{
		Title:   "Ablation A2: PGD quasi-ballistic softening (INV t1, PGD-open delay ratio vs Vcut)",
		Headers: []string{"Vcut [V]", "soft drain barrier (default)", "sharp drain barrier (ablated)"},
	}
	fmtRatio := func(x float64) string {
		if math.IsNaN(x) {
			return "not functional"
		}
		return fmt.Sprintf("%.2f", x)
	}
	for _, row := range r.Rows {
		t.Add(fmt.Sprintf("%.2f", row.Vcut), fmtRatio(row.AsymRatio), fmtRatio(row.SymRatio))
	}
	t.Add("window", fmt.Sprintf("%.2f V", r.AsymWindow), fmt.Sprintf("%.2f V", r.SymWindow))
	return t.String()
}
