package experiments

import (
	"fmt"
	"strings"

	"cpsinw/internal/device"
	"cpsinw/internal/report"
	"cpsinw/internal/tcad"
)

// Figure3Variant is one curve of Figure 3: an n-type device, fault-free
// or with a GOS at one gate.
type Figure3Variant struct {
	Label    string
	GOS      device.GOSLocation
	Transfer []device.IVPoint // ID-VCG at saturation (Figure 3 curves)
	Output   []device.IVPoint // ID-VD at full gate drive (negative-ID region)
	IDSat    float64
	VthShift float64 // vs fault-free (V)
	MinID    float64 // most negative drain current on the output curve
}

// Figure3Result reproduces Figure 3a-c: the behaviour of defective n-type
// TIG-SiNWFETs in the presence of a GOS, from the compact model (the
// synthetic-TCAD cross-check lives in Figure3TCAD).
type Figure3Result struct {
	Variants []Figure3Variant // fault-free first
}

// Figure3 sweeps the four device variants with n transfer-curve points.
func Figure3(points int) *Figure3Result {
	if points < 8 {
		points = 8
	}
	m := device.Default()
	vdd := m.P.VDD
	res := &Figure3Result{}
	ffVth := m.VThN(0)
	for _, v := range []struct {
		label string
		loc   device.GOSLocation
	}{
		{"fault-free", device.GOSNone},
		{"GOS on PGS", device.GOSAtPGS},
		{"GOS on CG", device.GOSAtCG},
		{"GOS on PGD", device.GOSAtPGD},
	} {
		dev := m
		if v.loc != device.GOSNone {
			dev = m.WithDefects(device.Defects{GOS: v.loc})
		}
		variant := Figure3Variant{
			Label:    v.label,
			GOS:      v.loc,
			Transfer: dev.TransferCurve(0, vdd, points, vdd, vdd, vdd),
			Output:   dev.OutputCurve(0, vdd, points, vdd, vdd, vdd),
			IDSat:    dev.IDSat(),
			VthShift: dev.VThN(0) - ffVth,
		}
		for _, p := range variant.Output {
			if p.I < variant.MinID {
				variant.MinID = p.I
			}
		}
		res.Variants = append(res.Variants, variant)
	}
	return res
}

// Variant returns the named curve set.
func (r *Figure3Result) Variant(loc device.GOSLocation) *Figure3Variant {
	for i := range r.Variants {
		if r.Variants[i].GOS == loc {
			return &r.Variants[i]
		}
	}
	return nil
}

// Report renders summary statistics plus the CSV curves.
func (r *Figure3Result) Report() string {
	var b strings.Builder
	t := report.Table{
		Title:   "Figure 3: n-type TIG-SiNWFET with gate-oxide shorts (compact model)",
		Headers: []string{"Variant", "ID(SAT) [A]", "ID(SAT)/FF", "dVth [mV]", "min ID [A]"},
	}
	ff := r.Variant(device.GOSNone).IDSat
	for _, v := range r.Variants {
		t.Add(v.Label, v.IDSat, fmt.Sprintf("%.2f", v.IDSat/ff),
			fmt.Sprintf("%.0f", v.VthShift*1000), v.MinID)
	}
	b.WriteString(t.String())
	for _, v := range r.Variants {
		s := report.Series{
			Title:   "ID-VCG " + v.Label,
			Columns: []string{"VCG", "ID"},
		}
		for _, p := range v.Transfer {
			s.X = append(s.X, p.V)
			s.Y = appendCol(s.Y, 0, p.I)
		}
		b.WriteString(s.String())
	}
	return b.String()
}

func appendCol(y [][]float64, col int, v float64) [][]float64 {
	for len(y) <= col {
		y = append(y, nil)
	}
	y[col] = append(y[col], v)
	return y
}

// Figure3TCAD cross-validates the compact-model orderings with the
// synthetic TCAD solver: ID(SAT) per variant.
func Figure3TCAD() map[device.GOSLocation]float64 {
	p := device.DefaultParams()
	bias := tcad.SaturationBias(p)
	out := map[device.GOSLocation]float64{}
	for _, loc := range []device.GOSLocation{device.GOSNone, device.GOSAtPGS, device.GOSAtCG, device.GOSAtPGD} {
		d := device.Defects{}
		if loc != device.GOSNone {
			d.GOS = loc
		}
		out[loc] = tcad.NewSolver(p, d).Solve(bias).ID
	}
	return out
}

// Figure4Case is one electron-density extraction of Figure 4.
type Figure4Case struct {
	Label   string
	GOS     device.GOSLocation
	Mean    float64 // channel-average electron density (cm^-3)
	Profile *tcad.DensityProfile
}

// Figure4Result reproduces Figure 4: the electron-density distribution of
// an n-type TIG-SiNWFET with and without GOS.
type Figure4Result struct {
	Cases []Figure4Case
}

// PaperDensity records the paper's reported values for comparison.
var PaperDensity = map[device.GOSLocation]float64{
	device.GOSNone:  1.558e19,
	device.GOSAtCG:  1.763e18,
	device.GOSAtPGD: 1.316e18,
	device.GOSAtPGS: 1.426e17,
}

// Figure4 runs the density extraction at the saturation bias.
func Figure4() *Figure4Result {
	p := device.DefaultParams()
	bias := tcad.SaturationBias(p)
	res := &Figure4Result{}
	for _, v := range []struct {
		label string
		loc   device.GOSLocation
	}{
		{"Fault-free channel", device.GOSNone},
		{"GOS on CG", device.GOSAtCG},
		{"GOS on PGD", device.GOSAtPGD},
		{"GOS on PGS", device.GOSAtPGS},
	} {
		d := device.Defects{}
		if v.loc != device.GOSNone {
			d.GOS = v.loc
		}
		prof := tcad.ElectronDensity(p, d, bias)
		res.Cases = append(res.Cases, Figure4Case{
			Label: v.label, GOS: v.loc, Mean: prof.Mean, Profile: prof,
		})
	}
	return res
}

// Case returns the extraction for one location.
func (r *Figure4Result) Case(loc device.GOSLocation) *Figure4Case {
	for i := range r.Cases {
		if r.Cases[i].GOS == loc {
			return &r.Cases[i]
		}
	}
	return nil
}

// Report renders the density comparison against the paper's numbers.
func (r *Figure4Result) Report() string {
	t := report.Table{
		Title:   "Figure 4: electron density of an n-type TIG-SiNWFET with/without GOS",
		Headers: []string{"Case", "e density (ours) [cm^-3]", "e density (paper) [cm^-3]", "ratio vs FF (ours)", "ratio vs FF (paper)"},
	}
	ff := r.Case(device.GOSNone).Mean
	ffPaper := PaperDensity[device.GOSNone]
	for _, c := range r.Cases {
		t.Add(c.Label,
			fmt.Sprintf("%.3e", c.Mean),
			fmt.Sprintf("%.3e", PaperDensity[c.GOS]),
			fmt.Sprintf("%.4f", c.Mean/ff),
			fmt.Sprintf("%.4f", PaperDensity[c.GOS]/ffPaper))
	}
	return t.String()
}
