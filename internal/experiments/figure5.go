package experiments

import (
	"fmt"
	"math"
	"strings"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/iddq"
	"cpsinw/internal/report"
	"cpsinw/internal/spice"
)

// Figure5Point is one Vcut sample of one open-polarity-gate curve.
type Figure5Point struct {
	Vcut       float64
	Leakage    float64 // worst static supply current over all input states (A)
	Delay      float64 // relevant propagation delay (s); NaN outside the functional window
	Functional bool    // gate still switches (inside the paper's (VLo, VHi))
}

// Figure5Curve is the sweep for one floated polarity-gate terminal.
type Figure5Curve struct {
	Terminal gates.PGTerminal
	Points   []Figure5Point
}

// MaxFunctionalDelay returns the largest delay inside the functional
// window, and whether any functional point exists.
func (c *Figure5Curve) MaxFunctionalDelay() (float64, bool) {
	worst, any := 0.0, false
	for _, p := range c.Points {
		if p.Functional && !math.IsNaN(p.Delay) {
			any = true
			if p.Delay > worst {
				worst = p.Delay
			}
		}
	}
	return worst, any
}

// LeakSpan returns min and max leakage across the sweep.
func (c *Figure5Curve) LeakSpan() (lo, hi float64) {
	lo, hi = math.Inf(1), 0
	for _, p := range c.Points {
		if p.Leakage < lo {
			lo = p.Leakage
		}
		if p.Leakage > hi {
			hi = p.Leakage
		}
	}
	return lo, hi
}

// Figure5Panel is one subplot of Figure 5: a gate and the transistor
// whose polarity gate is open.
type Figure5Panel struct {
	Gate       gates.Kind
	Transistor string // "t1" (pull-up) or "t3" (pull-down)

	NominalDelay   float64 // defect-free delay of the measured transition (s)
	NominalLeakage float64 // defect-free worst static current (A)
	Curves         []Figure5Curve
}

// Curve returns the sweep for one terminal.
func (p *Figure5Panel) Curve(t gates.PGTerminal) *Figure5Curve {
	for i := range p.Curves {
		if p.Curves[i].Terminal == t {
			return &p.Curves[i]
		}
	}
	return nil
}

// Figure5Result reproduces Figure 5a-f.
type Figure5Result struct {
	Panels []Figure5Panel
}

// Panel returns the subplot for a gate/transistor.
func (r *Figure5Result) Panel(k gates.Kind, tr string) *Figure5Panel {
	for i := range r.Panels {
		if r.Panels[i].Gate == k && r.Panels[i].Transistor == tr {
			return &r.Panels[i]
		}
	}
	return nil
}

// Figure5Options sizes the sweep.
type Figure5Options struct {
	Points int     // samples per curve (default 9)
	TStep  float64 // transient step (default 2 ps)
	TStop  float64 // transient window (default 1.4 ns)
}

func (o Figure5Options) withDefaults() Figure5Options {
	if o.Points < 3 {
		o.Points = 9
	}
	if o.TStep <= 0 {
		o.TStep = 2e-12
	}
	if o.TStop <= 0 {
		o.TStop = 1.4e-9
	}
	return o
}

// Figure5 runs the full open-polarity-gate study: for each of INV, NAND2
// and XOR2, and for the pull-up (t1) and pull-down (t3) transistors, the
// floating polarity-gate voltage Vcut is swept while static leakage and
// the relevant propagation delay are measured with the analog simulator.
func Figure5(opt Figure5Options) (*Figure5Result, error) {
	opt = opt.withDefaults()
	res := &Figure5Result{}
	for _, kind := range []gates.Kind{gates.INV, gates.NAND2, gates.XOR2} {
		for _, tr := range []string{"t1", "t3"} {
			panel, err := figure5Panel(kind, tr, opt)
			if err != nil {
				return nil, fmt.Errorf("figure5 %v/%s: %w", kind, tr, err)
			}
			res.Panels = append(res.Panels, *panel)
		}
	}
	return res, nil
}

// vcutWindow returns the sweep range for a panel: pull-up PGs sit at GND
// nominally (sweep upward), pull-down PGs at VDD (sweep downward). The
// DP XOR2 stays functional over the full rail span thanks to its
// redundant pass structure, so its window covers the whole supply.
func vcutWindow(kind gates.Kind, tr string, vdd float64) (lo, hi float64) {
	if kind == gates.XOR2 {
		return 0, vdd
	}
	if tr == "t1" {
		return 0, 0.75 * vdd
	}
	return 0.25 * vdd, vdd
}

func figure5Panel(kind gates.Kind, tr string, opt Figure5Options) (*Figure5Panel, error) {
	m := device.Default()
	vdd := m.P.VDD
	panel := &Figure5Panel{Gate: kind, Transistor: tr}

	nomLeak, nomDelay, _, err := figure5Measure(kind, tr, nil, opt)
	if err != nil {
		return nil, err
	}
	panel.NominalLeakage = nomLeak
	panel.NominalDelay = nomDelay

	lo, hi := vcutWindow(kind, tr, vdd)
	for _, term := range []gates.PGTerminal{gates.PGSTerminal, gates.PGDTerminal} {
		curve := Figure5Curve{Terminal: term}
		for i := 0; i < opt.Points; i++ {
			vcut := lo + (hi-lo)*float64(i)/float64(opt.Points-1)
			float := &gates.FloatPG{Transistor: tr, Terminal: term, Vcut: vcut}
			leak, delay, functional, err := figure5Measure(kind, tr, float, opt)
			if err != nil {
				return nil, err
			}
			curve.Points = append(curve.Points, Figure5Point{
				Vcut: vcut, Leakage: leak, Delay: delay, Functional: functional,
			})
		}
		panel.Curves = append(panel.Curves, curve)
	}
	return panel, nil
}

// figure5Measure runs the leakage and delay measurement for one
// configuration. tr selects the measured transition: the pull-up
// transistor drives the low-to-high output edge, the pull-down the
// high-to-low edge.
func figure5Measure(kind gates.Kind, tr string, float *gates.FloatPG, opt Figure5Options) (leak, delay float64, functional bool, err error) {
	spec := gates.Get(kind)
	m := device.Default()
	vdd := m.P.VDD

	var floats []gates.FloatPG
	if float != nil {
		floats = append(floats, *float)
	}

	// --- Static leakage over all input states. ---
	staticIn := make([]circuit.Waveform, spec.NIn)
	var sourceNames []string
	for i := range staticIn {
		staticIn[i] = circuit.DC(0)
		sourceNames = append(sourceNames, fmt.Sprintf("VIN%d", i))
	}
	n, err := gates.BuildAnalog(spec, gates.BuildOptions{Inputs: staticIn, Floats: floats})
	if err != nil {
		return 0, 0, false, err
	}
	ms, err := iddq.MeasureStates(n, sourceNames, vdd)
	if err != nil {
		return 0, 0, false, err
	}
	leak = iddq.Worst(ms).Current

	// --- Delay of the relevant transition. ---
	pulse := circuit.Pulse{
		V0: 0, V1: vdd,
		Delay: 100e-12, Rise: 10e-12, Fall: 10e-12,
		Width: 600e-12, Period: opt.TStop,
	}
	waves := make([]circuit.Waveform, spec.NIn)
	waves[0] = pulse
	for i := 1; i < spec.NIn; i++ {
		waves[i] = circuit.DC(vdd) // side inputs at 1: INV n/a, NAND/XOR sensitised
	}
	n, err = gates.BuildAnalog(spec, gates.BuildOptions{Inputs: waves, Floats: floats})
	if err != nil {
		return 0, 0, false, err
	}
	eng, err := spice.NewEngine(n, spice.Options{})
	if err != nil {
		return 0, 0, false, err
	}
	wf, err := eng.Tran(opt.TStep, opt.TStop, []string{gates.InputNode(0), gates.NodeOut})
	if err != nil {
		return 0, 0, false, err
	}

	in := gates.InputNode(0)
	out := gates.NodeOut
	// Output falls when the input rises (out = NOT a with side inputs at
	// 1 for all three gates), and rises back on the input's falling edge.
	dHL, errHL := spice.PropDelay(wf, in, out, vdd, true, false, 0)
	dLH, errLH := spice.PropDelay(wf, in, out, vdd, false, true, 500e-12)
	functional = errHL == nil && errLH == nil

	if tr == "t1" {
		delay = dLH
		if errLH != nil {
			delay = math.NaN()
		}
	} else {
		delay = dHL
		if errHL != nil {
			delay = math.NaN()
		}
	}
	return leak, delay, functional, nil
}

// Report renders the six panels.
func (r *Figure5Result) Report() string {
	var b strings.Builder
	for i := range r.Panels {
		p := &r.Panels[i]
		t := report.Table{
			Title: fmt.Sprintf("Figure 5: %v transistor %s (nominal delay %s, leakage %s)",
				p.Gate, p.Transistor, report.FormatSI(p.NominalDelay), report.FormatSI(p.NominalLeakage)),
			Headers: []string{"Vcut [V]", "PG", "Leakage [A]", "Delay [s]", "Functional"},
		}
		for _, c := range p.Curves {
			for _, pt := range c.Points {
				d := "-"
				if !math.IsNaN(pt.Delay) {
					d = report.FormatSI(pt.Delay)
				}
				t.Add(fmt.Sprintf("%.2f", pt.Vcut), c.Terminal.String(),
					pt.Leakage, d, pt.Functional)
			}
		}
		b.WriteString(t.String())
		b.WriteString("\n")
	}
	return b.String()
}
