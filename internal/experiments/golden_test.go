package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/logic"
)

// The golden files lock the exact report text of the paper's
// reproduced tables so engine changes (LUT compilation, cone
// restriction, ATPG fault dropping, ...) cannot silently drift the
// numbers. Regenerate deliberately with:
//
//	go test ./internal/experiments -run TestGolden -update
var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if string(want) == got {
		return
	}
	wantLines := strings.Split(string(want), "\n")
	gotLines := strings.Split(got, "\n")
	for i := 0; i < len(wantLines) || i < len(gotLines); i++ {
		var w, g string
		if i < len(wantLines) {
			w = wantLines[i]
		}
		if i < len(gotLines) {
			g = gotLines[i]
		}
		if w != g {
			t.Fatalf("%s drifted at line %d:\n golden: %q\n got:    %q\n(rerun with -update only if the change is intended)", name, i+1, w, g)
		}
	}
	t.Fatalf("%s drifted (whitespace only?); rerun with -update only if intended", name)
}

func TestGoldenTableI(t *testing.T) {
	checkGolden(t, "tableI.golden", TableI().Report())
}

func TestGoldenTableII(t *testing.T) {
	checkGolden(t, "tableII.golden", TableII().Report())
}

func TestGoldenTableIIISwitchLevel(t *testing.T) {
	r, err := TableIII(false)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "tableIII_switch.golden", r.Report())
}

// goldenSuite is a deterministic sub-suite: small enough to keep the
// golden runs fast, mixed enough to exercise SP and DP gates, PODEM,
// IDDQ fallback and both channel-break procedures.
func goldenSuite() map[string]*logic.Circuit {
	return map[string]*logic.Circuit{
		"c17":     bench.C17(),
		"fa_cp":   bench.FullAdderCP(),
		"tmr":     bench.TMRVoter(),
		"parity8": bench.ParityTree(8),
		"rca4":    bench.RippleCarryAdder(4),
	}
}

func TestGoldenATPGCampaign(t *testing.T) {
	r, err := ATPGCampaign(goldenSuite())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "atpg_campaign.golden", r.Report())
}

func TestGoldenChannelBreakAlgorithm(t *testing.T) {
	r, err := ChannelBreakAlgorithm(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "channelbreak_algorithm.golden", r.Report())
}

func TestGoldenDelayFault(t *testing.T) {
	r, err := DelayFault(6)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "delayfault.golden", r.Report())
}

// TestGoldenFigure5 locks the open-polarity-gate leakage/delay sweep at
// a reduced point budget (the analog engine dominates the runtime; the
// sweep window and measurement path are the same as the full figure).
func TestGoldenFigure5(t *testing.T) {
	r, err := Figure5(Figure5Options{Points: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "figure5.golden", r.Report())
}

func TestGoldenDiagnosis(t *testing.T) {
	r, err := Diagnosis(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "diagnosis.golden", r.Report())
}

func TestGoldenCompaction(t *testing.T) {
	r, err := Compaction(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "compaction.golden", r.Report())
}

func TestGoldenBridgeCampaign(t *testing.T) {
	r, err := BridgeCampaign(nil)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "bridge_campaign.golden", r.Report())
}

// TestGoldenFilesPresent keeps the corpus honest: every golden this
// file asserts against must be checked in, so a fresh clone fails
// loudly instead of silently skipping.
func TestGoldenFilesPresent(t *testing.T) {
	for _, name := range []string{
		"tableI.golden", "tableII.golden", "tableIII_switch.golden",
		"atpg_campaign.golden", "channelbreak_algorithm.golden",
		"delayfault.golden", "figure5.golden", "diagnosis.golden",
		"bridge_campaign.golden", "compaction.golden",
	} {
		if _, err := os.Stat(filepath.Join("testdata", name)); err != nil {
			t.Errorf("golden file missing: %v", err)
		}
	}
}
