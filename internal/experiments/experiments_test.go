package experiments

import (
	"math"
	"strings"
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
)

func TestTableI(t *testing.T) {
	r := TableI()
	if len(r.Steps) != 5 {
		t.Fatalf("steps = %d", len(r.Steps))
	}
	rep := r.Report()
	for _, want := range []string{"Bosch process", "Gate oxide short", "stuck-at-n-type", "channel-break"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table I report missing %q", want)
		}
	}
}

func TestTableII(t *testing.T) {
	rep := TableII().Report()
	for _, want := range []string{"22nm", "5.1nm", "7.5nm", "0.41eV", "1e+15"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Table II report missing %q:\n%s", want, rep)
		}
	}
}

func TestTableIIISwitchLevel(t *testing.T) {
	r, err := TableIII(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (2 fault types x 4 transistors)", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper Table III: every polarity fault is detectable, always with
		// a leakage signature; pull-up faults by leakage only, pull-down
		// stuck-at-n also flips the output.
		if row.Vector < 0 {
			t.Errorf("%v on %s: undetectable", row.FaultKind, row.Transistor)
			continue
		}
		if !row.LeakDetect && !row.OutputDetect {
			t.Errorf("%v on %s: no signature", row.FaultKind, row.Transistor)
		}
		if row.Net == gates.NetPullUp && row.OutputDetect {
			t.Errorf("%v on %s: pull-up fault flips output, contradicting the paper", row.FaultKind, row.Transistor)
		}
		if row.Net == gates.NetPullDown && row.FaultKind == core.FaultStuckAtN && !row.OutputDetect {
			t.Errorf("stuck-at-n on %s: pull-down fault should flip the output", row.Transistor)
		}
	}
}

func TestTableIIIAnalogLeakRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("analog Table III in -short mode")
	}
	r, err := TableIII(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.Vector < 0 || !row.LeakDetect || row.OutputDetect {
			continue
		}
		// Leak-only faults (pull-up network): the analog IDDQ ratio must
		// be large enough for current testing (paper reports > 1e6 in their
		// setup; our floor-limited simulator must still show >= 100x).
		if row.AnalogLeakRatio < 100 {
			t.Errorf("%v on %s: analog IDDQ ratio %.3g, want >= 100",
				row.FaultKind, row.Transistor, row.AnalogLeakRatio)
		}
	}
	if !strings.Contains(r.Report(), "pull-up") {
		t.Error("report should label the networks")
	}
}

func TestFigure3Claims(t *testing.T) {
	r := Figure3(25)
	ff := r.Variant(device.GOSNone)
	pgs := r.Variant(device.GOSAtPGS)
	cg := r.Variant(device.GOSAtCG)
	pgd := r.Variant(device.GOSAtPGD)

	// ID(SAT) ordering: PGS < CG < FF < PGD (paper Figures 3a-c).
	if !(pgs.IDSat < cg.IDSat && cg.IDSat < ff.IDSat && ff.IDSat < pgd.IDSat) {
		t.Errorf("ID(SAT) ordering: pgs=%.3g cg=%.3g ff=%.3g pgd=%.3g",
			pgs.IDSat, cg.IDSat, ff.IDSat, pgd.IDSat)
	}
	// VTh shift ~170 mV for GOS@PGS; ~none for PGD.
	if pgs.VthShift < 0.12 || pgs.VthShift > 0.22 {
		t.Errorf("GOS@PGS dVth = %.0f mV, want ~170", pgs.VthShift*1000)
	}
	if math.Abs(pgd.VthShift) > 0.03 {
		t.Errorf("GOS@PGD dVth = %.0f mV, want ~0", pgd.VthShift*1000)
	}
	// Negative ID at low VD for every defective device; none when fault-free.
	for _, v := range []*Figure3Variant{pgs, cg, pgd} {
		if v.MinID >= 0 {
			t.Errorf("%s: no negative-ID region", v.Label)
		}
	}
	if ff.MinID < -1e-12 {
		t.Errorf("fault-free device shows negative ID: %.3g", ff.MinID)
	}
	if !strings.Contains(r.Report(), "GOS on PGS") {
		t.Error("report missing curves")
	}
}

func TestFigure3TCADAgreement(t *testing.T) {
	ids := Figure3TCAD()
	ff := ids[device.GOSNone]
	if !(ids[device.GOSAtPGS] < ids[device.GOSAtCG] && ids[device.GOSAtCG] < ff && ff < ids[device.GOSAtPGD]) {
		t.Errorf("solver ID ordering disagrees with compact model: %+v", ids)
	}
}

func TestFigure4Claims(t *testing.T) {
	r := Figure4()
	ff := r.Case(device.GOSNone)
	cg := r.Case(device.GOSAtCG)
	pgd := r.Case(device.GOSAtPGD)
	pgs := r.Case(device.GOSAtPGS)
	if !(ff.Mean > cg.Mean && cg.Mean > pgd.Mean && pgd.Mean > pgs.Mean) {
		t.Fatalf("density ordering broken: %+v", r)
	}
	// Ratios against the paper's reported values within a x3 band.
	for _, c := range r.Cases {
		ours := c.Mean / ff.Mean
		paper := PaperDensity[c.GOS] / PaperDensity[device.GOSNone]
		if ours > 3*paper || ours < paper/3 {
			t.Errorf("%s: density ratio %.4g vs paper %.4g (outside x3 band)", c.Label, ours, paper)
		}
	}
}

func TestFigure5ShapesSmall(t *testing.T) {
	// A reduced sweep that still verifies every qualitative claim of
	// Figure 5; the full-resolution run lives in the benchmark harness.
	r, err := Figure5(Figure5Options{Points: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Panels) != 6 {
		t.Fatalf("panels = %d, want 6", len(r.Panels))
	}

	// (a) INV t1: the PGD-open delay rises far more than the PGS-open
	// delay (quasi-ballistic split, paper: 7x vs slight).
	inv := r.Panel(gates.INV, "t1")
	pgd, okD := inv.Curve(gates.PGDTerminal).MaxFunctionalDelay()
	pgs, okS := inv.Curve(gates.PGSTerminal).MaxFunctionalDelay()
	if !okD || !okS {
		t.Fatal("INV t1: no functional points")
	}
	ratioD := pgd / inv.NominalDelay
	ratioS := pgs / inv.NominalDelay
	if ratioD < 2 {
		t.Errorf("INV t1 PGD-open delay ratio %.2f, want >= 2 (paper ~7x)", ratioD)
	}
	if ratioD <= 1.5*ratioS {
		t.Errorf("INV t1: PGD rise (%.2f) should dominate PGS rise (%.2f)", ratioD, ratioS)
	}

	// (b) INV t1 leakage rises with Vcut on the output-side polarity gate
	// (the ambipolar mixed-carrier path; paper ~5x).
	_, hiLeak := inv.Curve(gates.PGDTerminal).LeakSpan()
	if hiLeak < 2*inv.NominalLeakage {
		t.Errorf("INV t1 leakage rise %.2fx, want >= 2x", hiLeak/inv.NominalLeakage)
	}

	// (c) XOR2 t1: function preserved across the entire rail-to-rail
	// sweep (redundant pass structure) and leakage spans decades.
	xor := r.Panel(gates.XOR2, "t1")
	for _, c := range xor.Curves {
		for _, p := range c.Points {
			if !p.Functional {
				t.Errorf("XOR2 t1 %v at Vcut=%.2f: function lost, contradicting the paper", c.Terminal, p.Vcut)
			}
		}
	}
	// Leakage varies over a wide span while the gate keeps functioning
	// (paper: 6 decades; our compact model reaches >= 1.5 decades — the
	// deviation is recorded in EXPERIMENTS.md).
	lo, hi := xor.Curve(gates.PGSTerminal).LeakSpan()
	if hi/lo < 30 {
		t.Errorf("XOR2 t1 leak span %.3g..%.3g (%.1fx), want >= 30x", lo, hi, hi/lo)
	}
	// Delay varies far less than in the SP gates: the redundant driver
	// keeps the transition alive (paper: near-flat).
	worst, ok := xor.Curve(gates.PGSTerminal).MaxFunctionalDelay()
	if !ok || worst > 8*xor.NominalDelay {
		t.Errorf("XOR2 t1 delay ratio %.2f, want <= 8 (paper: flat)", worst/xor.NominalDelay)
	}

	// (d) SP gates lose functionality beyond VHi (the SOF regime) —
	// at the window edge the INV/NAND pull-up must stop switching.
	nand := r.Panel(gates.NAND2, "t1")
	edgeFunctional := 0
	for _, c := range nand.Curves {
		last := c.Points[len(c.Points)-1]
		if last.Functional {
			edgeFunctional++
		}
	}
	if edgeFunctional == 2 {
		t.Error("NAND t1: both curves still functional at the window edge; SOF regime not reached")
	}
}

func TestNANDTwoPatternExperiment(t *testing.T) {
	r, err := NANDTwoPattern()
	if err != nil {
		t.Fatal(err)
	}
	if !r.AllDetected() {
		t.Errorf("paper's two-pattern set missed breaks: %+v", r.Detected)
	}
	if !strings.Contains(r.Report(), "v3=(00->11)") {
		t.Error("report incomplete")
	}
}

func TestChannelBreakAlgorithmExperiment(t *testing.T) {
	r, err := ChannelBreakAlgorithm(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no circuits")
	}
	for _, row := range r.Rows {
		if row.DPBreaks == 0 {
			t.Errorf("%s: no DP breaks enumerated", row.Circuit)
			continue
		}
		if row.Planned != row.DPBreaks {
			t.Errorf("%s: %d/%d plans generated", row.Circuit, row.Planned, row.DPBreaks)
		}
		if row.Verified != row.Planned {
			t.Errorf("%s: %d/%d verdicts verified", row.Circuit, row.Verified, row.Planned)
		}
	}
}

func TestAblationPGD(t *testing.T) {
	if testing.Short() {
		t.Skip("analog ablation in -short mode")
	}
	r, err := AblationPGD(4)
	if err != nil {
		t.Fatal(err)
	}
	// The quasi-ballistic softening keeps the PGD-open device usable over
	// a wider Vcut window (graceful 7x-style degradation); the ablated
	// model cuts off sooner.
	if r.AsymWindow <= r.SymWindow {
		t.Errorf("functional windows: soft=%.2f V sharp=%.2f V, want soft > sharp", r.AsymWindow, r.SymWindow)
	}
	grace := false
	for _, row := range r.Rows {
		if !math.IsNaN(row.AsymRatio) && row.AsymRatio >= 2 {
			grace = true
		}
	}
	if !grace {
		t.Error("soft model never shows a graceful (>=2x) delay rise before cut-off")
	}
}
