package experiments

import (
	"math"
	"strings"
	"testing"
)

func TestChannelBreakMaskingAnalog(t *testing.T) {
	if testing.Short() {
		t.Skip("analog masking study in -short mode")
	}
	r, err := ChannelBreakMasking()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Paper section V-C: the break never changes the function — the
		// pass-transistor redundancy masks it; only performance moves.
		if !row.FunctionOK {
			t.Errorf("break on %s changes the XOR2 function", row.Transistor)
		}
		// Leakage stays essentially unchanged (paper: <= 100%).
		if math.Abs(row.DeltaLeakPct) > 100 {
			t.Errorf("break on %s: dLeak = %.1f%%, want |x| <= 100%%", row.Transistor, row.DeltaLeakPct)
		}
		// Delay shifts but the gate keeps switching. The paper reports
		// <= 58%; our reconstruction's redundant driver is a degraded
		// pass device so the penalty is larger (recorded in
		// EXPERIMENTS.md) — bound it to stay a performance fault, not a
		// functional one.
		if row.DeltaDelayPct > 1000 {
			t.Errorf("break on %s: dDelay = %.1f%%, too large for a masked fault", row.Transistor, row.DeltaDelayPct)
		}
	}
	if !strings.Contains(r.Report(), "t3") {
		t.Error("report incomplete")
	}
}
