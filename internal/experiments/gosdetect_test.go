package experiments

import (
	"math"
	"strings"
	"testing"

	"cpsinw/internal/device"
	"cpsinw/internal/gates"
)

func TestGOSDetectInverter(t *testing.T) {
	if testing.Short() {
		t.Skip("analog GOS campaign in -short mode")
	}
	r, err := GOSDetect([]gates.Kind{gates.INV})
	if err != nil {
		t.Fatal(err)
	}
	// 2 transistors x 3 locations.
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(r.Rows))
	}
	// The paper's conclusion: GOS faults are detectable by performance
	// analysis. Every INV GOS must show a usable signature.
	if pct := r.DetectablePct(); pct < 100 {
		t.Errorf("detectable = %.0f%%, want 100%% on the inverter:\n%s", pct, r.Report())
	}
	// GOS at PGS/CG reduce drive: the delay must grow on the affected
	// transistor; GOS at PGD increases drive slightly.
	for _, row := range r.Rows {
		if row.Location == device.GOSAtPGS && row.DelayRatio < 1.0 {
			t.Errorf("%s/%s GOS@PGS: delay ratio %.2f, want >= 1", row.Gate, row.Transistor, row.DelayRatio)
		}
	}
	if !strings.Contains(r.Report(), "verdict") {
		t.Error("report incomplete")
	}
}

func TestBreakSeverityRegimes(t *testing.T) {
	if testing.Short() {
		t.Skip("analog severity sweep in -short mode")
	}
	r, err := BreakSeverity(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 8 {
		t.Fatalf("points = %d", len(r.Points))
	}
	// Both regimes must appear: small severities switch (delay fault),
	// severity 1 is stuck-open.
	if r.DelayFaultMax <= 0 {
		t.Error("no delay-fault regime observed")
	}
	if math.IsNaN(r.SOFMin) {
		t.Error("no stuck-open regime observed")
	}
	if !(r.DelayFaultMax < r.SOFMin) || r.SOFMin > 1 {
		t.Errorf("regime boundary inverted: delay<=%.2f sof>=%.2f", r.DelayFaultMax, r.SOFMin)
	}
	// Delay grows monotonically with severity inside the functional regime.
	last := 0.0
	for _, p := range r.Points {
		if !p.Functional {
			break
		}
		if p.DelayRatio < last-0.05 {
			t.Errorf("delay ratio not monotone at severity %.2f", p.Severity)
		}
		last = p.DelayRatio
	}
	// Severity 1 (full break) must be in the SOF regime.
	if lastPt := r.Points[len(r.Points)-1]; lastPt.Functional {
		t.Error("full break still switching")
	}
}
