package experiments

import (
	"fmt"
	"math"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/report"
	"cpsinw/internal/timing"
)

// DelayFaultRow records the circuit-level consequence of one partial
// nanowire break: the analog delay degradation of the affected cell, the
// resulting critical-path delay, and whether at-speed testing at the
// nominal clock would catch it.
type DelayFaultRow struct {
	Severity    float64
	CellFactor  float64 // analog delay multiplier of the broken cell
	Tmax        float64 // circuit critical delay with the defect (s)
	Violation   bool    // exceeds the at-speed clock (10% guard band)
	Transitions int     // transition tests covering the affected output
}

// DelayFaultResult is the paper's delay-fault story lifted to circuit
// level: sub-critical breaks that survive stuck-open testing still show
// up as at-speed timing failures.
type DelayFaultResult struct {
	Gate   string // the injected cell
	TmaxFF float64
	Clock  float64 // at-speed test clock (nominal Tmax + 10%)
	Rows   []DelayFaultRow
}

// DelayFault sweeps partial-break severities on a carry cell of the
// 4-bit CP ripple-carry adder. The cell delay factor comes from the
// analog BreakSeverity measurement; the circuit impact from static
// timing analysis; the at-speed detectability from the 10%-guard-band
// clock; and the vector support from the transition-fault ATPG.
func DelayFault(points int) (*DelayFaultResult, error) {
	if points < 3 {
		points = 5
	}
	c := bench.RippleCarryAdder(4)
	const victim = "fa0_c" // first carry cell: on the critical chain

	// Analog severity -> delay factor curve.
	sweep, err := BreakSeverity(points)
	if err != nil {
		return nil, err
	}

	base, err := timing.Analyse(c, timing.Options{})
	if err != nil {
		return nil, err
	}
	res := &DelayFaultResult{
		Gate:   victim,
		TmaxFF: base.Tmax,
		Clock:  base.Tmax * 1.1,
	}

	// Transition tests covering the victim's output.
	tests, _, _, err := timing.TransitionCampaign(c, atpg.Options{})
	if err != nil {
		return nil, err
	}
	victimOut := ""
	for _, g := range c.Gates {
		if g.Name == victim {
			victimOut = g.Output
		}
	}
	coveringTests := 0
	for _, t := range tests {
		if t.Fault.Net == victimOut {
			coveringTests++
		}
	}

	for _, p := range sweep.Points {
		factor := p.DelayRatio
		if !p.Functional || math.IsInf(factor, 1) {
			// Stuck-open regime: not a delay fault any more.
			res.Rows = append(res.Rows, DelayFaultRow{
				Severity: p.Severity, CellFactor: math.Inf(1),
				Tmax: math.Inf(1), Violation: true, Transitions: coveringTests,
			})
			continue
		}
		a, err := timing.Analyse(c, timing.Options{
			DelayFactor: map[string]float64{victim: factor},
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, DelayFaultRow{
			Severity:    p.Severity,
			CellFactor:  factor,
			Tmax:        a.Tmax,
			Violation:   a.Tmax > res.Clock,
			Transitions: coveringTests,
		})
	}
	return res, nil
}

// Report renders the sweep.
func (r *DelayFaultResult) Report() string {
	t := report.Table{
		Title: fmt.Sprintf("Extension: partial break on %s vs at-speed test (Tmax=%s, clock=%s)",
			r.Gate, report.FormatSI(r.TmaxFF), report.FormatSI(r.Clock)),
		Headers: []string{"severity", "cell delay x", "circuit Tmax", "at-speed fail", "transition tests"},
	}
	for _, row := range r.Rows {
		cf := "stuck-open"
		tm := "-"
		if !math.IsInf(row.CellFactor, 1) {
			cf = fmt.Sprintf("%.2f", row.CellFactor)
			tm = report.FormatSI(row.Tmax)
		}
		t.Add(fmt.Sprintf("%.2f", row.Severity), cf, tm, row.Violation, row.Transitions)
	}
	return t.String()
}
