package experiments

import (
	"fmt"
	"math"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/circuit"
	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/iddq"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
	"cpsinw/internal/spice"
)

// MaskingRow records the analog impact of one channel break on the DP
// XOR2 (FO4 loaded): the paper's section V-C masking study.
type MaskingRow struct {
	Transistor    string
	FunctionOK    bool    // all four input states produce the correct output level
	DeltaLeakPct  float64 // (faulty - nominal) / nominal worst static current
	DeltaDelayPct float64 // worst-case transition delay change
}

// MaskingResult reproduces the section V-C numbers: channel break on the
// 2-input XOR only shifts performance (paper: delta-leakage <= 100%,
// delta-delay <= 58%) and never the function.
type MaskingResult struct {
	Rows []MaskingRow
}

// ChannelBreakMasking measures the four channel breaks of XOR2 at FO4.
func ChannelBreakMasking() (*MaskingResult, error) {
	spec := gates.Get(gates.XOR2)
	m := device.Default()
	vdd := m.P.VDD

	nomLeak, nomDelayHL, nomDelayLH, _, err := xorAnalogProfile(nil)
	if err != nil {
		return nil, err
	}
	nomWorst := math.Max(nomDelayHL, nomDelayLH)

	res := &MaskingResult{}
	for _, tr := range spec.Transistors {
		leak, dHL, dLH, levels, err := xorAnalogProfile(map[string]device.Defects{
			tr.Name: {BreakSeverity: 1},
		})
		if err != nil {
			return nil, err
		}
		functionOK := true
		for v, lvl := range levels {
			want := spec.Eval(spec.InputVector(v))
			if want && lvl < 0.55*vdd || !want && lvl > 0.45*vdd {
				functionOK = false
			}
		}
		worst := math.Max(dHL, dLH)
		res.Rows = append(res.Rows, MaskingRow{
			Transistor:    tr.Name,
			FunctionOK:    functionOK,
			DeltaLeakPct:  100 * (leak - nomLeak) / nomLeak,
			DeltaDelayPct: 100 * (worst - nomWorst) / nomWorst,
		})
	}
	return res, nil
}

// xorAnalogProfile measures the XOR2 (FO4) statically and dynamically:
// worst leakage, both transition delays at B=1, and the DC output level
// of every input state.
func xorAnalogProfile(defects map[string]device.Defects) (leak, dHL, dLH float64, levels []float64, err error) {
	spec := gates.Get(gates.XOR2)
	m := device.Default()
	vdd := m.P.VDD

	n, err := gates.BuildAnalog(spec, gates.BuildOptions{Defects: defects})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	ms, err := iddq.MeasureStates(n, []string{"VIN0", "VIN1"}, vdd)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	leak = iddq.Worst(ms).Current

	levels = make([]float64, 4)
	for v := 0; v < 4; v++ {
		w := make([]circuit.Waveform, 2)
		for i := 0; i < 2; i++ {
			if v>>uint(i)&1 == 1 {
				w[i] = circuit.DC(vdd)
			} else {
				w[i] = circuit.DC(0)
			}
		}
		nl, err := gates.BuildAnalog(spec, gates.BuildOptions{Inputs: w, Defects: defects})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		eng, err := spice.NewEngine(nl, spice.Options{})
		if err != nil {
			return 0, 0, 0, nil, err
		}
		sol, err := eng.DC(0)
		if err != nil {
			return 0, 0, 0, nil, err
		}
		levels[v] = sol.V(gates.NodeOut)
	}

	pulse := circuit.Pulse{V0: 0, V1: vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12, Width: 600e-12, Period: 1.4e-9}
	nt, err := gates.BuildAnalog(spec, gates.BuildOptions{
		Inputs:  []circuit.Waveform{pulse, circuit.DC(vdd)},
		Defects: defects,
	})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	eng, err := spice.NewEngine(nt, spice.Options{})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	wf, err := eng.Tran(2e-12, 1.4e-9, []string{gates.InputNode(0), gates.NodeOut})
	if err != nil {
		return 0, 0, 0, nil, err
	}
	dHL, errHL := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, true, false, 0)
	dLH, errLH := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, false, true, 500e-12)
	if errHL != nil || errLH != nil {
		return 0, 0, 0, nil, fmt.Errorf("xor transition missing (break not masked analogically): HL=%v LH=%v", errHL, errLH)
	}
	return leak, dHL, dLH, levels, nil
}

// Report renders the masking table.
func (r *MaskingResult) Report() string {
	t := report.Table{
		Title:   "Section V-C: channel-break masking in the DP XOR2 (FO4)",
		Headers: []string{"Broken transistor", "Function preserved", "dLeakage [%]", "dDelay [%]"},
	}
	for _, row := range r.Rows {
		t.Add(row.Transistor, row.FunctionOK,
			fmt.Sprintf("%+.1f", row.DeltaLeakPct), fmt.Sprintf("%+.1f", row.DeltaDelayPct))
	}
	return t.String()
}

// NANDTwoPatternResult verifies the paper's NAND two-pattern stuck-open
// set: v1=(11->01), v2=(11->10), v3=(00->11).
type NANDTwoPatternResult struct {
	Detected map[string]int // transistor -> detecting pair index (-1 if missed)
}

// NANDTwoPattern runs the paper's three two-pattern tests against every
// channel break of a TIG NAND2.
func NANDTwoPattern() (*NANDTwoPatternResult, error) {
	c, err := logic.NewCircuit("nand", []string{"a", "b"}, []string{"y"}, []logic.GateInst{
		{Name: "g0", Kind: gates.NAND2, Fanin: []string{"a", "b"}, Output: "y"},
	})
	if err != nil {
		return nil, err
	}
	mk := func(a, b int) faultsim.Pattern {
		return faultsim.Pattern{"a": logic.FromBool(a == 1), "b": logic.FromBool(b == 1)}
	}
	pairs := [][2]faultsim.Pattern{
		{mk(1, 1), mk(0, 1)},
		{mk(1, 1), mk(1, 0)},
		{mk(0, 0), mk(1, 1)},
	}
	var faults []core.Fault
	for _, tr := range gates.Get(gates.NAND2).Transistors {
		faults = append(faults, core.Fault{Kind: core.FaultChannelBreak, Gate: "g0", Transistor: tr.Name})
	}
	ds, err := faultsim.New(c).RunTwoPattern(faults, pairs)
	if err != nil {
		return nil, err
	}
	res := &NANDTwoPatternResult{Detected: map[string]int{}}
	for _, d := range ds {
		idx := -1
		if d.Detected() {
			idx = d.Pattern
		}
		res.Detected[d.Fault.Transistor] = idx
	}
	return res, nil
}

// AllDetected reports whether every NAND channel break was caught.
func (r *NANDTwoPatternResult) AllDetected() bool {
	for _, idx := range r.Detected {
		if idx < 0 {
			return false
		}
	}
	return true
}

// Report renders the detection table.
func (r *NANDTwoPatternResult) Report() string {
	t := report.Table{
		Title:   "Section V-C: NAND two-pattern set v1=(11->01) v2=(11->10) v3=(00->11)",
		Headers: []string{"Channel break", "Detecting pair"},
	}
	names := []string{"v1=(11->01)", "v2=(11->10)", "v3=(00->11)"}
	var keys []string
	for k := range r.Detected {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		idx := r.Detected[k]
		label := "NOT DETECTED"
		if idx >= 0 {
			label = names[idx]
		}
		t.Add(k, label)
	}
	return t.String()
}

// CBAlgorithmRow summarises the paper's channel-break procedure on one
// benchmark circuit.
type CBAlgorithmRow struct {
	Circuit   string
	DPBreaks  int // channel-break faults inside DP gates
	Planned   int // plans generated
	Verified  int // plans whose verdict separates healthy from broken
	IDDQPlans int
}

// CBAlgorithmResult validates the new test algorithm across benchmarks.
type CBAlgorithmResult struct {
	Rows []CBAlgorithmRow
}

// ChannelBreakAlgorithm runs the paper's procedure over the DP gates of
// the benchmark suite and verifies every plan by dual simulation.
func ChannelBreakAlgorithm(circuits map[string]*logic.Circuit) (*CBAlgorithmResult, error) {
	if circuits == nil {
		circuits = map[string]*logic.Circuit{
			"fa_cp":   bench.FullAdderCP(),
			"parity8": bench.ParityTree(8),
			"tmr":     bench.TMRVoter(),
			"rca4":    bench.RippleCarryAdder(4),
		}
	}
	res := &CBAlgorithmResult{}
	var names []string
	for name := range circuits {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := circuits[name]
		row := CBAlgorithmRow{Circuit: name}
		for _, g := range c.Gates {
			spec := gates.Get(g.Kind)
			if spec.Class != gates.DynamicPolarity {
				continue
			}
			for _, tr := range spec.Transistors {
				row.DPBreaks++
				f := core.Fault{Kind: core.FaultChannelBreak, Gate: g.Name, Transistor: tr.Name}
				plan, ok := atpg.GenerateChannelBreakDP(c, f, atpg.Options{})
				if !ok {
					continue
				}
				row.Planned++
				if plan.Observe == faultsim.ByIDDQ {
					row.IDDQPlans++
				}
				healthy, broken, err := atpg.VerifyChannelBreakPlan(c, plan)
				if err != nil {
					return nil, err
				}
				if healthy && !broken {
					row.Verified++
				}
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Report renders the campaign table.
func (r *CBAlgorithmResult) Report() string {
	t := report.Table{
		Title:   "Section V-C: channel-break detection procedure on DP gates",
		Headers: []string{"Circuit", "DP channel breaks", "Plans", "Verified verdicts", "IDDQ-observed"},
	}
	for _, row := range r.Rows {
		t.Add(row.Circuit, row.DPBreaks, row.Planned, row.Verified, row.IDDQPlans)
	}
	return t.String()
}
