// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the extension studies listed in DESIGN.md. Each
// experiment returns a structured result with a Report method producing
// the paper-style text rendering; the quantitative claims asserted in
// tests and recorded in EXPERIMENTS.md come from these results.
package experiments

import (
	"fmt"
	"strings"

	"cpsinw/internal/core"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/iddq"
	"cpsinw/internal/report"
)

// TableIResult reproduces Table I: fabrication process steps, their
// possible defects and the covering fault models.
type TableIResult struct {
	Steps []core.ProcessStep
}

// TableI builds the Table I reproduction.
func TableI() *TableIResult {
	return &TableIResult{Steps: core.FabricationProcess()}
}

// Report renders the paper-style table.
func (r *TableIResult) Report() string {
	t := report.Table{
		Title:   "Table I: TIG-SiNWFET fabrication process steps and related defect model",
		Headers: []string{"Step", "Process", "Outcome", "Possible defects", "Fault models"},
	}
	for _, s := range r.Steps {
		models := make([]string, len(s.Models))
		for i, m := range s.Models {
			models[i] = m.String()
		}
		t.Add(s.Index, s.Name, s.Outcome, strings.Join(s.Defects, "; "), strings.Join(models, ", "))
	}
	return t.String()
}

// TableIIResult reproduces Table II: the device parameters.
type TableIIResult struct {
	Params device.Params
}

// TableII builds the Table II reproduction.
func TableII() *TableIIResult {
	return &TableIIResult{Params: device.DefaultParams()}
}

// Report renders the parameter table.
func (r *TableIIResult) Report() string {
	p := r.Params
	t := report.Table{
		Title:   "Table II: TIG-SiNWFET structural and physical parameters",
		Headers: []string{"Device parameter", "Value"},
	}
	t.Add("Length of Control Gate (LCG)", fmt.Sprintf("%gnm", p.LCG))
	t.Add("Length of Polarity Gates (LPGS, LPGD)", fmt.Sprintf("%gnm, %gnm", p.LPGS, p.LPGD))
	t.Add("Length of Spacer (LCP)", fmt.Sprintf("%gnm", p.LSpacer))
	t.Add("Channel Doping Concentration", fmt.Sprintf("%.0e cm^-3", p.NChannel))
	t.Add("Schottky Barrier Height", fmt.Sprintf("%geV", p.PhiB))
	t.Add("Oxide Thickness (TOx)", fmt.Sprintf("%gnm", p.TOx))
	t.Add("Radius of NanoWire (RNW)", fmt.Sprintf("%gnm", p.RNW))
	t.Add("Supply voltage", fmt.Sprintf("%gV", p.VDD))
	return t.String()
}

// TableIIIRow is one row of the Table III reproduction: the detection of
// one polarity fault on one transistor of the 2-input XOR.
type TableIIIRow struct {
	FaultKind  core.FaultKind
	Transistor string
	Net        gates.Net
	// Vector is the detecting input vector (a then b; -1 when undetectable).
	Vector int
	// LeakDetect / OutputDetect mirror the paper's last two columns.
	LeakDetect   bool
	OutputDetect bool
	// AnalogLeakRatio is the measured IDDQ ratio faulty/golden at the
	// detecting vector (0 when analog measurement was skipped).
	AnalogLeakRatio float64
}

// TableIIIResult reproduces Table III: polarity-defect detection for the
// transistors of the 2-input TIG-SiNWFET XOR.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// TableIII runs the exhaustive polarity-fault injection campaign on the
// XOR2 gate at switch level and, when analog is true, confirms the
// leakage signature with DC analog simulation of the bridged gate.
func TableIII(analog bool) (*TableIIIResult, error) {
	spec := gates.Get(gates.XOR2)
	res := &TableIIIResult{}

	var golden []iddq.Measurement
	if analog {
		n, err := gates.BuildAnalog(spec, gates.BuildOptions{})
		if err != nil {
			return nil, err
		}
		golden, err = iddq.MeasureStates(n, []string{"VIN0", "VIN1"}, device.DefaultParams().VDD)
		if err != nil {
			return nil, err
		}
	}

	for _, kind := range []core.FaultKind{core.FaultStuckAtN, core.FaultStuckAtP} {
		tf, _ := kind.TFault()
		for _, tr := range spec.Transistors {
			beh, err := core.GateBehavior(gates.XOR2, tr.Name, tf)
			if err != nil {
				return nil, err
			}
			row := TableIIIRow{FaultKind: kind, Transistor: tr.Name, Net: tr.Net, Vector: -1}
			if vs := beh.OutputDetecting(); len(vs) > 0 {
				row.Vector = vs[0]
				row.OutputDetect = true
				// Output-detecting vectors are leaky too (contention).
				for _, lv := range beh.LeakDetecting() {
					if lv == vs[0] {
						row.LeakDetect = true
					}
				}
			} else if vs := beh.LeakDetecting(); len(vs) > 0 {
				row.Vector = vs[0]
				row.LeakDetect = true
			}

			if analog && row.Vector >= 0 {
				n, err := gates.BuildAnalog(spec, gates.BuildOptions{
					Bridges: []gates.PGBridge{{Transistor: tr.Name, ToVdd: kind == core.FaultStuckAtN}},
				})
				if err != nil {
					return nil, err
				}
				ms, err := iddq.MeasureStates(n, []string{"VIN0", "VIN1"}, device.DefaultParams().VDD)
				if err != nil {
					return nil, err
				}
				cls := iddq.Classify(golden, ms, 10)
				row.AnalogLeakRatio = cls.Ratio
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Report renders the Table III reproduction.
func (r *TableIIIResult) Report() string {
	t := report.Table{
		Title: "Table III: detection of polarity defects in the 2-input TIG-SiNWFET XOR",
		Headers: []string{"Fault type", "Location", "Net", "Input for detection",
			"Leakage current", "Output voltage", "Analog IDDQ ratio"},
	}
	yn := func(b bool) string {
		if b {
			return "Yes"
		}
		return "No"
	}
	for _, row := range r.Rows {
		vec := "-"
		if row.Vector >= 0 {
			vec = fmt.Sprintf("%d%d", row.Vector&1, row.Vector>>1&1) // a then b
		}
		ratio := "-"
		if row.AnalogLeakRatio > 0 {
			ratio = fmt.Sprintf("%.1e", row.AnalogLeakRatio)
		}
		t.Add(row.FaultKind.String(), row.Transistor, row.Net.String(),
			vec, yn(row.LeakDetect), yn(row.OutputDetect), ratio)
	}
	return t.String()
}
