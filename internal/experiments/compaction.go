package experiments

import (
	"fmt"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

// CompactionRow summarises dynamic pattern compaction on one circuit.
type CompactionRow struct {
	Circuit    string
	Faults     int
	Detected   int
	Before     int // generated voltage patterns
	After      int // coverage-preserving compaction
	AfterRes   int // resolution-preserving compaction
	Classes    int // signature classes under the full set
	ClassesRes int // classes after resolution-preserving compaction
}

// CompactionResult is the dynamic-compaction campaign.
type CompactionResult struct {
	Rows []CompactionRow
}

// Compaction measures dictionary-driven dynamic test compaction: the
// ATPG campaign's voltage patterns are captured once into per-fault
// detection bitsets, then reverse-order subsumption drops every pattern
// the rest of the set already covers — with and without the constraint
// that the surviving set keeps the full diagnostic resolution. Coverage
// is re-simulated on the compacted set and must match the full set
// bit for bit.
func Compaction(circuits map[string]*logic.Circuit) (*CompactionResult, error) {
	if circuits == nil {
		c17, err := bench.Get("c17")
		if err != nil {
			return nil, err
		}
		mult3, err := bench.Get("mult3")
		if err != nil {
			return nil, err
		}
		circuits = map[string]*logic.Circuit{"c17": c17, "mult3": mult3}
	}
	var names []string
	for n := range circuits {
		names = append(names, n)
	}
	sort.Strings(names)

	res := &CompactionResult{}
	for _, name := range names {
		c := circuits[name]
		faults := core.Universe(c, core.ClassicalOnly())
		gen := atpg.Generate(c, faults, atpg.Options{})
		patterns := gen.Set.Patterns
		if len(patterns) == 0 {
			return nil, fmt.Errorf("compaction: %s generated no patterns", name)
		}

		sim := faultsim.New(c)
		capture := faultsim.NewSignatureCapture(len(faults), len(patterns))
		sim.Signatures = capture
		full := sim.RunStuckAt(faults, patterns)
		sim.Signatures = nil
		sigs := make([]dict.Bitset, len(faults))
		for i := range faults {
			sigs[i] = dict.FromWords(len(patterns), capture.Out(i))
		}

		plain := atpg.CompactDynamic(sigs, len(patterns), atpg.CompactOptions{})
		keepRes := atpg.CompactDynamic(sigs, len(patterns), atpg.CompactOptions{PreserveResolution: true})

		// Re-simulate the compacted set: coverage must be bit-identical.
		kept := make([]faultsim.Pattern, 0, len(plain.Keep))
		for _, i := range plain.Keep {
			kept = append(kept, patterns[i])
		}
		before := faultsim.Summarise(full).Detected
		after := faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, kept)).Detected
		if before != after {
			return nil, fmt.Errorf("compaction: %s coverage changed %d -> %d", name, before, after)
		}
		if keepRes.ClassesAfter != keepRes.ClassesBefore {
			return nil, fmt.Errorf("compaction: %s resolution changed %d -> %d classes",
				name, keepRes.ClassesBefore, keepRes.ClassesAfter)
		}

		res.Rows = append(res.Rows, CompactionRow{
			Circuit:    name,
			Faults:     len(faults),
			Detected:   before,
			Before:     len(patterns),
			After:      len(plain.Keep),
			AfterRes:   len(keepRes.Keep),
			Classes:    plain.ClassesBefore,
			ClassesRes: keepRes.ClassesAfter,
		})
	}
	return res, nil
}

// Report renders the compaction table.
func (r *CompactionResult) Report() string {
	t := report.Table{
		Title:   "Extension: dictionary-driven dynamic test compaction",
		Headers: []string{"Circuit", "Faults", "Detected", "Patterns", "Compacted", "Res-preserving", "Signature classes"},
	}
	for _, row := range r.Rows {
		t.Add(row.Circuit, row.Faults, row.Detected, row.Before, row.After, row.AfterRes, row.Classes)
	}
	return t.String()
}
