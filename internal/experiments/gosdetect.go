package experiments

import (
	"fmt"
	"math"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/iddq"
	"cpsinw/internal/report"
	"cpsinw/internal/spice"
)

// GOSDetectRow is the gate-level signature of one gate-oxide short: the
// paper's conclusion states that "the gate oxide short and floats on the
// polarity gates are detectable by analyzing the performance parameters
// like delay and leakage" — this experiment quantifies that for every
// GOS location on every transistor of a gate.
type GOSDetectRow struct {
	Gate       gates.Kind
	Transistor string
	Location   device.GOSLocation

	DelayRatio float64 // worst transition delay, faulty / nominal
	LeakRatio  float64 // worst static current, faulty / nominal
	FunctionOK bool
	ByDelay    bool // delay shift beyond the threshold (20%)
	ByIDDQ     bool // leak shift beyond the threshold (3x)
	Detectable bool
}

// GOSDetectResult is the campaign over a set of gates.
type GOSDetectResult struct {
	Rows []GOSDetectRow
}

// GOSDetect measures the delay/leakage signature of every GOS fault in
// the given gates (INV and XOR2 by default).
func GOSDetect(kinds []gates.Kind) (*GOSDetectResult, error) {
	if len(kinds) == 0 {
		kinds = []gates.Kind{gates.INV, gates.XOR2}
	}
	res := &GOSDetectResult{}
	for _, kind := range kinds {
		spec := gates.Get(kind)
		nomDelay, nomLeak, _, err := gateProfile(kind, nil)
		if err != nil {
			return nil, fmt.Errorf("gosdetect %v nominal: %w", kind, err)
		}
		for _, tr := range spec.Transistors {
			for _, loc := range []device.GOSLocation{device.GOSAtPGS, device.GOSAtCG, device.GOSAtPGD} {
				delay, leak, fnOK, err := gateProfile(kind, map[string]device.Defects{
					tr.Name: {GOS: loc},
				})
				if err != nil {
					return nil, fmt.Errorf("gosdetect %v/%s/%v: %w", kind, tr.Name, loc, err)
				}
				row := GOSDetectRow{
					Gate:       kind,
					Transistor: tr.Name,
					Location:   loc,
					DelayRatio: delay / nomDelay,
					LeakRatio:  leak / nomLeak,
					FunctionOK: fnOK,
				}
				row.ByDelay = math.Abs(row.DelayRatio-1) > 0.20
				row.ByIDDQ = row.LeakRatio > 3 || row.LeakRatio < 1.0/3
				row.Detectable = row.ByDelay || row.ByIDDQ || !fnOK
				res.Rows = append(res.Rows, row)
			}
		}
	}
	return res, nil
}

// DetectablePct returns the fraction of GOS faults with a usable
// signature.
func (r *GOSDetectResult) DetectablePct() float64 {
	if len(r.Rows) == 0 {
		return 0
	}
	n := 0
	for _, row := range r.Rows {
		if row.Detectable {
			n++
		}
	}
	return 100 * float64(n) / float64(len(r.Rows))
}

// Report renders the campaign table.
func (r *GOSDetectResult) Report() string {
	t := report.Table{
		Title:   "Extension: gate-level GOS detectability by delay and leakage",
		Headers: []string{"Gate", "Transistor", "GOS", "delay ratio", "leak ratio", "function", "verdict"},
	}
	for _, row := range r.Rows {
		verdict := "undetected"
		switch {
		case !row.FunctionOK:
			verdict = "functional failure"
		case row.ByDelay && row.ByIDDQ:
			verdict = "delay + IDDQ"
		case row.ByDelay:
			verdict = "delay"
		case row.ByIDDQ:
			verdict = "IDDQ"
		}
		t.Add(row.Gate.String(), row.Transistor, row.Location.String(),
			fmt.Sprintf("%.2f", row.DelayRatio), fmt.Sprintf("%.2f", row.LeakRatio),
			row.FunctionOK, verdict)
	}
	return t.String()
}

// gateProfile measures a gate's worst transition delay, worst static
// leak, and functional correctness under the injected defects, using the
// side-inputs-at-1 sensitisation shared with Figure 5.
func gateProfile(kind gates.Kind, defects map[string]device.Defects) (worstDelay, worstLeak float64, functionOK bool, err error) {
	spec := gates.Get(kind)
	m := device.Default()
	vdd := m.P.VDD

	// Leak across all states.
	var sourceNames []string
	for i := 0; i < spec.NIn; i++ {
		sourceNames = append(sourceNames, fmt.Sprintf("VIN%d", i))
	}
	n, err := gates.BuildAnalog(spec, gates.BuildOptions{Defects: defects})
	if err != nil {
		return 0, 0, false, err
	}
	ms, err := iddq.MeasureStates(n, sourceNames, vdd)
	if err != nil {
		return 0, 0, false, err
	}
	worstLeak = iddq.Worst(ms).Current

	// Function across all states.
	functionOK = true
	for v := 0; v < 1<<spec.NIn; v++ {
		waves := make([]circuit.Waveform, spec.NIn)
		for i := range waves {
			if v>>uint(i)&1 == 1 {
				waves[i] = circuit.DC(vdd)
			} else {
				waves[i] = circuit.DC(0)
			}
		}
		nl, err := gates.BuildAnalog(spec, gates.BuildOptions{Inputs: waves, Defects: defects})
		if err != nil {
			return 0, 0, false, err
		}
		eng, err := spice.NewEngine(nl, spice.Options{})
		if err != nil {
			return 0, 0, false, err
		}
		sol, err := eng.DC(0)
		if err != nil {
			return 0, 0, false, err
		}
		level := sol.V(gates.NodeOut)
		want := spec.Eval(spec.InputVector(v))
		if want && level < 0.55*vdd || !want && level > 0.45*vdd {
			functionOK = false
		}
	}

	// Worst transition delay with input 0 pulsing, side inputs at 1.
	pulse := circuit.Pulse{V0: 0, V1: vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12, Width: 600e-12, Period: 1.4e-9}
	waves := make([]circuit.Waveform, spec.NIn)
	waves[0] = pulse
	for i := 1; i < spec.NIn; i++ {
		waves[i] = circuit.DC(vdd)
	}
	nt, err := gates.BuildAnalog(spec, gates.BuildOptions{Inputs: waves, Defects: defects})
	if err != nil {
		return 0, 0, false, err
	}
	eng, err := spice.NewEngine(nt, spice.Options{})
	if err != nil {
		return 0, 0, false, err
	}
	wf, err := eng.Tran(2e-12, 1.4e-9, []string{gates.InputNode(0), gates.NodeOut})
	if err != nil {
		return 0, 0, false, err
	}
	dHL, errHL := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, true, false, 0)
	dLH, errLH := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, false, true, 500e-12)
	if errHL != nil || errLH != nil {
		functionOK = false
		worstDelay = math.Inf(1)
		return worstDelay, worstLeak, functionOK, nil
	}
	worstDelay = math.Max(dHL, dLH)
	return worstDelay, worstLeak, functionOK, nil
}

// BreakSeverityPoint is one sample of the partial-break study.
type BreakSeverityPoint struct {
	Severity   float64
	DelayRatio float64 // inverter tpHL faulty/nominal; +Inf when non-switching
	Functional bool
}

// BreakSeverityResult maps break severity to its fault class: small
// severities are pure delay faults, large ones collapse into stuck-open
// behaviour (paper section IV-A: the defect "can drastically limit the
// driving current of the device or lead to SOF").
type BreakSeverityResult struct {
	Points []BreakSeverityPoint
	// DelayFaultMax: largest severity that still switches (delay-fault
	// regime); SOFMin: smallest observed severity behaving as stuck-open.
	DelayFaultMax, SOFMin float64
}

// BreakSeverity sweeps the pull-down break severity of an inverter.
func BreakSeverity(points int) (*BreakSeverityResult, error) {
	if points < 4 {
		points = 8
	}
	m := device.Default()
	vdd := m.P.VDD
	pulse := circuit.Pulse{V0: 0, V1: vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12, Width: 600e-12, Period: 1.4e-9}

	measure := func(severity float64) (float64, bool, error) {
		defects := map[string]device.Defects{}
		if severity > 0 {
			defects["t3"] = device.Defects{BreakSeverity: severity}
		}
		n, err := gates.BuildAnalog(gates.Get(gates.INV), gates.BuildOptions{
			Inputs:  []circuit.Waveform{pulse},
			Defects: defects,
		})
		if err != nil {
			return 0, false, err
		}
		eng, err := spice.NewEngine(n, spice.Options{})
		if err != nil {
			return 0, false, err
		}
		wf, err := eng.Tran(2e-12, 1.4e-9, []string{gates.InputNode(0), gates.NodeOut})
		if err != nil {
			return 0, false, err
		}
		d, derr := spice.PropDelay(wf, gates.InputNode(0), gates.NodeOut, vdd, true, false, 0)
		if derr != nil {
			return math.Inf(1), false, nil
		}
		return d, true, nil
	}

	nominal, ok, err := measure(0)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("breakseverity: nominal inverter does not switch")
	}

	res := &BreakSeverityResult{SOFMin: math.NaN()}
	// Geometric spacing: the conductance collapse is exponential in the
	// severity, so the delay-fault regime lives at small severities.
	const sevLo = 0.005
	for i := 0; i < points; i++ {
		sev := sevLo * math.Pow(1/sevLo, float64(i)/float64(points-1))
		d, functional, err := measure(sev)
		if err != nil {
			return nil, err
		}
		pt := BreakSeverityPoint{Severity: sev, Functional: functional, DelayRatio: d / nominal}
		if functional {
			res.DelayFaultMax = sev
		} else if math.IsNaN(res.SOFMin) {
			res.SOFMin = sev
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

// Report renders the severity table.
func (r *BreakSeverityResult) Report() string {
	t := report.Table{
		Title:   "Extension: partial nanowire break — delay fault vs stuck-open regimes (INV t3)",
		Headers: []string{"severity", "delay ratio", "regime"},
	}
	for _, p := range r.Points {
		regime := "delay fault"
		ratio := fmt.Sprintf("%.2f", p.DelayRatio)
		if !p.Functional {
			regime = "stuck-open"
			ratio = "-"
		}
		t.Add(fmt.Sprintf("%.2f", p.Severity), ratio, regime)
	}
	return t.String()
}
