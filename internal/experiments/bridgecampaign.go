package experiments

import (
	"fmt"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

// BridgeRow summarises interconnect-bridge fault simulation on one
// circuit (Table I, step 5: metal-layer bridges).
type BridgeRow struct {
	Circuit  string
	Bridges  int
	Detected int
	Vectors  int
}

// BridgeCampaignResult runs layout-neighbour bridges against the
// stuck-at test sets of the benchmark suite.
type BridgeCampaignResult struct {
	Rows []BridgeRow
}

// BridgeCampaign enumerates neighbour bridges (wired-AND and wired-OR)
// for each benchmark and fault-simulates them against the circuit's
// compacted stuck-at test set — measuring how much interconnect-bridge
// coverage the classical vectors provide for free.
func BridgeCampaign(circuits map[string]*logic.Circuit) (*BridgeCampaignResult, error) {
	if circuits == nil {
		circuits = map[string]*logic.Circuit{
			"c17":     bench.C17(),
			"rca4":    bench.RippleCarryAdder(4),
			"parity8": bench.ParityTree(8),
			"tmr":     bench.TMRVoter(),
		}
	}
	var names []string
	for n := range circuits {
		names = append(names, n)
	}
	sort.Strings(names)

	res := &BridgeCampaignResult{}
	for _, name := range names {
		c := circuits[name]
		saFaults := core.Universe(c, core.ClassicalOnly())
		var pats []faultsim.Pattern
		for _, f := range saFaults {
			if p, ok := atpg.GenerateStuckAt(c, f, atpg.Options{}); ok {
				pats = append(pats, p)
			}
		}
		pats = atpg.CompactPatterns(c, saFaults, pats)

		bridges := core.NeighborBridges(c, 2)
		ds := faultsim.New(c).RunBridges(bridges, pats)
		cov := faultsim.BridgeCoverage(ds)
		res.Rows = append(res.Rows, BridgeRow{
			Circuit:  name,
			Bridges:  cov.Total,
			Detected: cov.Detected,
			Vectors:  len(pats),
		})
	}
	return res, nil
}

// Report renders the campaign.
func (r *BridgeCampaignResult) Report() string {
	t := report.Table{
		Title:   "Extension: interconnect bridges vs the stuck-at test set",
		Headers: []string{"Circuit", "Neighbour bridges", "Detected", "Coverage", "Vectors"},
	}
	for _, row := range r.Rows {
		pct := 0.0
		if row.Bridges > 0 {
			pct = 100 * float64(row.Detected) / float64(row.Bridges)
		}
		t.Add(row.Circuit, row.Bridges, row.Detected, fmt.Sprintf("%.1f%%", pct), row.Vectors)
	}
	return t.String()
}
