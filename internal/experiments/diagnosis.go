package experiments

import (
	"fmt"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/diagnosis"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

// DiagnosisRow summarises the fault-dictionary diagnosis of one circuit.
type DiagnosisRow struct {
	Circuit    string
	Faults     int     // detected faults in the dictionary
	Classes    int     // distinct failure signatures
	UniquePct  float64 // faults uniquely identified by their signature
	Escapes    int     // faults the program misses (untestable)
	StepsTotal int
}

// DiagnosisResult is the diagnosis-resolution campaign.
type DiagnosisResult struct {
	Rows []DiagnosisRow
}

// Diagnosis builds a fault dictionary per benchmark (extended-model
// program, all covered faults) and reports the diagnostic resolution —
// the closing step of the paper's inductive fault analysis loop.
func Diagnosis(circuits map[string]*logic.Circuit) (*DiagnosisResult, error) {
	if circuits == nil {
		circuits = map[string]*logic.Circuit{
			"c17":   bench.C17(),
			"fa_cp": bench.FullAdderCP(),
			"rca4":  bench.RippleCarryAdder(4),
			"tmr":   bench.TMRVoter(),
		}
	}
	var names []string
	for n := range circuits {
		names = append(names, n)
	}
	sort.Strings(names)

	res := &DiagnosisResult{}
	for _, name := range names {
		c := circuits[name]
		universe := core.Universe(c, core.UniverseOptions{
			LineStuckAt: true, ChannelBreak: true, Polarity: true,
		})
		gen := atpg.Generate(c, universe, atpg.Options{})
		program := atpg.BuildProgram(c, gen)
		dict := diagnosis.Build(c, program, universe)
		r := dict.Resolve()
		unique := 0.0
		if r.Faults > 0 {
			unique = 100 * float64(r.UniquelyDiagnosable) / float64(r.Faults)
		}
		res.Rows = append(res.Rows, DiagnosisRow{
			Circuit:    name,
			Faults:     r.Faults,
			Classes:    r.Classes,
			UniquePct:  unique,
			Escapes:    len(dict.Escapes()),
			StepsTotal: len(program.Steps),
		})
	}
	return res, nil
}

// Report renders the resolution table.
func (r *DiagnosisResult) Report() string {
	t := report.Table{
		Title:   "Extension: fault-dictionary diagnosis resolution",
		Headers: []string{"Circuit", "Program steps", "Detected faults", "Signature classes", "Unique diagnosis", "Escapes"},
	}
	for _, row := range r.Rows {
		t.Add(row.Circuit, row.StepsTotal, row.Faults, row.Classes,
			fmt.Sprintf("%.1f%%", row.UniquePct), row.Escapes)
	}
	return t.String()
}
