package timing

import (
	"strings"
	"testing"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// fastCells returns a synthetic cell library so STA tests do not need the
// analog simulator.
func fastCells() map[gates.Kind]CellDelay {
	out := map[gates.Kind]CellDelay{}
	for i, k := range gates.Kinds() {
		d := 10e-12 + float64(i)*1e-12
		out[k] = CellDelay{Kind: k, TPLH: d, TPHL: d * 0.8}
	}
	return out
}

func TestCharacteriseCellINV(t *testing.T) {
	if testing.Short() {
		t.Skip("analog characterisation in -short mode")
	}
	d, err := CharacteriseCell(gates.INV)
	if err != nil {
		t.Fatal(err)
	}
	if d.TPLH <= 0 || d.TPHL <= 0 || d.TPLH > 500e-12 || d.TPHL > 500e-12 {
		t.Errorf("INV delays out of range: %+v", d)
	}
	// Cached: second call returns the same values.
	d2, err := CharacteriseCell(gates.INV)
	if err != nil {
		t.Fatal(err)
	}
	if d2 != d {
		t.Error("cache returned different values")
	}
}

func TestCharacteriseAllCells(t *testing.T) {
	if testing.Short() {
		t.Skip("analog characterisation in -short mode")
	}
	for _, k := range gates.Kinds() {
		d, err := CharacteriseCell(k)
		if err != nil {
			t.Errorf("%v: %v", k, err)
			continue
		}
		if d.Worst() <= 0 || d.Worst() > 1e-9 {
			t.Errorf("%v: worst delay %.3g out of range", k, d.Worst())
		}
	}
}

func TestAnalyseRCA(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	a, err := Analyse(c, Options{Cells: fastCells()})
	if err != nil {
		t.Fatal(err)
	}
	if a.Tmax <= 0 {
		t.Fatal("zero critical delay")
	}
	// The carry chain dominates: cout arrives last (or ties).
	if a.Arrival["cout"] < a.Arrival["s0"] {
		t.Errorf("carry chain should dominate: cout=%.3g s0=%.3g", a.Arrival["cout"], a.Arrival["s0"])
	}
	// Critical path starts at an input and ends at an output.
	if len(a.CriticalPath) < 2 {
		t.Fatalf("critical path too short: %v", a.CriticalPath)
	}
	first := a.CriticalPath[0]
	if d, ok := c.Driver(first); !ok || d != -1 {
		t.Errorf("critical path does not start at a PI: %v", a.CriticalPath)
	}
	last := a.CriticalPath[len(a.CriticalPath)-1]
	found := false
	for _, po := range c.Outputs {
		if po == last {
			found = true
		}
	}
	if !found {
		t.Errorf("critical path does not end at a PO: %v", a.CriticalPath)
	}
	// Arrival times are monotone along the path.
	for i := 1; i < len(a.CriticalPath); i++ {
		if a.Arrival[a.CriticalPath[i]] < a.Arrival[a.CriticalPath[i-1]] {
			t.Errorf("arrival not monotone along critical path at %s", a.CriticalPath[i])
		}
	}
}

func TestDelayFactorInjection(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	base, err := Analyse(c, Options{Cells: fastCells()})
	if err != nil {
		t.Fatal(err)
	}
	// Slow down the first carry gate (on the carry chain): Tmax grows.
	slow, err := Analyse(c, Options{
		Cells:       fastCells(),
		DelayFactor: map[string]float64{"fa0_c": 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Tmax <= base.Tmax {
		t.Errorf("delay injection had no effect: %.3g vs %.3g", slow.Tmax, base.Tmax)
	}
	// Slack/violation bookkeeping against a clock between the two.
	period := (base.Tmax + slow.Tmax) / 2
	if v := base.Violations(c, period); len(v) != 0 {
		t.Errorf("healthy circuit violates: %v", v)
	}
	if v := slow.Violations(c, period); len(v) == 0 {
		t.Error("slowed circuit shows no violation")
	}
	slacks := slow.Slacks(c, period)
	neg := 0
	for _, s := range slacks {
		if s < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("no negative slack after injection")
	}
}

func TestTransitionUniverse(t *testing.T) {
	c := bench.C17()
	u := TransitionUniverse(c)
	// 11 nets x 2 transitions.
	if len(u) != 22 {
		t.Fatalf("universe = %d, want 22", len(u))
	}
	if u[0].String() == u[1].String() {
		t.Error("identifiers collide")
	}
	if !strings.HasSuffix(TransitionFault{Net: "x", Rising: true}.String(), "/STR") {
		t.Error("STR naming broken")
	}
}

func TestTransitionCampaignC17(t *testing.T) {
	c := bench.C17()
	tests, covered, total, err := TransitionCampaign(c, atpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if covered < total*9/10 {
		t.Errorf("transition coverage %d/%d", covered, total)
	}
	if len(tests) != covered {
		t.Errorf("test list inconsistent: %d vs %d", len(tests), covered)
	}
	// Every generated test was already validated inside the campaign;
	// spot-check independence of launch and capture.
	for _, tt := range tests[:3] {
		same := true
		for _, pi := range c.Inputs {
			if tt.Launch[pi] != tt.Capture[pi] {
				same = false
			}
		}
		if same {
			t.Errorf("%v: launch == capture cannot create a transition", tt.Fault)
		}
	}
}

func TestTransitionCampaignDPCircuit(t *testing.T) {
	// Transition testing must work through XOR/MAJ gates too.
	c := bench.FullAdderCP()
	_, covered, total, err := TransitionCampaign(c, atpg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if covered != total {
		t.Errorf("transition coverage %d/%d on the CP full adder", covered, total)
	}
}

func TestSimulateTransitionRejectsBadPairs(t *testing.T) {
	c := bench.C17()
	f := TransitionFault{Net: "n10", Rising: true}
	// A pair that never sets up the transition must be rejected.
	same := faultsim_Pattern(c, logic.L1)
	if SimulateTransition(c, f, same, same) {
		t.Error("degenerate pair accepted")
	}
}

func faultsim_Pattern(c *logic.Circuit, v logic.V) map[string]logic.V {
	p := map[string]logic.V{}
	for _, pi := range c.Inputs {
		p[pi] = v
	}
	return p
}
