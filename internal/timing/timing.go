// Package timing provides gate-level static timing analysis for CP
// circuits with analog-characterised cell delays, plus the transition
// (delay) fault model. The paper's Figure 5 shows that sub-critical
// polarity-gate opens and partial nanowire breaks manifest as delay
// faults ("for VCut below 0.56V, the delay fault and stuck-on can be used
// for testing purpose"); this package lifts that observation to circuit
// level: per-gate delay degradation factors propagate through arrival
// times, and slow-to-rise/slow-to-fall transition tests expose them.
package timing

import (
	"fmt"
	"sort"
	"sync"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
	"cpsinw/internal/spice"
)

// CellDelay is the characterised propagation delay of one gate kind.
type CellDelay struct {
	Kind gates.Kind
	TPLH float64 // low-to-high output transition (s)
	TPHL float64 // high-to-low output transition (s)
}

// Worst returns the slower of the two transitions.
func (c CellDelay) Worst() float64 {
	if c.TPLH > c.TPHL {
		return c.TPLH
	}
	return c.TPHL
}

var (
	cellCacheMu sync.Mutex
	cellCache   = map[gates.Kind]CellDelay{}
)

// CharacteriseCell measures a gate kind's propagation delays with the
// analog simulator (FO4 load, side inputs at the sensitising value).
// Results are cached per kind.
func CharacteriseCell(kind gates.Kind) (CellDelay, error) {
	cellCacheMu.Lock()
	if d, ok := cellCache[kind]; ok {
		cellCacheMu.Unlock()
		return d, nil
	}
	cellCacheMu.Unlock()

	d, err := measureCell(kind)
	if err != nil {
		return CellDelay{}, err
	}
	cellCacheMu.Lock()
	cellCache[kind] = d
	cellCacheMu.Unlock()
	return d, nil
}

// measureCell runs the analog characterisation: input 0 pulses, the
// remaining inputs sit at the value that sensitises input 0 (1 for
// NAND/XOR-style gates, 0 for NOR gates).
func measureCell(kind gates.Kind) (CellDelay, error) {
	spec := gates.Get(kind)
	m := device.Default()
	vdd := m.P.VDD
	side := vdd // non-controlling for NAND/XOR/MAJ-ish sensitisation
	if kind == gates.NOR2 || kind == gates.NOR3 {
		side = 0
	}
	pulse := circuit.Pulse{V0: 0, V1: vdd, Delay: 100e-12, Rise: 10e-12, Fall: 10e-12, Width: 600e-12, Period: 1.4e-9}
	waves := make([]circuit.Waveform, spec.NIn)
	waves[0] = pulse
	for i := 1; i < spec.NIn; i++ {
		waves[i] = circuit.DC(side)
	}
	// MAJ needs mixed side inputs to sensitise input 0 (one 1, one 0).
	if kind == gates.MAJ3 {
		waves[1] = circuit.DC(vdd)
		waves[2] = circuit.DC(0)
	}
	n, err := gates.BuildAnalog(spec, gates.BuildOptions{Inputs: waves})
	if err != nil {
		return CellDelay{}, err
	}
	eng, err := spice.NewEngine(n, spice.Options{})
	if err != nil {
		return CellDelay{}, err
	}
	wf, err := eng.Tran(2e-12, 1.4e-9, []string{gates.InputNode(0), gates.NodeOut})
	if err != nil {
		return CellDelay{}, err
	}
	in, out := gates.InputNode(0), gates.NodeOut

	// Output polarity with respect to input 0 under the chosen side
	// values comes from the Boolean function itself (XOR3 with both side
	// inputs high is non-inverting: the two inversions cancel).
	sideBits := make([]bool, spec.NIn)
	for i := 1; i < spec.NIn; i++ {
		w, _ := waves[i].(circuit.DC)
		sideBits[i] = float64(w) > vdd/2
	}
	lowIn := append([]bool(nil), sideBits...)
	highIn := append([]bool(nil), sideBits...)
	highIn[0] = true
	inverting := spec.Eval(lowIn) && !spec.Eval(highIn)
	var dOnRise, dOnFall float64
	if inverting {
		dOnRise, err = spice.PropDelay(wf, in, out, vdd, true, false, 0)
		if err != nil {
			return CellDelay{}, fmt.Errorf("timing: %v HL: %w", kind, err)
		}
		dOnFall, err = spice.PropDelay(wf, in, out, vdd, false, true, 500e-12)
		if err != nil {
			return CellDelay{}, fmt.Errorf("timing: %v LH: %w", kind, err)
		}
		return CellDelay{Kind: kind, TPHL: dOnRise, TPLH: dOnFall}, nil
	}
	dOnRise, err = spice.PropDelay(wf, in, out, vdd, true, true, 0)
	if err != nil {
		return CellDelay{}, fmt.Errorf("timing: %v LH: %w", kind, err)
	}
	dOnFall, err = spice.PropDelay(wf, in, out, vdd, false, false, 500e-12)
	if err != nil {
		return CellDelay{}, fmt.Errorf("timing: %v HL: %w", kind, err)
	}
	return CellDelay{Kind: kind, TPLH: dOnRise, TPHL: dOnFall}, nil
}

// Analysis is the result of a static timing run.
type Analysis struct {
	// Arrival maps each net to its worst-case arrival time (s).
	Arrival map[string]float64
	// CriticalPath lists the nets of the longest path, input first.
	CriticalPath []string
	// Tmax is the circuit's worst arrival (the critical path delay).
	Tmax float64
}

// Options configures the analysis.
type Options struct {
	// DelayFactor scales the delay of selected gate instances (defect
	// injection: a partial break multiplies the affected cell's delay).
	DelayFactor map[string]float64
	// Cells overrides the characterised cell library (tests, what-if).
	Cells map[gates.Kind]CellDelay
}

// Analyse computes worst-case arrival times by levelised longest-path
// propagation, using analog-characterised cell delays.
func Analyse(c *logic.Circuit, opt Options) (*Analysis, error) {
	cellOf := func(k gates.Kind) (CellDelay, error) {
		if opt.Cells != nil {
			if d, ok := opt.Cells[k]; ok {
				return d, nil
			}
		}
		return CharacteriseCell(k)
	}

	a := &Analysis{Arrival: map[string]float64{}}
	for _, pi := range c.Inputs {
		a.Arrival[pi] = 0
	}
	from := map[string]string{} // net -> predecessor net on the longest path
	for _, gi := range c.Levelized() {
		g := &c.Gates[gi]
		cd, err := cellOf(g.Kind)
		if err != nil {
			return nil, err
		}
		delay := cd.Worst()
		if f, ok := opt.DelayFactor[g.Name]; ok && f > 0 {
			delay *= f
		}
		worst, worstNet := 0.0, ""
		for _, f := range g.Fanin {
			if t := a.Arrival[f]; t >= worst {
				worst, worstNet = t, f
			}
		}
		a.Arrival[g.Output] = worst + delay
		from[g.Output] = worstNet
	}
	for _, po := range c.Outputs {
		if a.Arrival[po] > a.Tmax {
			a.Tmax = a.Arrival[po]
		}
	}
	// Trace the critical path back from the worst output.
	var end string
	for _, po := range c.Outputs {
		if a.Arrival[po] == a.Tmax {
			end = po
			break
		}
	}
	for net := end; net != ""; net = from[net] {
		a.CriticalPath = append(a.CriticalPath, net)
	}
	reverse(a.CriticalPath)
	return a, nil
}

func reverse(s []string) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// Slacks returns per-output slack against a clock period, sorted by net.
func (a *Analysis) Slacks(c *logic.Circuit, period float64) map[string]float64 {
	out := map[string]float64{}
	for _, po := range c.Outputs {
		out[po] = period - a.Arrival[po]
	}
	return out
}

// Violations lists the outputs whose arrival exceeds the period.
func (a *Analysis) Violations(c *logic.Circuit, period float64) []string {
	var out []string
	for _, po := range c.Outputs {
		if a.Arrival[po] > period {
			out = append(out, po)
		}
	}
	sort.Strings(out)
	return out
}
