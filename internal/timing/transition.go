package timing

import (
	"fmt"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// TransitionFault is a gate-level delay fault: the net is slow to make
// the given transition (slow-to-rise when Rising, slow-to-fall
// otherwise). Under a two-pattern test the late value is the stale one.
type TransitionFault struct {
	Net    string
	Rising bool
}

// String renders the conventional STR/STF identifier.
func (f TransitionFault) String() string {
	if f.Rising {
		return f.Net + "/STR"
	}
	return f.Net + "/STF"
}

// TransitionUniverse enumerates both transition faults for every net.
func TransitionUniverse(c *logic.Circuit) []TransitionFault {
	var out []TransitionFault
	for _, net := range c.Nets() {
		out = append(out,
			TransitionFault{Net: net, Rising: true},
			TransitionFault{Net: net, Rising: false},
		)
	}
	return out
}

// TransitionTest is a generated two-pattern delay test: the launch
// pattern establishes the initial value, the capture pattern requires the
// transition and observes the stale value at a primary output.
type TransitionTest struct {
	Fault   TransitionFault
	Launch  faultsim.Pattern
	Capture faultsim.Pattern
}

// GenerateTransition builds a two-pattern test for a transition fault:
// the capture pattern is a stuck-at test for the stale value on the net
// (slow-to-rise net behaves as momentarily stuck-at-0), and the launch
// pattern justifies the opposite value beforehand.
func GenerateTransition(c *logic.Circuit, f TransitionFault, opt atpg.Options) (TransitionTest, bool) {
	kind := core.FaultSA0 // slow-to-rise: stale value is 0
	initVal := logic.L0
	if !f.Rising {
		kind = core.FaultSA1
		initVal = logic.L1
	}
	d, ok := c.Driver(f.Net)
	if !ok {
		return TransitionTest{}, false
	}
	capture, okc := atpg.GenerateStuckAt(c, core.Fault{Kind: kind, Net: f.Net, GateIdx: d, Pin: -1}, opt)
	if !okc {
		return TransitionTest{}, false
	}
	launch, okl := atpg.Justify(c, map[string]logic.V{f.Net: initVal}, opt)
	if !okl {
		return TransitionTest{}, false
	}
	return TransitionTest{Fault: f, Launch: launch, Capture: capture}, true
}

// SimulateTransition checks whether a two-pattern pair detects the
// transition fault: the launch pattern must set the net to the stale
// value, the capture pattern must set it to the new value in the good
// circuit, and the stale value must produce a definite PO difference
// under the capture pattern.
func SimulateTransition(c *logic.Circuit, f TransitionFault, launch, capture faultsim.Pattern) bool {
	lv := c.Eval(map[string]logic.V(launch))
	cv := c.Eval(map[string]logic.V(capture))
	stale := logic.L0
	fresh := logic.L1
	if !f.Rising {
		stale, fresh = logic.L1, logic.L0
	}
	if lv[f.Net] != stale || cv[f.Net] != fresh {
		return false
	}
	// Faulty circuit under capture: the net still holds the stale value.
	faulty := c.EvalHooked(map[string]logic.V(capture), logic.TernaryHooks{
		Stem: func(net string, v logic.V) logic.V {
			if net == f.Net {
				return stale
			}
			return v
		},
	})
	for _, po := range c.Outputs {
		g, gok := cv[po].Bool()
		fb, fok := faulty[po].Bool()
		if gok && fok && g != fb {
			return true
		}
	}
	return false
}

// TransitionCampaign generates and validates tests for the whole
// transition universe, returning coverage and the test list.
func TransitionCampaign(c *logic.Circuit, opt atpg.Options) (tests []TransitionTest, covered, total int, err error) {
	universe := TransitionUniverse(c)
	total = len(universe)
	for _, f := range universe {
		t, ok := GenerateTransition(c, f, opt)
		if !ok {
			continue
		}
		if !SimulateTransition(c, f, t.Launch, t.Capture) {
			return nil, 0, 0, fmt.Errorf("timing: generated test for %v fails validation", f)
		}
		tests = append(tests, t)
		covered++
	}
	return tests, covered, total, nil
}
