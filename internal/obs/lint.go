package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// sampleRE matches one exposition sample line: name, optional label
// block, value, optional timestamp.
var sampleRE = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (NaN|[+-]Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)( [0-9]+)?$`)

var labelRE = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)

// LintExposition parses Prometheus text exposition from r and returns
// the first structural error: malformed sample or comment lines,
// samples whose family lacks a preceding # TYPE, unknown metric types,
// duplicate series, counters that can't parse as numbers, histograms
// with non-cumulative buckets or a missing +Inf bucket, and histogram
// _count samples that disagree with the +Inf bucket. It is the
// well-formedness check behind the CI scrape smoke and the exposition
// tests.
func LintExposition(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)

	types := map[string]string{}
	seen := map[string]bool{}
	// Per histogram series (family+labels sans "le"): cumulative check.
	type histState struct {
		last    float64 // bucket count of the previous le
		lastLe  float64
		hasInf  bool
		infCnt  float64
		count   float64
		hasCnt  bool
		started bool
	}
	hists := map[string]*histState{}

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			if len(fields) < 3 {
				return fmt.Errorf("line %d: malformed %s comment", lineNo, fields[1])
			}
			if fields[1] == "TYPE" {
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE wants <name> <type>", lineNo)
				}
				name, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := types[name]; dup {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				types[name] = typ
			}
			continue
		}

		m := sampleRE.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		name, labelBlock, valStr := m[1], m[2], m[3]
		labels, err := parseLabels(labelBlock)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if seen[name+labelBlock] {
			return fmt.Errorf("line %d: duplicate series %s%s", lineNo, name, labelBlock)
		}
		seen[name+labelBlock] = true

		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name && types[trimmed] == "histogram" {
				base, suffix = trimmed, sfx
				break
			}
		}
		typ, ok := types[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
		}

		val, err := parseValue(valStr)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if typ == "counter" && (val < 0 || val != val) {
			return fmt.Errorf("line %d: counter %s has invalid value %s", lineNo, name, valStr)
		}

		if typ == "histogram" {
			key := base + signatureWithout(labels, "le")
			st := hists[key]
			if st == nil {
				st = &histState{}
				hists[key] = st
			}
			switch suffix {
			case "_bucket":
				le, hasLe := labels["le"]
				if !hasLe {
					return fmt.Errorf("line %d: histogram bucket %s lacks le label", lineNo, name)
				}
				if le == "+Inf" {
					st.hasInf, st.infCnt = true, val
				} else {
					b, err := strconv.ParseFloat(le, 64)
					if err != nil {
						return fmt.Errorf("line %d: bad le %q", lineNo, le)
					}
					if st.started && b <= st.lastLe {
						return fmt.Errorf("line %d: histogram %s buckets not ascending", lineNo, base)
					}
					st.lastLe = b
				}
				if st.started && val < st.last {
					return fmt.Errorf("line %d: histogram %s buckets not cumulative", lineNo, base)
				}
				st.last, st.started = val, true
			case "_count":
				st.count, st.hasCnt = val, true
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for key, st := range hists {
		if !st.hasInf {
			return fmt.Errorf("histogram %s: missing +Inf bucket", key)
		}
		if st.hasCnt && st.count != st.infCnt {
			return fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", key, st.count, st.infCnt)
		}
	}
	return nil
}

func parseLabels(block string) (map[string]string, error) {
	out := map[string]string{}
	if block == "" {
		return out, nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if inner == "" {
		return out, nil
	}
	for _, part := range splitLabels(inner) {
		m := labelRE.FindStringSubmatch(part)
		if m == nil {
			return nil, fmt.Errorf("malformed label %q", part)
		}
		if _, dup := out[m[1]]; dup {
			return nil, fmt.Errorf("duplicate label %q", m[1])
		}
		out[m[1]] = unescapeLabelValue(m[2])
	}
	return out, nil
}

// splitLabels splits k="v" pairs on commas outside quotes.
func splitLabels(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if depth {
				i++
			}
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func unescapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\n`, "\n")
	return strings.ReplaceAll(s, `\\`, `\`)
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(+1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// signatureWithout renders labels minus one key, canonically sorted.
func signatureWithout(labels map[string]string, drop string) string {
	ls := make([]Label, 0, len(labels))
	for k, v := range labels {
		if k != drop {
			ls = append(ls, Label{k, v})
		}
	}
	return signature(ls)
}
