package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// levelOff sits above every real level; the nop logger uses it.
	levelOff
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "off"
}

// ParseLevel resolves a level name.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (have: debug, info, warn, error)", s)
}

// Format selects the line encoding.
type Format int8

const (
	// FormatText renders logfmt-style key=value lines.
	FormatText Format = iota
	// FormatJSON renders one JSON object per line.
	FormatJSON
)

// ParseFormat resolves a format name.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "logfmt", "":
		return FormatText, nil
	case "json":
		return FormatJSON, nil
	}
	return FormatText, fmt.Errorf("obs: unknown log format %q (have: text, json)", s)
}

// Logger is a minimal structured leveled logger: every line carries a
// timestamp, level, message and ordered key=value attributes. With()
// derives loggers sharing the sink and prepending bound attributes.
// Safe for concurrent use.
type Logger struct {
	mu     *sync.Mutex
	w      io.Writer
	level  Level
	format Format
	bound  []Label
	now    func() time.Time
}

// New builds a logger writing at or above level to w.
func New(w io.Writer, level Level, format Format) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, format: format, now: time.Now}
}

// Nop returns a logger that discards everything.
func Nop() *Logger {
	return &Logger{mu: &sync.Mutex{}, w: io.Discard, level: levelOff, format: FormatText, now: time.Now}
}

// With derives a logger with extra bound attributes (alternating
// key, value pairs; values are rendered with the same rules as call
// site attributes).
func (l *Logger) With(kv ...any) *Logger {
	d := *l
	d.bound = append(append([]Label(nil), l.bound...), fields(kv)...)
	return &d
}

// Enabled reports whether the level would be written.
func (l *Logger) Enabled(level Level) bool { return level >= l.level }

// Debug logs at debug level.
func (l *Logger) Debug(msg string, kv ...any) { l.log(LevelDebug, msg, kv) }

// Info logs at info level.
func (l *Logger) Info(msg string, kv ...any) { l.log(LevelInfo, msg, kv) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, kv ...any) { l.log(LevelWarn, msg, kv) }

// Error logs at error level.
func (l *Logger) Error(msg string, kv ...any) { l.log(LevelError, msg, kv) }

func (l *Logger) log(level Level, msg string, kv []any) {
	if !l.Enabled(level) {
		return
	}
	attrs := fields(kv)
	ts := l.now().UTC().Format(time.RFC3339Nano)
	var line []byte
	switch l.format {
	case FormatJSON:
		var sb strings.Builder
		sb.WriteString(`{"ts":`)
		sb.Write(jsonValue(ts))
		sb.WriteString(`,"level":`)
		sb.Write(jsonValue(level.String()))
		sb.WriteString(`,"msg":`)
		sb.Write(jsonValue(msg))
		for _, a := range append(append([]Label(nil), l.bound...), attrs...) {
			sb.WriteByte(',')
			sb.Write(jsonValue(a.Key))
			sb.WriteByte(':')
			sb.Write(jsonValue(a.Value))
		}
		sb.WriteString("}\n")
		line = []byte(sb.String())
	default:
		var sb strings.Builder
		sb.WriteString("ts=")
		sb.WriteString(ts)
		sb.WriteString(" level=")
		sb.WriteString(level.String())
		sb.WriteString(" msg=")
		sb.WriteString(textValue(msg))
		for _, a := range append(append([]Label(nil), l.bound...), attrs...) {
			sb.WriteByte(' ')
			sb.WriteString(a.Key)
			sb.WriteByte('=')
			sb.WriteString(textValue(a.Value))
		}
		sb.WriteByte('\n')
		line = []byte(sb.String())
	}
	l.mu.Lock()
	_, _ = l.w.Write(line)
	l.mu.Unlock()
}

// fields folds alternating key, value arguments into labels; a dangling
// key gets the value "(MISSING)" and non-string keys are stringified,
// so malformed call sites degrade loudly instead of panicking.
func fields(kv []any) []Label {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		key := fmt.Sprint(kv[i])
		val := "(MISSING)"
		if i+1 < len(kv) {
			val = fmt.Sprint(kv[i+1])
		}
		out = append(out, Label{key, val})
	}
	return out
}

// textValue quotes values that would break key=value tokenization.
func textValue(s string) string {
	if s == "" {
		return `""`
	}
	if strings.ContainsAny(s, " \t\n\"=") {
		return strconv.Quote(s)
	}
	return s
}

func jsonValue(s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for strings; keep the line well-formed
		return []byte(`"?"`)
	}
	return b
}
