// Package obs is the reproduction's dependency-free observability
// core: a counter/gauge/histogram metrics registry that renders the
// Prometheus text exposition format, an in-process span tracer that
// keeps per-campaign span trees, and a small structured (key=value or
// JSON) leveled logger. Everything is safe for concurrent use and built
// on the standard library only, so the fault-simulation engines and the
// campaign service can be instrumented without pulling a client
// library into the module.
package obs

// Label is one metric label or log/span attribute.
type Label struct {
	Key, Value string
}

// L builds a Label; it keeps call sites short.
func L(key, value string) Label { return Label{Key: key, Value: value} }
