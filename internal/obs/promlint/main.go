// Command promlint validates Prometheus text exposition read from
// stdin (or the files named as arguments) with obs.LintExposition. It
// exits non-zero on the first malformed line, so CI can pipe a
// /metrics scrape through it.
package main

import (
	"fmt"
	"os"

	"cpsinw/internal/obs"
)

func main() {
	if len(os.Args) < 2 {
		if err := obs.LintExposition(os.Stdin); err != nil {
			fmt.Fprintf(os.Stderr, "promlint: stdin: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, name := range os.Args[1:] {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %v\n", err)
			os.Exit(1)
		}
		err = obs.LintExposition(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
			os.Exit(1)
		}
	}
}
