package obs

import (
	"sync"
	"time"
)

// Tracer keeps per-trace (per-campaign) span trees in process: each
// trace ID owns one root span with nested children. Finished or not,
// trees stay queryable until evicted; the tracer retains at most
// maxTraces trees, evicting the oldest.
//
// All Span methods are nil-safe no-ops, so instrumented code can thread
// spans unconditionally and run untraced when no tracer is wired.
type Tracer struct {
	mu        sync.Mutex
	maxTraces int
	traces    map[string]*Span
	order     []string
}

// NewTracer builds a tracer retaining up to maxTraces span trees
// (default 256 when <= 0).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = 256
	}
	return &Tracer{maxTraces: maxTraces, traces: map[string]*Span{}}
}

// Span is one timed operation, possibly with children. The zero End
// time marks a span still in flight.
type Span struct {
	mu       sync.Mutex
	name     string
	start    time.Time
	end      time.Time
	attrs    []Label
	children []*Span
}

// Start opens (and retains) the root span of a new trace, replacing any
// existing trace under the same ID.
func (t *Tracer) Start(trace, name string) *Span {
	return t.StartAt(trace, name, time.Now())
}

// StartAt is Start with an explicit start time, for callers that must
// open the trace retroactively (e.g. after an ID is allocated).
func (t *Tracer) StartAt(trace, name string, start time.Time) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{name: name, start: start}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, exists := t.traces[trace]; !exists {
		t.order = append(t.order, trace)
	}
	t.traces[trace] = sp
	for len(t.order) > t.maxTraces {
		delete(t.traces, t.order[0])
		t.order = t.order[1:]
	}
	return sp
}

// Tree snapshots a trace's span tree.
func (t *Tracer) Tree(trace string) (*SpanTree, bool) {
	if t == nil {
		return nil, false
	}
	t.mu.Lock()
	sp, ok := t.traces[trace]
	t.mu.Unlock()
	if !ok {
		return nil, false
	}
	return sp.tree(), true
}

// Len reports the retained trace count.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.traces)
}

// Child opens a child span starting now.
func (s *Span) Child(name string) *Span {
	return s.ChildAt(name, time.Now())
}

// ChildAt opens a child span with an explicit start time.
func (s *Span) ChildAt(name string, start time.Time) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: start}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Record attaches an already-finished child span (for phases timed
// before the trace existed, like request parsing ahead of ID
// allocation).
func (s *Span) Record(name string, start, end time.Time, attrs ...Label) *Span {
	c := s.ChildAt(name, start)
	if c != nil {
		c.attrs = append(c.attrs, attrs...)
		c.EndAt(end)
	}
	return c
}

// SetAttr attaches one attribute.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Label{key, value})
	s.mu.Unlock()
}

// End closes the span now; closing twice keeps the first end time.
func (s *Span) End() { s.EndAt(time.Now()) }

// EndAt closes the span at the given time.
func (s *Span) EndAt(t time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = t
	}
	s.mu.Unlock()
}

// Duration reports the span's length so far (to now while open).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.end.IsZero() {
		return time.Since(s.start)
	}
	return s.end.Sub(s.start)
}

// SpanTree is the JSON-able snapshot of a span and its descendants.
type SpanTree struct {
	Name       string            `json:"name"`
	Start      string            `json:"start"`
	End        string            `json:"end,omitempty"`
	DurationMS float64           `json:"duration_ms"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	Children   []*SpanTree       `json:"children,omitempty"`
}

func (s *Span) tree() *SpanTree {
	s.mu.Lock()
	node := &SpanTree{
		Name:  s.name,
		Start: s.start.UTC().Format(time.RFC3339Nano),
	}
	if !s.end.IsZero() {
		node.End = s.end.UTC().Format(time.RFC3339Nano)
		node.DurationMS = float64(s.end.Sub(s.start)) / float64(time.Millisecond)
	} else {
		node.DurationMS = float64(time.Since(s.start)) / float64(time.Millisecond)
	}
	if len(s.attrs) > 0 {
		node.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			node.Attrs[a.Key] = a.Value
		}
	}
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		node.Children = append(node.Children, c.tree())
	}
	return node
}
