package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func fixedClock() time.Time {
	return time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
}

func TestLoggerText(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatText)
	l.now = fixedClock
	l.Debug("hidden")
	l.Info("job done", "id", "j1", "dur", 1.5, "msg text", `quote"me`)
	want := `ts=2026-08-08T12:00:00Z level=info msg="job done" id=j1 dur=1.5 msg text="quote\"me"` + "\n"
	if sb.String() != want {
		t.Errorf("got  %q\nwant %q", sb.String(), want)
	}
}

func TestLoggerJSON(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelDebug, FormatJSON).With("component", "jobs")
	l.now = fixedClock
	l.Warn("queue full", "depth", 8)
	var got map[string]string
	if err := json.Unmarshal([]byte(sb.String()), &got); err != nil {
		t.Fatalf("line not valid JSON: %v\n%s", err, sb.String())
	}
	for k, want := range map[string]string{
		"ts": "2026-08-08T12:00:00Z", "level": "warn", "msg": "queue full",
		"component": "jobs", "depth": "8",
	} {
		if got[k] != want {
			t.Errorf("%s = %q, want %q", k, got[k], want)
		}
	}
}

func TestLoggerLevelsAndNop(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelError, FormatText)
	l.Info("no")
	l.Warn("no")
	l.Error("yes")
	if n := strings.Count(sb.String(), "\n"); n != 1 {
		t.Errorf("wrote %d lines, want 1", n)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelWarn) {
		t.Error("Enabled disagrees with level")
	}
	Nop().Error("discarded", "k", "v") // must not panic or write anywhere visible
}

func TestFieldsDanglingKey(t *testing.T) {
	var sb strings.Builder
	l := New(&sb, LevelInfo, FormatText)
	l.now = fixedClock
	l.Info("m", "lonely")
	if !strings.Contains(sb.String(), `lonely=(MISSING)`) {
		t.Errorf("dangling key not flagged: %q", sb.String())
	}
}

func TestParseHelpers(t *testing.T) {
	if lv, err := ParseLevel("WARN"); err != nil || lv != LevelWarn {
		t.Errorf("ParseLevel(WARN) = %v, %v", lv, err)
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted junk")
	}
	if f, err := ParseFormat("json"); err != nil || f != FormatJSON {
		t.Errorf("ParseFormat(json) = %v, %v", f, err)
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted junk")
	}
}
