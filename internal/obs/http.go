package obs

import (
	"net/http"
	"time"
)

// statusWriter captures the response code and size while preserving
// http.Flusher, which the service's SSE streaming depends on.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// AccessLog wraps next with structured request logging: one line per
// request with method, path, status, response bytes, duration and the
// remote address.
func AccessLog(l *Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		l.Info("http request",
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"bytes", sw.bytes,
			"duration_ms", float64(time.Since(start))/float64(time.Millisecond),
			"remote", r.RemoteAddr,
		)
	})
}
