package obs

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionGolden pins the exact text exposition of a small
// registry: family ordering, label canonicalization, histogram bucket
// rendering. A change here is a breaking change for every scraper.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_total", "Jobs accepted.")
	c.Add(3)
	r.Counter("engine_jobs_total", "Per-engine jobs.", L("engine", "packed")).Inc()
	r.Counter("engine_jobs_total", "Per-engine jobs.", L("engine", "compiled")).Add(2)
	g := r.Gauge("queue_depth", "Jobs waiting.")
	g.Set(4)
	h := r.Histogram("latency_seconds", "Job latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `# HELP jobs_total Jobs accepted.
# TYPE jobs_total counter
jobs_total 3
# HELP engine_jobs_total Per-engine jobs.
# TYPE engine_jobs_total counter
engine_jobs_total{engine="packed"} 1
engine_jobs_total{engine="compiled"} 2
# HELP queue_depth Jobs waiting.
# TYPE queue_depth gauge
queue_depth 4
# HELP latency_seconds Job latency.
# TYPE latency_seconds histogram
latency_seconds_bucket{le="0.1"} 1
latency_seconds_bucket{le="1"} 2
latency_seconds_bucket{le="+Inf"} 3
latency_seconds_sum 5.55
latency_seconds_count 3
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n got:\n%s\nwant:\n%s", got, want)
	}
	if err := LintExposition(strings.NewReader(sb.String())); err != nil {
		t.Errorf("own exposition fails lint: %v", err)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x", L("k", "v"))
	b := r.Counter("x_total", "x", L("k", "v"))
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if c := r.Counter("x_total", "x", L("k", "w")); c == a {
		t.Error("different labels share a counter")
	}
	defer func() {
		if recover() == nil {
			t.Error("type change on re-registration did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Gauge("g", "g", L("path", `a"b\c`+"\n")).Set(1)
	var sb strings.Builder
	r.WritePrometheus(&sb)
	want := `g{path="a\"b\\c\n"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped label missing: got %q, want to contain %q", sb.String(), want)
	}
	if err := LintExposition(strings.NewReader(sb.String())); err != nil {
		t.Errorf("lint rejects escaped labels: %v", err)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "h", []float64{10, 20, 40})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", q)
	}
	// 10 observations in (10, 20]: p50 interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if q := h.Quantile(0.5); q < 10 || q > 20 {
		t.Errorf("p50 = %v, want within (10, 20]", q)
	}
	h.Observe(1000) // +Inf bucket clamps to the largest finite bound
	if q := h.Quantile(1); q != 40 {
		t.Errorf("p100 with overflow = %v, want clamp to 40", q)
	}
	if h.Count() != 11 {
		t.Errorf("count = %d, want 11", h.Count())
	}
}

func TestCounterAndGaugeFuncs(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("cf_total", "cf", func() uint64 { return n })
	r.GaugeFunc("gf", "gf", func() float64 { return 2.5 })
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()
	if !strings.Contains(out, "cf_total 7\n") || !strings.Contains(out, "gf 2.5\n") {
		t.Errorf("func-backed series missing:\n%s", out)
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":        "orphan 1\n",
		"bad sample":     "# TYPE x counter\nx{ 1\n",
		"dup series":     "# TYPE x counter\nx 1\nx 1\n",
		"negative ctr":   "# TYPE x counter\nx -1\n",
		"non-cumulative": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
		"missing +Inf":   "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_sum 1\nh_count 5\n",
		"count mismatch": "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 6\n",
		"bad type":       "# TYPE x flummox\nx 1\n",
	}
	for name, in := range cases {
		if err := LintExposition(strings.NewReader(in)); err == nil {
			t.Errorf("%s: lint accepted malformed input", name)
		}
	}
	ok := "# HELP x fine\n# TYPE x counter\nx 1\n\n# some comment\n# TYPE g gauge\ng{a=\"b\"} +Inf\n"
	if err := LintExposition(strings.NewReader(ok)); err != nil {
		t.Errorf("lint rejected valid input: %v", err)
	}
}

func TestGaugeAdd(t *testing.T) {
	var g Gauge
	g.Set(1.5)
	g.Add(2)
	g.Add(-0.5)
	if v := g.Value(); math.Abs(v-3) > 1e-12 {
		t.Errorf("gauge = %v, want 3", v)
	}
}
