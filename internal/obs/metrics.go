package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus
// text exposition format (version 0.0.4). Families appear in
// registration order, series within a family in their own registration
// order, so scrapes are deterministic and can be pinned by golden
// tests. Registration is idempotent: asking for a name+labels pair that
// already exists returns the existing instrument.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

type family struct {
	name, help, typ string

	mu     sync.Mutex
	order  []string
	series map[string]series
}

// series is one labelled instrument inside a family.
type series interface {
	write(w io.Writer, name, sig string)
}

func (r *Registry) family(name, help, typ string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byName[name]; ok {
		if f.typ != typ {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, series: map[string]series{}}
	r.byName[name] = f
	r.families = append(r.families, f)
	return f
}

// getOrAdd returns the series for the label signature, creating it with
// mk on first use.
func (f *family) getOrAdd(labels []Label, mk func() series) series {
	sig := signature(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[sig]; ok {
		return s
	}
	s := mk()
	f.series[sig] = s
	f.order = append(f.order, sig)
	return s
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count. The int64 return keeps existing
// comparison sites (and JSON snapshots) simple; counters overflowing
// int64 are out of scope.
func (c *Counter) Value() int64 { return int64(c.v.Load()) }

func (c *Counter) write(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %d\n", name, sig, c.v.Load())
}

// Counter registers (or returns) a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, "counter")
	return f.getOrAdd(labels, func() series { return &Counter{} }).(*Counter)
}

// counterFunc is a counter whose value is read from a callback at
// scrape time (process-wide atomics owned elsewhere). The callback must
// be monotone.
type counterFunc func() uint64

func (fn counterFunc) write(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %d\n", name, sig, fn())
}

// CounterFunc registers a counter series backed by fn; fn must return a
// monotonically increasing value and be safe for concurrent calls.
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	f := r.family(name, help, "counter")
	f.getOrAdd(labels, func() series { return counterFunc(fn) })
}

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to decrease).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value reads the gauge.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %s\n", name, sig, formatFloat(g.Value()))
}

// Gauge registers (or returns) a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, "gauge")
	return f.getOrAdd(labels, func() series { return &Gauge{} }).(*Gauge)
}

// gaugeFunc is a gauge read from a callback at scrape time.
type gaugeFunc func() float64

func (fn gaugeFunc) write(w io.Writer, name, sig string) {
	fmt.Fprintf(w, "%s%s %s\n", name, sig, formatFloat(fn()))
}

// GaugeFunc registers a gauge series backed by fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, "gauge")
	f.getOrAdd(labels, func() series { return gaugeFunc(fn) })
}

// Histogram is a fixed-bucket cumulative histogram. Observations are
// lock-free; rendering and quantile estimation read the atomics
// directly, so a scrape concurrent with observations may see a bucket
// one observation ahead of the sum — the usual Prometheus histogram
// semantics.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf implicit
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v (le semantics)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count reports the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the owning bucket — the standard fixed-bucket
// estimate. Observations in the +Inf bucket clamp to the largest finite
// bound; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := uint64(0)
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // +Inf bucket
				if len(h.bounds) == 0 {
					return 0
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			} else if frac > 1 {
				frac = 1
			}
			return lo + (h.bounds[i]-lo)*frac
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return 0
	}
	return h.bounds[len(h.bounds)-1]
}

func (h *Histogram) write(w io.Writer, name, sig string) {
	inner := strings.TrimSuffix(strings.TrimPrefix(sig, "{"), "}")
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketSig(inner, formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketSig(inner, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sig, formatFloat(h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sig, h.count.Load())
}

func bucketSig(inner, le string) string {
	if inner == "" {
		return `{le="` + le + `"}`
	}
	return "{" + inner + `,le="` + le + `"}`
}

// DefBuckets is a general-purpose latency bucket layout in seconds,
// 1ms to 60s.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60}

// Histogram registers (or returns) a histogram series with the given
// ascending upper bounds (nil: DefBuckets). A trailing +Inf bound is
// implicit and must not be passed.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram %q buckets not ascending", name))
		}
	}
	if len(buckets) > 0 && math.IsInf(buckets[len(buckets)-1], +1) {
		panic(fmt.Sprintf("obs: histogram %q: +Inf bound is implicit", name))
	}
	f := r.family(name, help, "histogram")
	return f.getOrAdd(labels, func() series {
		bounds := append([]float64(nil), buckets...)
		return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).(*Histogram)
}

// WritePrometheus renders every family in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		order := append([]string(nil), f.order...)
		snap := make([]series, len(order))
		for i, sig := range order {
			snap[i] = f.series[sig]
		}
		f.mu.Unlock()
		if f.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for i, s := range snap {
			s.write(w, f.name, order[i])
		}
	}
}

// signature renders labels as a canonical (sorted) exposition block, ""
// for no labels.
func signature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range ls {
		if !validLabelName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_' || r == ':'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i, r := range s {
		alpha := r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r == '_'
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
