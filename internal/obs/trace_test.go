package obs

import (
	"testing"
	"time"
)

func TestTracerTree(t *testing.T) {
	tr := NewTracer(4)
	t0 := time.Date(2026, 8, 8, 10, 0, 0, 0, time.UTC)
	root := tr.StartAt("job-1", "campaign", t0)
	root.Record("parse", t0, t0.Add(2*time.Millisecond), L("circuit", "c17"))
	sim := root.ChildAt("simulate", t0.Add(2*time.Millisecond))
	sim.ChildAt("stuck_at", t0.Add(2*time.Millisecond)).EndAt(t0.Add(5 * time.Millisecond))
	sim.EndAt(t0.Add(5 * time.Millisecond))
	root.SetAttr("engine", "compiled")
	root.EndAt(t0.Add(6 * time.Millisecond))
	root.EndAt(t0.Add(99 * time.Millisecond)) // second end ignored

	tree, ok := tr.Tree("job-1")
	if !ok {
		t.Fatal("trace not retained")
	}
	if tree.Name != "campaign" || tree.DurationMS != 6 {
		t.Errorf("root = %q %vms, want campaign 6ms", tree.Name, tree.DurationMS)
	}
	if tree.Attrs["engine"] != "compiled" {
		t.Errorf("root attrs = %v", tree.Attrs)
	}
	if len(tree.Children) != 2 || tree.Children[0].Name != "parse" || tree.Children[1].Name != "simulate" {
		t.Fatalf("children = %+v", tree.Children)
	}
	if tree.Children[0].Attrs["circuit"] != "c17" || tree.Children[0].DurationMS != 2 {
		t.Errorf("parse span = %+v", tree.Children[0])
	}
	if len(tree.Children[1].Children) != 1 || tree.Children[1].Children[0].Name != "stuck_at" {
		t.Errorf("simulate children = %+v", tree.Children[1].Children)
	}
}

func TestTracerEviction(t *testing.T) {
	tr := NewTracer(2)
	tr.Start("a", "a")
	tr.Start("b", "b")
	tr.Start("c", "c")
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want 2", tr.Len())
	}
	if _, ok := tr.Tree("a"); ok {
		t.Error("oldest trace not evicted")
	}
	if _, ok := tr.Tree("c"); !ok {
		t.Error("newest trace missing")
	}
	// Restarting an ID replaces the tree without growing the order list.
	tr.Start("c", "c2")
	if tree, _ := tr.Tree("c"); tree.Name != "c2" {
		t.Errorf("restarted trace = %q, want c2", tree.Name)
	}
	if tr.Len() != 2 {
		t.Errorf("len after restart = %d, want 2", tr.Len())
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", "x")
	if sp != nil {
		t.Fatal("nil tracer returned non-nil span")
	}
	// none of these may panic
	sp.Child("c").SetAttr("k", "v")
	sp.Record("r", time.Now(), time.Now())
	sp.End()
	if d := sp.Duration(); d != 0 {
		t.Errorf("nil span duration = %v", d)
	}
	if _, ok := tr.Tree("x"); ok {
		t.Error("nil tracer has trees")
	}
	if tr.Len() != 0 {
		t.Error("nil tracer non-empty")
	}
}
