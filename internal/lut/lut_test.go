package lut

import (
	"math"
	"testing"
	"testing/quick"

	"cpsinw/internal/device"
)

func linearFunc(vcg, vpgs, vpgd, vds float64) float64 {
	return 2*vcg - 0.5*vpgs + 3*vpgd + vds
}

func defaultAxes() (Axis, Axis, Axis, Axis) {
	a := Axis{Lo: 0, Hi: 1.2, N: 7}
	d := Axis{Lo: -1.2, Hi: 1.2, N: 13}
	return a, a, a, d
}

func TestBuildValidation(t *testing.T) {
	good := Axis{Lo: 0, Hi: 1, N: 3}
	if _, err := Build(good, good, good, Axis{Lo: 0, Hi: 1, N: 1}, linearFunc); err == nil {
		t.Error("Build accepted a 1-point axis")
	}
	if _, err := Build(good, good, good, Axis{Lo: 1, Hi: 0, N: 3}, linearFunc); err == nil {
		t.Error("Build accepted an inverted axis")
	}
	if _, err := Build(good, good, good, good, linearFunc); err != nil {
		t.Errorf("Build rejected valid axes: %v", err)
	}
}

func TestLookupExactOnGridPoints(t *testing.T) {
	cg, pgs, pgd, ds := defaultAxes()
	tbl, err := Build(cg, pgs, pgd, ds, linearFunc)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cg.N; i++ {
		for l := 0; l < ds.N; l++ {
			vcg := cg.Lo + cg.Step()*float64(i)
			vds := ds.Lo + ds.Step()*float64(l)
			got := tbl.Lookup(vcg, 0.6, 0.6, vds)
			want := linearFunc(vcg, 0.6, 0.6, vds)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("Lookup(%v,0.6,0.6,%v) = %v, want %v", vcg, vds, got, want)
			}
		}
	}
}

func TestMultilinearReproducesLinearExactly(t *testing.T) {
	// A multilinear interpolant is exact for multilinear functions
	// everywhere, not only on grid points.
	cg, pgs, pgd, ds := defaultAxes()
	tbl, err := Build(cg, pgs, pgd, ds, linearFunc)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b, c, d uint8) bool {
		vcg := 1.2 * float64(a) / 255
		vpgs := 1.2 * float64(b) / 255
		vpgd := 1.2 * float64(c) / 255
		vds := -1.2 + 2.4*float64(d)/255
		return math.Abs(tbl.Lookup(vcg, vpgs, vpgd, vds)-linearFunc(vcg, vpgs, vpgd, vds)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestClampedExtrapolation(t *testing.T) {
	cg, pgs, pgd, ds := defaultAxes()
	tbl, err := Build(cg, pgs, pgd, ds, linearFunc)
	if err != nil {
		t.Fatal(err)
	}
	inside := tbl.Lookup(1.2, 0.6, 0.6, 1.2)
	outside := tbl.Lookup(5.0, 0.6, 0.6, 9.0)
	if inside != outside {
		t.Errorf("extrapolation not clamped: inside=%v outside=%v", inside, outside)
	}
}

func TestTableAgainstDeviceModel(t *testing.T) {
	m := device.Default()
	f := func(vcg, vpgs, vpgd, vds float64) float64 {
		return m.ID(device.Bias{VCG: vcg, VPGS: vpgs, VPGD: vpgd, VD: vds})
	}
	axes := Axis{Lo: 0, Hi: 1.2, N: 25}
	dsAxis := Axis{Lo: -1.2, Hi: 1.2, N: 49}
	tbl, err := Build(axes, axes, axes, dsAxis, f)
	if err != nil {
		t.Fatal(err)
	}
	onI := m.IDSat()
	if e := tbl.MaxAbsError(f, 9); e > 0.25*onI {
		t.Errorf("table max abs error = %.3g, want < 25%% of on-current (%.3g)", e, onI)
	}
	// The table preserves the conduction rule: on-state >> blocked states.
	on := tbl.Lookup(1.2, 1.2, 1.2, 1.2)
	blocked := tbl.Lookup(1.2, 0, 0, 1.2)
	if on/math.Max(math.Abs(blocked), 1e-30) < 1e3 {
		t.Errorf("table on/blocked ratio too small: on=%.3g blocked=%.3g", on, blocked)
	}
}

func TestAxisStepAndLocate(t *testing.T) {
	a := Axis{Lo: 0, Hi: 1, N: 5}
	if a.Step() != 0.25 {
		t.Errorf("Step = %v, want 0.25", a.Step())
	}
	i, f := a.locate(0.3)
	if i != 1 || math.Abs(f-0.2) > 1e-12 {
		t.Errorf("locate(0.3) = %d, %v, want 1, 0.2", i, f)
	}
	i, f = a.locate(-1)
	if i != 0 || f != 0 {
		t.Errorf("locate(-1) = %d, %v, want clamp to 0,0", i, f)
	}
	i, f = a.locate(2)
	if i != 3 || f != 1 {
		t.Errorf("locate(2) = %d, %v, want clamp to 3,1", i, f)
	}
}
