// Package lut implements the table-based compact model of the paper's
// simulation flow: the device solver characterises the channel conductivity
// as a function of (VCG, VPGS, VPGD, VDS) on a grid, and circuit simulation
// interpolates the table instead of re-evaluating the physics ("a simple
// compact model based on a table model in Verilog-A", paper section III-D).
// The table also carries the parasitic capacitances among terminals and the
// source/drain access resistance, as the paper's model does.
package lut

import (
	"errors"
	"fmt"
	"math"
)

// Axis is a uniform sampling grid over one voltage dimension.
type Axis struct {
	Lo, Hi float64
	N      int
}

// Step returns the grid spacing.
func (a Axis) Step() float64 {
	if a.N <= 1 {
		return 0
	}
	return (a.Hi - a.Lo) / float64(a.N-1)
}

// locate returns the lower grid index and the fractional offset for value v,
// clamped to the axis range (flat extrapolation).
func (a Axis) locate(v float64) (int, float64) {
	if a.N <= 1 {
		return 0, 0
	}
	t := (v - a.Lo) / (a.Hi - a.Lo) * float64(a.N-1)
	if t <= 0 {
		return 0, 0
	}
	if t >= float64(a.N-1) {
		return a.N - 2, 1
	}
	i := int(t)
	if i > a.N-2 {
		i = a.N - 2
	}
	return i, t - float64(i)
}

// Table is a 4-D characterisation table ID(VCG, VPGS, VPGD, VDS) with
// multilinear interpolation, plus the parasitics of the compact model.
type Table struct {
	CG, PGS, PGD, DS Axis
	// ID is indexed [icg][ipgs][ipgd][ids] flattened.
	ID []float64

	CGate float64 // per-gate capacitance (F)
	CPar  float64 // drain/source parasitic capacitance (F)
	RAcc  float64 // access resistance (Ohm)
}

// DeviceFunc is any ID(vcg, vpgs, vpgd, vds) evaluator; internal/device
// models satisfy it through a small adapter.
type DeviceFunc func(vcg, vpgs, vpgd, vds float64) float64

// Build samples f over the four axes and returns the table.
func Build(cg, pgs, pgd, ds Axis, f DeviceFunc) (*Table, error) {
	for _, a := range []Axis{cg, pgs, pgd, ds} {
		if a.N < 2 {
			return nil, errors.New("lut: every axis needs at least 2 points")
		}
		if !(a.Hi > a.Lo) {
			return nil, fmt.Errorf("lut: axis range [%v,%v] invalid", a.Lo, a.Hi)
		}
	}
	t := &Table{CG: cg, PGS: pgs, PGD: pgd, DS: ds}
	t.ID = make([]float64, cg.N*pgs.N*pgd.N*ds.N)
	idx := 0
	for i := 0; i < cg.N; i++ {
		vcg := cg.Lo + cg.Step()*float64(i)
		for j := 0; j < pgs.N; j++ {
			vpgs := pgs.Lo + pgs.Step()*float64(j)
			for k := 0; k < pgd.N; k++ {
				vpgd := pgd.Lo + pgd.Step()*float64(k)
				for l := 0; l < ds.N; l++ {
					vds := ds.Lo + ds.Step()*float64(l)
					t.ID[idx] = f(vcg, vpgs, vpgd, vds)
					idx++
				}
			}
		}
	}
	return t, nil
}

func (t *Table) at(i, j, k, l int) float64 {
	return t.ID[((i*t.PGS.N+j)*t.PGD.N+k)*t.DS.N+l]
}

// Lookup returns the multilinearly interpolated drain current. Voltages
// outside the table range are clamped (flat extrapolation), which keeps
// Newton iterations bounded.
func (t *Table) Lookup(vcg, vpgs, vpgd, vds float64) float64 {
	i, fi := t.CG.locate(vcg)
	j, fj := t.PGS.locate(vpgs)
	k, fk := t.PGD.locate(vpgd)
	l, fl := t.DS.locate(vds)

	var acc float64
	for di := 0; di < 2; di++ {
		wi := 1 - fi
		if di == 1 {
			wi = fi
		}
		if wi == 0 {
			continue
		}
		for dj := 0; dj < 2; dj++ {
			wj := 1 - fj
			if dj == 1 {
				wj = fj
			}
			if wj == 0 {
				continue
			}
			for dk := 0; dk < 2; dk++ {
				wk := 1 - fk
				if dk == 1 {
					wk = fk
				}
				if wk == 0 {
					continue
				}
				for dl := 0; dl < 2; dl++ {
					wl := 1 - fl
					if dl == 1 {
						wl = fl
					}
					if wl == 0 {
						continue
					}
					acc += wi * wj * wk * wl * t.at(i+di, j+dj, k+dk, l+dl)
				}
			}
		}
	}
	return acc
}

// MaxAbsError samples f on a denser grid (midpoints included) and returns
// the worst absolute interpolation error, used to validate table fidelity.
func (t *Table) MaxAbsError(f DeviceFunc, samplesPerAxis int) float64 {
	if samplesPerAxis < 2 {
		samplesPerAxis = 2
	}
	worst := 0.0
	sample := func(a Axis, s int) float64 {
		return a.Lo + (a.Hi-a.Lo)*float64(s)/float64(samplesPerAxis-1)
	}
	for i := 0; i < samplesPerAxis; i++ {
		vcg := sample(t.CG, i)
		for j := 0; j < samplesPerAxis; j++ {
			vpgs := sample(t.PGS, j)
			for k := 0; k < samplesPerAxis; k++ {
				vpgd := sample(t.PGD, k)
				for l := 0; l < samplesPerAxis; l++ {
					vds := sample(t.DS, l)
					e := math.Abs(t.Lookup(vcg, vpgs, vpgd, vds) - f(vcg, vpgs, vpgd, vds))
					if e > worst {
						worst = e
					}
				}
			}
		}
	}
	return worst
}
