package lut

import (
	"math"
	"testing"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/spice"
)

func TestFromModelSourceReference(t *testing.T) {
	m := device.Default()
	dev, err := FromModel(m, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Shifting every terminal by the same offset must not change the
	// current (translation invariance carried into the table).
	b := device.Bias{VCG: 1.0, VPGS: 1.1, VPGD: 0.9, VD: 0.8, VS: 0}
	shift := device.Bias{VCG: 1.0 + 0.2, VPGS: 1.1 + 0.2, VPGD: 0.9 + 0.2, VD: 0.8 + 0.2, VS: 0.2}
	if d := math.Abs(dev.ID(b) - dev.ID(shift)); d > 1e-15 {
		t.Errorf("translation invariance broken: %g", d)
	}
	// Gate currents are zero by construction.
	if a, b2, c := dev.GateCurrents(b); a != 0 || b2 != 0 || c != 0 {
		t.Error("table device must not inject gate current")
	}
}

func TestTableDeviceTracksCompactModel(t *testing.T) {
	m := device.Default()
	dev, err := FromModel(m, 17)
	if err != nil {
		t.Fatal(err)
	}
	onRef := m.IDSat()
	for _, b := range []device.Bias{
		{VCG: 1.2, VPGS: 1.2, VPGD: 1.2, VD: 1.2},
		{VCG: 0.6, VPGS: 1.2, VPGD: 1.2, VD: 1.2},
		{VCG: 0, VPGS: 0, VPGD: 0, VD: 0, VS: 1.2},
		{VCG: 1.2, VPGS: 1.2, VPGD: 1.2, VD: 0.3},
	} {
		want := m.ID(b)
		got := dev.ID(b)
		if math.Abs(got-want) > 0.15*onRef {
			t.Errorf("bias %+v: table %.3g vs model %.3g", b, got, want)
		}
	}
}

// TestTwoStepFlowInverter reproduces the paper's simulation methodology:
// characterise the device into a table, then run the circuit simulation
// on the table model, and compare against the direct compact-model run.
func TestTwoStepFlowInverter(t *testing.T) {
	m := device.Default()
	vdd := m.P.VDD
	table, err := FromModel(m, 21)
	if err != nil {
		t.Fatal(err)
	}

	build := func(useTable bool) *circuit.Netlist {
		n := &circuit.Netlist{Title: "inv"}
		n.AddV("VDD", "vdd", circuit.Ground, circuit.DC(vdd))
		n.AddV("VIN", "in", circuit.Ground, circuit.Pulse{
			V0: 0, V1: vdd, Delay: 200e-12, Rise: 20e-12, Fall: 20e-12,
			Width: 800e-12, Period: 1600e-12,
		})
		var model circuit.DeviceModel = m
		if useTable {
			model = table
		}
		n.AddM("MPU", "out", "in", circuit.Ground, circuit.Ground, "vdd", model)
		n.AddM("MPD", "out", "in", "vdd", "vdd", circuit.Ground, model)
		n.AddC("CL", "out", circuit.Ground, 2e-16)
		return n
	}

	measure := func(useTable bool) (tphl, tplh float64) {
		t.Helper()
		e, err := spice.NewEngine(build(useTable), spice.Options{})
		if err != nil {
			t.Fatal(err)
		}
		wf, err := e.Tran(1e-12, 1.6e-9, []string{"in", "out"})
		if err != nil {
			t.Fatal(err)
		}
		tphl, err = spice.PropDelay(wf, "in", "out", vdd, true, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		tplh, err = spice.PropDelay(wf, "in", "out", vdd, false, true, 900e-12)
		if err != nil {
			t.Fatal(err)
		}
		return tphl, tplh
	}

	hlModel, lhModel := measure(false)
	hlTable, lhTable := measure(true)
	if rel(hlTable, hlModel) > 0.25 {
		t.Errorf("tpHL: table %.3g vs model %.3g", hlTable, hlModel)
	}
	if rel(lhTable, lhModel) > 0.25 {
		t.Errorf("tpLH: table %.3g vs model %.3g", lhTable, lhModel)
	}
}

func rel(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}

func TestFromModelMinimumGrid(t *testing.T) {
	if _, err := FromModel(device.Default(), 1); err != nil {
		t.Fatalf("minimum grid rejected: %v", err)
	}
}
