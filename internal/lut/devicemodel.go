package lut

import (
	"fmt"

	"cpsinw/internal/device"
)

// Device adapts a characterisation table to the circuit simulator's
// DeviceModel interface — the reproduction of the paper's simulation
// flow, where TCAD results feed a Verilog-A lookup-table model that
// HSPICE then evaluates ("the result of the TCAD simulations ... makes a
// look-up table model that characterizing the channel conductivity as a
// function of VCG, VPGS and VPGD", paper section III-D).
//
// The table is source-referenced: lookups shift every terminal voltage by
// -VS, which is exact for the translation-invariant compact model the
// table samples. Gate currents are zero (the table characterises channel
// conduction; defect injection paths stay with the compact model).
type Device struct {
	T *Table
}

// FromModel characterises a compact model into a table-backed device.
// Gate axes span the full source-referenced offset range [-VDD, +VDD]
// (a p-configured pull-up sees gate-source offsets of -VDD); the VDS axis
// covers only VDS >= 0 because lookups exploit the device's drain/source
// antisymmetry. n sets the VDS grid density; gate axes get 2n-1 points.
func FromModel(m *device.Model, n int) (*Device, error) {
	if n < 5 {
		n = 5
	}
	vdd := m.P.VDD
	margin := 0.15 * vdd
	gateAxis := Axis{Lo: -vdd - margin, Hi: vdd + margin, N: 2*n - 1}
	dsAxis := Axis{Lo: 0, Hi: vdd + margin, N: n}
	tbl, err := Build(gateAxis, gateAxis, gateAxis, dsAxis, func(vcg, vpgs, vpgd, vds float64) float64 {
		return m.ID(device.Bias{VCG: vcg, VPGS: vpgs, VPGD: vpgd, VD: vds})
	})
	if err != nil {
		return nil, fmt.Errorf("lut: characterisation failed: %w", err)
	}
	tbl.CGate = m.C.CGate
	tbl.CPar = m.C.CPar
	tbl.RAcc = m.C.RAcc
	return &Device{T: tbl}, nil
}

// ID implements circuit.DeviceModel by source-referenced interpolation.
// Reverse-biased lookups (VD < VS) use the physical mirror symmetry:
// swapping drain and source together with the two polarity gates negates
// the current.
func (d *Device) ID(b device.Bias) float64 {
	if b.VD >= b.VS {
		return d.T.Lookup(b.VCG-b.VS, b.VPGS-b.VS, b.VPGD-b.VS, b.VD-b.VS)
	}
	return -d.T.Lookup(b.VCG-b.VD, b.VPGD-b.VD, b.VPGS-b.VD, b.VS-b.VD)
}

// GateCurrents implements circuit.DeviceModel; the table model carries no
// gate-injection paths.
func (d *Device) GateCurrents(device.Bias) (icg, ipgs, ipgd float64) {
	return 0, 0, 0
}
