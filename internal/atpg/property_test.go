package atpg

import (
	"testing"
	"testing/quick"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// TestPODEMSoundnessProperty: on random circuits, every test PODEM
// generates must actually detect its fault under independent fault
// simulation, and every fault PODEM declares untestable must also be
// undetectable by exhaustive simulation (completeness on small circuits).
func TestPODEMSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := bench.Random(seed%1000, 5, 12)
		faults := core.Universe(c, core.ClassicalOnly())
		sim := faultsim.New(c)
		exhaustive := faultsim.ExhaustivePatterns(c)
		for _, fault := range faults {
			pat, ok := GenerateStuckAt(c, fault, Options{})
			if ok {
				ds := sim.RunStuckAt([]core.Fault{fault}, []faultsim.Pattern{pat})
				if !ds[0].Detected() {
					t.Logf("seed %d: unsound test for %v", seed, fault)
					return false
				}
			} else {
				ds := sim.RunStuckAt([]core.Fault{fault}, exhaustive)
				if ds[0].Detected() {
					t.Logf("seed %d: incomplete for testable %v", seed, fault)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// TestPolarityATPGSoundnessProperty: generated polarity tests must detect
// their faults under the matching observation method.
func TestPolarityATPGSoundnessProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := bench.Random(seed%1000, 5, 10)
		faults := core.Universe(c, core.UniverseOptions{Polarity: true})
		sim := faultsim.New(c)
		for _, fault := range faults {
			pt, ok := GeneratePolarity(c, fault, Options{})
			if !ok {
				continue
			}
			useIDDQ := pt.Method == faultsim.ByIDDQ
			ds, err := sim.RunTransistor([]core.Fault{fault}, []faultsim.Pattern{pt.Pattern}, useIDDQ)
			if err != nil {
				t.Log(err)
				return false
			}
			if !ds[0].Detected() {
				t.Logf("seed %d: polarity test for %v does not detect (method %v)", seed, fault, pt.Method)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestCBPlanVerdictProperty: the channel-break procedure must separate
// healthy from broken devices on every DP transistor of random circuits.
func TestCBPlanVerdictProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := bench.Random(seed%1000, 5, 8)
		faults := core.Universe(c, core.UniverseOptions{ChannelBreak: true})
		for _, fault := range faults {
			plan, ok := GenerateChannelBreakDP(c, fault, Options{})
			if !ok {
				continue
			}
			healthy, broken, err := VerifyChannelBreakPlan(c, plan)
			if err != nil {
				t.Log(err)
				return false
			}
			if !healthy || broken {
				t.Logf("seed %d: verdict fails for %v (healthy=%v broken=%v)", seed, fault, healthy, broken)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestProgramGoldenPassProperty: the assembled tester program must pass a
// golden device on random circuits (no overkill).
func TestProgramGoldenPassProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := bench.Random(seed%1000, 4, 8)
		universe := core.Universe(c, core.UniverseOptions{
			LineStuckAt: true, ChannelBreak: true, Polarity: true,
		})
		res := Generate(c, universe, Options{})
		p := BuildProgram(c, res)
		v := Execute(p, nil)
		if !v.Pass {
			t.Logf("seed %d: golden device fails: %s", seed, v.FailReason)
		}
		return v.Pass
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestJustifyProperty: a justified goal must hold under plain simulation.
func TestJustifyProperty(t *testing.T) {
	f := func(seed int64, pick uint8, bit bool) bool {
		c := bench.Random(seed%1000, 5, 10)
		nets := c.Nets()
		net := nets[int(pick)%len(nets)]
		want := logic.FromBool(bit)
		pat, ok := Justify(c, map[string]logic.V{net: want}, Options{})
		if !ok {
			return true // possibly unsatisfiable; completeness checked elsewhere
		}
		vals := c.Eval(map[string]logic.V(pat))
		return vals[net] == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
