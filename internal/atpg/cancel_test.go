package atpg

import (
	"context"
	"errors"
	"testing"

	"cpsinw/internal/core"
)

// TestGenerateContextCancelMidChannelBreak cancels the campaign from the
// progress callback once the channel-break class is underway — the shape
// of a service per-job deadline landing during the two-pattern phase.
// GenerateContext must stop between faults, return the context error,
// and hand back the partial accounting instead of losing it; the
// context-threaded two-pattern drop passes must not mask the
// cancellation.
func TestGenerateContextCancelMidChannelBreak(t *testing.T) {
	c := parse(t, mixedCircuit)
	faults := core.Universe(c, core.UniverseOptions{ChannelBreak: true})
	if len(faults) < 2 {
		t.Fatalf("campaign needs >= 2 channel breaks, have %d", len(faults))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lastDone := -1
	res, err := GenerateContext(ctx, c, faults, Options{Progress: func(p Progress) {
		if p.Class == "channel_break" {
			lastDone = p.Done
			if p.Done >= 1 {
				cancel()
			}
		}
	}})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result returned on cancellation")
	}
	if lastDone < 1 || lastDone >= len(faults) {
		t.Errorf("canceled after %d/%d channel breaks, want mid-class", lastDone, len(faults))
	}
}
