package atpg

import (
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// The generation campaign drops faults through the simulator selected
// by Options.Engine; since the engines are differentially proven
// bit-identical, the whole CampaignResult — per-class coverage,
// generated pattern counts, untestable list — must not depend on the
// engine choice.
func TestGenerateEngineParity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	circuits := []*logic.Circuit{
		bench.C17(),
		bench.FullAdderCP(),
		bench.Random(rng.Int63(), 5, 18),
		bench.Random(rng.Int63(), 6, 25),
	}
	for _, c := range circuits {
		universe := core.Universe(c, core.UniverseOptions{
			LineStuckAt: true, ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		ref := Generate(c, universe, Options{Engine: faultsim.EngineReference})
		for _, eng := range []faultsim.Engine{faultsim.EngineCompiled, faultsim.EnginePacked} {
			got := Generate(c, universe, Options{Engine: eng})
			if got.StuckAtCovered != ref.StuckAtCovered ||
				got.PolarityCovered != ref.PolarityCovered ||
				got.CBSPCovered != ref.CBSPCovered ||
				got.CBDPCovered != ref.CBDPCovered ||
				got.Coverage() != ref.Coverage() {
				t.Errorf("%s/%v: coverage drift: got %+v, reference %+v", c.Name, eng, got, ref)
			}
			if len(got.Set.Patterns) != len(ref.Set.Patterns) ||
				len(got.Set.IDDQPatterns) != len(ref.Set.IDDQPatterns) ||
				len(got.Set.TwoPattern) != len(ref.Set.TwoPattern) ||
				len(got.Set.CBPlans) != len(ref.Set.CBPlans) {
				t.Errorf("%s/%v: test-set drift: %d/%d/%d/%d vs %d/%d/%d/%d",
					c.Name, eng,
					len(got.Set.Patterns), len(got.Set.IDDQPatterns), len(got.Set.TwoPattern), len(got.Set.CBPlans),
					len(ref.Set.Patterns), len(ref.Set.IDDQPatterns), len(ref.Set.TwoPattern), len(ref.Set.CBPlans))
			}
			if len(got.Untestable) != len(ref.Untestable) {
				t.Errorf("%s/%v: untestable drift: %d vs %d", c.Name, eng, len(got.Untestable), len(ref.Untestable))
			}
		}
	}
}
