// Package atpg implements test generation for controllable-polarity
// circuits: a PODEM engine over the gate library (5-valued reasoning via
// good/faulty pair simulation), stuck-at and polarity-fault test
// generation, IDDQ justification for the leak-only faults, classical
// two-pattern stuck-open test generation for SP gates, and the paper's
// new channel-break detection procedure for DP gates (section V-C).
package atpg

import (
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Options bounds the search.
type Options struct {
	MaxBacktracks int // per PODEM attempt (default 4096)
	// Engine selects the fault-simulation engine the campaign uses for
	// fault dropping and verification (default: the compiled engine).
	Engine faultsim.Engine
	// Progress, when set, receives a snapshot after every per-fault
	// generation attempt of GenerateContext. Calls are made from the
	// generating goroutine; the callback must not call back into the
	// campaign.
	Progress ProgressFunc
}

func (o Options) withDefaults() Options {
	if o.MaxBacktracks <= 0 {
		o.MaxBacktracks = 4096
	}
	return o
}

// goal is one (net, value) justification requirement evaluated on the
// good circuit.
type goal struct {
	net string
	val logic.V
}

// podem is one search instance.
type podem struct {
	c         *logic.Circuit
	opt       Options
	hooks     logic.TernaryHooks
	goals     []goal
	propagate bool // require a PO difference (false: justification only)
	faultGate int  // gate index whose evaluation embeds the fault (-1: none)

	assign     map[string]logic.V
	decisions  []decision
	backtracks int
}

type decision struct {
	pi        string
	value     logic.V
	triedBoth bool
}

type implyState struct {
	good   map[string]logic.V
	faulty map[string]logic.V
}

func (p *podem) imply() implyState {
	good := p.c.Eval(p.assign)
	var faulty map[string]logic.V
	if p.propagate {
		faulty = p.c.EvalHooked(p.assign, p.hooks)
	} else {
		faulty = good
	}
	return implyState{good: good, faulty: faulty}
}

// detected reports a definite PO difference.
func (p *podem) detected(st implyState) bool {
	for _, po := range p.c.Outputs {
		g, gok := st.good[po].Bool()
		f, fok := st.faulty[po].Bool()
		if gok && fok && g != f {
			return true
		}
	}
	return false
}

// goalsState classifies the justification goals: satisfied, pending
// (X nets remain), or conflicting.
type goalsState int

const (
	goalsSatisfied goalsState = iota
	goalsPending
	goalsConflict
)

func (p *podem) goalsStatus(st implyState) (goalsState, *goal) {
	pendingSeen := false
	var pending *goal
	for i := range p.goals {
		g := &p.goals[i]
		v := st.good[g.net]
		switch v {
		case g.val:
			continue
		case logic.LX:
			if !pendingSeen {
				pending = g
				pendingSeen = true
			}
		default:
			return goalsConflict, nil
		}
	}
	if pendingSeen {
		return goalsPending, pending
	}
	return goalsSatisfied, nil
}

// frontierObjective picks a propagation objective from the D-frontier:
// a gate with a fault effect on an input whose output is still X, plus an
// X input of that gate to define.
func (p *podem) frontierObjective(st implyState) (goal, bool) {
	for _, gi := range p.c.Levelized() {
		g := &p.c.Gates[gi]
		outG, outF := st.good[g.Output], st.faulty[g.Output]
		if outG != logic.LX && outF != logic.LX {
			continue // output settled in both circuits: masked or propagated
		}
		// The fault-site gate carries the effect by construction: pin
		// forcing and behaviour overrides are invisible on the input nets.
		hasEffect := gi == p.faultGate
		for _, f := range g.Fanin {
			a, aok := st.good[f].Bool()
			b, bok := st.faulty[f].Bool()
			if aok && bok && a != b {
				hasEffect = true
				break
			}
		}
		if !hasEffect {
			continue
		}
		for _, f := range g.Fanin {
			if st.good[f] == logic.LX {
				return goal{net: f, val: nonControlling(g.Kind)}, true
			}
		}
	}
	return goal{}, false
}

// nonControlling returns the side-input value that lets a gate propagate.
func nonControlling(k gates.Kind) logic.V {
	switch k {
	case gates.NAND2, gates.NAND3:
		return logic.L1
	case gates.NOR2, gates.NOR3:
		return logic.L0
	default:
		return logic.L0 // XOR/MAJ: either value can work; search covers both
	}
}

// backtrace walks an objective back to an unassigned primary input.
func (p *podem) backtrace(obj goal, st implyState) (string, logic.V, bool) {
	net, val := obj.net, obj.val
	for depth := 0; depth < len(p.c.Gates)+len(p.c.Inputs)+1; depth++ {
		d, ok := p.c.Driver(net)
		if !ok {
			return "", logic.LX, false
		}
		if d < 0 { // primary input
			if _, assigned := p.assign[net]; assigned {
				return "", logic.LX, false
			}
			return net, val, true
		}
		g := &p.c.Gates[d]
		next := ""
		for _, f := range g.Fanin {
			if st.good[f] == logic.LX {
				next = f
				break
			}
		}
		if next == "" {
			return "", logic.LX, false
		}
		if inverting(g.Kind) {
			val = val.Not()
		}
		net = next
	}
	return "", logic.LX, false
}

func inverting(k gates.Kind) bool {
	switch k {
	case gates.INV, gates.NAND2, gates.NAND3, gates.NOR2, gates.NOR3:
		return true
	}
	return false
}

// run searches for an assignment meeting the goals (and the propagation
// requirement when set). Returns the PI pattern or ok=false.
func (p *podem) run() (faultsim.Pattern, bool) {
	if p.assign == nil {
		p.assign = map[string]logic.V{}
	}
	for {
		st := p.imply()
		// A definite PO difference between the good and faulty ternary
		// simulations is sound regardless of remaining X nets.
		if p.propagate && p.detected(st) {
			return p.extractPattern(), true
		}
		gs, pendingGoal := p.goalsStatus(st)
		if !p.propagate && gs == goalsSatisfied {
			return p.extractPattern(), true
		}
		dead := gs == goalsConflict

		if !dead {
			var obj goal
			var haveObj bool
			if gs == goalsPending {
				obj, haveObj = *pendingGoal, true
			} else if p.propagate {
				obj, haveObj = p.frontierObjective(st)
			}
			if !haveObj {
				dead = true
			} else {
				pi, val, ok := p.backtrace(obj, st)
				if !ok {
					dead = true
				} else {
					p.decisions = append(p.decisions, decision{pi: pi, value: val})
					p.assign[pi] = val
					continue
				}
			}
		}

		// Backtrack.
		for {
			if len(p.decisions) == 0 {
				return nil, false
			}
			p.backtracks++
			if p.backtracks > p.opt.MaxBacktracks {
				return nil, false
			}
			last := &p.decisions[len(p.decisions)-1]
			if !last.triedBoth {
				last.triedBoth = true
				last.value = last.value.Not()
				p.assign[last.pi] = last.value
				break
			}
			delete(p.assign, last.pi)
			p.decisions = p.decisions[:len(p.decisions)-1]
		}
	}
}

// extractPattern freezes the current assignment into a full pattern
// (unassigned inputs default to 0 for determinism).
func (p *podem) extractPattern() faultsim.Pattern {
	out := faultsim.Pattern{}
	for _, pi := range p.c.Inputs {
		if v, ok := p.assign[pi]; ok && v != logic.LX {
			out[pi] = v
		} else {
			out[pi] = logic.L0
		}
	}
	return out
}

// lineFaultHooks builds the faulty-circuit hooks for a stuck-at fault.
func lineFaultHooks(f core.Fault) logic.TernaryHooks {
	force := logic.L0
	if f.Kind == core.FaultSA1 {
		force = logic.L1
	}
	if f.Pin >= 0 {
		return logic.TernaryHooks{Pin: func(gi, pin int, v logic.V) logic.V {
			if gi == f.GateIdx && pin == f.Pin {
				return force
			}
			return v
		}}
	}
	return logic.TernaryHooks{Stem: func(net string, v logic.V) logic.V {
		if net == f.Net {
			return force
		}
		return v
	}}
}

// GenerateStuckAt runs PODEM for one line stuck-at fault. The returned
// pattern is guaranteed (by construction) to produce a PO difference.
func GenerateStuckAt(c *logic.Circuit, f core.Fault, opt Options) (faultsim.Pattern, bool) {
	if !f.Kind.IsLineFault() {
		return nil, false
	}
	activation := logic.L1
	if f.Kind == core.FaultSA1 {
		activation = logic.L0
	}
	p := &podem{
		c:         c,
		opt:       opt.withDefaults(),
		hooks:     lineFaultHooks(f),
		goals:     []goal{{net: f.Net, val: activation}},
		propagate: true,
		faultGate: -1,
	}
	if f.Pin >= 0 {
		p.faultGate = f.GateIdx
	}
	return p.run()
}

// Justify finds a PI pattern that sets the given nets to the given values
// in the fault-free circuit (used for IDDQ test generation, where
// observation is global and only the excitation needs justification).
func Justify(c *logic.Circuit, goals map[string]logic.V, opt Options) (faultsim.Pattern, bool) {
	p := &podem{c: c, opt: opt.withDefaults(), propagate: false, faultGate: -1}
	for net, val := range goals {
		p.goals = append(p.goals, goal{net: net, val: val})
	}
	return p.run()
}
