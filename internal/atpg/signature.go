package atpg

import (
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// Signature is the full response of a device to a program: the sorted set
// of failing step indices. Diagnosis matches observed signatures against
// a fault dictionary.
type Signature []int

// Equal reports whether two signatures are identical.
func (s Signature) Equal(o Signature) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Jaccard returns the Jaccard similarity of two signatures (1 for equal
// non-empty sets, 0 for disjoint).
func (s Signature) Jaccard(o Signature) float64 {
	if len(s) == 0 && len(o) == 0 {
		return 1
	}
	inter := 0
	i, j := 0, 0
	for i < len(s) && j < len(o) {
		switch {
		case s[i] == o[j]:
			inter++
			i++
			j++
		case s[i] < o[j]:
			i++
		default:
			j++
		}
	}
	union := len(s) + len(o) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// ExecuteAll runs every step of the program against the device (it does
// not stop at the first failure) and returns the failure signature.
func ExecuteAll(p *Program, fault *core.Fault) Signature {
	dut := &dutState{c: p.Circuit, fault: fault}
	var sig Signature
	for i, step := range p.Steps {
		fail := false
		switch step.Kind {
		case StepLogic:
			got, _ := dut.eval(step.Pattern, -1, "", logic.TFaultNone, false)
			_, fail = mismatch(p.Circuit, got, step.Expect)
		case StepTwoPattern:
			dut.prev = map[int]map[string]logic.V{}
			dut.eval(step.Init, -1, "", logic.TFaultNone, true)
			got, _ := dut.eval(step.Pattern, -1, "", logic.TFaultNone, true)
			_, fail = mismatch(p.Circuit, got, step.Expect)
		case StepIDDQ:
			_, leak := dut.eval(step.Pattern, -1, "", logic.TFaultNone, false)
			fail = leak
		case StepCBProcedure:
			gi := gateIndexOf(p.Circuit, step.CBGate)
			got, leak := dut.eval(step.Pattern, gi, step.CBTransistor, step.CBInjection, false)
			var manifest bool
			if step.CBObserve == faultsim.ByIDDQ {
				manifest = leak
			} else {
				_, manifest = mismatch(p.Circuit, got, step.Expect)
			}
			fail = !manifest
		}
		if fail {
			sig = append(sig, i)
		}
	}
	return sig
}
