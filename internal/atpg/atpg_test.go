package atpg

import (
	"strings"
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

func parse(t *testing.T, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseBench("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const mixedCircuit = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
n1 = NAND(a, b)
n2 = NOR(c, d)
n3 = XOR(n1, n2)
n4 = MAJ(n1, n2, c)
y  = NAND(n3, n4)
z  = NOT(n4)
`

func TestGenerateStuckAtAllDetected(t *testing.T) {
	// ATPG soundness + completeness on an irredundant circuit: every
	// generated test must actually detect its fault (verified by
	// independent fault simulation).
	c := parse(t, mixedCircuit)
	faults := core.Universe(c, core.ClassicalOnly())
	sim := faultsim.New(c)
	generated := 0
	for _, f := range faults {
		pat, ok := GenerateStuckAt(c, f, Options{})
		if !ok {
			// Cross-check: exhaustive simulation must also fail to
			// detect it (true redundancy, not ATPG weakness).
			ds := sim.RunStuckAt([]core.Fault{f}, faultsim.ExhaustivePatterns(c))
			if ds[0].Detected() {
				t.Errorf("fault %v: ATPG gave up but the fault is testable", f)
			}
			continue
		}
		generated++
		ds := sim.RunStuckAt([]core.Fault{f}, []faultsim.Pattern{pat})
		if !ds[0].Detected() {
			t.Errorf("fault %v: generated pattern %v does not detect it", f, pat)
		}
	}
	if generated == 0 {
		t.Fatal("no tests generated")
	}
}

func TestJustify(t *testing.T) {
	c := parse(t, mixedCircuit)
	pat, ok := Justify(c, map[string]logic.V{"n1": logic.L0, "n2": logic.L0}, Options{})
	if !ok {
		t.Fatal("justification failed")
	}
	vals := c.Eval(map[string]logic.V(pat))
	if vals["n1"] != logic.L0 || vals["n2"] != logic.L0 {
		t.Errorf("justified values: n1=%v n2=%v", vals["n1"], vals["n2"])
	}
	// Impossible goal: NAND output 0 requires both inputs 1; with a=0 it
	// must fail.
	if _, ok := Justify(c, map[string]logic.V{"a": logic.L0, "b": logic.L1, "n1": logic.L0}, Options{}); ok {
		t.Error("impossible justification succeeded")
	}
}

func TestGeneratePolarityXOR2(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	g := c.Gates[0].Name
	// Pull-up faults must come back as IDDQ tests, pull-down stuck-at-n
	// as voltage tests (Table III split).
	for _, tr := range []string{"t1", "t2"} {
		for _, k := range []core.FaultKind{core.FaultStuckAtN, core.FaultStuckAtP} {
			pt, ok := GeneratePolarity(c, core.Fault{Kind: k, Gate: g, Transistor: tr}, Options{})
			if !ok {
				t.Fatalf("%s/%v: no test", tr, k)
			}
			if pt.Method != faultsim.ByIDDQ {
				t.Errorf("%s/%v: method %v, want iddq", tr, k, pt.Method)
			}
		}
	}
	for _, tr := range []string{"t3", "t4"} {
		pt, ok := GeneratePolarity(c, core.Fault{Kind: core.FaultStuckAtN, Gate: g, Transistor: tr}, Options{})
		if !ok {
			t.Fatalf("%s: no test", tr)
		}
		if pt.Method != faultsim.ByOutput {
			t.Errorf("%s: method %v, want output", tr, pt.Method)
		}
		// The voltage test must really detect it.
		ds, err := faultsim.New(c).RunTransistor(
			[]core.Fault{{Kind: core.FaultStuckAtN, Gate: g, Transistor: tr}},
			[]faultsim.Pattern{pt.Pattern}, false)
		if err != nil {
			t.Fatal(err)
		}
		if !ds[0].Detected() {
			t.Errorf("%s: generated voltage test does not detect", tr)
		}
	}
}

func TestGeneratePolarityDeepCircuit(t *testing.T) {
	// The fault sits deep in the circuit: activation requires
	// justification through NAND/NOR logic and propagation through XOR.
	c := parse(t, mixedCircuit)
	var xorGate string
	for _, g := range c.Gates {
		if g.Kind == gates.XOR2 {
			xorGate = g.Name
		}
	}
	for _, tr := range []string{"t3", "t4"} {
		f := core.Fault{Kind: core.FaultStuckAtN, Gate: xorGate, Transistor: tr}
		pt, ok := GeneratePolarity(c, f, Options{})
		if !ok {
			t.Fatalf("%s: no test generated", tr)
		}
		if pt.Method == faultsim.ByOutput {
			ds, err := faultsim.New(c).RunTransistor([]core.Fault{f}, []faultsim.Pattern{pt.Pattern}, false)
			if err != nil {
				t.Fatal(err)
			}
			if !ds[0].Detected() {
				t.Errorf("%s: test does not detect", tr)
			}
		}
	}
}

func TestGenerateTwoPatternNAND(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	g := c.Gates[0].Name
	sim := faultsim.New(c)
	for _, tr := range []string{"t1", "t2", "t3", "t4"} {
		f := core.Fault{Kind: core.FaultChannelBreak, Gate: g, Transistor: tr}
		tp, ok := GenerateTwoPattern(c, f, Options{})
		if !ok {
			t.Fatalf("%s: no two-pattern test", tr)
		}
		ds, err := sim.RunTwoPattern([]core.Fault{f}, [][2]faultsim.Pattern{{tp.Init, tp.Test}})
		if err != nil {
			t.Fatal(err)
		}
		if !ds[0].Detected() {
			t.Errorf("%s: generated two-pattern test (%v -> %v) does not detect", tr, tp.Init, tp.Test)
		}
	}
}

func TestChannelBreakPlanXOR2(t *testing.T) {
	// The paper's procedure: for every transistor of the DP XOR2 a plan
	// must exist, and it must separate healthy from broken devices.
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	g := c.Gates[0].Name
	for _, tr := range []string{"t1", "t2", "t3", "t4"} {
		f := core.Fault{Kind: core.FaultChannelBreak, Gate: g, Transistor: tr}
		plan, ok := GenerateChannelBreakDP(c, f, Options{})
		if !ok {
			t.Fatalf("%s: no channel-break plan", tr)
		}
		healthy, broken, err := VerifyChannelBreakPlan(c, plan)
		if err != nil {
			t.Fatal(err)
		}
		if !healthy {
			t.Errorf("%s: healthy device shows no signature (plan %+v)", tr, plan)
		}
		if broken {
			t.Errorf("%s: broken device still shows the signature — verdict cannot separate", tr)
		}
	}
}

func TestChannelBreakPlanAllDPGates(t *testing.T) {
	// Extend the procedure across XOR3 and MAJ gates in a small circuit.
	c := parse(t, `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(s)
OUTPUT(q)
s = XOR(a, b, c)
q = MAJ(a, b, c)
`)
	for _, g := range c.Gates {
		spec := gates.Get(g.Kind)
		for _, tr := range spec.Transistors {
			f := core.Fault{Kind: core.FaultChannelBreak, Gate: g.Name, Transistor: tr.Name}
			plan, ok := GenerateChannelBreakDP(c, f, Options{})
			if !ok {
				t.Errorf("%s/%s: no plan", g.Name, tr.Name)
				continue
			}
			healthy, broken, err := VerifyChannelBreakPlan(c, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !healthy || broken {
				t.Errorf("%s/%s: verdict fails (healthy=%v broken=%v)", g.Name, tr.Name, healthy, broken)
			}
		}
	}
}

func TestGenerateDPPlanRejectsSPGate(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	f := core.Fault{Kind: core.FaultChannelBreak, Gate: c.Gates[0].Name, Transistor: "t1"}
	if _, ok := GenerateChannelBreakDP(c, f, Options{}); ok {
		t.Error("DP procedure accepted an SP gate")
	}
}

func TestCampaignMixedCircuit(t *testing.T) {
	c := parse(t, mixedCircuit)
	faults := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	res := Generate(c, faults, Options{})
	if res.Coverage() < 95 {
		t.Errorf("campaign coverage %.1f%%, untestable: %v", res.Coverage(), res.Untestable)
	}
	if res.StuckAtCovered == 0 || res.PolarityCovered == 0 {
		t.Errorf("campaign classes empty: %+v", res)
	}
	if res.CBDPTargeted == 0 || res.CBDPCovered != res.CBDPTargeted {
		t.Errorf("DP channel-break coverage: %d/%d", res.CBDPCovered, res.CBDPTargeted)
	}
	if res.Set.TotalVectors() == 0 {
		t.Error("empty test set")
	}
}

func TestCompactPatterns(t *testing.T) {
	c := parse(t, mixedCircuit)
	faults := core.Universe(c, core.ClassicalOnly())
	// Generate with duplicates to give compaction something to remove.
	var pats []faultsim.Pattern
	for _, f := range faults {
		if pat, ok := GenerateStuckAt(c, f, Options{}); ok {
			pats = append(pats, pat, pat)
		}
	}
	before := faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, pats)).Detected
	compacted := CompactPatterns(c, faults, pats)
	after := faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, compacted)).Detected
	if after != before {
		t.Errorf("compaction lost coverage: %d -> %d", before, after)
	}
	if len(compacted) >= len(pats) {
		t.Errorf("compaction removed nothing: %d -> %d", len(pats), len(compacted))
	}
}

func TestGenerateStuckAtRejectsNonLine(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	f := core.Fault{Kind: core.FaultChannelBreak, Gate: c.Gates[0].Name, Transistor: "t1"}
	if _, ok := GenerateStuckAt(c, f, Options{}); ok {
		t.Error("non-line fault accepted")
	}
}
