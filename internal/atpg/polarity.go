package atpg

import (
	"fmt"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// gateIndexByName resolves a gate instance name.
func gateIndexByName(c *logic.Circuit, name string) (int, error) {
	for i, g := range c.Gates {
		if g.Name == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("atpg: unknown gate %q", name)
}

// behaviorHooks builds faulty-circuit hooks from a gate behaviour table.
// Floating rows evaluate to X.
func behaviorHooks(gi int, beh *core.Behavior) logic.TernaryHooks {
	return logic.TernaryHooks{Gate: func(idx int, in []logic.V) (logic.V, bool) {
		if idx != gi {
			return logic.LX, false
		}
		vec := 0
		for i, v := range in {
			b, ok := v.Bool()
			if !ok {
				return logic.LX, true
			}
			if b {
				vec |= 1 << uint(i)
			}
		}
		row := beh.Rows[vec]
		if row.Floating {
			return logic.LX, true
		}
		return row.Out, true
	}}
}

// vectorGoals converts a local input vector of a gate into justification
// goals on its fanin nets.
func vectorGoals(c *logic.Circuit, gi, vec int) []goal {
	g := &c.Gates[gi]
	goals := make([]goal, len(g.Fanin))
	for i, f := range g.Fanin {
		goals[i] = goal{net: f, val: logic.FromBool(vec>>uint(i)&1 == 1)}
	}
	return goals
}

// PolarityTest is a generated test for a stuck-at n/p-type fault.
type PolarityTest struct {
	Fault   core.Fault
	Pattern faultsim.Pattern
	Method  faultsim.DetectMethod // output or iddq
}

// GeneratePolarity generates a test for a stuck-at n-type / p-type fault:
// first it tries voltage observation (flip propagated to a PO); if the
// fault only manifests as a rail-to-rail leak (the paper's pull-up case),
// it generates an IDDQ excitation instead.
func GeneratePolarity(c *logic.Circuit, f core.Fault, opt Options) (PolarityTest, bool) {
	if !f.Kind.IsPolarityFault() {
		return PolarityTest{}, false
	}
	tf, _ := f.Kind.TFault()
	gi, err := gateIndexByName(c, f.Gate)
	if err != nil {
		return PolarityTest{}, false
	}
	kind := c.Gates[gi].Kind
	beh, err := core.GateBehavior(kind, f.Transistor, tf)
	if err != nil {
		return PolarityTest{}, false
	}

	// Voltage-observable attempt: justify a flipping local vector and
	// propagate the flip.
	for _, vec := range beh.OutputDetecting() {
		p := &podem{
			c:         c,
			opt:       opt.withDefaults(),
			hooks:     behaviorHooks(gi, beh),
			goals:     vectorGoals(c, gi, vec),
			propagate: true,
			faultGate: gi,
		}
		if pat, ok := p.run(); ok {
			return PolarityTest{Fault: f, Pattern: pat, Method: faultsim.ByOutput}, true
		}
	}
	// IDDQ attempt: justification is enough, the current measurement is
	// globally observable.
	for _, vec := range beh.LeakDetecting() {
		p := &podem{
			c:         c,
			opt:       opt.withDefaults(),
			goals:     vectorGoals(c, gi, vec),
			faultGate: -1,
		}
		if pat, ok := p.run(); ok {
			return PolarityTest{Fault: f, Pattern: pat, Method: faultsim.ByIDDQ}, true
		}
	}
	return PolarityTest{}, false
}

// TwoPatternTest is a generated stuck-open test: an initialisation
// pattern followed by a test pattern.
type TwoPatternTest struct {
	Fault core.Fault
	Init  faultsim.Pattern
	Test  faultsim.Pattern
}

// GenerateTwoPattern generates the classical two-pattern stuck-open test
// for a channel break in an SP gate: the test pattern exposes the
// floating output (justified + propagated assuming the retained value is
// the complement), and the initialisation pattern forces that complement
// beforehand.
func GenerateTwoPattern(c *logic.Circuit, f core.Fault, opt Options) (TwoPatternTest, bool) {
	if f.Kind != core.FaultChannelBreak {
		return TwoPatternTest{}, false
	}
	gi, err := gateIndexByName(c, f.Gate)
	if err != nil {
		return TwoPatternTest{}, false
	}
	kind := c.Gates[gi].Kind
	beh, err := core.GateBehavior(kind, f.Transistor, logic.TFaultOpen)
	if err != nil {
		return TwoPatternTest{}, false
	}

	for _, v2 := range beh.FloatingVectors() {
		goodOut := core.GoodOut(kind, v2)
		stale := goodOut.Not()
		// Faulty circuit under the test pattern: output holds the stale
		// value at v2.
		hooks := logic.TernaryHooks{Gate: func(idx int, in []logic.V) (logic.V, bool) {
			if idx != gi {
				return logic.LX, false
			}
			vec := 0
			for i, v := range in {
				b, ok := v.Bool()
				if !ok {
					return logic.LX, true
				}
				if b {
					vec |= 1 << uint(i)
				}
			}
			if vec == v2 {
				return stale, true
			}
			row := beh.Rows[vec]
			if row.Floating {
				return logic.LX, true
			}
			return row.Out, true
		}}
		p2 := &podem{
			c:         c,
			opt:       opt.withDefaults(),
			hooks:     hooks,
			goals:     vectorGoals(c, gi, v2),
			propagate: true,
			faultGate: gi,
		}
		testPat, ok := p2.run()
		if !ok {
			continue
		}
		// Initialisation: any vector where the FAULTY gate still drives
		// the stale value.
		for v1, row := range beh.Rows {
			if row.Floating || row.Out != stale {
				continue
			}
			p1 := &podem{c: c, opt: opt.withDefaults(), goals: vectorGoals(c, gi, v1), faultGate: -1}
			if initPat, ok := p1.run(); ok {
				return TwoPatternTest{Fault: f, Init: initPat, Test: testPat}, true
			}
		}
	}
	return TwoPatternTest{}, false
}

// ChannelBreakPlan is the paper's new test procedure for channel breaks
// in DP gates (section V-C): deliberately complement the polarity of the
// device under test (inject stuck-at n/p-type through the accessible
// polarity terminals), apply the corresponding detection vector, and
// observe. A healthy device makes the injected polarity fault manifest
// (flipped output or large IDDQ); a broken device masks it — a
// fault-free-looking response reveals the channel break.
type ChannelBreakPlan struct {
	Fault     core.Fault            // the targeted channel break
	Injection logic.TFault          // deliberate polarity complement
	Pattern   faultsim.Pattern      // PI vector to apply
	Observe   faultsim.DetectMethod // output or iddq observation
	// HealthyFlips is set for output observation: the PO set where a
	// healthy device shows a flipped value.
	HealthyFlips []string
}

// GenerateChannelBreakDP builds the paper's channel-break test for a
// transistor inside a DP gate. It tries both polarity injections and both
// observation styles.
func GenerateChannelBreakDP(c *logic.Circuit, f core.Fault, opt Options) (ChannelBreakPlan, bool) {
	if f.Kind != core.FaultChannelBreak {
		return ChannelBreakPlan{}, false
	}
	gi, err := gateIndexByName(c, f.Gate)
	if err != nil {
		return ChannelBreakPlan{}, false
	}
	kind := c.Gates[gi].Kind
	if gates.Get(kind).Class != gates.DynamicPolarity {
		return ChannelBreakPlan{}, false
	}
	for _, inj := range []logic.TFault{logic.TFaultStuckAtN, logic.TFaultStuckAtP} {
		beh, err := core.GateBehavior(kind, f.Transistor, inj)
		if err != nil {
			continue
		}
		// Output observation first: the injected flip must propagate.
		for _, vec := range beh.OutputDetecting() {
			p := &podem{
				c:         c,
				opt:       opt.withDefaults(),
				hooks:     behaviorHooks(gi, beh),
				goals:     vectorGoals(c, gi, vec),
				propagate: true,
				faultGate: gi,
			}
			pat, ok := p.run()
			if !ok {
				continue
			}
			plan := ChannelBreakPlan{
				Fault:     f,
				Injection: inj,
				Pattern:   pat,
				Observe:   faultsim.ByOutput,
			}
			good := c.Eval(pat)
			faulty := c.EvalHooked(pat, behaviorHooks(gi, beh))
			for _, po := range c.Outputs {
				g, gok := good[po].Bool()
				fv, fok := faulty[po].Bool()
				if gok && fok && g != fv {
					plan.HealthyFlips = append(plan.HealthyFlips, po)
				}
			}
			return plan, true
		}
		// IDDQ observation: justify a leak vector.
		for _, vec := range beh.LeakDetecting() {
			p := &podem{c: c, opt: opt.withDefaults(), goals: vectorGoals(c, gi, vec), faultGate: -1}
			if pat, ok := p.run(); ok {
				return ChannelBreakPlan{
					Fault:     f,
					Injection: inj,
					Pattern:   pat,
					Observe:   faultsim.ByIDDQ,
				}, true
			}
		}
	}
	return ChannelBreakPlan{}, false
}

// VerifyChannelBreakPlan simulates the plan against both device states
// and reports whether the verdict separates them: with a healthy device
// the injected polarity fault manifests (flip or leak); with a broken
// device the response is fault-free (the break masks the injection).
func VerifyChannelBreakPlan(c *logic.Circuit, plan ChannelBreakPlan) (healthySignature, brokenSignature bool, err error) {
	gi, err := gateIndexByName(c, plan.Fault.Gate)
	if err != nil {
		return false, false, err
	}
	kind := c.Gates[gi].Kind
	spec := gates.Get(kind)

	signature := func(faults map[string]logic.TFault) (bool, error) {
		leak := false
		hooks := logic.TernaryHooks{Gate: func(idx int, in []logic.V) (logic.V, bool) {
			if idx != gi {
				return logic.LX, false
			}
			res := logic.EvalSwitch(spec, in, faults, nil)
			if res.Leak {
				leak = true
			}
			return res.Out, true
		}}
		faulty := c.EvalHooked(plan.Pattern, hooks)
		if plan.Observe == faultsim.ByIDDQ {
			return leak, nil
		}
		good := c.Eval(plan.Pattern)
		for _, po := range c.Outputs {
			g, gok := good[po].Bool()
			f, fok := faulty[po].Bool()
			if gok && fok && g != f {
				return true, nil
			}
		}
		return false, nil
	}

	healthy, err := signature(map[string]logic.TFault{plan.Fault.Transistor: plan.Injection})
	if err != nil {
		return false, false, err
	}
	// A broken device ignores the polarity injection entirely: the
	// channel break dominates (the device conducts nothing).
	broken, err := signature(map[string]logic.TFault{plan.Fault.Transistor: logic.TFaultOpen})
	if err != nil {
		return false, false, err
	}
	return healthy, broken, nil
}
