package atpg

import (
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// buildProgramFor generates the extended-model campaign and assembles the
// tester program.
func buildProgramFor(t *testing.T, c *logic.Circuit) (*Program, *CampaignResult, []core.Fault) {
	t.Helper()
	universe := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	res := Generate(c, universe, Options{})
	return BuildProgram(c, res), res, universe
}

func TestProgramPassesGoldenDevice(t *testing.T) {
	for _, c := range []*logic.Circuit{bench.FullAdderCP(), bench.C17(), bench.TMRVoter()} {
		p, _, _ := buildProgramFor(t, c)
		if len(p.Steps) == 0 {
			t.Fatalf("%s: empty program", c.Name)
		}
		v := Execute(p, nil)
		if !v.Pass {
			t.Errorf("%s: golden device fails step %d (%v): %s", c.Name, v.FailStep, v.StepKind, v.FailReason)
		}
	}
}

// TestProgramEndToEndSoundness is the system-level check of the whole
// pipeline: every fault the campaign claims covered must make the
// assembled tester program fail, and the golden device must pass.
func TestProgramEndToEndSoundness(t *testing.T) {
	c := bench.FullAdderCP()
	p, res, universe := buildProgramFor(t, c)

	uncovered := map[string]bool{}
	for _, f := range res.Untestable {
		uncovered[f.String()] = true
	}
	missed := 0
	for i := range universe {
		f := universe[i]
		if uncovered[f.String()] {
			continue
		}
		v := Execute(p, &f)
		if v.Pass {
			missed++
			t.Errorf("covered fault %v escapes the tester program", f)
		}
	}
	if missed == 0 {
		t.Logf("program of %d steps kills all %d covered faults", len(p.Steps), len(universe)-len(res.Untestable))
	}
}

func TestProgramEndToEndRCA(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	p, res, universe := buildProgramFor(t, c)
	uncovered := map[string]bool{}
	for _, f := range res.Untestable {
		uncovered[f.String()] = true
	}
	escaped := 0
	for i := range universe {
		f := universe[i]
		if uncovered[f.String()] {
			continue
		}
		if Execute(p, &f).Pass {
			escaped++
		}
	}
	if escaped > 0 {
		t.Errorf("%d covered faults escape the program", escaped)
	}
}

func TestProgramStepOrdering(t *testing.T) {
	c := bench.FullAdderCP()
	p, _, _ := buildProgramFor(t, c)
	// Logic steps come first, then two-pattern, then IDDQ, then CB.
	rank := map[StepKind]int{StepLogic: 0, StepTwoPattern: 1, StepIDDQ: 2, StepCBProcedure: 3}
	last := -1
	for i, s := range p.Steps {
		r := rank[s.Kind]
		if r < last {
			t.Fatalf("step %d (%v) out of order", i, s.Kind)
		}
		last = r
	}
}

func TestStepKindString(t *testing.T) {
	for k, want := range map[StepKind]string{
		StepLogic: "logic", StepIDDQ: "iddq",
		StepTwoPattern: "two-pattern", StepCBProcedure: "cb-procedure",
	} {
		if k.String() != want {
			t.Errorf("%d: %q", int(k), k.String())
		}
	}
}

func TestProgramDetectsUntargetedStuckOn(t *testing.T) {
	// Stuck-on faults are not explicitly targeted by the campaign, but
	// the assembled program often catches them anyway (collateral
	// coverage through the IDDQ steps). This must never be reported as a
	// golden pass for a fault the program does detect — just sanity-check
	// a known case: stuck-on of an XOR2 pull-down leaks at some vector.
	c := bench.FullAdderCP()
	p, _, _ := buildProgramFor(t, c)
	f := core.Fault{Kind: core.FaultStuckOn, Gate: c.Gates[0].Name, Transistor: "t1"}
	v := Execute(p, &f)
	// Either verdict is acceptable; the call must simply not panic and
	// must return a consistent verdict structure.
	if v.Pass && v.FailStep != -1 {
		t.Error("inconsistent verdict")
	}
	if !v.Pass && v.FailReason == "" {
		t.Error("failure without a reason")
	}
}
