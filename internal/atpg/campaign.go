package atpg

import (
	"context"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// TestSet is the full output of a generation campaign over the extended
// CP fault model.
type TestSet struct {
	// Combinational voltage-observed patterns (stuck-at + output-
	// detectable polarity faults).
	Patterns []faultsim.Pattern
	// IDDQ measurement patterns (leak-only polarity faults).
	IDDQPatterns []faultsim.Pattern
	// Two-pattern sequences for SP channel breaks.
	TwoPattern []TwoPatternTest
	// Channel-break plans for DP gates (the paper's new procedure).
	CBPlans []ChannelBreakPlan
}

// TotalVectors counts every vector application the set requires.
func (ts *TestSet) TotalVectors() int {
	return len(ts.Patterns) + len(ts.IDDQPatterns) + 2*len(ts.TwoPattern) + len(ts.CBPlans)
}

// CampaignResult reports per-class generation outcomes.
type CampaignResult struct {
	Set TestSet

	StuckAtTargeted, StuckAtCovered   int
	PolarityTargeted, PolarityCovered int
	CBSPTargeted, CBSPCovered         int
	CBDPTargeted, CBDPCovered         int
	Untestable                        []core.Fault
}

// Progress is a per-fault-class snapshot of a running generation
// campaign: Done counts finished generation attempts in the class
// (including faults skipped because an earlier vector already dropped
// them), Covered the class faults covered so far, Untestable the ones
// given up on, and Vectors the total vector applications the test set
// requires so far (across all classes). Snapshots are monotone within
// a class and classes run in order: stuck_at, polarity, channel_break.
type Progress struct {
	Class      string
	Done       int
	Total      int
	Covered    int
	Untestable int
	Vectors    int
}

// ProgressFunc receives campaign snapshots; see Options.Progress.
type ProgressFunc func(Progress)

// Coverage returns the overall covered/targeted ratio in percent.
func (r *CampaignResult) Coverage() float64 {
	targeted := r.StuckAtTargeted + r.PolarityTargeted + r.CBSPTargeted + r.CBDPTargeted
	covered := r.StuckAtCovered + r.PolarityCovered + r.CBSPCovered + r.CBDPCovered
	if targeted == 0 {
		return 0
	}
	return 100 * float64(covered) / float64(targeted)
}

// Generate runs the full ATPG campaign for the given fault list:
// PODEM for line stuck-at faults (with fault dropping through parallel-
// pattern fault simulation), polarity-fault generation with the IDDQ
// fallback, classical two-pattern generation for channel breaks in SP
// gates, and the paper's procedure for channel breaks in DP gates.
func Generate(c *logic.Circuit, faults []core.Fault, opt Options) *CampaignResult {
	res, _ := GenerateContext(context.Background(), c, faults, opt)
	return res
}

// GenerateContext is Generate with cooperative cancellation: the context
// is checked between per-fault generation attempts (one PODEM search or
// one polarity/channel-break procedure is the unit of work). On
// cancellation it returns the partial result accumulated so far together
// with the context's error, so long-running service campaigns can be
// abandoned at a per-job deadline without losing accounting.
func GenerateContext(ctx context.Context, c *logic.Circuit, faults []core.Fault, opt Options) (*CampaignResult, error) {
	res := &CampaignResult{}
	sim := faultsim.New(c)
	sim.Engine = opt.Engine

	// report emits one per-class snapshot after each generation attempt.
	classUntestable := 0
	report := func(class string, done, total, covered int) {
		if opt.Progress == nil {
			return
		}
		opt.Progress(Progress{
			Class:      class,
			Done:       done,
			Total:      total,
			Covered:    covered,
			Untestable: classUntestable,
			Vectors:    res.Set.TotalVectors(),
		})
	}

	// --- Line stuck-at faults with fault dropping. ---
	var saFaults []core.Fault
	for _, f := range faults {
		if f.Kind.IsLineFault() {
			saFaults = append(saFaults, f)
		}
	}
	res.StuckAtTargeted = len(saFaults)
	detected := make([]bool, len(saFaults))
	covered := 0
	report("stuck_at", 0, len(saFaults), 0)
	for i, f := range saFaults {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if detected[i] {
			report("stuck_at", i+1, len(saFaults), covered)
			continue
		}
		pat, ok := GenerateStuckAt(c, f, opt)
		if !ok {
			res.Untestable = append(res.Untestable, f)
			classUntestable++
			report("stuck_at", i+1, len(saFaults), covered)
			continue
		}
		res.Set.Patterns = append(res.Set.Patterns, pat)
		// Fault dropping: mark everything the new pattern catches.
		ds := sim.RunStuckAt(saFaults, []faultsim.Pattern{pat})
		for j, d := range ds {
			if d.Detected() && !detected[j] {
				detected[j] = true
				covered++
			}
		}
		report("stuck_at", i+1, len(saFaults), covered)
	}
	for _, d := range detected {
		if d {
			res.StuckAtCovered++
		}
	}

	// --- Polarity faults, with fault dropping: a polarity fault the
	// voltage patterns generated so far already catch needs no dedicated
	// vector. The check runs through the simulator's engine (the
	// compiled LUT/cone engine by default) and is incremental — one
	// batched pass over the stuck-at patterns, then one single-pattern
	// pass per newly generated vector — so good baselines are never
	// recomputed per fault.
	var polFaults []core.Fault
	for _, f := range faults {
		if f.Kind.IsPolarityFault() {
			polFaults = append(polFaults, f)
		}
	}
	res.PolarityTargeted = len(polFaults)
	polDetected := make([]bool, len(polFaults))
	markDetected := func(from int, patterns []faultsim.Pattern) {
		// Only still-undetected, well-formed faults are worth
		// re-simulating: malformed entries (unknown gate/transistor)
		// would fail the whole batch, so they are filtered here and
		// simply stay undropped — generation decides their fate. The
		// single-worker parallel entry point threads the campaign
		// context through the engine, so per-job deadlines cancel the
		// drop pass too; its only remaining error is cancellation,
		// which the caller's ctx check picks up.
		var idxs []int
		var sub []core.Fault
		for i := from; i < len(polFaults); i++ {
			if polDetected[i] {
				continue
			}
			f := polFaults[i]
			gi, err := gateIndexByName(c, f.Gate)
			if err != nil {
				continue
			}
			if gates.Get(c.Gates[gi].Kind).Transistor(f.Transistor) == nil {
				continue
			}
			idxs = append(idxs, i)
			sub = append(sub, f)
		}
		if len(sub) == 0 || len(patterns) == 0 {
			return
		}
		ds, err := sim.RunTransistorParallel(ctx, sub, patterns, false, 1)
		if err != nil {
			return
		}
		for j, d := range ds {
			if d.Detected() {
				polDetected[idxs[j]] = true
			}
		}
	}
	markDetected(0, res.Set.Patterns)
	classUntestable = 0
	report("polarity", 0, len(polFaults), 0)
	for i, f := range polFaults {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		if polDetected[i] {
			res.PolarityCovered++
			report("polarity", i+1, len(polFaults), res.PolarityCovered)
			continue
		}
		t, ok := GeneratePolarity(c, f, opt)
		if !ok {
			res.Untestable = append(res.Untestable, f)
			classUntestable++
			report("polarity", i+1, len(polFaults), res.PolarityCovered)
			continue
		}
		res.PolarityCovered++
		if t.Method == faultsim.ByIDDQ {
			res.Set.IDDQPatterns = append(res.Set.IDDQPatterns, t.Pattern)
		} else {
			res.Set.Patterns = append(res.Set.Patterns, t.Pattern)
			markDetected(i+1, res.Set.Patterns[len(res.Set.Patterns)-1:])
		}
		report("polarity", i+1, len(polFaults), res.PolarityCovered)
	}

	// --- Channel breaks. ---
	var cbFaults []core.Fault
	for _, f := range faults {
		if f.Kind == core.FaultChannelBreak {
			cbFaults = append(cbFaults, f)
		}
	}
	// Fault dropping for SP channel breaks: a break an earlier generated
	// pair already exposes needs no dedicated two-pattern test. The check
	// runs the newly generated pair through the simulator's two-pattern
	// engine (context-threaded, so per-job deadlines cancel the drop pass
	// too; its only error is cancellation, which the per-fault ctx check
	// picks up).
	cbDropped := make([]bool, len(cbFaults))
	markCBDetected := func(from int, pair [2]faultsim.Pattern) {
		var idxs []int
		var sub []core.Fault
		for i := from; i < len(cbFaults); i++ {
			if cbDropped[i] {
				continue
			}
			f := cbFaults[i]
			gi, err := gateIndexByName(c, f.Gate)
			if err != nil || gates.Get(c.Gates[gi].Kind).Class == gates.DynamicPolarity {
				continue // DP breaks are tested by plans, not pairs
			}
			idxs = append(idxs, i)
			sub = append(sub, f)
		}
		if len(sub) == 0 {
			return
		}
		ds, err := sim.RunTwoPatternContext(ctx, sub, [][2]faultsim.Pattern{pair})
		if err != nil {
			return
		}
		for j, d := range ds {
			if d.Detected() {
				cbDropped[idxs[j]] = true
			}
		}
	}
	classUntestable = 0
	report("channel_break", 0, len(cbFaults), 0)
	for i, f := range cbFaults {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		cbCovered := res.CBSPCovered + res.CBDPCovered
		gi, err := gateIndexByName(c, f.Gate)
		if err != nil {
			res.Untestable = append(res.Untestable, f)
			classUntestable++
			report("channel_break", i+1, len(cbFaults), cbCovered)
			continue
		}
		if gates.Get(c.Gates[gi].Kind).Class == gates.DynamicPolarity {
			res.CBDPTargeted++
			plan, ok := GenerateChannelBreakDP(c, f, opt)
			if !ok {
				res.Untestable = append(res.Untestable, f)
				classUntestable++
				report("channel_break", i+1, len(cbFaults), cbCovered)
				continue
			}
			res.CBDPCovered++
			res.Set.CBPlans = append(res.Set.CBPlans, plan)
		} else {
			res.CBSPTargeted++
			if cbDropped[i] {
				res.CBSPCovered++
				report("channel_break", i+1, len(cbFaults), cbCovered+1)
				continue
			}
			tp, ok := GenerateTwoPattern(c, f, opt)
			if !ok {
				res.Untestable = append(res.Untestable, f)
				classUntestable++
				report("channel_break", i+1, len(cbFaults), cbCovered)
				continue
			}
			res.CBSPCovered++
			res.Set.TwoPattern = append(res.Set.TwoPattern, tp)
			markCBDetected(i+1, [2]faultsim.Pattern{tp.Init, tp.Test})
		}
		report("channel_break", i+1, len(cbFaults), res.CBSPCovered+res.CBDPCovered)
	}
	return res, nil
}
