package atpg

import (
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// Pattern compaction rides on the fault dictionary's packed signatures:
// one capture-mode simulation yields every fault's detection bitset, and
// from then on "does dropping pattern p lose a fault" is bitset
// bookkeeping instead of a re-simulation per trial. The classical
// reverse-order criterion is unchanged — a pattern is dropped when every
// fault it detects is still covered by the remaining set — so the
// compacted set is identical to what trial re-simulation produced,
// at a fraction of the cost.

// CompactOptions tunes CompactDynamic.
type CompactOptions struct {
	// PreserveResolution additionally refuses drops that would merge
	// diagnosis equivalence classes: the pattern set keeps not only its
	// coverage but its ability to tell the surviving faults apart.
	PreserveResolution bool
}

// CompactResult reports a dynamic-compaction pass.
type CompactResult struct {
	Keep    []int // kept pattern indices, ascending
	Dropped int
	// Detected is the covered-fault count, identical before and after.
	Detected int
	// ClassesBefore and ClassesAfter count distinct detection
	// signatures among the input faults under the full and compacted
	// pattern sets.
	ClassesBefore int
	ClassesAfter  int
}

// classCount partitions the signatures by their masked image.
func classCount(sigs []dict.Bitset, mask dict.Bitset) int {
	classes := map[string]bool{}
	for _, s := range sigs {
		classes[dict.And(s, mask).Key()] = true
	}
	return len(classes)
}

// CompactDynamic drops patterns whose detection contribution is
// subsumed by the rest of the set, sweeping in classical reverse order
// over per-fault detection bitsets (out and leak planes pre-combined by
// the caller when both matter). nPatterns bounds the pattern index
// space; signatures narrower than nPatterns simply cannot veto drops
// beyond their width.
func CompactDynamic(sigs []dict.Bitset, nPatterns int, opt CompactOptions) CompactResult {
	mask := dict.NewBitset(nPatterns)
	for i := 0; i < nPatterns; i++ {
		mask.Set(i)
	}
	// cover[f] = how many kept patterns currently detect fault f. A drop
	// is illegal while it would take some fault's cover to zero.
	cover := make([]int, len(sigs))
	res := CompactResult{}
	for f, s := range sigs {
		cover[f] = s.Count()
		if cover[f] > 0 {
			res.Detected++
		}
	}
	res.ClassesBefore = classCount(sigs, mask)

	for i := nPatterns - 1; i >= 0; i-- {
		droppable := true
		for f, s := range sigs {
			if cover[f] == 1 && s.Test(i) {
				droppable = false
				break
			}
		}
		if droppable && opt.PreserveResolution {
			trial := mask.Clone()
			trial.Clear(i)
			droppable = classCount(sigs, trial) == res.ClassesBefore
		}
		if !droppable {
			continue
		}
		mask.Clear(i)
		res.Dropped++
		for f, s := range sigs {
			if s.Test(i) {
				cover[f]--
			}
		}
	}
	res.Keep = mask.Members()
	res.ClassesAfter = classCount(sigs, mask)
	return res
}

// captureStuckAtSignatures runs one capture-mode stuck-at simulation
// and returns each fault's detection bitset over the pattern set.
func captureStuckAtSignatures(c *logic.Circuit, faults []core.Fault, patterns []faultsim.Pattern) []dict.Bitset {
	sim := faultsim.New(c)
	sig := faultsim.NewSignatureCapture(len(faults), len(patterns))
	sim.Signatures = sig
	sim.RunStuckAt(faults, patterns)
	sim.Signatures = nil
	sigs := make([]dict.Bitset, len(faults))
	for i := range faults {
		sigs[i] = dict.FromWords(len(patterns), sig.Out(i))
	}
	return sigs
}

// CompactPatterns drops combinational patterns that do not contribute
// coverage when checked in reverse order against the given line faults
// (classical reverse-order compaction). One capture-mode simulation
// replaces the per-trial re-simulation of the original implementation;
// the kept set is identical.
func CompactPatterns(c *logic.Circuit, faults []core.Fault, patterns []faultsim.Pattern) []faultsim.Pattern {
	if len(patterns) == 0 {
		return nil
	}
	res := CompactDynamic(captureStuckAtSignatures(c, faults, patterns), len(patterns), CompactOptions{})
	kept := make([]faultsim.Pattern, 0, len(res.Keep))
	for _, i := range res.Keep {
		kept = append(kept, patterns[i])
	}
	return kept
}

// compactPatternsReference is the original trial re-simulation
// implementation, retained as the differential oracle for
// CompactPatterns and CompactDynamic.
func compactPatternsReference(c *logic.Circuit, faults []core.Fault, patterns []faultsim.Pattern) []faultsim.Pattern {
	if len(patterns) == 0 {
		return nil
	}
	sim := faultsim.New(c)
	baseline := faultsim.Summarise(sim.RunStuckAt(faults, patterns)).Detected

	kept := append([]faultsim.Pattern(nil), patterns...)
	for i := len(kept) - 1; i >= 0; i-- {
		trial := append(append([]faultsim.Pattern(nil), kept[:i]...), kept[i+1:]...)
		if faultsim.Summarise(sim.RunStuckAt(faults, trial)).Detected == baseline {
			kept = trial
		}
	}
	return kept
}
