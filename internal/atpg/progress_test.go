package atpg

import (
	"testing"

	"cpsinw/internal/core"
)

// TestCampaignProgress checks the GenerateContext progress stream:
// every class is announced, Done climbs monotonically by one to Total
// within each class, and the final class snapshots agree with the
// returned CampaignResult.
func TestCampaignProgress(t *testing.T) {
	c := parse(t, mixedCircuit)
	faults := core.Universe(c, core.AllFaults())

	var snaps []Progress
	res := Generate(c, faults, Options{Progress: func(p Progress) {
		snaps = append(snaps, p)
	}})

	last := map[string]Progress{}
	seenOrder := []string{}
	for _, p := range snaps {
		prev, seen := last[p.Class]
		if !seen {
			seenOrder = append(seenOrder, p.Class)
			if p.Done != 0 {
				t.Errorf("%s: first snapshot Done = %d, want 0", p.Class, p.Done)
			}
		} else {
			if p.Done != prev.Done+1 {
				t.Errorf("%s: Done jumped %d -> %d", p.Class, prev.Done, p.Done)
			}
			if p.Covered < prev.Covered || p.Untestable < prev.Untestable || p.Vectors < prev.Vectors {
				t.Errorf("%s: non-monotone snapshot %+v after %+v", p.Class, p, prev)
			}
		}
		if p.Total != last[p.Class].Total && seen {
			t.Errorf("%s: Total changed mid-class", p.Class)
		}
		last[p.Class] = p
	}
	want := []string{"stuck_at", "polarity", "channel_break"}
	if len(seenOrder) != 3 || seenOrder[0] != want[0] || seenOrder[1] != want[1] || seenOrder[2] != want[2] {
		t.Fatalf("class order = %v, want %v", seenOrder, want)
	}
	for _, class := range want {
		if p := last[class]; p.Done != p.Total {
			t.Errorf("%s: final Done = %d, Total = %d", class, p.Done, p.Total)
		}
	}
	if got := last["stuck_at"]; got.Total != res.StuckAtTargeted || got.Covered != res.StuckAtCovered {
		t.Errorf("stuck_at final %+v disagrees with result (%d targeted, %d covered)",
			got, res.StuckAtTargeted, res.StuckAtCovered)
	}
	if got := last["polarity"]; got.Total != res.PolarityTargeted || got.Covered != res.PolarityCovered {
		t.Errorf("polarity final %+v disagrees with result (%d targeted, %d covered)",
			got, res.PolarityTargeted, res.PolarityCovered)
	}
	cbCovered := res.CBSPCovered + res.CBDPCovered
	if got := last["channel_break"]; got.Covered != cbCovered {
		t.Errorf("channel_break final %+v disagrees with result (%d covered)", got, cbCovered)
	}
	if final := snaps[len(snaps)-1]; final.Vectors != res.Set.TotalVectors() {
		t.Errorf("final Vectors = %d, want %d", final.Vectors, res.Set.TotalVectors())
	}
}
