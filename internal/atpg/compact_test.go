package atpg

import (
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

func randomCompactPatterns(rng *rand.Rand, c *logic.Circuit, n int) []faultsim.Pattern {
	out := make([]faultsim.Pattern, 0, n)
	for len(out) < n {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out = append(out, p)
		// Duplicate some patterns so compaction has guaranteed slack.
		if rng.Intn(3) == 0 && len(out) < n {
			out = append(out, p)
		}
	}
	return out
}

// TestCompactPatternsMatchesReference proves the bitset re-platform
// keeps the exact pattern set the original trial re-simulation kept.
func TestCompactPatternsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(930))
	cases := 12
	if testing.Short() {
		cases = 4
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(5), 1+rng.Intn(12))
		faults := core.Universe(c, core.ClassicalOnly())
		patterns := randomCompactPatterns(rng, c, 1+rng.Intn(40))
		got := CompactPatterns(c, faults, patterns)
		want := compactPatternsReference(c, faults, patterns)
		if len(got) != len(want) {
			t.Fatalf("case %d: kept %d patterns, reference kept %d", ci, len(got), len(want))
		}
		for i := range got {
			for _, pi := range c.Inputs {
				if got[i][pi] != want[i][pi] {
					t.Fatalf("case %d: kept pattern %d differs from reference at %s", ci, i, pi)
				}
			}
		}
	}
}

// TestCompactDynamicPreservesCoverage checks the core invariants on the
// mult3 campaign: identical coverage, fewer patterns, and — under
// PreserveResolution — an identical signature-class partition.
func TestCompactDynamicPreservesCoverage(t *testing.T) {
	for _, name := range []string{"c17", "mult3"} {
		c, err := bench.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		faults := core.Universe(c, core.ClassicalOnly())
		rng := rand.New(rand.NewSource(17))
		patterns := randomCompactPatterns(rng, c, 64)
		sigs := captureStuckAtSignatures(c, faults, patterns)

		plain := CompactDynamic(sigs, len(patterns), CompactOptions{})
		if plain.Dropped == 0 {
			t.Errorf("%s: compaction dropped nothing from %d random patterns", name, len(patterns))
		}
		if len(plain.Keep)+plain.Dropped != len(patterns) {
			t.Errorf("%s: keep %d + dropped %d != %d", name, len(plain.Keep), plain.Dropped, len(patterns))
		}
		// Coverage must be bit-identical: simulate the kept set.
		kept := make([]faultsim.Pattern, 0, len(plain.Keep))
		for _, i := range plain.Keep {
			kept = append(kept, patterns[i])
		}
		before := faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, patterns)).Detected
		after := faultsim.Summarise(faultsim.New(c).RunStuckAt(faults, kept)).Detected
		if before != after || plain.Detected != before {
			t.Errorf("%s: coverage %d -> %d (result says %d)", name, before, after, plain.Detected)
		}

		res := CompactDynamic(sigs, len(patterns), CompactOptions{PreserveResolution: true})
		if res.ClassesAfter != res.ClassesBefore {
			t.Errorf("%s: resolution-preserving compaction merged classes %d -> %d",
				name, res.ClassesBefore, res.ClassesAfter)
		}
		if res.Dropped > plain.Dropped {
			t.Errorf("%s: resolution constraint dropped more (%d) than unconstrained (%d)",
				name, res.Dropped, plain.Dropped)
		}
	}
}

// TestCompactDynamicResolutionVeto constructs a case where coverage
// allows a drop but resolution forbids it: two faults told apart only
// by a pattern that detects both of them plus another that detects one.
func TestCompactDynamicResolutionVeto(t *testing.T) {
	// Fault A detected by patterns {0, 1}; fault B by {0}. Dropping
	// pattern 1 keeps both covered but merges their classes.
	a := dict.NewBitset(2)
	a.Set(0)
	a.Set(1)
	b := dict.NewBitset(2)
	b.Set(0)
	sigs := []dict.Bitset{a, b}

	plain := CompactDynamic(sigs, 2, CompactOptions{})
	if plain.Dropped != 1 || plain.Keep[0] != 0 {
		t.Fatalf("unconstrained: %+v", plain)
	}
	res := CompactDynamic(sigs, 2, CompactOptions{PreserveResolution: true})
	if res.Dropped != 0 {
		t.Fatalf("resolution-preserving compaction still dropped: %+v", res)
	}
	if res.ClassesBefore != 2 || res.ClassesAfter != 2 {
		t.Fatalf("class accounting wrong: %+v", res)
	}
}
