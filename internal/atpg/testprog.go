package atpg

import (
	"fmt"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// StepKind enumerates tester operations.
type StepKind int

const (
	// StepLogic applies a pattern and compares the primary outputs.
	StepLogic StepKind = iota
	// StepIDDQ applies a pattern and measures the quiescent current.
	StepIDDQ
	// StepTwoPattern applies an initialisation pattern then a test
	// pattern, comparing outputs after the second (stuck-open testing).
	StepTwoPattern
	// StepCBProcedure applies the paper's channel-break procedure: the
	// target device's polarity is complemented through the accessible
	// polarity terminals while the pattern is applied; the expected
	// (healthy) response is the *faulty-looking* one, and a clean
	// response reveals the break.
	StepCBProcedure
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepLogic:
		return "logic"
	case StepIDDQ:
		return "iddq"
	case StepTwoPattern:
		return "two-pattern"
	case StepCBProcedure:
		return "cb-procedure"
	}
	return "invalid"
}

// Step is one tester operation with its expected response.
type Step struct {
	Kind StepKind

	Pattern faultsim.Pattern // main (or capture) pattern
	Init    faultsim.Pattern // initialisation pattern (two-pattern steps)

	// CB procedure fields.
	CBGate       string
	CBTransistor string
	CBInjection  logic.TFault
	CBObserve    faultsim.DetectMethod

	// Expected golden response for logic/two-pattern steps.
	Expect map[string]logic.V
}

// Program is an ordered tester program: logic vectors first, then
// two-pattern sequences, then IDDQ measurements (slow), then the
// channel-break procedures (require test-mode polarity access).
type Program struct {
	Circuit *logic.Circuit
	Steps   []Step
}

// BuildProgram assembles a tester program from a generation campaign,
// computing the expected golden response of every step.
func BuildProgram(c *logic.Circuit, res *CampaignResult) *Program {
	p := &Program{Circuit: c}
	expect := func(pat faultsim.Pattern) map[string]logic.V {
		vals := c.Eval(map[string]logic.V(pat))
		out := map[string]logic.V{}
		for _, po := range c.Outputs {
			out[po] = vals[po]
		}
		return out
	}
	for _, pat := range res.Set.Patterns {
		p.Steps = append(p.Steps, Step{Kind: StepLogic, Pattern: pat, Expect: expect(pat)})
	}
	for _, tp := range res.Set.TwoPattern {
		p.Steps = append(p.Steps, Step{
			Kind: StepTwoPattern, Init: tp.Init, Pattern: tp.Test, Expect: expect(tp.Test),
		})
	}
	for _, pat := range res.Set.IDDQPatterns {
		p.Steps = append(p.Steps, Step{Kind: StepIDDQ, Pattern: pat})
	}
	for _, plan := range res.Set.CBPlans {
		p.Steps = append(p.Steps, Step{
			Kind:         StepCBProcedure,
			Pattern:      plan.Pattern,
			CBGate:       plan.Fault.Gate,
			CBTransistor: plan.Fault.Transistor,
			CBInjection:  plan.Injection,
			CBObserve:    plan.Observe,
			Expect:       expect(plan.Pattern),
		})
	}
	return p
}

// Verdict is the outcome of executing a program against a device.
type Verdict struct {
	Pass       bool
	FailStep   int      // index of the first failing step (-1 if passed)
	FailReason string   // human-readable failure description
	StepKind   StepKind // kind of the failing step
}

// dutState carries the device under test: at most one injected fault.
type dutState struct {
	c     *logic.Circuit
	fault *core.Fault
	// per-gate retention state for two-pattern steps
	prev map[int]map[string]logic.V
}

// gateIndexOf resolves a gate instance index by name (-1 when missing).
func gateIndexOf(c *logic.Circuit, name string) int {
	for i, g := range c.Gates {
		if g.Name == name {
			return i
		}
	}
	return -1
}

// eval simulates the DUT under a pattern. extra optionally injects a
// test-mode polarity complement at one gate/transistor. The returned leak
// flag aggregates rail-to-rail paths at hooked gates.
func (d *dutState) eval(p faultsim.Pattern, extraGate int, extraTr string, extraInj logic.TFault, retain bool) (map[string]logic.V, bool) {
	leak := false

	// Gate-level transistor faults (DUT fault and/or injection) resolve
	// through switch-level evaluation per affected gate.
	perGate := map[int]map[string]logic.TFault{}
	addTF := func(gi int, tr string, tf logic.TFault) {
		if perGate[gi] == nil {
			perGate[gi] = map[string]logic.TFault{}
		}
		// A channel break on the same device dominates any injection.
		if existing, ok := perGate[gi][tr]; ok && existing == logic.TFaultOpen {
			return
		}
		perGate[gi][tr] = tf
	}
	var hooks logic.TernaryHooks
	if d.fault != nil {
		f := *d.fault
		switch {
		case f.Kind.IsLineFault():
			force := logic.L0
			if f.Kind == core.FaultSA1 {
				force = logic.L1
			}
			if f.Pin >= 0 {
				hooks.Pin = func(gi, pin int, v logic.V) logic.V {
					if gi == f.GateIdx && pin == f.Pin {
						return force
					}
					return v
				}
			} else {
				prevStem := hooks.Stem
				hooks.Stem = func(net string, v logic.V) logic.V {
					if prevStem != nil {
						v = prevStem(net, v)
					}
					if net == f.Net {
						return force
					}
					return v
				}
			}
		default:
			if tf, ok := f.Kind.TFault(); ok {
				if gi := gateIndexOf(d.c, f.Gate); gi >= 0 {
					addTF(gi, f.Transistor, tf)
				}
			}
		}
	}
	if extraGate >= 0 {
		addTF(extraGate, extraTr, extraInj)
	}

	if len(perGate) > 0 {
		prevGateHook := hooks.Gate
		hooks.Gate = func(gi int, in []logic.V) (logic.V, bool) {
			if prevGateHook != nil {
				if v, ok := prevGateHook(gi, in); ok {
					return v, ok
				}
			}
			faults, ok := perGate[gi]
			if !ok {
				return logic.LX, false
			}
			spec := gates.Get(d.c.Gates[gi].Kind)
			var prev map[string]logic.V
			if retain && d.prev != nil {
				prev = d.prev[gi]
			}
			res := logic.EvalSwitch(spec, in, faults, prev)
			if retain {
				if d.prev == nil {
					d.prev = map[int]map[string]logic.V{}
				}
				d.prev[gi] = res.Nodes
			}
			if res.Leak {
				leak = true
			}
			return res.Out, true
		}
	}
	return d.c.EvalHooked(map[string]logic.V(p), hooks), leak
}

// Execute runs the program against a device with the given injected
// fault (nil for a golden device) and returns the tester verdict.
func Execute(p *Program, fault *core.Fault) Verdict {
	dut := &dutState{c: p.Circuit, fault: fault}
	for i, step := range p.Steps {
		switch step.Kind {
		case StepLogic:
			got, _ := dut.eval(step.Pattern, -1, "", logic.TFaultNone, false)
			if po, bad := mismatch(p.Circuit, got, step.Expect); bad {
				return Verdict{FailStep: i, StepKind: step.Kind,
					FailReason: fmt.Sprintf("output %s = %v, expected %v", po, got[po], step.Expect[po])}
			}
		case StepTwoPattern:
			dut.prev = map[int]map[string]logic.V{}
			dut.eval(step.Init, -1, "", logic.TFaultNone, true)
			got, _ := dut.eval(step.Pattern, -1, "", logic.TFaultNone, true)
			if po, bad := mismatch(p.Circuit, got, step.Expect); bad {
				return Verdict{FailStep: i, StepKind: step.Kind,
					FailReason: fmt.Sprintf("two-pattern output %s = %v, expected %v", po, got[po], step.Expect[po])}
			}
		case StepIDDQ:
			_, leak := dut.eval(step.Pattern, -1, "", logic.TFaultNone, false)
			if leak {
				return Verdict{FailStep: i, StepKind: step.Kind,
					FailReason: "elevated IDDQ"}
			}
		case StepCBProcedure:
			gi := gateIndexOf(p.Circuit, step.CBGate)
			got, leak := dut.eval(step.Pattern, gi, step.CBTransistor, step.CBInjection, false)
			// The injected polarity complement must manifest on a healthy
			// device; a clean response reveals the channel break.
			var manifest bool
			if step.CBObserve == faultsim.ByIDDQ {
				manifest = leak
			} else {
				_, manifest = mismatch(p.Circuit, got, step.Expect)
			}
			if !manifest {
				return Verdict{FailStep: i, StepKind: step.Kind,
					FailReason: fmt.Sprintf("%s.%s: injected polarity fault masked (channel break)", step.CBGate, step.CBTransistor)}
			}
		}
	}
	return Verdict{Pass: true, FailStep: -1}
}

// mismatch reports the first primary output whose definite value differs
// from the expectation.
func mismatch(c *logic.Circuit, got, want map[string]logic.V) (string, bool) {
	for _, po := range c.Outputs {
		g, gok := got[po].Bool()
		w, wok := want[po].Bool()
		if gok && wok && g != w {
			return po, true
		}
	}
	return "", false
}
