package logic

import (
	"testing"

	"cpsinw/internal/gates"
)

// FuzzPackedRoundTrip drives the packed ternary layer with arbitrary
// lane contents: Pack -> Unpack must be the identity on every lane, and
// the packed gate evaluators (specialized bitplane formulas and the
// generic LUT mask loop alike) must agree with the scalar gate LUT lane
// by lane for every gate kind. Seed corpus:
// testdata/fuzz/FuzzPackedRoundTrip.
func FuzzPackedRoundTrip(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint64(0), uint64(0))
	f.Add(^uint64(0), ^uint64(0), uint64(0), ^uint64(0), ^uint64(0), uint64(0))
	f.Add(uint64(0xaaaaaaaaaaaaaaaa), uint64(0xcccccccccccccccc),
		uint64(0xf0f0f0f0f0f0f0f0), uint64(0xff00ff00ff00ff00),
		uint64(0x123456789abcdef0), uint64(0x0fedcba987654321))
	f.Add(uint64(1), uint64(3), uint64(7), uint64(15), uint64(31), uint64(63))
	f.Fuzz(func(t *testing.T, v1, k1, v2, k2, v3, k3 uint64) {
		in := []PackedVec{{Val: v1, Known: k1}, {Val: v2, Known: k2}, {Val: v3, Known: k3}}

		// Pack -> Unpack identity over the canonical lane values.
		for _, p := range in {
			vs := UnpackVec(p, 64)
			if got := PackVec(vs); got != p.Canon() {
				t.Fatalf("pack/unpack drift: %+v -> %v -> %+v", p, vs, got)
			}
			for k, v := range vs {
				if p.Get(k) != v {
					t.Fatalf("lane %d: Get %v, UnpackVec %v", k, p.Get(k), v)
				}
			}
		}

		// Packed-vs-scalar agreement for every gate kind, both the
		// specialized and the generic evaluator.
		scalarIn := make([]V, 3)
		for _, kind := range gates.Kinds() {
			n := gates.Get(kind).NIn
			lut := CompileGateLUT(kind)
			got := EvalGatePacked(kind, in[:n])
			if got != got.Canon() {
				t.Fatalf("%v: non-canonical packed output %+v", kind, got)
			}
			generic := EvalLUTPacked(lut, []PackedVec{in[0].Canon(), in[1].Canon(), in[2].Canon()}[:n])
			if generic != got {
				t.Fatalf("%v: generic %+v vs specialized %+v", kind, generic, got)
			}
			for k := 0; k < 64; k++ {
				for i := 0; i < n; i++ {
					scalarIn[i] = in[i].Get(k)
				}
				if want := lut[TernaryIndex(scalarIn[:n])]; got.Get(k) != want {
					t.Fatalf("%v lane %d %v: packed %v, scalar %v",
						kind, k, scalarIn[:n], got.Get(k), want)
				}
			}
		}
	})
}
