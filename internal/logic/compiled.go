package logic

import (
	"sort"
	"sync"

	"cpsinw/internal/gates"
)

// CompiledCircuit is a Circuit lowered to dense integer net ids with a
// per-gate ternary LUT: the form the fault-simulation engines evaluate.
// Net ids follow the sorted net-name order of Nets(), so they are
// deterministic for a given circuit.
type CompiledCircuit struct {
	C *Circuit

	NetName  []string       // net id -> name
	NetID    map[string]int // name -> net id
	InputID  []int          // per primary input, in circuit input order
	OutputID []int          // per primary output, in circuit output order
	IsOutput []bool         // net id -> drives a primary output

	Fanin   [][]int      // gate -> fanin net ids, in pin order
	GateOut []int        // gate -> output net id
	LUT     []GateLUT    // gate -> compiled ternary table (shared per kind)
	Kinds   []gates.Kind // gate -> kind (packed evaluation specializes per kind)

	Order   []int   // levelized gate evaluation order
	Pos     []int   // gate -> position in Order (cone scheduling priority)
	Fanouts [][]int // net id -> gate indices reading the net

	conesOnce sync.Once
	cones     [][]int // gate -> downstream cone, topologically sorted
}

// Compile lowers the circuit. The result is immutable and safe for
// concurrent use; callers cache it (compilation is O(nets + gates)).
func (c *Circuit) Compile() *CompiledCircuit {
	names := c.Nets()
	cc := &CompiledCircuit{
		C:        c,
		NetName:  names,
		NetID:    make(map[string]int, len(names)),
		InputID:  make([]int, len(c.Inputs)),
		OutputID: make([]int, len(c.Outputs)),
		IsOutput: make([]bool, len(names)),
		Fanin:    make([][]int, len(c.Gates)),
		GateOut:  make([]int, len(c.Gates)),
		LUT:      make([]GateLUT, len(c.Gates)),
		Kinds:    make([]gates.Kind, len(c.Gates)),
		Order:    c.Levelized(),
		Pos:      make([]int, len(c.Gates)),
		Fanouts:  make([][]int, len(names)),
	}
	for id, n := range names {
		cc.NetID[n] = id
	}
	for i, pi := range c.Inputs {
		cc.InputID[i] = cc.NetID[pi]
	}
	for i, po := range c.Outputs {
		id := cc.NetID[po]
		cc.OutputID[i] = id
		cc.IsOutput[id] = true
	}
	for gi := range c.Gates {
		g := &c.Gates[gi]
		fin := make([]int, len(g.Fanin))
		for k, f := range g.Fanin {
			fin[k] = cc.NetID[f]
		}
		cc.Fanin[gi] = fin
		cc.GateOut[gi] = cc.NetID[g.Output]
		cc.LUT[gi] = CompileGateLUT(g.Kind)
		cc.Kinds[gi] = g.Kind
	}
	for pos, gi := range cc.Order {
		cc.Pos[gi] = pos
	}
	for _, net := range names {
		id := cc.NetID[net]
		fo := append([]int(nil), c.Fanouts(net)...)
		sort.Ints(fo)
		cc.Fanouts[id] = fo
	}
	return cc
}

// NumNets returns the dense net count.
func (cc *CompiledCircuit) NumNets() int { return len(cc.NetName) }

// EvalInto simulates the fault-free circuit for one ternary assignment
// into vals (length NumNets), returning vals. Inputs missing from the
// assignment are X, matching Circuit.Eval.
func (cc *CompiledCircuit) EvalInto(assign map[string]V, vals []V) []V {
	for i, pi := range cc.C.Inputs {
		v, ok := assign[pi]
		if !ok {
			v = LX
		}
		vals[cc.InputID[i]] = v
	}
	for _, gi := range cc.Order {
		vals[cc.GateOut[gi]] = cc.LUT[gi][cc.GateInputIndex(gi, vals)]
	}
	return vals
}

// GateInputIndex computes the ternary LUT index of one gate's inputs
// under the given net values.
func (cc *CompiledCircuit) GateInputIndex(gi int, vals []V) int {
	idx := 0
	for k, nid := range cc.Fanin[gi] {
		idx += int(vals[nid]) * pow3[k]
	}
	return idx
}

// EvalPacked simulates 64 ternary patterns at once: in[i] is the packed
// plane of primary input i (circuit input order; X lanes model missing
// assignments), vals the per-net result planes (length NumNets).
// Lane k of the result is bit-identical to EvalInto on pattern k, which
// the differential and fuzz suites in internal/faultsim and this
// package enforce.
func (cc *CompiledCircuit) EvalPacked(in []PackedVec, vals []PackedVec) []PackedVec {
	return cc.EvalBlock(in, 1, vals)
}

// EvalBlock simulates w*64 ternary patterns at once over the same
// levelized IR: in holds the input blocks (input-major, stride w), vals
// the per-net result blocks (net-major, stride w, length NumNets()*w).
// Lane l of the result is bit-identical to EvalInto on pattern l;
// width 1 is exactly EvalPacked. This is the one dense evaluation every
// packed fault engine builds its baselines from.
func (cc *CompiledCircuit) EvalBlock(in []PackedVec, w int, vals []PackedVec) []PackedVec {
	for i, id := range cc.InputID {
		for j := 0; j < w; j++ {
			vals[id*w+j] = in[i*w+j].Canon()
		}
	}
	var buf [3]PackedVec
	for _, gi := range cc.Order {
		fin := cc.Fanin[gi]
		on := cc.GateOut[gi]
		kind, lut := cc.Kinds[gi], cc.LUT[gi]
		for j := 0; j < w; j++ {
			for k, nid := range fin {
				buf[k] = vals[nid*w+j]
			}
			vals[on*w+j] = EvalKindPacked(kind, lut, buf[:len(fin)])
		}
	}
	return vals
}

// Cone returns the structural fanout cone of gate gi — every gate a
// value change at gi's output can reach, excluding gi itself, in
// topological evaluation order. Built lazily for all gates at once and
// cached. Only the packed bridge engine still consumes static cones
// (its union-cone fixpoint needs the full downstream set up front); the
// transistor engines schedule an event-driven heap instead, so big
// sparse campaigns never pay the O(gates^2) cone build.
func (cc *CompiledCircuit) Cone(gi int) []int {
	cc.conesOnce.Do(func() {
		n := len(cc.C.Gates)
		cc.cones = make([][]int, n)
		mark := make([]int, n)
		for i := range mark {
			mark[i] = -1
		}
		for seed := 0; seed < n; seed++ {
			var cone []int
			stack := append([]int(nil), cc.Fanouts[cc.GateOut[seed]]...)
			for len(stack) > 0 {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if mark[g] == seed || g == seed {
					continue
				}
				mark[g] = seed
				cone = append(cone, g)
				stack = append(stack, cc.Fanouts[cc.GateOut[g]]...)
			}
			sort.Slice(cone, func(a, b int) bool { return cc.Pos[cone[a]] < cc.Pos[cone[b]] })
			cc.cones[seed] = cone
		}
	})
	return cc.cones[gi]
}

// EvalGatePlanes evaluates one gate across all 64 lanes from the net
// planes.
func (cc *CompiledCircuit) EvalGatePlanes(gi int, vals []PackedVec) PackedVec {
	var in [3]PackedVec
	fin := cc.Fanin[gi]
	for k, nid := range fin {
		in[k] = vals[nid]
	}
	return EvalKindPacked(cc.Kinds[gi], cc.LUT[gi], in[:len(fin)])
}
