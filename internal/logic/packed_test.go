package logic

import (
	"math/rand"
	"testing"

	"cpsinw/internal/gates"
)

// TestPackedRoundTrip: WithLane/Get/PackVec/UnpackVec agree and stay
// canonical.
func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		vs := make([]V, n)
		for i := range vs {
			vs[i] = V(rng.Intn(3))
		}
		p := PackVec(vs)
		if p != p.Canon() {
			t.Fatalf("PackVec not canonical: %+v", p)
		}
		back := UnpackVec(p, n)
		for i := range vs {
			if back[i] != vs[i] {
				t.Fatalf("lane %d: packed %v, unpacked %v", i, vs[i], back[i])
			}
		}
		for k := n; k < 64; k++ {
			if p.Get(k) != LX {
				t.Fatalf("lane %d beyond count is %v, want X", k, p.Get(k))
			}
		}
	}
}

// TestPackedConstAndMasks pins ConstPacked, EqMask and DefiniteDiffMask.
func TestPackedConstAndMasks(t *testing.T) {
	zero, one, x := ConstPacked(L0), ConstPacked(L1), ConstPacked(LX)
	for k := 0; k < 64; k += 17 {
		if zero.Get(k) != L0 || one.Get(k) != L1 || x.Get(k) != LX {
			t.Fatalf("lane %d: const planes broken", k)
		}
	}
	if EqMask(zero, zero) != ^uint64(0) || EqMask(zero, one) != 0 || EqMask(x, zero) != 0 {
		t.Fatal("EqMask broken on const planes")
	}
	if DefiniteDiffMask(zero, one) != ^uint64(0) {
		t.Fatal("DefiniteDiffMask misses 0 vs 1")
	}
	if DefiniteDiffMask(zero, x) != 0 || DefiniteDiffMask(x, x) != 0 {
		t.Fatal("DefiniteDiffMask counts X")
	}
	if FirstLane(0) != 64 || FirstLane(1<<13) != 13 {
		t.Fatal("FirstLane broken")
	}
}

// TestEvalKindPackedMatchesLUT proves every specialized bitplane
// formula extensionally equal to the scalar gate LUT: all 3^n uniform
// input vectors, each checked on all 64 lanes at once, plus random
// mixed-lane planes.
func TestEvalKindPackedMatchesLUT(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, kind := range gates.Kinds() {
		n := gates.Get(kind).NIn
		lut := CompileGateLUT(kind)
		// Uniform lanes: every ternary vector broadcast to 64 lanes.
		for idx := 0; idx < Pow3(n); idx++ {
			vec := TernaryVector(idx, n)
			in := make([]PackedVec, n)
			for i, v := range vec {
				in[i] = ConstPacked(v)
			}
			got := EvalGatePacked(kind, in)
			want := ConstPacked(lut[idx])
			if got != want {
				t.Errorf("%v%v: packed %+v, scalar %v", kind, vec, got, lut[idx])
			}
		}
		// Mixed lanes: random per-lane vectors, checked lane by lane.
		for trial := 0; trial < 50; trial++ {
			in := make([]PackedVec, n)
			for i := range in {
				in[i] = PackedVec{Val: rng.Uint64(), Known: rng.Uint64()}
			}
			got := EvalGatePacked(kind, in)
			if got != got.Canon() {
				t.Fatalf("%v: non-canonical output %+v", kind, got)
			}
			scalarIn := make([]V, n)
			for k := 0; k < 64; k++ {
				for i := range in {
					scalarIn[i] = in[i].Get(k)
				}
				want := lut[TernaryIndex(scalarIn)]
				if got.Get(k) != want {
					t.Fatalf("%v lane %d %v: packed %v, scalar %v",
						kind, k, scalarIn, got.Get(k), want)
				}
			}
		}
	}
}

// TestEvalLUTPackedGeneric: the generic mask-loop evaluator agrees with
// the specialized path (it is the fallback for fault behaviour tables).
func TestEvalLUTPackedGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, kind := range gates.Kinds() {
		n := gates.Get(kind).NIn
		lut := CompileGateLUT(kind)
		for trial := 0; trial < 30; trial++ {
			in := make([]PackedVec, n)
			for i := range in {
				in[i] = PackedVec{Val: rng.Uint64(), Known: rng.Uint64()}.Canon()
			}
			if got, want := EvalLUTPacked(lut, in), EvalGatePacked(kind, in); got != want {
				t.Fatalf("%v: generic %+v vs specialized %+v", kind, got, want)
			}
		}
	}
}

// TestEvalPackedMatchesEvalInto: full-circuit packed simulation is
// lane-for-lane identical to the scalar compiled evaluation.
func TestEvalPackedMatchesEvalInto(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(s)
OUTPUT(co)
n1 = NAND(a, b)
x1 = XOR(a, b, c)
s = NOT(x1)
co = MAJ(a, b, n1)
`
	c := mustParse(t, src)
	cc := c.Compile()
	rng := rand.New(rand.NewSource(4))
	in := make([]PackedVec, len(c.Inputs))
	lanePatterns := make([]map[string]V, 64)
	for k := range lanePatterns {
		p := map[string]V{}
		for i, pi := range c.Inputs {
			v := V(rng.Intn(3))
			p[pi] = v
			in[i] = in[i].WithLane(k, v)
		}
		lanePatterns[k] = p
	}
	vals := cc.EvalPacked(in, make([]PackedVec, cc.NumNets()))
	scratch := make([]V, cc.NumNets())
	for k, p := range lanePatterns {
		cc.EvalInto(p, scratch)
		for id, name := range cc.NetName {
			if vals[id].Get(k) != scratch[id] {
				t.Fatalf("lane %d net %s: packed %v, scalar %v",
					k, name, vals[id].Get(k), scratch[id])
			}
		}
	}
}
