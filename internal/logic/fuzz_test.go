package logic

import (
	"strings"
	"testing"
)

// FuzzBenchRoundTrip asserts that every .bench netlist the parser
// accepts survives write -> parse -> write unchanged (no panics, no
// parse regressions, stable text fixpoint, identical structure).
// Seed corpus: testdata/fuzz/FuzzBenchRoundTrip.
func FuzzBenchRoundTrip(f *testing.F) {
	f.Add("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")
	f.Add("# c17-ish\nINPUT(i1)\nINPUT(i2)\nINPUT(i3)\nOUTPUT(o)\nn1 = NAND(i1, i2)\no = NAND(n1, i3)\n")
	f.Add("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(s)\nOUTPUT(co)\ns = XOR(a, b, c)\nco = MAJ(a, b, c)\n")
	f.Add("INPUT(x0)\nINPUT(x1)\nOUTPUT(p)\np = XOR(x0, x1)  # parity\n")
	f.Add("INPUT(a)\nOUTPUT(y)\nOUTPUT(z)\nm = BUFF(a)\ny = NOR(m, a)\nz = NOT(m)\n")
	// ISCAS-85 dialect: AND/OR and wide fanin decompose into native CP
	// cells at parse time, so the written form must still round-trip.
	f.Add("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")
	f.Add("INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\ny = OR(a, b, c)\n")
	f.Add("INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g4)\nINPUT(g5)\nINPUT(g6)\nINPUT(g7)\nINPUT(g8)\nINPUT(g9)\n" +
		"OUTPUT(y)\nOUTPUT(z)\ny = AND(g1, g2, g3, g4, g5, g6, g7, g8, g9)\nz = NOR(g1, g2, g3, g4, g5)\n")
	f.Add("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(p)\nOUTPUT(q)\np = XNOR(a, b, c, d)\nq = NAND(a, b, c, d)\n")
	// Helper-net collision: the source already uses the y_d0 name the
	// decomposer would otherwise pick first.
	f.Add("INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nOUTPUT(y)\ny_d0 = NAND(a, b)\ny = AND(y_d0, c, d)\n")
	f.Fuzz(func(t *testing.T, src string) {
		c, err := ParseBench("fuzz", strings.NewReader(src))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		var w1 strings.Builder
		if err := WriteBench(&w1, c); err != nil {
			t.Fatalf("write: %v", err)
		}
		c2, err := ParseBench("fuzz", strings.NewReader(w1.String()))
		if err != nil {
			t.Fatalf("round-trip parse: %v\nwritten:\n%s", err, w1.String())
		}
		var w2 strings.Builder
		if err := WriteBench(&w2, c2); err != nil {
			t.Fatalf("second write: %v", err)
		}
		if w1.String() != w2.String() {
			t.Fatalf("unstable round trip:\nfirst:\n%s\nsecond:\n%s", w1.String(), w2.String())
		}
		if len(c2.Inputs) != len(c.Inputs) || len(c2.Outputs) != len(c.Outputs) || len(c2.Gates) != len(c.Gates) {
			t.Fatalf("structure drift: PI %d->%d PO %d->%d gates %d->%d",
				len(c.Inputs), len(c2.Inputs), len(c.Outputs), len(c2.Outputs), len(c.Gates), len(c2.Gates))
		}
		for i := range c.Gates {
			g1, g2 := &c.Gates[i], &c2.Gates[i]
			if g1.Kind != g2.Kind || g1.Output != g2.Output || len(g1.Fanin) != len(g2.Fanin) {
				t.Fatalf("gate %d drift: %v(%v)->%v vs %v(%v)->%v",
					i, g1.Kind, g1.Fanin, g1.Output, g2.Kind, g2.Fanin, g2.Output)
			}
			for k := range g1.Fanin {
				if g1.Fanin[k] != g2.Fanin[k] {
					t.Fatalf("gate %d pin %d drift: %q vs %q", i, k, g1.Fanin[k], g2.Fanin[k])
				}
			}
		}
	})
}
