package logic

import (
	"sync"

	"cpsinw/internal/gates"
)

// Compiled ternary lookup tables. A gate's 3-valued evaluation is a pure
// function of its (at most 3) ternary inputs, so it compiles into a
// 3^NIn-entry table computed once per gate kind. Table lookups replace
// the unknown-enumeration of evalKind on the fault-simulation hot path;
// CompileGateLUT is defined to be extensionally equal to evalKind, which
// the differential tests in internal/faultsim enforce against the
// hooked reference engine.

// pow3 holds the radix-3 place values used to index ternary LUTs
// (input i contributes in[i] * pow3[i]; V is already a 0/1/2 digit).
var pow3 = [4]int{1, 3, 9, 27}

// Pow3 returns 3^n for the small exponents used by ternary tables.
func Pow3(n int) int { return pow3[n] }

// TernaryIndex encodes a ternary input vector as a radix-3 LUT index,
// input 0 in the least significant digit.
func TernaryIndex(in []V) int {
	idx := 0
	for i, v := range in {
		idx += int(v) * pow3[i]
	}
	return idx
}

// TernaryVector decodes a radix-3 LUT index back into n input values.
func TernaryVector(idx, n int) []V {
	out := make([]V, n)
	for i := range out {
		out[i] = V(idx / pow3[i] % 3)
	}
	return out
}

// GateLUT is the compiled ternary behaviour of one gate kind: entry
// TernaryIndex(in) holds the gate output for the input vector in.
type GateLUT []V

var gateLUTCache sync.Map // gates.Kind -> GateLUT

// CompileGateLUT builds (and caches) the ternary table of a gate kind.
// The returned slice is shared and must not be modified.
func CompileGateLUT(kind gates.Kind) GateLUT {
	if v, ok := gateLUTCache.Load(kind); ok {
		return v.(GateLUT)
	}
	n := gates.Get(kind).NIn
	lut := make(GateLUT, Pow3(n))
	for idx := range lut {
		lut[idx] = evalKind(kind, TernaryVector(idx, n))
	}
	actual, _ := gateLUTCache.LoadOrStore(kind, lut)
	return actual.(GateLUT)
}
