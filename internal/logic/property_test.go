package logic

import (
	"testing"
	"testing/quick"

	"cpsinw/internal/gates"
)

// TestHookedIdentityProperty: EvalHooked with identity hooks must equal
// Eval on every net for random assignments.
func TestHookedIdentityProperty(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	identity := TernaryHooks{
		Stem: func(_ string, v V) V { return v },
		Pin:  func(_, _ int, v V) V { return v },
	}
	f := func(a, b, ci uint8) bool {
		tern := func(x uint8) V {
			switch x % 3 {
			case 0:
				return L0
			case 1:
				return L1
			}
			return LX
		}
		assign := map[string]V{"a": tern(a), "b": tern(b), "cin": tern(ci)}
		plain := c.Eval(assign)
		hooked := c.EvalHooked(assign, identity)
		for net, v := range plain {
			if hooked[net] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestTernaryMonotonicityProperty: refining an X input to a binary value
// must never change an already-defined net (ternary simulation is
// monotone in the information order) — the property PODEM's soundness
// argument rests on.
func TestTernaryMonotonicityProperty(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	f := func(a, b uint8, refined bool) bool {
		tern := func(x uint8) V {
			switch x % 3 {
			case 0:
				return L0
			case 1:
				return L1
			}
			return LX
		}
		partial := map[string]V{"a": tern(a), "b": tern(b), "cin": LX}
		full := map[string]V{"a": tern(a), "b": tern(b), "cin": FromBool(refined)}
		before := c.Eval(partial)
		after := c.Eval(full)
		for net, v := range before {
			if v == LX {
				continue
			}
			if after[net] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSwitchMatchesGateFunctionProperty: the switch-level solver agrees
// with the Boolean function for every library gate under random binary
// vectors (randomised version of the exhaustive check).
func TestSwitchMatchesGateFunctionProperty(t *testing.T) {
	f := func(kidx uint8, vec uint8) bool {
		kinds := gates.Kinds()
		spec := gates.Get(kinds[int(kidx)%len(kinds)])
		v := int(vec) % (1 << spec.NIn)
		bits := spec.InputVector(v)
		in := make([]V, spec.NIn)
		for i, b := range bits {
			in[i] = FromBool(b)
		}
		res := EvalSwitch(spec, in, nil, nil)
		return res.Out == FromBool(spec.Eval(bits)) && !res.Leak
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestChargeRetentionProperty: with every transistor broken, the gate
// output retains whatever the previous state held, for any library gate
// and any vector.
func TestChargeRetentionProperty(t *testing.T) {
	f := func(kidx, vec uint8, prevBit bool) bool {
		kinds := gates.Kinds()
		spec := gates.Get(kinds[int(kidx)%len(kinds)])
		faults := map[string]TFault{}
		for _, tr := range spec.Transistors {
			faults[tr.Name] = TFaultOpen
		}
		v := int(vec) % (1 << spec.NIn)
		bits := spec.InputVector(v)
		in := make([]V, spec.NIn)
		for i, b := range bits {
			in[i] = FromBool(b)
		}
		prev := map[string]V{"out": FromBool(prevBit)}
		res := EvalSwitch(spec, in, faults, prev)
		return res.Out == FromBool(prevBit) && res.OutStrength == SCharge
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPackedVsTernaryProperty: packed 64-way simulation over the
// compiled IR agrees with ternary simulation on binary assignments for
// the full adder.
func TestPackedVsTernaryProperty(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	cc := c.Compile()
	f := func(wa, wb, wc uint64) bool {
		word := map[string]uint64{"a": wa, "b": wb, "cin": wc}
		in := make([]PackedVec, len(c.Inputs))
		for i, pi := range c.Inputs {
			in[i] = PackedVec{Val: word[pi], Known: ^uint64(0)}
		}
		vals := cc.EvalPacked(in, make([]PackedVec, cc.NumNets()))
		for p := 0; p < 64; p += 11 {
			assign := map[string]V{
				"a":   FromBool(wa>>uint(p)&1 == 1),
				"b":   FromBool(wb>>uint(p)&1 == 1),
				"cin": FromBool(wc>>uint(p)&1 == 1),
			}
			serial := c.Eval(assign)
			for _, po := range c.Outputs {
				want, _ := serial[po].Bool()
				if (vals[cc.NetID[po]].Val>>uint(p)&1 == 1) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
