package logic

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestParseBenchISCASWide is the golden import test for an ISCAS-85
// style netlist with AND/OR and fanin-9 gates: the fixture must parse,
// its decomposed native-cell form must match the checked-in golden,
// and its function must match an independent boolean reference.
func TestParseBenchISCASWide(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "iscas_wide.bench"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := ParseBench("iscas_wide", strings.NewReader(string(src)))
	if err != nil {
		t.Fatalf("ParseBench rejected the ISCAS-style fixture: %v", err)
	}
	if got, want := len(c.Inputs), 9; got != want {
		t.Fatalf("inputs = %d, want %d", got, want)
	}
	if got, want := len(c.Outputs), 2; got != want {
		t.Fatalf("outputs = %d, want %d", got, want)
	}

	var w strings.Builder
	if err := WriteBench(&w, c); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "iscas_wide.bench.golden")
	if *updateGolden {
		if err := os.WriteFile(goldenPath, []byte(w.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if w.String() != string(golden) {
		t.Errorf("decomposed netlist drifted from golden (run with -update to regenerate):\n%s", w.String())
	}

	// Independent reference for the fixture's two outputs.
	ref := func(g []bool) (g26, g27 bool) {
		and := func(xs ...bool) bool {
			for _, x := range xs {
				if !x {
					return false
				}
			}
			return true
		}
		or := func(xs ...bool) bool {
			for _, x := range xs {
				if x {
					return true
				}
			}
			return false
		}
		xor := func(xs ...bool) bool {
			p := false
			for _, x := range xs {
				p = p != x
			}
			return p
		}
		g20 := !g[1]
		g21 := and(g[1], g[2], g[3], g[4], g[5], g[6], g[7], g[8], g[9])
		g22 := or(g[1], g[2], g[3], g[4], g[5], g[6], g[7], g[8], g[9])
		g23 := !and(g20, g21, g22, g[5], g[6])
		g24 := !or(g[2], g[3], g22, g[7])
		g25 := xor(g[1], g21, g24, g[8], g[9])
		return !(g23 != g25), and(g23, g24)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		g := make([]bool, 10)
		assign := map[string]V{}
		for i := 1; i <= 9; i++ {
			g[i] = rng.Intn(2) == 1
			assign[fmt.Sprintf("G%d", i)] = FromBool(g[i])
		}
		g26, g27 := ref(g)
		out := c.EvalOutputs(assign)
		if out[0] != FromBool(g26) || out[1] != FromBool(g27) {
			t.Fatalf("trial %d: outputs %v,%v want %v,%v (inputs %v)", trial, out[0], out[1], g26, g27, g[1:])
		}
	}
}

// TestWideGateDecompositionEquivalence is the property test: for every
// decomposed function and arity 2..9, the parsed native-cell tree is
// truth-table-equivalent to the wide gate's reference semantics on
// random binary vectors.
func TestWideGateDecompositionEquivalence(t *testing.T) {
	reduce := map[string]func(xs []bool) bool{
		"AND": func(xs []bool) bool {
			for _, x := range xs {
				if !x {
					return false
				}
			}
			return true
		},
		"OR": func(xs []bool) bool {
			for _, x := range xs {
				if x {
					return true
				}
			}
			return false
		},
		"XOR": func(xs []bool) bool {
			p := false
			for _, x := range xs {
				p = p != x
			}
			return p
		},
	}
	reduce["NAND"] = func(xs []bool) bool { return !reduce["AND"](xs) }
	reduce["NOR"] = func(xs []bool) bool { return !reduce["OR"](xs) }
	reduce["XNOR"] = func(xs []bool) bool { return !reduce["XOR"](xs) }

	rng := rand.New(rand.NewSource(99))
	for _, fn := range []string{"AND", "OR", "NAND", "NOR", "XOR", "XNOR"} {
		for arity := 2; arity <= 9; arity++ {
			var b strings.Builder
			args := make([]string, arity)
			for i := range args {
				args[i] = fmt.Sprintf("x%d", i)
				fmt.Fprintf(&b, "INPUT(x%d)\n", i)
			}
			fmt.Fprintf(&b, "OUTPUT(y)\ny = %s(%s)\n", fn, strings.Join(args, ", "))
			c, err := ParseBench("prop", strings.NewReader(b.String()))
			if err != nil {
				t.Fatalf("%s/%d: %v", fn, arity, err)
			}
			trials := 1 << arity
			if trials > 128 {
				trials = 128
			}
			for trial := 0; trial < trials; trial++ {
				xs := make([]bool, arity)
				assign := map[string]V{}
				for i := range xs {
					xs[i] = rng.Intn(2) == 1
					assign[args[i]] = FromBool(xs[i])
				}
				want := reduce[fn](xs)
				if got := c.EvalOutputs(assign)[0]; got != FromBool(want) {
					t.Fatalf("%s/%d inputs %v: got %v want %v", fn, arity, xs, got, want)
				}
			}
		}
	}
}

// TestParseBenchNativeArityPreserved pins the round-trip contract: the
// kinds WriteBench can express natively parse 1:1, no decomposition.
func TestParseBenchNativeArityPreserved(t *testing.T) {
	src := strings.Join([]string{
		"INPUT(a)", "INPUT(b)", "INPUT(c)", "OUTPUT(y)",
		"n1 = NAND(a, b, c)",
		"n2 = NOR(a, b)",
		"n3 = XOR(n1, n2, c)",
		"n4 = MAJ(a, n3, c)",
		"y = NOT(n4)",
	}, "\n") + "\n"
	c, err := ParseBench("native", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Gates) != 5 {
		t.Fatalf("native kinds must not decompose: got %d gates, want 5", len(c.Gates))
	}
	var w strings.Builder
	if err := WriteBench(&w, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("native", strings.NewReader(w.String()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range c.Gates {
		if c.Gates[i].Kind != c2.Gates[i].Kind || len(c.Gates[i].Fanin) != len(c2.Gates[i].Fanin) {
			t.Fatalf("gate %d changed across round trip: %v/%d vs %v/%d",
				i, c.Gates[i].Kind, len(c.Gates[i].Fanin), c2.Gates[i].Kind, len(c2.Gates[i].Fanin))
		}
	}
}

// TestParseBenchHelperNetCollision checks that decomposition helper
// nets never collide with nets the source already mentions.
func TestParseBenchHelperNetCollision(t *testing.T) {
	// y_d0 / y_d1 are exactly the names the emitter would pick first.
	src := strings.Join([]string{
		"INPUT(a)", "INPUT(b)", "INPUT(c)", "INPUT(d)", "INPUT(e)",
		"OUTPUT(y)",
		"y_d0 = NOT(a)",
		"y_d1 = NOT(b)",
		"y = AND(y_d0, y_d1, c, d, e)",
	}, "\n") + "\n"
	c, err := ParseBench("collide", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	assign := map[string]V{"a": L0, "b": L0, "c": L1, "d": L1, "e": L1}
	if got := c.EvalOutputs(assign)[0]; got != L1 {
		t.Fatalf("AND(!0,!0,1,1,1) = %v, want 1", got)
	}
}

// TestParseBenchLongLine is the regression test for the bufio.Scanner
// 64KB default token limit: a single machine-generated gate line far
// past 64KB must parse.
func TestParseBenchLongLine(t *testing.T) {
	const n = 9000 // ~9000 args x ~8 bytes each: a ~72KB line
	var b strings.Builder
	args := make([]string, n)
	for i := 0; i < n; i++ {
		args[i] = fmt.Sprintf("in%04d", i)
		fmt.Fprintf(&b, "INPUT(in%04d)\n", i)
	}
	b.WriteString("OUTPUT(y)\n")
	fmt.Fprintf(&b, "y = XOR(%s)\n", strings.Join(args, ", "))
	line := len("y = XOR()") + n*8
	if line <= 64*1024 {
		t.Fatalf("test line too short to exercise the limit: %d bytes", line)
	}
	c, err := ParseBench("long", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("long line rejected: %v", err)
	}
	// Parity of all-ones over n inputs.
	assign := map[string]V{}
	for _, a := range args {
		assign[a] = L1
	}
	if got := c.EvalOutputs(assign)[0]; got != FromBool(n%2 == 1) {
		t.Fatalf("parity(%d ones) = %v", n, got)
	}
}
