package logic

// TernaryHooks customises Eval for fault injection. Any hook may be nil.
type TernaryHooks struct {
	// Stem transforms a net value right after it is produced (primary
	// input or gate output) — line stem faults.
	Stem func(net string, v V) V
	// Pin transforms the value read by one gate input — fanout branch
	// faults.
	Pin func(gateIdx, pin int, v V) V
	// Gate overrides the evaluation of a gate; return ok=false to use the
	// normal function — transistor-fault behaviour tables.
	Gate func(gateIdx int, in []V) (V, bool)
}

// EvalHooked simulates the circuit with injection hooks and returns every
// net value.
func (c *Circuit) EvalHooked(assign map[string]V, h TernaryHooks) map[string]V {
	vals := map[string]V{}
	stem := func(net string, v V) V {
		if h.Stem != nil {
			return h.Stem(net, v)
		}
		return v
	}
	for _, pi := range c.Inputs {
		v, ok := assign[pi]
		if !ok {
			v = LX
		}
		vals[pi] = stem(pi, v)
	}
	in := make([]V, 3)
	for _, gi := range c.levelized {
		g := &c.Gates[gi]
		in = in[:len(g.Fanin)]
		for i, f := range g.Fanin {
			v := vals[f]
			if h.Pin != nil {
				v = h.Pin(gi, i, v)
			}
			in[i] = v
		}
		var out V
		var overridden bool
		if h.Gate != nil {
			out, overridden = h.Gate(gi, in)
		}
		if !overridden {
			out = evalKind(g.Kind, in)
		}
		vals[g.Output] = stem(g.Output, out)
	}
	return vals
}

// Packed (bit-parallel) fault injection no longer lives here: line
// stuck-at faults are injected as forced PackedVec planes directly over
// the levelized CompiledCircuit IR in internal/faultsim, sharing one
// dense representation with the transistor and bridge engines.
