package logic

// TernaryHooks customises Eval for fault injection. Any hook may be nil.
type TernaryHooks struct {
	// Stem transforms a net value right after it is produced (primary
	// input or gate output) — line stem faults.
	Stem func(net string, v V) V
	// Pin transforms the value read by one gate input — fanout branch
	// faults.
	Pin func(gateIdx, pin int, v V) V
	// Gate overrides the evaluation of a gate; return ok=false to use the
	// normal function — transistor-fault behaviour tables.
	Gate func(gateIdx int, in []V) (V, bool)
}

// EvalHooked simulates the circuit with injection hooks and returns every
// net value.
func (c *Circuit) EvalHooked(assign map[string]V, h TernaryHooks) map[string]V {
	vals := map[string]V{}
	stem := func(net string, v V) V {
		if h.Stem != nil {
			return h.Stem(net, v)
		}
		return v
	}
	for _, pi := range c.Inputs {
		v, ok := assign[pi]
		if !ok {
			v = LX
		}
		vals[pi] = stem(pi, v)
	}
	in := make([]V, 3)
	for _, gi := range c.levelized {
		g := &c.Gates[gi]
		in = in[:len(g.Fanin)]
		for i, f := range g.Fanin {
			v := vals[f]
			if h.Pin != nil {
				v = h.Pin(gi, i, v)
			}
			in[i] = v
		}
		var out V
		var overridden bool
		if h.Gate != nil {
			out, overridden = h.Gate(gi, in)
		}
		if !overridden {
			out = evalKind(g.Kind, in)
		}
		vals[g.Output] = stem(g.Output, out)
	}
	return vals
}

// PackedHooks customises EvalPacked for 64-way parallel fault injection.
type PackedHooks struct {
	Stem func(net string, w uint64) uint64
	Pin  func(gateIdx, pin int, w uint64) uint64
}

// EvalPackedHooked simulates 64 binary patterns with line-fault hooks.
func (c *Circuit) EvalPackedHooked(assign PackedAssign, h PackedHooks) map[string]uint64 {
	vals := map[string]uint64{}
	stem := func(net string, w uint64) uint64 {
		if h.Stem != nil {
			return h.Stem(net, w)
		}
		return w
	}
	for _, pi := range c.Inputs {
		vals[pi] = stem(pi, assign[pi])
	}
	var words [3]uint64
	for _, gi := range c.levelized {
		g := &c.Gates[gi]
		for i, f := range g.Fanin {
			w := vals[f]
			if h.Pin != nil {
				w = h.Pin(gi, i, w)
			}
			words[i] = w
		}
		vals[g.Output] = stem(g.Output, evalPackedWords(g.Kind, words[:len(g.Fanin)]))
	}
	return vals
}
