package logic

import (
	"cpsinw/internal/gates"
)

// TFault is a transistor-level fault injected into a switch-level
// evaluation. TFaultStuckAtN and TFaultStuckAtP are the paper's new fault
// models: the polarity terminals bridged to VDD respectively GND.
type TFault int

const (
	TFaultNone     TFault = iota
	TFaultOpen            // stuck-open / channel break: never conducts
	TFaultStuckOn         // always conducts at full strength
	TFaultStuckAtN        // stuck-at n-type: PGS = PGD = '1'
	TFaultStuckAtP        // stuck-at p-type: PGS = PGD = '0'
)

// String names the fault as in the paper.
func (f TFault) String() string {
	switch f {
	case TFaultNone:
		return "fault-free"
	case TFaultOpen:
		return "stuck-open"
	case TFaultStuckOn:
		return "stuck-on"
	case TFaultStuckAtN:
		return "stuck-at-n-type"
	case TFaultStuckAtP:
		return "stuck-at-p-type"
	}
	return "invalid"
}

// conduction mode of one transistor under given gate levels.
type mode int

const (
	modeOff mode = iota
	modeN
	modeP
	modeClosed  // stuck-on: ideal closed switch
	modeUnknown // gate level X: may or may not conduct
)

// SwitchResult is the outcome of a switch-level gate evaluation.
type SwitchResult struct {
	// Out is the resolved output value.
	Out V
	// OutStrength is the strength of the winning drive at the output.
	OutStrength Strength
	// Contention reports opposing drives of equal strength at a node
	// (resolved in favour of logic 0 — the electron branch of the device
	// is the stronger one in this technology).
	Contention bool
	// Leak reports a conducting rail-to-rail path (elevated IDDQ).
	Leak bool
	// Nodes holds the resolved value of the output and internal nodes.
	Nodes map[string]V
}

// EvalSwitch solves the transistor network of one gate at the given input
// vector. faults optionally injects per-transistor faults, keyed by the
// transistor name in the spec; prev supplies previous node values for
// charge retention (two-pattern testing), keyed by node label ("out" for
// the output, internal node names otherwise).
func EvalSwitch(spec *gates.Spec, in []V, faults map[string]TFault, prev map[string]V) SwitchResult {
	s := newSolver(spec, in, faults, prev)
	return s.run()
}

const outNode = "out"

type termRef struct {
	driver bool // rail or input literal
	value  V    // for drivers
	node   int  // for internal/out nodes
}

type solverTransistor struct {
	name     string
	d, s     termRef
	cg       gates.Sig
	pgs, pgd gates.Sig
	fault    TFault
}

type solver struct {
	spec   *gates.Spec
	in     []V
	nodes  []string // index -> node label
	nodeIx map[string]int
	trs    []solverTransistor
	prev   map[string]V
}

func newSolver(spec *gates.Spec, in []V, faults map[string]TFault, prev map[string]V) *solver {
	s := &solver{spec: spec, in: in, nodeIx: map[string]int{}, prev: prev}
	nodeOf := func(label string) int {
		if i, ok := s.nodeIx[label]; ok {
			return i
		}
		s.nodeIx[label] = len(s.nodes)
		s.nodes = append(s.nodes, label)
		return len(s.nodes) - 1
	}
	ref := func(sig gates.Sig) termRef {
		switch sig.K {
		case gates.SigGnd:
			return termRef{driver: true, value: L0}
		case gates.SigVdd:
			return termRef{driver: true, value: L1}
		case gates.SigIn:
			return termRef{driver: true, value: s.inputVal(sig.In, false)}
		case gates.SigInN:
			return termRef{driver: true, value: s.inputVal(sig.In, true)}
		case gates.SigOut:
			return termRef{node: nodeOf(outNode)}
		default:
			return termRef{node: nodeOf(sig.Node)}
		}
	}
	nodeOf(outNode) // ensure the output node exists even if untouched
	for _, tr := range spec.Transistors {
		s.trs = append(s.trs, solverTransistor{
			name:  tr.Name,
			d:     ref(tr.D),
			s:     ref(tr.S),
			cg:    tr.CG,
			pgs:   tr.PGS,
			pgd:   tr.PGD,
			fault: faults[tr.Name],
		})
	}
	return s
}

func (s *solver) inputVal(i int, neg bool) V {
	if i >= len(s.in) {
		return LX
	}
	v := s.in[i]
	if neg {
		return v.Not()
	}
	return v
}

// sigLevel resolves a gate-terminal signal to a logic value given current
// node estimates.
func (s *solver) sigLevel(sig gates.Sig, nodeVals []V) V {
	switch sig.K {
	case gates.SigGnd:
		return L0
	case gates.SigVdd:
		return L1
	case gates.SigIn:
		return s.inputVal(sig.In, false)
	case gates.SigInN:
		return s.inputVal(sig.In, true)
	case gates.SigOut:
		return nodeVals[s.nodeIx[outNode]]
	default:
		return nodeVals[s.nodeIx[sig.Node]]
	}
}

// conductionMode evaluates the paper's conduction rule with the fault
// overrides applied.
func (s *solver) conductionMode(tr *solverTransistor, nodeVals []V) mode {
	switch tr.fault {
	case TFaultOpen:
		return modeOff
	case TFaultStuckOn:
		return modeClosed
	}
	cg := s.sigLevel(tr.cg, nodeVals)
	pgs := s.sigLevel(tr.pgs, nodeVals)
	pgd := s.sigLevel(tr.pgd, nodeVals)
	switch tr.fault {
	case TFaultStuckAtN:
		pgs, pgd = L1, L1
	case TFaultStuckAtP:
		pgs, pgd = L0, L0
	}
	if cg == LX || pgs == LX || pgd == LX {
		return modeUnknown
	}
	if cg == L1 && pgs == L1 && pgd == L1 {
		return modeN
	}
	if cg == L0 && pgs == L0 && pgd == L0 {
		return modeP
	}
	return modeOff
}

// passStrength is the strength ceiling a conducting device imposes on a
// passed value: an n-configured device passes 0 at full strength and
// degrades 1; a p-configured device is the mirror.
func passStrength(m mode, val V) Strength {
	switch m {
	case modeN:
		if val == L1 {
			return SWeak
		}
		return SStrong
	case modeP:
		if val == L0 {
			return SWeak
		}
		return SStrong
	case modeClosed, modeUnknown:
		return SStrong
	}
	return SNone
}

type arrivals struct {
	s [3]Strength // strongest definite arrival per value L0, L1, LX
	p [3]Strength // strongest possible arrival (conduction uncertain)
}

func (a *arrivals) improve(v V, s Strength, possible bool) bool {
	set := &a.s
	if possible {
		set = &a.p
	}
	if s > set[v] {
		set[v] = s
		return true
	}
	return false
}

// resolve returns the node value under the "electron branch wins"
// contention policy, plus flags. Possible arrivals (devices whose
// conduction is unknown) can only degrade the result to X — they never
// establish a definite value, and a possible arrival that agrees with the
// definite winner changes nothing.
func (a *arrivals) resolve(prev V) (v V, strength Strength, contention, driven bool) {
	dmax := SNone
	for _, s := range a.s {
		if s > dmax {
			dmax = s
		}
	}
	pmax := SNone
	for _, s := range a.p {
		if s > pmax {
			pmax = s
		}
	}
	if dmax == SNone {
		if pmax == SNone {
			return prev, SCharge, false, false
		}
		// Only uncertain drives: the node may be driven or floating.
		if onlyValue(a.p, prev) {
			return prev, pmax, false, true
		}
		return LX, pmax, false, true
	}
	top := []V{}
	for val, s := range a.s {
		if s == dmax {
			top = append(top, V(val))
		}
	}
	var winner V
	switch {
	case len(top) == 1:
		winner = top[0]
	default:
		winner = LX // X involved in the tie -> X
		xInTie := false
		for _, t := range top {
			if t == LX {
				xInTie = true
			}
		}
		if !xInTie {
			winner = L0 // 0 vs 1: electron branch wins
		}
		contention = true
	}
	if winner != LX {
		// A weaker definite opposing arrival is still a fight.
		if a.s[winner.Not()] >= SWeak {
			contention = true
		}
		// Possible arrivals that could overturn the winner force X.
		for val, s := range a.p {
			if V(val) == winner {
				continue
			}
			if s >= dmax {
				return LX, dmax, contention, true
			}
		}
	}
	return winner, dmax, contention, true
}

// onlyValue reports whether every non-SNone entry equals v.
func onlyValue(set [3]Strength, v V) bool {
	for val, s := range set {
		if s > SNone && V(val) != v {
			return false
		}
	}
	return true
}

func (s *solver) run() SwitchResult {
	nodeVals := make([]V, len(s.nodes))
	for i, label := range s.nodes {
		if p, ok := s.prev[label]; ok {
			nodeVals[i] = p
		} else {
			nodeVals[i] = LX
		}
	}

	var res SwitchResult
	// Outer loop: conduction depends on node values (internal gate nets,
	// e.g. BUF); iterate to a fixpoint.
	for outer := 0; outer < 2+len(s.nodes); outer++ {
		modes := make([]mode, len(s.trs))
		for i := range s.trs {
			modes[i] = s.conductionMode(&s.trs[i], nodeVals)
		}

		arr := make([]arrivals, len(s.nodes))
		// Inner relaxation: propagate drives through conducting devices.
		for iter := 0; iter < 4*len(s.trs)+4; iter++ {
			changed := false
			for i := range s.trs {
				tr := &s.trs[i]
				m := modes[i]
				if m == modeOff {
					continue
				}
				changed = s.propagate(tr.d, tr.s, m, arr, nodeVals) || changed
				changed = s.propagate(tr.s, tr.d, m, arr, nodeVals) || changed
			}
			if !changed {
				break
			}
		}

		newVals := make([]V, len(s.nodes))
		contention := false
		for i := range s.nodes {
			prev := nodeVals[i]
			if p, ok := s.prev[s.nodes[i]]; ok && arrUndriven(&arr[i]) {
				prev = p
			}
			v, _, cont, _ := arr[i].resolve(prev)
			newVals[i] = v
			contention = contention || cont
		}

		stable := true
		for i := range nodeVals {
			if nodeVals[i] != newVals[i] {
				stable = false
			}
		}
		nodeVals = newVals

		if stable || outer == 1+len(s.nodes) {
			outIdx := s.nodeIx[outNode]
			prevOut := LX
			if p, ok := s.prev[outNode]; ok {
				prevOut = p
			}
			v, strength, cont, driven := arr[outIdx].resolve(prevOut)
			if !driven {
				strength = SCharge
			}
			res = SwitchResult{
				Out:         v,
				OutStrength: strength,
				Contention:  contention || cont,
				Leak:        s.leakPath(modes),
				Nodes:       map[string]V{},
			}
			for i, label := range s.nodes {
				res.Nodes[label] = nodeVals[i]
			}
			break
		}
	}
	return res
}

func arrUndriven(a *arrivals) bool {
	for _, s := range a.s {
		if s > SNone {
			return false
		}
	}
	for _, s := range a.p {
		if s > SNone {
			return false
		}
	}
	return true
}

// propagate pushes the drive on terminal "from" through a conducting
// device onto terminal "to". Returns whether anything improved.
// Arrivals through a device with uncertain conduction become "possible".
func (s *solver) propagate(from, to termRef, m mode, arr []arrivals, nodeVals []V) bool {
	if to.driver {
		return false // rails absorb anything
	}
	improved := false
	push := func(v V, st Strength, possible bool) {
		if st <= SNone {
			return
		}
		ceil := passStrength(m, v)
		if ceil < st {
			st = ceil
		}
		if m == modeUnknown {
			possible = true
		}
		if st > SNone && arr[to.node].improve(v, st, possible) {
			improved = true
		}
	}
	if from.driver {
		push(from.value, SStrong, false)
		return improved
	}
	// Internal node: forward its current arrivals (weakened), which
	// models series device chains.
	for val, st := range arr[from.node].s {
		if st > SNone {
			push(V(val), st, false)
		}
	}
	for val, st := range arr[from.node].p {
		if st > SNone {
			push(V(val), st, true)
		}
	}
	return improved
}

// leakPath reports whether conducting devices connect a logic-1 driver to
// a logic-0 driver (a static rail-to-rail path: elevated IDDQ).
func (s *solver) leakPath(modes []mode) bool {
	// Union-find over: node indices 0..len(nodes)-1, then two virtual
	// rails: rail0 = len(nodes), rail1 = len(nodes)+1.
	n := len(s.nodes)
	parent := make([]int, n+2)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	rail0, rail1 := n, n+1
	termIdx := func(t termRef) int {
		if !t.driver {
			return t.node
		}
		switch t.value {
		case L0:
			return rail0
		case L1:
			return rail1
		}
		return -1
	}
	for i := range s.trs {
		if modes[i] == modeOff || modes[i] == modeUnknown {
			continue
		}
		a := termIdx(s.trs[i].d)
		b := termIdx(s.trs[i].s)
		if a < 0 || b < 0 {
			continue
		}
		union(a, b)
	}
	return find(rail0) == find(rail1)
}
