package logic

import (
	"math/bits"

	"cpsinw/internal/gates"
)

// Bit-parallel ternary simulation (parallel-pattern single-fault
// propagation, PPSFP): 64 ternary patterns are packed into two bitplane
// words per net, and every gate evaluates all 64 lanes with a handful of
// word operations. The encoding is canonical — a lane's value bit is
// only set when its known bit is — so two planes are ternary-equal
// exactly when the structs are equal.

// PackedVec holds 64 ternary lanes as two bitplanes: lane k is X when
// Known bit k is clear, otherwise 0/1 per the Val bit. The canonical
// form keeps Val a subset of Known; Canon restores it for planes built
// from arbitrary words.
type PackedVec struct {
	Val   uint64
	Known uint64
}

// Canon clears value bits of unknown lanes, restoring the canonical
// encoding (ternary-equal planes compare equal as structs).
func (p PackedVec) Canon() PackedVec {
	p.Val &= p.Known
	return p
}

// Get returns lane k's ternary value.
func (p PackedVec) Get(k int) V {
	if p.Known>>uint(k)&1 == 0 {
		return LX
	}
	if p.Val>>uint(k)&1 == 1 {
		return L1
	}
	return L0
}

// WithLane returns the plane with lane k set to v (canonical).
func (p PackedVec) WithLane(k int, v V) PackedVec {
	bit := uint64(1) << uint(k)
	switch v {
	case L0:
		p.Val &^= bit
		p.Known |= bit
	case L1:
		p.Val |= bit
		p.Known |= bit
	default:
		p.Val &^= bit
		p.Known &^= bit
	}
	return p
}

// ConstPacked broadcasts one ternary value to all 64 lanes.
func ConstPacked(v V) PackedVec {
	switch v {
	case L0:
		return PackedVec{Val: 0, Known: ^uint64(0)}
	case L1:
		return PackedVec{Val: ^uint64(0), Known: ^uint64(0)}
	}
	return PackedVec{}
}

// PackVec packs up to 64 ternary values, lane k from vs[k]; lanes
// beyond len(vs) are X.
func PackVec(vs []V) PackedVec {
	var p PackedVec
	for k, v := range vs {
		p = p.WithLane(k, v)
	}
	return p
}

// UnpackVec expands the first n lanes back into ternary values.
func UnpackVec(p PackedVec, n int) []V {
	out := make([]V, n)
	for k := range out {
		out[k] = p.Get(k)
	}
	return out
}

// EqMask returns the lanes where the two planes hold the same ternary
// value.
func EqMask(a, b PackedVec) uint64 {
	a, b = a.Canon(), b.Canon()
	return ^((a.Val ^ b.Val) | (a.Known ^ b.Known))
}

// DefiniteDiffMask returns the lanes where both planes are defined and
// different — the packed counterpart of a definite good/faulty
// primary-output mismatch (X never counts).
func DefiniteDiffMask(a, b PackedVec) uint64 {
	return (a.Val ^ b.Val) & a.Known & b.Known
}

// FirstLane returns the lowest set lane of a mask, or 64 when empty.
func FirstLane(m uint64) int { return bits.TrailingZeros64(m) }

// TernaryLaneMasks decomposes up to 3 input planes into per-digit lane
// masks: masks[i][d] holds the lanes where input i equals V(d). The
// three masks of one input partition the 64 lanes.
func TernaryLaneMasks(in []PackedVec) [3][3]uint64 {
	var masks [3][3]uint64
	for i, p := range in {
		p = p.Canon()
		masks[i][0] = p.Known &^ p.Val
		masks[i][1] = p.Val
		masks[i][2] = ^p.Known
	}
	return masks
}

// EvalLUTPacked evaluates an arbitrary ternary LUT across all 64 lanes
// by accumulating the lane mask of every LUT entry: extensionally equal
// to a per-lane scalar lookup, for any table shape (gate LUTs and the
// per-fault behaviour tables of internal/faultsim alike).
func EvalLUTPacked(lut GateLUT, in []PackedVec) PackedVec {
	masks := TernaryLaneMasks(in)
	var out PackedVec
	for idx, o := range lut {
		if o == LX {
			continue // unknown lanes carry no plane bits (canonical)
		}
		m := ^uint64(0)
		rem := idx
		for i := range in {
			m &= masks[i][rem%3]
			rem /= 3
		}
		if m == 0 {
			continue
		}
		out.Known |= m
		if o == L1 {
			out.Val |= m
		}
	}
	return out
}

// EvalKindPacked evaluates one gate kind over packed ternary lanes.
// The common kinds lower to direct Kleene bitplane formulas (a few word
// ops per gate instead of a 3^n mask loop); anything else falls back to
// the generic LUT path. Inputs must be canonical; the output always is.
// Extensional equality with CompileGateLUT per lane is enforced by the
// packed property tests and FuzzPackedRoundTrip.
func EvalKindPacked(kind gates.Kind, lut GateLUT, in []PackedVec) PackedVec {
	switch kind {
	case gates.BUF:
		return in[0]
	case gates.INV:
		return PackedVec{Val: in[0].Known &^ in[0].Val, Known: in[0].Known}
	case gates.NAND2:
		a, b := in[0], in[1]
		val := a.Val & b.Val
		known := a.Known&b.Known | (a.Known &^ a.Val) | (b.Known &^ b.Val)
		return PackedVec{Val: known &^ val, Known: known}
	case gates.NAND3:
		a, b, c := in[0], in[1], in[2]
		val := a.Val & b.Val & c.Val
		known := a.Known&b.Known&c.Known |
			(a.Known &^ a.Val) | (b.Known &^ b.Val) | (c.Known &^ c.Val)
		return PackedVec{Val: known &^ val, Known: known}
	case gates.NOR2:
		a, b := in[0], in[1]
		val := a.Val | b.Val
		known := a.Known&b.Known | val
		return PackedVec{Val: known &^ val, Known: known}
	case gates.NOR3:
		a, b, c := in[0], in[1], in[2]
		val := a.Val | b.Val | c.Val
		known := a.Known&b.Known&c.Known | val
		return PackedVec{Val: known &^ val, Known: known}
	case gates.XOR2:
		a, b := in[0], in[1]
		known := a.Known & b.Known
		return PackedVec{Val: (a.Val ^ b.Val) & known, Known: known}
	case gates.XOR3:
		a, b, c := in[0], in[1], in[2]
		known := a.Known & b.Known & c.Known
		return PackedVec{Val: (a.Val ^ b.Val ^ c.Val) & known, Known: known}
	case gates.MAJ3:
		a, b, c := in[0], in[1], in[2]
		ones := a.Val&b.Val | b.Val&c.Val | a.Val&c.Val
		za, zb, zc := a.Known&^a.Val, b.Known&^b.Val, c.Known&^c.Val
		zeros := za&zb | zb&zc | za&zc
		return PackedVec{Val: ones, Known: ones | zeros}
	}
	return EvalLUTPacked(lut, in)
}

// EvalGatePacked is the standalone packed evaluation of one gate kind
// (inputs need not be canonical) — the form the fuzz and property tests
// compare against the scalar LUT lane by lane.
func EvalGatePacked(kind gates.Kind, in []PackedVec) PackedVec {
	canon := make([]PackedVec, len(in))
	for i, p := range in {
		canon[i] = p.Canon()
	}
	return EvalKindPacked(kind, CompileGateLUT(kind), canon)
}
