package logic

import (
	"strings"
	"testing"
	"testing/quick"

	"cpsinw/internal/gates"
)

func TestValueBasics(t *testing.T) {
	if L0.String() != "0" || L1.String() != "1" || LX.String() != "X" {
		t.Error("value names wrong")
	}
	if L0.Not() != L1 || L1.Not() != L0 || LX.Not() != LX {
		t.Error("Not wrong")
	}
	if FromBool(true) != L1 || FromBool(false) != L0 {
		t.Error("FromBool wrong")
	}
	if b, ok := L1.Bool(); !ok || !b {
		t.Error("Bool(L1) wrong")
	}
	if _, ok := LX.Bool(); ok {
		t.Error("Bool(LX) should be undefined")
	}
	if SStrong <= SWeak || SWeak <= SCharge || SCharge <= SNone {
		t.Error("strength ordering broken")
	}
}

func TestTFaultString(t *testing.T) {
	names := map[TFault]string{
		TFaultNone: "fault-free", TFaultOpen: "stuck-open", TFaultStuckOn: "stuck-on",
		TFaultStuckAtN: "stuck-at-n-type", TFaultStuckAtP: "stuck-at-p-type",
	}
	for f, want := range names {
		if f.String() != want {
			t.Errorf("%d: %q != %q", int(f), f.String(), want)
		}
	}
}

// TestSwitchLevelMatchesTruthTables: the fault-free switch-level solver
// must agree with the Boolean function of every library gate on every
// binary input vector.
func TestSwitchLevelMatchesTruthTables(t *testing.T) {
	for _, k := range gates.Kinds() {
		spec := gates.Get(k)
		for v := 0; v < 1<<spec.NIn; v++ {
			in := make([]V, spec.NIn)
			bits := spec.InputVector(v)
			for i, b := range bits {
				in[i] = FromBool(b)
			}
			res := EvalSwitch(spec, in, nil, nil)
			want := FromBool(spec.Eval(bits))
			if res.Out != want {
				t.Errorf("%v vector %0*b: switch=%v want %v (strength %v)", k, spec.NIn, v, res.Out, want, res.OutStrength)
			}
			if res.Leak {
				t.Errorf("%v vector %0*b: fault-free gate reports a leak", k, spec.NIn, v)
			}
		}
	}
}

func TestSwitchLevelXInputsGiveX(t *testing.T) {
	spec := gates.Get(gates.NAND2)
	res := EvalSwitch(spec, []V{LX, L1}, nil, nil)
	if res.Out != LX {
		t.Errorf("NAND2(X,1) = %v, want X", res.Out)
	}
	// But a controlling 0 forces the output regardless of the X.
	res = EvalSwitch(spec, []V{L0, LX}, nil, nil)
	if res.Out != L1 {
		t.Errorf("NAND2(0,X) = %v, want 1", res.Out)
	}
}

func TestChannelBreakMaskedInXOR2(t *testing.T) {
	// Paper section V-C: a channel break in the DP XOR2 is masked by the
	// redundant pass transistors — the function does not change.
	spec := gates.Get(gates.XOR2)
	for _, tr := range spec.Transistors {
		for v := 0; v < 4; v++ {
			bits := spec.InputVector(v)
			in := []V{FromBool(bits[0]), FromBool(bits[1])}
			res := EvalSwitch(spec, in, map[string]TFault{tr.Name: TFaultOpen}, nil)
			want := FromBool(spec.Eval(bits))
			if res.Out != want {
				t.Errorf("XOR2 break %s vector %02b: out=%v, want %v (masking violated)", tr.Name, v, res.Out, want)
			}
		}
	}
}

func TestChannelBreakNotMaskedInNAND(t *testing.T) {
	// In SP gates a break behaves as a classical stuck-open: some vector
	// leaves the output floating (charge retention), detectable with
	// two-pattern tests.
	spec := gates.Get(gates.NAND2)
	res1 := EvalSwitch(spec, []V{L1, L1}, map[string]TFault{"t1": TFaultOpen}, nil)
	if res1.Out != L0 {
		t.Fatalf("init vector 11: out=%v, want 0", res1.Out)
	}
	// Second pattern 01: fault-free output is 1; with t1 broken the pull-up
	// is dead and the output retains the previous 0.
	res2 := EvalSwitch(spec, []V{L0, L1}, map[string]TFault{"t1": TFaultOpen}, res1.Nodes)
	if res2.Out != L0 || res2.OutStrength != SCharge {
		t.Errorf("test vector 01 after init 11: out=%v strength=%v, want retained 0 at charge strength", res2.Out, res2.OutStrength)
	}
	// Fault-free comparison.
	good := EvalSwitch(spec, []V{L0, L1}, nil, res1.Nodes)
	if good.Out != L1 {
		t.Errorf("fault-free 01: out=%v, want 1", good.Out)
	}
}

func TestStuckAtNTypeOnXOR2PullUp(t *testing.T) {
	// Stuck-at n-type on t1 (pull-up): at input 11 the faulty device
	// conducts n-type against the pull-down — leakage without a value
	// flip (Table III: pull-up polarity faults are IDDQ-detectable only).
	spec := gates.Get(gates.XOR2)
	res := EvalSwitch(spec, []V{L1, L1}, map[string]TFault{"t1": TFaultStuckAtN}, nil)
	if res.Out != L0 {
		t.Errorf("out=%v, want correct 0", res.Out)
	}
	if !res.Leak {
		t.Error("expected rail-to-rail leak")
	}
	// And no leak in the fault-free circuit at the same vector.
	if EvalSwitch(spec, []V{L1, L1}, nil, nil).Leak {
		t.Error("fault-free leak at 11")
	}
}

func TestStuckAtNTypeOnXOR2PullDownFlipsOutput(t *testing.T) {
	// Stuck-at n-type on t3 (pull-down): at input 10 the faulty n-path
	// fights the true pull-up and wins (electron branch stronger):
	// the output flips — Table III's "output voltage detectable" case.
	spec := gates.Get(gates.XOR2)
	good := EvalSwitch(spec, []V{L1, L0}, nil, nil)
	if good.Out != L1 {
		t.Fatalf("fault-free 10: out=%v, want 1", good.Out)
	}
	res := EvalSwitch(spec, []V{L1, L0}, map[string]TFault{"t3": TFaultStuckAtN}, nil)
	if res.Out != L0 {
		t.Errorf("faulty 10: out=%v, want flipped 0", res.Out)
	}
	if !res.Leak || !res.Contention {
		t.Errorf("expected leak+contention, got leak=%v contention=%v", res.Leak, res.Contention)
	}
}

func TestStuckOnLeaks(t *testing.T) {
	spec := gates.Get(gates.INV)
	// Stuck-on pull-down with input 0: output should stay 1 (or flip)
	// but a rail path must exist.
	res := EvalSwitch(spec, []V{L0}, map[string]TFault{"t3": TFaultStuckOn}, nil)
	if !res.Leak {
		t.Error("stuck-on pull-down at input 0 must leak")
	}
}

func TestSwitchBUFInternalNode(t *testing.T) {
	// BUF exercises the outer fixpoint: its second stage's CG is an
	// internal node.
	spec := gates.Get(gates.BUF)
	for _, v := range []V{L0, L1} {
		res := EvalSwitch(spec, []V{v}, nil, nil)
		if res.Out != v {
			t.Errorf("BUF(%v) = %v", v, res.Out)
		}
	}
}

func mustParse(t *testing.T, src string) *Circuit {
	t.Helper()
	c, err := ParseBench("test", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const fullAdderBench = `
# full adder with native CP cells
INPUT(a)
INPUT(b)
INPUT(cin)
OUTPUT(sum)
OUTPUT(cout)
sum = XOR(a, b, cin)
cout = MAJ(a, b, cin)
`

func TestParseBenchFullAdder(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	if len(c.Inputs) != 3 || len(c.Outputs) != 2 || len(c.Gates) != 2 {
		t.Fatalf("structure: %+v", c.Statistics())
	}
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for ci := 0; ci < 2; ci++ {
				out := c.EvalOutputs(map[string]V{
					"a": FromBool(a == 1), "b": FromBool(b == 1), "cin": FromBool(ci == 1),
				})
				sum := a ^ b ^ ci
				cout := 0
				if a+b+ci >= 2 {
					cout = 1
				}
				if out[0] != FromBool(sum == 1) || out[1] != FromBool(cout == 1) {
					t.Errorf("FA(%d,%d,%d) = %v,%v want %d,%d", a, b, ci, out[0], out[1], sum, cout)
				}
			}
		}
	}
}

func TestParseBenchErrors(t *testing.T) {
	bad := []string{
		"INPUT(a)\ny = FOO(a)\nOUTPUT(y)\n",
		"INPUT(a)\ny = NAND()\nOUTPUT(y)\n",
		"INPUT(a)\ny = MAJ(a, a, a, a)\nOUTPUT(y)\n",  // MAJ has no wide form
		"INPUT(a)\nOUTPUT(y)\n",                       // undriven output
		"INPUT(a)\ny = NOT(a)\ny = BUF(a)\nOUTPUT(y)", // multiple drivers
		"INPUT(a)\ny = NOT(z)\nOUTPUT(y)",             // undriven fanin
		"INPUT(a)\nnonsense line\nOUTPUT(a)",
		"INPUT(a)\ny = MAJ(a, a)\nOUTPUT(y)",
	}
	for _, src := range bad {
		if _, err := ParseBench("bad", strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad bench:\n%s", src)
		}
	}
}

func TestBenchCycleDetection(t *testing.T) {
	src := "INPUT(a)\nx = NAND(a, y)\ny = NOT(x)\nOUTPUT(y)\n"
	if _, err := ParseBench("cyc", strings.NewReader(src)); err == nil {
		t.Error("cycle accepted")
	}
}

func TestBenchRoundTrip(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	var b strings.Builder
	if err := WriteBench(&b, c); err != nil {
		t.Fatal(err)
	}
	c2, err := ParseBench("rt", strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("round trip: %v\n%s", err, b.String())
	}
	// Behavioural equivalence over all input vectors.
	for v := 0; v < 8; v++ {
		assign := map[string]V{
			"a":   FromBool(v&1 == 1),
			"b":   FromBool(v&2 == 2),
			"cin": FromBool(v&4 == 4),
		}
		o1 := c.EvalOutputs(assign)
		o2 := c2.EvalOutputs(assign)
		for i := range o1 {
			if o1[i] != o2[i] {
				t.Fatalf("round trip differs at vector %d output %d", v, i)
			}
		}
	}
}

func TestEvalTernaryXPropagation(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	out := c.EvalOutputs(map[string]V{"a": L1, "b": LX, "cin": L0})
	if out[0] != LX {
		t.Errorf("sum with X input = %v, want X", out[0])
	}
	// MAJ(1, X, 0) is X too.
	if out[1] != LX {
		t.Errorf("cout = %v, want X", out[1])
	}
	// But MAJ(1, X, 1) = 1 regardless of X.
	out = c.EvalOutputs(map[string]V{"a": L1, "b": LX, "cin": L1})
	if out[1] != L1 {
		t.Errorf("MAJ(1,X,1) = %v, want 1", out[1])
	}
}

func TestEvalPackedAgainstTernary(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	cc := c.Compile()
	// 8 exhaustive patterns packed in one word.
	in := make([]PackedVec, len(c.Inputs))
	lane := map[string]func(p int) V{
		"a":   func(p int) V { return FromBool(p&1 == 1) },
		"b":   func(p int) V { return FromBool(p&2 == 2) },
		"cin": func(p int) V { return FromBool(p&4 == 4) },
	}
	for i, pi := range c.Inputs {
		for p := 0; p < 8; p++ {
			in[i] = in[i].WithLane(p, lane[pi](p))
		}
	}
	vals := cc.EvalPacked(in, make([]PackedVec, cc.NumNets()))
	for p := 0; p < 8; p++ {
		serial := c.EvalOutputs(map[string]V{
			"a": lane["a"](p), "b": lane["b"](p), "cin": lane["cin"](p),
		})
		for i, po := range c.Outputs {
			if got := vals[cc.NetID[po]].Get(p); got != serial[i] {
				t.Errorf("pattern %d output %s: packed=%v serial=%v", p, po, got, serial[i])
			}
		}
	}
}

func TestEvalPackedPropertyAllKinds(t *testing.T) {
	// EvalKindBlock must agree with the scalar Eval on random binary
	// words for every library gate, at every supported block width.
	f := func(a, b, c uint64, kidx uint8) bool {
		kinds := gates.Kinds()
		k := kinds[int(kidx)%len(kinds)]
		spec := gates.Get(k)
		lut := CompileGateLUT(k)
		words := []uint64{a, b, c}[:spec.NIn]
		for _, w := range []int{1, 2, 4} {
			ins := make([]PackedBlock, spec.NIn)
			for i, word := range words {
				ins[i] = make(PackedBlock, w)
				for j := range ins[i] {
					ins[i][j] = PackedVec{Val: word, Known: ^uint64(0)}
				}
			}
			out := make(PackedBlock, w)
			EvalKindBlock(k, lut, ins, out)
			for j := 0; j < w; j++ {
				for p := 0; p < 64; p += 7 {
					in := make([]bool, spec.NIn)
					for i := range words {
						in[i] = words[i]>>uint(p)&1 == 1
					}
					if (out[j].Val>>uint(p)&1 == 1) != spec.Eval(in) || out[j].Known>>uint(p)&1 != 1 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStatistics(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	s := c.Statistics()
	if s.Gates != 2 || s.DPGates != 2 {
		t.Errorf("stats: %+v", s)
	}
	if !strings.Contains(s.String(), "MAJ3:1") {
		t.Errorf("stats string: %s", s)
	}
}

func TestLevelizedOrder(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(y)
w = NOT(a)
x = NAND(w, b)
y = XOR(x, w)
`
	c := mustParse(t, src)
	pos := map[string]int{}
	for i, gi := range c.Levelized() {
		pos[c.Gates[gi].Output] = i
	}
	if !(pos["w"] < pos["x"] && pos["x"] < pos["y"]) {
		t.Errorf("levelization order wrong: %v", pos)
	}
}

func TestDriverAndFanouts(t *testing.T) {
	c := mustParse(t, fullAdderBench)
	if d, ok := c.Driver("a"); !ok || d != -1 {
		t.Errorf("Driver(a) = %d, %v", d, ok)
	}
	if d, ok := c.Driver("sum"); !ok || c.Gates[d].Kind != gates.XOR3 {
		t.Errorf("Driver(sum) wrong")
	}
	if len(c.Fanouts("a")) != 2 {
		t.Errorf("Fanouts(a) = %v", c.Fanouts("a"))
	}
}
