// Package logic provides the digital abstractions of the reproduction:
// a switch-level simulator for single CP gates (transistor networks with
// drive strengths, charge retention and polarity-aware conduction), a
// gate-level combinational circuit representation with 3-valued and
// 64-way parallel-pattern simulation, and a hand-rolled parser/writer for
// a .bench-style netlist format.
package logic

// V is a ternary logic value.
type V int

const (
	L0 V = iota
	L1
	LX
)

// String renders the value as 0, 1 or X.
func (v V) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	default:
		return "X"
	}
}

// FromBool converts a bool to a logic value.
func FromBool(b bool) V {
	if b {
		return L1
	}
	return L0
}

// Bool returns the Boolean value and whether it is defined.
func (v V) Bool() (bool, bool) {
	switch v {
	case L0:
		return false, true
	case L1:
		return true, true
	}
	return false, false
}

// Not returns the ternary complement.
func (v V) Not() V {
	switch v {
	case L0:
		return L1
	case L1:
		return L0
	}
	return LX
}

// Strength is the drive strength lattice of the switch-level simulator.
type Strength int

const (
	SNone   Strength = iota // undriven
	SCharge                 // retained charge on a floating node
	SWeak                   // degraded pass (n passing 1, p passing 0)
	SStrong                 // full rail drive
)

// String names the strength.
func (s Strength) String() string {
	switch s {
	case SNone:
		return "none"
	case SCharge:
		return "charge"
	case SWeak:
		return "weak"
	case SStrong:
		return "strong"
	}
	return "invalid"
}
