package logic

import "cpsinw/internal/gates"

// N×64-lane blocks: the packed engines widen the 64-lane PackedVec to
// blocks of 1, 2 or 4 bitplane words (64/128/256 ternary lanes per
// net), stored word-major. Every Kleene bitplane kernel in
// EvalKindPacked is lane-wise — pure bitwise ops, no cross-lane carries
// — so a width-w block evaluates as w independent PackedVec
// evaluations; the block kernels reuse the per-word kernels and lane
// invariance at any width follows from the 64-lane property suites.

// MaxLaneWords is the widest supported lane block (256 lanes).
const MaxLaneWords = 4

// ValidLaneWords reports whether w is a supported block width.
func ValidLaneWords(w int) bool { return w == 1 || w == 2 || w == 4 }

// PackedBlock is a view of w consecutive PackedVecs holding w*64
// ternary lanes of one net: lane l lives in word l>>6, bit l&63.
type PackedBlock []PackedVec

// FirstLaneBlock returns the lowest set lane across the words of a
// block mask, or 64*len(m) when the mask is empty.
func FirstLaneBlock(m []uint64) int {
	for j, w := range m {
		if w != 0 {
			return j<<6 + FirstLane(w)
		}
	}
	return len(m) << 6
}

// EvalKindBlock evaluates one gate kind across a lane block: ins[k] is
// the block of fanin pin k, out receives the len(out) output words. The
// width switch unrolls the supported block shapes so the w=1 fast path
// stays exactly one kernel call.
func EvalKindBlock(kind gates.Kind, lut GateLUT, ins []PackedBlock, out PackedBlock) {
	var buf [3]PackedVec
	n := len(ins)
	word := func(j int) PackedVec {
		for k := 0; k < n; k++ {
			buf[k] = ins[k][j]
		}
		return EvalKindPacked(kind, lut, buf[:n])
	}
	switch len(out) {
	case 1:
		out[0] = word(0)
	case 2:
		out[0], out[1] = word(0), word(1)
	case 4:
		out[0], out[1] = word(0), word(1)
		out[2], out[3] = word(2), word(3)
	default:
		for j := range out {
			out[j] = word(j)
		}
	}
}
