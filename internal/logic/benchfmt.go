package logic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"cpsinw/internal/gates"
)

// The .bench-style netlist format (ISCAS-85 flavoured):
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	n1 = NAND(a, b)        # arity inferred
//	n2 = XOR(n1, c)
//	n3 = MAJ(a, b, c)
//	n4 = AND(a, b, c, d, n3)
//	y  = NOT(n2)           # NOT and INV are synonyms; BUF/BUFF too
//
// Functions that map 1:1 onto the native CP cell library parse
// arity-preserving and round-trip exactly through WriteBench:
// NOT/INV, BUF/BUFF, NAND (2-3 in), NOR (2-3 in), XOR (2-3 in),
// MAJ (3 in).
//
// Real ISCAS netlists also use AND/OR (no native cell) and arbitrary
// fanin; those are decomposed at parse time into the native cells:
//
//	AND(a1..an)   ->  balanced AND tree; every tree node is
//	                  NAND2/NAND3 + NOT (the library has no AND cell)
//	OR(a1..an)    ->  balanced OR tree of NOR2/NOR3 + NOT nodes
//	NAND(a1..an)  ->  AND tree reducing the args to <= 3 nets,
//	                  finished by one native NAND2/NAND3 (n > 3)
//	NOR(a1..an)   ->  OR tree reduced the same way, finished by NOR
//	XOR(a1..an)   ->  balanced XOR2/XOR3 tree (associative, exact)
//	XNOR/NXOR(..) ->  XOR tree + NOT
//
// Single-argument AND/OR/XOR act as BUF and single-argument NAND/NOR/
// XNOR as NOT, matching the degenerate-gate convention of ISCAS tools.
// Decomposition introduces fresh helper nets named <out>_d<k>; they
// are guaranteed not to collide with any net mentioned in the source.
// The decomposed form is what WriteBench emits, so parse -> write ->
// parse is a fixpoint (the wide gate itself is not reconstructed).

// maxBenchToken is the scanner line limit for ParseBench. Generated
// netlists legitimately carry machine-length lines (a single wide gate
// or a long comment), far past bufio.Scanner's 64KB default.
const maxBenchToken = 16 << 20

// ParseBench reads the .bench format into a Circuit.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	type assign struct {
		ln   int
		out  string
		fn   string
		args []string
	}
	var inputs, outputs []string
	var assigns []assign
	nets := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxBenchToken)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") && strings.HasSuffix(line, ")"):
			in := strings.TrimSpace(line[6 : len(line)-1])
			inputs = append(inputs, in)
			nets[in] = true
		case strings.HasPrefix(upper, "OUTPUT(") && strings.HasSuffix(line, ")"):
			out := strings.TrimSpace(line[7 : len(line)-1])
			outputs = append(outputs, out)
			nets[out] = true
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment: %q", ln, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.IndexByte(rhs, '(')
			if op < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: expected FUNC(args): %q", ln, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			var args []string
			for _, a := range strings.Split(rhs[op+1:len(rhs)-1], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			nets[out] = true
			for _, a := range args {
				nets[a] = true
			}
			assigns = append(assigns, assign{ln: ln, out: out, fn: fn, args: args})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// Second pass: emit gates. Helper nets for decomposed wide gates
	// are chosen fresh against the full net-name set collected above.
	em := &benchEmitter{nets: nets}
	for _, a := range assigns {
		if err := em.emit(a.out, a.fn, a.args); err != nil {
			return nil, fmt.Errorf("bench line %d: %v", a.ln, err)
		}
	}
	return NewCircuit(name, inputs, outputs, em.insts)
}

// benchEmitter lowers parsed .bench assignments onto the native cell
// library, decomposing AND/OR and wide fanin as documented above.
type benchEmitter struct {
	nets  map[string]bool
	insts []GateInst
	tmp   int
}

func (e *benchEmitter) add(kind gates.Kind, out string, fanin ...string) {
	e.insts = append(e.insts, GateInst{
		Name:   fmt.Sprintf("g%d_%s", len(e.insts), out),
		Kind:   kind,
		Fanin:  fanin,
		Output: out,
	})
}

// fresh returns a helper net name derived from out that no source line
// mentions and no earlier helper took.
func (e *benchEmitter) fresh(out string) string {
	for {
		n := fmt.Sprintf("%s_d%d", out, e.tmp)
		e.tmp++
		if !e.nets[n] {
			e.nets[n] = true
			return n
		}
	}
}

// nary picks the 2- or 3-input variant of a native kind.
func nary(k2, k3 gates.Kind, n int) gates.Kind {
	if n == 3 {
		return k3
	}
	return k2
}

// reduceLevel performs one balanced level of an associative reduction,
// grouping args into chunks of 3 (avoiding a trailing singleton by
// preferring 2+2 over 3+1) and replacing each chunk with node(chunk).
func (e *benchEmitter) reduceLevel(args []string, node func(chunk []string) string) []string {
	var next []string
	for i := 0; i < len(args); {
		remain := len(args) - i
		switch {
		case remain >= 3 && remain != 4:
			next = append(next, node(args[i:i+3]))
			i += 3
		case remain >= 2:
			next = append(next, node(args[i:i+2]))
			i += 2
		default:
			next = append(next, args[i])
			i++
		}
	}
	return next
}

// andNode emits one AND tree node (NAND + NOT) over <= 3 args.
func (e *benchEmitter) andNode(out string) func(chunk []string) string {
	return func(chunk []string) string {
		m, o := e.fresh(out), e.fresh(out)
		e.add(nary(gates.NAND2, gates.NAND3, len(chunk)), m, chunk...)
		e.add(gates.INV, o, m)
		return o
	}
}

// orNode emits one OR tree node (NOR + NOT) over <= 3 args.
func (e *benchEmitter) orNode(out string) func(chunk []string) string {
	return func(chunk []string) string {
		m, o := e.fresh(out), e.fresh(out)
		e.add(nary(gates.NOR2, gates.NOR3, len(chunk)), m, chunk...)
		e.add(gates.INV, o, m)
		return o
	}
}

// xorNode emits one XOR tree node over <= 3 args.
func (e *benchEmitter) xorNode(out string) func(chunk []string) string {
	return func(chunk []string) string {
		o := e.fresh(out)
		e.add(nary(gates.XOR2, gates.XOR3, len(chunk)), o, chunk...)
		return o
	}
}

// reduceTo3 runs reduction levels until at most 3 nets remain.
func (e *benchEmitter) reduceTo3(args []string, node func(chunk []string) string) []string {
	for len(args) > 3 {
		args = e.reduceLevel(args, node)
	}
	return args
}

// emit lowers one assignment out = FN(args).
func (e *benchEmitter) emit(out, fn string, args []string) error {
	n := len(args)
	switch fn {
	case "NOT", "INV":
		if n != 1 {
			return fmt.Errorf("%s wants 1 argument, got %d", fn, n)
		}
		e.add(gates.INV, out, args[0])
	case "BUF", "BUFF":
		if n != 1 {
			return fmt.Errorf("%s wants 1 argument, got %d", fn, n)
		}
		e.add(gates.BUF, out, args[0])
	case "MAJ":
		if n != 3 {
			return fmt.Errorf("MAJ wants 3 arguments, got %d", n)
		}
		e.add(gates.MAJ3, out, args...)
	case "NAND":
		switch {
		case n == 0:
			return fmt.Errorf("NAND wants at least 1 argument")
		case n == 1:
			e.add(gates.INV, out, args[0])
		default:
			args = e.reduceTo3(args, e.andNode(out))
			e.add(nary(gates.NAND2, gates.NAND3, len(args)), out, args...)
		}
	case "NOR":
		switch {
		case n == 0:
			return fmt.Errorf("NOR wants at least 1 argument")
		case n == 1:
			e.add(gates.INV, out, args[0])
		default:
			args = e.reduceTo3(args, e.orNode(out))
			e.add(nary(gates.NOR2, gates.NOR3, len(args)), out, args...)
		}
	case "AND":
		switch {
		case n == 0:
			return fmt.Errorf("AND wants at least 1 argument")
		case n == 1:
			e.add(gates.BUF, out, args[0])
		default:
			args = e.reduceTo3(args, e.andNode(out))
			m := e.fresh(out)
			e.add(nary(gates.NAND2, gates.NAND3, len(args)), m, args...)
			e.add(gates.INV, out, m)
		}
	case "OR":
		switch {
		case n == 0:
			return fmt.Errorf("OR wants at least 1 argument")
		case n == 1:
			e.add(gates.BUF, out, args[0])
		default:
			args = e.reduceTo3(args, e.orNode(out))
			m := e.fresh(out)
			e.add(nary(gates.NOR2, gates.NOR3, len(args)), m, args...)
			e.add(gates.INV, out, m)
		}
	case "XOR":
		switch {
		case n == 0:
			return fmt.Errorf("XOR wants at least 1 argument")
		case n == 1:
			e.add(gates.BUF, out, args[0])
		default:
			args = e.reduceTo3(args, e.xorNode(out))
			e.add(nary(gates.XOR2, gates.XOR3, len(args)), out, args...)
		}
	case "XNOR", "NXOR":
		switch {
		case n == 0:
			return fmt.Errorf("%s wants at least 1 argument", fn)
		case n == 1:
			e.add(gates.INV, out, args[0])
		default:
			args = e.reduceTo3(args, e.xorNode(out))
			m := e.fresh(out)
			e.add(nary(gates.XOR2, gates.XOR3, len(args)), m, args...)
			e.add(gates.INV, out, m)
		}
	default:
		return fmt.Errorf("unknown function %q", fn)
	}
	return nil
}

func benchFn(k gates.Kind) string {
	switch k {
	case gates.INV:
		return "NOT"
	case gates.BUF:
		return "BUF"
	case gates.NAND2, gates.NAND3:
		return "NAND"
	case gates.NOR2, gates.NOR3:
		return "NOR"
	case gates.XOR2, gates.XOR3:
		return "XOR"
	case gates.MAJ3:
		return "MAJ"
	}
	return "?"
}

// WriteBench emits the circuit in the .bench format; the output parses
// back into an equivalent circuit.
func WriteBench(w io.Writer, c *Circuit) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Name)
	for _, pi := range c.Inputs {
		fmt.Fprintf(&b, "INPUT(%s)\n", pi)
	}
	for _, po := range c.Outputs {
		fmt.Fprintf(&b, "OUTPUT(%s)\n", po)
	}
	for _, g := range c.Gates {
		fmt.Fprintf(&b, "%s = %s(%s)\n", g.Output, benchFn(g.Kind), strings.Join(g.Fanin, ", "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Stats summarises a circuit for reports.
type Stats struct {
	Inputs, Outputs, Gates int
	ByKind                 map[gates.Kind]int
	DPGates                int // dynamic-polarity gate count
}

// Statistics computes circuit statistics.
func (c *Circuit) Statistics() Stats {
	s := Stats{Inputs: len(c.Inputs), Outputs: len(c.Outputs), Gates: len(c.Gates), ByKind: map[gates.Kind]int{}}
	for _, g := range c.Gates {
		s.ByKind[g.Kind]++
		if gates.Get(g.Kind).Class == gates.DynamicPolarity {
			s.DPGates++
		}
	}
	return s
}

// String renders the stats compactly, kinds sorted by name.
func (s Stats) String() string {
	kinds := make([]gates.Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s:%d", k, s.ByKind[k]))
	}
	return fmt.Sprintf("PI=%d PO=%d gates=%d (DP=%d) [%s]",
		s.Inputs, s.Outputs, s.Gates, s.DPGates, strings.Join(parts, " "))
}
