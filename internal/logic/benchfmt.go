package logic

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"cpsinw/internal/gates"
)

// The .bench-style netlist format (hand-rolled, ISCAS-85 flavoured):
//
//	# comment
//	INPUT(a)
//	OUTPUT(y)
//	n1 = NAND(a, b)        # arity inferred: NAND/NOR/AND-less library
//	n2 = XOR(n1, c)
//	n3 = MAJ(a, b, c)
//	y  = NOT(n2)           # NOT and INV are synonyms; BUF/BUFF too
//
// Supported functions: NOT/INV, BUF/BUFF, NAND (2-3 in), NOR (2-3 in),
// XOR (2-3 in), MAJ (3 in).

// ParseBench reads the .bench format into a Circuit.
func ParseBench(name string, r io.Reader) (*Circuit, error) {
	var inputs, outputs []string
	var insts []GateInst
	sc := bufio.NewScanner(r)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		upper := strings.ToUpper(line)
		switch {
		case strings.HasPrefix(upper, "INPUT(") && strings.HasSuffix(line, ")"):
			inputs = append(inputs, strings.TrimSpace(line[6:len(line)-1]))
		case strings.HasPrefix(upper, "OUTPUT(") && strings.HasSuffix(line, ")"):
			outputs = append(outputs, strings.TrimSpace(line[7:len(line)-1]))
		default:
			eq := strings.IndexByte(line, '=')
			if eq < 0 {
				return nil, fmt.Errorf("bench line %d: expected assignment: %q", ln, line)
			}
			out := strings.TrimSpace(line[:eq])
			rhs := strings.TrimSpace(line[eq+1:])
			op := strings.IndexByte(rhs, '(')
			if op < 0 || !strings.HasSuffix(rhs, ")") {
				return nil, fmt.Errorf("bench line %d: expected FUNC(args): %q", ln, rhs)
			}
			fn := strings.ToUpper(strings.TrimSpace(rhs[:op]))
			var args []string
			for _, a := range strings.Split(rhs[op+1:len(rhs)-1], ",") {
				a = strings.TrimSpace(a)
				if a != "" {
					args = append(args, a)
				}
			}
			kind, err := kindFor(fn, len(args))
			if err != nil {
				return nil, fmt.Errorf("bench line %d: %v", ln, err)
			}
			insts = append(insts, GateInst{
				Name:   fmt.Sprintf("g%d_%s", len(insts), out),
				Kind:   kind,
				Fanin:  args,
				Output: out,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return NewCircuit(name, inputs, outputs, insts)
}

func kindFor(fn string, arity int) (gates.Kind, error) {
	switch fn {
	case "NOT", "INV":
		if arity != 1 {
			return 0, fmt.Errorf("%s wants 1 argument, got %d", fn, arity)
		}
		return gates.INV, nil
	case "BUF", "BUFF":
		if arity != 1 {
			return 0, fmt.Errorf("%s wants 1 argument, got %d", fn, arity)
		}
		return gates.BUF, nil
	case "NAND":
		switch arity {
		case 2:
			return gates.NAND2, nil
		case 3:
			return gates.NAND3, nil
		}
		return 0, fmt.Errorf("NAND wants 2 or 3 arguments, got %d", arity)
	case "NOR":
		switch arity {
		case 2:
			return gates.NOR2, nil
		case 3:
			return gates.NOR3, nil
		}
		return 0, fmt.Errorf("NOR wants 2 or 3 arguments, got %d", arity)
	case "XOR":
		switch arity {
		case 2:
			return gates.XOR2, nil
		case 3:
			return gates.XOR3, nil
		}
		return 0, fmt.Errorf("XOR wants 2 or 3 arguments, got %d", arity)
	case "MAJ":
		if arity != 3 {
			return 0, fmt.Errorf("MAJ wants 3 arguments, got %d", arity)
		}
		return gates.MAJ3, nil
	}
	return 0, fmt.Errorf("unknown function %q", fn)
}

func benchFn(k gates.Kind) string {
	switch k {
	case gates.INV:
		return "NOT"
	case gates.BUF:
		return "BUF"
	case gates.NAND2, gates.NAND3:
		return "NAND"
	case gates.NOR2, gates.NOR3:
		return "NOR"
	case gates.XOR2, gates.XOR3:
		return "XOR"
	case gates.MAJ3:
		return "MAJ"
	}
	return "?"
}

// WriteBench emits the circuit in the .bench format; the output parses
// back into an equivalent circuit.
func WriteBench(w io.Writer, c *Circuit) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", c.Name)
	for _, pi := range c.Inputs {
		fmt.Fprintf(&b, "INPUT(%s)\n", pi)
	}
	for _, po := range c.Outputs {
		fmt.Fprintf(&b, "OUTPUT(%s)\n", po)
	}
	for _, g := range c.Gates {
		fmt.Fprintf(&b, "%s = %s(%s)\n", g.Output, benchFn(g.Kind), strings.Join(g.Fanin, ", "))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Stats summarises a circuit for reports.
type Stats struct {
	Inputs, Outputs, Gates int
	ByKind                 map[gates.Kind]int
	DPGates                int // dynamic-polarity gate count
}

// Statistics computes circuit statistics.
func (c *Circuit) Statistics() Stats {
	s := Stats{Inputs: len(c.Inputs), Outputs: len(c.Outputs), Gates: len(c.Gates), ByKind: map[gates.Kind]int{}}
	for _, g := range c.Gates {
		s.ByKind[g.Kind]++
		if gates.Get(g.Kind).Class == gates.DynamicPolarity {
			s.DPGates++
		}
	}
	return s
}

// String renders the stats compactly, kinds sorted by name.
func (s Stats) String() string {
	kinds := make([]gates.Kind, 0, len(s.ByKind))
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i].String() < kinds[j].String() })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s:%d", k, s.ByKind[k]))
	}
	return fmt.Sprintf("PI=%d PO=%d gates=%d (DP=%d) [%s]",
		s.Inputs, s.Outputs, s.Gates, s.DPGates, strings.Join(parts, " "))
}
