package logic

import (
	"fmt"
	"sort"

	"cpsinw/internal/gates"
)

// GateInst is one gate instance in a combinational circuit.
type GateInst struct {
	Name   string
	Kind   gates.Kind
	Fanin  []string // net names, in input order
	Output string   // net name
}

// Circuit is a combinational gate-level circuit over named nets.
type Circuit struct {
	Name    string
	Inputs  []string
	Outputs []string
	Gates   []GateInst

	levelized []int          // gate evaluation order
	driver    map[string]int // net -> gate index (-1 for PI)
	fanouts   map[string][]int
}

// NewCircuit builds a circuit and checks its structure: every net has
// exactly one driver, fanin arities match the gate kinds, and the gate
// graph is acyclic.
func NewCircuit(name string, inputs, outputs []string, insts []GateInst) (*Circuit, error) {
	c := &Circuit{Name: name, Inputs: inputs, Outputs: outputs, Gates: insts}
	if err := c.check(); err != nil {
		return nil, err
	}
	return c, nil
}

func (c *Circuit) check() error {
	c.driver = map[string]int{}
	c.fanouts = map[string][]int{}
	for _, pi := range c.Inputs {
		if _, dup := c.driver[pi]; dup {
			return fmt.Errorf("logic: duplicate input %q", pi)
		}
		c.driver[pi] = -1
	}
	for gi, g := range c.Gates {
		spec := gates.Get(g.Kind)
		if len(g.Fanin) != spec.NIn {
			return fmt.Errorf("logic: gate %s (%v) has %d fanins, wants %d", g.Name, g.Kind, len(g.Fanin), spec.NIn)
		}
		if _, dup := c.driver[g.Output]; dup {
			return fmt.Errorf("logic: net %q multiply driven", g.Output)
		}
		c.driver[g.Output] = gi
	}
	for gi, g := range c.Gates {
		for _, f := range g.Fanin {
			if _, ok := c.driver[f]; !ok {
				return fmt.Errorf("logic: gate %s reads undriven net %q", g.Name, f)
			}
			c.fanouts[f] = append(c.fanouts[f], gi)
		}
	}
	for _, po := range c.Outputs {
		if _, ok := c.driver[po]; !ok {
			return fmt.Errorf("logic: output %q undriven", po)
		}
	}
	// Levelize (topological order); detects cycles.
	state := make([]int, len(c.Gates)) // 0 unvisited, 1 visiting, 2 done
	order := make([]int, 0, len(c.Gates))
	var visit func(gi int) error
	visit = func(gi int) error {
		switch state[gi] {
		case 1:
			return fmt.Errorf("logic: combinational cycle through gate %s", c.Gates[gi].Name)
		case 2:
			return nil
		}
		state[gi] = 1
		for _, f := range c.Gates[gi].Fanin {
			if d := c.driver[f]; d >= 0 {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		state[gi] = 2
		order = append(order, gi)
		return nil
	}
	for gi := range c.Gates {
		if err := visit(gi); err != nil {
			return err
		}
	}
	c.levelized = order
	return nil
}

// Nets returns all net names, sorted.
func (c *Circuit) Nets() []string {
	out := make([]string, 0, len(c.driver))
	for n := range c.driver {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Driver returns the index of the gate driving the net, or -1 for primary
// inputs; ok is false for unknown nets.
func (c *Circuit) Driver(net string) (int, bool) {
	d, ok := c.driver[net]
	return d, ok
}

// Fanouts returns the gates reading a net.
func (c *Circuit) Fanouts(net string) []int { return c.fanouts[net] }

// Levelized returns gate indices in topological evaluation order.
func (c *Circuit) Levelized() []int { return c.levelized }

// evalKind computes one gate's ternary output from ternary inputs by
// enumerating the unknowns (at most 3 inputs, so at most 8 cases).
func evalKind(kind gates.Kind, in []V) V {
	spec := gates.Get(kind)
	xs := []int{}
	bin := make([]bool, len(in))
	for i, v := range in {
		switch v {
		case LX:
			xs = append(xs, i)
		case L1:
			bin[i] = true
		}
	}
	if len(xs) == 0 {
		return FromBool(spec.Eval(bin))
	}
	var first V
	for m := 0; m < 1<<len(xs); m++ {
		for bit, idx := range xs {
			bin[idx] = (m>>bit)&1 == 1
		}
		v := FromBool(spec.Eval(bin))
		if m == 0 {
			first = v
		} else if v != first {
			return LX
		}
	}
	return first
}

// Eval simulates the circuit for one ternary input assignment and returns
// the value of every net.
func (c *Circuit) Eval(assign map[string]V) map[string]V {
	vals := map[string]V{}
	for _, pi := range c.Inputs {
		if v, ok := assign[pi]; ok {
			vals[pi] = v
		} else {
			vals[pi] = LX
		}
	}
	in := make([]V, 3)
	for _, gi := range c.levelized {
		g := &c.Gates[gi]
		in = in[:len(g.Fanin)]
		for i, f := range g.Fanin {
			in[i] = vals[f]
		}
		vals[g.Output] = evalKind(g.Kind, in)
	}
	return vals
}

// EvalOutputs simulates and returns only the primary output values, in
// the circuit's output order.
func (c *Circuit) EvalOutputs(assign map[string]V) []V {
	vals := c.Eval(assign)
	out := make([]V, len(c.Outputs))
	for i, po := range c.Outputs {
		out[i] = vals[po]
	}
	return out
}

// The former map-based 64-way binary simulation (PackedAssign /
// Circuit.EvalPacked / EvalPackedHooked) is gone: every dense consumer —
// stuck-at, transistor and bridge fault simulation alike — now evaluates
// the one levelized IR of CompiledCircuit, with ternary bitplane lanes
// (PackedVec / lane blocks) as the only packed representation.
