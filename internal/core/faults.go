// Package core implements the paper's primary contribution: the fault
// models for controllable-polarity silicon nanowire circuits.
//
// It defines the fault universe (classical line stuck-at faults plus the
// CP-specific transistor faults: channel break / stuck-open, stuck-on,
// gate-oxide shorts, floating polarity gates, and the newly introduced
// stuck-at n-type / stuck-at p-type polarity faults), generates fault
// lists from gate-level circuits, collapses equivalent stuck-at faults,
// and characterises how each transistor fault changes a gate's behaviour
// (output function, floating states and IDDQ signature) through exhaustive
// switch-level evaluation.
package core

import (
	"fmt"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// FaultKind enumerates every fault model in the universe.
type FaultKind int

const (
	// Classical line faults (gate-level).
	FaultSA0 FaultKind = iota // line stuck-at-0
	FaultSA1                  // line stuck-at-1

	// Transistor-level faults inside CP gates.
	FaultChannelBreak // nanowire break: transistor never conducts (stuck-open)
	FaultStuckOn      // transistor always conducts
	FaultStuckAtN     // polarity terminals bridged to VDD (new, CP-specific)
	FaultStuckAtP     // polarity terminals bridged to GND (new, CP-specific)
	FaultGOSPGS       // gate-oxide short at the source-side polarity gate
	FaultGOSCG        // gate-oxide short at the control gate
	FaultGOSPGD       // gate-oxide short at the drain-side polarity gate
	FaultPGOpenS      // floating PGS (open interconnect)
	FaultPGOpenD      // floating PGD (open interconnect)
)

var faultKindNames = map[FaultKind]string{
	FaultSA0: "SA0", FaultSA1: "SA1",
	FaultChannelBreak: "channel-break", FaultStuckOn: "stuck-on",
	FaultStuckAtN: "stuck-at-n-type", FaultStuckAtP: "stuck-at-p-type",
	FaultGOSPGS: "GOS@PGS", FaultGOSCG: "GOS@CG", FaultGOSPGD: "GOS@PGD",
	FaultPGOpenS: "PG-open(PGS)", FaultPGOpenD: "PG-open(PGD)",
}

// String names the fault kind as used in the paper and our reports.
func (k FaultKind) String() string {
	if s, ok := faultKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("FaultKind(%d)", int(k))
}

// IsLineFault reports whether the kind is a classical line stuck-at.
func (k FaultKind) IsLineFault() bool { return k == FaultSA0 || k == FaultSA1 }

// IsPolarityFault reports whether the kind is one of the paper's new
// polarity fault models.
func (k FaultKind) IsPolarityFault() bool { return k == FaultStuckAtN || k == FaultStuckAtP }

// IsTransistorFault reports whether the fault sits inside a gate.
func (k FaultKind) IsTransistorFault() bool { return !k.IsLineFault() }

// TFault maps a transistor-level fault kind to its switch-level model;
// ok is false for kinds the switch level cannot express (GOS and PG-open
// are parametric analog faults handled by the device model and the
// Figure 3/5 experiments).
func (k FaultKind) TFault() (logic.TFault, bool) {
	switch k {
	case FaultChannelBreak:
		return logic.TFaultOpen, true
	case FaultStuckOn:
		return logic.TFaultStuckOn, true
	case FaultStuckAtN:
		return logic.TFaultStuckAtN, true
	case FaultStuckAtP:
		return logic.TFaultStuckAtP, true
	}
	return logic.TFaultNone, false
}

// Fault is one fault instance in a circuit.
type Fault struct {
	Kind FaultKind

	// Line faults: Net is the stuck line. If Pin >= 0 the fault sits on
	// that fanout branch (input pin of gate GateIdx); otherwise it is the
	// stem fault.
	Net     string
	GateIdx int // reading gate for branch faults, driving gate otherwise (-1 for PI stems)
	Pin     int // -1 for stem faults

	// Transistor faults: Gate is the instance name, Transistor the
	// device name inside the gate spec.
	Gate       string
	Transistor string
}

// String renders a compact fault identifier.
func (f Fault) String() string {
	if f.Kind.IsLineFault() {
		if f.Pin >= 0 {
			return fmt.Sprintf("%s/%s@pin%d(g%d)", f.Net, f.Kind, f.Pin, f.GateIdx)
		}
		return fmt.Sprintf("%s/%s", f.Net, f.Kind)
	}
	return fmt.Sprintf("%s.%s/%s", f.Gate, f.Transistor, f.Kind)
}

// UniverseOptions selects which fault classes to enumerate.
type UniverseOptions struct {
	LineStuckAt  bool // classical SA0/SA1 on stems and fanout branches
	ChannelBreak bool
	StuckOn      bool
	Polarity     bool // stuck-at n-type / p-type (the new models)
	GOS          bool // analog gate-oxide shorts (3 locations per device)
	PGOpen       bool // floating polarity gates
}

// AllFaults enables every class.
func AllFaults() UniverseOptions {
	return UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, StuckOn: true,
		Polarity: true, GOS: true, PGOpen: true,
	}
}

// ClassicalOnly enables only the classical CMOS-style line stuck-at model,
// the baseline the paper argues is insufficient for CP circuits.
func ClassicalOnly() UniverseOptions {
	return UniverseOptions{LineStuckAt: true}
}

// Universe enumerates the fault list of a circuit under the options.
func Universe(c *logic.Circuit, opt UniverseOptions) []Fault {
	var out []Fault
	if opt.LineStuckAt {
		for _, pi := range c.Inputs {
			out = append(out, Fault{Kind: FaultSA0, Net: pi, GateIdx: -1, Pin: -1})
			out = append(out, Fault{Kind: FaultSA1, Net: pi, GateIdx: -1, Pin: -1})
		}
		for gi, g := range c.Gates {
			out = append(out, Fault{Kind: FaultSA0, Net: g.Output, GateIdx: gi, Pin: -1})
			out = append(out, Fault{Kind: FaultSA1, Net: g.Output, GateIdx: gi, Pin: -1})
		}
		// Fanout branches: only where a net feeds more than one gate.
		for _, net := range c.Nets() {
			fo := c.Fanouts(net)
			if len(fo) < 2 {
				continue
			}
			for _, gi := range fo {
				for pin, f := range c.Gates[gi].Fanin {
					if f != net {
						continue
					}
					out = append(out, Fault{Kind: FaultSA0, Net: net, GateIdx: gi, Pin: pin})
					out = append(out, Fault{Kind: FaultSA1, Net: net, GateIdx: gi, Pin: pin})
				}
			}
		}
	}
	for _, g := range c.Gates {
		spec := gates.Get(g.Kind)
		for _, tr := range spec.Transistors {
			add := func(k FaultKind) {
				out = append(out, Fault{Kind: k, Gate: g.Name, Transistor: tr.Name})
			}
			if opt.ChannelBreak {
				add(FaultChannelBreak)
			}
			if opt.StuckOn {
				add(FaultStuckOn)
			}
			if opt.Polarity {
				// In SP gates only the polarity-inverting bridge is a
				// defect: the pull-up PGs already sit at GND (stuck-at
				// p-type is the nominal configuration) and the pull-down
				// PGs at VDD. DP gates are exposed to both (paper V-B).
				if spec.Class == gates.DynamicPolarity {
					add(FaultStuckAtN)
					add(FaultStuckAtP)
				} else if tr.Net == gates.NetPullUp {
					add(FaultStuckAtN)
				} else {
					add(FaultStuckAtP)
				}
			}
			if opt.GOS {
				add(FaultGOSPGS)
				add(FaultGOSCG)
				add(FaultGOSPGD)
			}
			if opt.PGOpen {
				add(FaultPGOpenS)
				add(FaultPGOpenD)
			}
		}
	}
	return out
}

// CollapseStuckAt removes stuck-at faults that are equivalent to a
// retained representative through standard gate-equivalence rules:
// for NAND/NOR/INV/BUF, an input stuck at the controlling value is
// equivalent to the output stuck at the corresponding response, and
// single-fanin gate pin faults are equivalent to their stem faults.
// XOR and MAJ gates admit no such structural collapse.
func CollapseStuckAt(c *logic.Circuit, faults []Fault) []Fault {
	drop := map[string]bool{}
	for gi, g := range c.Gates {
		var ctrl logic.V // controlling input value
		var resp logic.V // forced output response
		collapsible := true
		switch g.Kind {
		case gates.NAND2, gates.NAND3:
			ctrl, resp = logic.L0, logic.L1
		case gates.NOR2, gates.NOR3:
			ctrl, resp = logic.L1, logic.L0
		case gates.INV:
			// Input SA0 == output SA1 and vice versa.
			ctrl, resp = logic.L0, logic.L1
		case gates.BUF:
			ctrl, resp = logic.L0, logic.L0
		default:
			collapsible = false
		}
		if !collapsible {
			continue
		}
		_ = resp
		// Drop the input-pin fault at the controlling value on single-
		// fanout fanins: it is equivalent to the output fault which stays.
		for _, f := range g.Fanin {
			if len(c.Fanouts(f)) != 1 {
				continue
			}
			kind := FaultSA0
			if ctrl == logic.L1 {
				kind = FaultSA1
			}
			drop[Fault{Kind: kind, Net: f, GateIdx: driverOf(c, f), Pin: -1}.String()] = true
		}
		_ = gi
	}
	var out []Fault
	for _, f := range faults {
		if drop[f.String()] {
			continue
		}
		out = append(out, f)
	}
	return out
}

func driverOf(c *logic.Circuit, net string) int {
	d, _ := c.Driver(net)
	return d
}
