package core

// ProcessStep is one step of the TIG-SiNWFET fabrication flow (paper
// Table I), with the defects it can introduce and the fault models that
// cover them.
type ProcessStep struct {
	Index   int
	Name    string
	Outcome string
	Defects []string
	Models  []FaultKind
}

// FabricationProcess returns the paper's Table I: the five process steps,
// their outcomes, the physical defects each can introduce, and the fault
// models of this package that cover them.
func FabricationProcess() []ProcessStep {
	return []ProcessStep{
		{
			Index:   1,
			Name:    "HSQ-based nanowire patterning",
			Outcome: "Initial pattern of nanowires",
			Defects: []string{"Nanowire break"},
			Models:  []FaultKind{FaultChannelBreak},
		},
		{
			Index:   2,
			Name:    "Bosch process",
			Outcome: "Nanowire formation",
			Defects: []string{"Nanowire break"},
			Models:  []FaultKind{FaultChannelBreak},
		},
		{
			Index:   3,
			Name:    "Oxidation process",
			Outcome: "Dielectric formation",
			Defects: []string{"Gate oxide short"},
			Models:  []FaultKind{FaultGOSPGS, FaultGOSCG, FaultGOSPGD},
		},
		{
			Index:   4,
			Name:    "Polysilicon deposition",
			Outcome: "Polarity and control gates",
			Defects: []string{"Bridge between two or more terminals"},
			Models:  []FaultKind{FaultStuckAtN, FaultStuckAtP, FaultStuckOn},
		},
		{
			Index:   5,
			Name:    "Metal layer(s) deposition",
			Outcome: "Interconnections",
			Defects: []string{"Bridge among interconnects", "Floating gates"},
			Models:  []FaultKind{FaultSA0, FaultSA1, FaultPGOpenS, FaultPGOpenD},
		},
	}
}
