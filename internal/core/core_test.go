package core

import (
	"strings"
	"testing"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

func xorCircuit(t *testing.T) *logic.Circuit {
	t.Helper()
	c, err := logic.NewCircuit("x", []string{"a", "b"}, []string{"y"}, []logic.GateInst{
		{Name: "g0", Kind: gates.XOR2, Fanin: []string{"a", "b"}, Output: "y"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFaultKindStrings(t *testing.T) {
	if FaultStuckAtN.String() != "stuck-at-n-type" || FaultSA0.String() != "SA0" {
		t.Error("fault kind names wrong")
	}
	if !FaultSA1.IsLineFault() || FaultChannelBreak.IsLineFault() {
		t.Error("IsLineFault wrong")
	}
	if !FaultStuckAtP.IsPolarityFault() || FaultStuckOn.IsPolarityFault() {
		t.Error("IsPolarityFault wrong")
	}
	if !FaultGOSCG.IsTransistorFault() || FaultSA0.IsTransistorFault() {
		t.Error("IsTransistorFault wrong")
	}
}

func TestTFaultMapping(t *testing.T) {
	for kind, want := range map[FaultKind]logic.TFault{
		FaultChannelBreak: logic.TFaultOpen,
		FaultStuckOn:      logic.TFaultStuckOn,
		FaultStuckAtN:     logic.TFaultStuckAtN,
		FaultStuckAtP:     logic.TFaultStuckAtP,
	} {
		got, ok := kind.TFault()
		if !ok || got != want {
			t.Errorf("%v.TFault() = %v, %v", kind, got, ok)
		}
	}
	if _, ok := FaultGOSCG.TFault(); ok {
		t.Error("GOS should not have a switch-level model")
	}
	if _, ok := FaultSA0.TFault(); ok {
		t.Error("line fault should not have a transistor model")
	}
}

func TestUniverseCounts(t *testing.T) {
	c := xorCircuit(t)
	all := Universe(c, AllFaults())
	// Line: 2 PIs x 2 + 1 stem x 2 = 6 (no fanout branches here).
	// Transistor: 4 transistors x (CB + SOn + 2 polarity + 3 GOS + 2 PG-open) = 4*9 = 36.
	if len(all) != 6+36 {
		t.Fatalf("universe size = %d, want 42", len(all))
	}
	classical := Universe(c, ClassicalOnly())
	if len(classical) != 6 {
		t.Fatalf("classical universe = %d, want 6", len(classical))
	}
	// The classical model covers none of the CP-specific faults — the
	// paper's core observation.
	for _, f := range classical {
		if f.Kind.IsTransistorFault() {
			t.Errorf("classical universe contains %v", f)
		}
	}
}

func TestUniverseFanoutBranches(t *testing.T) {
	c, err := logic.NewCircuit("fan", []string{"a"}, []string{"y", "z"}, []logic.GateInst{
		{Name: "g0", Kind: gates.INV, Fanin: []string{"a"}, Output: "y"},
		{Name: "g1", Kind: gates.BUF, Fanin: []string{"a"}, Output: "z"},
	})
	if err != nil {
		t.Fatal(err)
	}
	u := Universe(c, UniverseOptions{LineStuckAt: true})
	branches := 0
	for _, f := range u {
		if f.Pin >= 0 {
			branches++
		}
	}
	if branches != 4 { // net a feeds 2 gates -> 2 branches x SA0/SA1
		t.Errorf("branch faults = %d, want 4", branches)
	}
}

func TestFaultString(t *testing.T) {
	f := Fault{Kind: FaultStuckAtN, Gate: "g7", Transistor: "t2"}
	if got := f.String(); !strings.Contains(got, "g7.t2") || !strings.Contains(got, "stuck-at-n-type") {
		t.Errorf("fault string: %q", got)
	}
	lf := Fault{Kind: FaultSA0, Net: "n3", Pin: -1}
	if lf.String() != "n3/SA0" {
		t.Errorf("line fault string: %q", lf.String())
	}
}

func TestGateBehaviorFaultFree(t *testing.T) {
	for _, k := range gates.Kinds() {
		b, err := GateBehavior(k, "", logic.TFaultNone)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if !b.FunctionPreserved() {
			t.Errorf("%v: fault-free behaviour does not match the function", k)
		}
		if n := len(b.LeakDetecting()); n != 0 {
			t.Errorf("%v: fault-free gate leaks on %d vectors", k, n)
		}
	}
}

func TestGateBehaviorUnknownTransistor(t *testing.T) {
	if _, err := GateBehavior(gates.INV, "t99", logic.TFaultOpen); err == nil {
		t.Error("unknown transistor accepted")
	}
}

func TestChannelBreakBehaviorSPvsDP(t *testing.T) {
	// SP NAND2: a break on the pull-up t1 leaves floating vectors
	// (classical stuck-open). DP XOR2: breaks are masked — function
	// preserved on every vector.
	nand, err := GateBehavior(gates.NAND2, "t1", logic.TFaultOpen)
	if err != nil {
		t.Fatal(err)
	}
	if len(nand.FloatingVectors()) == 0 {
		t.Error("NAND2 t1 break should float some vectors")
	}
	for _, tr := range []string{"t1", "t2", "t3", "t4"} {
		xor, err := GateBehavior(gates.XOR2, tr, logic.TFaultOpen)
		if err != nil {
			t.Fatal(err)
		}
		if !xor.FunctionPreserved() {
			t.Errorf("XOR2 %s break not masked", tr)
		}
		if len(xor.OutputDetecting()) != 0 {
			t.Errorf("XOR2 %s break output-detectable, contradicting the paper", tr)
		}
	}
}

func TestPolarityFaultBehaviorXOR2(t *testing.T) {
	// Pull-up polarity faults: leak-only detection. Pull-down: at least
	// one output-detecting vector (Table III).
	for _, tf := range []logic.TFault{logic.TFaultStuckAtN, logic.TFaultStuckAtP} {
		for _, tr := range []string{"t1", "t2"} {
			b, err := GateBehavior(gates.XOR2, tr, tf)
			if err != nil {
				t.Fatal(err)
			}
			if len(b.LeakDetecting()) == 0 {
				t.Errorf("XOR2 %s %v: no leak vector", tr, tf)
			}
			if len(b.OutputDetecting()) != 0 {
				t.Errorf("XOR2 %s %v: pull-up fault flips output (vectors %v)", tr, tf, b.OutputDetecting())
			}
		}
	}
	// Pull-down stuck-at-n flips the output (electron branch wins).
	for _, tr := range []string{"t3", "t4"} {
		b, err := GateBehavior(gates.XOR2, tr, logic.TFaultStuckAtN)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.OutputDetecting()) == 0 {
			t.Errorf("XOR2 %s stuck-at-n: no output-detecting vector", tr)
		}
	}
}

func TestCollapseStuckAt(t *testing.T) {
	src := []logic.GateInst{
		{Name: "g0", Kind: gates.INV, Fanin: []string{"a"}, Output: "w"},
		{Name: "g1", Kind: gates.NAND2, Fanin: []string{"w", "b"}, Output: "y"},
	}
	c, err := logic.NewCircuit("c", []string{"a", "b"}, []string{"y"}, src)
	if err != nil {
		t.Fatal(err)
	}
	full := Universe(c, ClassicalOnly())
	collapsed := CollapseStuckAt(c, full)
	if len(collapsed) >= len(full) {
		t.Errorf("collapse removed nothing: %d -> %d", len(full), len(collapsed))
	}
	// w/SA0 (controlling for NAND) must be dropped, w/SA1 kept.
	for _, f := range collapsed {
		if f.Net == "w" && f.Kind == FaultSA0 && f.Pin < 0 {
			t.Error("w/SA0 should have been collapsed into y/SA1")
		}
	}
}

func TestFabricationProcessTableI(t *testing.T) {
	steps := FabricationProcess()
	if len(steps) != 5 {
		t.Fatalf("Table I has %d steps, want 5", len(steps))
	}
	wantNames := []string{
		"HSQ-based nanowire patterning", "Bosch process", "Oxidation process",
		"Polysilicon deposition", "Metal layer(s) deposition",
	}
	for i, s := range steps {
		if s.Name != wantNames[i] {
			t.Errorf("step %d: %q, want %q", i+1, s.Name, wantNames[i])
		}
		if s.Index != i+1 || len(s.Defects) == 0 || len(s.Models) == 0 {
			t.Errorf("step %d incomplete: %+v", i+1, s)
		}
	}
	// Every defect class of Table I maps to at least one implemented
	// fault model; collectively the steps cover the full universe classes.
	seen := map[FaultKind]bool{}
	for _, s := range steps {
		for _, m := range s.Models {
			seen[m] = true
		}
	}
	for _, k := range []FaultKind{FaultChannelBreak, FaultGOSCG, FaultStuckAtN, FaultStuckAtP, FaultPGOpenS, FaultSA0} {
		if !seen[k] {
			t.Errorf("fault model %v not covered by any process step", k)
		}
	}
}
