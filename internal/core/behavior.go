package core

import (
	"fmt"
	"sync"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// RowBehavior describes a faulty gate's response to one input vector.
type RowBehavior struct {
	Out      logic.V        // resolved output value
	Strength logic.Strength // SCharge marks a floating (retaining) output
	Leak     bool           // conducting rail-to-rail path (IDDQ signature)
	Floating bool           // output undriven: value depends on history
}

// Behavior is the exhaustive response of a gate with one injected
// transistor fault, indexed by input vector (LSB-first input encoding).
type Behavior struct {
	Kind       gates.Kind
	Transistor string
	Fault      logic.TFault
	Rows       []RowBehavior
}

// GoodOut returns the fault-free output for vector v.
func GoodOut(kind gates.Kind, v int) logic.V {
	spec := gates.Get(kind)
	return logic.FromBool(spec.Eval(spec.InputVector(v)))
}

// OutputDetecting returns the input vectors whose faulty output is a
// defined value different from the fault-free output (voltage-observable
// detection).
func (b *Behavior) OutputDetecting() []int {
	var out []int
	for v, r := range b.Rows {
		if r.Floating {
			continue
		}
		good := GoodOut(b.Kind, v)
		if r.Out != good && r.Out != logic.LX {
			out = append(out, v)
		}
	}
	return out
}

// LeakDetecting returns the input vectors with an IDDQ signature not
// present in the fault-free gate (which never leaks).
func (b *Behavior) LeakDetecting() []int {
	var out []int
	for v, r := range b.Rows {
		if r.Leak {
			out = append(out, v)
		}
	}
	return out
}

// FloatingVectors returns the vectors that leave the faulty output
// undriven (the stuck-open condition requiring two-pattern tests).
func (b *Behavior) FloatingVectors() []int {
	var out []int
	for v, r := range b.Rows {
		if r.Floating {
			out = append(out, v)
		}
	}
	return out
}

var behaviorCache sync.Map // behaviorKey -> *Behavior

type behaviorKey struct {
	kind gates.Kind
	tr   string
	f    logic.TFault
}

// GateBehavior characterises one gate kind with one transistor fault by
// exhaustive switch-level evaluation over all binary input vectors.
// Results are cached; the returned value is shared and must not be
// modified.
func GateBehavior(kind gates.Kind, transistor string, f logic.TFault) (*Behavior, error) {
	key := behaviorKey{kind, transistor, f}
	if v, ok := behaviorCache.Load(key); ok {
		return v.(*Behavior), nil
	}
	spec := gates.Get(kind)
	if f != logic.TFaultNone && spec.Transistor(transistor) == nil {
		return nil, fmt.Errorf("core: gate %v has no transistor %q", kind, transistor)
	}
	var faults map[string]logic.TFault
	if f != logic.TFaultNone {
		faults = map[string]logic.TFault{transistor: f}
	}
	b := &Behavior{Kind: kind, Transistor: transistor, Fault: f}
	n := 1 << spec.NIn
	for v := 0; v < n; v++ {
		bits := spec.InputVector(v)
		in := make([]logic.V, spec.NIn)
		for i, bit := range bits {
			in[i] = logic.FromBool(bit)
		}
		res := logic.EvalSwitch(spec, in, faults, nil)
		b.Rows = append(b.Rows, RowBehavior{
			Out:      res.Out,
			Strength: res.OutStrength,
			Leak:     res.Leak,
			Floating: res.OutStrength == logic.SCharge,
		})
	}
	behaviorCache.Store(key, b)
	return b, nil
}

// FunctionPreserved reports whether the faulty gate still computes its
// Boolean function on every driven vector (floating vectors excluded) —
// the paper's fault-masking condition for channel breaks in DP gates.
func (b *Behavior) FunctionPreserved() bool {
	for v, r := range b.Rows {
		if r.Floating {
			return false
		}
		if r.Out != GoodOut(b.Kind, v) {
			return false
		}
	}
	return true
}
