package core

import (
	"fmt"

	"cpsinw/internal/logic"
)

// BridgeKind selects the electrical resolution of a two-net bridge
// (Table I, step 5: "bridge among interconnects").
type BridgeKind int

const (
	// BridgeWiredAND: both nets read the AND of their driven values — the
	// resolution when the 0-driver wins (the stronger electron branch of
	// this technology, consistent with the switch-level contention policy).
	BridgeWiredAND BridgeKind = iota
	// BridgeWiredOR: the 1-driver wins.
	BridgeWiredOR
	// BridgeADominates: net A's driven value overrides net B.
	BridgeADominates
	// BridgeBDominates: net B's driven value overrides net A.
	BridgeBDominates
)

// String names the bridge kind.
func (k BridgeKind) String() string {
	switch k {
	case BridgeWiredAND:
		return "wired-AND"
	case BridgeWiredOR:
		return "wired-OR"
	case BridgeADominates:
		return "A-dom"
	case BridgeBDominates:
		return "B-dom"
	}
	return "invalid"
}

// Resolve computes the bridged values of the two nets from their driven
// values. X inputs stay X conservatively.
func (k BridgeKind) Resolve(a, b logic.V) (na, nb logic.V) {
	and := func(x, y logic.V) logic.V {
		switch {
		case x == logic.L0 || y == logic.L0:
			return logic.L0
		case x == logic.L1 && y == logic.L1:
			return logic.L1
		}
		return logic.LX
	}
	or := func(x, y logic.V) logic.V {
		switch {
		case x == logic.L1 || y == logic.L1:
			return logic.L1
		case x == logic.L0 && y == logic.L0:
			return logic.L0
		}
		return logic.LX
	}
	switch k {
	case BridgeWiredAND:
		v := and(a, b)
		return v, v
	case BridgeWiredOR:
		v := or(a, b)
		return v, v
	case BridgeADominates:
		return a, a
	case BridgeBDominates:
		return b, b
	}
	return a, b
}

// Bridge is a two-net bridging fault instance.
type Bridge struct {
	Kind BridgeKind
	A, B string // bridged nets
}

// String renders the bridge identifier.
func (b Bridge) String() string {
	return fmt.Sprintf("bridge(%s,%s)/%s", b.A, b.B, b.Kind)
}

// NeighborBridges enumerates realistic bridge candidates: pairs of nets
// whose drivers are adjacent in topological order (a layout-neighbour
// approximation, as inductive fault analysis would extract from a real
// layout). Each pair is emitted as wired-AND and wired-OR.
func NeighborBridges(c *logic.Circuit, window int) []Bridge {
	if window < 1 {
		window = 1
	}
	order := c.Levelized()
	var out []Bridge
	for i := 0; i < len(order); i++ {
		for j := i + 1; j <= i+window && j < len(order); j++ {
			a := c.Gates[order[i]].Output
			b := c.Gates[order[j]].Output
			out = append(out,
				Bridge{Kind: BridgeWiredAND, A: a, B: b},
				Bridge{Kind: BridgeWiredOR, A: a, B: b},
			)
		}
	}
	return out
}
