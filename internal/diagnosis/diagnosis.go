// Package diagnosis implements fault-dictionary diagnosis for CP
// circuits: every fault of the universe is simulated against the tester
// program once, its failure signature (the set of failing steps) is
// recorded, and an observed signature from a failing device is matched
// back to candidate defects. This closes the paper's inductive-fault-
// analysis loop: from fabrication defects to fault models to tests and
// back to locating the physical defect.
//
// Signatures are held both as sorted step-index lists (the reporting
// form) and as packed bitsets (internal/dict), which carry the hot
// paths: Diagnose is one AND/popcount pass per entry and Resolve keys
// equivalence classes on the compact binary bitset image instead of a
// rendered decimal string.
package diagnosis

import (
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/logic"
)

// Entry is one dictionary record.
type Entry struct {
	Fault     core.Fault
	Signature atpg.Signature

	bits dict.Bitset // packed Signature; built lazily for hand-made entries
}

// Dictionary maps failure signatures to fault candidates.
type Dictionary struct {
	Program *atpg.Program
	Entries []Entry
}

// bitsetOf packs a step-index signature. Width grows past n when the
// signature mentions later steps, so no index is silently dropped.
func bitsetOf(sig atpg.Signature, n int) dict.Bitset {
	for _, i := range sig {
		if i >= n {
			n = i + 1
		}
	}
	b := dict.NewBitset(n)
	for _, i := range sig {
		b.Set(i)
	}
	return b
}

// bitsFor returns entry i's packed signature, packing it on first use.
func (d *Dictionary) bitsFor(i int) dict.Bitset {
	e := &d.Entries[i]
	if e.bits.Bits() == 0 && len(e.Signature) > 0 {
		e.bits = bitsetOf(e.Signature, len(d.Program.Steps))
	}
	return e.bits
}

// Build simulates every fault against the program and records its
// signature. Faults with empty signatures (undetected by the program)
// are kept — they represent test escapes and are reported by Escapes.
func Build(c *logic.Circuit, program *atpg.Program, faults []core.Fault) *Dictionary {
	d := &Dictionary{Program: program}
	for _, f := range faults {
		f := f
		sig := atpg.ExecuteAll(program, &f)
		d.Entries = append(d.Entries, Entry{
			Fault:     f,
			Signature: sig,
			bits:      bitsetOf(sig, len(program.Steps)),
		})
	}
	return d
}

// Escapes lists the faults the program does not detect at all.
func (d *Dictionary) Escapes() []core.Fault {
	var out []core.Fault
	for _, e := range d.Entries {
		if len(e.Signature) == 0 {
			out = append(out, e.Fault)
		}
	}
	return out
}

// Candidate is one diagnosis result with its match quality.
type Candidate struct {
	Fault core.Fault
	Score float64 // Jaccard similarity to the observed signature
}

// Diagnose matches an observed failure signature against the dictionary:
// exact matches first (score 1), otherwise the best-scoring candidates.
// Each entry costs one bitset AND/popcount. Ranking is deterministic:
// score descending, then fault identity ascending, so equal-score
// candidates never shuffle between runs. topK bounds the list (0
// selects 5).
func (d *Dictionary) Diagnose(observed atpg.Signature, topK int) []Candidate {
	if topK <= 0 {
		topK = 5
	}
	obs := bitsetOf(observed, len(d.Program.Steps))
	obsLen := len(observed)
	var out []Candidate
	for i := range d.Entries {
		sigLen := len(d.Entries[i].Signature)
		if sigLen == 0 {
			continue
		}
		inter := dict.AndCount(d.bitsFor(i), obs)
		if inter == 0 {
			continue
		}
		union := sigLen + obsLen - inter
		out = append(out, Candidate{
			Fault: d.Entries[i].Fault,
			Score: float64(inter) / float64(union),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Fault.String() < out[j].Fault.String()
	})
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// diagnoseReference is the original step-set implementation, retained
// as a differential oracle for the bitset path (see the regression
// test). It intentionally keeps the old nondeterministic tie order.
func (d *Dictionary) diagnoseReference(observed atpg.Signature, topK int) []Candidate {
	if topK <= 0 {
		topK = 5
	}
	var out []Candidate
	for _, e := range d.Entries {
		if len(e.Signature) == 0 {
			continue
		}
		if s := e.Signature.Jaccard(observed); s > 0 {
			out = append(out, Candidate{Fault: e.Fault, Score: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// Resolution summarises how well the dictionary distinguishes faults.
type Resolution struct {
	Faults              int // detected faults in the dictionary
	Classes             int // distinct signatures
	UniquelyDiagnosable int // faults alone in their class
}

// Resolve computes the diagnostic resolution. Classes are keyed on the
// packed signature's binary image — equal sets, equal keys — instead of
// rendering every signature to a decimal string per entry.
func (d *Dictionary) Resolve() Resolution {
	classes := map[string]int{}
	r := Resolution{}
	for i := range d.Entries {
		if len(d.Entries[i].Signature) == 0 {
			continue
		}
		r.Faults++
		classes[d.bitsFor(i).Key()]++
	}
	r.Classes = len(classes)
	for _, n := range classes {
		if n == 1 {
			r.UniquelyDiagnosable++
		}
	}
	return r
}
