// Package diagnosis implements fault-dictionary diagnosis for CP
// circuits: every fault of the universe is simulated against the tester
// program once, its failure signature (the set of failing steps) is
// recorded, and an observed signature from a failing device is matched
// back to candidate defects. This closes the paper's inductive-fault-
// analysis loop: from fabrication defects to fault models to tests and
// back to locating the physical defect.
package diagnosis

import (
	"fmt"
	"sort"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// Entry is one dictionary record.
type Entry struct {
	Fault     core.Fault
	Signature atpg.Signature
}

// Dictionary maps failure signatures to fault candidates.
type Dictionary struct {
	Program *atpg.Program
	Entries []Entry
}

// Build simulates every fault against the program and records its
// signature. Faults with empty signatures (undetected by the program)
// are kept — they represent test escapes and are reported by Escapes.
func Build(c *logic.Circuit, program *atpg.Program, faults []core.Fault) *Dictionary {
	d := &Dictionary{Program: program}
	for _, f := range faults {
		f := f
		sig := atpg.ExecuteAll(program, &f)
		d.Entries = append(d.Entries, Entry{Fault: f, Signature: sig})
	}
	return d
}

// Escapes lists the faults the program does not detect at all.
func (d *Dictionary) Escapes() []core.Fault {
	var out []core.Fault
	for _, e := range d.Entries {
		if len(e.Signature) == 0 {
			out = append(out, e.Fault)
		}
	}
	return out
}

// Candidate is one diagnosis result with its match quality.
type Candidate struct {
	Fault core.Fault
	Score float64 // Jaccard similarity to the observed signature
}

// Diagnose matches an observed failure signature against the dictionary:
// exact matches first (score 1), otherwise the best-scoring candidates.
// topK bounds the list (0 selects 5).
func (d *Dictionary) Diagnose(observed atpg.Signature, topK int) []Candidate {
	if topK <= 0 {
		topK = 5
	}
	var out []Candidate
	for _, e := range d.Entries {
		if len(e.Signature) == 0 {
			continue
		}
		s := e.Signature.Jaccard(observed)
		if s > 0 {
			out = append(out, Candidate{Fault: e.Fault, Score: s})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if len(out) > topK {
		out = out[:topK]
	}
	return out
}

// Resolution summarises how well the dictionary distinguishes faults.
type Resolution struct {
	Faults              int // detected faults in the dictionary
	Classes             int // distinct signatures
	UniquelyDiagnosable int // faults alone in their class
}

// Resolve computes the diagnostic resolution.
func (d *Dictionary) Resolve() Resolution {
	classes := map[string][]int{}
	detected := 0
	for i, e := range d.Entries {
		if len(e.Signature) == 0 {
			continue
		}
		detected++
		classes[sigKey(e.Signature)] = append(classes[sigKey(e.Signature)], i)
	}
	r := Resolution{Faults: detected, Classes: len(classes)}
	for _, members := range classes {
		if len(members) == 1 {
			r.UniquelyDiagnosable++
		}
	}
	return r
}

func sigKey(s atpg.Signature) string {
	return fmt.Sprint([]int(s))
}
