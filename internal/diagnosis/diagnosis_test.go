package diagnosis

import (
	"testing"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

func buildDict(t *testing.T, c *logic.Circuit) (*Dictionary, []core.Fault) {
	t.Helper()
	universe := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	res := atpg.Generate(c, universe, atpg.Options{})
	program := atpg.BuildProgram(c, res)
	return Build(c, program, universe), universe
}

func TestDictionarySelfDiagnosis(t *testing.T) {
	// Diagnosing the signature of each fault must rank that fault at
	// score 1 (an exact class match) among the candidates.
	c := bench.FullAdderCP()
	d, _ := buildDict(t, c)
	for _, e := range d.Entries {
		if len(e.Signature) == 0 {
			continue
		}
		cands := d.Diagnose(e.Signature, 50)
		found := false
		for _, cand := range cands {
			if cand.Fault.String() == e.Fault.String() {
				if cand.Score != 1 {
					t.Errorf("%v: self score %.2f, want 1", e.Fault, cand.Score)
				}
				found = true
			}
		}
		if !found {
			t.Errorf("%v: not among its own candidates", e.Fault)
		}
	}
}

func TestDictionaryGoldenSignatureEmpty(t *testing.T) {
	c := bench.FullAdderCP()
	d, _ := buildDict(t, c)
	if sig := atpg.ExecuteAll(d.Program, nil); len(sig) != 0 {
		t.Errorf("golden device has failure signature %v", sig)
	}
}

func TestDictionaryEscapesMatchUntestable(t *testing.T) {
	// On the full adder every targeted fault is covered; escapes should
	// be empty or limited to faults the campaign reported untestable.
	c := bench.FullAdderCP()
	universe := core.Universe(c, core.UniverseOptions{
		LineStuckAt: true, ChannelBreak: true, Polarity: true,
	})
	res := atpg.Generate(c, universe, atpg.Options{})
	program := atpg.BuildProgram(c, res)
	d := Build(c, program, universe)
	untestable := map[string]bool{}
	for _, f := range res.Untestable {
		untestable[f.String()] = true
	}
	for _, esc := range d.Escapes() {
		if !untestable[esc.String()] {
			t.Errorf("covered fault %v escapes the program", esc)
		}
	}
}

func TestDiagnosticResolution(t *testing.T) {
	c := bench.RippleCarryAdder(4)
	d, _ := buildDict(t, c)
	r := d.Resolve()
	if r.Faults == 0 || r.Classes == 0 {
		t.Fatalf("empty resolution: %+v", r)
	}
	if r.Classes > r.Faults {
		t.Errorf("more classes than faults: %+v", r)
	}
	// A full tester program distinguishes a healthy share of the faults.
	if frac := float64(r.UniquelyDiagnosable) / float64(r.Faults); frac < 0.2 {
		t.Errorf("unique diagnosis rate %.2f too low (%+v)", frac, r)
	}
}

func TestSignatureOps(t *testing.T) {
	a := atpg.Signature{1, 3, 5}
	b := atpg.Signature{1, 3, 5}
	if !a.Equal(b) {
		t.Error("Equal broken")
	}
	if a.Equal(atpg.Signature{1, 3}) {
		t.Error("length mismatch accepted")
	}
	if s := a.Jaccard(atpg.Signature{1, 3, 7}); s < 0.49 || s > 0.51 {
		t.Errorf("Jaccard = %v, want 0.5", s)
	}
	if s := a.Jaccard(atpg.Signature{}); s != 0 {
		t.Errorf("Jaccard vs empty = %v", s)
	}
	if s := (atpg.Signature{}).Jaccard(atpg.Signature{}); s != 1 {
		t.Errorf("empty-empty = %v", s)
	}
}

func TestDiagnoseMatchesReferenceOracle(t *testing.T) {
	// The bitset Diagnose path must produce the same candidate set and
	// scores as the retained step-set reference implementation — the
	// only permitted difference is the deterministic tie order.
	for _, c := range []*logic.Circuit{bench.FullAdderCP(), bench.RippleCarryAdder(4)} {
		d, _ := buildDict(t, c)
		for _, e := range d.Entries {
			if len(e.Signature) == 0 {
				continue
			}
			got := d.Diagnose(e.Signature, 1000)
			want := d.diagnoseReference(e.Signature, 1000)
			if len(got) != len(want) {
				t.Fatalf("%v: %d candidates vs reference %d", e.Fault, len(got), len(want))
			}
			scores := map[string]float64{}
			for _, cand := range want {
				scores[cand.Fault.String()] = cand.Score
			}
			for _, cand := range got {
				ref, ok := scores[cand.Fault.String()]
				if !ok || ref != cand.Score {
					t.Errorf("%v: candidate %v score %v, reference %v (present=%v)",
						e.Fault, cand.Fault, cand.Score, ref, ok)
				}
			}
		}
	}
}

func TestDiagnoseDeterministicTieBreak(t *testing.T) {
	// Faults in the same equivalence class all score 1 against the
	// shared signature; their relative order must be by fault identity
	// and identical on every call.
	c := bench.RippleCarryAdder(4)
	d, _ := buildDict(t, c)
	r := d.Resolve()
	if r.Classes == r.Faults {
		t.Skip("no equivalence classes with >1 member")
	}
	var probe Entry
	count := map[string]int{}
	for i := range d.Entries {
		if len(d.Entries[i].Signature) == 0 {
			continue
		}
		k := d.bitsFor(i).Key()
		count[k]++
		if count[k] == 2 {
			probe = d.Entries[i]
		}
	}
	if probe.Fault.String() == "" && len(probe.Signature) == 0 {
		t.Fatal("no multi-member class found despite Resolve reporting one")
	}
	first := d.Diagnose(probe.Signature, 50)
	if len(first) < 2 {
		t.Fatalf("only %d candidates for a class signature", len(first))
	}
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a.Score < b.Score {
			t.Fatalf("scores not descending: %v then %v", a, b)
		}
		if a.Score == b.Score && a.Fault.String() >= b.Fault.String() {
			t.Fatalf("tie not broken by fault identity: %q before %q", a.Fault, b.Fault)
		}
	}
	for trial := 0; trial < 3; trial++ {
		again := d.Diagnose(probe.Signature, 50)
		for i := range first {
			if again[i].Fault.String() != first[i].Fault.String() || again[i].Score != first[i].Score {
				t.Fatalf("trial %d: rank %d changed from %v to %v", trial, i, first[i], again[i])
			}
		}
	}
}

func TestDiagnoseNearMiss(t *testing.T) {
	// A signature with one extra failing step still finds the true fault
	// with a high score.
	c := bench.FullAdderCP()
	d, _ := buildDict(t, c)
	var target Entry
	for _, e := range d.Entries {
		if len(e.Signature) >= 2 {
			target = e
			break
		}
	}
	if len(target.Signature) == 0 {
		t.Skip("no multi-step signature available")
	}
	noisy := append(atpg.Signature{}, target.Signature...)
	noisy = append(noisy, len(d.Program.Steps)) // an impossible extra step index
	cands := d.Diagnose(noisy, 5)
	if len(cands) == 0 {
		t.Fatal("no candidates for a noisy signature")
	}
	found := false
	for _, cand := range cands {
		if cand.Fault.String() == target.Fault.String() {
			found = true
		}
	}
	if !found {
		t.Errorf("true fault %v not among top candidates", target.Fault)
	}
}
