package bench

import (
	"embed"
	"fmt"
	"sort"
	"strings"
	"sync"

	"cpsinw/internal/logic"
)

// The ISCAS-85-scale reconstruction corpus: deterministic structural
// stand-ins for c432, c499 and c880 at the originals' canonical I/O
// footprint (testdata/iscas/README.md documents exactly what that
// means). They resolve through Get like every other benchmark but are
// deliberately not part of Suite(), so the fixed-suite goldens and
// their cache keys are unaffected.

//go:embed testdata/iscas/*.bench
var iscasFS embed.FS

var iscasOnce struct {
	sync.Once
	circuits map[string]*logic.Circuit
	err      error
}

// iscas parses the embedded corpus once and caches it.
func iscas() (map[string]*logic.Circuit, error) {
	iscasOnce.Do(func() {
		entries, err := iscasFS.ReadDir("testdata/iscas")
		if err != nil {
			iscasOnce.err = err
			return
		}
		m := make(map[string]*logic.Circuit, len(entries))
		for _, e := range entries {
			name := strings.TrimSuffix(e.Name(), ".bench")
			f, err := iscasFS.Open("testdata/iscas/" + e.Name())
			if err != nil {
				iscasOnce.err = err
				return
			}
			c, err := logic.ParseBench(name, f)
			f.Close()
			if err != nil {
				iscasOnce.err = fmt.Errorf("embedded %s: %w", e.Name(), err)
				return
			}
			m[name] = c
		}
		iscasOnce.circuits = m
	})
	return iscasOnce.circuits, iscasOnce.err
}

// ISCASNames lists the reconstruction corpus names, sorted.
func ISCASNames() []string {
	m, err := iscas()
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
