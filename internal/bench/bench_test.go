package bench

import (
	"strings"
	"testing"
	"testing/quick"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

func TestC17Function(t *testing.T) {
	c := C17()
	// Reference: o22 = NAND(n10,n16), with the classic c17 structure.
	ref := func(i1, i2, i3, i4, i5 bool) (bool, bool) {
		nand := func(a, b bool) bool { return !(a && b) }
		n10 := nand(i1, i3)
		n11 := nand(i3, i4)
		n16 := nand(i2, n11)
		n19 := nand(n11, i5)
		return nand(n10, n16), nand(n16, n19)
	}
	for v := 0; v < 32; v++ {
		bits := make([]bool, 5)
		assign := map[string]logic.V{}
		for i := 0; i < 5; i++ {
			bits[i] = v>>uint(i)&1 == 1
			assign[[]string{"i1", "i2", "i3", "i4", "i5"}[i]] = logic.FromBool(bits[i])
		}
		o22, o23 := ref(bits[0], bits[1], bits[2], bits[3], bits[4])
		got := c.EvalOutputs(assign)
		if got[0] != logic.FromBool(o22) || got[1] != logic.FromBool(o23) {
			t.Errorf("c17 vector %05b: got %v,%v want %v,%v", v, got[0], got[1], o22, o23)
		}
	}
}

func TestRippleCarryAdderProperty(t *testing.T) {
	c := RippleCarryAdder(4)
	f := func(a, b uint8, cin bool) bool {
		av, bv := uint32(a&0xF), uint32(b&0xF)
		want := av + bv
		if cin {
			want++
		}
		assign := map[string]logic.V{"cin": logic.FromBool(cin)}
		for i := 0; i < 4; i++ {
			assign[key("a", i)] = logic.FromBool(av>>uint(i)&1 == 1)
			assign[key("b", i)] = logic.FromBool(bv>>uint(i)&1 == 1)
		}
		vals := c.Eval(assign)
		var got uint32
		for i := 0; i < 4; i++ {
			if vals[key("s", i)] == logic.L1 {
				got |= 1 << uint(i)
			}
		}
		if vals["cout"] == logic.L1 {
			got |= 1 << 4
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func key(p string, i int) string { return p + string(rune('0'+i)) }

func TestParityTreeProperty(t *testing.T) {
	for _, n := range []int{2, 3, 5, 8, 16} {
		c := ParityTree(n)
		f := func(bits uint32) bool {
			assign := map[string]logic.V{}
			parity := false
			for i := 0; i < n; i++ {
				b := bits>>uint(i)&1 == 1
				assign[c.Inputs[i]] = logic.FromBool(b)
				parity = parity != b
			}
			return c.EvalOutputs(assign)[0] == logic.FromBool(parity)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("parity%d: %v", n, err)
		}
	}
}

func TestParityTreeIsDPDominated(t *testing.T) {
	s := ParityTree(16).Statistics()
	if s.DPGates != s.Gates {
		t.Errorf("parity tree should be all-DP: %+v", s)
	}
}

func TestTMRVoterMasksSingleModuleError(t *testing.T) {
	c := TMRVoter()
	// All modules agree on NAND(x,y); flipping a single module's inputs
	// cannot change the vote when the other two agree.
	assign := map[string]logic.V{
		"x0": logic.L1, "y0": logic.L1, // f0 = 0
		"x1": logic.L1, "y1": logic.L1, // f1 = 0
		"x2": logic.L0, "y2": logic.L1, // f2 = 1 (disagreeing module)
	}
	if out := c.EvalOutputs(assign)[0]; out != logic.L0 {
		t.Errorf("vote = %v, want 0 (majority)", out)
	}
}

func TestMultiplierExhaustive(t *testing.T) {
	for _, n := range []int{2, 3} {
		c := Multiplier(n)
		max := 1 << uint(n)
		for a := 0; a < max; a++ {
			for b := 0; b < max; b++ {
				assign := map[string]logic.V{}
				for i := 0; i < n; i++ {
					assign[key("a", i)] = logic.FromBool(a>>uint(i)&1 == 1)
					assign[key("b", i)] = logic.FromBool(b>>uint(i)&1 == 1)
				}
				vals := c.Eval(assign)
				var got int
				for i := 0; i < 2*n; i++ {
					if vals[key("m", i)] == logic.L1 {
						got |= 1 << uint(i)
					}
				}
				if got != a*b {
					t.Fatalf("mult%d: %d*%d = %d, want %d", n, a, b, got, a*b)
				}
			}
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	c1 := Random(7, 6, 20)
	c2 := Random(7, 6, 20)
	if len(c1.Gates) != len(c2.Gates) {
		t.Fatal("random circuit not deterministic in size")
	}
	for i := range c1.Gates {
		if c1.Gates[i].Kind != c2.Gates[i].Kind || c1.Gates[i].Output != c2.Gates[i].Output {
			t.Fatal("random circuit not deterministic")
		}
	}
	if len(Random(8, 6, 20).Gates) == 0 {
		t.Fatal("random circuit empty")
	}
}

func TestSuite(t *testing.T) {
	s := Suite()
	if len(s) < 8 {
		t.Fatalf("suite has %d entries", len(s))
	}
	totalDP := 0
	for name, c := range s {
		if c == nil {
			t.Errorf("%s: nil circuit", name)
			continue
		}
		st := c.Statistics()
		if st.Gates == 0 {
			t.Errorf("%s: no gates", name)
		}
		totalDP += st.DPGates
	}
	if totalDP == 0 {
		t.Error("suite contains no DP gates at all")
	}
}

// TestCrossbarScalingRow pins the corpus's >100k-gate scaling point:
// crossbar8 must build past 100k gates so the fault-sim scaling curve
// has a memory-array-shaped entry beyond the multiplier family. Gated
// behind -short because building the 65k-cell array takes real time.
func TestCrossbarScalingRow(t *testing.T) {
	if testing.Short() {
		t.Skip("crossbar8 build is a long test")
	}
	c, err := Get("crossbar8")
	if err != nil {
		t.Fatal(err)
	}
	st := c.Statistics()
	if st.Gates < 100_000 {
		t.Fatalf("crossbar8: %d gates, want >100k for the scaling row", st.Gates)
	}
	if len(c.Inputs) != 16 || len(c.Outputs) != 256 {
		t.Fatalf("crossbar8: %d/%d I/O, want 16/256", len(c.Inputs), len(c.Outputs))
	}
	// The lifted decoder cap rides along: oversized decoders are now
	// governed by the uniform gate bound, not a hardcoded width.
	if _, err := Get("decoder21"); err == nil || !strings.Contains(err.Error(), "gates") {
		t.Fatalf("decoder21 = %v, want gate-bound rejection", err)
	}
}

func TestMultiplierUsesNativeCPCells(t *testing.T) {
	st := Multiplier(3).Statistics()
	if st.ByKind[gates.XOR3] == 0 || st.ByKind[gates.MAJ3] == 0 {
		t.Errorf("multiplier should use XOR3/MAJ cells: %+v", st.ByKind)
	}
}
