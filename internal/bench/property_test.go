package bench

import (
	"testing"
	"testing/quick"

	"cpsinw/internal/logic"
)

// TestRandomCircuitsAlwaysValidProperty: the generator must produce
// structurally valid, simulatable circuits for any seed and size.
func TestRandomCircuitsAlwaysValidProperty(t *testing.T) {
	f := func(seed int64, nIn, nGates uint8) bool {
		c := Random(seed, int(nIn%10)+3, int(nGates%40)+1)
		if len(c.Outputs) == 0 || len(c.Gates) == 0 {
			return false
		}
		// Simulate an arbitrary binary pattern without panic and with
		// fully defined outputs.
		assign := map[string]logic.V{}
		for i, pi := range c.Inputs {
			assign[pi] = logic.FromBool(i%2 == 0)
		}
		for _, v := range c.EvalOutputs(assign) {
			if _, ok := v.Bool(); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestAdderCommutativityProperty: the CP ripple-carry adder must be
// symmetric in its operands.
func TestAdderCommutativityProperty(t *testing.T) {
	c := RippleCarryAdder(4)
	f := func(a, b uint8, cin bool) bool {
		av, bv := a&0xF, b&0xF
		s1 := addWith(c, av, bv, cin)
		s2 := addWith(c, bv, av, cin)
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func addWith(c *logic.Circuit, a, b uint8, cin bool) uint32 {
	assign := map[string]logic.V{"cin": logic.FromBool(cin)}
	for i := 0; i < 4; i++ {
		assign[key("a", i)] = logic.FromBool(a>>uint(i)&1 == 1)
		assign[key("b", i)] = logic.FromBool(b>>uint(i)&1 == 1)
	}
	vals := c.Eval(assign)
	var got uint32
	for i := 0; i < 4; i++ {
		if vals[key("s", i)] == logic.L1 {
			got |= 1 << uint(i)
		}
	}
	if vals["cout"] == logic.L1 {
		got |= 1 << 4
	}
	return got
}

// TestParityLinearityProperty: flipping exactly one input flips the
// parity output (the defining property of XOR trees).
func TestParityLinearityProperty(t *testing.T) {
	c := ParityTree(8)
	f := func(bits uint8, which uint8) bool {
		assign := map[string]logic.V{}
		for i := 0; i < 8; i++ {
			assign[c.Inputs[i]] = logic.FromBool(bits>>uint(i)&1 == 1)
		}
		before := c.EvalOutputs(assign)[0]
		flip := int(which) % 8
		assign[c.Inputs[flip]] = assign[c.Inputs[flip]].Not()
		after := c.EvalOutputs(assign)[0]
		return after == before.Not()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
