//go:build ignore

// gen.go regenerates the ISCAS-85-scale reconstruction netlists in
// this directory (c432.bench, c499.bench, c880.bench). The circuits
// are deterministic structural reconstructions at each original's
// canonical I/O footprint and function class — see README.md for what
// that does and does not promise. Run from this directory:
//
//	go run gen.go
package main

import (
	"fmt"
	"math/bits"
	"os"
	"strings"
)

// netlist accumulates a .bench file: declarations first, gates after,
// every net name handed out exactly once.
type netlist struct {
	name    string
	ins     []string
	outs    []string
	gates   []string
	defined map[string]bool
}

func newNetlist(name string) *netlist {
	return &netlist{name: name, defined: map[string]bool{}}
}

func (n *netlist) in(name string) string {
	if n.defined[name] {
		panic("redefined net " + name)
	}
	n.defined[name] = true
	n.ins = append(n.ins, name)
	return name
}

func (n *netlist) out(name string) { n.outs = append(n.outs, name) }

func (n *netlist) gate(name, fn string, args ...string) string {
	if n.defined[name] {
		panic("redefined net " + name)
	}
	for _, a := range args {
		if !n.defined[a] {
			panic(name + " uses undefined net " + a)
		}
	}
	n.defined[name] = true
	n.gates = append(n.gates, fmt.Sprintf("%s = %s(%s)", name, fn, strings.Join(args, ", ")))
	return name
}

func (n *netlist) render(header string) string {
	var b strings.Builder
	for _, line := range strings.Split(strings.TrimSpace(header), "\n") {
		fmt.Fprintf(&b, "# %s\n", strings.TrimSpace(strings.TrimPrefix(line, "#")))
	}
	b.WriteString("\n")
	for _, i := range n.ins {
		fmt.Fprintf(&b, "INPUT(%s)\n", i)
	}
	b.WriteString("\n")
	for _, o := range n.outs {
		fmt.Fprintf(&b, "OUTPUT(%s)\n", o)
	}
	b.WriteString("\n")
	for _, g := range n.gates {
		b.WriteString(g)
		b.WriteString("\n")
	}
	return b.String()
}

func (n *netlist) check(wantIn, wantOut int) {
	if len(n.ins) != wantIn || len(n.outs) != wantOut {
		panic(fmt.Sprintf("%s: %d/%d I/O, want %d/%d", n.name, len(n.ins), len(n.outs), wantIn, wantOut))
	}
}

// c432: 36-input / 7-output priority interrupt controller. Three 9-bit
// request buses gated by a 9-bit enable feed a strict priority chain;
// the outputs are the encoded winning channel, a grant indicator and
// per-bus source flags.
func c432() string {
	g := newNetlist("c432")
	var E, A, B, C [9]string
	for i := 0; i < 9; i++ {
		E[i] = g.in(fmt.Sprintf("E%d", i))
	}
	for i := 0; i < 9; i++ {
		A[i] = g.in(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < 9; i++ {
		B[i] = g.in(fmt.Sprintf("B%d", i))
	}
	for i := 0; i < 9; i++ {
		C[i] = g.in(fmt.Sprintf("C%d", i))
	}

	var req, blk, grant [9]string
	for i := 0; i < 9; i++ {
		any := g.gate(fmt.Sprintf("anyreq%d", i), "OR", A[i], B[i], C[i])
		req[i] = g.gate(fmt.Sprintf("req%d", i), "AND", E[i], any)
	}
	blk[0] = req[0]
	for i := 1; i < 9; i++ {
		blk[i] = g.gate(fmt.Sprintf("blk%d", i), "OR", blk[i-1], req[i])
	}
	grant[0] = g.gate("grant0", "BUF", req[0])
	for i := 1; i < 9; i++ {
		nb := g.gate(fmt.Sprintf("nblk%d", i-1), "NOT", blk[i-1])
		grant[i] = g.gate(fmt.Sprintf("grant%d", i), "AND", req[i], nb)
	}

	for b := 0; b < 4; b++ {
		var set []string
		for i := 0; i < 9; i++ {
			if (i>>b)&1 == 1 {
				set = append(set, grant[i])
			}
		}
		idx := g.gate(fmt.Sprintf("IDX%d", b), "OR", set...)
		g.out(idx)
	}
	anyOut := g.gate("ANY", "BUF", blk[8])
	g.out(anyOut)
	var srcA, srcB []string
	for i := 0; i < 9; i++ {
		srcA = append(srcA, g.gate(fmt.Sprintf("ga%d", i), "AND", grant[i], A[i]))
		srcB = append(srcB, g.gate(fmt.Sprintf("gb%d", i), "AND", grant[i], B[i]))
	}
	g.out(g.gate("SRCA", "OR", srcA...))
	g.out(g.gate("SRCB", "OR", srcB...))

	g.check(36, 7)
	return g.render(`c432 reconstruction: 36-input / 7-output priority interrupt controller.
		Deterministic structural stand-in for ISCAS-85 c432 (see README.md).
		Regenerate with: go run gen.go`)
}

// c499sig gives data bit i its 8-bit check signature: bits 0..5 encode
// i+1, bit 6 is the always-on global parity check, bit 7 marks even
// popcount of i+1. Signatures are pairwise distinct, every check
// covers at least one bit.
func c499sig(i int) int {
	s := (i + 1) & 0x3f
	s |= 1 << 6
	if bits.OnesCount(uint(i+1))%2 == 0 {
		s |= 1 << 7
	}
	return s
}

// c499: 41-input / 32-output single-error-correcting decoder. Eight
// syndrome bits are XOR trees over data subsets against the incoming
// check bits; a per-bit 8-wide match ANDed with the correction-enable
// input flips the addressed data bit.
func c499() string {
	g := newNetlist("c499")
	var ID [32]string
	var IC [8]string
	for i := 0; i < 32; i++ {
		ID[i] = g.in(fmt.Sprintf("ID%d", i))
	}
	for j := 0; j < 8; j++ {
		IC[j] = g.in(fmt.Sprintf("IC%d", j))
	}
	R := g.in("R")

	var s, ns [8]string
	for j := 0; j < 8; j++ {
		args := []string{IC[j]}
		for i := 0; i < 32; i++ {
			if (c499sig(i)>>j)&1 == 1 {
				args = append(args, ID[i])
			}
		}
		s[j] = g.gate(fmt.Sprintf("s%d", j), "XOR", args...)
		ns[j] = g.gate(fmt.Sprintf("ns%d", j), "NOT", s[j])
	}
	for i := 0; i < 32; i++ {
		var match []string
		for j := 0; j < 8; j++ {
			if (c499sig(i)>>j)&1 == 1 {
				match = append(match, s[j])
			} else {
				match = append(match, ns[j])
			}
		}
		cor := g.gate(fmt.Sprintf("cor%d", i), "AND", match...)
		en := g.gate(fmt.Sprintf("en%d", i), "AND", cor, R)
		g.out(g.gate(fmt.Sprintf("OD%d", i), "XOR", ID[i], en))
	}

	g.check(41, 32)
	return g.render(`c499 reconstruction: 41-input / 32-output single-error correction.
		Deterministic structural stand-in for ISCAS-85 c499 (see README.md).
		Regenerate with: go run gen.go`)
}

// c880: 60-input / 26-output 8-bit ALU slice. Two mask/constant-
// conditioned operands feed a MAJ-carry ripple adder and a logic unit;
// a decoded 2-bit select muxes the function, and the flag block plus
// exported carries and a generate bus fill out the 26 outputs. The
// 8-bit test bus folds into the parity flag so every input is
// observable.
func c880() string {
	g := newNetlist("c880")
	var A, B, C, D, M, K [8]string
	for i := 0; i < 8; i++ {
		A[i] = g.in(fmt.Sprintf("A%d", i))
	}
	for i := 0; i < 8; i++ {
		B[i] = g.in(fmt.Sprintf("B%d", i))
	}
	for i := 0; i < 8; i++ {
		C[i] = g.in(fmt.Sprintf("C%d", i))
	}
	for i := 0; i < 8; i++ {
		D[i] = g.in(fmt.Sprintf("D%d", i))
	}
	for i := 0; i < 8; i++ {
		M[i] = g.in(fmt.Sprintf("M%d", i))
	}
	for i := 0; i < 8; i++ {
		K[i] = g.in(fmt.Sprintf("K%d", i))
	}
	var T [8]string
	for i := 0; i < 8; i++ {
		T[i] = g.in(fmt.Sprintf("T%d", i))
	}
	S0, S1 := g.in("S0"), g.in("S1")
	CIN := g.in("CIN")
	EN := g.in("EN")

	var X, Y [8]string
	for i := 0; i < 8; i++ {
		bm := g.gate(fmt.Sprintf("bm%d", i), "AND", B[i], M[i])
		X[i] = g.gate(fmt.Sprintf("x%d", i), "XOR", A[i], bm)
		dk := g.gate(fmt.Sprintf("dk%d", i), "AND", D[i], K[i])
		Y[i] = g.gate(fmt.Sprintf("y%d", i), "OR", C[i], dk)
	}

	carry := CIN
	var sum [8]string
	var carries [9]string
	carries[0] = carry
	for i := 0; i < 8; i++ {
		sum[i] = g.gate(fmt.Sprintf("sum%d", i), "XOR", X[i], Y[i], carry)
		carry = g.gate(fmt.Sprintf("cy%d", i+1), "MAJ", X[i], Y[i], carry)
		carries[i+1] = carry
	}

	var andB, orB, xorB [8]string
	for i := 0; i < 8; i++ {
		andB[i] = g.gate(fmt.Sprintf("andb%d", i), "AND", X[i], Y[i])
		orB[i] = g.gate(fmt.Sprintf("orb%d", i), "OR", X[i], Y[i])
		xorB[i] = g.gate(fmt.Sprintf("xorb%d", i), "XOR", X[i], Y[i])
	}

	nS0 := g.gate("ns0", "NOT", S0)
	nS1 := g.gate("ns1", "NOT", S1)
	d0 := g.gate("d0", "AND", nS1, nS0)
	d1 := g.gate("d1", "AND", nS1, S0)
	d2 := g.gate("d2", "AND", S1, nS0)
	d3 := g.gate("d3", "AND", S1, S0)

	var F [8]string
	for i := 0; i < 8; i++ {
		t0 := g.gate(fmt.Sprintf("m0_%d", i), "AND", d0, sum[i])
		t1 := g.gate(fmt.Sprintf("m1_%d", i), "AND", d1, andB[i])
		t2 := g.gate(fmt.Sprintf("m2_%d", i), "AND", d2, orB[i])
		t3 := g.gate(fmt.Sprintf("m3_%d", i), "AND", d3, xorB[i])
		f := g.gate(fmt.Sprintf("f%d", i), "OR", t0, t1, t2, t3)
		F[i] = g.gate(fmt.Sprintf("F%d", i), "AND", f, EN)
		g.out(F[i])
	}

	g.out(g.gate("COUT", "BUF", carries[8]))
	g.out(g.gate("OVF", "XOR", carries[7], carries[8]))
	g.out(g.gate("ZERO", "NOR", F[0], F[1], F[2], F[3], F[4], F[5], F[6], F[7]))
	par := g.gate("PAR", "XOR",
		F[0], F[1], F[2], F[3], F[4], F[5], F[6], F[7],
		T[0], T[1], T[2], T[3], T[4], T[5], T[6], T[7])
	g.out(par)
	for i := 1; i <= 6; i++ {
		g.out(g.gate(fmt.Sprintf("CO%d", i), "BUF", carries[i]))
	}
	for i := 0; i < 8; i++ {
		g.out(g.gate(fmt.Sprintf("G%d", i), "MAJ", A[i], B[i], C[i]))
	}

	g.check(60, 26)
	return g.render(`c880 reconstruction: 60-input / 26-output 8-bit ALU.
		Deterministic structural stand-in for ISCAS-85 c880 (see README.md).
		Regenerate with: go run gen.go`)
}

func main() {
	for name, body := range map[string]string{
		"c432.bench": c432(),
		"c499.bench": c499(),
		"c880.bench": c880(),
	} {
		if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
			panic(err)
		}
		fmt.Println("wrote", name)
	}
}
