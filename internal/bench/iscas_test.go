package bench

import (
	"math/rand"
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// iscasPatterns mirrors the campaign service's random-pattern builder
// (seeded math/rand over the input list) so the goldens here pin the
// same stimulus a campaign on these circuits would see.
func iscasPatterns(c *logic.Circuit, n int, seed int64) []faultsim.Pattern {
	rng := rand.New(rand.NewSource(seed))
	out := make([]faultsim.Pattern, n)
	for k := range out {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out[k] = p
	}
	return out
}

// TestISCASCorpusShape pins each reconstruction to its original's
// canonical I/O footprint — the one property the corpus promises.
func TestISCASCorpusShape(t *testing.T) {
	want := map[string]struct{ in, out int }{
		"c432": {36, 7},
		"c499": {41, 32},
		"c880": {60, 26},
	}
	names := ISCASNames()
	if len(names) != len(want) {
		t.Fatalf("corpus has %d circuits (%v), want %d", len(names), names, len(want))
	}
	for name, w := range want {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if len(c.Inputs) != w.in || len(c.Outputs) != w.out {
			t.Errorf("%s: %d inputs / %d outputs, want %d / %d",
				name, len(c.Inputs), len(c.Outputs), w.in, w.out)
		}
		if _, ok := Suite()[name]; ok {
			t.Errorf("%s leaked into the fixed Suite; the corpus must stay registry-only", name)
		}
	}
}

// TestISCASGoldenCoverage pins fault-coverage baselines for the corpus
// under 64 seed-1 random patterns. The numbers are goldens for these
// reconstructions — any change means the netlists or the engines moved.
func TestISCASGoldenCoverage(t *testing.T) {
	golden := map[string]struct {
		saTotal, saDet int // classical stuck-at
		trTotal, trDet int // CP transistor, voltage only
		trIDDQDet      int // CP transistor with IDDQ observation
	}{
		"c432": {saTotal: 570, saDet: 423, trTotal: 1428, trDet: 180, trIDDQDet: 814},
		"c499": {saTotal: 1860, saDet: 991, trTotal: 5184, trDet: 722, trIDDQDet: 3030},
		"c880": {saTotal: 1122, saDet: 1097, trTotal: 2924, trDet: 613, trIDDQDet: 2014},
	}
	for name, want := range golden {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		pats := iscasPatterns(c, 64, 1)
		sim := faultsim.New(c)
		sim.Engine = faultsim.EnginePacked

		sa := faultsim.Summarise(sim.RunStuckAt(core.Universe(c, core.ClassicalOnly()), pats))
		tr := core.Universe(c, core.UniverseOptions{ChannelBreak: true, Polarity: true, StuckOn: true})
		noIDDQ, err := sim.RunTransistor(tr, pats, false)
		if err != nil {
			t.Fatal(err)
		}
		withIDDQ, err := sim.RunTransistor(tr, pats, true)
		if err != nil {
			t.Fatal(err)
		}
		covNo, covYes := faultsim.Summarise(noIDDQ), faultsim.Summarise(withIDDQ)

		t.Logf("%s: sa %d/%d  tr %d/%d  +iddq %d/%d", name,
			sa.Detected, sa.Total, covNo.Detected, covNo.Total, covYes.Detected, covYes.Total)
		if sa.Total != want.saTotal || sa.Detected != want.saDet {
			t.Errorf("%s stuck-at: %d/%d, golden %d/%d", name, sa.Detected, sa.Total, want.saDet, want.saTotal)
		}
		if covNo.Total != want.trTotal || covNo.Detected != want.trDet {
			t.Errorf("%s transistor: %d/%d, golden %d/%d", name, covNo.Detected, covNo.Total, want.trDet, want.trTotal)
		}
		if covYes.Detected != want.trIDDQDet {
			t.Errorf("%s transistor+IDDQ: %d detected, golden %d", name, covYes.Detected, want.trIDDQDet)
		}
	}
}
