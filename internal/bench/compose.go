package bench

import (
	"fmt"
	"sort"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Chip is a hierarchical circuit builder: flat gates plus named
// instances of complete sub-circuits whose internal nets are namespaced
// under the instance name ("<inst>.<net>"). It is the composition layer
// every corpus generator is built on, so a 10k-gate benchmark is a tree
// of the same verified cells (FullAdderCP, RippleCarryAdder, DecoderN,
// ...) rather than a bespoke gate soup.
//
// Errors accumulate and surface once, from Build; the builder methods
// are chainable-by-statement without per-call error handling.
type Chip struct {
	name    string
	inputs  []string
	outputs []string
	insts   []logic.GateInst
	errs    []error
	tmp     int
}

// NewChip starts an empty chip.
func NewChip(name string) *Chip { return &Chip{name: name} }

// Input declares primary inputs, in order.
func (ch *Chip) Input(names ...string) {
	ch.inputs = append(ch.inputs, names...)
}

// Output declares primary outputs, in order.
func (ch *Chip) Output(names ...string) {
	ch.outputs = append(ch.outputs, names...)
}

// Gate adds one native-library gate driving out.
func (ch *Chip) Gate(kind gates.Kind, out string, fanin ...string) {
	ch.insts = append(ch.insts, logic.GateInst{
		Name:   fmt.Sprintf("g%d_%s", len(ch.insts), out),
		Kind:   kind,
		Fanin:  fanin,
		Output: out,
	})
}

// Instance inlines sub under the given instance name. conn binds the
// sub-circuit's port names (primary inputs and outputs) to parent nets:
// every sub input must be bound; sub outputs are bound where mapped and
// namespaced to "<inst>.<net>" otherwise (as are all internal nets), so
// sibling instances can never collide. The returned map gives the
// parent-side net of every sub output.
func (ch *Chip) Instance(inst string, sub *logic.Circuit, conn map[string]string) map[string]string {
	rename := make(map[string]string, len(sub.Inputs)+len(sub.Outputs))
	for _, pi := range sub.Inputs {
		parent, ok := conn[pi]
		if !ok {
			ch.errs = append(ch.errs, fmt.Errorf("instance %s of %s: input %q unbound", inst, sub.Name, pi))
			parent = inst + "." + pi // keep building; Build reports the error
		}
		rename[pi] = parent
	}
	outs := make(map[string]string, len(sub.Outputs))
	for _, po := range sub.Outputs {
		parent, ok := conn[po]
		if !ok {
			parent = inst + "." + po
		}
		rename[po] = parent
		outs[po] = parent
	}
	resolve := func(net string) string {
		if r, ok := rename[net]; ok {
			return r
		}
		return inst + "." + net
	}
	for _, g := range sub.Gates {
		fanin := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			fanin[i] = resolve(f)
		}
		ch.insts = append(ch.insts, logic.GateInst{
			Name:   inst + "." + g.Name,
			Kind:   g.Kind,
			Fanin:  fanin,
			Output: resolve(g.Output),
		})
	}
	return outs
}

// fresh returns a chip-unique scratch net name. Generators use plain
// positional names for their own nets; the "~" prefix keeps macro
// scratch nets out of their namespace.
func (ch *Chip) fresh() string {
	ch.tmp++
	return fmt.Sprintf("~w%d", ch.tmp-1)
}

// AND drives out with the conjunction of the fanin, decomposed onto the
// native library (NAND2/NAND3 + NOT tree) like the .bench importer.
func (ch *Chip) AND(out string, fanin ...string) {
	ch.reduceNeg(gates.NAND2, gates.NAND3, out, fanin)
}

// OR drives out with the disjunction (NOR2/NOR3 + NOT tree).
func (ch *Chip) OR(out string, fanin ...string) {
	ch.reduceNeg(gates.NOR2, gates.NOR3, out, fanin)
}

// XOR drives out with the parity of the fanin (XOR2/XOR3 tree).
func (ch *Chip) XOR(out string, fanin ...string) {
	for len(fanin) > 3 {
		fanin = ch.reduceLevel(fanin, func(chunk []string) string {
			o := ch.fresh()
			ch.Gate(naryKind(gates.XOR2, gates.XOR3, len(chunk)), o, chunk...)
			return o
		})
	}
	if len(fanin) == 1 {
		ch.Gate(gates.BUF, out, fanin[0])
		return
	}
	ch.Gate(naryKind(gates.XOR2, gates.XOR3, len(fanin)), out, fanin...)
}

// MUX2 drives out with s ? a : b, in native cells:
// out = NAND(NAND(s, a), NAND(NOT(s), b)).
func (ch *Chip) MUX2(out, s, a, b string) {
	sn, na, nb := ch.fresh(), ch.fresh(), ch.fresh()
	ch.Gate(gates.INV, sn, s)
	ch.Gate(gates.NAND2, na, s, a)
	ch.Gate(gates.NAND2, nb, sn, b)
	ch.Gate(gates.NAND2, out, na, nb)
}

// reduceNeg builds an AND- or OR-style tree from the inverting k2/k3
// cells: inner nodes are <neg>+NOT, the root is <neg>+NOT into out.
func (ch *Chip) reduceNeg(k2, k3 gates.Kind, out string, fanin []string) {
	node := func(chunk []string) string {
		m, o := ch.fresh(), ch.fresh()
		ch.Gate(naryKind(k2, k3, len(chunk)), m, chunk...)
		ch.Gate(gates.INV, o, m)
		return o
	}
	for len(fanin) > 3 {
		fanin = ch.reduceLevel(fanin, node)
	}
	if len(fanin) == 1 {
		ch.Gate(gates.BUF, out, fanin[0])
		return
	}
	m := ch.fresh()
	ch.Gate(naryKind(k2, k3, len(fanin)), m, fanin...)
	ch.Gate(gates.INV, out, m)
}

// reduceLevel performs one balanced reduction level, grouping into
// chunks of 3 and preferring 2+2 over 3+1 at the tail.
func (ch *Chip) reduceLevel(args []string, node func(chunk []string) string) []string {
	var next []string
	for i := 0; i < len(args); {
		remain := len(args) - i
		switch {
		case remain >= 3 && remain != 4:
			next = append(next, node(args[i:i+3]))
			i += 3
		case remain >= 2:
			next = append(next, node(args[i:i+2]))
			i += 2
		default:
			next = append(next, args[i])
			i++
		}
	}
	return next
}

func naryKind(k2, k3 gates.Kind, n int) gates.Kind {
	if n == 3 {
		return k3
	}
	return k2
}

// Build validates and returns the composed circuit.
func (ch *Chip) Build() (*logic.Circuit, error) {
	if len(ch.errs) > 0 {
		msgs := make([]string, 0, len(ch.errs))
		for _, e := range ch.errs {
			msgs = append(msgs, e.Error())
		}
		sort.Strings(msgs)
		return nil, fmt.Errorf("chip %s: %d composition errors, first: %s", ch.name, len(msgs), msgs[0])
	}
	return logic.NewCircuit(ch.name, ch.inputs, ch.outputs, ch.insts)
}

// MustBuild is Build for generators whose parameters are known-valid;
// it panics on composition errors (a generator bug, not an input).
func (ch *Chip) MustBuild() *logic.Circuit {
	c, err := ch.Build()
	if err != nil {
		panic("bench: " + err.Error())
	}
	return c
}
