package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"cpsinw/internal/logic"
)

func assignBits(assign map[string]logic.V, prefix string, n int, v uint64) {
	for i := 0; i < n; i++ {
		assign[fmt.Sprintf("%s%d", prefix, i)] = logic.FromBool(v>>uint(i)&1 == 1)
	}
}

func readBits(vals map[string]logic.V, prefix string, n int) uint64 {
	var out uint64
	for i := 0; i < n; i++ {
		if vals[fmt.Sprintf("%s%d", prefix, i)] == logic.L1 {
			out |= 1 << uint(i)
		}
	}
	return out
}

func TestHalfAdderCP(t *testing.T) {
	c := HalfAdderCP()
	for v := 0; v < 4; v++ {
		a, b := v&1 == 1, v&2 == 2
		out := c.EvalOutputs(map[string]logic.V{"a": logic.FromBool(a), "b": logic.FromBool(b)})
		if out[0] != logic.FromBool(a != b) || out[1] != logic.FromBool(a && b) {
			t.Errorf("HA(%v,%v) = %v,%v", a, b, out[0], out[1])
		}
	}
}

// TestMultNExhaustive proves both hierarchical multiplier topologies
// exhaustively at small widths.
func TestMultNExhaustive(t *testing.T) {
	for _, build := range []func(int) *logic.Circuit{MultN, MultRC} {
		for _, n := range []int{2, 3, 4} {
			c := build(n)
			max := uint64(1) << uint(n)
			for a := uint64(0); a < max; a++ {
				for b := uint64(0); b < max; b++ {
					assign := map[string]logic.V{}
					assignBits(assign, "a", n, a)
					assignBits(assign, "b", n, b)
					vals := c.Eval(assign)
					if got := readBits(vals, "m", 2*n); got != a*b {
						t.Fatalf("%s: %d*%d = %d, want %d", c.Name, a, b, got, a*b)
					}
				}
			}
		}
	}
}

// TestMultNRandomWide spot-checks a larger multiplier against native
// integer arithmetic.
func TestMultNRandomWide(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(3))
	for _, c := range []*logic.Circuit{MultN(n), MultRC(n)} {
		for trial := 0; trial < 50; trial++ {
			a, b := uint64(rng.Intn(1<<n)), uint64(rng.Intn(1<<n))
			assign := map[string]logic.V{}
			assignBits(assign, "a", n, a)
			assignBits(assign, "b", n, b)
			if got := readBits(c.Eval(assign), "m", 2*n); got != a*b {
				t.Fatalf("%s: %d*%d = %d, want %d", c.Name, a, b, got, a*b)
			}
		}
	}
}

func TestDecoderNOneHot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5} {
		c := DecoderN(n)
		if got, want := len(c.Outputs), 1<<n; got != want {
			t.Fatalf("decoder%d: %d outputs, want %d", n, got, want)
		}
		for v := uint64(0); v < 1<<uint(n); v++ {
			assign := map[string]logic.V{}
			assignBits(assign, "s", n, v)
			vals := c.Eval(assign)
			for k := uint64(0); k < 1<<uint(n); k++ {
				want := logic.FromBool(k == v)
				if got := vals[fmt.Sprintf("d%d", k)]; got != want {
					t.Fatalf("decoder%d(s=%d): d%d = %v, want %v", n, v, k, got, want)
				}
			}
		}
	}
}

// TestCrossbarReadout checks the cross-cell function against its
// definition: with row i and column j addressed, cell (i,j) is the AND
// of the two one-hot selects when i+j is even and their NOR when odd,
// so row output q[i] ORs a guaranteed-high cell exactly when (i+j) is
// even, and the odd-parity NOR cells light every *unselected* row.
func TestCrossbarReadout(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		c := Crossbar(n)
		side := uint64(1) << uint(n)
		if got, want := len(c.Outputs), int(side); got != want {
			t.Fatalf("crossbar%d: %d outputs, want %d", n, got, want)
		}
		for i := uint64(0); i < side; i++ {
			for j := uint64(0); j < side; j++ {
				assign := map[string]logic.V{}
				assignBits(assign, "r", n, i)
				assignBits(assign, "c", n, j)
				vals := c.Eval(assign)
				for k := uint64(0); k < side; k++ {
					// Row k's OR sees: AND cells high only at (i,j) with
					// matching parity; NOR cells high wherever neither the
					// row nor the column select hits the cell.
					want := false
					for col := uint64(0); col < side; col++ {
						sel := k == i && col == j
						if (k+col)%2 == 0 {
							want = want || sel
						} else {
							want = want || (k != i && col != j)
						}
					}
					if got := vals[fmt.Sprintf("q%d", k)]; got != logic.FromBool(want) {
						t.Fatalf("crossbar%d(r=%d,c=%d): q%d = %v, want %v", n, i, j, k, got, logic.FromBool(want))
					}
				}
			}
		}
	}
}

func TestALUOps(t *testing.T) {
	const n = 4
	c := ALU(n)
	mask := uint64(1<<n - 1)
	ops := []struct {
		code uint64
		name string
		f    func(a, b uint64) uint64
	}{
		{0, "add", func(a, b uint64) uint64 { return (a + b) & mask }},
		{1, "sub", func(a, b uint64) uint64 { return (a - b) & mask }},
		{2, "and", func(a, b uint64) uint64 { return a & b }},
		{3, "or", func(a, b uint64) uint64 { return a | b }},
		{4, "xor", func(a, b uint64) uint64 { return a ^ b }},
	}
	for a := uint64(0); a < 1<<n; a++ {
		for b := uint64(0); b < 1<<n; b++ {
			for _, op := range ops {
				assign := map[string]logic.V{}
				assignBits(assign, "a", n, a)
				assignBits(assign, "b", n, b)
				assignBits(assign, "op", 3, op.code)
				vals := c.Eval(assign)
				if got := readBits(vals, "r", n); got != op.f(a, b) {
					t.Fatalf("alu%d %s(%d,%d) = %d, want %d", n, op.name, a, b, got, op.f(a, b))
				}
			}
		}
	}
	// cout on add: carry out of the unmasked sum.
	assign := map[string]logic.V{}
	assignBits(assign, "a", n, mask)
	assignBits(assign, "b", n, 1)
	assignBits(assign, "op", 3, 0)
	if got := c.Eval(assign)["cout"]; got != logic.L1 {
		t.Fatalf("alu%d add carry: cout = %v, want 1", n, got)
	}
}

func TestRandomLayeredShape(t *testing.T) {
	c := RandomLayered(11, 8, 6)
	st := c.Statistics()
	if st.Gates != 8*6 {
		t.Fatalf("layered random: %d gates, want %d", st.Gates, 48)
	}
	if len(c.Outputs) == 0 {
		t.Fatal("layered random: no outputs")
	}
}

// TestGeneratorsDeterministic is the determinism contract: the same
// parameters (and seed) must produce a byte-identical .bench netlist.
func TestGeneratorsDeterministic(t *testing.T) {
	builds := map[string]func() *logic.Circuit{
		"mult6":    func() *logic.Circuit { return MultN(6) },
		"rcmult5":  func() *logic.Circuit { return MultRC(5) },
		"alu8":     func() *logic.Circuit { return ALU(8) },
		"decoder5": func() *logic.Circuit { return DecoderN(5) },
		"randl":    func() *logic.Circuit { return RandomLayered(42, 16, 8) },
		"rand":     func() *logic.Circuit { return Random(42, 8, 100) },
	}
	for name, build := range builds {
		var w1, w2 strings.Builder
		if err := logic.WriteBench(&w1, build()); err != nil {
			t.Fatal(err)
		}
		if err := logic.WriteBench(&w2, build()); err != nil {
			t.Fatal(err)
		}
		if w1.String() != w2.String() {
			t.Errorf("%s: two builds differ byte-wise", name)
		}
		if w1.Len() == 0 {
			t.Errorf("%s: empty netlist", name)
		}
	}
}

// TestGeneratedBenchRoundTrip: every generated circuit survives
// WriteBench -> ParseBench with identical structure (the corpus is
// exchangeable as .bench text).
func TestGeneratedBenchRoundTrip(t *testing.T) {
	for _, c := range []*logic.Circuit{MultN(5), ALU(4), DecoderN(4), RandomLayered(7, 6, 4)} {
		var w strings.Builder
		if err := logic.WriteBench(&w, c); err != nil {
			t.Fatal(err)
		}
		c2, err := logic.ParseBench(c.Name, strings.NewReader(w.String()))
		if err != nil {
			t.Fatalf("%s: round-trip parse: %v", c.Name, err)
		}
		if len(c2.Gates) != len(c.Gates) || len(c2.Inputs) != len(c.Inputs) || len(c2.Outputs) != len(c.Outputs) {
			t.Fatalf("%s: structure drift PI %d->%d PO %d->%d gates %d->%d", c.Name,
				len(c.Inputs), len(c2.Inputs), len(c.Outputs), len(c2.Outputs), len(c.Gates), len(c2.Gates))
		}
	}
}

func TestRegistryGet(t *testing.T) {
	// Fixed names still resolve (and shadow the mult family).
	c, err := Get("mult3")
	if err != nil {
		t.Fatal(err)
	}
	if got := Suite()["mult3"].Statistics().Gates; c.Statistics().Gates != got {
		t.Errorf("mult3 should resolve to the fixed Suite circuit")
	}
	// Parameterized families.
	for name, wantGates := range map[string]int{
		"mult5":        0, // just must build
		"rcmult4":      0,
		"alu6":         0,
		"decoder4":     0,
		"rca16":        32, // XOR3 + MAJ per bit
		"parity32":     0,
		"rand9x50":     50,
		"randl3_w8xd4": 32,
	} {
		c, err := Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if c.Name != name && !strings.HasPrefix(c.Name, "randl") && !strings.HasPrefix(c.Name, "rand") {
			t.Errorf("Get(%q) resolved circuit named %q", name, c.Name)
		}
		if wantGates > 0 && c.Statistics().Gates != wantGates {
			t.Errorf("Get(%q): %d gates, want %d", name, c.Statistics().Gates, wantGates)
		}
	}
	// Errors: unknown names and oversize parameters.
	if _, err := Get("nosuch"); err == nil || !strings.Contains(err.Error(), "families") {
		t.Errorf("Get(nosuch) = %v, want family-listing error", err)
	}
	if _, err := Get("decoder24"); err == nil {
		t.Error("decoder24 should be rejected (size cap)")
	}
	if _, err := Get("mult9999"); err == nil {
		t.Error("mult9999 should be rejected (size cap)")
	}
}

// TestCorpusScales pins the approximate scaling-sweep sizes so the
// BENCH_faultsim.json curve's labels stay honest.
func TestCorpusScales(t *testing.T) {
	for _, tc := range []struct {
		name     string
		min, max int
	}{
		{"mult5", 80, 150},
		{"mult16", 800, 1500},
		{"mult50", 8000, 15000},
	} {
		c, err := Get(tc.name)
		if err != nil {
			t.Fatal(err)
		}
		if g := c.Statistics().Gates; g < tc.min || g > tc.max {
			t.Errorf("%s: %d gates, want %d..%d", tc.name, g, tc.min, tc.max)
		}
	}
}
