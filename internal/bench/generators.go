package bench

import (
	"fmt"
	"math/rand"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// This file holds the industrial-scale corpus generators, all built on
// the Chip composition layer: parameterized multipliers (carry-save and
// ripple-carry), a width-parameterized ALU, balanced decoder trees (the
// crossbar-addressing shape of nanowire arrays) and a depth/width
// controlled layered random family. Every generator is deterministic:
// the same parameters (and seed) produce a byte-identical WriteBench
// netlist.

// HalfAdderCP returns a 1-bit half adder in native CP cells:
// sum = XOR2, carry = AND (NAND2 + NOT).
func HalfAdderCP() *logic.Circuit {
	ch := NewChip("ha_cp")
	ch.Input("a", "b")
	ch.Output("sum", "cout")
	ch.Gate(gates.XOR2, "sum", "a", "b")
	ch.AND("cout", "a", "b")
	return ch.MustBuild()
}

// MultN returns an n x n carry-save array multiplier composed from
// FullAdderCP / HalfAdderCP instances: partial products feed a
// column-wise carry-save reduction, every 3:2 compression one FA
// instance. Inputs a0..a{n-1}, b0..b{n-1}; outputs m0..m{2n-1}.
// Gate count grows as ~4n^2: n=5 is ~100 gates, n=16 ~1k, n=50 ~10k.
func MultN(n int) *logic.Circuit {
	if n < 2 {
		n = 2
	}
	ch := NewChip(fmt.Sprintf("mult%d", n))
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("b%d", i))
	}
	fa, ha := FullAdderCP(), HalfAdderCP()
	cols := make([][]string, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			pp := fmt.Sprintf("pp%d_%d", i, j)
			ch.AND(pp, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			cols[i+j] = append(cols[i+j], pp)
		}
	}
	aux := 0
	for col := 0; col < 2*n; col++ {
		for len(cols[col]) > 1 {
			if len(cols[col]) >= 3 {
				x, y, z := cols[col][0], cols[col][1], cols[col][2]
				cols[col] = cols[col][3:]
				s, cy := fmt.Sprintf("cs%d", aux), fmt.Sprintf("cc%d", aux)
				ch.Instance(fmt.Sprintf("fa%d", aux), fa,
					map[string]string{"a": x, "b": y, "cin": z, "sum": s, "cout": cy})
				aux++
				cols[col] = append(cols[col], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			} else {
				x, y := cols[col][0], cols[col][1]
				cols[col] = cols[col][2:]
				s, cy := fmt.Sprintf("hs%d", aux), fmt.Sprintf("hc%d", aux)
				ch.Instance(fmt.Sprintf("ha%d", aux), ha,
					map[string]string{"a": x, "b": y, "sum": s, "cout": cy})
				aux++
				cols[col] = append(cols[col], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			}
		}
		out := fmt.Sprintf("m%d", col)
		if len(cols[col]) == 1 {
			ch.Gate(gates.BUF, out, cols[col][0])
		} else {
			// Empty top column: a0 XOR a0 buffers a constant zero
			// without needing constant nets.
			z := fmt.Sprintf("z%d", aux)
			aux++
			ch.Gate(gates.XOR2, z, "a0", "a0")
			ch.Gate(gates.BUF, out, z)
		}
		ch.Output(out)
	}
	return ch.MustBuild()
}

// MultRC returns an n x n ripple-carry array multiplier: each row adds
// its partial products to the running sum with a row-internal carry
// ripple (FA/HA instances), the topology that trades the carry-save
// tree's depth for a longer carry chain. Inputs/outputs as MultN.
func MultRC(n int) *logic.Circuit {
	if n < 2 {
		n = 2
	}
	ch := NewChip(fmt.Sprintf("rcmult%d", n))
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("b%d", i))
	}
	fa, ha := FullAdderCP(), HalfAdderCP()
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			net := fmt.Sprintf("pp%d_%d", i, j)
			ch.AND(net, fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j))
			pp[i][j] = net
		}
	}
	// Row 0 passes its partial products straight down.
	s := append([]string(nil), pp[0]...)
	ch.Gate(gates.BUF, "m0", s[0])
	ch.Output("m0")
	rowTop := "" // carry-out of the previous row's last cell ("" for row 0)
	aux := 0
	for i := 1; i < n; i++ {
		next := make([]string, n)
		carry := ""
		for j := 0; j < n; j++ {
			addB := rowTop
			if j < n-1 {
				addB = s[j+1]
			}
			sum, cy := fmt.Sprintf("rs%d", aux), fmt.Sprintf("rc%d", aux)
			inst := fmt.Sprintf("r%d_%d", i, j)
			switch {
			case carry == "" && addB == "":
				// Can only happen off the recurrence; keep the net.
				next[j] = pp[i][j]
				continue
			case carry == "":
				ch.Instance(inst, ha, map[string]string{"a": pp[i][j], "b": addB, "sum": sum, "cout": cy})
			case addB == "":
				ch.Instance(inst, ha, map[string]string{"a": pp[i][j], "b": carry, "sum": sum, "cout": cy})
			default:
				ch.Instance(inst, fa, map[string]string{"a": pp[i][j], "b": addB, "cin": carry, "sum": sum, "cout": cy})
			}
			aux++
			next[j], carry = sum, cy
		}
		rowTop = carry
		s = next
		out := fmt.Sprintf("m%d", i)
		ch.Gate(gates.BUF, out, s[0])
		ch.Output(out)
	}
	for j := 1; j < n; j++ {
		out := fmt.Sprintf("m%d", n-1+j)
		ch.Gate(gates.BUF, out, s[j])
		ch.Output(out)
	}
	out := fmt.Sprintf("m%d", 2*n-1)
	ch.Gate(gates.BUF, out, rowTop)
	ch.Output(out)
	return ch.MustBuild()
}

// DecoderN returns the balanced n-to-2^n decoder tree: the
// crossbar-addressing shape of nanowire array access. Output d<k> is
// high iff the select inputs s0..s{n-1} spell k (s0 is the LSB). Built
// recursively: DecoderN(n) instantiates two half-width decoders and
// crosses their outputs with 2^n AND cells.
func DecoderN(n int) *logic.Circuit {
	if n < 1 {
		n = 1
	}
	ch := NewChip(fmt.Sprintf("decoder%d", n))
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("s%d", i))
	}
	if n == 1 {
		ch.Output("d0", "d1")
		ch.Gate(gates.INV, "d0", "s0")
		ch.Gate(gates.BUF, "d1", "s0")
		return ch.MustBuild()
	}
	lo := n / 2
	hi := n - lo
	loConn := map[string]string{}
	for i := 0; i < lo; i++ {
		loConn[fmt.Sprintf("s%d", i)] = fmt.Sprintf("s%d", i)
	}
	hiConn := map[string]string{}
	for i := 0; i < hi; i++ {
		hiConn[fmt.Sprintf("s%d", i)] = fmt.Sprintf("s%d", lo+i)
	}
	loOut := ch.Instance("lo", DecoderN(lo), loConn)
	hiOut := ch.Instance("hi", DecoderN(hi), hiConn)
	for k := 0; k < 1<<n; k++ {
		out := fmt.Sprintf("d%d", k)
		ch.AND(out,
			loOut[fmt.Sprintf("d%d", k&(1<<lo-1))],
			hiOut[fmt.Sprintf("d%d", k>>lo)])
		ch.Output(out)
	}
	return ch.MustBuild()
}

// Crossbar returns an n-address crossbar array: two DecoderN(n)
// instances (row and column) select one of 2^n x 2^n cross cells, AND
// cells where row+column is even and NOR cells where it is odd, read
// out through one OR tree per row. At crossbar8 that is a >100k-gate
// circuit from ~1.3k-gate decoders, the corpus's memory-array-shaped
// scaling point (wide shallow fanout, unlike the multiplier's deep
// carry chains). Inputs r0..r{n-1}, c0..c{n-1}; outputs q0..q{2^n-1}.
func Crossbar(n int) *logic.Circuit {
	if n < 1 {
		n = 1
	}
	ch := NewChip(fmt.Sprintf("crossbar%d", n))
	rowConn := map[string]string{}
	colConn := map[string]string{}
	for i := 0; i < n; i++ {
		r := fmt.Sprintf("r%d", i)
		ch.Input(r)
		rowConn[fmt.Sprintf("s%d", i)] = r
		colConn[fmt.Sprintf("s%d", i)] = fmt.Sprintf("c%d", i)
	}
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("c%d", i))
	}
	dec := DecoderN(n)
	rows := ch.Instance("row", dec, rowConn)
	cols := ch.Instance("col", dec, colConn)
	side := 1 << n
	for i := 0; i < side; i++ {
		ri := rows[fmt.Sprintf("d%d", i)]
		cells := make([]string, side)
		for j := 0; j < side; j++ {
			cj := cols[fmt.Sprintf("d%d", j)]
			cell := fmt.Sprintf("x%d_%d", i, j)
			if (i+j)%2 == 0 {
				ch.AND(cell, ri, cj)
			} else {
				ch.Gate(gates.NOR2, cell, ri, cj)
			}
			cells[j] = cell
		}
		out := fmt.Sprintf("q%d", i)
		ch.OR(out, cells...)
		ch.Output(out)
	}
	return ch.MustBuild()
}

// ALU returns a width-n ALU over the CP cell library: opcode
// op2..op0 selects 0 add, 1 sub (two's complement), 2 and, 3 or,
// 4 xor. The adder is one RippleCarryAdder instance (CP full-adder
// cells), the opcode is decoded by a DecoderN(3) instance, and the
// per-bit results are merged through AND/OR select cells. Inputs
// a0..a{n-1}, b0..b{n-1}, op0..op2; outputs r0..r{n-1}, cout.
func ALU(n int) *logic.Circuit {
	if n < 1 {
		n = 1
	}
	ch := NewChip(fmt.Sprintf("alu%d", n))
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		ch.Input(fmt.Sprintf("b%d", i))
	}
	ch.Input("op0", "op1", "op2")

	// Subtraction reuses the adder: a + (b ^ op0) + op0.
	addConn := map[string]string{"cin": "op0", "cout": "addc"}
	for i := 0; i < n; i++ {
		bx := fmt.Sprintf("bx%d", i)
		ch.Gate(gates.XOR2, bx, fmt.Sprintf("b%d", i), "op0")
		addConn[fmt.Sprintf("a%d", i)] = fmt.Sprintf("a%d", i)
		addConn[fmt.Sprintf("b%d", i)] = bx
		addConn[fmt.Sprintf("s%d", i)] = fmt.Sprintf("sum%d", i)
	}
	ch.Instance("add", RippleCarryAdder(n), addConn)

	d := ch.Instance("dec", DecoderN(3),
		map[string]string{"s0": "op0", "s1": "op1", "s2": "op2"})
	ch.OR("seladd", d["d0"], d["d1"])

	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		and, or, xor := fmt.Sprintf("and%d", i), fmt.Sprintf("or%d", i), fmt.Sprintf("xor%d", i)
		ch.AND(and, a, b)
		ch.OR(or, a, b)
		ch.Gate(gates.XOR2, xor, a, b)
		t0, t1, t2, t3 := fmt.Sprintf("t0_%d", i), fmt.Sprintf("t1_%d", i), fmt.Sprintf("t2_%d", i), fmt.Sprintf("t3_%d", i)
		ch.AND(t0, "seladd", fmt.Sprintf("sum%d", i))
		ch.AND(t1, d["d2"], and)
		ch.AND(t2, d["d3"], or)
		ch.AND(t3, d["d4"], xor)
		r := fmt.Sprintf("r%d", i)
		ch.OR(r, t0, t1, t2, t3)
		ch.Output(r)
	}
	ch.AND("cout", "seladd", "addc")
	ch.Output("cout")
	return ch.MustBuild()
}

// RandomLayered returns a deterministic layered random circuit: width
// primary inputs, depth layers of width gates each. A gate's fanins
// come mostly from the previous layer (locality) with occasional
// skip connections to any earlier net, so depth controls logic depth
// and width controls parallelism independently — the knobs the flat
// Random generator lacks.
func RandomLayered(seed int64, width, depth int) *logic.Circuit {
	if width < 3 {
		width = 3
	}
	if depth < 1 {
		depth = 1
	}
	rng := rand.New(rand.NewSource(seed))
	ch := NewChip(fmt.Sprintf("randl%d_w%dxd%d", seed, width, depth))
	prev := make([]string, width)
	for i := 0; i < width; i++ {
		in := fmt.Sprintf("x%d", i)
		ch.Input(in)
		prev[i] = in
	}
	all := append([]string(nil), prev...)
	kinds := []gates.Kind{
		gates.INV, gates.BUF, gates.NAND2, gates.NAND3, gates.NOR2, gates.NOR3,
		gates.XOR2, gates.XOR3, gates.MAJ3,
	}
	used := map[string]bool{}
	for l := 0; l < depth; l++ {
		layer := make([]string, width)
		for g := 0; g < width; g++ {
			kind := kinds[rng.Intn(len(kinds))]
			spec := gates.Get(kind)
			fanin := make([]string, spec.NIn)
			for p := range fanin {
				if rng.Intn(10) < 7 {
					fanin[p] = prev[rng.Intn(len(prev))]
				} else {
					fanin[p] = all[rng.Intn(len(all))]
				}
				used[fanin[p]] = true
			}
			out := fmt.Sprintf("l%d_%d", l, g)
			ch.Gate(kind, out, fanin...)
			layer[g] = out
		}
		prev = layer
		all = append(all, layer...)
	}
	// Outputs: every net driving nothing (at least the last layer's
	// unread gates; plus dead ends from earlier layers).
	n := 0
	for _, net := range all[width:] {
		if !used[net] {
			ch.Output(net)
			n++
		}
	}
	if n == 0 {
		ch.Output(prev[len(prev)-1])
	}
	return ch.MustBuild()
}
