package bench

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"cpsinw/internal/logic"
)

// The named-benchmark registry: the fixed Suite entries plus the
// parameterized corpus families, resolved lazily so a request for
// "mult50" builds a ~10k-gate circuit on demand instead of every
// Suite() caller paying for it.
//
// Family names (N, W, D, G decimal; SEED a decimal int64):
//
//	rca<N>              N-bit ripple-carry adder
//	parity<N>           N-input parity tree
//	mult<N>             N x N carry-save array multiplier (~4N^2 gates)
//	rcmult<N>           N x N ripple-carry array multiplier
//	alu<N>              width-N ALU (add/sub/and/or/xor + opcode decoder)
//	decoder<N>          balanced N-to-2^N decoder tree (~2^(N+1) gates)
//	crossbar<N>         2^N x 2^N decoded crossbar array (~3*4^N gates)
//	rand<SEED>x<G>      flat random DAG: 8 inputs, G gates
//	randl<SEED>_w<W>xd<D>  layered random circuit, W wide x D deep
//
// Fixed Suite names shadow the families (mult2/mult3 stay the flat
// legacy circuits the golden experiments pin), so cache keys and
// goldens are stable across the registry's introduction.

// maxGeneratedGates bounds what a single registry lookup will build;
// requests past it (e.g. decoder24 from an untrusted campaign request)
// are rejected, not attempted.
const maxGeneratedGates = 2_000_000

var familyRE = struct {
	rca, parity, mult, rcmult, alu, decoder, crossbar, rand, randl *regexp.Regexp
}{
	rca:      regexp.MustCompile(`^rca(\d+)$`),
	parity:   regexp.MustCompile(`^parity(\d+)$`),
	mult:     regexp.MustCompile(`^mult(\d+)$`),
	rcmult:   regexp.MustCompile(`^rcmult(\d+)$`),
	alu:      regexp.MustCompile(`^alu(\d+)$`),
	decoder:  regexp.MustCompile(`^decoder(\d+)$`),
	crossbar: regexp.MustCompile(`^crossbar(\d+)$`),
	rand:     regexp.MustCompile(`^rand(-?\d+)x(\d+)$`),
	randl:    regexp.MustCompile(`^randl(-?\d+)_w(\d+)xd(\d+)$`),
}

// Families describes the parameterized generator families for help
// text and error messages.
func Families() []string {
	return []string{
		"rca<N>", "parity<N>", "mult<N>", "rcmult<N>", "alu<N>",
		"decoder<N>", "crossbar<N>", "rand<SEED>x<GATES>", "randl<SEED>_w<W>xd<D>",
	}
}

// Names returns the fixed benchmark names, sorted.
func Names() []string {
	s := Suite()
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get resolves a benchmark name: fixed Suite entries first, then the
// parameterized families. Unknown names (and family parameters that
// would exceed maxGeneratedGates) return a descriptive error.
func Get(name string) (*logic.Circuit, error) {
	if c, ok := Suite()[name]; ok {
		return c, nil
	}
	if m, err := iscas(); err == nil {
		if c, ok := m[name]; ok {
			return c, nil
		}
	}
	bound := func(label string, gates int) error {
		if gates > maxGeneratedGates {
			return fmt.Errorf("benchmark %q would need ~%d gates (limit %d)", label, gates, maxGeneratedGates)
		}
		return nil
	}
	atoi := func(s string) int { n, _ := strconv.Atoi(s); return n }
	switch {
	case familyRE.rca.MatchString(name):
		n := atoi(familyRE.rca.FindStringSubmatch(name)[1])
		if err := bound(name, 2*n); err != nil {
			return nil, err
		}
		return RippleCarryAdder(n), nil
	case familyRE.parity.MatchString(name):
		n := atoi(familyRE.parity.FindStringSubmatch(name)[1])
		if err := bound(name, n); err != nil {
			return nil, err
		}
		return ParityTree(n), nil
	case familyRE.mult.MatchString(name):
		n := atoi(familyRE.mult.FindStringSubmatch(name)[1])
		if err := bound(name, 4*n*n); err != nil {
			return nil, err
		}
		return MultN(n), nil
	case familyRE.rcmult.MatchString(name):
		n := atoi(familyRE.rcmult.FindStringSubmatch(name)[1])
		if err := bound(name, 4*n*n); err != nil {
			return nil, err
		}
		return MultRC(n), nil
	case familyRE.alu.MatchString(name):
		n := atoi(familyRE.alu.FindStringSubmatch(name)[1])
		if err := bound(name, 30*n); err != nil {
			return nil, err
		}
		return ALU(n), nil
	case familyRE.decoder.MatchString(name):
		n := atoi(familyRE.decoder.FindStringSubmatch(name)[1])
		if err := bound(name, 4<<n); err != nil {
			return nil, err
		}
		return DecoderN(n), nil
	case familyRE.crossbar.MatchString(name):
		n := atoi(familyRE.crossbar.FindStringSubmatch(name)[1])
		est := maxGeneratedGates + 1 // huge n would overflow the shift
		if n <= 15 {
			est = 3 << (2 * n)
		}
		if err := bound(name, est); err != nil {
			return nil, err
		}
		return Crossbar(n), nil
	case familyRE.rand.MatchString(name):
		m := familyRE.rand.FindStringSubmatch(name)
		seed, _ := strconv.ParseInt(m[1], 10, 64)
		g := atoi(m[2])
		if err := bound(name, g); err != nil {
			return nil, err
		}
		return Random(seed, 8, g), nil
	case familyRE.randl.MatchString(name):
		m := familyRE.randl.FindStringSubmatch(name)
		seed, _ := strconv.ParseInt(m[1], 10, 64)
		w, d := atoi(m[2]), atoi(m[3])
		if w > 0 && d > maxGeneratedGates/w {
			return nil, fmt.Errorf("benchmark %q would need ~%d gates (limit %d)", name, w*d, maxGeneratedGates)
		}
		return RandomLayered(seed, w, d), nil
	}
	return nil, fmt.Errorf("unknown benchmark %q (built-ins: %s; iscas: %s; families: %s)",
		name, strings.Join(Names(), ", "), strings.Join(ISCASNames(), ", "), strings.Join(Families(), ", "))
}
