// Package bench builds the benchmark circuits of the reproduction's
// evaluation: the ISCAS-85 c17 kernel, ripple-carry adders and parity
// trees built from the native CP cells (XOR3/MAJ full adders — the
// workloads the paper's introduction motivates for controllable-polarity
// logic), a triple-modular-redundancy voter, an array multiplier, and a
// seeded random circuit generator for scaling studies.
package bench

import (
	"fmt"
	"math/rand"

	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// C17 returns the ISCAS-85 c17 benchmark (6 NAND2 gates).
func C17() *logic.Circuit {
	insts := []logic.GateInst{
		{Name: "g10", Kind: gates.NAND2, Fanin: []string{"i1", "i3"}, Output: "n10"},
		{Name: "g11", Kind: gates.NAND2, Fanin: []string{"i3", "i4"}, Output: "n11"},
		{Name: "g16", Kind: gates.NAND2, Fanin: []string{"i2", "n11"}, Output: "n16"},
		{Name: "g19", Kind: gates.NAND2, Fanin: []string{"n11", "i5"}, Output: "n19"},
		{Name: "g22", Kind: gates.NAND2, Fanin: []string{"n10", "n16"}, Output: "o22"},
		{Name: "g23", Kind: gates.NAND2, Fanin: []string{"n16", "n19"}, Output: "o23"},
	}
	c, err := logic.NewCircuit("c17",
		[]string{"i1", "i2", "i3", "i4", "i5"},
		[]string{"o22", "o23"}, insts)
	if err != nil {
		panic("bench: c17 construction failed: " + err.Error())
	}
	return c
}

// FullAdderCP returns a 1-bit full adder in native CP cells: sum = XOR3,
// carry = MAJ — two gates total, the canonical compactness argument for
// controllable-polarity logic.
func FullAdderCP() *logic.Circuit {
	insts := []logic.GateInst{
		{Name: "fa_sum", Kind: gates.XOR3, Fanin: []string{"a", "b", "cin"}, Output: "sum"},
		{Name: "fa_cout", Kind: gates.MAJ3, Fanin: []string{"a", "b", "cin"}, Output: "cout"},
	}
	c, err := logic.NewCircuit("fa_cp", []string{"a", "b", "cin"}, []string{"sum", "cout"}, insts)
	if err != nil {
		panic("bench: full adder construction failed: " + err.Error())
	}
	return c
}

// RippleCarryAdder returns an n-bit ripple-carry adder built from CP full
// adders (XOR3 + MAJ per bit). Inputs a0..a{n-1}, b0..b{n-1}, cin;
// outputs s0..s{n-1}, cout.
func RippleCarryAdder(n int) *logic.Circuit {
	if n < 1 {
		n = 1
	}
	var inputs, outputs []string
	var insts []logic.GateInst
	for i := 0; i < n; i++ {
		inputs = append(inputs, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		inputs = append(inputs, fmt.Sprintf("b%d", i))
	}
	inputs = append(inputs, "cin")
	carry := "cin"
	for i := 0; i < n; i++ {
		a, b := fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i)
		s := fmt.Sprintf("s%d", i)
		cNext := fmt.Sprintf("c%d", i+1)
		if i == n-1 {
			cNext = "cout"
		}
		insts = append(insts,
			logic.GateInst{Name: fmt.Sprintf("fa%d_s", i), Kind: gates.XOR3, Fanin: []string{a, b, carry}, Output: s},
			logic.GateInst{Name: fmt.Sprintf("fa%d_c", i), Kind: gates.MAJ3, Fanin: []string{a, b, carry}, Output: cNext},
		)
		outputs = append(outputs, s)
		carry = cNext
	}
	outputs = append(outputs, "cout")
	c, err := logic.NewCircuit(fmt.Sprintf("rca%d", n), inputs, outputs, insts)
	if err != nil {
		panic("bench: rca construction failed: " + err.Error())
	}
	return c
}

// ParityTree returns an n-input parity tree of XOR2/XOR3 gates, a
// DP-gate-dominated workload.
func ParityTree(n int) *logic.Circuit {
	if n < 2 {
		n = 2
	}
	var inputs []string
	for i := 0; i < n; i++ {
		inputs = append(inputs, fmt.Sprintf("x%d", i))
	}
	level := append([]string(nil), inputs...)
	var insts []logic.GateInst
	next := 0
	for len(level) > 1 {
		var reduced []string
		for i := 0; i < len(level); {
			remain := len(level) - i
			switch {
			case remain >= 3 && (remain != 4):
				out := fmt.Sprintf("p%d", next)
				insts = append(insts, logic.GateInst{
					Name: fmt.Sprintf("gx%d", next), Kind: gates.XOR3,
					Fanin: []string{level[i], level[i+1], level[i+2]}, Output: out,
				})
				reduced = append(reduced, out)
				next++
				i += 3
			case remain >= 2:
				out := fmt.Sprintf("p%d", next)
				insts = append(insts, logic.GateInst{
					Name: fmt.Sprintf("gx%d", next), Kind: gates.XOR2,
					Fanin: []string{level[i], level[i+1]}, Output: out,
				})
				reduced = append(reduced, out)
				next++
				i += 2
			default:
				reduced = append(reduced, level[i])
				i++
			}
		}
		level = reduced
	}
	c, err := logic.NewCircuit(fmt.Sprintf("parity%d", n), inputs, []string{level[0]}, insts)
	if err != nil {
		panic("bench: parity construction failed: " + err.Error())
	}
	return c
}

// TMRVoter returns a triple-modular-redundancy voter slice: three copies
// of a small function f(x, y) = NAND(x, y) voted with a MAJ gate.
func TMRVoter() *logic.Circuit {
	insts := []logic.GateInst{
		{Name: "m0", Kind: gates.NAND2, Fanin: []string{"x0", "y0"}, Output: "f0"},
		{Name: "m1", Kind: gates.NAND2, Fanin: []string{"x1", "y1"}, Output: "f1"},
		{Name: "m2", Kind: gates.NAND2, Fanin: []string{"x2", "y2"}, Output: "f2"},
		{Name: "vote", Kind: gates.MAJ3, Fanin: []string{"f0", "f1", "f2"}, Output: "v"},
	}
	c, err := logic.NewCircuit("tmr",
		[]string{"x0", "y0", "x1", "y1", "x2", "y2"}, []string{"v"}, insts)
	if err != nil {
		panic("bench: tmr construction failed: " + err.Error())
	}
	return c
}

// Multiplier returns an n x n array multiplier built from NAND-based
// partial products (AND = NAND+INV) and CP full adders.
func Multiplier(n int) *logic.Circuit {
	if n < 2 {
		n = 2
	}
	var inputs []string
	for i := 0; i < n; i++ {
		inputs = append(inputs, fmt.Sprintf("a%d", i))
	}
	for i := 0; i < n; i++ {
		inputs = append(inputs, fmt.Sprintf("b%d", i))
	}
	var insts []logic.GateInst
	// Partial products pp_i_j = a_i AND b_j.
	pp := make([][]string, n)
	for i := 0; i < n; i++ {
		pp[i] = make([]string, n)
		for j := 0; j < n; j++ {
			nd := fmt.Sprintf("nd%d_%d", i, j)
			out := fmt.Sprintf("pp%d_%d", i, j)
			insts = append(insts,
				logic.GateInst{Name: "g" + nd, Kind: gates.NAND2, Fanin: []string{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", j)}, Output: nd},
				logic.GateInst{Name: "g" + out, Kind: gates.INV, Fanin: []string{nd}, Output: out},
			)
			pp[i][j] = out
		}
	}
	// Column-wise carry-save reduction with CP full adders.
	cols := make([][]string, 2*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			cols[i+j] = append(cols[i+j], pp[i][j])
		}
	}
	var outputs []string
	aux := 0
	for col := 0; col < 2*n; col++ {
		for len(cols[col]) > 1 {
			if len(cols[col]) >= 3 {
				x, y, z := cols[col][0], cols[col][1], cols[col][2]
				cols[col] = cols[col][3:]
				s := fmt.Sprintf("cs%d", aux)
				cy := fmt.Sprintf("cc%d", aux)
				aux++
				insts = append(insts,
					logic.GateInst{Name: "g" + s, Kind: gates.XOR3, Fanin: []string{x, y, z}, Output: s},
					logic.GateInst{Name: "g" + cy, Kind: gates.MAJ3, Fanin: []string{x, y, z}, Output: cy},
				)
				cols[col] = append(cols[col], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			} else {
				x, y := cols[col][0], cols[col][1]
				cols[col] = cols[col][2:]
				s := fmt.Sprintf("hs%d", aux)
				cnd := fmt.Sprintf("hn%d", aux)
				cy := fmt.Sprintf("hc%d", aux)
				aux++
				insts = append(insts,
					logic.GateInst{Name: "g" + s, Kind: gates.XOR2, Fanin: []string{x, y}, Output: s},
					logic.GateInst{Name: "g" + cnd, Kind: gates.NAND2, Fanin: []string{x, y}, Output: cnd},
					logic.GateInst{Name: "g" + cy, Kind: gates.INV, Fanin: []string{cnd}, Output: cy},
				)
				cols[col] = append(cols[col], s)
				if col+1 < 2*n {
					cols[col+1] = append(cols[col+1], cy)
				}
			}
		}
		out := fmt.Sprintf("m%d", col)
		if len(cols[col]) == 1 {
			insts = append(insts, logic.GateInst{Name: "g" + out, Kind: gates.BUF, Fanin: []string{cols[col][0]}, Output: out})
		} else {
			// Empty column (can happen at the top bit): constant zero via
			// x AND NOT x is overkill; emit a buffered a0 XOR a0 instead.
			z := fmt.Sprintf("z%d", aux)
			aux++
			insts = append(insts,
				logic.GateInst{Name: "g" + z, Kind: gates.XOR2, Fanin: []string{"a0", "a0"}, Output: z},
				logic.GateInst{Name: "g" + out, Kind: gates.BUF, Fanin: []string{z}, Output: out},
			)
		}
		outputs = append(outputs, out)
	}
	c, err := logic.NewCircuit(fmt.Sprintf("mult%dx%d", n, n), inputs, outputs, insts)
	if err != nil {
		panic("bench: multiplier construction failed: " + err.Error())
	}
	return c
}

// Random returns a seeded random DAG circuit with the given number of
// inputs and gates, mixing SP and DP cells. Deterministic per seed.
func Random(seed int64, nIn, nGates int) *logic.Circuit {
	if nIn < 3 {
		nIn = 3
	}
	if nGates < 1 {
		nGates = 1
	}
	rng := rand.New(rand.NewSource(seed))
	var inputs []string
	for i := 0; i < nIn; i++ {
		inputs = append(inputs, fmt.Sprintf("in%d", i))
	}
	nets := append([]string(nil), inputs...)
	kinds := []gates.Kind{
		gates.INV, gates.BUF, gates.NAND2, gates.NAND3, gates.NOR2, gates.NOR3,
		gates.XOR2, gates.XOR3, gates.MAJ3,
	}
	var insts []logic.GateInst
	used := map[string]bool{}
	for g := 0; g < nGates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		spec := gates.Get(kind)
		fanin := make([]string, spec.NIn)
		for i := range fanin {
			fanin[i] = nets[rng.Intn(len(nets))]
			used[fanin[i]] = true
		}
		out := fmt.Sprintf("w%d", g)
		insts = append(insts, logic.GateInst{
			Name: fmt.Sprintf("g%d", g), Kind: kind, Fanin: fanin, Output: out,
		})
		nets = append(nets, out)
	}
	// Outputs: every net that drives nothing.
	var outputs []string
	for _, inst := range insts {
		if !used[inst.Output] {
			outputs = append(outputs, inst.Output)
		}
	}
	if len(outputs) == 0 {
		outputs = []string{insts[len(insts)-1].Output}
	}
	c, err := logic.NewCircuit(fmt.Sprintf("rand%d", seed), inputs, outputs, insts)
	if err != nil {
		panic("bench: random construction failed: " + err.Error())
	}
	return c
}

// Suite returns the named benchmark set used across the experiments.
func Suite() map[string]*logic.Circuit {
	return map[string]*logic.Circuit{
		"c17":      C17(),
		"fa_cp":    FullAdderCP(),
		"rca4":     RippleCarryAdder(4),
		"rca8":     RippleCarryAdder(8),
		"parity8":  ParityTree(8),
		"parity16": ParityTree(16),
		"tmr":      TMRVoter(),
		"mult2":    Multiplier(2),
		"mult3":    Multiplier(3),
		"rand42":   Random(42, 8, 30),
	}
}
