package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(ManagerConfig{Workers: 2, QueueDepth: 8, CacheSize: 8, JobTimeout: 30 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postCampaign(t *testing.T, ts *httptest.Server, req CampaignRequest) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func pollDone(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(25 * time.Second)
	for time.Now().Before(deadline) {
		var st JobStatus
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+id, &st); code != http.StatusOK {
			t.Fatalf("status poll: HTTP %d", code)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("campaign never finished")
	return JobStatus{}
}

// TestEndToEndC17PolarityCampaign drives the acceptance flow: submit a
// c17 polarity-fault campaign over HTTP, poll to completion, fetch the
// JSON report, check the coverage against the batch path, then submit
// the same circuit with different whitespace and observe a cache hit
// through /metrics.
func TestEndToEndC17PolarityCampaign(t *testing.T) {
	_, ts := newTestServer(t)

	req := CampaignRequest{
		Netlist: c17Bench,
		Faults: FaultConfig{
			StuckAt:   true,
			Polarity:  true,
			StuckOpen: true,
			StuckOn:   true,
			IDDQ:      true,
		},
		ATPG: true,
	}
	st, code := postCampaign(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if st.ID == "" || st.CacheHit {
		t.Fatalf("submit status = %+v", st)
	}

	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("campaign %s: %s (%s)", st.ID, final.State, final.Error)
	}

	var rep CampaignReport
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}

	// --- Compare against the batch path on the same circuit. ---
	c := parseBench(t, c17Bench)
	pats := BuildPatterns(c, 256, 1)
	sim := faultsim.New(c)
	if rep.Patterns != len(pats) {
		t.Errorf("patterns = %d, want %d (exhaustive)", rep.Patterns, len(pats))
	}
	if rep.Circuit.Gates != 6 || rep.Circuit.Inputs != 5 || rep.Circuit.Outputs != 2 {
		t.Errorf("circuit info = %+v", rep.Circuit)
	}

	saCov := faultsim.Summarise(sim.RunStuckAt(core.Universe(c, core.ClassicalOnly()), pats))
	if rep.StuckAt == nil || rep.StuckAt.Total != saCov.Total || rep.StuckAt.Detected != saCov.Detected {
		t.Errorf("stuck-at = %+v, batch says %d/%d", rep.StuckAt, saCov.Detected, saCov.Total)
	}

	trFaults := core.Universe(c, core.UniverseOptions{ChannelBreak: true, StuckOn: true, Polarity: true})
	trNo, err := sim.RunTransistor(trFaults, pats, false)
	if err != nil {
		t.Fatal(err)
	}
	trYes, err := sim.RunTransistor(trFaults, pats, true)
	if err != nil {
		t.Fatal(err)
	}
	covNo, covYes := faultsim.Summarise(trNo), faultsim.Summarise(trYes)
	if rep.Transistor == nil || rep.Transistor.Detected != covNo.Detected || rep.Transistor.Total != covNo.Total {
		t.Errorf("transistor = %+v, batch says %d/%d", rep.Transistor, covNo.Detected, covNo.Total)
	}
	if rep.TransistorIDDQ == nil || rep.TransistorIDDQ.Detected != covYes.Detected {
		t.Errorf("transistor+iddq = %+v, batch says %d/%d", rep.TransistorIDDQ, covYes.Detected, covYes.Total)
	}
	if rep.TransistorIDDQ.Percent <= rep.Transistor.Percent {
		t.Errorf("IDDQ did not improve coverage: %.1f%% vs %.1f%%",
			rep.TransistorIDDQ.Percent, rep.Transistor.Percent)
	}
	if rep.ATPG == nil || rep.ATPG.Coverage <= 0 {
		t.Errorf("atpg = %+v", rep.ATPG)
	}
	if len(rep.Tables) == 0 || len(rep.Tables[0].Rows) < 3 {
		t.Errorf("report tables missing: %+v", rep.Tables)
	}

	// --- Second, whitespace-different submission: a cache hit. ---
	req2 := req
	req2.Netlist = c17BenchMessy
	st2, code := postCampaign(t, ts, req2)
	if code != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 (immediate cache answer)", code)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("resubmit status = %+v, want a finished cache hit", st2)
	}
	if st2.Key != st.Key {
		t.Errorf("content address changed: %s vs %s", st2.Key, st.Key)
	}
	var rep2 CampaignReport
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st2.ID+"/report", &rep2); code != http.StatusOK {
		t.Fatalf("cached report: HTTP %d", code)
	}
	if rep2.StuckAt.Detected != rep.StuckAt.Detected || rep2.TransistorIDDQ.Percent != rep.TransistorIDDQ.Percent {
		t.Error("cached report differs from the original")
	}

	var metrics map[string]float64
	if code := getJSON(t, ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if metrics["cache_hits"] != 1 || metrics["cache_misses"] != 1 {
		t.Errorf("cache counters = %v hits / %v misses, want 1/1", metrics["cache_hits"], metrics["cache_misses"])
	}
	if metrics["jobs_submitted"] != 2 || metrics["jobs_completed"] != 1 {
		t.Errorf("job counters = %v submitted / %v completed, want 2/1", metrics["jobs_submitted"], metrics["jobs_completed"])
	}
	if metrics["cache_hit_rate"] != 0.5 {
		t.Errorf("cache_hit_rate = %v, want 0.5", metrics["cache_hit_rate"])
	}
}

func TestServerBenchmarkByName(t *testing.T) {
	_, ts := newTestServer(t)
	st, code := postCampaign(t, ts, CampaignRequest{
		Benchmark: "c17",
		Faults:    FaultConfig{Polarity: true, IDDQ: true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("campaign: %s (%s)", final.State, final.Error)
	}
	var rep CampaignReport
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	if rep.TransistorIDDQ == nil || rep.TransistorIDDQ.Detected == 0 {
		t.Errorf("polarity campaign detected nothing: %+v", rep.TransistorIDDQ)
	}
}

func TestServerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t)

	if code := getJSON(t, ts.URL+"/v1/campaigns/c-999999", nil); code != http.StatusNotFound {
		t.Errorf("unknown id status = HTTP %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/v1/campaigns/c-999999/report", nil); code != http.StatusNotFound {
		t.Errorf("unknown id report = HTTP %d, want 404", code)
	}

	if _, code := postCampaign(t, ts, CampaignRequest{Netlist: "bogus"}); code != http.StatusBadRequest {
		t.Errorf("bad submission = HTTP %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/v1/campaigns", "application/json", bytes.NewReader([]byte("{not json")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON = HTTP %d, want 400", resp.StatusCode)
	}

	var health map[string]interface{}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != http.StatusOK {
		t.Errorf("healthz = HTTP %d", code)
	}
	if health["status"] != "ok" {
		t.Errorf("healthz body = %v", health)
	}
}

func TestReportBeforeCompletionConflicts(t *testing.T) {
	release := make(chan struct{})
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		select {
		case <-release:
			return &CampaignReport{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	_, ts := newTestServer(t)

	st, code := postCampaign(t, ts, CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", nil); code != http.StatusConflict {
		t.Errorf("report while running = HTTP %d, want 409", code)
	}
	close(release)
	pollDone(t, ts, st.ID)
}
