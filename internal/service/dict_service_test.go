package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cpsinw/internal/dict"
	"cpsinw/internal/logic"
)

func newDictTestServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(ManagerConfig{
		Workers: 2, QueueDepth: 8, CacheSize: 8,
		JobTimeout: 30 * time.Second, DictDir: dir,
	})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func postDiagnose(t *testing.T, ts *httptest.Server, req DiagnoseRequest) (DiagnoseResponse, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/diagnose", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out DiagnoseResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return out, resp.StatusCode
}

// detectedEntry returns a stored entry with a non-empty signature.
func detectedEntry(t *testing.T, d *dict.Dictionary) *dict.Entry {
	t.Helper()
	for i := range d.Entries {
		if d.Entries[i].Detected() {
			return &d.Entries[i]
		}
	}
	t.Fatal("dictionary has no detected entries")
	return nil
}

// TestCampaignBuildsDictionary drives the tentpole acceptance path: a
// campaign on a server with a dictionary store persists a fault
// dictionary as a side effect of the simulation it already runs, the
// metadata surfaces in status/report/the dictionary endpoint, and
// /v1/diagnose answers from the stored artifact.
func TestCampaignBuildsDictionary(t *testing.T) {
	dir := t.TempDir()
	_, ts := newDictTestServer(t, dir)

	st, code := postCampaign(t, ts, CampaignRequest{
		Netlist: c17Bench,
		Faults: FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, StuckOn: true,
			IDDQ: true,
		},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("campaign: %s (%s)", final.State, final.Error)
	}

	// Metadata must be on the terminal job status...
	meta := final.Dictionary
	if meta == nil {
		t.Fatal("done status carries no dictionary metadata")
	}
	if meta.Key != final.Key {
		t.Errorf("dictionary key %q != campaign key %q", meta.Key, final.Key)
	}
	if meta.Entries == 0 || meta.Patterns == 0 || meta.CompressedBytes == 0 {
		t.Errorf("implausible dictionary metadata: %+v", meta)
	}
	if !meta.IDDQ {
		t.Error("IDDQ campaign produced a dictionary without a leak plane")
	}
	if meta.Detected == 0 || meta.Classes == 0 {
		t.Errorf("empty diagnosis resolution: %+v", meta)
	}

	// ...on the report...
	var rep CampaignReport
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
		t.Fatalf("report: HTTP %d", code)
	}
	if rep.Dictionary == nil || *rep.Dictionary != *meta {
		t.Errorf("report dictionary = %+v, want %+v", rep.Dictionary, meta)
	}

	// ...and on the dedicated endpoint.
	var ep DictionaryJSON
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/dictionary", &ep); code != http.StatusOK {
		t.Fatalf("dictionary endpoint: HTTP %d", code)
	}
	if ep != *meta {
		t.Errorf("dictionary endpoint = %+v, want %+v", ep, meta)
	}

	// The artifact is a real file under the configured directory whose
	// size matches the advertised compressed size.
	fi, err := os.Stat(filepath.Join(dir, meta.Key+dict.ArtifactExt))
	if err != nil {
		t.Fatalf("artifact missing on disk: %v", err)
	}
	if fi.Size() != meta.CompressedBytes {
		t.Errorf("artifact size %d != advertised %d", fi.Size(), meta.CompressedBytes)
	}

	// Replaying a stored fault's exact signature through /v1/diagnose
	// must rank its equivalence class first with an exact match.
	store, err := dict.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.Get(meta.Key)
	if err != nil {
		t.Fatal(err)
	}
	entry := detectedEntry(t, d)
	resp, code := postDiagnose(t, ts, DiagnoseRequest{
		CampaignID:      st.ID,
		FailingPatterns: entry.Out.Members(),
		LeakingPatterns: entry.Leak.Members(),
	})
	if code != http.StatusOK {
		t.Fatalf("diagnose: HTTP %d", code)
	}
	if resp.Key != meta.Key || resp.Patterns != meta.Patterns {
		t.Errorf("diagnose header = %+v, want key %s patterns %d", resp, meta.Key, meta.Patterns)
	}
	if len(resp.Candidates) == 0 {
		t.Fatal("diagnose returned no candidates for a stored signature")
	}
	if top := resp.Candidates[0]; !top.Exact || top.Class != entry.Class {
		t.Errorf("top candidate = %+v, want exact match in class %s", top, entry.Class)
	}

	// Addressing the same dictionary by content key must agree.
	byKey, code := postDiagnose(t, ts, DiagnoseRequest{
		Key:             meta.Key,
		FailingPatterns: entry.Out.Members(),
		LeakingPatterns: entry.Leak.Members(),
	})
	if code != http.StatusOK {
		t.Fatalf("diagnose by key: HTTP %d", code)
	}
	if len(byKey.Candidates) != len(resp.Candidates) || byKey.Candidates[0] != resp.Candidates[0] {
		t.Errorf("by-key candidates diverge: %+v vs %+v", byKey.Candidates, resp.Candidates)
	}

	// The dict counters made it to the JSON metrics snapshot.
	var mm map[string]interface{}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &mm); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if got := mm["dict_built"].(float64); got != 1 {
		t.Errorf("dict_built = %v, want 1", got)
	}
	if got := mm["dict_bytes"].(float64); int64(got) != meta.CompressedBytes {
		t.Errorf("dict_bytes = %v, want %d", got, meta.CompressedBytes)
	}
	if got := mm["dict_diagnoses"].(float64); got != 2 {
		t.Errorf("dict_diagnoses = %v, want 2", got)
	}
}

// TestDiagnoseServedAcrossRestart is the headline restart guarantee: a
// fresh server process over the same dictionary directory answers
// /v1/diagnose from the persisted artifact with zero re-simulation.
func TestDiagnoseServedAcrossRestart(t *testing.T) {
	dir := t.TempDir()

	// First "process": run the campaign and persist the dictionary.
	srv1 := NewServer(ManagerConfig{Workers: 1, QueueDepth: 4, CacheSize: 4, JobTimeout: 30 * time.Second, DictDir: dir})
	ts1 := httptest.NewServer(srv1.Handler())
	st, code := postCampaign(t, ts1, CampaignRequest{
		Netlist: c17Bench,
		Faults:  FaultConfig{StuckAt: true, StuckOpen: true, IDDQ: true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := pollDone(t, ts1, st.ID)
	if final.State != StateDone || final.Dictionary == nil {
		t.Fatalf("campaign: %s (%s), dict %v", final.State, final.Error, final.Dictionary)
	}
	key := final.Dictionary.Key
	ts1.Close()
	srv1.Close()

	// Pick a stored signature to replay, reading the artifact directly.
	store, err := dict.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	entry := detectedEntry(t, d)

	// Second "process": same directory, and a runner seam that fails
	// the test if any campaign executes — diagnosis must not simulate.
	withObservedRunner(t, func(context.Context, *logic.Circuit, CampaignRequest, *RunObserver) (*CampaignReport, error) {
		t.Error("diagnosis triggered a campaign run")
		return nil, errors.New("unexpected simulation")
	})
	_, ts2 := newDictTestServer(t, dir)

	resp, code := postDiagnose(t, ts2, DiagnoseRequest{
		Key:             key,
		FailingPatterns: entry.Out.Members(),
		LeakingPatterns: entry.Leak.Members(),
	})
	if code != http.StatusOK {
		t.Fatalf("diagnose after restart: HTTP %d", code)
	}
	if len(resp.Candidates) == 0 || !resp.Candidates[0].Exact || resp.Candidates[0].Class != entry.Class {
		t.Errorf("restart diagnosis candidates = %+v, want exact match in class %s", resp.Candidates, entry.Class)
	}
	if resp.Circuit != d.Meta.Circuit || resp.Patterns != d.Meta.Patterns {
		t.Errorf("restart diagnosis header = %+v, want %+v", resp, d.Meta)
	}
}

// TestDiagnoseValidation covers the failure surface of /v1/diagnose and
// the dictionary endpoint.
func TestDiagnoseValidation(t *testing.T) {
	// Store not configured: the whole diagnosis surface is 503.
	_, bare := newTestServer(t)
	if _, code := postDiagnose(t, bare, DiagnoseRequest{Key: strings.Repeat("a", 64), FailingPatterns: []int{0}}); code != http.StatusServiceUnavailable {
		t.Errorf("diagnose without store: HTTP %d, want 503", code)
	}

	dir := t.TempDir()
	_, ts := newDictTestServer(t, dir)
	st, code := postCampaign(t, ts, CampaignRequest{
		Netlist: c17Bench,
		Faults:  FaultConfig{StuckAt: true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	final := pollDone(t, ts, st.ID)
	if final.State != StateDone || final.Dictionary == nil {
		t.Fatalf("campaign: %s (%s), dict %v", final.State, final.Error, final.Dictionary)
	}
	nPat := final.Dictionary.Patterns

	cases := []struct {
		name string
		req  DiagnoseRequest
		want int
	}{
		{"neither key nor campaign", DiagnoseRequest{FailingPatterns: []int{0}}, http.StatusBadRequest},
		{"both key and campaign", DiagnoseRequest{Key: final.Key, CampaignID: st.ID, FailingPatterns: []int{0}}, http.StatusBadRequest},
		{"malformed key", DiagnoseRequest{Key: "../../etc/passwd", FailingPatterns: []int{0}}, http.StatusBadRequest},
		{"absent key", DiagnoseRequest{Key: strings.Repeat("0", 64), FailingPatterns: []int{0}}, http.StatusNotFound},
		{"unknown campaign", DiagnoseRequest{CampaignID: "nope", FailingPatterns: []int{0}}, http.StatusNotFound},
		{"empty observation", DiagnoseRequest{Key: final.Key}, http.StatusBadRequest},
		{"pattern out of range", DiagnoseRequest{Key: final.Key, FailingPatterns: []int{nPat}}, http.StatusBadRequest},
		{"negative pattern", DiagnoseRequest{Key: final.Key, FailingPatterns: []int{-1}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if _, code := postDiagnose(t, ts, tc.req); code != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, code, tc.want)
		}
	}

	// The dictionary endpoint 404s when the store was never configured.
	st2, code := postCampaign(t, bare, CampaignRequest{
		Netlist: c17Bench,
		Faults:  FaultConfig{StuckAt: true},
	})
	if code != http.StatusAccepted {
		t.Fatalf("bare submit: HTTP %d", code)
	}
	if got := pollDone(t, bare, st2.ID); got.Dictionary != nil {
		t.Errorf("store-less campaign grew dictionary metadata: %+v", got.Dictionary)
	}
	if code := getJSON(t, bare.URL+"/v1/campaigns/"+st2.ID+"/dictionary", nil); code != http.StatusNotFound {
		t.Errorf("store-less dictionary endpoint: HTTP %d, want 404", code)
	}
}
