package service

import (
	"net/http"
	"testing"
)

// TestCampaignEngineSelection runs the same benchmark campaign through
// all three fault-simulation engines over the wire: each must succeed,
// tag its report with the engine used, produce identical coverage (the
// engines are differentially proven bit-identical), land in distinct
// cache entries, and show up in the per-engine job counters.
func TestCampaignEngineSelection(t *testing.T) {
	_, ts := newTestServer(t)
	reports := map[string]*CampaignReport{}
	keys := map[string]string{}
	for _, engine := range []string{"compiled", "reference", "packed"} {
		st, code := postCampaign(t, ts, CampaignRequest{
			Benchmark: "fa_cp",
			Faults:    FaultConfig{StuckAt: true, Polarity: true, StuckOpen: true, Bridges: true, IDDQ: true},
			Engine:    engine,
		})
		if code != http.StatusAccepted {
			t.Fatalf("%s: HTTP %d", engine, code)
		}
		if done := pollDone(t, ts, st.ID); done.State != StateDone {
			t.Fatalf("%s: state %s (%s)", engine, done.State, done.Error)
		}
		keys[engine] = st.Key
		var rep CampaignReport
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
			t.Fatalf("%s report: HTTP %d", engine, code)
		}
		if rep.Engine != engine {
			t.Errorf("report engine = %q, want %q", rep.Engine, engine)
		}
		reports[engine] = &rep
	}
	if keys["compiled"] == keys["reference"] || keys["compiled"] == keys["packed"] || keys["reference"] == keys["packed"] {
		t.Errorf("engine missing from the cache key: %v", keys)
	}
	c := reports["compiled"]
	for _, other := range []string{"reference", "packed"} {
		r := reports[other]
		if c.StuckAt.Detected != r.StuckAt.Detected ||
			c.TransistorIDDQ.Detected != r.TransistorIDDQ.Detected ||
			c.TransistorIDDQ.Percent != r.TransistorIDDQ.Percent ||
			c.Bridges.Detected != r.Bridges.Detected ||
			c.Bridges.ByIDDQ != r.Bridges.ByIDDQ {
			t.Errorf("engines disagree: compiled %+v/%+v/%+v vs %s %+v/%+v/%+v",
				c.StuckAt, c.TransistorIDDQ, c.Bridges, other, r.StuckAt, r.TransistorIDDQ, r.Bridges)
		}
	}

	var metrics map[string]float64
	if code := getJSON(t, ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if metrics["jobs_engine_compiled"] < 1 || metrics["jobs_engine_reference"] < 1 || metrics["jobs_engine_packed"] < 1 {
		t.Errorf("engine job counters = %v compiled / %v reference / %v packed, want >= 1 each",
			metrics["jobs_engine_compiled"], metrics["jobs_engine_reference"], metrics["jobs_engine_packed"])
	}
	if metrics["faultsim_packed_fault_runs"] < 1 || metrics["faultsim_packed_bridge_runs"] < 1 {
		t.Errorf("packed faultsim counters missing: %v fault runs, %v bridge runs",
			metrics["faultsim_packed_fault_runs"], metrics["faultsim_packed_bridge_runs"])
	}
	// The engine counters are process-wide, so only sanity-check shape:
	// the compiled engine must have run faults and skipped gate evals.
	if metrics["faultsim_compiled_fault_runs"] < 1 || metrics["faultsim_gate_evals_skipped"] < 1 {
		t.Errorf("faultsim counters missing: %v runs, %v skipped",
			metrics["faultsim_compiled_fault_runs"], metrics["faultsim_gate_evals_skipped"])
	}
}

// TestCampaignEngineValidation rejects unknown engine names up front.
func TestCampaignEngineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	_, code := postCampaign(t, ts, CampaignRequest{
		Benchmark: "c17",
		Faults:    FaultConfig{StuckAt: true},
		Engine:    "warp-drive",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", code)
	}
}
