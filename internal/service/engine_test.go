package service

import (
	"net/http"
	"testing"
)

// TestCampaignEngineSelection runs the same benchmark campaign through
// all four fault-simulation engine selections over the wire: each must
// succeed, tag its report with the engine used, produce identical
// coverage (the engines are differentially proven bit-identical), land
// in distinct cache entries, and show up in the per-engine job counters.
func TestCampaignEngineSelection(t *testing.T) {
	_, ts := newTestServer(t)
	reports := map[string]*CampaignReport{}
	keys := map[string]string{}
	for _, engine := range []string{"compiled", "reference", "packed", "auto"} {
		st, code := postCampaign(t, ts, CampaignRequest{
			Benchmark: "fa_cp",
			Faults:    FaultConfig{StuckAt: true, Polarity: true, StuckOpen: true, Bridges: true, IDDQ: true},
			Engine:    engine,
		})
		if code != http.StatusAccepted {
			t.Fatalf("%s: HTTP %d", engine, code)
		}
		if done := pollDone(t, ts, st.ID); done.State != StateDone {
			t.Fatalf("%s: state %s (%s)", engine, done.State, done.Error)
		}
		keys[engine] = st.Key
		var rep CampaignReport
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
			t.Fatalf("%s report: HTTP %d", engine, code)
		}
		if rep.Engine != engine {
			t.Errorf("report engine = %q, want %q", rep.Engine, engine)
		}
		reports[engine] = &rep
	}
	seen := map[string]string{}
	for engine, key := range keys {
		if prev, dup := seen[key]; dup {
			t.Errorf("engines %s and %s share a cache key: %v", prev, engine, keys)
		}
		seen[key] = engine
	}
	// An auto campaign reports its per-class resolved choices; the
	// explicit engines leave them empty (the top-level field covers it).
	for _, cov := range []*CoverageJSON{reports["auto"].Transistor, reports["auto"].TransistorIDDQ, reports["auto"].Bridges} {
		if cov.Engine != "compiled" && cov.Engine != "packed" {
			t.Errorf("auto report class engine = %q, want compiled or packed", cov.Engine)
		}
	}
	if e := reports["packed"].Transistor.Engine; e != "" {
		t.Errorf("explicit-engine report class engine = %q, want empty", e)
	}
	c := reports["compiled"]
	for _, other := range []string{"reference", "packed", "auto"} {
		r := reports[other]
		if c.StuckAt.Detected != r.StuckAt.Detected ||
			c.TransistorIDDQ.Detected != r.TransistorIDDQ.Detected ||
			c.TransistorIDDQ.Percent != r.TransistorIDDQ.Percent ||
			c.Bridges.Detected != r.Bridges.Detected ||
			c.Bridges.ByIDDQ != r.Bridges.ByIDDQ {
			t.Errorf("engines disagree: compiled %+v/%+v/%+v vs %s %+v/%+v/%+v",
				c.StuckAt, c.TransistorIDDQ, c.Bridges, other, r.StuckAt, r.TransistorIDDQ, r.Bridges)
		}
	}

	var metrics map[string]float64
	if code := getJSON(t, ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if metrics["jobs_engine_compiled"] < 1 || metrics["jobs_engine_reference"] < 1 ||
		metrics["jobs_engine_packed"] < 1 || metrics["jobs_engine_auto"] < 1 {
		t.Errorf("engine job counters = %v compiled / %v reference / %v packed / %v auto, want >= 1 each",
			metrics["jobs_engine_compiled"], metrics["jobs_engine_reference"],
			metrics["jobs_engine_packed"], metrics["jobs_engine_auto"])
	}
	if metrics["faultsim_auto_chosen_compiled"]+metrics["faultsim_auto_chosen_packed"] < 1 {
		t.Errorf("auto chooser counters = %v compiled + %v packed, want >= 1 total",
			metrics["faultsim_auto_chosen_compiled"], metrics["faultsim_auto_chosen_packed"])
	}
	if metrics["faultsim_packed_fault_runs"] < 1 || metrics["faultsim_packed_bridge_runs"] < 1 {
		t.Errorf("packed faultsim counters missing: %v fault runs, %v bridge runs",
			metrics["faultsim_packed_fault_runs"], metrics["faultsim_packed_bridge_runs"])
	}
	// The engine counters are process-wide, so only sanity-check shape:
	// the compiled engine must have run faults and skipped gate evals.
	if metrics["faultsim_compiled_fault_runs"] < 1 || metrics["faultsim_gate_evals_skipped"] < 1 {
		t.Errorf("faultsim counters missing: %v runs, %v skipped",
			metrics["faultsim_compiled_fault_runs"], metrics["faultsim_gate_evals_skipped"])
	}
}

// TestCampaignEngineValidation rejects unknown engine names up front.
func TestCampaignEngineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	_, code := postCampaign(t, ts, CampaignRequest{
		Benchmark: "c17",
		Faults:    FaultConfig{StuckAt: true},
		Engine:    "warp-drive",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", code)
	}
}
