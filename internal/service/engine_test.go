package service

import (
	"net/http"
	"testing"
)

// TestCampaignEngineSelection runs the same benchmark campaign through
// both fault-simulation engines over the wire: both must succeed, tag
// their report with the engine used, produce identical coverage (the
// engines are differentially proven bit-identical), land in distinct
// cache entries, and show up in the per-engine job counters.
func TestCampaignEngineSelection(t *testing.T) {
	_, ts := newTestServer(t)
	reports := map[string]*CampaignReport{}
	keys := map[string]string{}
	for _, engine := range []string{"compiled", "reference"} {
		st, code := postCampaign(t, ts, CampaignRequest{
			Benchmark: "fa_cp",
			Faults:    FaultConfig{StuckAt: true, Polarity: true, StuckOpen: true, IDDQ: true},
			Engine:    engine,
		})
		if code != http.StatusAccepted {
			t.Fatalf("%s: HTTP %d", engine, code)
		}
		if done := pollDone(t, ts, st.ID); done.State != StateDone {
			t.Fatalf("%s: state %s (%s)", engine, done.State, done.Error)
		}
		keys[engine] = st.Key
		var rep CampaignReport
		if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/report", &rep); code != http.StatusOK {
			t.Fatalf("%s report: HTTP %d", engine, code)
		}
		if rep.Engine != engine {
			t.Errorf("report engine = %q, want %q", rep.Engine, engine)
		}
		reports[engine] = &rep
	}
	if keys["compiled"] == keys["reference"] {
		t.Errorf("engine missing from the cache key: both map to %s", keys["compiled"])
	}
	c, r := reports["compiled"], reports["reference"]
	if c.StuckAt.Detected != r.StuckAt.Detected ||
		c.TransistorIDDQ.Detected != r.TransistorIDDQ.Detected ||
		c.TransistorIDDQ.Percent != r.TransistorIDDQ.Percent {
		t.Errorf("engines disagree: compiled %+v/%+v vs reference %+v/%+v",
			c.StuckAt, c.TransistorIDDQ, r.StuckAt, r.TransistorIDDQ)
	}

	var metrics map[string]float64
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != http.StatusOK {
		t.Fatalf("metrics: HTTP %d", code)
	}
	if metrics["jobs_engine_compiled"] < 1 || metrics["jobs_engine_reference"] < 1 {
		t.Errorf("engine job counters = %v compiled / %v reference, want >= 1 each",
			metrics["jobs_engine_compiled"], metrics["jobs_engine_reference"])
	}
	// The engine counters are process-wide, so only sanity-check shape:
	// the compiled engine must have run faults and skipped gate evals.
	if metrics["faultsim_compiled_fault_runs"] < 1 || metrics["faultsim_gate_evals_skipped"] < 1 {
		t.Errorf("faultsim counters missing: %v runs, %v skipped",
			metrics["faultsim_compiled_fault_runs"], metrics["faultsim_gate_evals_skipped"])
	}
}

// TestCampaignEngineValidation rejects unknown engine names up front.
func TestCampaignEngineValidation(t *testing.T) {
	_, ts := newTestServer(t)
	_, code := postCampaign(t, ts, CampaignRequest{
		Benchmark: "c17",
		Faults:    FaultConfig{StuckAt: true},
		Engine:    "warp-drive",
	})
	if code != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400", code)
	}
}
