package service

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
	"sync"

	"cpsinw/internal/logic"
)

// CanonicalKey content-addresses a campaign: SHA-256 over the
// canonicalized netlist (parse + re-emit, so whitespace, comments and
// the submitted circuit name do not perturb the address) plus the
// normalized result-affecting config. Two semantically identical
// submissions therefore share one cache entry.
func CanonicalKey(c *logic.Circuit, req CampaignRequest) string {
	canon := *c
	canon.Name = "canonical"
	var b strings.Builder
	// WriteBench on a strings.Builder cannot fail.
	_ = logic.WriteBench(&b, &canon)
	b.WriteByte(0)

	// Only fields that change the result participate; Workers and
	// TimeoutMS tune execution, and the netlist text is replaced by its
	// canonical form above.
	cfg, _ := json.Marshal(struct {
		Faults   FaultConfig `json:"faults"`
		Patterns int         `json:"patterns"`
		Seed     int64       `json:"seed"`
		ATPG     bool        `json:"atpg"`
		// The engines are differentially proven result-identical, but
		// keying them apart keeps a cross-check of one engine against
		// the other's cached report a real re-simulation.
		Engine string `json:"engine"`
	}{req.Faults, req.Patterns, req.Seed, req.ATPG, req.Engine})
	b.Write(cfg)

	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Cache is a content-addressed LRU result cache with hit/miss
// accounting. All methods are safe for concurrent use.
type Cache struct {
	mu           sync.Mutex
	max          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses uint64
}

type cacheEntry struct {
	key    string
	report *CampaignReport
}

// NewCache builds a cache holding at most max reports (default 128).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 128
	}
	return &Cache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

// Get returns the cached report for the key, promoting it to most
// recently used, and records a hit or miss.
func (c *Cache) Get(key string) (*CampaignReport, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).report, true
}

// Put stores the report under the key, evicting the least recently used
// entry when full. Re-putting an existing key refreshes its recency.
func (c *Cache) Put(key string, r *CampaignReport) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).report = r
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, report: r})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

// Stats returns the hit/miss counters and current size.
func (c *Cache) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// Keys lists the cached keys from most to least recently used, for
// eviction-order inspection.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*cacheEntry).key)
	}
	return out
}
