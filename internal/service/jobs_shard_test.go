package service

import (
	"testing"

	"cpsinw/internal/resultstore"
)

var storeTestReq = CampaignRequest{
	Benchmark: "mult3",
	Faults:    FaultConfig{StuckAt: true, Polarity: true, IDDQ: true},
	Engine:    "packed",
	Shards:    4,
}

// TestManagerReportSurvivesRestart pins the durable half of the result
// store: a campaign computed by one manager is answered whole — no
// simulation, born done — by a fresh manager on the same directory.
func TestManagerReportSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(ManagerConfig{Workers: 2, ResultDir: dir})
	j1, err := m1.Submit(storeTestReq)
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitTerminal(t, j1)
	if st1.State != StateDone {
		t.Fatalf("first run finished %s: %s", st1.State, st1.Error)
	}
	rep1, _, _ := j1.Report()
	m1.Close()

	m2 := NewManager(ManagerConfig{Workers: 2, ResultDir: dir})
	defer m2.Close()
	if n := len(m2.Resumable()); n != 0 {
		t.Fatalf("finished campaign recovered as resumable (%d records)", n)
	}
	j2, err := m2.Submit(storeTestReq)
	if err != nil {
		t.Fatal(err)
	}
	st2 := j2.Status()
	if st2.State != StateDone || !st2.CacheHit {
		t.Fatalf("restarted manager: state %s cacheHit %t, want immediate done hit", st2.State, st2.CacheHit)
	}
	if got := m2.Metrics().StoreReportHits.Value(); got != 1 {
		t.Fatalf("resultstore report hits = %d, want 1", got)
	}
	rep2, _, _ := j2.Report()
	if rep1.StuckAt.Detected != rep2.StuckAt.Detected || rep1.Transistor.Detected != rep2.Transistor.Detected {
		t.Fatal("store-served report disagrees with the computed one")
	}
}

// TestManagerShardMetricsAndProgress checks the executed sharded
// campaign's observable surface: shard counters and the aggregated
// per-shard progress fields.
func TestManagerShardMetricsAndProgress(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 2, ResultDir: t.TempDir(), ProgressInterval: -1})
	defer m.Close()
	j, err := m.Submit(storeTestReq)
	if err != nil {
		t.Fatal(err)
	}
	ch, cancel := m.Subscribe(j)
	defer cancel()
	sawShards := false
	for st := range ch {
		if st.Progress != nil && st.Progress.Shards == 4 && st.Progress.ShardsDone > 0 {
			sawShards = true
		}
	}
	if st := waitTerminal(t, j); st.State != StateDone {
		t.Fatalf("campaign finished %s: %s", st.State, st.Error)
	}
	if !sawShards {
		t.Fatal("no progress frame carried shard aggregation (shards/shards_done)")
	}
	if got := m.Metrics().ShardScheduled.Value(); got != 4 {
		t.Fatalf("shards scheduled = %d, want 4", got)
	}
	if got := m.Metrics().ShardCacheHits.Value(); got != 0 {
		t.Fatalf("shard cache hits = %d, want 0 on a cold store", got)
	}

	// Resubmitting after the LRU is cleared exercises the store path.
	m2 := NewManager(ManagerConfig{Workers: 2, ResultDir: m.cfg.ResultDir})
	defer m2.Close()
	j2, err := m2.Submit(storeTestReq)
	if err != nil {
		t.Fatal(err)
	}
	if st := j2.Status(); st.State != StateDone {
		t.Fatalf("second manager state %s, want done from store", st.State)
	}
}

// TestManagerDrainParksQueuedAsResumable pins the graceful-drain and
// resume lifecycle: Drain parks never-started campaigns as durable
// resumable state, a fresh manager recovers them, and resuming runs
// them to completion (consuming the pending markers).
func TestManagerDrainParksQueuedAsResumable(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(ManagerConfig{Workers: 1, ResultDir: dir})
	reqs := []CampaignRequest{
		{Benchmark: "mult4", Faults: FaultConfig{StuckAt: true, Polarity: true, IDDQ: true}, Engine: "packed", Shards: 2},
		{Benchmark: "mult3", Faults: FaultConfig{StuckAt: true}, Shards: 2},
		{Benchmark: "mult3", Faults: FaultConfig{StuckAt: true, Bridges: true}, Shards: 2},
	}
	jobs := make([]*Job, len(reqs))
	for i, r := range reqs {
		j, err := m1.Submit(r)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = j
	}
	m1.Drain()

	done, resumable := 0, 0
	for _, j := range jobs {
		switch st := j.Status(); st.State {
		case StateDone:
			done++
		case StateResumable:
			resumable++
			if !m1.store.Has(resultstore.KindPending, j.Key) {
				t.Fatalf("resumable job %s has no pending marker", j.ID)
			}
		default:
			t.Fatalf("after drain job %s is %s, want done or resumable", j.ID, st.State)
		}
	}
	if done+resumable != len(jobs) || resumable == 0 {
		t.Fatalf("after drain: %d done, %d resumable of %d", done, resumable, len(jobs))
	}

	// Restart: the drained campaigns come back as resumable records.
	m2 := NewManager(ManagerConfig{Workers: 2, ResultDir: dir})
	defer m2.Close()
	recovered := m2.Resumable()
	if len(recovered) != resumable {
		t.Fatalf("recovered %d resumable campaigns, want %d", len(recovered), resumable)
	}
	for _, st := range recovered {
		nj, err := m2.Resume(st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if fin := waitTerminal(t, nj); fin.State != StateDone {
			t.Fatalf("resumed campaign %s finished %s: %s", nj.ID, fin.State, fin.Error)
		}
		if m2.store.Has(resultstore.KindPending, nj.Key) {
			t.Fatalf("pending marker for %s survived completion", nj.Key)
		}
	}
	if left := m2.Resumable(); len(left) != 0 {
		t.Fatalf("%d campaigns still listed resumable after resuming all", len(left))
	}
}

// TestManagerResumeRejectsNonResumable guards the resume endpoint's
// state machine.
func TestManagerResumeRejectsNonResumable(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, ResultDir: t.TempDir()})
	defer m.Close()
	j, err := m.Submit(CampaignRequest{Benchmark: "mult3", Faults: FaultConfig{StuckAt: true}})
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, j)
	if _, err := m.Resume(j.ID); err == nil {
		t.Fatal("resumed a done campaign")
	}
	if _, err := m.Resume("c-999999"); err == nil {
		t.Fatal("resumed a nonexistent campaign")
	}
}
