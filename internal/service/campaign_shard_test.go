package service

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"cpsinw/internal/dict"
	"cpsinw/internal/resultstore"
	"cpsinw/internal/shard"
)

// normalizeReport strips the only fields allowed to differ between a
// sharded and an unsharded run of the same campaign: wall-clock time
// and the dictionary artifact's compressed size (its payload embeds a
// creation timestamp; the signature rows themselves are compared
// separately, bit for bit).
func normalizeReport(t *testing.T, rep *CampaignReport) map[string]interface{} {
	t.Helper()
	cp := *rep
	cp.ElapsedMS = 0
	if cp.Dictionary != nil {
		d := *cp.Dictionary
		d.CompressedBytes = 0
		cp.Dictionary = &d
	}
	raw, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]interface{}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// runDifferential pins the sharded path bit-identical to the unsharded
// packed single-shot on one request, for every shard count in ks.
func runDifferential(t *testing.T, req CampaignRequest, ks []int) {
	t.Helper()
	norm, c, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalKey(c, norm)

	baseDict, err := dict.Open(filepath.Join(t.TempDir(), "dict-base"))
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunCampaignObserved(context.Background(), c, norm, &RunObserver{Dict: baseDict, DictKey: key})
	if err != nil {
		t.Fatalf("unsharded: %v", err)
	}
	baseJSON := normalizeReport(t, base)
	baseD, err := baseDict.Get(key)
	if err != nil {
		t.Fatalf("unsharded dictionary: %v", err)
	}

	for _, k := range ks {
		shDict, err := dict.Open(filepath.Join(t.TempDir(), "dict-sharded"))
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunCampaignSharded(context.Background(), c, norm,
			ShardedOptions{Key: key, Shards: k}, &RunObserver{Dict: shDict, DictKey: key})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if gotJSON := normalizeReport(t, got); !reflect.DeepEqual(gotJSON, baseJSON) {
			b1, _ := json.MarshalIndent(baseJSON, "", " ")
			b2, _ := json.MarshalIndent(gotJSON, "", " ")
			t.Fatalf("k=%d: sharded report differs from unsharded\nunsharded: %s\nsharded:   %s", k, b1, b2)
		}
		shD, err := shDict.Get(key)
		if err != nil {
			t.Fatalf("k=%d sharded dictionary: %v", k, err)
		}
		if len(shD.Entries) != len(baseD.Entries) {
			t.Fatalf("k=%d: %d dictionary entries, unsharded has %d", k, len(shD.Entries), len(baseD.Entries))
		}
		for i := range baseD.Entries {
			if !reflect.DeepEqual(shD.Entries[i], baseD.Entries[i]) {
				t.Fatalf("k=%d: dictionary row %d (%s) differs from unsharded run",
					k, i, baseD.Entries[i].Fault)
			}
		}
	}
}

// TestShardedMergeBitIdenticalProperty is the merge-determinism
// property test: K in {1,2,4,8} shards, full fault configuration with
// IDDQ, against the packed single-shot engine.
func TestShardedMergeBitIdenticalProperty(t *testing.T) {
	runDifferential(t, CampaignRequest{
		Benchmark: "mult3",
		Faults: FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, StuckOn: true,
			Bridges: true, IDDQ: true,
		},
		Engine: "packed",
	}, []int{1, 2, 4, 8})
}

// TestShardedMult16Differential pins the mult16 campaign (random
// patterns, auto engine, ATPG riding along) sharded vs unsharded.
func TestShardedMult16Differential(t *testing.T) {
	if testing.Short() {
		t.Skip("mult16 differential is a long test")
	}
	runDifferential(t, CampaignRequest{
		Benchmark: "mult16",
		Faults: FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, IDDQ: true,
		},
		Patterns: 48,
		Engine:   "packed",
	}, []int{4})
}

// TestShardedC432Differential pins the sharded path on the ISCAS-scale
// c432 reconstruction (36 inputs forces the random-pattern path, and
// the priority-chain topology exercises deep fault cones).
func TestShardedC432Differential(t *testing.T) {
	runDifferential(t, CampaignRequest{
		Benchmark: "c432",
		Faults: FaultConfig{
			StuckAt: true, Polarity: true, StuckOpen: true, StuckOn: true,
			Bridges: true, IDDQ: true,
		},
		Patterns: 64,
		Engine:   "packed",
	}, []int{3, 4})
}

// TestShardedStoreReuse pins the result store's caching contract: a
// second run of the same campaign serves every shard from the store,
// and removing one shard artifact re-simulates exactly that shard.
func TestShardedStoreReuse(t *testing.T) {
	req := CampaignRequest{
		Benchmark: "mult3",
		Faults:    FaultConfig{StuckAt: true, Polarity: true, IDDQ: true},
		Engine:    "packed",
	}
	norm, c, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	key := CanonicalKey(c, norm)
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	run := func(wantHits int64) *CampaignReport {
		t.Helper()
		var hits atomic.Int64 // OnCacheHit fires on scheduler goroutines
		rep, err := RunCampaignSharded(context.Background(), c, norm, ShardedOptions{
			Key: key, Shards: 4, Store: store,
			OnCacheHit: func(shard.SubJob) { hits.Add(1) },
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := hits.Load(); got != wantHits {
			t.Fatalf("shard cache hits = %d, want %d", got, wantHits)
		}
		return rep
	}

	first := run(0)
	second := run(4) // every shard served from the store
	if !reflect.DeepEqual(normalizeReport(t, first), normalizeReport(t, second)) {
		t.Fatal("store-served report differs from the simulated one")
	}

	// Partial reuse: drop one shard artifact; only it re-simulates.
	keys, err := store.Keys(resultstore.KindShard)
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 4 {
		t.Fatalf("store holds %d shard artifacts, want 4", len(keys))
	}
	if err := store.Delete(resultstore.KindShard, keys[2]); err != nil {
		t.Fatal(err)
	}
	third := run(3)
	if !reflect.DeepEqual(normalizeReport(t, first), normalizeReport(t, third)) {
		t.Fatal("partially reused report differs from the simulated one")
	}
}

// TestShardedRejectsUnkeyedStore guards the store against cross-
// campaign collisions: persistence requires a canonical campaign key.
func TestShardedRejectsUnkeyedStore(t *testing.T) {
	req := CampaignRequest{Benchmark: "mult3", Faults: FaultConfig{StuckAt: true}}
	norm, c, err := req.normalize()
	if err != nil {
		t.Fatal(err)
	}
	store, err := resultstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCampaignSharded(context.Background(), c, norm,
		ShardedOptions{Key: "not-a-key", Shards: 2, Store: store}, nil); err == nil {
		t.Fatal("sharded run accepted a store without a canonical key")
	}
}
