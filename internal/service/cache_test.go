package service

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cpsinw/internal/logic"
)

func TestCacheHitMissAccounting(t *testing.T) {
	c := NewCache(4)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put("a", &CampaignReport{Patterns: 1})
	if r, ok := c.Get("a"); !ok || r.Patterns != 1 {
		t.Fatalf("lost entry: ok=%v r=%+v", ok, r)
	}
	hits, misses, size := c.Stats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Errorf("stats = %d hits %d misses %d size, want 1/1/1", hits, misses, size)
	}
}

func TestCacheLRUEvictionOrder(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &CampaignReport{})
	c.Put("b", &CampaignReport{})
	// Touch "a": it becomes most recent, so "b" is the eviction victim.
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a missing")
	}
	c.Put("c", &CampaignReport{})

	if got, want := c.Keys(), []string{"c", "a"}; !reflect.DeepEqual(got, want) {
		t.Errorf("keys = %v, want %v", got, want)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a evicted despite being recently used")
	}
}

func TestCacheRePutRefreshes(t *testing.T) {
	c := NewCache(2)
	c.Put("a", &CampaignReport{Patterns: 1})
	c.Put("b", &CampaignReport{})
	c.Put("a", &CampaignReport{Patterns: 2}) // refresh, not duplicate
	c.Put("c", &CampaignReport{})            // evicts b, the true LRU

	if r, ok := c.Get("a"); !ok || r.Patterns != 2 {
		t.Errorf("a = %+v ok=%v, want refreshed entry", r, ok)
	}
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
}

const c17Bench = `# c17
INPUT(i1)
INPUT(i2)
INPUT(i3)
INPUT(i4)
INPUT(i5)
OUTPUT(o22)
OUTPUT(o23)
n10 = NAND(i1, i3)
n11 = NAND(i3, i4)
n16 = NAND(i2, n11)
n19 = NAND(n11, i5)
o22 = NAND(n10, n16)
o23 = NAND(n16, n19)
`

// c17BenchMessy is the same circuit with different whitespace, casing of
// keywords, extra comments and a different advertised name.
const c17BenchMessy = `# totally different name
# another comment
INPUT( i1 )
INPUT(i2)
INPUT(  i3)
INPUT(i4  )
INPUT(i5)
OUTPUT(o22)
OUTPUT(o23)

n10 = NAND( i1 ,  i3 )   # first gate
n11=NAND(i3,i4)
n16 =  NAND(i2, n11)
n19= NAND(n11 , i5)
o22 = NAND(n10, n16)
o23 = NAND(n16, n19)
`

func parseBench(t *testing.T, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseBench("campaign", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCanonicalKeyWhitespaceInsensitive(t *testing.T) {
	req := CampaignRequest{Faults: FaultConfig{Polarity: true, IDDQ: true}, Patterns: 256, Seed: 1}
	k1 := CanonicalKey(parseBench(t, c17Bench), req)
	k2 := CanonicalKey(parseBench(t, c17BenchMessy), req)
	if k1 != k2 {
		t.Errorf("whitespace-different netlists keyed differently:\n%s\n%s", k1, k2)
	}
}

func TestCanonicalKeySensitivity(t *testing.T) {
	c := parseBench(t, c17Bench)
	base := CampaignRequest{Faults: FaultConfig{Polarity: true}, Patterns: 256, Seed: 1}
	k := CanonicalKey(c, base)

	seed := base
	seed.Seed = 2
	if CanonicalKey(c, seed) == k {
		t.Error("seed change did not change the key")
	}
	cfg := base
	cfg.Faults.StuckOn = true
	if CanonicalKey(c, cfg) == k {
		t.Error("fault-config change did not change the key")
	}
	tuning := base
	tuning.Workers = 7
	tuning.TimeoutMS = 12345
	if CanonicalKey(c, tuning) != k {
		t.Error("execution tuning (workers/timeout) perturbed the key")
	}
}

func TestCanonicalKeySharedAcrossSubmissions(t *testing.T) {
	// End-to-end at the cache level: simulate first submission storing,
	// second (messy) submission hitting.
	cache := NewCache(8)
	req := CampaignRequest{Faults: FaultConfig{StuckAt: true}, Patterns: 256, Seed: 1}
	cache.Put(CanonicalKey(parseBench(t, c17Bench), req), &CampaignReport{Patterns: 32})
	if _, ok := cache.Get(CanonicalKey(parseBench(t, c17BenchMessy), req)); !ok {
		t.Error("semantically identical submission missed the cache")
	}
	hits, misses, _ := cache.Stats()
	if hits != 1 || misses != 0 {
		t.Errorf("stats = %d hits %d misses, want 1/0", hits, misses)
	}
}

func TestNormalizeExhaustiveDropsPatternBudget(t *testing.T) {
	// c17 has 5 inputs: always simulated exhaustively, so the pattern
	// budget and seed must not perturb the content address.
	a := CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}, Patterns: 64, Seed: 3}
	b := CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}, Patterns: 512, Seed: 9}
	na, ca, err := a.normalize()
	if err != nil {
		t.Fatal(err)
	}
	nb, cb, err := b.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if na.Patterns != 0 || na.Seed != 0 {
		t.Errorf("normalized budget = %d/%d, want 0/0 for exhaustive circuits", na.Patterns, na.Seed)
	}
	if CanonicalKey(ca, na) != CanonicalKey(cb, nb) {
		t.Error("pattern budget perturbed the key of an exhaustively simulated circuit")
	}

	// A 13-input circuit is random-pattern simulated: budget must stay.
	var wide strings.Builder
	for i := 0; i < 13; i++ {
		fmt.Fprintf(&wide, "INPUT(a%d)\n", i)
	}
	wide.WriteString("OUTPUT(y)\ny = NAND(a0, a1)\n")
	w := CampaignRequest{Netlist: wide.String(), Faults: FaultConfig{StuckAt: true}, Patterns: 64, Seed: 3}
	nw, _, err := w.normalize()
	if err != nil {
		t.Fatal(err)
	}
	if nw.Patterns != 64 || nw.Seed != 3 {
		t.Errorf("normalized budget = %d/%d, want 64/3 for random-pattern circuits", nw.Patterns, nw.Seed)
	}
}

func TestManagerPrunesFinishedJobs(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1, MaxJobs: 3})
	defer m.Close()

	var last *Job
	cfgs := []FaultConfig{{StuckAt: true}, {Polarity: true}, {StuckOn: true}, {StuckOpen: true}, {Bridges: true}}
	ids := make([]string, 0, len(cfgs))
	for _, cfg := range cfgs {
		job, err := m.Submit(CampaignRequest{Netlist: c17Bench, Faults: cfg})
		if err != nil {
			t.Fatal(err)
		}
		waitTerminal(t, job)
		ids = append(ids, job.ID)
		last = job
	}
	if _, ok := m.Get(ids[0]); ok {
		t.Error("oldest finished job survived pruning past MaxJobs")
	}
	if _, ok := m.Get(last.ID); !ok {
		t.Error("newest job pruned")
	}
}
