// Package service exposes the reproduction's fault campaigns as a
// long-lived HTTP/JSON service: a bounded job queue feeds a worker pool
// that drives the faultsim/atpg engines under per-job deadlines, and a
// content-addressed LRU cache serves resubmissions of previously
// evaluated (netlist, fault-model) pairs without re-simulation.
package service

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"cpsinw/internal/bench"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

// FaultConfig selects the fault classes a campaign simulates, mirroring
// core.UniverseOptions over the wire.
type FaultConfig struct {
	StuckAt      bool `json:"stuck_at"`                // classical line SA0/SA1
	Polarity     bool `json:"polarity"`                // the paper's SA-n / SA-p polarity faults
	StuckOpen    bool `json:"stuck_open"`              // channel breaks (nanowire opens)
	StuckOn      bool `json:"stuck_on"`                // always-conducting transistors
	Bridges      bool `json:"bridges"`                 // inter-net bridging faults
	BridgeWindow int  `json:"bridge_window,omitempty"` // neighbour window for bridge extraction (default 2)
	IDDQ         bool `json:"iddq"`                    // add quiescent-current observation
}

// Any reports whether at least one class is enabled.
func (f FaultConfig) Any() bool {
	return f.StuckAt || f.Polarity || f.StuckOpen || f.StuckOn || f.Bridges
}

// CampaignRequest is the POST /v1/campaigns body. Exactly one of Netlist
// (.bench source) or Benchmark (a bench.Suite name) selects the circuit.
type CampaignRequest struct {
	Netlist   string      `json:"netlist,omitempty"`
	Benchmark string      `json:"benchmark,omitempty"`
	Faults    FaultConfig `json:"faults"`
	// Patterns is the random-pattern budget; circuits with <= 12 inputs
	// are always simulated exhaustively (default 256).
	Patterns int   `json:"patterns,omitempty"`
	Seed     int64 `json:"seed,omitempty"` // random pattern seed (default 1)
	ATPG     bool  `json:"atpg,omitempty"` // also run the test-generation campaign
	// Engine selects the fault-simulation engine: "compiled" (default;
	// ternary LUTs + cone-restricted propagation), "packed" (bit-parallel
	// PPSFP: N x 64 ternary lanes per block), "reference" (the serial
	// switch-level oracle) or "auto" (a per-campaign-stage choice between
	// compiled and packed from the circuit/fault/pattern sizes; the
	// resolved choice is surfaced per fault class in the report and on
	// the stage spans). The engines are differentially tested to return
	// identical results, so the choice only affects speed — but it is
	// kept in the cache key so a cross-check of one engine against
	// another's cached report is always a real re-simulation.
	Engine string `json:"engine,omitempty"`
	// Workers and TimeoutMS tune execution without affecting results, so
	// they are excluded from the cache key.
	Workers   int   `json:"workers,omitempty"`
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Shards splits the campaign's fault lists into independently
	// scheduled, independently cached sub-jobs whose merged results are
	// bit-identical to the unsharded run: 0 auto-sizes from the circuit
	// gate count and fault population, 1 forces single-shot. Like
	// Workers, sharding cannot affect results, so it is excluded from
	// the cache key — a sharded and an unsharded submission of the same
	// campaign share one content address (and one stored report).
	Shards int `json:"shards,omitempty"`
}

// Normalize applies defaults, validates the request and resolves the
// circuit, returning the canonical form used for content addressing.
// Exported for CLI front-ends that must derive the same artifact keys
// as the service (CanonicalKey over the normalized request).
func (r CampaignRequest) Normalize() (CampaignRequest, *logic.Circuit, error) {
	return r.normalize()
}

// normalize applies defaults and validates the request, resolving the
// circuit. The returned request is the canonical form used for cache
// keying.
func (r CampaignRequest) normalize() (CampaignRequest, *logic.Circuit, error) {
	if (r.Netlist == "") == (r.Benchmark == "") {
		return r, nil, errors.New("exactly one of netlist or benchmark is required")
	}
	if !r.Faults.Any() {
		return r, nil, errors.New("at least one fault class must be enabled")
	}
	if r.Patterns <= 0 {
		r.Patterns = DefaultPatternBudget
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Faults.BridgeWindow <= 0 {
		r.Faults.BridgeWindow = 2
	}
	if r.Shards < 0 {
		r.Shards = 0 // auto
	}
	if !r.Faults.Bridges {
		r.Faults.BridgeWindow = 0 // irrelevant: keep the cache key stable
	}
	eng, err := faultsim.ParseEngine(r.Engine)
	if err != nil {
		return r, nil, err
	}
	r.Engine = eng.String() // canonical name for the cache key
	var c *logic.Circuit
	if r.Benchmark != "" {
		var err error
		c, err = bench.Get(r.Benchmark)
		if err != nil {
			return r, nil, err
		}
	} else {
		var err error
		c, err = logic.ParseBench("campaign", strings.NewReader(r.Netlist))
		if err != nil {
			return r, nil, fmt.Errorf("bad netlist: %w", err)
		}
	}
	if len(c.Inputs) <= exhaustiveInputLimit {
		// The circuit is simulated exhaustively: the random-pattern
		// budget and seed cannot affect the result, so zero them for a
		// stable content address.
		r.Patterns, r.Seed = 0, 0
	}
	return r, c, nil
}

// CircuitInfo summarises the campaign's circuit in the report.
type CircuitInfo struct {
	Name    string `json:"name"`
	Inputs  int    `json:"inputs"`
	Outputs int    `json:"outputs"`
	Gates   int    `json:"gates"`
	DPGates int    `json:"dp_gates"`
}

// CoverageJSON is the wire form of faultsim.Coverage. Engine is only
// set when the campaign ran with Engine "auto": it names the engine the
// chooser resolved this fault class to.
type CoverageJSON struct {
	Engine       string   `json:"engine,omitempty"`
	Total        int      `json:"total"`
	Detected     int      `json:"detected"`
	ByOutput     int      `json:"by_output,omitempty"`
	ByIDDQ       int      `json:"by_iddq,omitempty"`
	ByTwoPattern int      `json:"by_two_pattern,omitempty"`
	Percent      float64  `json:"percent"`
	Undetected   []string `json:"undetected,omitempty"`
}

// ATPGJSON is the wire form of atpg.CampaignResult.
type ATPGJSON struct {
	StuckAtTargeted  int     `json:"stuck_at_targeted"`
	StuckAtCovered   int     `json:"stuck_at_covered"`
	PolarityTargeted int     `json:"polarity_targeted"`
	PolarityCovered  int     `json:"polarity_covered"`
	CBSPTargeted     int     `json:"cb_sp_targeted"`
	CBSPCovered      int     `json:"cb_sp_covered"`
	CBDPTargeted     int     `json:"cb_dp_targeted"`
	CBDPCovered      int     `json:"cb_dp_covered"`
	Coverage         float64 `json:"coverage"`
	TotalVectors     int     `json:"total_vectors"`
	Untestable       int     `json:"untestable"`
}

// DictionaryJSON is the fault-dictionary artifact metadata carried in
// CampaignReport and JobStatus and served by GET
// /v1/campaigns/{id}/dictionary. The artifact itself lives in the
// manager's dictionary store under Key and answers POST /v1/diagnose
// after any number of process restarts.
type DictionaryJSON struct {
	Key                 string `json:"key"`      // content address, shared with the campaign cache key
	Entries             int    `json:"entries"`  // faults with stored signatures
	Patterns            int    `json:"patterns"` // signature width
	IDDQ                bool   `json:"iddq"`     // leak plane populated
	CompressedBytes     int64  `json:"compressed_bytes"`
	Detected            int    `json:"detected"`
	Classes             int    `json:"classes"`
	UniquelyDiagnosable int    `json:"uniquely_diagnosable"`
}

// DiagnoseRequest is the POST /v1/diagnose body. Exactly one of Key (a
// dictionary artifact's content address) or CampaignID (a convenience:
// resolved to that job's key) selects the dictionary. FailingPatterns
// and LeakingPatterns are the observed tester response as pattern
// indices into the campaign's pattern set.
type DiagnoseRequest struct {
	Key             string `json:"key,omitempty"`
	CampaignID      string `json:"campaign_id,omitempty"`
	FailingPatterns []int  `json:"failing_patterns"`
	LeakingPatterns []int  `json:"leaking_patterns,omitempty"`
	TopK            int    `json:"top_k,omitempty"` // default 5
}

// DiagnoseResponse ranks the dictionary faults against the observation.
// The answer comes entirely from the stored dictionary — no simulation
// runs, so it works after any number of process restarts.
type DiagnoseResponse struct {
	Key        string           `json:"key"`
	Circuit    string           `json:"circuit"`
	Patterns   int              `json:"patterns"`
	IDDQ       bool             `json:"iddq"`
	Candidates []dict.Candidate `json:"candidates"`
}

// CampaignReport is the GET /v1/campaigns/{id}/report body: structured
// coverage per fault class plus the same report.Table set the CLI tools
// render, marshalled through internal/report's JSON form.
type CampaignReport struct {
	Circuit        CircuitInfo     `json:"circuit"`
	Patterns       int             `json:"patterns"`
	Engine         string          `json:"engine,omitempty"` // fault-simulation engine used
	StuckAt        *CoverageJSON   `json:"stuck_at,omitempty"`
	Transistor     *CoverageJSON   `json:"transistor,omitempty"`      // voltage observation only
	TransistorIDDQ *CoverageJSON   `json:"transistor_iddq,omitempty"` // voltage + IDDQ
	Bridges        *CoverageJSON   `json:"bridges,omitempty"`
	ATPG           *ATPGJSON       `json:"atpg,omitempty"`
	Dictionary     *DictionaryJSON `json:"dictionary,omitempty"`
	Tables         []*report.Table `json:"tables"`
	ElapsedMS      int64           `json:"elapsed_ms"`
}

// JobState is the lifecycle of one campaign job.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	StateDone    JobState = "done"
	StateFailed  JobState = "failed"
	// StateResumable marks a campaign that was persisted to the result
	// store but never finished: it was queued or draining when the
	// service stopped. The job record is terminal (this process will not
	// run it on its own), but the stored request survives restarts —
	// POST /v1/campaigns/{id}/resume resubmits it, and completed shards
	// already in the result store are reused, not re-simulated.
	StateResumable JobState = "resumable"
	StateCanceled  JobState = "canceled"
)

// Terminal reports whether the state is final for this job record
// (resumable campaigns continue under a new job ID via resume).
func (s JobState) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled || s == StateResumable
}

// JobProgress is a live snapshot of a running campaign stage, carried
// in JobStatus and streamed over /v1/campaigns/{id}/events. Done/Total
// count the stage's work units (faults, or patterns for the chunked
// stuck-at sweep); Faults is the stage's targeted fault universe (the
// coverage denominator); GateEvals counts engine-native gate
// evaluations, so rates compare within an engine, not across engines.
type JobProgress struct {
	Stage      string  `json:"stage"`
	Class      string  `json:"class,omitempty"` // ATPG fault class
	Done       int     `json:"done"`
	Total      int     `json:"total"`
	Detected   int     `json:"detected"`
	Dropped    int     `json:"dropped,omitempty"`
	Untestable int     `json:"untestable,omitempty"` // ATPG only
	Vectors    int     `json:"vectors,omitempty"`    // ATPG only
	Faults     int     `json:"faults,omitempty"`
	GateEvals  uint64  `json:"gate_evals,omitempty"`
	Coverage   float64 `json:"coverage_percent"`
	ETASeconds float64 `json:"eta_seconds,omitempty"`
	// Sharded campaigns aggregate per-shard progress: Shards is the
	// plan size, ShardsDone the sub-jobs finished (cache-served shards
	// count immediately). Zero on unsharded campaigns.
	Shards     int `json:"shards,omitempty"`
	ShardsDone int `json:"shards_done,omitempty"`
}

// JobStatus is the GET /v1/campaigns/{id} body (and the SSE frame).
// Dictionary is set once the job is done and a fault-dictionary
// artifact was persisted for it.
type JobStatus struct {
	ID         string          `json:"id"`
	State      JobState        `json:"state"`
	CacheHit   bool            `json:"cache_hit"`
	Key        string          `json:"key"` // content address of (netlist, config)
	Error      string          `json:"error,omitempty"`
	Submitted  string          `json:"submitted,omitempty"`
	Started    string          `json:"started,omitempty"`
	Finished   string          `json:"finished,omitempty"`
	Progress   *JobProgress    `json:"progress,omitempty"`
	Dictionary *DictionaryJSON `json:"dictionary,omitempty"`
}

func rfc3339(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
