package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cpsinw/internal/dict"
	"cpsinw/internal/logic"
	"cpsinw/internal/obs"
	"cpsinw/internal/resultstore"
	"cpsinw/internal/shard"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot
// accept another job; clients should back off and retry.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close: the instance is shutting
// down and clients should retry elsewhere.
var ErrClosed = errors.New("service: manager closed")

// runCampaign is the worker's execution function, a seam for tests that
// need deterministic blocking, cancellation or synthetic progress.
var runCampaign = RunCampaignObserved

// subscriberBuffer is the per-subscriber event channel depth; a slow
// consumer drops intermediate frames (each frame is a full snapshot)
// and always receives the terminal state via channel close.
const subscriberBuffer = 64

// Job is one campaign submission moving through the queue.
type Job struct {
	ID  string
	Key string

	mu       sync.Mutex
	state    JobState
	cacheHit bool
	err      string
	submitted, started,
	finished time.Time
	report *CampaignReport

	// Live observability: the latest progress snapshot, the SSE
	// subscriber channels, and the broadcast throttle state.
	progress   *JobProgress
	subs       []chan JobStatus
	lastEmit   time.Time
	stageKey   string
	stageStart time.Time

	// parse timing from Submit, recorded into the trace by run.
	parseStart, parseEnd time.Time

	circuit *logic.Circuit
	req     CampaignRequest
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() JobStatus {
	st := JobStatus{
		ID:        j.ID,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Key:       j.Key,
		Error:     j.err,
		Submitted: rfc3339(j.submitted),
		Started:   rfc3339(j.started),
		Finished:  rfc3339(j.finished),
		Progress:  j.progress,
	}
	if j.report != nil {
		st.Dictionary = j.report.Dictionary
	}
	return st
}

// Report returns the result and whether the job finished successfully.
func (j *Job) Report() (*CampaignReport, JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.state, j.err
}

// broadcastLocked delivers one snapshot to every subscriber without
// blocking: a full consumer misses this frame (every frame is a
// self-contained snapshot) and learns the terminal state from the
// channel close. Callers hold j.mu.
func (j *Job) broadcastLocked(st JobStatus) {
	for _, ch := range j.subs {
		select {
		case ch <- st:
		default:
		}
	}
}

// closeSubsLocked ends every subscription; buffered frames still drain
// to the consumers before they observe the close. Callers hold j.mu.
func (j *Job) closeSubsLocked() {
	for _, ch := range j.subs {
		close(ch)
	}
	j.subs = nil
}

// ManagerConfig tunes the job manager.
type ManagerConfig struct {
	Workers    int           // worker pool size (default GOMAXPROCS)
	QueueDepth int           // bounded submission queue (default 64)
	CacheSize  int           // LRU result cache entries (default 128)
	MaxJobs    int           // retained job records; oldest finished are pruned (default 4096)
	JobTimeout time.Duration // per-job deadline (default 60s)

	// DictDir, when set, enables the persistent fault-dictionary store:
	// campaigns harvest per-fault signatures during simulation and
	// persist one content-addressed artifact per campaign key there,
	// served by /v1/campaigns/{id}/dictionary and /v1/diagnose across
	// process restarts. Empty disables dictionary capture entirely.
	DictDir string

	// ResultDir, when set, enables the durable content-addressed result
	// store: campaigns run sharded, each sub-job and each merged report
	// persisting under its content address, so repeat campaigns — and
	// the already-computed shards of interrupted ones — are answered
	// without re-simulation across process restarts. Campaigns that
	// were accepted but unfinished when the process stopped surface as
	// resumable jobs on the next start. Empty disables persistence (and
	// sharding, unless a request asks for shards explicitly).
	ResultDir string
	// ShardRetries re-attempts a failed shard before quarantining it
	// (default 1; negative disables retry).
	ShardRetries int

	// Logger receives structured job lifecycle lines (default: discard).
	Logger *obs.Logger
	// ProgressInterval throttles progress broadcasts per job: at most
	// one frame per interval, plus every stage-completing frame
	// (default 100ms; negative disables throttling).
	ProgressInterval time.Duration
	// MaxTraces bounds the retained span trees (default 256).
	MaxTraces int
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	if c.Logger == nil {
		c.Logger = obs.Nop()
	}
	if c.ProgressInterval == 0 {
		c.ProgressInterval = 100 * time.Millisecond
	}
	if c.ShardRetries == 0 {
		c.ShardRetries = 1
	}
	if c.ShardRetries < 0 {
		c.ShardRetries = 0
	}
	return c
}

// Manager owns the queue, the worker pool, the result cache and the
// observability surfaces (metrics registry, span tracer, logger).
type Manager struct {
	cfg     ManagerConfig
	cache   *Cache
	metrics *Metrics
	reg     *obs.Registry
	tracer  *obs.Tracer
	log     *obs.Logger
	dict    *dict.Store        // nil unless DictDir is configured
	store   *resultstore.Store // nil unless ResultDir is configured

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup
	// drain, when closed, tells shard schedulers to stop starting new
	// sub-jobs and workers to park still-queued jobs as resumable.
	drain chan struct{}

	subscribers atomic.Int64 // connected SSE event subscribers

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs, oldest first, for pruning
	seq      int
	closed   bool
}

// NewManager starts the worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	reg := obs.NewRegistry()
	m := &Manager{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheSize),
		metrics: NewMetrics(reg),
		reg:     reg,
		tracer:  obs.NewTracer(cfg.MaxTraces),
		log:     cfg.Logger,
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		drain:   make(chan struct{}),
		jobs:    map[string]*Job{},
	}
	if cfg.DictDir != "" {
		store, err := dict.Open(cfg.DictDir)
		if err != nil {
			// A broken dictionary directory must not take the campaign
			// service down: run without persistence and say so loudly.
			m.log.Warn("dictionary store disabled", "dir", cfg.DictDir, "error", err.Error())
		} else {
			m.dict = store
		}
	}
	if cfg.ResultDir != "" {
		store, err := resultstore.Open(cfg.ResultDir)
		if err != nil {
			// Same posture as the dictionary store: a broken directory
			// degrades to no persistence, not a dead service.
			m.log.Warn("result store disabled", "dir", cfg.ResultDir, "error", err.Error())
		} else {
			m.store = store
			m.recoverPending()
		}
	}
	registerManagerMetrics(reg, m)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates the request and either answers it from the cache
// (the job is born terminal, marked as a hit) or enqueues it. Returns
// ErrQueueFull when the bounded queue is saturated. Only accepted
// submissions count as submitted; rejections increment the rejected
// counter with their reason.
func (m *Manager) Submit(req CampaignRequest) (*Job, error) {
	parseStart := time.Now()
	norm, circuit, err := req.normalize()
	if err != nil {
		m.metrics.RejectedInvalid.Inc()
		return nil, err
	}
	key := CanonicalKey(circuit, norm)
	parseEnd := time.Now()
	m.metrics.ObserveStage("parse", parseEnd.Sub(parseStart))

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		m.metrics.RejectedClosed.Inc()
		return nil, ErrClosed
	}
	m.seq++
	job := &Job{
		ID:         fmt.Sprintf("c-%06d", m.seq),
		Key:        key,
		state:      StateQueued,
		submitted:  time.Now(),
		parseStart: parseStart,
		parseEnd:   parseEnd,
		circuit:    circuit,
		req:        norm,
	}

	if rep, ok := m.cache.Get(key); ok {
		job.cacheHit = true
		job.state = StateDone
		job.started = job.submitted
		job.finished = time.Now()
		job.report = rep
		job.circuit, job.req.Netlist = nil, "" // nothing left to run
		m.jobs[job.ID] = job
		m.noteTerminalLocked(job.ID)
		m.metrics.Submitted.Inc()
		m.log.Debug("campaign answered from cache", "job", job.ID, "key", job.Key)
		return job, nil
	}

	// The persistent result store outlives the LRU and the process: a
	// stored merged report answers the campaign with zero simulation,
	// warming the LRU on the way.
	if m.store != nil {
		var rep CampaignReport
		if err := m.store.Get(resultstore.KindReport, key, &rep); err == nil {
			m.cache.Put(key, &rep)
			m.metrics.StoreReportHits.Inc()
			job.cacheHit = true
			job.state = StateDone
			job.started = job.submitted
			job.finished = time.Now()
			job.report = &rep
			job.circuit, job.req.Netlist = nil, ""
			m.jobs[job.ID] = job
			m.noteTerminalLocked(job.ID)
			m.metrics.Submitted.Inc()
			m.log.Debug("campaign answered from result store", "job", job.ID, "key", job.Key)
			return job, nil
		}
	}

	select {
	case m.queue <- job:
	default:
		m.seq-- // the rejected job never existed
		m.metrics.RejectedQueueFull.Inc()
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	m.metrics.Submitted.Inc()
	// The pending marker makes the accepted campaign durable: if the
	// process stops before the report lands, the next start surfaces it
	// as a resumable job instead of losing it silently.
	if m.store != nil {
		pc := pendingCampaign{Request: job.req, Submitted: rfc3339(job.submitted), JobID: job.ID}
		if _, err := m.store.Put(resultstore.KindPending, key, pc); err != nil {
			m.log.Warn("pending marker not persisted", "job", job.ID, "key", key, "error", err.Error())
		}
	}
	m.log.Debug("campaign queued", "job", job.ID, "engine", job.req.Engine, "key", job.Key)
	return job, nil
}

// pendingCampaign is the resumable-state artifact in the result store's
// pending/ tree: the accepted request itself, so a restarted service
// can resubmit it verbatim (same canonical key, so every shard already
// computed is reused).
type pendingCampaign struct {
	Request   CampaignRequest `json:"request"`
	Submitted string          `json:"submitted,omitempty"`
	JobID     string          `json:"job_id,omitempty"` // ID in the accepting process, for log correlation
}

// recoverPending scans the result store's pending markers at startup:
// campaigns whose report landed are finished (stale marker, removed),
// the rest become resumable job records. Runs from NewManager before
// the workers start, so it needs no locking.
func (m *Manager) recoverPending() {
	keys, err := m.store.Keys(resultstore.KindPending)
	if err != nil {
		m.log.Warn("pending scan failed", "error", err.Error())
		return
	}
	for _, key := range keys {
		if m.store.Has(resultstore.KindReport, key) {
			_ = m.store.Delete(resultstore.KindPending, key)
			continue
		}
		var pc pendingCampaign
		if err := m.store.Get(resultstore.KindPending, key, &pc); err != nil {
			m.log.Warn("pending marker unreadable", "key", key, "error", err.Error())
			continue
		}
		m.seq++
		job := &Job{
			ID:    fmt.Sprintf("c-%06d", m.seq),
			Key:   key,
			state: StateResumable,
			req:   pc.Request,
		}
		if t, err := time.Parse(time.RFC3339Nano, pc.Submitted); err == nil {
			job.submitted = t
		}
		job.finished = time.Now()
		m.jobs[job.ID] = job
		m.noteTerminalLocked(job.ID)
		m.log.Info("campaign recovered as resumable", "job", job.ID, "key", key)
	}
}

// Resumable lists the resumable campaign records, oldest first.
// Records whose pending marker is gone (the campaign was resumed and
// finished, so the marker was consumed) are filtered out: the listing
// reflects what a restart would actually recover.
func (m *Manager) Resumable() []JobStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []JobStatus
	for _, j := range m.jobs {
		st := j.Status()
		if st.State != StateResumable {
			continue
		}
		if m.store != nil && !m.store.Has(resultstore.KindPending, st.Key) {
			continue
		}
		out = append(out, st)
	}
	sortStatusesByID(out)
	return out
}

// Resume resubmits a resumable campaign's stored request as a new job.
// Shards (and possibly the whole report) already in the result store
// are served from it, so resuming only pays for the missing work.
func (m *Manager) Resume(id string) (*Job, error) {
	j, ok := m.Get(id)
	if !ok {
		return nil, fmt.Errorf("service: no such job %s", id)
	}
	j.mu.Lock()
	state, req := j.state, j.req
	j.mu.Unlock()
	if state != StateResumable {
		return nil, fmt.Errorf("service: job %s is %s, not resumable", id, state)
	}
	return m.Submit(req)
}

func sortStatusesByID(sts []JobStatus) {
	for i := 1; i < len(sts); i++ {
		for k := i; k > 0 && sts[k].ID < sts[k-1].ID; k-- {
			sts[k], sts[k-1] = sts[k-1], sts[k]
		}
	}
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Subscribe registers a live event channel on the job. Every frame is a
// full JobStatus snapshot; the channel closes when the job reaches a
// terminal state (read the final status from the job afterwards). On an
// already-terminal job the returned channel is closed immediately. The
// cancel func is idempotent and must be called to release the
// subscription.
func (m *Manager) Subscribe(j *Job) (<-chan JobStatus, func()) {
	ch := make(chan JobStatus, subscriberBuffer)
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		close(ch)
		return ch, func() {}
	}
	j.subs = append(j.subs, ch)
	j.mu.Unlock()
	m.subscribers.Add(1)
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			j.mu.Lock()
			for i, c := range j.subs {
				if c == ch {
					j.subs = append(j.subs[:i], j.subs[i+1:]...)
					break
				}
			}
			j.mu.Unlock()
			m.subscribers.Add(-1)
		})
	}
	return ch, cancel
}

// noteProgress folds one campaign snapshot into the job: it derives
// coverage and a per-stage ETA, stores the snapshot for Status, and
// broadcasts to subscribers under the configured throttle (stage
// starts and completions always broadcast).
func (m *Manager) noteProgress(job *Job, p JobProgress) {
	m.metrics.ProgressEvents.Inc()
	now := time.Now()
	if p.Faults > 0 {
		p.Coverage = 100 * float64(p.Detected) / float64(p.Faults)
	}

	job.mu.Lock()
	key := p.Stage + "\x00" + p.Class
	if key != job.stageKey {
		job.stageKey = key
		job.stageStart = now
	}
	if p.Done > 0 && p.Done < p.Total {
		perUnit := now.Sub(job.stageStart).Seconds() / float64(p.Done)
		p.ETASeconds = perUnit * float64(p.Total-p.Done)
	}
	job.progress = &p
	boundary := p.Done == 0 || (p.Total > 0 && p.Done >= p.Total)
	if m.cfg.ProgressInterval < 0 || boundary || now.Sub(job.lastEmit) >= m.cfg.ProgressInterval {
		job.lastEmit = now
		job.broadcastLocked(job.statusLocked())
	}
	job.mu.Unlock()
}

// noteTerminalLocked records a finished job and prunes the oldest
// finished records beyond MaxJobs, bounding the job table on long-lived
// servers. Queued and running jobs are never pruned. Callers hold m.mu.
func (m *Manager) noteTerminalLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.jobs) > m.cfg.MaxJobs && len(m.finished) > 0 {
		victim := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, victim)
	}
}

func (m *Manager) noteTerminal(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noteTerminalLocked(id)
}

// QueueDepth reports the jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// QueueCapacity reports the bounded queue size.
func (m *Manager) QueueCapacity() int { return m.cfg.QueueDepth }

// Metrics exposes the counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Registry exposes the metrics registry (Prometheus exposition).
func (m *Manager) Registry() *obs.Registry { return m.reg }

// Tracer exposes the span tracer (the /trace endpoint).
func (m *Manager) Tracer() *obs.Tracer { return m.tracer }

// Cache exposes the result cache (read-mostly: stats and keys).
func (m *Manager) Cache() *Cache { return m.cache }

// DictStore exposes the fault-dictionary store, nil when DictDir is
// unset (capture and the diagnosis endpoints are disabled).
func (m *Manager) DictStore() *dict.Store { return m.dict }

// ResultStore exposes the durable campaign result store, nil when
// ResultDir is unset (campaign persistence and resume are disabled).
func (m *Manager) ResultStore() *resultstore.Store { return m.store }

// Workers reports the pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Closed reports whether Close has begun.
func (m *Manager) Closed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.closed
}

// Close cancels in-flight jobs and stops the workers.
func (m *Manager) Close() {
	m.shutdown(false)
}

// Drain shuts down gracefully: no new submissions, in-flight shards
// (and whole unsharded in-flight jobs) run to completion and persist,
// and still-queued jobs park as resumable state in the result store
// instead of being canceled. Returns when the workers have exited.
func (m *Manager) Drain() {
	m.shutdown(true)
}

func (m *Manager) shutdown(drain bool) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	if drain {
		close(m.drain)
	} else {
		m.cancel()
	}
	close(m.queue)
	m.wg.Wait()
	m.cancel()
}

// shardedOptions wires one job's sharded execution to the manager's
// store, drain signal, metrics and logger.
func (m *Manager) shardedOptions(job *Job) ShardedOptions {
	return ShardedOptions{
		Key:      job.Key,
		Shards:   job.req.Shards,
		Store:    m.store,
		Retries:  m.cfg.ShardRetries,
		Draining: m.drain,
		Events: shard.Events{
			Scheduled: func(shard.SubJob) { m.metrics.ShardScheduled.Inc() },
			Retried: func(j shard.SubJob, attempt int, err error) {
				m.metrics.ShardRetried.Inc()
				m.log.Warn("shard retrying", "job", job.ID, "shard", j.Index, "attempt", attempt, "error", err.Error())
			},
			Quarantined: func(j shard.SubJob, err error) {
				m.metrics.ShardQuarantined.Inc()
				m.log.Warn("shard quarantined", "job", job.ID, "shard", j.Index, "error", err.Error())
			},
		},
		OnCacheHit: func(shard.SubJob) { m.metrics.ShardCacheHits.Inc() },
	}
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		if m.ctx.Err() != nil {
			job.mu.Lock()
			job.state = StateCanceled
			job.err = "service shutting down"
			job.finished = time.Now()
			job.circuit, job.req.Netlist = nil, ""
			job.closeSubsLocked()
			job.mu.Unlock()
			m.metrics.Canceled.Inc()
			m.noteTerminal(job.ID)
			continue
		}
		if m.isDraining() {
			m.parkResumable(job, "service draining before the campaign started")
			continue
		}
		m.run(job)
	}
}

// isDraining reports whether Drain has fired.
func (m *Manager) isDraining() bool {
	select {
	case <-m.drain:
		return true
	default:
		return false
	}
}

// parkResumable terminates a job without running it: with a result
// store its pending marker survives and the record says so; without
// one there is nothing durable to come back to, so it is canceled.
func (m *Manager) parkResumable(job *Job, reason string) {
	job.mu.Lock()
	if m.store != nil {
		job.state = StateResumable
		job.err = reason
		// Keep req (the resume payload); drop only the parsed circuit.
		job.circuit = nil
	} else {
		job.state = StateCanceled
		job.err = reason
		job.circuit, job.req.Netlist = nil, ""
		m.metrics.Canceled.Inc()
	}
	job.finished = time.Now()
	job.closeSubsLocked()
	state := job.state
	job.mu.Unlock()
	m.noteTerminal(job.ID)
	m.log.Info("campaign parked", "job", job.ID, "state", string(state))
}

func (m *Manager) run(job *Job) {
	timeout := m.cfg.JobTimeout
	if job.req.TimeoutMS > 0 {
		if d := time.Duration(job.req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(m.ctx, timeout)
	defer cancel()

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.broadcastLocked(job.statusLocked())
	job.mu.Unlock()

	// One span tree per executed job, keyed by the job ID. The root
	// covers submission to completion; parse and queue wait are
	// recorded retroactively from the timestamps Submit captured.
	root := m.tracer.StartAt(job.ID, "campaign", job.submitted)
	root.SetAttr("engine", job.req.Engine)
	root.SetAttr("key", job.Key)
	root.Record("parse", job.parseStart, job.parseEnd)
	root.Record("queued", job.submitted, job.started)

	switch job.req.Engine {
	case "reference":
		m.metrics.ReferenceJobs.Inc()
	case "packed":
		m.metrics.PackedJobs.Inc()
	case "auto":
		m.metrics.AutoJobs.Inc()
	default:
		m.metrics.CompiledJobs.Inc()
	}
	m.log.Info("campaign started", "job", job.ID, "engine", job.req.Engine)

	observer := &RunObserver{
		Span:     root,
		OnStage:  m.metrics.ObserveStage,
		Progress: func(p JobProgress) { m.noteProgress(job, p) },
		Dict:     m.dict,
		DictKey:  job.Key,
	}
	// Campaigns run sharded when sub-job results can persist (a result
	// store is configured) or when the request asks for shards
	// explicitly; otherwise the single-shot path runs unchanged. The
	// shard differential tests pin the two paths bit-identical.
	var rep *CampaignReport
	var err error
	if m.store != nil || job.req.Shards > 1 {
		rep, err = RunCampaignSharded(ctx, job.circuit, job.req, m.shardedOptions(job), observer)
	} else {
		rep, err = runCampaign(ctx, job.circuit, job.req, observer)
	}
	root.End()

	job.mu.Lock()
	job.finished = time.Now()
	elapsed := job.finished.Sub(job.started)
	switch {
	case err == nil:
		job.state = StateDone
		job.report = rep
		m.cache.Put(job.Key, rep)
		m.metrics.Completed.Inc()
		if rep.Dictionary != nil {
			m.metrics.DictBuilt.Inc()
			m.metrics.DictBytes.Add(uint64(rep.Dictionary.CompressedBytes))
		}
	case errors.Is(err, shard.ErrDraining):
		// In-flight shards finished and persisted; the pending marker
		// stays, so the campaign resumes cheaply after restart.
		job.state = StateResumable
		job.err = err.Error()
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.state = StateCanceled
		job.err = err.Error()
		m.metrics.Canceled.Inc()
	default:
		job.state = StateFailed
		job.err = err.Error()
		m.metrics.Failed.Inc()
	}
	state, errMsg := job.state, job.err
	// Release the parsed circuit and netlist text: terminal jobs only
	// serve status and report reads. Subscribers learn the terminal
	// state from the channel close. Resumable jobs keep the request —
	// it is the resume payload.
	job.circuit = nil
	if job.state != StateResumable {
		job.req.Netlist = ""
	}
	job.closeSubsLocked()
	job.mu.Unlock()

	if m.store != nil {
		switch state {
		case StateDone:
			if _, perr := m.store.Put(resultstore.KindReport, job.Key, rep); perr != nil {
				m.log.Warn("report not persisted", "job", job.ID, "key", job.Key, "error", perr.Error())
			}
			_ = m.store.Delete(resultstore.KindPending, job.Key)
		case StateFailed:
			// A deterministic failure would fail again on resume; drop
			// the marker so it does not resurrect forever.
			_ = m.store.Delete(resultstore.KindPending, job.Key)
		}
		// Canceled (deadline) and resumable keep their markers: both
		// represent work worth finishing after a restart.
	}
	m.metrics.ObserveLatency(elapsed)
	m.noteTerminal(job.ID)
	if state == StateDone {
		m.log.Info("campaign finished", "job", job.ID, "state", string(state),
			"duration_ms", float64(elapsed)/float64(time.Millisecond))
	} else {
		m.log.Warn("campaign finished", "job", job.ID, "state", string(state), "error", errMsg,
			"duration_ms", float64(elapsed)/float64(time.Millisecond))
	}
}
