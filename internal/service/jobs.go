package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cpsinw/internal/logic"
)

// ErrQueueFull is returned by Submit when the bounded queue cannot
// accept another job; clients should back off and retry.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned by Submit after Close: the instance is shutting
// down and clients should retry elsewhere.
var ErrClosed = errors.New("service: manager closed")

// runCampaign is the worker's execution function, a seam for tests that
// need deterministic blocking or cancellation.
var runCampaign = RunCampaign

// Job is one campaign submission moving through the queue.
type Job struct {
	ID  string
	Key string

	mu       sync.Mutex
	state    JobState
	cacheHit bool
	err      string
	submitted, started,
	finished time.Time
	report *CampaignReport

	circuit *logic.Circuit
	req     CampaignRequest
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JobStatus{
		ID:        j.ID,
		State:     j.state,
		CacheHit:  j.cacheHit,
		Key:       j.Key,
		Error:     j.err,
		Submitted: rfc3339(j.submitted),
		Started:   rfc3339(j.started),
		Finished:  rfc3339(j.finished),
	}
}

// Report returns the result and whether the job finished successfully.
func (j *Job) Report() (*CampaignReport, JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report, j.state, j.err
}

// ManagerConfig tunes the job manager.
type ManagerConfig struct {
	Workers    int           // worker pool size (default GOMAXPROCS)
	QueueDepth int           // bounded submission queue (default 64)
	CacheSize  int           // LRU result cache entries (default 128)
	MaxJobs    int           // retained job records; oldest finished are pruned (default 4096)
	JobTimeout time.Duration // per-job deadline (default 60s)
}

func (c ManagerConfig) withDefaults() ManagerConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 60 * time.Second
	}
	return c
}

// Manager owns the queue, the worker pool and the result cache.
type Manager struct {
	cfg     ManagerConfig
	cache   *Cache
	metrics *Metrics

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Job
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	finished []string // terminal job IDs, oldest first, for pruning
	seq      int
	closed   bool
}

// NewManager starts the worker pool.
func NewManager(cfg ManagerConfig) *Manager {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheSize),
		metrics: &Metrics{},
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    map[string]*Job{},
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Submit validates the request and either answers it from the cache
// (the job is born terminal, marked as a hit) or enqueues it. Returns
// ErrQueueFull when the bounded queue is saturated.
func (m *Manager) Submit(req CampaignRequest) (*Job, error) {
	norm, circuit, err := req.normalize()
	if err != nil {
		return nil, err
	}
	key := CanonicalKey(circuit, norm)

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	m.seq++
	job := &Job{
		ID:        fmt.Sprintf("c-%06d", m.seq),
		Key:       key,
		state:     StateQueued,
		submitted: time.Now(),
		circuit:   circuit,
		req:       norm,
	}
	m.metrics.Submitted.Add(1)

	if rep, ok := m.cache.Get(key); ok {
		job.cacheHit = true
		job.state = StateDone
		job.started = job.submitted
		job.finished = time.Now()
		job.report = rep
		job.circuit, job.req.Netlist = nil, "" // nothing left to run
		m.jobs[job.ID] = job
		m.noteTerminalLocked(job.ID)
		return job, nil
	}

	select {
	case m.queue <- job:
	default:
		m.seq-- // the rejected job never existed
		m.metrics.Submitted.Add(-1)
		return nil, ErrQueueFull
	}
	m.jobs[job.ID] = job
	return job, nil
}

// Get looks a job up by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// noteTerminalLocked records a finished job and prunes the oldest
// finished records beyond MaxJobs, bounding the job table on long-lived
// servers. Queued and running jobs are never pruned. Callers hold m.mu.
func (m *Manager) noteTerminalLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.jobs) > m.cfg.MaxJobs && len(m.finished) > 0 {
		victim := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, victim)
	}
}

func (m *Manager) noteTerminal(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.noteTerminalLocked(id)
}

// QueueDepth reports the jobs waiting for a worker.
func (m *Manager) QueueDepth() int { return len(m.queue) }

// Metrics exposes the counters for the /metrics handler.
func (m *Manager) Metrics() *Metrics { return m.metrics }

// Cache exposes the result cache (read-mostly: stats and keys).
func (m *Manager) Cache() *Cache { return m.cache }

// Workers reports the pool size.
func (m *Manager) Workers() int { return m.cfg.Workers }

// Close cancels in-flight jobs and stops the workers.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	m.cancel()
	close(m.queue)
	m.wg.Wait()
}

func (m *Manager) worker() {
	defer m.wg.Done()
	for job := range m.queue {
		if m.ctx.Err() != nil {
			job.mu.Lock()
			job.state = StateCanceled
			job.err = "service shutting down"
			job.finished = time.Now()
			job.circuit, job.req.Netlist = nil, ""
			job.mu.Unlock()
			m.metrics.Canceled.Add(1)
			m.noteTerminal(job.ID)
			continue
		}
		m.run(job)
	}
}

func (m *Manager) run(job *Job) {
	timeout := m.cfg.JobTimeout
	if job.req.TimeoutMS > 0 {
		if d := time.Duration(job.req.TimeoutMS) * time.Millisecond; d < timeout {
			timeout = d
		}
	}
	ctx, cancel := context.WithTimeout(m.ctx, timeout)
	defer cancel()

	job.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	job.mu.Unlock()

	switch job.req.Engine {
	case "reference":
		m.metrics.ReferenceJobs.Add(1)
	case "packed":
		m.metrics.PackedJobs.Add(1)
	default:
		m.metrics.CompiledJobs.Add(1)
	}
	rep, err := runCampaign(ctx, job.circuit, job.req)

	job.mu.Lock()
	job.finished = time.Now()
	elapsed := job.finished.Sub(job.started)
	switch {
	case err == nil:
		job.state = StateDone
		job.report = rep
		m.cache.Put(job.Key, rep)
		m.metrics.Completed.Add(1)
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.state = StateCanceled
		job.err = err.Error()
		m.metrics.Canceled.Add(1)
	default:
		job.state = StateFailed
		job.err = err.Error()
		m.metrics.Failed.Add(1)
	}
	// Release the parsed circuit and netlist text: terminal jobs only
	// serve status and report reads.
	job.circuit, job.req.Netlist = nil, ""
	job.mu.Unlock()
	m.metrics.ObserveLatency(elapsed)
	m.noteTerminal(job.ID)
}
