package service

import (
	"sync"
	"testing"
	"time"
)

// sameCoverage compares the countable fields of two coverage reports
// (Undetected is a slice, so the structs are not directly comparable).
func sameCoverage(a, b *CoverageJSON) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.Total == b.Total && a.Detected == b.Detected &&
		a.ByOutput == b.ByOutput && a.ByIDDQ == b.ByIDDQ &&
		a.ByTwoPattern == b.ByTwoPattern && a.Percent == b.Percent
}

// TestConcurrentMixedEngineCampaigns floods one manager with identical
// campaigns under all three engine names at once (designed to run under
// -race in CI). It pins down:
//
//   - per-engine cache identity: every submission of one engine maps to
//     the same content address, and the three engines never share one;
//   - cache effectiveness: far fewer executions than submissions;
//   - counter integrity: the per-engine job counters account exactly
//     for the executed (non-cache-hit) jobs, with no interleaving lost
//     updates, and every job reaches a terminal done state with
//     coverage identical across engines.
func TestConcurrentMixedEngineCampaigns(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 4, QueueDepth: 256, JobTimeout: time.Minute})
	defer m.Close()

	engines := []string{"reference", "compiled", "packed"}
	const perEngine = 20
	req := func(engine string) CampaignRequest {
		return CampaignRequest{
			Benchmark: "fa_cp",
			Faults:    FaultConfig{StuckAt: true, Polarity: true, StuckOpen: true, Bridges: true, IDDQ: true},
			Engine:    engine,
		}
	}

	var mu sync.Mutex
	ids := map[string][]string{}  // engine -> job ids
	keySet := map[string]string{} // engine -> content address
	var wg sync.WaitGroup
	for _, engine := range engines {
		for n := 0; n < perEngine; n++ {
			wg.Add(1)
			go func(engine string) {
				defer wg.Done()
				for {
					job, err := m.Submit(req(engine))
					if err == ErrQueueFull {
						time.Sleep(time.Millisecond)
						continue
					}
					if err != nil {
						t.Errorf("%s: submit: %v", engine, err)
						return
					}
					mu.Lock()
					ids[engine] = append(ids[engine], job.ID)
					if prev, ok := keySet[engine]; ok && prev != job.Key {
						t.Errorf("%s: cache key drift: %s vs %s", engine, prev, job.Key)
					}
					keySet[engine] = job.Key
					mu.Unlock()
					return
				}
			}(engine)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(time.Minute)
	covs := map[string]*CoverageJSON{}
	for _, engine := range engines {
		for _, id := range ids[engine] {
			job, ok := m.Get(id)
			if !ok {
				t.Fatalf("%s: job %s lost", engine, id)
			}
			for !job.Status().State.Terminal() {
				if time.Now().After(deadline) {
					t.Fatalf("%s: job %s stuck in %s", engine, id, job.Status().State)
				}
				time.Sleep(2 * time.Millisecond)
			}
			rep, state, errmsg := job.Report()
			if state != StateDone {
				t.Fatalf("%s: job %s: %s (%s)", engine, id, state, errmsg)
			}
			if rep.Engine != engine {
				t.Errorf("job %s: report engine %q, want %q", id, rep.Engine, engine)
			}
			if prev, ok := covs[engine]; ok {
				if !sameCoverage(prev, rep.Bridges) {
					t.Errorf("%s: bridge coverage drift across identical jobs", engine)
				}
			} else {
				covs[engine] = rep.Bridges
			}
		}
	}
	// The three engines must agree on coverage (bit-identical results)
	// while living under distinct content addresses.
	if keySet["compiled"] == keySet["reference"] || keySet["compiled"] == keySet["packed"] || keySet["reference"] == keySet["packed"] {
		t.Errorf("engines share a cache key: %v", keySet)
	}
	for _, engine := range engines[1:] {
		if !sameCoverage(covs[engine], covs[engines[0]]) {
			t.Errorf("coverage disagrees: %s %+v vs %s %+v", engines[0], covs[engines[0]], engine, covs[engine])
		}
	}

	met := m.Metrics()
	executed := met.Completed.Value()
	perEngineSum := met.CompiledJobs.Value() + met.ReferenceJobs.Value() + met.PackedJobs.Value()
	if perEngineSum != executed {
		t.Errorf("per-engine counters interleaved: compiled %d + reference %d + packed %d = %d, executed %d",
			met.CompiledJobs.Value(), met.ReferenceJobs.Value(), met.PackedJobs.Value(), perEngineSum, executed)
	}
	if met.CompiledJobs.Value() < 1 || met.ReferenceJobs.Value() < 1 || met.PackedJobs.Value() < 1 {
		t.Errorf("an engine never executed: %d/%d/%d",
			met.CompiledJobs.Value(), met.ReferenceJobs.Value(), met.PackedJobs.Value())
	}
	if met.Submitted.Value() != int64(3*perEngine) {
		t.Errorf("submitted %d, want %d", met.Submitted.Value(), 3*perEngine)
	}
	hits, misses, _ := m.Cache().Stats()
	if hits+misses != 3*perEngine {
		t.Errorf("cache saw %d lookups, want %d", hits+misses, 3*perEngine)
	}
	if hits == 0 {
		t.Error("no cache hit across 20 identical submissions per engine")
	}
}
