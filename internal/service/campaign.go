package service

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/obs"
	"cpsinw/internal/report"
)

// exhaustiveInputLimit is the input count up to which campaigns always
// simulate all 2^n patterns, ignoring the random-pattern budget.
const exhaustiveInputLimit = 12

// DefaultPatternBudget is the random-pattern count applied when a
// campaign on a wide circuit leaves the budget unset: without it a
// n <= 0 request would simulate zero patterns and report 0% coverage
// as a successful campaign.
const DefaultPatternBudget = 256

// BuildPatterns mirrors the CLI pattern policy: exhaustive for circuits
// with at most exhaustiveInputLimit inputs, seeded-random otherwise
// (DefaultPatternBudget patterns when n <= 0).
func BuildPatterns(c *logic.Circuit, n int, seed int64) []faultsim.Pattern {
	if len(c.Inputs) <= exhaustiveInputLimit {
		return faultsim.ExhaustivePatterns(c)
	}
	if n <= 0 {
		n = DefaultPatternBudget
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]faultsim.Pattern, n)
	for k := range out {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out[k] = p
	}
	return out
}

// RunObserver threads observability into one campaign execution. Every
// field is optional; a nil observer (or nil fields) runs the campaign
// unobserved at full speed.
type RunObserver struct {
	// Span is the parent span; each campaign stage becomes a child.
	Span *obs.Span
	// Progress receives live snapshots from the simulation and ATPG
	// stages. Calls are serialized; the callback must not re-enter the
	// campaign.
	Progress func(JobProgress)
	// OnStage receives each finished stage's wall-clock duration.
	OnStage func(stage string, d time.Duration)
	// Dict and DictKey, when both set, make the campaign harvest
	// per-fault detection signatures from the simulation stages it
	// already runs (no second pass) and persist them as a fault
	// dictionary under DictKey — the campaign's content address — at
	// completion. The artifact metadata lands in CampaignReport.Dictionary.
	Dict    *dict.Store
	DictKey string
}

// stage opens one observed campaign stage under parent; the returned
// func closes the span and reports the duration.
func (ro *RunObserver) stage(parent *obs.Span, name string) (*obs.Span, func()) {
	sp := parent.Child(name)
	start := time.Now()
	return sp, func() {
		sp.End()
		if ro.OnStage != nil {
			ro.OnStage(name, time.Since(start))
		}
	}
}

// RunCampaign executes one normalized campaign request against the
// batch engines, honouring the context between phases and inside the
// parallel transistor simulation and the ATPG generators.
func RunCampaign(ctx context.Context, c *logic.Circuit, req CampaignRequest) (*CampaignReport, error) {
	return RunCampaignObserved(ctx, c, req, nil)
}

// RunCampaignObserved is RunCampaign with per-stage span tracing and
// live progress reporting. Stages (and their span names) are: patterns,
// compile, simulate (with per-fault-class children), report; request
// parsing happens before the campaign and is recorded by the job
// manager.
func RunCampaignObserved(ctx context.Context, c *logic.Circuit, req CampaignRequest, ro *RunObserver) (*CampaignReport, error) {
	if ro == nil {
		ro = &RunObserver{}
	}
	start := time.Now()

	engine, err := faultsim.ParseEngine(req.Engine)
	if err != nil {
		return nil, err
	}

	patSpan, patDone := ro.stage(ro.Span, "patterns")
	pats := BuildPatterns(c, req.Patterns, req.Seed)
	patSpan.SetAttr("count", strconv.Itoa(len(pats)))
	patDone()

	sim := faultsim.New(c)
	sim.Engine = engine

	// The stage the simulator progress callback attributes snapshots
	// to: the simulator names its own stages, but the voltage-only and
	// +IDDQ transistor sweeps both run under its "transistor" stage and
	// only the campaign can tell them apart. faultCount is the stage's
	// targeted fault universe, the coverage denominator (the stuck-at
	// sweep progresses per pattern, so its Done/Total are not fault
	// counts).
	currentStage := ""
	faultCount := 0
	if ro.Progress != nil {
		sim.Progress = func(p faultsim.Progress) {
			ro.Progress(JobProgress{
				Stage:     currentStage,
				Done:      p.Done,
				Total:     p.Total,
				Detected:  p.Detected,
				Dropped:   p.Dropped,
				Faults:    faultCount,
				GateEvals: p.GateEvals,
			})
		}
	}

	_, compileDone := ro.stage(ro.Span, "compile")
	sim.EnsureCompiled()
	compileDone()

	stats := c.Statistics()
	rep := &CampaignReport{
		Circuit: CircuitInfo{
			Name:    c.Name,
			Inputs:  stats.Inputs,
			Outputs: stats.Outputs,
			Gates:   stats.Gates,
			DPGates: stats.DPGates,
		},
		Patterns: len(pats),
		Engine:   engine.String(),
	}

	// resolved mirrors the engine choice the simulator will make for one
	// fault class, through the same pure heuristic resolveEngine applies
	// (auto never picks the reference oracle). It annotates the stage
	// span and, for auto campaigns, the class's coverage report; the
	// campaign-level Engine field keeps the canonical request value so
	// the cache key and the report agree.
	resolved := func(sp *obs.Span, nFaults int) string {
		e := engine
		if e == faultsim.EngineAuto {
			e = faultsim.ChooseEngine(len(c.Gates), nFaults, len(pats))
		}
		sp.SetAttr("engine", e.String())
		return e.String()
	}
	// classEngine is the CoverageJSON.Engine value: the resolved choice
	// for auto campaigns, empty otherwise (the top-level field covers it).
	classEngine := func(name string) string {
		if engine == faultsim.EngineAuto {
			return name
		}
		return ""
	}

	// Signature harvesting: with a dictionary store attached, the
	// stuck-at sweep and one transistor sweep run with a capture sink so
	// the dictionary comes out of the simulation the campaign performs
	// anyway. The leak plane needs the +IDDQ run; without IDDQ the
	// voltage run carries the (identical) output plane.
	wantDict := ro.Dict != nil && ro.DictKey != ""
	var saFaults, dictTrFaults []core.Fault
	var saCapture, trCapture *faultsim.SignatureCapture

	simSpan, simDone := ro.stage(ro.Span, "simulate")

	if req.Faults.StuckAt {
		faults := core.Universe(c, core.ClassicalOnly())
		currentStage, faultCount = "stuck_at", len(faults)
		_, done := ro.stage(simSpan, "stuck_at")
		if wantDict {
			saFaults = faults
			saCapture = faultsim.NewSignatureCapture(len(faults), len(pats))
			sim.Signatures = saCapture
		}
		ds, err := sim.RunStuckAtContext(ctx, faults, pats)
		sim.Signatures = nil
		if err != nil {
			return nil, err
		}
		done()
		rep.StuckAt = coverageJSON(faultsim.Summarise(ds))
	}

	uopt := core.UniverseOptions{
		ChannelBreak: req.Faults.StuckOpen,
		StuckOn:      req.Faults.StuckOn,
		Polarity:     req.Faults.Polarity,
	}
	if uopt.ChannelBreak || uopt.StuckOn || uopt.Polarity {
		trFaults := core.Universe(c, uopt)
		currentStage, faultCount = "transistor", len(trFaults)
		trSpan, done := ro.stage(simSpan, "transistor")
		trEngine := resolved(trSpan, len(trFaults))
		if wantDict && !req.Faults.IDDQ {
			dictTrFaults = trFaults
			trCapture = faultsim.NewSignatureCapture(len(trFaults), len(pats))
			sim.Signatures = trCapture
		}
		ds, err := sim.RunTransistorParallel(ctx, trFaults, pats, false, req.Workers)
		sim.Signatures = nil
		if err != nil {
			return nil, err
		}
		done()
		rep.Transistor = coverageJSON(faultsim.Summarise(ds))
		rep.Transistor.Engine = classEngine(trEngine)
		if req.Faults.IDDQ {
			currentStage = "transistor_iddq"
			iddqSpan, done := ro.stage(simSpan, "transistor_iddq")
			iddqEngine := resolved(iddqSpan, len(trFaults))
			if wantDict {
				dictTrFaults = trFaults
				trCapture = faultsim.NewSignatureCapture(len(trFaults), len(pats))
				sim.Signatures = trCapture
			}
			ds, err = sim.RunTransistorParallel(ctx, trFaults, pats, true, req.Workers)
			sim.Signatures = nil
			if err != nil {
				return nil, err
			}
			done()
			rep.TransistorIDDQ = coverageJSON(faultsim.Summarise(ds))
			rep.TransistorIDDQ.Engine = classEngine(iddqEngine)
		}
	}

	if req.Faults.Bridges {
		bridges := core.NeighborBridges(c, req.Faults.BridgeWindow)
		currentStage, faultCount = "bridges", len(bridges)
		brSpan, done := ro.stage(simSpan, "bridges")
		brEngine := resolved(brSpan, len(bridges))
		ds, err := sim.RunBridgesObserved(ctx, bridges, pats, req.Faults.IDDQ)
		if err != nil {
			return nil, err
		}
		done()
		rep.Bridges = coverageJSON(faultsim.BridgeCoverage(ds))
		rep.Bridges.Engine = classEngine(brEngine)
	}

	if req.ATPG {
		genOpt := uopt
		genOpt.LineStuckAt = req.Faults.StuckAt
		universe := core.Universe(c, genOpt)
		atpgOpt := atpg.Options{Engine: engine}
		if ro.Progress != nil {
			atpgOpt.Progress = func(p atpg.Progress) {
				ro.Progress(JobProgress{
					Stage:      "atpg",
					Class:      p.Class,
					Done:       p.Done,
					Total:      p.Total,
					Detected:   p.Covered,
					Faults:     p.Total,
					Untestable: p.Untestable,
					Vectors:    p.Vectors,
				})
			}
		}
		_, done := ro.stage(simSpan, "atpg")
		res, err := atpg.GenerateContext(ctx, c, universe, atpgOpt)
		if err != nil {
			return nil, err
		}
		done()
		rep.ATPG = &ATPGJSON{
			StuckAtTargeted:  res.StuckAtTargeted,
			StuckAtCovered:   res.StuckAtCovered,
			PolarityTargeted: res.PolarityTargeted,
			PolarityCovered:  res.PolarityCovered,
			CBSPTargeted:     res.CBSPTargeted,
			CBSPCovered:      res.CBSPCovered,
			CBDPTargeted:     res.CBDPTargeted,
			CBDPCovered:      res.CBDPCovered,
			Coverage:         res.Coverage(),
			TotalVectors:     res.Set.TotalVectors(),
			Untestable:       len(res.Untestable),
		}
	}
	simDone()

	if wantDict && (saCapture != nil || trCapture != nil) {
		dictSpan, done := ro.stage(ro.Span, "dictionary")
		d := &dict.Dictionary{Meta: dict.Meta{
			Key:       ro.DictKey,
			Circuit:   c.Name,
			Patterns:  len(pats),
			Seed:      req.Seed,
			Engine:    engine.String(),
			IDDQ:      req.Faults.IDDQ,
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
		}}
		addEntries := func(faults []core.Fault, capture *faultsim.SignatureCapture, leak bool) {
			for i := range faults {
				e := dict.Entry{
					Fault: faults[i].String(),
					Out:   dict.FromWords(len(pats), capture.Out(i)),
					Leak:  dict.NewBitset(len(pats)),
				}
				if leak {
					e.Leak = dict.FromWords(len(pats), capture.Leak(i))
				}
				d.Entries = append(d.Entries, e)
			}
		}
		if saCapture != nil {
			addEntries(saFaults, saCapture, false)
		}
		if trCapture != nil {
			addEntries(dictTrFaults, trCapture, req.Faults.IDDQ)
		}
		_, size, err := ro.Dict.Put(d)
		if err != nil {
			return nil, fmt.Errorf("dictionary: %w", err)
		}
		dictSpan.SetAttr("entries", strconv.Itoa(len(d.Entries)))
		dictSpan.SetAttr("bytes", strconv.FormatInt(size, 10))
		rep.Dictionary = &DictionaryJSON{
			Key:                 d.Meta.Key,
			Entries:             d.Meta.Entries,
			Patterns:            d.Meta.Patterns,
			IDDQ:                d.Meta.IDDQ,
			CompressedBytes:     size,
			Detected:            d.Meta.Resolution.Detected,
			Classes:             d.Meta.Resolution.Classes,
			UniquelyDiagnosable: d.Meta.Resolution.UniquelyDiagnosable,
		}
		done()
	}

	_, reportDone := ro.stage(ro.Span, "report")
	rep.Tables = buildTables(rep)
	reportDone()
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, nil
}

func coverageJSON(cov faultsim.Coverage) *CoverageJSON {
	out := &CoverageJSON{
		Total:        cov.Total,
		Detected:     cov.Detected,
		ByOutput:     cov.ByOutput,
		ByIDDQ:       cov.ByIDDQ,
		ByTwoPattern: cov.ByTwoPat,
		Percent:      cov.Percent(),
	}
	for _, f := range cov.Undetected {
		out.Undetected = append(out.Undetected, f.String())
	}
	return out
}

// buildTables renders the structured numbers as the same report.Table
// shapes the CLI prints, marshalled to JSON by internal/report.
func buildTables(rep *CampaignReport) []*report.Table {
	cov := &report.Table{
		Title:   fmt.Sprintf("fault simulation with %d patterns", rep.Patterns),
		Headers: []string{"model", "faults", "detected", "coverage"},
	}
	add := func(name string, c *CoverageJSON) {
		if c != nil {
			cov.Add(name, fmt.Sprintf("%d", c.Total), fmt.Sprintf("%d", c.Detected), fmt.Sprintf("%.1f%%", c.Percent))
		}
	}
	add("classical stuck-at", rep.StuckAt)
	add("CP transistor (voltage only)", rep.Transistor)
	add("CP transistor (+IDDQ)", rep.TransistorIDDQ)
	add("bridges", rep.Bridges)
	tables := []*report.Table{cov}

	if a := rep.ATPG; a != nil {
		t := &report.Table{
			Title:   "ATPG campaign",
			Headers: []string{"class", "targeted", "covered"},
		}
		t.Add("line stuck-at", fmt.Sprintf("%d", a.StuckAtTargeted), fmt.Sprintf("%d", a.StuckAtCovered))
		t.Add("polarity", fmt.Sprintf("%d", a.PolarityTargeted), fmt.Sprintf("%d", a.PolarityCovered))
		t.Add("channel break (SP)", fmt.Sprintf("%d", a.CBSPTargeted), fmt.Sprintf("%d", a.CBSPCovered))
		t.Add("channel break (DP)", fmt.Sprintf("%d", a.CBDPTargeted), fmt.Sprintf("%d", a.CBDPCovered))
		tables = append(tables, t)
	}
	return tables
}
