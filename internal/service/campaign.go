package service

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/report"
)

// exhaustiveInputLimit is the input count up to which campaigns always
// simulate all 2^n patterns, ignoring the random-pattern budget.
const exhaustiveInputLimit = 12

// BuildPatterns mirrors the CLI pattern policy: exhaustive for circuits
// with at most exhaustiveInputLimit inputs, seeded-random otherwise.
func BuildPatterns(c *logic.Circuit, n int, seed int64) []faultsim.Pattern {
	if len(c.Inputs) <= exhaustiveInputLimit {
		return faultsim.ExhaustivePatterns(c)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]faultsim.Pattern, n)
	for k := range out {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out[k] = p
	}
	return out
}

// RunCampaign executes one normalized campaign request against the
// batch engines, honouring the context between phases and inside the
// parallel transistor simulation and the ATPG generators.
func RunCampaign(ctx context.Context, c *logic.Circuit, req CampaignRequest) (*CampaignReport, error) {
	start := time.Now()
	pats := BuildPatterns(c, req.Patterns, req.Seed)
	engine, err := faultsim.ParseEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	sim := faultsim.New(c)
	sim.Engine = engine
	stats := c.Statistics()
	rep := &CampaignReport{
		Circuit: CircuitInfo{
			Name:    c.Name,
			Inputs:  stats.Inputs,
			Outputs: stats.Outputs,
			Gates:   stats.Gates,
			DPGates: stats.DPGates,
		},
		Patterns: len(pats),
		Engine:   engine.String(),
	}

	if req.Faults.StuckAt {
		faults := core.Universe(c, core.ClassicalOnly())
		ds, err := sim.RunStuckAtContext(ctx, faults, pats)
		if err != nil {
			return nil, err
		}
		rep.StuckAt = coverageJSON(faultsim.Summarise(ds))
	}

	uopt := core.UniverseOptions{
		ChannelBreak: req.Faults.StuckOpen,
		StuckOn:      req.Faults.StuckOn,
		Polarity:     req.Faults.Polarity,
	}
	if uopt.ChannelBreak || uopt.StuckOn || uopt.Polarity {
		trFaults := core.Universe(c, uopt)
		ds, err := sim.RunTransistorParallel(ctx, trFaults, pats, false, req.Workers)
		if err != nil {
			return nil, err
		}
		rep.Transistor = coverageJSON(faultsim.Summarise(ds))
		if req.Faults.IDDQ {
			ds, err = sim.RunTransistorParallel(ctx, trFaults, pats, true, req.Workers)
			if err != nil {
				return nil, err
			}
			rep.TransistorIDDQ = coverageJSON(faultsim.Summarise(ds))
		}
	}

	if req.Faults.Bridges {
		bridges := core.NeighborBridges(c, req.Faults.BridgeWindow)
		ds, err := sim.RunBridgesObserved(ctx, bridges, pats, req.Faults.IDDQ)
		if err != nil {
			return nil, err
		}
		rep.Bridges = coverageJSON(faultsim.BridgeCoverage(ds))
	}

	if req.ATPG {
		genOpt := uopt
		genOpt.LineStuckAt = req.Faults.StuckAt
		universe := core.Universe(c, genOpt)
		res, err := atpg.GenerateContext(ctx, c, universe, atpg.Options{Engine: engine})
		if err != nil {
			return nil, err
		}
		rep.ATPG = &ATPGJSON{
			StuckAtTargeted:  res.StuckAtTargeted,
			StuckAtCovered:   res.StuckAtCovered,
			PolarityTargeted: res.PolarityTargeted,
			PolarityCovered:  res.PolarityCovered,
			CBSPTargeted:     res.CBSPTargeted,
			CBSPCovered:      res.CBSPCovered,
			CBDPTargeted:     res.CBDPTargeted,
			CBDPCovered:      res.CBDPCovered,
			Coverage:         res.Coverage(),
			TotalVectors:     res.Set.TotalVectors(),
			Untestable:       len(res.Untestable),
		}
	}

	rep.Tables = buildTables(rep)
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, nil
}

func coverageJSON(cov faultsim.Coverage) *CoverageJSON {
	out := &CoverageJSON{
		Total:        cov.Total,
		Detected:     cov.Detected,
		ByOutput:     cov.ByOutput,
		ByIDDQ:       cov.ByIDDQ,
		ByTwoPattern: cov.ByTwoPat,
		Percent:      cov.Percent(),
	}
	for _, f := range cov.Undetected {
		out.Undetected = append(out.Undetected, f.String())
	}
	return out
}

// buildTables renders the structured numbers as the same report.Table
// shapes the CLI prints, marshalled to JSON by internal/report.
func buildTables(rep *CampaignReport) []*report.Table {
	cov := &report.Table{
		Title:   fmt.Sprintf("fault simulation with %d patterns", rep.Patterns),
		Headers: []string{"model", "faults", "detected", "coverage"},
	}
	add := func(name string, c *CoverageJSON) {
		if c != nil {
			cov.Add(name, fmt.Sprintf("%d", c.Total), fmt.Sprintf("%d", c.Detected), fmt.Sprintf("%.1f%%", c.Percent))
		}
	}
	add("classical stuck-at", rep.StuckAt)
	add("CP transistor (voltage only)", rep.Transistor)
	add("CP transistor (+IDDQ)", rep.TransistorIDDQ)
	add("bridges", rep.Bridges)
	tables := []*report.Table{cov}

	if a := rep.ATPG; a != nil {
		t := &report.Table{
			Title:   "ATPG campaign",
			Headers: []string{"class", "targeted", "covered"},
		}
		t.Add("line stuck-at", fmt.Sprintf("%d", a.StuckAtTargeted), fmt.Sprintf("%d", a.StuckAtCovered))
		t.Add("polarity", fmt.Sprintf("%d", a.PolarityTargeted), fmt.Sprintf("%d", a.PolarityCovered))
		t.Add("channel break (SP)", fmt.Sprintf("%d", a.CBSPTargeted), fmt.Sprintf("%d", a.CBSPCovered))
		t.Add("channel break (DP)", fmt.Sprintf("%d", a.CBDPTargeted), fmt.Sprintf("%d", a.CBDPCovered))
		tables = append(tables, t)
	}
	return tables
}
