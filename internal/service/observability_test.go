package service

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpsinw/internal/logic"
	"cpsinw/internal/obs"
)

// sseEvent is one parsed server-sent-events frame.
type sseEvent struct {
	name string
	st   JobStatus
}

// sseStream opens the events endpoint and returns a frame reader; each
// call to next blocks for the following frame (ok=false at stream end).
func sseStream(t *testing.T, url string) (next func() (sseEvent, bool), stop func()) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("events: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events content type = %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	next = func() (sseEvent, bool) {
		var ev sseEvent
		haveData := false
		for sc.Scan() {
			line := sc.Text()
			switch {
			case line == "":
				if haveData {
					return ev, true
				}
			case strings.HasPrefix(line, "event: "):
				ev.name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev.st); err != nil {
					t.Fatalf("bad SSE data: %v", err)
				}
				haveData = true
			}
		}
		return sseEvent{}, false
	}
	return next, func() { resp.Body.Close() }
}

// TestSSEProgressStream pins the streaming contract: at least one
// mid-flight progress frame with done/total/coverage, monotone Done,
// and a guaranteed terminal frame closing the stream.
func TestSSEProgressStream(t *testing.T) {
	proceed := make(chan struct{})
	const totalFaults = 5
	withObservedRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest, ro *RunObserver) (*CampaignReport, error) {
		<-proceed // the subscriber is connected before any progress flows
		for done := 0; done <= totalFaults; done++ {
			ro.Progress(JobProgress{
				Stage: "transistor", Done: done, Total: totalFaults,
				Detected: done, Faults: totalFaults, GateEvals: uint64(done) * 10,
			})
			time.Sleep(time.Millisecond)
		}
		return &CampaignReport{}, nil
	})

	srv := NewServer(ManagerConfig{Workers: 1, QueueDepth: 4, ProgressInterval: -1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	st, code := postCampaign(t, ts, CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{Polarity: true}})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	next, stop := sseStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/events")
	defer stop()

	first, ok := next()
	if !ok || first.name != "state" {
		t.Fatalf("first frame = %+v (ok=%v), want a state frame", first, ok)
	}
	close(proceed)

	var frames []sseEvent
	for {
		ev, ok := next()
		if !ok {
			break
		}
		frames = append(frames, ev)
	}
	if len(frames) == 0 {
		t.Fatal("no frames after the initial snapshot")
	}

	progress := 0
	lastDone := -1
	for _, ev := range frames {
		if ev.name != "progress" {
			continue
		}
		progress++
		p := ev.st.Progress
		if p == nil {
			t.Fatalf("progress frame without progress payload: %+v", ev.st)
		}
		if p.Total != totalFaults || p.Stage != "transistor" {
			t.Errorf("progress payload = %+v", p)
		}
		if p.Done < lastDone {
			t.Errorf("progress not monotone: %d after %d", p.Done, lastDone)
		}
		lastDone = p.Done
		if want := 100 * float64(p.Detected) / float64(totalFaults); p.Coverage != want {
			t.Errorf("coverage = %v, want %v", p.Coverage, want)
		}
	}
	if progress == 0 {
		t.Error("no mid-flight progress frame streamed")
	}
	final := frames[len(frames)-1]
	if final.name != "state" || final.st.State != StateDone {
		t.Errorf("final frame = %s/%s, want terminal state frame", final.name, final.st.State)
	}
	if srv.Manager().Metrics().ProgressEvents.Value() < int64(totalFaults) {
		t.Errorf("progress events counter = %d", srv.Manager().Metrics().ProgressEvents.Value())
	}
}

// TestSSETerminalJobStreamsOneFrame subscribes after completion: the
// stream must immediately deliver the terminal state and end.
func TestSSETerminalJobStreamsOneFrame(t *testing.T) {
	withFakeRunner(t, func(context.Context, *logic.Circuit, CampaignRequest) (*CampaignReport, error) {
		return &CampaignReport{}, nil
	})
	_, ts := newTestServer(t)
	st, _ := postCampaign(t, ts, CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}})
	pollDone(t, ts, st.ID)

	next, stop := sseStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/events")
	defer stop()
	ev, ok := next()
	if !ok || ev.name != "state" || !ev.st.State.Terminal() {
		t.Fatalf("frame = %+v (ok=%v), want terminal state", ev, ok)
	}
	if _, ok := next(); ok {
		t.Error("stream did not end after the terminal frame")
	}
}

// TestSSEDisconnectFreesSubscriber closes the client mid-job and checks
// the subscription is released while the job is still running.
func TestSSEDisconnectFreesSubscriber(t *testing.T) {
	release := make(chan struct{})
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		select {
		case <-release:
			return &CampaignReport{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv, ts := newTestServer(t)
	defer close(release)

	st, _ := postCampaign(t, ts, CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}})
	next, stop := sseStream(t, ts.URL+"/v1/campaigns/"+st.ID+"/events")
	if _, ok := next(); !ok {
		t.Fatal("no initial frame")
	}
	if n := srv.Manager().subscribers.Load(); n != 1 {
		t.Fatalf("subscribers = %d, want 1", n)
	}
	stop() // client disconnects while the job is still running

	deadline := time.Now().Add(5 * time.Second)
	for srv.Manager().subscribers.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber not released: %d", srv.Manager().subscribers.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReportCanceledConflict pins the satellite: a canceled campaign
// answers 409 with a machine-readable state, not 500.
func TestReportCanceledConflict(t *testing.T) {
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	_, ts := newTestServer(t)
	st, _ := postCampaign(t, ts, CampaignRequest{
		Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}, TimeoutMS: 5,
	})
	if final := pollDone(t, ts, st.ID); final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}
	resp, err := http.Get(ts.URL + "/v1/campaigns/" + st.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("canceled report = HTTP %d, want 409", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["state"] != "canceled" || body["error"] == "" {
		t.Errorf("canceled report body = %v", body)
	}
}

// TestHealthzReadiness pins the readiness semantics: 200 while
// accepting, 503 with ready=false once the queue is saturated or the
// manager is closed.
func TestHealthzReadiness(t *testing.T) {
	release := make(chan struct{})
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		select {
		case <-release:
			return &CampaignReport{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	srv := NewServer(ManagerConfig{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })

	health := func() (int, map[string]interface{}) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := health(); code != http.StatusOK || body["ready"] != true {
		t.Fatalf("idle healthz = %d %v, want 200 ready", code, body)
	}

	// Saturate: one job running, one filling the single queue slot.
	j1, err := srv.Manager().Submit(CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := srv.Manager().Submit(CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{Polarity: true}}); err != nil {
		t.Fatal(err)
	}
	if code, body := health(); code != http.StatusServiceUnavailable || body["ready"] != false {
		t.Fatalf("saturated healthz = %d %v, want 503 not-ready", code, body)
	}
	if srv.Manager().Metrics().RejectedQueueFull.Value() != 0 {
		t.Error("healthz probing should not consume queue slots")
	}

	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for {
		code, _ := health()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never recovered after drain")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv.Close()
	if code, body := health(); code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Fatalf("closed healthz = %d %v, want 503 unavailable", code, body)
	}
}

// TestMetricsPrometheusExposition runs a real campaign and checks the
// scrape: well-formed per the exposition linter, stable family names in
// registration order, and the load-bearing series present.
func TestMetricsPrometheusExposition(t *testing.T) {
	_, ts := newTestServer(t)
	st, code := postCampaign(t, ts, CampaignRequest{
		Netlist: c17Bench,
		Faults:  FaultConfig{StuckAt: true, Polarity: true, StuckOpen: true, Bridges: true, IDDQ: true},
		ATPG:    true,
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", code)
	}
	if final := pollDone(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("campaign: %s (%s)", final.State, final.Error)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q, want text/plain exposition", ct)
	}
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteByte('\n')
	}
	body := sb.String()

	if err := obs.LintExposition(strings.NewReader(body)); err != nil {
		t.Fatalf("exposition lint: %v\n%s", err, body)
	}

	// Golden family list: names and order are API. A change here is a
	// breaking dashboard change and must be deliberate.
	wantFamilies := []string{
		"cpsinw_jobs_submitted_total counter",
		"cpsinw_jobs_rejected_total counter",
		"cpsinw_jobs_completed_total counter",
		"cpsinw_jobs_failed_total counter",
		"cpsinw_jobs_canceled_total counter",
		"cpsinw_jobs_engine_total counter",
		"cpsinw_progress_events_total counter",
		"cpsinw_dict_built_total counter",
		"cpsinw_dict_bytes_total counter",
		"cpsinw_dict_diagnoses_total counter",
		"cpsinw_shard_scheduled_total counter",
		"cpsinw_shard_retried_total counter",
		"cpsinw_shard_cache_hits_total counter",
		"cpsinw_shard_quarantined_total counter",
		"cpsinw_resultstore_report_hits_total counter",
		"cpsinw_job_duration_seconds histogram",
		"cpsinw_stage_duration_seconds histogram",
		"cpsinw_queue_depth gauge",
		"cpsinw_queue_capacity gauge",
		"cpsinw_workers gauge",
		"cpsinw_event_subscribers gauge",
		"cpsinw_cache_hits_total counter",
		"cpsinw_cache_misses_total counter",
		"cpsinw_cache_entries gauge",
		"cpsinw_faultsim_fault_runs_total counter",
		"cpsinw_faultsim_bridge_runs_total counter",
		"cpsinw_faultsim_gate_evals_total counter",
		"cpsinw_faultsim_auto_choices_total counter",
		"cpsinw_faultsim_gate_evals_skipped_total counter",
		"cpsinw_faultsim_fault_luts_compiled_total counter",
		"cpsinw_faultsim_two_pattern_runs_total counter",
	}
	var gotFamilies []string
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			gotFamilies = append(gotFamilies, strings.TrimPrefix(line, "# TYPE "))
		}
	}
	if len(gotFamilies) != len(wantFamilies) {
		t.Errorf("family count = %d, want %d:\n%s", len(gotFamilies), len(wantFamilies), strings.Join(gotFamilies, "\n"))
	}
	for i, want := range wantFamilies {
		if i >= len(gotFamilies) {
			break
		}
		if gotFamilies[i] != want {
			t.Errorf("family %d = %q, want %q", i, gotFamilies[i], want)
		}
	}

	for _, series := range []string{
		`cpsinw_jobs_engine_total{engine="compiled"}`,
		`cpsinw_jobs_engine_total{engine="auto"}`,
		`cpsinw_faultsim_auto_choices_total{engine="compiled"}`,
		`cpsinw_faultsim_auto_choices_total{engine="packed"}`,
		`cpsinw_faultsim_gate_evals_total{engine="compiled"}`,
		`cpsinw_faultsim_gate_evals_total{engine="reference"}`,
		`cpsinw_faultsim_gate_evals_total{engine="packed"}`,
		`cpsinw_job_duration_seconds_bucket{le="+Inf"}`,
		`cpsinw_stage_duration_seconds_bucket{stage="stuck_at",le="+Inf"}`,
		`cpsinw_stage_duration_seconds_bucket{stage="atpg",le="+Inf"}`,
		`cpsinw_stage_duration_seconds_bucket{stage="dictionary",le="+Inf"}`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("series %s missing from the scrape", series)
		}
	}
	if !strings.Contains(body, "cpsinw_jobs_submitted_total 1") {
		t.Errorf("submitted counter wrong:\n%s", body)
	}
}

// TestMetricsJSONFormat keeps the legacy flat-JSON form (and its key
// set) reachable via ?format=json.
func TestMetricsJSONFormat(t *testing.T) {
	_, ts := newTestServer(t)
	var metrics map[string]interface{}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &metrics); code != http.StatusOK {
		t.Fatalf("metrics json: HTTP %d", code)
	}
	for _, key := range []string{
		"queue_depth", "workers",
		"jobs_submitted", "jobs_completed", "jobs_failed", "jobs_canceled", "jobs_rejected",
		"jobs_engine_compiled", "jobs_engine_reference", "jobs_engine_packed",
		"progress_events",
		"cache_hits", "cache_misses", "cache_size", "cache_hit_rate",
		"latency_ms_p50", "latency_ms_p99", "latency_samples",
		"faultsim_compiled_fault_runs", "faultsim_reference_fault_runs",
		"faultsim_cone_gate_evals", "faultsim_gate_evals_skipped",
		"faultsim_fault_luts_compiled", "faultsim_two_pattern_runs",
		"faultsim_packed_fault_runs", "faultsim_packed_gate_evals",
		"faultsim_packed_bridge_runs", "faultsim_compiled_bridge_runs",
		"faultsim_reference_gate_evals", "faultsim_reference_bridge_runs",
	} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("legacy metrics key %q missing", key)
		}
	}
}

// TestTraceEndpoint checks the per-campaign span tree: root campaign
// span with the stage children, and 404s for unknown or cache-answered
// jobs.
func TestTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	req := CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}}
	st, _ := postCampaign(t, ts, req)
	if final := pollDone(t, ts, st.ID); final.State != StateDone {
		t.Fatalf("campaign: %s (%s)", final.State, final.Error)
	}

	var tree obs.SpanTree
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st.ID+"/trace", &tree); code != http.StatusOK {
		t.Fatalf("trace: HTTP %d", code)
	}
	if tree.Name != "campaign" || tree.End == "" {
		t.Errorf("trace root = %+v, want finished campaign span", tree)
	}
	children := map[string]*obs.SpanTree{}
	for _, c := range tree.Children {
		children[c.Name] = c
	}
	for _, stage := range []string{"parse", "queued", "patterns", "compile", "simulate", "report"} {
		if children[stage] == nil {
			t.Errorf("stage span %q missing (have %v)", stage, tree.Children)
		}
	}
	if sim := children["simulate"]; sim != nil {
		found := false
		for _, c := range sim.Children {
			if c.Name == "stuck_at" {
				found = true
			}
		}
		if !found {
			t.Errorf("simulate children = %+v, want stuck_at", sim.Children)
		}
	}
	if tree.Attrs["engine"] != "compiled" {
		t.Errorf("root attrs = %v", tree.Attrs)
	}

	if code := getJSON(t, ts.URL+"/v1/campaigns/c-999999/trace", nil); code != http.StatusNotFound {
		t.Errorf("unknown trace = HTTP %d, want 404", code)
	}
	// A cache-answered resubmission never executes: no trace.
	st2, _ := postCampaign(t, ts, req)
	if code := getJSON(t, ts.URL+"/v1/campaigns/"+st2.ID+"/trace", nil); code != http.StatusNotFound {
		t.Errorf("cache-hit trace = HTTP %d, want 404", code)
	}
}

// TestManagerRejectionCounters pins Submit accounting: rejections never
// count as submissions and land on the right reason.
func TestManagerRejectionCounters(t *testing.T) {
	release := make(chan struct{})
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		select {
		case <-release:
			return &CampaignReport{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1})
	defer m.Close()
	defer close(release)

	if _, err := m.Submit(CampaignRequest{}); err == nil {
		t.Fatal("invalid request accepted")
	}
	j1, err := m.Submit(CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckAt: true}})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for j1.Status().State != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{Polarity: true}}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(CampaignRequest{Netlist: c17Bench, Faults: FaultConfig{StuckOn: true}}); err != ErrQueueFull {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}

	met := m.Metrics()
	if met.Submitted.Value() != 2 {
		t.Errorf("submitted = %d, want 2", met.Submitted.Value())
	}
	if met.RejectedInvalid.Value() != 1 || met.RejectedQueueFull.Value() != 1 || met.RejectedClosed.Value() != 0 {
		t.Errorf("rejected = %d invalid / %d queue_full / %d closed, want 1/1/0",
			met.RejectedInvalid.Value(), met.RejectedQueueFull.Value(), met.RejectedClosed.Value())
	}
}
