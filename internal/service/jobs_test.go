package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"cpsinw/internal/logic"
)

// withFakeRunner swaps the worker execution function for the test and
// restores it afterwards (observer-less form; use withObservedRunner
// when the fake needs to emit progress).
func withFakeRunner(t *testing.T, fn func(context.Context, *logic.Circuit, CampaignRequest) (*CampaignReport, error)) {
	t.Helper()
	withObservedRunner(t, func(ctx context.Context, c *logic.Circuit, req CampaignRequest, _ *RunObserver) (*CampaignReport, error) {
		return fn(ctx, c, req)
	})
}

// withObservedRunner swaps the worker execution function, observer
// included, and restores it afterwards.
func withObservedRunner(t *testing.T, fn func(context.Context, *logic.Circuit, CampaignRequest, *RunObserver) (*CampaignReport, error)) {
	t.Helper()
	old := runCampaign
	runCampaign = fn
	t.Cleanup(func() { runCampaign = old })
}

func waitTerminal(t *testing.T, job *Job) JobStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := job.Status()
		if st.State.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state (last: %s)", job.ID, job.Status().State)
	return JobStatus{}
}

func TestManagerQueueFull(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &CampaignReport{}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})

	m := NewManager(ManagerConfig{Workers: 1, QueueDepth: 1})
	defer m.Close()

	// Distinct fault configs keep the submissions cache-independent.
	submit := func(cfg FaultConfig) (*Job, error) {
		return m.Submit(CampaignRequest{Netlist: c17Bench, Faults: cfg})
	}
	j1, err := submit(FaultConfig{StuckAt: true})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker now owns j1
	j2, err := submit(FaultConfig{Polarity: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := submit(FaultConfig{StuckOn: true}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submission: got %v, want ErrQueueFull", err)
	}

	close(release)
	if st := waitTerminal(t, j1); st.State != StateDone {
		t.Errorf("j1 = %s (%s), want done", st.State, st.Error)
	}
	if st := waitTerminal(t, j2); st.State != StateDone {
		t.Errorf("j2 = %s (%s), want done", st.State, st.Error)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Errorf("queue depth = %d after drain", d)
	}
}

func TestManagerPerJobDeadline(t *testing.T) {
	withFakeRunner(t, func(ctx context.Context, _ *logic.Circuit, _ CampaignRequest) (*CampaignReport, error) {
		<-ctx.Done() // honour the deadline like the real campaign does
		return nil, ctx.Err()
	})

	m := NewManager(ManagerConfig{Workers: 1})
	defer m.Close()

	job, err := m.Submit(CampaignRequest{
		Netlist:   c17Bench,
		Faults:    FaultConfig{StuckAt: true},
		TimeoutMS: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, job)
	if st.State != StateCanceled {
		t.Errorf("state = %s (%s), want canceled", st.State, st.Error)
	}
	if m.Metrics().Canceled.Value() != 1 {
		t.Errorf("canceled counter = %d, want 1", m.Metrics().Canceled.Value())
	}
}

func TestManagerValidation(t *testing.T) {
	m := NewManager(ManagerConfig{Workers: 1})
	defer m.Close()

	cases := []CampaignRequest{
		{}, // no circuit
		{Netlist: c17Bench, Benchmark: "c17", Faults: FaultConfig{StuckAt: true}}, // both
		{Netlist: c17Bench}, // no fault class
		{Benchmark: "nope", Faults: FaultConfig{StuckAt: true}},      // unknown benchmark
		{Netlist: "x = FROB(a)", Faults: FaultConfig{StuckAt: true}}, // parse error
	}
	for i, req := range cases {
		if _, err := m.Submit(req); err == nil {
			t.Errorf("case %d: invalid request accepted", i)
		}
	}
	if n := m.Metrics().Submitted.Value(); n != 0 {
		t.Errorf("rejected submissions counted: %d", n)
	}
}
