package service

import (
	"time"

	"cpsinw/internal/faultsim"
	"cpsinw/internal/obs"
)

// Reject reasons for the cpsinw_jobs_rejected_total counter.
const (
	rejectInvalid   = "invalid"
	rejectQueueFull = "queue_full"
	rejectClosed    = "closed"
)

// campaignStages is every span/stage name a campaign can report, in
// execution order. Registering the per-stage histograms up front keeps
// the /metrics exposition stable from the first scrape (golden tests
// pin the series set).
var campaignStages = []string{
	"parse", "patterns", "compile", "simulate",
	"stuck_at", "transistor", "transistor_iddq", "bridges", "atpg",
	"merge", "dictionary", "report",
}

// Metrics collects the service counters on an obs.Registry and renders
// them in the Prometheus text exposition via the registry. The counter
// fields keep their historical names (and Value accessors) so direct
// consumers are unaffected; the legacy flat-JSON form survives as
// Snapshot, served by /metrics?format=json and publishable through
// expvar.Func.
type Metrics struct {
	reg *obs.Registry

	Submitted *obs.Counter
	Completed *obs.Counter
	Failed    *obs.Counter
	Canceled  *obs.Counter

	// Rejected submissions never become jobs; the reasons are the
	// reject* constants.
	RejectedInvalid   *obs.Counter
	RejectedQueueFull *obs.Counter
	RejectedClosed    *obs.Counter

	// Per-engine job accounting: which fault-simulation engine each
	// executed campaign selected (compiled is the default). Auto jobs
	// count under "auto"; the per-campaign choices they resolve to are
	// exposed by the process-wide cpsinw_faultsim_auto_choices_total
	// counters.
	CompiledJobs  *obs.Counter
	ReferenceJobs *obs.Counter
	PackedJobs    *obs.Counter
	AutoJobs      *obs.Counter

	// ProgressEvents counts live progress snapshots delivered by
	// running campaigns (before SSE throttling).
	ProgressEvents *obs.Counter

	// Fault-dictionary accounting: artifacts persisted by completed
	// campaigns, their compressed on-disk bytes, and diagnosis queries
	// answered from stored dictionaries.
	DictBuilt     *obs.Counter
	DictBytes     *obs.Counter
	DictDiagnoses *obs.Counter

	// Sharded-execution accounting: sub-jobs dispatched to the shard
	// scheduler, re-attempts after failures, sub-jobs answered from the
	// persistent result store without simulation, and sub-jobs that
	// exhausted their retry budget.
	ShardScheduled   *obs.Counter
	ShardRetried     *obs.Counter
	ShardCacheHits   *obs.Counter
	ShardQuarantined *obs.Counter
	// StoreReportHits counts whole campaigns answered from the
	// persistent result store (merged reports surviving restarts); the
	// in-memory LRU's hits are cpsinw_cache_hits_total.
	StoreReportHits *obs.Counter

	// JobDuration observes end-to-end execution time of non-cached
	// jobs, in seconds.
	JobDuration *obs.Histogram

	stages map[string]*obs.Histogram
}

// NewMetrics registers the service instruments on the registry.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		reg:       reg,
		Submitted: reg.Counter("cpsinw_jobs_submitted_total", "Accepted campaign submissions (including cache hits)."),
	}
	rejected := func(reason string) *obs.Counter {
		return reg.Counter("cpsinw_jobs_rejected_total", "Submissions rejected without becoming jobs.", obs.L("reason", reason))
	}
	m.RejectedInvalid = rejected(rejectInvalid)
	m.RejectedQueueFull = rejected(rejectQueueFull)
	m.RejectedClosed = rejected(rejectClosed)
	m.Completed = reg.Counter("cpsinw_jobs_completed_total", "Jobs that finished successfully.")
	m.Failed = reg.Counter("cpsinw_jobs_failed_total", "Jobs that finished with an error.")
	m.Canceled = reg.Counter("cpsinw_jobs_canceled_total", "Jobs canceled by deadline or shutdown.")
	engine := func(name string) *obs.Counter {
		return reg.Counter("cpsinw_jobs_engine_total", "Executed (non-cached) jobs per fault-simulation engine.", obs.L("engine", name))
	}
	m.CompiledJobs = engine("compiled")
	m.ReferenceJobs = engine("reference")
	m.PackedJobs = engine("packed")
	m.AutoJobs = engine("auto")
	m.ProgressEvents = reg.Counter("cpsinw_progress_events_total", "Campaign progress snapshots delivered by running jobs.")
	m.DictBuilt = reg.Counter("cpsinw_dict_built_total", "Fault-dictionary artifacts persisted by completed campaigns.")
	m.DictBytes = reg.Counter("cpsinw_dict_bytes_total", "Compressed bytes written to the fault-dictionary store.")
	m.DictDiagnoses = reg.Counter("cpsinw_dict_diagnoses_total", "Diagnosis queries answered from stored fault dictionaries.")
	m.ShardScheduled = reg.Counter("cpsinw_shard_scheduled_total", "Campaign sub-jobs dispatched to the shard scheduler.")
	m.ShardRetried = reg.Counter("cpsinw_shard_retried_total", "Campaign sub-job re-attempts after a failed attempt.")
	m.ShardCacheHits = reg.Counter("cpsinw_shard_cache_hits_total", "Campaign sub-jobs answered from the persistent result store.")
	m.ShardQuarantined = reg.Counter("cpsinw_shard_quarantined_total", "Campaign sub-jobs that exhausted their retry budget.")
	m.StoreReportHits = reg.Counter("cpsinw_resultstore_report_hits_total", "Campaigns answered whole from the persistent result store.")
	m.JobDuration = reg.Histogram("cpsinw_job_duration_seconds", "End-to-end execution time of non-cached jobs.", nil)
	m.stages = make(map[string]*obs.Histogram, len(campaignStages))
	for _, stage := range campaignStages {
		m.stages[stage] = reg.Histogram("cpsinw_stage_duration_seconds", "Per-stage campaign execution time.", nil, obs.L("stage", stage))
	}
	return m
}

// ObserveLatency records one finished job's wall-clock time.
func (m *Metrics) ObserveLatency(d time.Duration) {
	m.JobDuration.Observe(d.Seconds())
}

// ObserveStage records one campaign stage's wall-clock time. Unknown
// stage names register a new series on first use (the stages map is
// read-only after NewMetrics; Registry registration is idempotent).
func (m *Metrics) ObserveStage(stage string, d time.Duration) {
	h, ok := m.stages[stage]
	if !ok {
		h = m.reg.Histogram("cpsinw_stage_duration_seconds", "Per-stage campaign execution time.", nil, obs.L("stage", stage))
	}
	h.Observe(d.Seconds())
}

// Rejected returns the rejection counter for the reason.
func (m *Metrics) Rejected(reason string) *obs.Counter {
	switch reason {
	case rejectQueueFull:
		return m.RejectedQueueFull
	case rejectClosed:
		return m.RejectedClosed
	default:
		return m.RejectedInvalid
	}
}

// registerManagerMetrics wires the instruments that need live manager
// state: queue/worker/cache/subscriber gauges, the cache hit counters
// and the process-wide faultsim engine counters. Called once from
// NewManager, after the manager's queue and cache exist.
func registerManagerMetrics(reg *obs.Registry, m *Manager) {
	reg.GaugeFunc("cpsinw_queue_depth", "Jobs waiting for a worker.", func() float64 { return float64(m.QueueDepth()) })
	reg.GaugeFunc("cpsinw_queue_capacity", "Bounded submission queue size.", func() float64 { return float64(m.QueueCapacity()) })
	reg.GaugeFunc("cpsinw_workers", "Worker pool size.", func() float64 { return float64(m.Workers()) })
	reg.GaugeFunc("cpsinw_event_subscribers", "Connected progress-event (SSE) subscribers.", func() float64 { return float64(m.subscribers.Load()) })
	reg.CounterFunc("cpsinw_cache_hits_total", "Result-cache hits.", func() uint64 { h, _, _ := m.cache.Stats(); return h })
	reg.CounterFunc("cpsinw_cache_misses_total", "Result-cache misses.", func() uint64 { _, mi, _ := m.cache.Stats(); return mi })
	reg.GaugeFunc("cpsinw_cache_entries", "Resident result-cache entries.", func() float64 { _, _, n := m.cache.Stats(); return float64(n) })

	// The faultsim engine counters are process-wide (the engines are
	// shared by every simulator); exposing them here quantifies what
	// the compiled LUT/cone and packed engines save over full
	// re-simulation. Gate evaluations are engine-native units: scalar
	// LUT lookups (compiled), packed evaluations covering up to 64
	// lanes (packed), full hooked-map evaluations (reference).
	es := func(pick func(faultsim.EngineStats) uint64) func() uint64 {
		return func() uint64 { return pick(faultsim.ReadEngineStats()) }
	}
	reg.CounterFunc("cpsinw_faultsim_fault_runs_total", "Fault x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.CompiledFaultRuns }), obs.L("engine", "compiled"))
	reg.CounterFunc("cpsinw_faultsim_fault_runs_total", "Fault x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.ReferenceFaultRuns }), obs.L("engine", "reference"))
	reg.CounterFunc("cpsinw_faultsim_fault_runs_total", "Fault x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.PackedFaultRuns }), obs.L("engine", "packed"))
	reg.CounterFunc("cpsinw_faultsim_bridge_runs_total", "Bridge x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.CompiledBridgeRuns }), obs.L("engine", "compiled"))
	reg.CounterFunc("cpsinw_faultsim_bridge_runs_total", "Bridge x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.ReferenceBridgeRuns }), obs.L("engine", "reference"))
	reg.CounterFunc("cpsinw_faultsim_bridge_runs_total", "Bridge x campaign units simulated, per engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.PackedBridgeRuns }), obs.L("engine", "packed"))
	reg.CounterFunc("cpsinw_faultsim_gate_evals_total", "Engine-native gate evaluations (units differ per engine).",
		es(func(s faultsim.EngineStats) uint64 { return s.ConeGateEvals }), obs.L("engine", "compiled"))
	reg.CounterFunc("cpsinw_faultsim_gate_evals_total", "Engine-native gate evaluations (units differ per engine).",
		es(func(s faultsim.EngineStats) uint64 { return s.ReferenceGateEvals }), obs.L("engine", "reference"))
	reg.CounterFunc("cpsinw_faultsim_gate_evals_total", "Engine-native gate evaluations (units differ per engine).",
		es(func(s faultsim.EngineStats) uint64 { return s.PackedGateEvals }), obs.L("engine", "packed"))
	reg.CounterFunc("cpsinw_faultsim_auto_choices_total", "Campaigns the auto chooser resolved, per chosen engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.AutoChosenCompiled }), obs.L("engine", "compiled"))
	reg.CounterFunc("cpsinw_faultsim_auto_choices_total", "Campaigns the auto chooser resolved, per chosen engine.",
		es(func(s faultsim.EngineStats) uint64 { return s.AutoChosenPacked }), obs.L("engine", "packed"))
	reg.CounterFunc("cpsinw_faultsim_gate_evals_skipped_total", "Gate evaluations the cone engine avoided vs full re-simulation.",
		es(func(s faultsim.EngineStats) uint64 { return s.GateEvalsSkipped }))
	reg.CounterFunc("cpsinw_faultsim_fault_luts_compiled_total", "Distinct per-fault behaviour tables compiled.",
		es(func(s faultsim.EngineStats) uint64 { return s.FaultLUTsCompiled }))
	reg.CounterFunc("cpsinw_faultsim_two_pattern_runs_total", "Fault x pattern-pair units through the two-pattern engines.",
		es(func(s faultsim.EngineStats) uint64 { return s.TwoPatternRuns }))
}

// Snapshot renders every counter plus derived statistics as a flat map:
// the legacy JSON form served by /metrics?format=json and published
// through expvar. The latency percentiles come from the job-duration
// histogram (linear interpolation inside the owning bucket).
func (m *Metrics) Snapshot(queueDepth, workers int, cache *Cache) map[string]interface{} {
	hits, misses, size := cache.Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	es := faultsim.ReadEngineStats()
	return map[string]interface{}{
		"queue_depth":           queueDepth,
		"workers":               workers,
		"jobs_submitted":        m.Submitted.Value(),
		"jobs_completed":        m.Completed.Value(),
		"jobs_failed":           m.Failed.Value(),
		"jobs_canceled":         m.Canceled.Value(),
		"jobs_rejected":         m.RejectedInvalid.Value() + m.RejectedQueueFull.Value() + m.RejectedClosed.Value(),
		"jobs_engine_compiled":  m.CompiledJobs.Value(),
		"jobs_engine_reference": m.ReferenceJobs.Value(),
		"jobs_engine_packed":    m.PackedJobs.Value(),
		"jobs_engine_auto":      m.AutoJobs.Value(),
		"progress_events":       m.ProgressEvents.Value(),
		"dict_built":            m.DictBuilt.Value(),
		"dict_bytes":            m.DictBytes.Value(),
		"dict_diagnoses":        m.DictDiagnoses.Value(),
		"shard_scheduled":       m.ShardScheduled.Value(),
		"shard_retried":         m.ShardRetried.Value(),
		"shard_cache_hits":      m.ShardCacheHits.Value(),
		"shard_quarantined":     m.ShardQuarantined.Value(),
		"resultstore_hits":      m.StoreReportHits.Value(),
		"cache_hits":            hits,
		"cache_misses":          misses,
		"cache_size":            size,
		"cache_hit_rate":        hitRate,
		"latency_ms_p50":        m.JobDuration.Quantile(0.50) * 1000,
		"latency_ms_p99":        m.JobDuration.Quantile(0.99) * 1000,
		"latency_samples":       m.JobDuration.Count(),

		"faultsim_compiled_fault_runs":   es.CompiledFaultRuns,
		"faultsim_reference_fault_runs":  es.ReferenceFaultRuns,
		"faultsim_cone_gate_evals":       es.ConeGateEvals,
		"faultsim_gate_evals_skipped":    es.GateEvalsSkipped,
		"faultsim_fault_luts_compiled":   es.FaultLUTsCompiled,
		"faultsim_two_pattern_runs":      es.TwoPatternRuns,
		"faultsim_packed_fault_runs":     es.PackedFaultRuns,
		"faultsim_packed_gate_evals":     es.PackedGateEvals,
		"faultsim_packed_bridge_runs":    es.PackedBridgeRuns,
		"faultsim_compiled_bridge_runs":  es.CompiledBridgeRuns,
		"faultsim_reference_gate_evals":  es.ReferenceGateEvals,
		"faultsim_reference_bridge_runs": es.ReferenceBridgeRuns,
		"faultsim_auto_chosen_compiled":  es.AutoChosenCompiled,
		"faultsim_auto_chosen_packed":    es.AutoChosenPacked,
	}
}
