package service

import (
	"expvar"
	"sort"
	"sync"
	"time"

	"cpsinw/internal/faultsim"
)

// latencyWindow bounds the sliding sample set the percentiles are
// computed over.
const latencyWindow = 1024

// Metrics collects the service counters. The expvar.Int fields are kept
// unpublished so multiple servers (httptest instances in particular) can
// coexist in one process; cmd/cpsinw-serve publishes a snapshot function
// into the global expvar map.
type Metrics struct {
	Submitted expvar.Int
	Completed expvar.Int
	Failed    expvar.Int
	Canceled  expvar.Int

	// Per-engine job accounting: which fault-simulation engine each
	// executed campaign selected (compiled is the default).
	CompiledJobs  expvar.Int
	ReferenceJobs expvar.Int
	PackedJobs    expvar.Int

	mu      sync.Mutex
	samples []float64 // job latencies in ms, ring buffer
	next    int
	full    bool
}

// ObserveLatency records one finished job's wall-clock time.
func (m *Metrics) ObserveLatency(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.samples) < latencyWindow && !m.full {
		m.samples = append(m.samples, ms)
		return
	}
	m.full = true
	m.samples[m.next] = ms
	m.next = (m.next + 1) % latencyWindow
}

// percentiles returns nearest-rank percentiles over the current window.
func (m *Metrics) percentiles(ps ...float64) []float64 {
	m.mu.Lock()
	sorted := append([]float64(nil), m.samples...)
	m.mu.Unlock()
	sort.Float64s(sorted)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if len(sorted) == 0 {
			continue
		}
		rank := int(p/100*float64(len(sorted)) + 0.5)
		if rank < 1 {
			rank = 1
		}
		if rank > len(sorted) {
			rank = len(sorted)
		}
		out[i] = sorted[rank-1]
	}
	return out
}

// Snapshot renders every counter plus derived statistics as a flat map,
// served by /metrics and publishable through expvar.Func.
func (m *Metrics) Snapshot(queueDepth, workers int, cache *Cache) map[string]interface{} {
	hits, misses, size := cache.Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	pcts := m.percentiles(50, 99)
	m.mu.Lock()
	n := len(m.samples)
	m.mu.Unlock()
	// faultsim's engine counters are process-wide (the engines are
	// shared by every simulator); exposing them here quantifies what the
	// compiled LUT/cone engine saves over full re-simulation. All
	// values stay numeric so the map marshals flat.
	es := faultsim.ReadEngineStats()
	return map[string]interface{}{
		"queue_depth":                   queueDepth,
		"workers":                       workers,
		"jobs_submitted":                m.Submitted.Value(),
		"jobs_completed":                m.Completed.Value(),
		"jobs_failed":                   m.Failed.Value(),
		"jobs_canceled":                 m.Canceled.Value(),
		"jobs_engine_compiled":          m.CompiledJobs.Value(),
		"jobs_engine_reference":         m.ReferenceJobs.Value(),
		"jobs_engine_packed":            m.PackedJobs.Value(),
		"cache_hits":                    hits,
		"cache_misses":                  misses,
		"cache_size":                    size,
		"cache_hit_rate":                hitRate,
		"latency_ms_p50":                pcts[0],
		"latency_ms_p99":                pcts[1],
		"latency_samples":               n,
		"faultsim_compiled_fault_runs":  es.CompiledFaultRuns,
		"faultsim_reference_fault_runs": es.ReferenceFaultRuns,
		"faultsim_cone_gate_evals":      es.ConeGateEvals,
		"faultsim_gate_evals_skipped":   es.GateEvalsSkipped,
		"faultsim_fault_luts_compiled":  es.FaultLUTsCompiled,
		"faultsim_two_pattern_runs":     es.TwoPatternRuns,
		"faultsim_packed_fault_runs":    es.PackedFaultRuns,
		"faultsim_packed_gate_evals":    es.PackedGateEvals,
		"faultsim_packed_bridge_runs":   es.PackedBridgeRuns,
		"faultsim_compiled_bridge_runs": es.CompiledBridgeRuns,
	}
}
