package service

import (
	"context"
	"fmt"
	"strconv"
	"sync"
	"time"

	"cpsinw/internal/atpg"
	"cpsinw/internal/core"
	"cpsinw/internal/dict"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
	"cpsinw/internal/resultstore"
	"cpsinw/internal/shard"
)

// ShardedOptions configures one sharded campaign execution.
type ShardedOptions struct {
	// Key is the campaign's content address (CanonicalKey over the
	// normalized request); sub-job keys derive from it. Required when
	// Store is set, so cached shards can never cross campaigns.
	Key string
	// Shards is the requested sub-job count; 0 auto-sizes from the
	// circuit gate count and fault population. Clamped to the fault
	// population and shard.MaxShards either way.
	Shards int
	// Store, when set, serves already-computed shards without
	// re-simulation and persists fresh ones for the next run.
	Store *resultstore.Store
	// Workers bounds concurrently running shards (default: plan size).
	Workers int
	// Retries re-attempts a failed shard before quarantining it.
	Retries int
	// Timeout bounds each shard attempt (0: the campaign deadline only).
	Timeout time.Duration
	// Draining, when closed, lets in-flight shards finish, abandons the
	// unstarted remainder and fails the run with shard.ErrDraining (the
	// campaign is resumable: finished shards persisted to Store).
	Draining <-chan struct{}
	// Events receives scheduler lifecycle callbacks (all optional).
	Events shard.Events
	// OnCacheHit fires for each shard answered from the result store.
	// Like the Events callbacks it runs on scheduler goroutines, so it
	// must be safe for concurrent use.
	OnCacheHit func(shard.SubJob)
}

// shardEnv is the immutable per-campaign state every shard attempt
// shares: the circuit, pattern set and full fault universes the sub-job
// ranges index into.
type shardEnv struct {
	c        *logic.Circuit
	engine   faultsim.Engine
	pats     []faultsim.Pattern
	saFaults []core.Fault
	trFaults []core.Fault
	bridges  []core.Bridge
	iddq     bool
	agg      *shardAgg
}

// shardAgg aggregates per-shard progress into campaign-level snapshots:
// each class keeps one slot per shard, summed on every emit, so the SSE
// stream shows the whole campaign advancing rather than one shard's
// private counters.
type shardAgg struct {
	ro     *RunObserver
	shards int

	mu      sync.Mutex
	done    int // finished sub-jobs
	classes map[string]*classAgg
}

type classAgg struct {
	faults                         int // coverage denominator
	done, total, detected, dropped []int
	evals                          []uint64
}

func newShardAgg(ro *RunObserver, shards int) *shardAgg {
	return &shardAgg{ro: ro, shards: shards, classes: map[string]*classAgg{}}
}

func (a *shardAgg) class(name string, faults int) {
	a.classes[name] = &classAgg{
		faults: faults,
		done:   make([]int, a.shards), total: make([]int, a.shards),
		detected: make([]int, a.shards), dropped: make([]int, a.shards),
		evals: make([]uint64, a.shards),
	}
}

// note records one shard's latest snapshot for a class and emits the
// aggregate.
func (a *shardAgg) note(stage string, idx int, p faultsim.Progress) {
	if a.ro.Progress == nil {
		return
	}
	a.mu.Lock()
	ca, ok := a.classes[stage]
	if !ok {
		a.mu.Unlock()
		return
	}
	ca.done[idx], ca.total[idx] = p.Done, p.Total
	ca.detected[idx], ca.dropped[idx] = p.Detected, p.Dropped
	ca.evals[idx] = p.GateEvals
	snap := a.snapshotLocked(stage, ca)
	a.mu.Unlock()
	a.ro.Progress(snap)
}

// complete folds a finished shard's result in (live or cache-served):
// every class slot it carries becomes fully done, detections counted
// from the records.
func (a *shardAgg) complete(j shard.SubJob, r *shard.Result) {
	a.mu.Lock()
	a.done++
	last := ""
	mark := func(stage string, cr *shard.ClassResult) {
		ca, ok := a.classes[stage]
		if cr == nil || !ok {
			return
		}
		n := 0
		for _, d := range cr.Dets {
			if d.Method != "" || d.Detected {
				n++
			}
		}
		// Normalized units: a finished slot contributes equal done and
		// total, so the aggregate fraction still reaches 1 when every
		// shard lands, whatever units the live engine reported.
		ca.done[j.Index], ca.total[j.Index] = 1, 1
		ca.detected[j.Index] = n
		last = stage
	}
	mark("stuck_at", r.StuckAt)
	mark("transistor", r.TransistorV)
	mark("transistor_iddq", r.TransistorIQ)
	mark("bridges", r.Bridges)
	var snap JobProgress
	if ca, ok := a.classes[last]; ok && a.ro.Progress != nil {
		snap = a.snapshotLocked(last, ca)
	}
	a.mu.Unlock()
	if snap.Stage != "" {
		a.ro.Progress(snap)
	}
}

func (a *shardAgg) snapshotLocked(stage string, ca *classAgg) JobProgress {
	p := JobProgress{Stage: stage, Faults: ca.faults, Shards: a.shards, ShardsDone: a.done}
	for i := 0; i < a.shards; i++ {
		p.Done += ca.done[i]
		p.Total += ca.total[i]
		p.Detected += ca.detected[i]
		p.Dropped += ca.dropped[i]
		p.GateEvals += ca.evals[i]
	}
	return p
}

// RunCampaignSharded executes one normalized campaign as a plan of
// content-addressed sub-jobs over contiguous fault ranges, then merges
// the shard results into a report that is bit-identical (ElapsedMS and
// dictionary timestamp aside) to RunCampaignObserved on the same
// request — the shard differential tests pin this. Shards already in
// opt.Store are served without simulation; fresh shards persist there
// for the next run. ATPG and the dictionary build are not fault-
// parallel and run once, in the merger.
func RunCampaignSharded(ctx context.Context, c *logic.Circuit, req CampaignRequest, opt ShardedOptions, ro *RunObserver) (*CampaignReport, error) {
	if ro == nil {
		ro = &RunObserver{}
	}
	start := time.Now()

	engine, err := faultsim.ParseEngine(req.Engine)
	if err != nil {
		return nil, err
	}
	if opt.Store != nil && !resultstore.ValidKey(opt.Key) {
		return nil, fmt.Errorf("sharded campaign with a result store needs a canonical campaign key, got %q", opt.Key)
	}

	patSpan, patDone := ro.stage(ro.Span, "patterns")
	pats := BuildPatterns(c, req.Patterns, req.Seed)
	patSpan.SetAttr("count", strconv.Itoa(len(pats)))
	patDone()

	env := &shardEnv{c: c, engine: engine, pats: pats, iddq: req.Faults.IDDQ}
	if req.Faults.StuckAt {
		env.saFaults = core.Universe(c, core.ClassicalOnly())
	}
	uopt := core.UniverseOptions{
		ChannelBreak: req.Faults.StuckOpen,
		StuckOn:      req.Faults.StuckOn,
		Polarity:     req.Faults.Polarity,
	}
	if uopt.ChannelBreak || uopt.StuckOn || uopt.Polarity {
		env.trFaults = core.Universe(c, uopt)
	}
	if req.Faults.Bridges {
		env.bridges = core.NeighborBridges(c, req.Faults.BridgeWindow)
	}

	wantDict := ro.Dict != nil && ro.DictKey != ""
	k := opt.Shards
	if k <= 0 {
		k = shard.AutoShards(len(c.Gates), len(env.saFaults)+len(env.trFaults)+len(env.bridges))
	}
	plan := shard.NewPlan(opt.Key, k, len(env.saFaults), len(env.trFaults), len(env.bridges), wantDict)
	if ro.Span != nil {
		ro.Span.SetAttr("shards", strconv.Itoa(plan.Total))
	}

	env.agg = newShardAgg(ro, plan.Total)
	if env.saFaults != nil {
		env.agg.class("stuck_at", len(env.saFaults))
	}
	if env.trFaults != nil {
		env.agg.class("transistor", len(env.trFaults))
		if req.Faults.IDDQ {
			env.agg.class("transistor_iddq", len(env.trFaults))
		}
	}
	if env.bridges != nil {
		env.agg.class("bridges", len(env.bridges))
	}

	stats := c.Statistics()
	rep := &CampaignReport{
		Circuit: CircuitInfo{
			Name:    c.Name,
			Inputs:  stats.Inputs,
			Outputs: stats.Outputs,
			Gates:   stats.Gates,
			DPGates: stats.DPGates,
		},
		Patterns: len(pats),
		Engine:   engine.String(),
	}
	// Same per-class engine annotation as the unsharded run: auto
	// campaigns record the choice for the class's full fault count, so
	// the sharded and unsharded reports agree byte for byte (the shards
	// themselves may resolve smaller fault slices differently — the
	// engines are differentially proven result-identical, so that is an
	// execution detail, not a result).
	classEngine := func(nFaults int) string {
		if engine != faultsim.EngineAuto {
			return ""
		}
		return faultsim.ChooseEngine(len(c.Gates), nFaults, len(pats)).String()
	}

	simSpan, simDone := ro.stage(ro.Span, "simulate")

	results := make([]*shard.Result, plan.Total)
	attempt := func(ctx context.Context, j shard.SubJob) error {
		sp := simSpan.Child("shard")
		defer sp.End()
		sp.SetAttr("index", fmt.Sprintf("%d/%d", j.Index, j.Total))
		sp.SetAttr("key", j.Key)
		if opt.Store != nil {
			var cached shard.Result
			if err := opt.Store.Get(resultstore.KindShard, j.Key, &cached); err == nil {
				// A stored artifact that does not answer this sub-job
				// (corruption, a key scheme change) is treated as a miss
				// and overwritten by the fresh run below.
				if cached.Matches(j) == nil {
					sp.SetAttr("cache", "hit")
					results[j.Index] = &cached
					if opt.OnCacheHit != nil {
						opt.OnCacheHit(j)
					}
					env.agg.complete(j, &cached)
					return nil
				}
				sp.SetAttr("cache", "mismatch")
			}
		}
		res, err := runShardJob(ctx, env, opt.Key, j)
		if err != nil {
			return err
		}
		if opt.Store != nil {
			if _, err := opt.Store.Put(resultstore.KindShard, j.Key, res); err != nil {
				// Persistence failure costs the next run a re-simulation;
				// it must not fail this one.
				sp.SetAttr("store_error", err.Error())
			}
		}
		results[j.Index] = res
		env.agg.complete(j, res)
		return nil
	}
	sched := &shard.Scheduler{
		Workers:  opt.Workers,
		Retries:  opt.Retries,
		Timeout:  opt.Timeout,
		Draining: opt.Draining,
	}
	if err := sched.Run(ctx, plan.Jobs, attempt, opt.Events); err != nil {
		return nil, err
	}

	// ATPG is a sequential generator, not a fault-parallel sweep: it
	// runs once here, exactly as the unsharded campaign runs it.
	if req.ATPG {
		genOpt := uopt
		genOpt.LineStuckAt = req.Faults.StuckAt
		universe := core.Universe(c, genOpt)
		atpgOpt := atpg.Options{Engine: engine}
		if ro.Progress != nil {
			atpgOpt.Progress = func(p atpg.Progress) {
				ro.Progress(JobProgress{
					Stage:      "atpg",
					Class:      p.Class,
					Done:       p.Done,
					Total:      p.Total,
					Detected:   p.Covered,
					Faults:     p.Total,
					Untestable: p.Untestable,
					Vectors:    p.Vectors,
					Shards:     plan.Total,
					ShardsDone: plan.Total,
				})
			}
		}
		_, done := ro.stage(simSpan, "atpg")
		res, err := atpg.GenerateContext(ctx, c, universe, atpgOpt)
		if err != nil {
			return nil, err
		}
		done()
		rep.ATPG = &ATPGJSON{
			StuckAtTargeted:  res.StuckAtTargeted,
			StuckAtCovered:   res.StuckAtCovered,
			PolarityTargeted: res.PolarityTargeted,
			PolarityCovered:  res.PolarityCovered,
			CBSPTargeted:     res.CBSPTargeted,
			CBSPCovered:      res.CBSPCovered,
			CBDPTargeted:     res.CBDPTargeted,
			CBDPCovered:      res.CBDPCovered,
			Coverage:         res.Coverage(),
			TotalVectors:     res.Set.TotalVectors(),
			Untestable:       len(res.Untestable),
		}
	}
	simDone()

	mergeSpan, mergeDone := ro.stage(ro.Span, "merge")
	collect := func(pick func(*shard.Result) *shard.ClassResult) []*shard.ClassResult {
		out := make([]*shard.ClassResult, 0, len(results))
		for _, r := range results {
			if r != nil {
				out = append(out, pick(r))
			}
		}
		return out
	}
	var saCapture, trCapture *faultsim.SignatureCapture
	if env.saFaults != nil {
		parts := collect(func(r *shard.Result) *shard.ClassResult { return r.StuckAt })
		ds, err := shard.MergeDetections(env.saFaults, parts)
		if err != nil {
			return nil, err
		}
		rep.StuckAt = coverageJSON(faultsim.Summarise(ds))
		if wantDict {
			if saCapture, err = shard.MergeSignatures(len(env.saFaults), len(pats), parts, false); err != nil {
				return nil, err
			}
		}
	}
	if env.trFaults != nil {
		parts := collect(func(r *shard.Result) *shard.ClassResult { return r.TransistorV })
		ds, err := shard.MergeDetections(env.trFaults, parts)
		if err != nil {
			return nil, err
		}
		rep.Transistor = coverageJSON(faultsim.Summarise(ds))
		rep.Transistor.Engine = classEngine(len(env.trFaults))
		if wantDict && !req.Faults.IDDQ {
			if trCapture, err = shard.MergeSignatures(len(env.trFaults), len(pats), parts, false); err != nil {
				return nil, err
			}
		}
		if req.Faults.IDDQ {
			parts := collect(func(r *shard.Result) *shard.ClassResult { return r.TransistorIQ })
			ds, err := shard.MergeDetections(env.trFaults, parts)
			if err != nil {
				return nil, err
			}
			rep.TransistorIDDQ = coverageJSON(faultsim.Summarise(ds))
			rep.TransistorIDDQ.Engine = classEngine(len(env.trFaults))
			if wantDict {
				if trCapture, err = shard.MergeSignatures(len(env.trFaults), len(pats), parts, true); err != nil {
					return nil, err
				}
			}
		}
	}
	if env.bridges != nil {
		parts := collect(func(r *shard.Result) *shard.ClassResult { return r.Bridges })
		ds, err := shard.MergeBridgeDetections(env.bridges, parts)
		if err != nil {
			return nil, err
		}
		rep.Bridges = coverageJSON(faultsim.BridgeCoverage(ds))
		rep.Bridges.Engine = classEngine(len(env.bridges))
	}
	mergeSpan.SetAttr("shards", strconv.Itoa(plan.Total))
	mergeDone()

	if wantDict && (saCapture != nil || trCapture != nil) {
		dictSpan, done := ro.stage(ro.Span, "dictionary")
		d := &dict.Dictionary{Meta: dict.Meta{
			Key:       ro.DictKey,
			Circuit:   c.Name,
			Patterns:  len(pats),
			Seed:      req.Seed,
			Engine:    engine.String(),
			IDDQ:      req.Faults.IDDQ,
			CreatedAt: time.Now().UTC().Format(time.RFC3339),
		}}
		addEntries := func(faults []core.Fault, capture *faultsim.SignatureCapture, leak bool) {
			for i := range faults {
				e := dict.Entry{
					Fault: faults[i].String(),
					Out:   dict.FromWords(len(pats), capture.Out(i)),
					Leak:  dict.NewBitset(len(pats)),
				}
				if leak {
					e.Leak = dict.FromWords(len(pats), capture.Leak(i))
				}
				d.Entries = append(d.Entries, e)
			}
		}
		if saCapture != nil {
			addEntries(env.saFaults, saCapture, false)
		}
		if trCapture != nil {
			addEntries(env.trFaults, trCapture, req.Faults.IDDQ)
		}
		_, size, err := ro.Dict.Put(d)
		if err != nil {
			return nil, fmt.Errorf("dictionary: %w", err)
		}
		dictSpan.SetAttr("entries", strconv.Itoa(len(d.Entries)))
		dictSpan.SetAttr("bytes", strconv.FormatInt(size, 10))
		rep.Dictionary = &DictionaryJSON{
			Key:                 d.Meta.Key,
			Entries:             d.Meta.Entries,
			Patterns:            d.Meta.Patterns,
			IDDQ:                d.Meta.IDDQ,
			CompressedBytes:     size,
			Detected:            d.Meta.Resolution.Detected,
			Classes:             d.Meta.Resolution.Classes,
			UniquelyDiagnosable: d.Meta.Resolution.UniquelyDiagnosable,
		}
		done()
	}

	_, reportDone := ro.stage(ro.Span, "report")
	rep.Tables = buildTables(rep)
	reportDone()
	rep.ElapsedMS = time.Since(start).Milliseconds()
	return rep, nil
}

// runShardJob simulates one sub-job's fault slices on a private
// simulator (capture sinks and progress hooks are simulator state, so
// concurrent shards cannot share one).
func runShardJob(ctx context.Context, env *shardEnv, campaignKey string, j shard.SubJob) (*shard.Result, error) {
	sim := faultsim.New(env.c)
	sim.Engine = env.engine

	// Stage bookkeeping for the progress aggregator and the gate-eval
	// tally: the simulator reports cumulative gate evals per run, so the
	// shard total is the sum of each run's final snapshot.
	currentStage := ""
	var lastEvals, totalEvals uint64
	sim.Progress = func(p faultsim.Progress) {
		lastEvals = p.GateEvals
		env.agg.note(currentStage, j.Index, p)
	}
	endRun := func() {
		totalEvals += lastEvals
		lastEvals = 0
	}

	res := &shard.Result{Key: j.Key, CampaignKey: campaignKey, Index: j.Index, Total: j.Total}

	if env.saFaults != nil {
		currentStage = "stuck_at"
		faults := env.saFaults[j.StuckAt.Start:j.StuckAt.End]
		var capture *faultsim.SignatureCapture
		if j.Capture {
			capture = faultsim.NewSignatureCapture(len(faults), len(env.pats))
			sim.Signatures = capture
		}
		ds, err := sim.RunStuckAtContext(ctx, faults, env.pats)
		sim.Signatures = nil
		if err != nil {
			return nil, err
		}
		endRun()
		cr := &shard.ClassResult{Range: j.StuckAt, Dets: shard.EncodeDetections(ds)}
		if capture != nil {
			cr.Out = shard.EncodeSigRows(capture, false)
		}
		res.StuckAt = cr
	}

	if env.trFaults != nil {
		currentStage = "transistor"
		faults := env.trFaults[j.Transistor.Start:j.Transistor.End]
		var capture *faultsim.SignatureCapture
		if j.Capture && !env.iddq {
			capture = faultsim.NewSignatureCapture(len(faults), len(env.pats))
			sim.Signatures = capture
		}
		// Parallelism comes from running shards concurrently; inside a
		// shard the sweep stays single-worker to avoid oversubscription.
		ds, err := sim.RunTransistorParallel(ctx, faults, env.pats, false, 1)
		sim.Signatures = nil
		if err != nil {
			return nil, err
		}
		endRun()
		cr := &shard.ClassResult{Range: j.Transistor, Dets: shard.EncodeDetections(ds)}
		if capture != nil {
			cr.Out = shard.EncodeSigRows(capture, false)
		}
		res.TransistorV = cr

		if env.iddq {
			currentStage = "transistor_iddq"
			capture = nil
			if j.Capture {
				capture = faultsim.NewSignatureCapture(len(faults), len(env.pats))
				sim.Signatures = capture
			}
			ds, err := sim.RunTransistorParallel(ctx, faults, env.pats, true, 1)
			sim.Signatures = nil
			if err != nil {
				return nil, err
			}
			endRun()
			cr := &shard.ClassResult{Range: j.Transistor, Dets: shard.EncodeDetections(ds)}
			if capture != nil {
				cr.Out = shard.EncodeSigRows(capture, false)
				cr.Leak = shard.EncodeSigRows(capture, true)
			}
			res.TransistorIQ = cr
		}
	}

	if env.bridges != nil {
		currentStage = "bridges"
		brs := env.bridges[j.Bridges.Start:j.Bridges.End]
		ds, err := sim.RunBridgesObserved(ctx, brs, env.pats, env.iddq)
		if err != nil {
			return nil, err
		}
		endRun()
		res.Bridges = &shard.ClassResult{Range: j.Bridges, Dets: shard.EncodeBridgeDetections(ds)}
	}

	res.GateEvals = totalEvals
	return res, nil
}
