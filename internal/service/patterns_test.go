package service

import (
	"strings"
	"testing"

	"cpsinw/internal/bench"
)

// TestBuildPatternsZeroBudget is the regression test for the silent
// zero-pattern campaign: on a circuit too wide for exhaustive
// simulation, a non-positive budget must fall back to the documented
// default instead of producing an empty pattern set (which reported
// 0% coverage as a successful campaign).
func TestBuildPatternsZeroBudget(t *testing.T) {
	c := bench.ParityTree(20) // 20 inputs > exhaustiveInputLimit
	for _, n := range []int{0, -1, -100} {
		pats := BuildPatterns(c, n, 1)
		if len(pats) != DefaultPatternBudget {
			t.Errorf("BuildPatterns(n=%d) built %d patterns, want default %d", n, len(pats), DefaultPatternBudget)
		}
	}
	if got := len(BuildPatterns(c, 17, 1)); got != 17 {
		t.Errorf("explicit budget: %d patterns, want 17", got)
	}
	// Narrow circuits stay exhaustive regardless of the budget.
	if got := len(BuildPatterns(bench.C17(), 0, 1)); got != 32 {
		t.Errorf("c17 exhaustive: %d patterns, want 32", got)
	}
}

// TestNormalizeResolvesCorpusFamilies: the campaign request's
// benchmark field accepts the parameterized corpus names.
func TestNormalizeResolvesCorpusFamilies(t *testing.T) {
	req := CampaignRequest{
		Benchmark: "mult5",
		Faults:    FaultConfig{StuckAt: true},
	}
	_, c, err := req.normalize()
	if err != nil {
		t.Fatalf("normalize(mult5): %v", err)
	}
	if c.Name != "mult5" || c.Statistics().Gates < 80 {
		t.Fatalf("resolved %q with %d gates", c.Name, c.Statistics().Gates)
	}
	// Oversize parameters are rejected at normalize time, before any
	// job is queued.
	req.Benchmark = "decoder24"
	if _, _, err := req.normalize(); err == nil {
		t.Error("decoder24 must be rejected")
	}
	req.Benchmark = "nosuch"
	if _, _, err := req.normalize(); err == nil || !strings.Contains(err.Error(), "families") {
		t.Errorf("unknown benchmark error should list families, got: %v", err)
	}
}
