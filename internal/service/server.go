package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"

	"cpsinw/internal/dict"
)

// maxBodyBytes bounds a campaign submission (netlists are small; this
// is a denial-of-service guard, not a format limit).
const maxBodyBytes = 8 << 20

// Server is the HTTP front of the job manager.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer starts a manager with the config and wires the routes.
func NewServer(cfg ManagerConfig) *Server {
	s := &Server{mgr: NewManager(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/trace", s.handleTrace)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/dictionary", s.handleDictionary)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/resume", s.handleResume)
	s.mux.HandleFunc("GET /v1/resumable", s.handleResumable)
	s.mux.HandleFunc("POST /v1/diagnose", s.handleDiagnose)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the underlying job manager (metrics publication,
// direct submission in tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Close stops the worker pool.
func (s *Server) Close() { s.mgr.Close() }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	job, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := job.Status()
	w.Header().Set("Location", "/v1/campaigns/"+job.ID)
	code := http.StatusAccepted
	if st.CacheHit {
		code = http.StatusOK // answered immediately from the cache
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	rep, state, errMsg := job.Report()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, rep)
	case StateFailed:
		// Only an execution failure is a server error.
		writeStateError(w, http.StatusInternalServerError, state,
			fmt.Sprintf("campaign %s: %s", state, errMsg))
	case StateCanceled:
		// A canceled campaign has no report and never will; the job is
		// in a well-understood terminal state, so answer 409 with a
		// machine-readable state instead of pretending a server fault.
		writeStateError(w, http.StatusConflict, state,
			fmt.Sprintf("campaign %s: %s", state, errMsg))
	default:
		w.Header().Set("Retry-After", "1")
		writeStateError(w, http.StatusConflict, state, fmt.Sprintf("campaign still %s", state))
	}
}

// handleEvents streams job lifecycle and progress snapshots as
// server-sent events. Frames are named "state" (lifecycle, including
// the initial snapshot and the guaranteed terminal frame) or
// "progress"; every data payload is a full JobStatus JSON object. The
// stream always ends with a terminal-state frame.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	ch, cancel := s.mgr.Subscribe(job)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	writeEvent := func(name string, st JobStatus) {
		data, _ := json.Marshal(st)
		fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, data)
		fl.Flush()
	}

	st := job.Status()
	writeEvent("state", st)
	if st.State.Terminal() {
		return
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-ch:
			if !ok {
				// Terminal: the channel closed after the job finished;
				// the final state comes from the job itself so the
				// last frame is always terminal.
				writeEvent("state", job.Status())
				return
			}
			name := "state"
			if ev.Progress != nil && ev.State == StateRunning {
				name = "progress"
			}
			writeEvent(name, ev)
		}
	}
}

// handleTrace serves the job's span tree. Cache-answered jobs never
// execute, so they have no trace; evicted traces are also gone.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if _, ok := s.mgr.Get(id); !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	tree, ok := s.mgr.Tracer().Tree(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no trace recorded (cache hit, not started, or evicted)")
		return
	}
	writeJSON(w, http.StatusOK, tree)
}

// handleDictionary serves the fault-dictionary artifact metadata for a
// finished campaign. 404 means the job produced no dictionary (store
// not configured, or the job predates it); the artifact itself answers
// POST /v1/diagnose by key.
func (s *Server) handleDictionary(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	rep, state, errMsg := job.Report()
	switch state {
	case StateDone:
		if rep.Dictionary == nil {
			writeError(w, http.StatusNotFound, "campaign has no dictionary artifact (store not configured)")
			return
		}
		writeJSON(w, http.StatusOK, rep.Dictionary)
	case StateFailed:
		writeStateError(w, http.StatusInternalServerError, state,
			fmt.Sprintf("campaign %s: %s", state, errMsg))
	case StateCanceled:
		writeStateError(w, http.StatusConflict, state,
			fmt.Sprintf("campaign %s: %s", state, errMsg))
	default:
		w.Header().Set("Retry-After", "1")
		writeStateError(w, http.StatusConflict, state, fmt.Sprintf("campaign still %s", state))
	}
}

// handleResumable lists campaigns that were accepted but unfinished
// when a previous process stopped: their requests persist in the result
// store, and each entry resumes via POST /v1/campaigns/{id}/resume.
func (s *Server) handleResumable(w http.ResponseWriter, _ *http.Request) {
	sts := s.mgr.Resumable()
	if sts == nil {
		sts = []JobStatus{}
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"resumable": sts})
}

// handleResume resubmits a resumable campaign's stored request as a new
// job. Completed shards (or the whole report) already in the result
// store are reused, so resuming only pays for the missing work.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	if st := job.Status(); st.State != StateResumable {
		writeStateError(w, http.StatusConflict, st.State,
			fmt.Sprintf("campaign is %s, not resumable", st.State))
		return
	}
	nj, err := s.mgr.Resume(id)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := nj.Status()
	w.Header().Set("Location", "/v1/campaigns/"+nj.ID)
	code := http.StatusAccepted
	if st.CacheHit {
		code = http.StatusOK
	}
	writeJSON(w, code, st)
}

// handleDiagnose answers a diagnosis query from a stored dictionary:
// one bitset-AND pass over the artifact, zero simulation. The
// dictionary is addressed by content key (stable across restarts) or,
// as a convenience, by a live campaign ID.
func (s *Server) handleDiagnose(w http.ResponseWriter, r *http.Request) {
	store := s.mgr.DictStore()
	if store == nil {
		writeError(w, http.StatusServiceUnavailable, "dictionary store not configured (start the server with -dict-dir)")
		return
	}
	var req DiagnoseRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	key := req.Key
	if key != "" && !dict.ValidKey(key) {
		writeError(w, http.StatusBadRequest, "malformed dictionary key (want 64 lowercase hex digits)")
		return
	}
	if key == "" {
		if req.CampaignID == "" {
			writeError(w, http.StatusBadRequest, "one of key or campaign_id is required")
			return
		}
		job, ok := s.mgr.Get(req.CampaignID)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown campaign")
			return
		}
		key = job.Key
	} else if req.CampaignID != "" {
		writeError(w, http.StatusBadRequest, "key and campaign_id are mutually exclusive")
		return
	}
	if len(req.FailingPatterns) == 0 && len(req.LeakingPatterns) == 0 {
		writeError(w, http.StatusBadRequest, "at least one failing or leaking pattern index is required")
		return
	}
	d, err := store.Get(key)
	if err != nil {
		if os.IsNotExist(err) {
			writeError(w, http.StatusNotFound, "no dictionary artifact for key "+key)
			return
		}
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("dictionary load: %v", err))
		return
	}
	for _, i := range append(append([]int{}, req.FailingPatterns...), req.LeakingPatterns...) {
		if i < 0 || i >= d.Meta.Patterns {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("pattern index %d out of range (dictionary has %d patterns)", i, d.Meta.Patterns))
			return
		}
	}
	obs := dict.ObservationFrom(d.Meta.Patterns, req.FailingPatterns, req.LeakingPatterns)
	cands := d.Diagnose(obs, req.TopK)
	s.mgr.Metrics().DictDiagnoses.Inc()
	writeJSON(w, http.StatusOK, DiagnoseResponse{
		Key:        d.Meta.Key,
		Circuit:    d.Meta.Circuit,
		Patterns:   d.Meta.Patterns,
		IDDQ:       d.Meta.IDDQ,
		Candidates: cands,
	})
}

// handleHealthz reports real readiness: 200 while the manager accepts
// work, 503 once it is shutting down or the submission queue is
// saturated (a submission right now would be rejected).
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	depth, capacity := s.mgr.QueueDepth(), s.mgr.QueueCapacity()
	ready := !s.mgr.Closed() && depth < capacity
	status, code := "ok", http.StatusOK
	if !ready {
		status, code = "unavailable", http.StatusServiceUnavailable
	}
	writeJSON(w, code, map[string]interface{}{
		"status":         status,
		"ready":          ready,
		"workers":        s.mgr.Workers(),
		"queue_depth":    depth,
		"queue_capacity": capacity,
	})
}

// handleMetrics serves the Prometheus text exposition; the legacy flat
// JSON form remains available as /metrics?format=json.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, s.mgr.Metrics().Snapshot(s.mgr.QueueDepth(), s.mgr.Workers(), s.mgr.Cache()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.mgr.Registry().WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

// writeStateError is writeError with the job's machine-readable state.
func writeStateError(w http.ResponseWriter, code int, state JobState, msg string) {
	writeJSON(w, code, map[string]string{"error": msg, "state": string(state)})
}
