package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxBodyBytes bounds a campaign submission (netlists are small; this
// is a denial-of-service guard, not a format limit).
const maxBodyBytes = 8 << 20

// Server is the HTTP front of the job manager.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer starts a manager with the config and wires the routes.
func NewServer(cfg ManagerConfig) *Server {
	s := &Server{mgr: NewManager(cfg), mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/report", s.handleReport)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s
}

// Handler returns the route multiplexer.
func (s *Server) Handler() http.Handler { return s.mux }

// Manager exposes the underlying job manager (metrics publication,
// direct submission in tests).
func (s *Server) Manager() *Manager { return s.mgr }

// Close stops the worker pool.
func (s *Server) Close() { s.mgr.Close() }

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req CampaignRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request body: %v", err))
		return
	}
	job, err := s.mgr.Submit(req)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrClosed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	st := job.Status()
	w.Header().Set("Location", "/v1/campaigns/"+job.ID)
	code := http.StatusAccepted
	if st.CacheHit {
		code = http.StatusOK // answered immediately from the cache
	}
	writeJSON(w, code, st)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.mgr.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	rep, state, errMsg := job.Report()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, rep)
	case StateFailed, StateCanceled:
		writeError(w, http.StatusInternalServerError, fmt.Sprintf("campaign %s: %s", state, errMsg))
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Sprintf("campaign still %s", state))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]interface{}{
		"status":  "ok",
		"workers": s.mgr.Workers(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.mgr.Metrics().Snapshot(s.mgr.QueueDepth(), s.mgr.Workers(), s.mgr.Cache()))
}

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
