package circuit

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"cpsinw/internal/device"
)

func TestParseValue(t *testing.T) {
	cases := []struct {
		in   string
		want float64
	}{
		{"1", 1}, {"1.5", 1.5}, {"-2", -2},
		{"10k", 1e4}, {"1meg", 1e6}, {"2g", 2e9}, {"3t", 3e12},
		{"1m", 1e-3}, {"1u", 1e-6}, {"1n", 1e-9}, {"1p", 1e-12}, {"1f", 1e-15},
		{"100P", 1e-10}, {"2.5K", 2500},
	}
	for _, c := range cases {
		got, err := ParseValue(c.in)
		if err != nil {
			t.Errorf("ParseValue(%q): %v", c.in, err)
			continue
		}
		if math.Abs(got-c.want) > 1e-12*math.Abs(c.want) {
			t.Errorf("ParseValue(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "abc", "1x2", "nan", "inf"} {
		if _, err := ParseValue(bad); err == nil {
			t.Errorf("ParseValue(%q) accepted", bad)
		}
	}
}

func TestPulseWaveform(t *testing.T) {
	p := Pulse{V0: 0, V1: 1.2, Delay: 1e-9, Rise: 1e-10, Fall: 1e-10, Width: 5e-10, Period: 2e-9}
	if v := p.At(0); v != 0 {
		t.Errorf("At(0) = %v, want 0", v)
	}
	if v := p.At(1e-9 + 5e-11); math.Abs(v-0.6) > 1e-9 {
		t.Errorf("mid-rise = %v, want 0.6", v)
	}
	if v := p.At(1e-9 + 3e-10); v != 1.2 {
		t.Errorf("plateau = %v, want 1.2", v)
	}
	if v := p.At(1e-9 + 8e-10); v != 0 {
		t.Errorf("after fall = %v, want 0", v)
	}
	// Periodicity.
	if v1, v2 := p.At(1.05e-9), p.At(1.05e-9+2e-9); math.Abs(v1-v2) > 1e-9 {
		t.Errorf("period broken: %v vs %v", v1, v2)
	}
}

func TestPWLWaveform(t *testing.T) {
	w := PWL{T: []float64{0, 1, 2}, V: []float64{0, 10, 10}}
	for _, c := range []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 10}, {3, 10},
	} {
		if got := w.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL.At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPWLMonotonicProperty(t *testing.T) {
	// For a monotonically increasing PWL, At must be monotone too.
	w := PWL{T: []float64{0, 1, 2, 3}, V: []float64{0, 1, 4, 9}}
	f := func(a, b uint16) bool {
		t1 := 3 * float64(a) / 65535
		t2 := 3 * float64(b) / 65535
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		return w.At(t2) >= w.At(t1)-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseBasicNetlist(t *testing.T) {
	src := `
* a simple divider with a device
R1 in mid 10k
R2 mid 0 10K
C1 mid gnd 1f
Vdd in 0 1.2
Vpulse ctl 0 pulse(0 1.2 0 10p 10p 400p 1n)
M1 mid ctl vp vp 0 w=2 gos=cg break=0.25
.end
`
	var p Parser
	n, err := p.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Resistors) != 2 || len(n.Capacitors) != 1 || len(n.Sources) != 2 || len(n.Transistors) != 1 {
		t.Fatalf("element counts wrong: %+v", n)
	}
	m := n.TransistorByName("M1")
	if m == nil {
		t.Fatal("M1 missing")
	}
	if m.Width != 2 {
		t.Errorf("width = %v, want 2", m.Width)
	}
	if d := m.CompactModel().D; d.GOS != device.GOSAtCG || d.BreakSeverity != 0.25 {
		t.Errorf("defects = %+v", d)
	}
	if got := n.SourceByName("Vpulse").W.(Pulse); got.Period != 1e-9 {
		t.Errorf("pulse period = %v", got.Period)
	}
	// gnd alias collapsed to "0".
	if n.Capacitors[0].B != Ground {
		t.Errorf("gnd alias not collapsed: %q", n.Capacitors[0].B)
	}
	nodes := n.Nodes()
	want := []string{"ctl", "in", "mid", "vp"}
	if len(nodes) != len(want) {
		t.Fatalf("nodes = %v, want %v", nodes, want)
	}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("nodes = %v, want %v", nodes, want)
		}
	}
}

func TestParseSubcircuit(t *testing.T) {
	src := `
.subckt divider top bottom out
Ra top out 1k
Rb out bottom 1k
Cl out internal 1f
Rl internal bottom 1k
.ends
Vs in 0 1.0
Xd1 in 0 o1 divider
Xd2 in 0 o2 divider
.end
`
	var p Parser
	n, err := p.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Resistors) != 6 {
		t.Fatalf("want 6 resistors after expansion, got %d", len(n.Resistors))
	}
	// Local nodes must be distinct per instance.
	nodes := map[string]bool{}
	for _, s := range n.Nodes() {
		nodes[s] = true
	}
	if !nodes["Xd1.internal"] || !nodes["Xd2.internal"] {
		t.Errorf("instance-local nodes missing: %v", n.Nodes())
	}
	if nodes["internal"] {
		t.Error("unprefixed local node leaked")
	}
}

func TestParseContinuationAndComments(t *testing.T) {
	src := "R1 a b\n+ 10k ; trailing comment\n* full comment\nV1 a 0 1.0\n.end\n"
	var p Parser
	n, err := p.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if n.Resistors[0].Ohms != 1e4 {
		t.Errorf("continuation value = %v", n.Resistors[0].Ohms)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"R1 a b\n.end\n",               // missing value
		"Q1 a b c\n.end\n",             // unknown element
		"M1 a b c d\n.end\n",           // too few nodes
		"M1 a b c d e gos=q\n.end\n",   // bad gos
		"V1 a 0 pulse(1 2)\n.end\n",    // short pulse
		"X1 a b nothere\n.end\n",       // unknown subckt
		".subckt s a\nR1 a 0 1k\n",     // unterminated
		"R1 a b 1k\nR1 a b 2k\n.end\n", // duplicate name
		"C1 a 0 -1f\n.end\n",           // non-positive cap
	}
	for _, src := range bad {
		var p Parser
		if _, err := p.Parse(strings.NewReader(src)); err == nil {
			t.Errorf("accepted bad netlist:\n%s", src)
		}
	}
}

func TestWriteParseRoundTrip(t *testing.T) {
	n := &Netlist{Title: "round trip"}
	n.AddR("R1", "a", "b", 1234)
	n.AddC("C1", "b", Ground, 2e-15)
	n.AddV("V1", "a", Ground, DC(1.2))
	n.AddV("V2", "c", Ground, Pulse{V0: 0, V1: 1.2, Delay: 1e-10, Rise: 1e-11, Fall: 1e-11, Width: 4e-10, Period: 1e-9})
	n.AddV("V3", "d", Ground, PWL{T: []float64{0, 1e-9}, V: []float64{0, 1.2}})
	m := n.AddM("M1", "b", "c", "d", "d", Ground, device.Default().WithDefects(device.Defects{GOS: device.GOSAtPGS, BreakSeverity: 0.5}))
	m.Width = 3

	text := n.String()
	var p Parser
	back, err := p.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("round-trip parse failed: %v\n%s", err, text)
	}
	if len(back.Resistors) != 1 || len(back.Capacitors) != 1 || len(back.Sources) != 3 || len(back.Transistors) != 1 {
		t.Fatalf("round-trip element counts wrong:\n%s", text)
	}
	bm := back.TransistorByName("M1")
	if bm.Width != 3 || bm.CompactModel().D.GOS != device.GOSAtPGS || bm.CompactModel().D.BreakSeverity != 0.5 {
		t.Errorf("round-trip transistor lost attributes: %+v", bm)
	}
	p2 := back.SourceByName("V2").W.(Pulse)
	if p2.Width != 4e-10 || p2.Period != 1e-9 {
		t.Errorf("round-trip pulse lost fields: %+v", p2)
	}
}

func TestValidate(t *testing.T) {
	n := &Netlist{}
	n.AddR("R1", "a", Ground, 100)
	if err := n.Validate(); err != nil {
		t.Errorf("valid netlist rejected: %v", err)
	}
	n.AddM("M1", "a", "b", "c", "d", Ground, nil)
	if err := n.Validate(); err == nil {
		t.Error("nil transistor model accepted")
	}
}

func TestTransistorEffectiveWidth(t *testing.T) {
	tr := &Transistor{}
	if tr.EffectiveWidth() != 1 {
		t.Errorf("zero width should default to 1")
	}
	tr.Width = 2.5
	if tr.EffectiveWidth() != 2.5 {
		t.Errorf("width 2.5 not honoured")
	}
}
