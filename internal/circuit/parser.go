package circuit

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"cpsinw/internal/device"
)

// The netlist text format (hand-rolled; see the package comment):
//
//	* comment                       ; also "; comment"
//	.title <anything>
//	R<name> <a> <b> <value>
//	C<name> <a> <b> <value>
//	V<name> <p> <n> <dc value>
//	V<name> <p> <n> pulse(<v0> <v1> <delay> <rise> <fall> <width> [period])
//	V<name> <p> <n> pwl(<t1> <v1> <t2> <v2> ...)
//	M<name> <d> <cg> <pgs> <pgd> <s> [w=<mult>] [gos=pgs|cg|pgd] [gossize=<nm>]
//	        [break=<severity>] [floatpgs] [floatpgd]
//	.subckt <name> <pin> <pin> ...
//	.ends
//	X<name> <node> <node> ... <subckt-name>
//	.end
//
// Values accept engineering suffixes: f p n u m k meg g t.

type subckt struct {
	name  string
	pins  []string
	lines []string
}

// Parser reads the netlist format. A zero Parser is ready to use; set
// Model to override the device model given to parsed transistors.
type Parser struct {
	// Model is the base device model for transistors (device.Default()
	// when nil). Defect annotations derive per-instance models from it.
	Model *device.Model
}

// Parse reads a netlist from r.
func (p *Parser) Parse(r io.Reader) (*Netlist, error) {
	base := p.Model
	if base == nil {
		base = device.Default()
	}
	n := &Netlist{}
	subckts := map[string]*subckt{}

	var cur *subckt
	sc := bufio.NewScanner(r)
	lineno := 0
	var pending []string // continuation handling with "+"
	flush := func() (string, int) {
		if len(pending) == 0 {
			return "", 0
		}
		s := strings.Join(pending, " ")
		pending = nil
		return s, lineno
	}
	process := func(line string, ln int) error {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			return nil // blank or whitespace-only (e.g. empty continuations)
		}
		key := strings.ToLower(fields[0])
		switch {
		case key == ".subckt":
			if cur != nil {
				return fmt.Errorf("line %d: nested .subckt", ln)
			}
			if len(fields) < 2 {
				return fmt.Errorf("line %d: .subckt needs a name", ln)
			}
			cur = &subckt{name: strings.ToLower(fields[1]), pins: fields[2:]}
			return nil
		case key == ".ends":
			if cur == nil {
				return fmt.Errorf("line %d: .ends without .subckt", ln)
			}
			subckts[cur.name] = cur
			cur = nil
			return nil
		}
		if cur != nil {
			cur.lines = append(cur.lines, line)
			return nil
		}
		return p.element(n, base, subckts, line, ln, "")
	}

	for sc.Scan() {
		lineno++
		raw := sc.Text()
		if i := strings.IndexAny(raw, ";"); i >= 0 {
			raw = raw[:i]
		}
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "*") {
			continue
		}
		if strings.HasPrefix(line, "+") {
			pending = append(pending, strings.TrimSpace(line[1:]))
			continue
		}
		full, ln := flush()
		if full != "" {
			if err := process(full, ln); err != nil {
				return nil, err
			}
		}
		pending = []string{line}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	full, ln := flush()
	if full != "" {
		if err := process(full, ln); err != nil {
			return nil, err
		}
	}
	if cur != nil {
		return nil, fmt.Errorf("circuit: unterminated .subckt %q", cur.name)
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	return n, nil
}

// element parses one element line into n. namePrefix is applied to the
// element name only (subcircuit instance paths); node fields must already
// be fully resolved by the caller.
func (p *Parser) element(n *Netlist, base *device.Model, subckts map[string]*subckt, line string, ln int, namePrefix string) error {
	fields := strings.Fields(line)
	name := fields[0]
	lower := strings.ToLower(name)
	dispatch := dispatchKey(lower, fields, subckts)
	mangle := func(s string) string {
		if namePrefix == "" {
			return s
		}
		return namePrefix + "." + s
	}
	switch {
	case lower == ".end" || lower == ".title":
		return nil
	case strings.HasPrefix(lower, ".title"):
		return nil
	case dispatch[0] == 'r':
		if len(fields) != 4 {
			return fmt.Errorf("line %d: R element needs 3 operands", ln)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		n.AddR(mangle(name), mapNode(fields[1]), mapNode(fields[2]), v)
	case dispatch[0] == 'c':
		if len(fields) != 4 {
			return fmt.Errorf("line %d: C element needs 3 operands", ln)
		}
		v, err := ParseValue(fields[3])
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		n.AddC(mangle(name), mapNode(fields[1]), mapNode(fields[2]), v)
	case dispatch[0] == 'v':
		if len(fields) < 4 {
			return fmt.Errorf("line %d: V element needs operands", ln)
		}
		w, err := parseWaveform(strings.Join(fields[3:], " "))
		if err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
		n.AddV(mangle(name), mapNode(fields[1]), mapNode(fields[2]), w)
	case dispatch[0] == 'm':
		if len(fields) < 6 {
			return fmt.Errorf("line %d: M element needs 5 nodes", ln)
		}
		model := base
		var def device.Defects
		width := 1.0
		for _, opt := range fields[6:] {
			o := strings.ToLower(opt)
			switch {
			case o == "floatpgs":
				def.FloatPGS = true
			case o == "floatpgd":
				def.FloatPGD = true
			case strings.HasPrefix(o, "w="):
				v, err := ParseValue(o[2:])
				if err != nil {
					return fmt.Errorf("line %d: %v", ln, err)
				}
				width = v
			case strings.HasPrefix(o, "gos="):
				switch o[4:] {
				case "pgs":
					def.GOS = device.GOSAtPGS
				case "cg":
					def.GOS = device.GOSAtCG
				case "pgd":
					def.GOS = device.GOSAtPGD
				default:
					return fmt.Errorf("line %d: unknown gos location %q", ln, o[4:])
				}
			case strings.HasPrefix(o, "gossize="):
				v, err := ParseValue(o[8:])
				if err != nil {
					return fmt.Errorf("line %d: %v", ln, err)
				}
				def.GOSSize = v
			case strings.HasPrefix(o, "break="):
				v, err := ParseValue(o[6:])
				if err != nil {
					return fmt.Errorf("line %d: %v", ln, err)
				}
				def.BreakSeverity = v
			default:
				return fmt.Errorf("line %d: unknown transistor option %q", ln, opt)
			}
		}
		if def.Defective() {
			model = model.WithDefects(def)
		}
		t := n.AddM(mangle(name),
			mapNode(fields[1]), mapNode(fields[2]),
			mapNode(fields[3]), mapNode(fields[4]),
			mapNode(fields[5]), model)
		t.Width = width
	case dispatch[0] == 'x':
		if len(fields) < 2 {
			return fmt.Errorf("line %d: X element needs a subcircuit name", ln)
		}
		sub, ok := subckts[strings.ToLower(fields[len(fields)-1])]
		if !ok {
			return fmt.Errorf("line %d: unknown subcircuit %q", ln, fields[len(fields)-1])
		}
		actuals := fields[1 : len(fields)-1]
		if len(actuals) != len(sub.pins) {
			return fmt.Errorf("line %d: subcircuit %s wants %d pins, got %d", ln, sub.name, len(sub.pins), len(actuals))
		}
		binding := map[string]string{}
		for i, pin := range sub.pins {
			binding[pin] = mapNode(actuals[i])
		}
		inst := mangle(name)
		for _, sl := range sub.lines {
			if err := p.elementBound(n, base, subckts, sl, ln, inst, binding); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("line %d: unknown element %q", ln, name)
	}
	return nil
}

// elementBound expands one subcircuit body line with the pin binding:
// bound pins map to the actual nodes, local nodes get the instance prefix.
// Only the node positions of each element type are rewritten, so waveform
// arguments and options pass through untouched.
func (p *Parser) elementBound(n *Netlist, base *device.Model, subckts map[string]*subckt, line string, ln int, prefix string, binding map[string]string) error {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil
	}
	lower := strings.ToLower(fields[0])
	dispatch := dispatchKey(lower, fields, subckts)
	var nodeEnd int
	switch dispatch[0] {
	case 'r', 'c', 'v':
		nodeEnd = 3
	case 'm':
		nodeEnd = 6
	case 'x':
		nodeEnd = len(fields) - 1
	case '.':
		nodeEnd = 1
	default:
		return fmt.Errorf("line %d: unknown element %q in subcircuit", ln, fields[0])
	}
	if nodeEnd > len(fields) {
		return fmt.Errorf("line %d: element %q is missing nodes", ln, fields[0])
	}
	resolve := func(node string) string {
		if node == Ground || strings.EqualFold(node, "gnd") {
			return Ground
		}
		if actual, ok := binding[node]; ok {
			return actual
		}
		return prefix + "." + node
	}
	for i := 1; i < nodeEnd; i++ {
		fields[i] = resolve(fields[i])
	}
	return p.element(n, base, subckts, strings.Join(fields, " "), ln, prefix)
}

// dispatchKey returns the lowercased name segment whose first letter
// selects the element type. Elements normally dispatch on the name's
// first letter, but subcircuit expansion mangles names with the
// instance path ("x1.r1"), so written-back flat netlists carry
// x-prefixed dotted names whose type lives in the last path segment.
// A line whose last field names a known subcircuit is always an
// instance (dotted instance names like "x1.a" or "x1.main" stay
// valid); otherwise dotted segments naming a concrete element
// (r/c/v/m) re-dispatch as that element.
func dispatchKey(lower string, fields []string, subckts map[string]*subckt) string {
	if lower[0] != 'x' {
		return lower
	}
	if _, ok := subckts[strings.ToLower(fields[len(fields)-1])]; ok {
		return lower
	}
	dot := strings.LastIndexByte(lower, '.')
	if dot < 0 || dot+1 >= len(lower) {
		return lower
	}
	switch lower[dot+1] {
	case 'r', 'c', 'v', 'm':
		return lower[dot+1:]
	}
	return lower
}

// mapNode resolves a node reference: ground aliases collapse and everything
// else passes through (subcircuit expansion uses its own resolver).
func mapNode(node string) string {
	if node == Ground || strings.EqualFold(node, "gnd") {
		return Ground
	}
	return node
}

// parseWaveform parses a source specification: a bare number (DC), an
// explicit "dc <v>", "pulse(...)" or "pwl(...)".
func parseWaveform(spec string) (Waveform, error) {
	s := strings.TrimSpace(spec)
	l := strings.ToLower(s)
	switch {
	case strings.HasPrefix(l, "dc "):
		v, err := ParseValue(strings.TrimSpace(s[3:]))
		if err != nil {
			return nil, err
		}
		return DC(v), nil
	case strings.HasPrefix(l, "pulse(") && strings.HasSuffix(l, ")"):
		args, err := parseArgs(s[len("pulse(") : len(s)-1])
		if err != nil {
			return nil, err
		}
		if len(args) < 6 || len(args) > 7 {
			return nil, fmt.Errorf("pulse() wants 6 or 7 arguments, got %d", len(args))
		}
		pu := Pulse{V0: args[0], V1: args[1], Delay: args[2], Rise: args[3], Fall: args[4], Width: args[5]}
		if len(args) == 7 {
			pu.Period = args[6]
		}
		return pu, nil
	case strings.HasPrefix(l, "pwl(") && strings.HasSuffix(l, ")"):
		args, err := parseArgs(s[len("pwl(") : len(s)-1])
		if err != nil {
			return nil, err
		}
		if len(args) == 0 || len(args)%2 != 0 {
			return nil, fmt.Errorf("pwl() wants time/value pairs")
		}
		w := PWL{}
		for i := 0; i < len(args); i += 2 {
			w.T = append(w.T, args[i])
			w.V = append(w.V, args[i+1])
		}
		for i := 1; i < len(w.T); i++ {
			if w.T[i] < w.T[i-1] {
				return nil, fmt.Errorf("pwl() times must ascend")
			}
		}
		return w, nil
	default:
		v, err := ParseValue(s)
		if err != nil {
			return nil, fmt.Errorf("unrecognised waveform %q", spec)
		}
		return DC(v), nil
	}
}

func parseArgs(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Fields(strings.ReplaceAll(s, ",", " ")) {
		v, err := ParseValue(f)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseValue parses a number with optional SPICE engineering suffix
// (f, p, n, u, m, k, meg, g, t; case-insensitive).
func ParseValue(s string) (float64, error) {
	l := strings.ToLower(strings.TrimSpace(s))
	if l == "" {
		return 0, fmt.Errorf("empty value")
	}
	mult := 1.0
	switch {
	case strings.HasSuffix(l, "meg"):
		mult, l = 1e6, l[:len(l)-3]
	case strings.HasSuffix(l, "f"):
		mult, l = 1e-15, l[:len(l)-1]
	case strings.HasSuffix(l, "p"):
		mult, l = 1e-12, l[:len(l)-1]
	case strings.HasSuffix(l, "n"):
		mult, l = 1e-9, l[:len(l)-1]
	case strings.HasSuffix(l, "u"):
		mult, l = 1e-6, l[:len(l)-1]
	case strings.HasSuffix(l, "m"):
		mult, l = 1e-3, l[:len(l)-1]
	case strings.HasSuffix(l, "k"):
		mult, l = 1e3, l[:len(l)-1]
	case strings.HasSuffix(l, "g"):
		mult, l = 1e9, l[:len(l)-1]
	case strings.HasSuffix(l, "t"):
		mult, l = 1e12, l[:len(l)-1]
	}
	v, err := strconv.ParseFloat(l, 64)
	if err != nil {
		return 0, fmt.Errorf("bad value %q", s)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, fmt.Errorf("non-finite value %q", s)
	}
	return v * mult, nil
}
