// Package circuit defines the transistor-level circuit representation used
// by the analog simulator, together with a hand-rolled SPICE-like netlist
// text format (parser and writer). There is no public netlist
// infrastructure for controllable-polarity devices, so the format is our
// own; it supports resistors, capacitors, independent voltage sources with
// pulse/PWL waveforms, TIG-SiNWFET instances with defect annotations, and
// flat subcircuit expansion.
package circuit

import (
	"fmt"
	"sort"

	"cpsinw/internal/device"
)

// Ground is the canonical name of the reference node.
const Ground = "0"

// Waveform describes the time behaviour of an independent voltage source.
type Waveform interface {
	// At returns the source voltage at time t (seconds).
	At(t float64) float64
}

// DC is a constant source.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// Pulse is a periodic trapezoidal pulse, mirroring the SPICE PULSE source:
// V0 before Delay, then rise to V1 over Rise, hold for Width, fall over
// Fall, repeat with Period (Period = 0 means single pulse).
type Pulse struct {
	V0, V1                   float64
	Delay, Rise, Fall, Width float64
	Period                   float64
}

// At implements Waveform.
func (p Pulse) At(t float64) float64 {
	t -= p.Delay
	if t < 0 {
		return p.V0
	}
	if p.Period > 0 {
		cycles := int(t / p.Period)
		t -= float64(cycles) * p.Period
	}
	switch {
	case t < p.Rise:
		if p.Rise == 0 {
			return p.V1
		}
		return p.V0 + (p.V1-p.V0)*t/p.Rise
	case t < p.Rise+p.Width:
		return p.V1
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall == 0 {
			return p.V0
		}
		return p.V1 + (p.V0-p.V1)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V0
	}
}

// PWL is a piecewise-linear waveform given as (time, value) breakpoints in
// ascending time order; the value holds flat outside the range.
type PWL struct {
	T []float64
	V []float64
}

// At implements Waveform.
func (w PWL) At(t float64) float64 {
	n := len(w.T)
	if n == 0 {
		return 0
	}
	if t <= w.T[0] {
		return w.V[0]
	}
	if t >= w.T[n-1] {
		return w.V[n-1]
	}
	i := sort.SearchFloat64s(w.T, t)
	if i > 0 && w.T[i] != t {
		i--
	}
	if i >= n-1 {
		return w.V[n-1]
	}
	dt := w.T[i+1] - w.T[i]
	if dt <= 0 {
		return w.V[i+1]
	}
	return w.V[i] + (w.V[i+1]-w.V[i])*(t-w.T[i])/dt
}

// Resistor is a two-terminal linear resistor.
type Resistor struct {
	Name string
	A, B string
	Ohms float64
}

// Capacitor is a two-terminal linear capacitor.
type Capacitor struct {
	Name   string
	A, B   string
	Farads float64
}

// VSource is an independent voltage source from P to N (VP - VN = value).
type VSource struct {
	Name string
	P, N string
	W    Waveform
}

// DeviceModel is the electrical behaviour a transistor instance needs for
// simulation: the drain current and (for defective devices) the DC gate
// currents. *device.Model implements it directly; lut.Device implements
// it through a characterisation table, mirroring the paper's Verilog-A
// table-model flow.
type DeviceModel interface {
	ID(device.Bias) float64
	GateCurrents(device.Bias) (icg, ipgs, ipgd float64)
}

// Transistor is a TIG-SiNWFET instance. Terminal order follows the device:
// drain, control gate, source-side polarity gate, drain-side polarity
// gate, source. The Model carries the electrical behaviour (compact model
// or characterisation table).
type Transistor struct {
	Name               string
	D, CG, PGS, PGD, S string
	Model              DeviceModel
	// Width multiplies the device currents (parallel nanowires).
	Width float64
}

// CompactModel returns the underlying compact model when the instance
// uses one (nil for table models).
func (t *Transistor) CompactModel() *device.Model {
	m, _ := t.Model.(*device.Model)
	return m
}

// EffectiveWidth returns the width multiplier, defaulting to 1.
func (t *Transistor) EffectiveWidth() float64 {
	if t.Width <= 0 {
		return 1
	}
	return t.Width
}

// Netlist is a flat circuit: named elements over named nodes.
type Netlist struct {
	Title       string
	Resistors   []*Resistor
	Capacitors  []*Capacitor
	Sources     []*VSource
	Transistors []*Transistor
}

// AddR appends a resistor and returns it.
func (n *Netlist) AddR(name, a, b string, ohms float64) *Resistor {
	r := &Resistor{Name: name, A: a, B: b, Ohms: ohms}
	n.Resistors = append(n.Resistors, r)
	return r
}

// AddC appends a capacitor and returns it.
func (n *Netlist) AddC(name, a, b string, f float64) *Capacitor {
	c := &Capacitor{Name: name, A: a, B: b, Farads: f}
	n.Capacitors = append(n.Capacitors, c)
	return c
}

// AddV appends a voltage source and returns it.
func (n *Netlist) AddV(name, p, q string, w Waveform) *VSource {
	v := &VSource{Name: name, P: p, N: q, W: w}
	n.Sources = append(n.Sources, v)
	return v
}

// AddM appends a transistor and returns it.
func (n *Netlist) AddM(name, d, cg, pgs, pgd, s string, m DeviceModel) *Transistor {
	t := &Transistor{Name: name, D: d, CG: cg, PGS: pgs, PGD: pgd, S: s, Model: m, Width: 1}
	n.Transistors = append(n.Transistors, t)
	return t
}

// Nodes returns the sorted set of node names excluding ground.
func (n *Netlist) Nodes() []string {
	set := map[string]bool{}
	add := func(names ...string) {
		for _, s := range names {
			if s != Ground {
				set[s] = true
			}
		}
	}
	for _, r := range n.Resistors {
		add(r.A, r.B)
	}
	for _, c := range n.Capacitors {
		add(c.A, c.B)
	}
	for _, v := range n.Sources {
		add(v.P, v.N)
	}
	for _, t := range n.Transistors {
		add(t.D, t.CG, t.PGS, t.PGD, t.S)
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// SourceByName returns the voltage source with the given name, or nil.
func (n *Netlist) SourceByName(name string) *VSource {
	for _, v := range n.Sources {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// TransistorByName returns the transistor with the given name, or nil.
func (n *Netlist) TransistorByName(name string) *Transistor {
	for _, t := range n.Transistors {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Validate checks structural sanity: unique element names, positive
// resistances and capacitances, transistor models present.
func (n *Netlist) Validate() error {
	seen := map[string]bool{}
	uniq := func(name string) error {
		if seen[name] {
			return fmt.Errorf("circuit: duplicate element name %q", name)
		}
		seen[name] = true
		return nil
	}
	for _, r := range n.Resistors {
		if err := uniq(r.Name); err != nil {
			return err
		}
		if r.Ohms <= 0 {
			return fmt.Errorf("circuit: resistor %s has non-positive value", r.Name)
		}
	}
	for _, c := range n.Capacitors {
		if err := uniq(c.Name); err != nil {
			return err
		}
		if c.Farads <= 0 {
			return fmt.Errorf("circuit: capacitor %s has non-positive value", c.Name)
		}
	}
	for _, v := range n.Sources {
		if err := uniq(v.Name); err != nil {
			return err
		}
		if v.W == nil {
			return fmt.Errorf("circuit: source %s has no waveform", v.Name)
		}
	}
	for _, t := range n.Transistors {
		if err := uniq(t.Name); err != nil {
			return err
		}
		if t.Model == nil {
			return fmt.Errorf("circuit: transistor %s has no model", t.Name)
		}
	}
	return nil
}
