package circuit

import (
	"strings"
	"testing"
)

// FuzzParseNetlist asserts that every analog netlist the parser accepts
// survives write -> parse -> write unchanged: no panics on arbitrary
// input, a re-parseable text form, a stable fixpoint, and identical
// element counts. Seed corpus: testdata/fuzz/FuzzParseNetlist.
// TestHierarchicalNameDispatch locks the dotted-name dispatch rule:
// written-back expanded elements ("x1.r1") re-parse as their own
// element type without renaming — even next to a top-level element
// whose name would collide under naive prefixing — while dotted X
// instance names whose last segment is not an element letter still
// expand as subcircuit instances.
func TestHierarchicalNameDispatch(t *testing.T) {
	var p Parser
	src := ".subckt s a\nr1 a 0 1k\n.ends\nx1 n s\nrx1.r1 n 0 2k\nV1 n 0 1.0\n.end\n"
	n, err := p.Parse(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	text := n.String()
	n2, err := p.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, text)
	}
	if len(n2.Resistors) != 2 || n2.Resistors[0].Name != "x1.r1" || n2.Resistors[1].Name != "rx1.r1" {
		t.Fatalf("resistor names drifted: %+v", n2.Resistors)
	}

	// Dotted instance names stay instances — even when the last segment
	// starts with an element letter ("main" ~ M), because the line's
	// last field names a known subcircuit.
	for _, inst := range []string{"x1.a", "x1.main"} {
		dotted := ".subckt inv in out\nMp out in 0 0 vdd\n.ends\nVdd vdd 0 1.2\n" +
			inst + " b c inv\nRl c 0 1k\n.end\n"
		nd, err := p.Parse(strings.NewReader(dotted))
		if err != nil {
			t.Fatalf("dotted instance name %q rejected: %v", inst, err)
		}
		if len(nd.Transistors) != 1 || nd.Transistors[0].Name != inst+".Mp" {
			t.Fatalf("dotted instance %q expansion drifted: %+v", inst, nd.Transistors)
		}
	}
}

func FuzzParseNetlist(f *testing.F) {
	f.Add("* inverter\nVdd vdd 0 1.2\nVin in 0 pulse(0 1.2 10p 10p 10p 200p 500p)\nM1 out in 0 0 vdd\nR1 out 0 10k\n.end\n")
	f.Add("Vs a 0 dc 1.2\nC1 a 0 1f\nR1 a b 1meg\nRload b 0 2.2k\n.end\n")
	f.Add("V1 n1 0 pwl(0 0 1n 1.2)\nM1 n2 n1 0 vdd gnd w=2 gos=cg gossize=5n\n.end\n")
	f.Add(".subckt inv in out\nMp out in 0 0 vdd\nMn out in vdd vdd 0\n.ends\nVdd vdd 0 1.2\nVin a 0 0.6\nX1 a y inv\nRl y 0 100k\n.end\n")
	f.Add("* continuation\nV1 p 0\n+ pulse(0 1 0 1p\n+ 1p 5p 10p)\nC2 p 0 2p\n.end\n")
	f.Fuzz(func(t *testing.T, src string) {
		var p Parser
		n, err := p.Parse(strings.NewReader(src))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		text := n.String()
		n2, err := p.Parse(strings.NewReader(text))
		if err != nil {
			t.Fatalf("round-trip parse: %v\nwritten:\n%s", err, text)
		}
		if text2 := n2.String(); text2 != text {
			t.Fatalf("unstable round trip:\nfirst:\n%s\nsecond:\n%s", text, text2)
		}
		if len(n2.Resistors) != len(n.Resistors) || len(n2.Capacitors) != len(n.Capacitors) ||
			len(n2.Sources) != len(n.Sources) || len(n2.Transistors) != len(n.Transistors) {
			t.Fatalf("element counts drift: R %d->%d C %d->%d V %d->%d M %d->%d",
				len(n.Resistors), len(n2.Resistors), len(n.Capacitors), len(n2.Capacitors),
				len(n.Sources), len(n2.Sources), len(n.Transistors), len(n2.Transistors))
		}
	})
}
