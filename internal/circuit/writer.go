package circuit

import (
	"fmt"
	"io"
	"strings"

	"cpsinw/internal/device"
)

// Write emits the netlist in the package's text format. The output parses
// back into an equivalent netlist (round-trip safe for all element kinds).
func (n *Netlist) Write(w io.Writer) error {
	var b strings.Builder
	if n.Title != "" {
		fmt.Fprintf(&b, "* %s\n", n.Title)
	}
	for _, r := range n.Resistors {
		fmt.Fprintf(&b, "%s %s %s %s\n", r.Name, r.A, r.B, FormatValue(r.Ohms))
	}
	for _, c := range n.Capacitors {
		fmt.Fprintf(&b, "%s %s %s %s\n", c.Name, c.A, c.B, FormatValue(c.Farads))
	}
	for _, v := range n.Sources {
		fmt.Fprintf(&b, "%s %s %s %s\n", v.Name, v.P, v.N, formatWaveform(v.W))
	}
	for _, t := range n.Transistors {
		fmt.Fprintf(&b, "%s %s %s %s %s %s%s\n", t.Name, t.D, t.CG, t.PGS, t.PGD, t.S, formatDefects(t))
	}
	b.WriteString(".end\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the netlist text.
func (n *Netlist) String() string {
	var b strings.Builder
	if err := n.Write(&b); err != nil {
		return ""
	}
	return b.String()
}

func formatDefects(t *Transistor) string {
	var parts []string
	if t.Width > 0 && t.Width != 1 {
		parts = append(parts, fmt.Sprintf("w=%s", FormatValue(t.Width)))
	}
	cm := t.CompactModel()
	if cm == nil {
		return joinOpts(parts)
	}
	d := cm.D
	switch d.GOS {
	case device.GOSAtPGS:
		parts = append(parts, "gos=pgs")
	case device.GOSAtCG:
		parts = append(parts, "gos=cg")
	case device.GOSAtPGD:
		parts = append(parts, "gos=pgd")
	}
	if d.GOSSize != 0 {
		parts = append(parts, fmt.Sprintf("gossize=%s", FormatValue(d.GOSSize)))
	}
	if d.BreakSeverity > 0 {
		parts = append(parts, fmt.Sprintf("break=%s", FormatValue(d.BreakSeverity)))
	}
	if d.FloatPGS {
		parts = append(parts, "floatpgs")
	}
	if d.FloatPGD {
		parts = append(parts, "floatpgd")
	}
	return joinOpts(parts)
}

func joinOpts(parts []string) string {
	if len(parts) == 0 {
		return ""
	}
	return " " + strings.Join(parts, " ")
}

func formatWaveform(w Waveform) string {
	switch v := w.(type) {
	case DC:
		return FormatValue(float64(v))
	case Pulse:
		s := fmt.Sprintf("pulse(%s %s %s %s %s %s",
			FormatValue(v.V0), FormatValue(v.V1), FormatValue(v.Delay),
			FormatValue(v.Rise), FormatValue(v.Fall), FormatValue(v.Width))
		if v.Period > 0 {
			s += " " + FormatValue(v.Period)
		}
		return s + ")"
	case PWL:
		var parts []string
		for i := range v.T {
			parts = append(parts, FormatValue(v.T[i]), FormatValue(v.V[i]))
		}
		return "pwl(" + strings.Join(parts, " ") + ")"
	default:
		return "0"
	}
}

// FormatValue renders a float without engineering suffixes, in a form
// ParseValue accepts.
func FormatValue(v float64) string {
	return fmt.Sprintf("%.12g", v)
}
