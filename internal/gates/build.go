package gates

import (
	"fmt"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
)

// PGTerminal selects one of the two polarity gates of a transistor.
type PGTerminal int

const (
	PGSTerminal PGTerminal = iota
	PGDTerminal
)

// String names the terminal as in the paper's figures.
func (p PGTerminal) String() string {
	if p == PGSTerminal {
		return "PGS"
	}
	return "PGD"
}

// FloatPG describes an open polarity-gate defect for the analog builder:
// the selected terminal of the named transistor is detached from its net
// and driven at Vcut (the paper's floating-node voltage sweep, Figure 5).
type FloatPG struct {
	Transistor string
	Terminal   PGTerminal
	Vcut       float64
}

// PGBridge describes the polarity-bridge defect of the paper's section
// V-B at the analog level: both polarity terminals of the named
// transistor are shorted to a supply rail. ToVdd true models stuck-at
// n-type (PGs bridged to VDD); false models stuck-at p-type (to GND).
type PGBridge struct {
	Transistor string
	ToVdd      bool
}

// BuildOptions configures BuildAnalog.
type BuildOptions struct {
	// Model is the base device model (device.Default() when nil).
	Model *device.Model
	// Load is the output load capacitance (F). Zero selects an FO4-style
	// default derived from the model's gate capacitance.
	Load float64
	// Inputs drives each gate input; missing entries default to DC 0.
	// Complemented literals required by DP gates are generated as ideal
	// complementary sources, as the paper's test setup assumes.
	Inputs []circuit.Waveform
	// Defects injects device defects per transistor name.
	Defects map[string]device.Defects
	// Floats lists open polarity-gate injections.
	Floats []FloatPG
	// Bridges lists polarity-bridge injections (stuck-at n/p-type).
	Bridges []PGBridge
}

// Node names used by the builder.
const (
	NodeOut = "out"
	NodeVdd = "vdd"
)

// InputNode returns the node name of input i ("a", "b", ...).
func InputNode(i int) string { return string(rune('a' + i)) }

// InputNodeN returns the node name of the complemented input i.
func InputNodeN(i int) string { return InputNode(i) + "_n" }

// Complement returns the logical complement of a waveform with respect to
// vdd (DC, Pulse and PWL are supported).
func Complement(w circuit.Waveform, vdd float64) circuit.Waveform {
	switch v := w.(type) {
	case circuit.DC:
		return circuit.DC(vdd - float64(v))
	case circuit.Pulse:
		return circuit.Pulse{
			V0: vdd - v.V0, V1: vdd - v.V1,
			Delay: v.Delay, Rise: v.Rise, Fall: v.Fall, Width: v.Width, Period: v.Period,
		}
	case circuit.PWL:
		out := circuit.PWL{T: append([]float64(nil), v.T...), V: make([]float64, len(v.V))}
		for i, x := range v.V {
			out.V[i] = vdd - x
		}
		return out
	default:
		return circuit.DC(vdd)
	}
}

// BuildAnalog lowers a gate spec to a transistor-level netlist ready for
// the spice engine: ideal input sources (with complements where needed),
// a VDD source, the transistor network, parasitic terminal capacitances
// and the output load.
func BuildAnalog(spec *Spec, opt BuildOptions) (*circuit.Netlist, error) {
	model := opt.Model
	if model == nil {
		model = device.Default()
	}
	vdd := model.P.VDD

	n := &circuit.Netlist{Title: spec.Name()}
	n.AddV("VDD", NodeVdd, circuit.Ground, circuit.DC(vdd))

	neededN := make([]bool, spec.NIn) // complemented literal used
	for _, t := range spec.Transistors {
		for _, s := range []Sig{t.D, t.CG, t.PGS, t.PGD, t.S} {
			if s.K == SigInN {
				neededN[s.In] = true
			}
		}
	}
	for i := 0; i < spec.NIn; i++ {
		var w circuit.Waveform = circuit.DC(0)
		if i < len(opt.Inputs) && opt.Inputs[i] != nil {
			w = opt.Inputs[i]
		}
		n.AddV(fmt.Sprintf("VIN%d", i), InputNode(i), circuit.Ground, w)
		if neededN[i] {
			n.AddV(fmt.Sprintf("VIN%dN", i), InputNodeN(i), circuit.Ground, Complement(w, vdd))
		}
	}

	floats := map[string]map[PGTerminal]float64{}
	for _, f := range opt.Floats {
		if spec.Transistor(f.Transistor) == nil {
			return nil, fmt.Errorf("gates: float on unknown transistor %q", f.Transistor)
		}
		if floats[f.Transistor] == nil {
			floats[f.Transistor] = map[PGTerminal]float64{}
		}
		floats[f.Transistor][f.Terminal] = f.Vcut
	}
	bridges := map[string]bool{} // transistor -> ToVdd
	bridged := map[string]bool{}
	for _, b := range opt.Bridges {
		if spec.Transistor(b.Transistor) == nil {
			return nil, fmt.Errorf("gates: bridge on unknown transistor %q", b.Transistor)
		}
		bridges[b.Transistor] = b.ToVdd
		bridged[b.Transistor] = true
	}

	nodeOf := func(s Sig) string {
		switch s.K {
		case SigGnd:
			return circuit.Ground
		case SigVdd:
			return NodeVdd
		case SigIn:
			return InputNode(s.In)
		case SigInN:
			return InputNodeN(s.In)
		case SigOut:
			return NodeOut
		case SigInternal:
			return "x_" + s.Node
		}
		return circuit.Ground
	}

	for _, t := range spec.Transistors {
		m := model
		if d, ok := opt.Defects[t.Name]; ok && d.Defective() {
			m = model.WithDefects(d)
		}
		pgs := nodeOf(t.PGS)
		pgd := nodeOf(t.PGD)
		if bridged[t.Name] {
			rail := circuit.Ground
			if bridges[t.Name] {
				rail = NodeVdd
			}
			pgs, pgd = rail, rail
		}
		if fv, ok := floats[t.Name]; ok {
			if v, ok := fv[PGSTerminal]; ok {
				pgs = t.Name + "_pgs_cut"
				n.AddV("VCUT_"+t.Name+"_PGS", pgs, circuit.Ground, circuit.DC(v))
			}
			if v, ok := fv[PGDTerminal]; ok {
				pgd = t.Name + "_pgd_cut"
				n.AddV("VCUT_"+t.Name+"_PGD", pgd, circuit.Ground, circuit.DC(v))
			}
		}
		tr := n.AddM("M"+t.Name, nodeOf(t.D), nodeOf(t.CG), pgs, pgd, nodeOf(t.S), m)
		// Terminal parasitics from the model calibration: gate-channel
		// split between D and S, plus junction parasitics.
		cg := m.C.CGate
		cp := m.C.CPar
		half := cg / 2
		addCap := func(label, a, b string, f float64) {
			if f <= 0 || a == b {
				return
			}
			n.AddC(fmt.Sprintf("C%s_%s", t.Name, label), a, b, f)
		}
		addCap("cgd", nodeOf(t.CG), tr.D, half)
		addCap("cgs", nodeOf(t.CG), tr.S, half)
		addCap("pgsd", pgs, tr.D, half/2)
		addCap("pgss", pgs, tr.S, half/2)
		addCap("pgdd", pgd, tr.D, half/2)
		addCap("pgds", pgd, tr.S, half/2)
		addCap("cdb", tr.D, circuit.Ground, cp)
		addCap("csb", tr.S, circuit.Ground, cp)
	}

	load := opt.Load
	if load <= 0 {
		// FO4: four inverter input loads (CG plus both PG caps per fanout
		// device pair).
		load = 4 * 3 * model.C.CGate
	}
	n.AddC("CLOAD", NodeOut, circuit.Ground, load)
	return n, nil
}
