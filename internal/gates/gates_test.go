package gates

import (
	"fmt"
	"math"
	"testing"

	"cpsinw/internal/circuit"
	"cpsinw/internal/device"
	"cpsinw/internal/spice"
)

func TestKindString(t *testing.T) {
	if INV.String() != "INV" || MAJ3.String() != "MAJ3" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestLibraryComplete(t *testing.T) {
	if len(Kinds()) != 9 {
		t.Fatalf("library has %d kinds, want 9", len(Kinds()))
	}
	for _, k := range Kinds() {
		s := Get(k)
		if s.Kind != k {
			t.Errorf("%v: kind mismatch", k)
		}
		if s.NIn < 1 || s.NIn > 3 {
			t.Errorf("%v: NIn = %d", k, s.NIn)
		}
		if len(s.Transistors) == 0 {
			t.Errorf("%v: no transistors", k)
		}
		if s.Eval == nil {
			t.Errorf("%v: no Eval", k)
		}
	}
}

func TestClassSplitMatchesPaper(t *testing.T) {
	// Paper Figure 2: INV, NAND, NOR are SP; XOR2, XOR3, MAJ are DP.
	sp := []Kind{INV, BUF, NAND2, NAND3, NOR2, NOR3}
	dp := []Kind{XOR2, XOR3, MAJ3}
	for _, k := range sp {
		if Get(k).Class != StaticPolarity {
			t.Errorf("%v should be SP", k)
		}
	}
	for _, k := range dp {
		if Get(k).Class != DynamicPolarity {
			t.Errorf("%v should be DP", k)
		}
	}
	if StaticPolarity.String() != "SP" || DynamicPolarity.String() != "DP" {
		t.Error("class names wrong")
	}
}

func TestSPGatesHaveRailPGs(t *testing.T) {
	// SP definition (paper III-C): pull-up PGs at '0', pull-down at '1'.
	for _, k := range []Kind{INV, BUF, NAND2, NAND3, NOR2, NOR3} {
		s := Get(k)
		for _, tr := range s.Transistors {
			wantK := SigGnd
			if tr.Net == NetPullDown {
				wantK = SigVdd
			}
			if tr.PGS.K != wantK || tr.PGD.K != wantK {
				t.Errorf("%v/%s: PGs not tied to the correct rail", k, tr.Name)
			}
		}
	}
}

func TestDPGatesHaveSignalPGs(t *testing.T) {
	for _, k := range []Kind{XOR2, XOR3, MAJ3} {
		s := Get(k)
		for _, tr := range s.Transistors {
			for _, pg := range []Sig{tr.PGS, tr.PGD} {
				if pg.K != SigIn && pg.K != SigInN {
					t.Errorf("%v/%s: PG not driven by an input signal", k, tr.Name)
				}
			}
		}
	}
}

func TestTruthTables(t *testing.T) {
	want := map[Kind][]bool{
		INV:   {true, false},
		BUF:   {false, true},
		NAND2: {true, true, true, false},
		NOR2:  {true, false, false, false},
		XOR2:  {false, true, true, false},
		XOR3:  {false, true, true, false, true, false, false, true},
		MAJ3:  {false, false, false, true, false, true, true, true},
	}
	for k, tt := range want {
		got := Get(k).TruthTable()
		for v := range tt {
			if got[v] != tt[v] {
				t.Errorf("%v truth table at %d: got %v want %v", k, v, got[v], tt[v])
			}
		}
	}
}

// levelsOf runs a DC analog simulation of the gate for every input vector
// and returns the measured output voltages.
func levelsOf(t *testing.T, k Kind) []float64 {
	t.Helper()
	spec := Get(k)
	m := device.Default()
	out := make([]float64, 1<<spec.NIn)
	for v := 0; v < 1<<spec.NIn; v++ {
		in := spec.InputVector(v)
		waves := make([]circuit.Waveform, spec.NIn)
		for i := range in {
			if in[i] {
				waves[i] = circuit.DC(m.P.VDD)
			} else {
				waves[i] = circuit.DC(0)
			}
		}
		n, err := BuildAnalog(spec, BuildOptions{Inputs: waves})
		if err != nil {
			t.Fatalf("%v: build: %v", k, err)
		}
		e, err := spice.NewEngine(n, spice.Options{})
		if err != nil {
			t.Fatalf("%v: engine: %v", k, err)
		}
		sol, err := e.DC(0)
		if err != nil {
			t.Fatalf("%v vector %d: DC: %v", k, v, err)
		}
		out[v] = sol.V(NodeOut)
	}
	return out
}

func TestAnalogTruthTablesAllGates(t *testing.T) {
	// Every library gate must realise its Boolean function electrically:
	// logic 1 above 55% VDD, logic 0 below 45% VDD (DP pass outputs are
	// level-degraded but must stay on the right side of the switching
	// threshold).
	m := device.Default()
	vdd := m.P.VDD
	for _, k := range Kinds() {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			spec := Get(k)
			tt := spec.TruthTable()
			levels := levelsOf(t, k)
			for v := range tt {
				if tt[v] && levels[v] < 0.55*vdd {
					t.Errorf("vector %0*b: out=%.3f V, want logic 1 (> %.2f)", spec.NIn, v, levels[v], 0.55*vdd)
				}
				if !tt[v] && levels[v] > 0.45*vdd {
					t.Errorf("vector %0*b: out=%.3f V, want logic 0 (< %.2f)", spec.NIn, v, levels[v], 0.45*vdd)
				}
			}
		})
	}
}

func TestXOR2RedundantDrivers(t *testing.T) {
	// Paper section V-C: in the DP XOR2 every input combination is served
	// by redundant conducting transistors, which masks channel breaks.
	// Verify that for each vector at least two transistors conduct
	// (by the logic-level conduction rule) and agree on the driven value.
	spec := Get(XOR2)
	for v := 0; v < 4; v++ {
		in := spec.InputVector(v)
		conducting := 0
		for _, tr := range spec.Transistors {
			cg, _ := tr.CG.Level(in)
			pgs, _ := tr.PGS.Level(in)
			pgd, _ := tr.PGD.Level(in)
			if device.Conducts(cg, pgs, pgd) {
				conducting++
			}
		}
		if conducting < 2 {
			t.Errorf("vector %02b: only %d conducting transistors, want >= 2", v, conducting)
		}
	}
}

func TestXOR3MAJSingleDriverPerVector(t *testing.T) {
	// The rail-free pass gates have exactly one conducting device per
	// input vector, passing the correct value.
	for _, k := range []Kind{XOR3, MAJ3} {
		spec := Get(k)
		for v := 0; v < 1<<spec.NIn; v++ {
			in := spec.InputVector(v)
			conducting := 0
			for _, tr := range spec.Transistors {
				cg, _ := tr.CG.Level(in)
				pgs, _ := tr.PGS.Level(in)
				pgd, _ := tr.PGD.Level(in)
				if !device.Conducts(cg, pgs, pgd) {
					continue
				}
				conducting++
				dv, ok := tr.D.Level(in)
				if !ok {
					t.Errorf("%v/%s: drain is not a driven literal", k, tr.Name)
					continue
				}
				if dv != spec.Eval(in) {
					t.Errorf("%v vector %0*b: %s passes %v, function wants %v", k, spec.NIn, v, tr.Name, dv, spec.Eval(in))
				}
			}
			if conducting != 1 {
				t.Errorf("%v vector %0*b: %d conducting devices, want exactly 1", k, spec.NIn, v, conducting)
			}
		}
	}
}

func TestComplementWaveforms(t *testing.T) {
	vdd := 1.2
	if v := Complement(circuit.DC(0.3), vdd).At(0); math.Abs(v-0.9) > 1e-12 {
		t.Errorf("DC complement = %v", v)
	}
	p := Complement(circuit.Pulse{V0: 0, V1: 1.2, Delay: 1e-10, Rise: 1e-11, Fall: 1e-11, Width: 1e-10}, vdd)
	if v := p.At(0); math.Abs(v-1.2) > 1e-12 {
		t.Errorf("pulse complement at rest = %v, want 1.2", v)
	}
	w := Complement(circuit.PWL{T: []float64{0, 1}, V: []float64{0, 1.2}}, vdd)
	if v := w.At(1); math.Abs(v) > 1e-12 {
		t.Errorf("pwl complement end = %v, want 0", v)
	}
}

func TestBuildAnalogFloatPG(t *testing.T) {
	spec := Get(INV)
	n, err := BuildAnalog(spec, BuildOptions{
		Inputs: []circuit.Waveform{circuit.DC(0)},
		Floats: []FloatPG{{Transistor: "t1", Terminal: PGDTerminal, Vcut: 0.4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if n.SourceByName("VCUT_t1_PGD") == nil {
		t.Fatal("Vcut source missing")
	}
	m := n.TransistorByName("Mt1")
	if m.PGD != "t1_pgd_cut" {
		t.Errorf("PGD not rewired: %q", m.PGD)
	}
	if m.PGS != circuit.Ground {
		t.Errorf("PGS should stay at ground: %q", m.PGS)
	}
	if _, err := BuildAnalog(spec, BuildOptions{Floats: []FloatPG{{Transistor: "zz"}}}); err == nil {
		t.Error("unknown transistor float accepted")
	}
}

func TestBuildAnalogDefectInjection(t *testing.T) {
	spec := Get(NAND2)
	n, err := BuildAnalog(spec, BuildOptions{
		Defects: map[string]device.Defects{"t3": {BreakSeverity: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d := n.TransistorByName("Mt3").CompactModel().D; d.BreakSeverity != 1 {
		t.Errorf("defect not injected: %+v", d)
	}
	if d := n.TransistorByName("Mt1").CompactModel().D; d.Defective() {
		t.Errorf("defect leaked to healthy transistor: %+v", d)
	}
}

func TestInputNodeNames(t *testing.T) {
	if InputNode(0) != "a" || InputNode(2) != "c" || InputNodeN(1) != "b_n" {
		t.Error("input node naming broken")
	}
	if PGSTerminal.String() != "PGS" || PGDTerminal.String() != "PGD" {
		t.Error("terminal names broken")
	}
}

func ExampleGet() {
	spec := Get(XOR2)
	fmt.Println(spec.Name(), spec.Class, len(spec.Transistors))
	// Output: XOR2 DP 4
}
