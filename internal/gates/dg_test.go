package gates

import (
	"testing"

	"cpsinw/internal/device"
)

func TestDGCompatibility(t *testing.T) {
	// Every gate with pairwise-driven polarity gates is DG-compatible:
	// all SP gates and the XOR2. XOR3 and MAJ need three independent
	// gates (they exploit PGS != PGD) and are TIG-only — exactly the
	// compactness the TIG device buys (paper section III-A).
	wantDG := map[Kind]bool{
		INV: true, BUF: true, NAND2: true, NAND3: true,
		NOR2: true, NOR3: true, XOR2: true,
		XOR3: false, MAJ3: false,
	}
	for k, want := range wantDG {
		if got := DGCompatible(Get(k)); got != want {
			t.Errorf("DGCompatible(%v) = %v, want %v", k, got, want)
		}
	}
	kinds := DGKinds()
	if len(kinds) != 7 {
		t.Errorf("DGKinds = %v, want 7 entries", kinds)
	}
}

func TestDGConductionRule(t *testing.T) {
	for _, cg := range []bool{false, true} {
		for _, pg := range []bool{false, true} {
			want := cg == pg
			if got := device.ConductsDG(cg, pg); got != want {
				t.Errorf("ConductsDG(%v,%v) = %v, want %v", cg, pg, got, want)
			}
		}
	}
}

func TestDGDeviceMatchesTIGWithTiedPGs(t *testing.T) {
	m := device.Default()
	v := m.P.VDD
	for _, vpg := range []float64{0, 0.4, 0.8, v} {
		for _, vcg := range []float64{0, 0.6, v} {
			tied := m.ID(device.Bias{VCG: vcg, VPGS: vpg, VPGD: vpg, VD: v})
			dg := m.IDDG(vcg, vpg, v, 0)
			if tied != dg {
				t.Fatalf("IDDG diverges from tied-PG TIG at vcg=%v vpg=%v", vcg, vpg)
			}
		}
	}
	// The DG transfer curve is the tied-PG transfer curve.
	a := m.DGTransferCurve(0, v, 11, v, v)
	b := m.TransferCurve(0, v, 11, v, v, v)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DG transfer curve differs from tied-PG TIG curve")
		}
	}
}
