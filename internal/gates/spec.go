// Package gates defines the controllable-polarity logic gate library of
// the paper: the Static Polarity (SP) gates INV, NAND and NOR, whose
// polarity gates are tied to the supply rails, and the Dynamic Polarity
// (DP) gates XOR2, XOR3 and MAJ, whose polarity gates are driven by input
// signals (paper Figure 2). Each gate is described at the transistor level
// (for analog simulation and switch-level fault injection) and at the
// function level (for gate-level simulation and ATPG).
//
// The DP topologies are reconstructions validated against every
// behavioural statement in the paper; see DESIGN.md section 5.
package gates

import "fmt"

// Kind enumerates the library gates.
type Kind int

const (
	INV Kind = iota
	BUF
	NAND2
	NAND3
	NOR2
	NOR3
	XOR2
	XOR3
	MAJ3
)

var kindNames = map[Kind]string{
	INV: "INV", BUF: "BUF", NAND2: "NAND2", NAND3: "NAND3",
	NOR2: "NOR2", NOR3: "NOR3", XOR2: "XOR2", XOR3: "XOR3", MAJ3: "MAJ3",
}

// String returns the conventional gate name.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Kinds lists every gate in the library.
func Kinds() []Kind {
	return []Kind{INV, BUF, NAND2, NAND3, NOR2, NOR3, XOR2, XOR3, MAJ3}
}

// Class splits the library into the paper's two categories.
type Class int

const (
	StaticPolarity  Class = iota // PGs tied to VDD/GND
	DynamicPolarity              // PGs driven by input signals
)

// String names the class as in the paper.
func (c Class) String() string {
	if c == StaticPolarity {
		return "SP"
	}
	return "DP"
}

// Net identifies the sub-network a transistor belongs to.
type Net int

const (
	NetPullUp   Net = iota // sources logic 1 toward the output
	NetPullDown            // sources logic 0 toward the output
)

// String names the network.
func (n Net) String() string {
	if n == NetPullUp {
		return "pull-up"
	}
	return "pull-down"
}

// SigKind describes what a transistor terminal connects to.
type SigKind int

const (
	SigGnd      SigKind = iota // ground rail
	SigVdd                     // supply rail
	SigIn                      // input literal
	SigInN                     // complemented input literal
	SigOut                     // gate output
	SigInternal                // named internal node
)

// Sig is one terminal connection.
type Sig struct {
	K    SigKind
	In   int    // input index for SigIn/SigInN
	Node string // node name for SigInternal
}

// Convenience constructors.
func Gnd() Sig              { return Sig{K: SigGnd} }
func Vdd() Sig              { return Sig{K: SigVdd} }
func In(i int) Sig          { return Sig{K: SigIn, In: i} }
func InN(i int) Sig         { return Sig{K: SigInN, In: i} }
func Out() Sig              { return Sig{K: SigOut} }
func Internal(n string) Sig { return Sig{K: SigInternal, Node: n} }

// Level returns the logic level of the signal under the given input
// vector; ok is false for output/internal signals whose level is not a
// direct function of the inputs.
func (s Sig) Level(inputs []bool) (level, ok bool) {
	switch s.K {
	case SigGnd:
		return false, true
	case SigVdd:
		return true, true
	case SigIn:
		if s.In < len(inputs) {
			return inputs[s.In], true
		}
	case SigInN:
		if s.In < len(inputs) {
			return !inputs[s.In], true
		}
	}
	return false, false
}

// TransistorSpec is one TIG-SiNWFET inside a gate. Terminal order matches
// the device package: drain, control gate, two polarity gates, source.
// By convention the source side faces the output for rail-connected
// devices and the drain side carries the passed signal for DP pass
// devices.
type TransistorSpec struct {
	Name               string
	D, CG, PGS, PGD, S Sig
	Net                Net
}

// Spec is a complete library gate.
type Spec struct {
	Kind        Kind
	NIn         int
	Class       Class
	Transistors []TransistorSpec
	// Eval is the reference Boolean function.
	Eval func(in []bool) bool
}

// Name returns the gate name.
func (s *Spec) Name() string { return s.Kind.String() }

// Transistor returns the named transistor spec, or nil.
func (s *Spec) Transistor(name string) *TransistorSpec {
	for i := range s.Transistors {
		if s.Transistors[i].Name == name {
			return &s.Transistors[i]
		}
	}
	return nil
}

// TruthTable evaluates the gate over all 2^NIn input vectors, LSB-first
// (vector v assigns input i the bit (v>>i)&1).
func (s *Spec) TruthTable() []bool {
	n := 1 << s.NIn
	out := make([]bool, n)
	in := make([]bool, s.NIn)
	for v := 0; v < n; v++ {
		for i := range in {
			in[i] = (v>>i)&1 == 1
		}
		out[v] = s.Eval(in)
	}
	return out
}

// InputVector converts vector index v to the input slice.
func (s *Spec) InputVector(v int) []bool {
	in := make([]bool, s.NIn)
	for i := range in {
		in[i] = (v>>i)&1 == 1
	}
	return in
}

// Get returns the library spec for the given kind.
func Get(k Kind) *Spec {
	s, ok := library[k]
	if !ok {
		panic(fmt.Sprintf("gates: unknown kind %v", k))
	}
	return s
}

var library = map[Kind]*Spec{}

func register(s *Spec) { library[s.Kind] = s }

func init() {
	// --- Static Polarity gates: CMOS-shaped, PGs tied to rails. ---
	register(&Spec{
		Kind: INV, NIn: 1, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t3", D: Out(), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return !in[0] },
	})
	register(&Spec{
		Kind: BUF, NIn: 1, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Internal("m"), Net: NetPullUp},
			{Name: "t2", D: Internal("m"), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
			{Name: "t3", S: Vdd(), CG: Internal("m"), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t4", D: Out(), CG: Internal("m"), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return in[0] },
	})
	register(&Spec{
		Kind: NAND2, NIn: 2, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t2", S: Vdd(), CG: In(1), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t3", D: Out(), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Internal("n1"), Net: NetPullDown},
			{Name: "t4", D: Internal("n1"), CG: In(1), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return !(in[0] && in[1]) },
	})
	register(&Spec{
		Kind: NAND3, NIn: 3, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t2", S: Vdd(), CG: In(1), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t3", S: Vdd(), CG: In(2), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t4", D: Out(), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Internal("n1"), Net: NetPullDown},
			{Name: "t5", D: Internal("n1"), CG: In(1), PGS: Vdd(), PGD: Vdd(), S: Internal("n2"), Net: NetPullDown},
			{Name: "t6", D: Internal("n2"), CG: In(2), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return !(in[0] && in[1] && in[2]) },
	})
	register(&Spec{
		Kind: NOR2, NIn: 2, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Internal("p1"), Net: NetPullUp},
			{Name: "t2", S: Internal("p1"), CG: In(1), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t3", D: Out(), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
			{Name: "t4", D: Out(), CG: In(1), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return !(in[0] || in[1]) },
	})
	register(&Spec{
		Kind: NOR3, NIn: 3, Class: StaticPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: Gnd(), PGD: Gnd(), D: Internal("p1"), Net: NetPullUp},
			{Name: "t2", S: Internal("p1"), CG: In(1), PGS: Gnd(), PGD: Gnd(), D: Internal("p2"), Net: NetPullUp},
			{Name: "t3", S: Internal("p2"), CG: In(2), PGS: Gnd(), PGD: Gnd(), D: Out(), Net: NetPullUp},
			{Name: "t4", D: Out(), CG: In(0), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
			{Name: "t5", D: Out(), CG: In(1), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
			{Name: "t6", D: Out(), CG: In(2), PGS: Vdd(), PGD: Vdd(), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return !(in[0] || in[1] || in[2]) },
	})

	// --- Dynamic Polarity gates: PGs driven by inputs. ---
	// XOR2: programmable inverter/buffer; every input combination has one
	// strong driver and one same-direction redundant (degraded) driver —
	// the pass-transistor redundancy of the paper's section V-C.
	register(&Spec{
		Kind: XOR2, NIn: 2, Class: DynamicPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", S: Vdd(), CG: In(0), PGS: InN(1), PGD: InN(1), D: Out(), Net: NetPullUp},
			{Name: "t2", S: Vdd(), CG: InN(0), PGS: In(1), PGD: In(1), D: Out(), Net: NetPullUp},
			{Name: "t3", D: Out(), CG: In(0), PGS: In(1), PGD: In(1), S: Gnd(), Net: NetPullDown},
			{Name: "t4", D: Out(), CG: InN(0), PGS: InN(1), PGD: InN(1), S: Gnd(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return in[0] != in[1] },
	})
	// XOR3: single-stage pass structure; each device covers one odd and
	// one even parity minterm, passing its own control-gate literal.
	register(&Spec{
		Kind: XOR3, NIn: 3, Class: DynamicPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", D: In(0), CG: In(0), PGS: In(1), PGD: In(2), S: Out(), Net: NetPullUp},
			{Name: "t2", D: In(0), CG: In(0), PGS: InN(1), PGD: InN(2), S: Out(), Net: NetPullUp},
			{Name: "t3", D: In(1), CG: In(1), PGS: InN(0), PGD: InN(2), S: Out(), Net: NetPullDown},
			{Name: "t4", D: In(2), CG: In(2), PGS: InN(0), PGD: InN(1), S: Out(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool { return in[0] != in[1] != in[2] },
	})
	// MAJ: each device covers a complementary minterm pair {x, !x} whose
	// majority values are always {0, 1}.
	register(&Spec{
		Kind: MAJ3, NIn: 3, Class: DynamicPolarity,
		Transistors: []TransistorSpec{
			{Name: "t1", D: In(0), CG: InN(0), PGS: InN(1), PGD: InN(2), S: Out(), Net: NetPullUp},
			{Name: "t2", D: In(1), CG: InN(0), PGS: InN(1), PGD: In(2), S: Out(), Net: NetPullUp},
			{Name: "t3", D: In(2), CG: InN(0), PGS: In(1), PGD: InN(2), S: Out(), Net: NetPullDown},
			{Name: "t4", D: In(1), CG: In(0), PGS: InN(1), PGD: InN(2), S: Out(), Net: NetPullDown},
		},
		Eval: func(in []bool) bool {
			n := 0
			for _, b := range in[:3] {
				if b {
					n++
				}
			}
			return n >= 2
		},
	})
}
