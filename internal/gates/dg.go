package gates

// Double-Gate compatibility. A gate topology is DG-compatible when every
// transistor drives both polarity gates from the same signal: such gates
// drop onto the two-gate DG-SiNWFET without modification, and the paper's
// fault models (stuck-at n/p-type, channel break, the section V-C test
// procedure) carry over verbatim — the generality claim of section III-A.

// DGCompatible reports whether every transistor of the spec ties PGS and
// PGD to the same signal.
func DGCompatible(s *Spec) bool {
	for _, tr := range s.Transistors {
		if tr.PGS != tr.PGD {
			return false
		}
	}
	return true
}

// DGKinds lists the library gates that map directly onto DG-SiNWFETs.
func DGKinds() []Kind {
	var out []Kind
	for _, k := range Kinds() {
		if DGCompatible(Get(k)) {
			out = append(out, k)
		}
	}
	return out
}
