package faultsim

import (
	"context"
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// The compiled LUT/cone engine and the bit-parallel packed PPSFP
// engine must be bit-identical to the serial EvalHooked reference
// engine: same Detection method AND same first detecting pattern for
// every fault, on arbitrary circuits, fault lists and pattern sets
// (including X and missing inputs). The reference engine stays
// available as the oracle via EngineReference.

// fastEngines are the engines proven against the reference oracle.
// EngineAuto resolves to compiled or packed per campaign, so running it
// through the same suites pins the chooser to bit-identical results on
// both sides of every decision boundary.
var fastEngines = []Engine{EngineCompiled, EnginePacked, EngineAuto}

// randomTernaryPatterns draws patterns that exercise the ternary paths:
// mostly binary values, some explicit X, some inputs left unassigned.
func randomTernaryPatterns(rng *rand.Rand, c *logic.Circuit, n int) []Pattern {
	out := make([]Pattern, n)
	for k := range out {
		p := Pattern{}
		for _, pi := range c.Inputs {
			switch rng.Intn(10) {
			case 0:
				p[pi] = logic.LX
			case 1:
				// leave unassigned: defaults to X in ternary simulation
			default:
				p[pi] = logic.FromBool(rng.Intn(2) == 1)
			}
		}
		out[k] = p
	}
	return out
}

// subsample bounds a fault list while keeping its order (detections are
// positional, so order must be preserved for the comparison).
func subsample(rng *rand.Rand, faults []core.Fault, max int) []core.Fault {
	if len(faults) <= max {
		return faults
	}
	keep := make([]core.Fault, 0, max)
	// Reservoir-free order-preserving draw: accept with shrinking odds.
	for i, f := range faults {
		remain := len(faults) - i
		need := max - len(keep)
		if need <= 0 {
			break
		}
		if rng.Intn(remain) < need {
			keep = append(keep, f)
		}
	}
	return keep
}

func diffDetections(t *testing.T, label string, ref, got []Detection) {
	t.Helper()
	if len(ref) != len(got) {
		t.Fatalf("%s: %d vs %d detections", label, len(ref), len(got))
	}
	for i := range ref {
		if ref[i].Method != got[i].Method || ref[i].Pattern != got[i].Pattern {
			t.Errorf("%s: fault %v: reference (%q, %d) vs compiled (%q, %d)",
				label, ref[i].Fault, ref[i].Method, ref[i].Pattern, got[i].Method, got[i].Pattern)
		}
	}
}

// TestDifferentialTransistorEngines runs >= 200 random transistor-fault
// campaigns through both engines and requires identical results.
func TestDifferentialTransistorEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(20150709))
	cases := 120 // x2 IDDQ modes = 240 campaign comparisons
	if testing.Short() {
		cases = 30
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(7), 1+rng.Intn(28))
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := subsample(rng, universe, 60)
		patterns := randomTernaryPatterns(rng, c, 1+rng.Intn(24))

		for _, useIDDQ := range []bool{false, true} {
			ref := New(c)
			ref.Engine = EngineReference
			want, err := ref.RunTransistor(faults, patterns, useIDDQ)
			if err != nil {
				t.Fatalf("case %d: reference: %v", ci, err)
			}
			for _, eng := range fastEngines {
				cmp := New(c)
				cmp.Engine = eng
				got, err := cmp.RunTransistor(faults, patterns, useIDDQ)
				if err != nil {
					t.Fatalf("case %d: %v: %v", ci, eng, err)
				}
				diffDetections(t, c.Name+"/"+eng.String(), want, got)
			}
		}
	}
}

// TestDifferentialTwoPatternEngines compares the stuck-open transition
// LUT path against the stateful switch-level reference on random
// circuits and pattern pairs.
func TestDifferentialTwoPatternEngines(t *testing.T) {
	rng := rand.New(rand.NewSource(42421337))
	cases := 80
	if testing.Short() {
		cases = 20
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(6), 1+rng.Intn(20))
		universe := core.Universe(c, core.UniverseOptions{ChannelBreak: true})
		faults := subsample(rng, universe, 40)
		nPairs := 1 + rng.Intn(10)
		pairs := make([][2]Pattern, nPairs)
		for k := range pairs {
			ps := randomTernaryPatterns(rng, c, 2)
			pairs[k] = [2]Pattern{ps[0], ps[1]}
		}

		ref := New(c)
		ref.Engine = EngineReference
		want, err := ref.RunTwoPattern(faults, pairs)
		if err != nil {
			t.Fatalf("case %d: reference: %v", ci, err)
		}
		for _, eng := range fastEngines {
			cmp := New(c)
			cmp.Engine = eng
			got, err := cmp.RunTwoPattern(faults, pairs)
			if err != nil {
				t.Fatalf("case %d: %v: %v", ci, eng, err)
			}
			diffDetections(t, c.Name+"/"+eng.String(), want, got)
		}
	}
}

// TestDifferentialParallelCompiled checks the pooled compiled driver
// against the serial reference, including cancellation error parity.
func TestDifferentialParallelCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for ci := 0; ci < 10; ci++ {
		c := bench.Random(rng.Int63(), 4+rng.Intn(5), 5+rng.Intn(25))
		faults := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		patterns := randomTernaryPatterns(rng, c, 16)

		ref := New(c)
		ref.Engine = EngineReference
		want, err := ref.RunTransistor(faults, patterns, true)
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range fastEngines {
			cmp := New(c)
			cmp.Engine = eng
			got, err := cmp.RunTransistorParallel(context.Background(), faults, patterns, true, 8)
			if err != nil {
				t.Fatal(err)
			}
			diffDetections(t, c.Name+"/"+eng.String(), want, got)
		}
	}
}

// TestCompiledEngineErrorParity: both engines reject unknown gates and
// unknown transistors identically (and stay silent on empty pattern
// sets, where the reference never builds hooks).
func TestCompiledEngineErrorParity(t *testing.T) {
	c := bench.C17()
	bad := []core.Fault{
		{Kind: core.FaultStuckOn, Gate: "nope", Transistor: "t1"},
		{Kind: core.FaultStuckOn, Gate: "g10", Transistor: "t99"},
	}
	pats := ExhaustivePatterns(c)
	for _, f := range bad {
		for _, eng := range []Engine{EngineReference, EngineCompiled, EnginePacked} {
			s := New(c)
			s.Engine = eng
			if _, err := s.RunTransistor([]core.Fault{f}, pats, true); err == nil {
				t.Errorf("%v engine: no error for %v", eng, f)
			}
			if _, err := s.RunTransistor([]core.Fault{f}, nil, true); err != nil {
				t.Errorf("%v engine: error with empty pattern set for %v: %v", eng, f, err)
			}
		}
	}
}
