// Package faultsim provides the fault simulation engines of the
// reproduction: 64-way parallel-pattern simulation for classical line
// stuck-at faults, serial ternary simulation with behaviour-table
// injection for the CP transistor faults (channel break, stuck-on and the
// paper's stuck-at n-type / p-type polarity faults), IDDQ observability,
// and sequence-aware two-pattern simulation for stuck-open testing.
package faultsim

import (
	"context"
	"fmt"
	"sync"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Pattern assigns a logic value to every primary input (missing inputs
// default to X in ternary simulation, 0 in packed simulation).
type Pattern map[string]logic.V

// DetectMethod records how a fault was caught.
type DetectMethod string

const (
	ByNone       DetectMethod = ""
	ByOutput     DetectMethod = "output"
	ByIDDQ       DetectMethod = "iddq"
	ByTwoPattern DetectMethod = "two-pattern"
)

// Detection is the outcome for one fault.
type Detection struct {
	Fault   core.Fault
	Method  DetectMethod
	Pattern int // index of the (first) detecting pattern or pair
}

// Detected reports whether the fault was caught by any method.
func (d Detection) Detected() bool { return d.Method != ByNone }

// Simulator runs fault campaigns on one circuit.
type Simulator struct {
	C *logic.Circuit

	// Engine selects the transistor-fault implementation; the zero value
	// is the compiled LUT/cone engine, EngineReference the serial oracle,
	// EngineAuto a per-campaign choice between compiled and packed.
	Engine Engine

	// LaneWords, when 1, 2 or 4, pins the packed engine's lane-block
	// width (64, 128 or 256 ternary lanes per propagation pass). Any
	// other value lets each campaign pick a width from its pattern and
	// fault counts.
	LaneWords int

	// Progress, when set, receives monotone per-stage campaign snapshots
	// from every engine driver (see ProgressFunc for the delivery
	// contract). Set it before starting a campaign; drivers capture it
	// once at entry.
	Progress ProgressFunc

	// Signatures, when set, harvests per-fault pattern-detection bitsets
	// from the next campaign run (RunStuckAt* or the transistor
	// entry points). It must be sized for exactly that campaign's fault
	// and pattern counts; fault dropping is disabled while capturing so
	// the full signature is observed, and the returned Detections stay
	// bit-identical to an uncaptured run. Set it before starting the
	// campaign and clear it afterwards; drivers capture it once at entry.
	Signatures *SignatureCapture

	gateIdx map[string]int // instance name -> index

	ccOnce sync.Once
	cc     *logic.CompiledCircuit

	// Packed-engine scratch pool: the buffers and the scratch-local
	// LUT-resolution caches stay warm across campaigns.
	scratchPool sync.Pool

	// Compiled-engine cone scratch pool, warm across campaigns for the
	// same reason (the per-net value and stamp slices dominate small
	// campaigns).
	coneScratchPool sync.Pool
}

// New builds a simulator for the circuit.
func New(c *logic.Circuit) *Simulator {
	s := &Simulator{C: c, gateIdx: map[string]int{}}
	for i, g := range c.Gates {
		s.gateIdx[g.Name] = i
	}
	return s
}

// packBinaryChunk packs up to 64 patterns into binary input planes over
// the compiled input order: missing or X inputs pack as 0 (the
// historical packed stuck-at semantics), and every lane is fully known,
// so ternary block evaluation degenerates to plain binary simulation.
func (s *Simulator) packBinaryChunk(patterns []Pattern) []logic.PackedVec {
	in := make([]logic.PackedVec, len(s.C.Inputs))
	for k, p := range patterns {
		for i, pi := range s.C.Inputs {
			if v, ok := p[pi]; ok && v == logic.L1 {
				in[i].Val |= 1 << uint(k)
			}
		}
	}
	for i := range in {
		in[i].Known = ^uint64(0)
	}
	return in
}

// evalStuckAtPacked evaluates one 64-pattern chunk with a line stuck-at
// fault forced over the compiled IR: a stem fault overrides the net's
// plane wherever the net is produced (primary input or gate output), a
// pin fault overrides a single gate's fanin read.
func evalStuckAtPacked(cc *logic.CompiledCircuit, in []logic.PackedVec, f core.Fault, force logic.PackedVec, vals []logic.PackedVec) {
	stem := -1
	if f.Pin < 0 {
		if id, ok := cc.NetID[f.Net]; ok {
			stem = id
		}
	}
	for i, id := range cc.InputID {
		v := in[i]
		if id == stem {
			v = force
		}
		vals[id] = v
	}
	var buf [3]logic.PackedVec
	for _, gi := range cc.Order {
		fin := cc.Fanin[gi]
		for k, nid := range fin {
			v := vals[nid]
			if gi == f.GateIdx && k == f.Pin {
				v = force
			}
			buf[k] = v
		}
		on := cc.GateOut[gi]
		nv := logic.EvalKindPacked(cc.Kinds[gi], cc.LUT[gi], buf[:len(fin)])
		if on == stem {
			nv = force
		}
		vals[on] = nv
	}
}

// RunStuckAt fault-simulates line stuck-at faults against the pattern set
// using 64-way parallel-pattern packed simulation. Non-line faults in the
// list are returned undetected.
func (s *Simulator) RunStuckAt(faults []core.Fault, patterns []Pattern) []Detection {
	out, _ := s.RunStuckAtContext(context.Background(), faults, patterns)
	return out
}

// RunStuckAtContext is RunStuckAt with cooperative cancellation checked
// once per 64-pattern chunk; on cancellation the detections so far are
// returned with the context's error. Progress is reported per chunk
// (the sweep is pattern-outer, so Done counts patterns).
func (s *Simulator) RunStuckAtContext(ctx context.Context, faults []core.Fault, patterns []Pattern) ([]Detection, error) {
	out := make([]Detection, len(faults))
	dropped := 0
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		if !f.Kind.IsLineFault() {
			dropped++
		}
	}
	sig := s.Signatures
	if sig != nil {
		if err := sig.check(len(faults), len(patterns)); err != nil {
			return nil, err
		}
	}
	sink := s.progressSink("stuck_at", len(patterns))
	cc := s.compiled()
	nGates := uint64(len(s.C.Gates))
	good := make([]logic.PackedVec, cc.NumNets())
	faulty := make([]logic.PackedVec, cc.NumNets())
	for base := 0; base < len(patterns); base += 64 {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		chunk := patterns[base:min(base+64, len(patterns))]
		in := s.packBinaryChunk(chunk)
		valid := ^uint64(0)
		if len(chunk) < 64 {
			valid = (1 << uint(len(chunk))) - 1
		}
		cc.EvalPacked(in, good)
		chunkEvals := nGates // the good-circuit packed evaluation
		chunkDetected := 0
		for i := range out {
			if !out[i].Fault.Kind.IsLineFault() {
				continue
			}
			if out[i].Detected() && sig == nil {
				continue // fault dropping: off while capturing signatures
			}
			f := out[i].Fault
			force := logic.ConstPacked(logic.L0)
			if f.Kind == core.FaultSA1 {
				force = logic.ConstPacked(logic.L1)
			}
			evalStuckAtPacked(cc, in, f, force, faulty)
			chunkEvals += nGates
			var diff uint64
			for _, po := range cc.OutputID {
				diff |= logic.DefiniteDiffMask(good[po], faulty[po]) & valid
			}
			if diff != 0 {
				if sig != nil {
					sig.orOutWord(i, base, diff)
				}
				if !out[i].Detected() {
					out[i].Method = ByOutput
					out[i].Pattern = base + logic.FirstLane(diff)
					chunkDetected++
				}
			}
		}
		// Dropped (non-line) faults are reported once, with the first chunk.
		sink.add(len(chunk), chunkDetected, dropped, chunkEvals)
		dropped = 0
	}
	return out, nil
}

// transistorHooks builds the ternary gate-override hook for a transistor
// fault plus a leak observer; floating rows evaluate to X (single-pattern
// semantics: the retained charge is unknown).
func (s *Simulator) transistorHooks(f core.Fault, leak *bool) (logic.TernaryHooks, error) {
	tf, ok := f.Kind.TFault()
	if !ok {
		return logic.TernaryHooks{}, fmt.Errorf("faultsim: %v has no switch-level model", f.Kind)
	}
	gi, ok := s.gateIdx[f.Gate]
	if !ok {
		return logic.TernaryHooks{}, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
	}
	kind := s.C.Gates[gi].Kind
	beh, err := core.GateBehavior(kind, f.Transistor, tf)
	if err != nil {
		return logic.TernaryHooks{}, err
	}
	return logic.TernaryHooks{
		Gate: func(idx int, in []logic.V) (logic.V, bool) {
			if idx != gi {
				return logic.LX, false
			}
			vec := 0
			for i, v := range in {
				b, def := v.Bool()
				if !def {
					return logic.LX, true // X at a faulty gate input: give up precision
				}
				if b {
					vec |= 1 << uint(i)
				}
			}
			row := beh.Rows[vec]
			if row.Leak && leak != nil {
				*leak = true
			}
			if row.Floating {
				return logic.LX, true
			}
			return row.Out, true
		},
	}, nil
}

// RunTransistor fault-simulates transistor faults over the pattern set.
// Output differences at POs detect by voltage; when useIDDQ is set, a
// leak signature detects by quiescent-current measurement (the paper's
// IDDQ observability for pull-up polarity faults). The simulator's
// Engine selects the implementation: compiled LUT + cone propagation by
// default, bit-parallel PPSFP lane blocks under EnginePacked, the
// serial hooked oracle under EngineReference, and a per-campaign
// compiled/packed choice under EngineAuto; all of them return identical
// detections. RunTransistorParallel spreads the same work over a
// goroutine pool.
func (s *Simulator) RunTransistor(faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	switch s.resolveEngine(len(faults), len(patterns)) {
	case EngineReference:
		return s.runTransistorSerial(context.Background(), faults, patterns, useIDDQ)
	case EnginePacked:
		return s.runTransistorPacked(context.Background(), faults, patterns, useIDDQ)
	}
	return s.runTransistorCompiled(context.Background(), faults, patterns, useIDDQ)
}

// outputsDiffer reports a definite PO mismatch (X never counts).
func (s *Simulator) outputsDiffer(good, faulty map[string]logic.V) bool {
	for _, po := range s.C.Outputs {
		g, gok := good[po].Bool()
		f, fok := faulty[po].Bool()
		if gok && fok && g != f {
			return true
		}
	}
	return false
}

// RunTwoPattern simulates pattern pairs against channel-break faults with
// charge retention at the faulty gate: the first pattern initialises the
// gate output, the second exposes a floating output retaining the stale
// value. Detection requires a definite PO difference under the second
// pattern. The simulator's Engine selects the implementation (compiled
// stuck-open transition LUTs by default; packed block propagation of the
// same LUTs under EnginePacked; a per-campaign choice under EngineAuto).
func (s *Simulator) RunTwoPattern(faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	return s.RunTwoPatternContext(context.Background(), faults, pairs)
}

// RunTwoPatternContext is RunTwoPattern with cooperative cancellation
// checked between faults on every engine path; all paths report
// per-fault progress on the "two_pattern" stage.
func (s *Simulator) RunTwoPatternContext(ctx context.Context, faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	switch s.resolveEngine(len(faults), len(pairs)) {
	case EngineCompiled:
		return s.runTwoPatternCompiled(ctx, faults, pairs)
	case EnginePacked:
		return s.runTwoPatternPacked(ctx, faults, pairs)
	}
	sink := s.progressSink("two_pattern", len(faults))
	out := make([]Detection, len(faults))
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		out[i] = Detection{Fault: f, Pattern: -1}
		tf, ok := f.Kind.TFault()
		if !ok || tf != logic.TFaultOpen {
			sink.add(1, 0, 1, 0)
			continue
		}
		gi, ok := s.gateIdx[f.Gate]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
		}
		spec := gates.Get(s.C.Gates[gi].Kind)
		nGates := uint64(len(s.C.Gates))
		evals := uint64(0)
		for k, pair := range pairs {
			evals += 3 * nGates // two faulty passes plus the good baseline
			if s.twoPatternDetects(spec, gi, f, pair) {
				out[i].Method = ByTwoPattern
				out[i].Pattern = k
				break
			}
		}
		sink.add(1, b2i(out[i].Detected()), 0, evals)
	}
	return out, nil
}

// twoPatternDetects runs one init/test pair against one channel break.
func (s *Simulator) twoPatternDetects(spec *gates.Spec, gi int, f core.Fault, pair [2]Pattern) bool {
	faults := map[string]logic.TFault{f.Transistor: logic.TFaultOpen}
	var prev map[string]logic.V

	evalFaulty := func(p Pattern) map[string]logic.V {
		hooks := logic.TernaryHooks{
			Gate: func(idx int, in []logic.V) (logic.V, bool) {
				if idx != gi {
					return logic.LX, false
				}
				res := logic.EvalSwitch(spec, in, faults, prev)
				prev = res.Nodes
				return res.Out, true
			},
		}
		return s.C.EvalHooked(map[string]logic.V(p), hooks)
	}

	evalFaulty(pair[0]) // initialisation pattern
	faulty := evalFaulty(pair[1])
	good := s.C.Eval(map[string]logic.V(pair[1]))
	return s.outputsDiffer(good, faulty)
}

// Coverage summarises a detection list.
type Coverage struct {
	Total      int
	Detected   int
	ByOutput   int
	ByIDDQ     int
	ByTwoPat   int
	Undetected []core.Fault
}

// Summarise builds coverage statistics.
func Summarise(ds []Detection) Coverage {
	var c Coverage
	for _, d := range ds {
		c.Total++
		switch d.Method {
		case ByOutput:
			c.Detected++
			c.ByOutput++
		case ByIDDQ:
			c.Detected++
			c.ByIDDQ++
		case ByTwoPattern:
			c.Detected++
			c.ByTwoPat++
		default:
			c.Undetected = append(c.Undetected, d.Fault)
		}
	}
	return c
}

// Percent returns the fault coverage in percent.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// ExhaustivePatterns enumerates all 2^n input patterns of a circuit
// (intended for small circuits; callers should bound n).
func ExhaustivePatterns(c *logic.Circuit) []Pattern {
	n := len(c.Inputs)
	out := make([]Pattern, 0, 1<<uint(n))
	for v := 0; v < 1<<uint(n); v++ {
		p := Pattern{}
		for i, pi := range c.Inputs {
			p[pi] = logic.FromBool(v>>uint(i)&1 == 1)
		}
		out = append(out, p)
	}
	return out
}
