// Package faultsim provides the fault simulation engines of the
// reproduction: 64-way parallel-pattern simulation for classical line
// stuck-at faults, serial ternary simulation with behaviour-table
// injection for the CP transistor faults (channel break, stuck-on and the
// paper's stuck-at n-type / p-type polarity faults), IDDQ observability,
// and sequence-aware two-pattern simulation for stuck-open testing.
package faultsim

import (
	"context"
	"fmt"
	"sync"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Pattern assigns a logic value to every primary input (missing inputs
// default to X in ternary simulation, 0 in packed simulation).
type Pattern map[string]logic.V

// DetectMethod records how a fault was caught.
type DetectMethod string

const (
	ByNone       DetectMethod = ""
	ByOutput     DetectMethod = "output"
	ByIDDQ       DetectMethod = "iddq"
	ByTwoPattern DetectMethod = "two-pattern"
)

// Detection is the outcome for one fault.
type Detection struct {
	Fault   core.Fault
	Method  DetectMethod
	Pattern int // index of the (first) detecting pattern or pair
}

// Detected reports whether the fault was caught by any method.
func (d Detection) Detected() bool { return d.Method != ByNone }

// Simulator runs fault campaigns on one circuit.
type Simulator struct {
	C *logic.Circuit

	// Engine selects the transistor-fault implementation; the zero value
	// is the compiled LUT/cone engine, EngineReference the serial oracle.
	Engine Engine

	// Progress, when set, receives monotone per-stage campaign snapshots
	// from every engine driver (see ProgressFunc for the delivery
	// contract). Set it before starting a campaign; drivers capture it
	// once at entry.
	Progress ProgressFunc

	gateIdx map[string]int // instance name -> index

	ccOnce sync.Once
	cc     *logic.CompiledCircuit

	// Packed-engine scratch pool: the buffers and the scratch-local
	// LUT-resolution caches stay warm across campaigns.
	scratchPool sync.Pool
}

// New builds a simulator for the circuit.
func New(c *logic.Circuit) *Simulator {
	s := &Simulator{C: c, gateIdx: map[string]int{}}
	for i, g := range c.Gates {
		s.gateIdx[g.Name] = i
	}
	return s
}

// packPatterns converts up to 64 patterns into packed words.
func (s *Simulator) packPatterns(patterns []Pattern) logic.PackedAssign {
	assign := logic.PackedAssign{}
	for k, p := range patterns {
		for _, pi := range s.C.Inputs {
			if v, ok := p[pi]; ok && v == logic.L1 {
				assign[pi] |= 1 << uint(k)
			}
		}
	}
	return assign
}

// RunStuckAt fault-simulates line stuck-at faults against the pattern set
// using 64-way parallel-pattern packed simulation. Non-line faults in the
// list are returned undetected.
func (s *Simulator) RunStuckAt(faults []core.Fault, patterns []Pattern) []Detection {
	out, _ := s.RunStuckAtContext(context.Background(), faults, patterns)
	return out
}

// RunStuckAtContext is RunStuckAt with cooperative cancellation checked
// once per 64-pattern chunk; on cancellation the detections so far are
// returned with the context's error. Progress is reported per chunk
// (the sweep is pattern-outer, so Done counts patterns).
func (s *Simulator) RunStuckAtContext(ctx context.Context, faults []core.Fault, patterns []Pattern) ([]Detection, error) {
	out := make([]Detection, len(faults))
	dropped := 0
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		if !f.Kind.IsLineFault() {
			dropped++
		}
	}
	sink := s.progressSink("stuck_at", len(patterns))
	nGates := uint64(len(s.C.Gates))
	for base := 0; base < len(patterns); base += 64 {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		chunk := patterns[base:min(base+64, len(patterns))]
		assign := s.packPatterns(chunk)
		valid := ^uint64(0)
		if len(chunk) < 64 {
			valid = (1 << uint(len(chunk))) - 1
		}
		good := s.C.EvalPackedHooked(assign, logic.PackedHooks{})
		chunkEvals := nGates // the good-circuit packed evaluation
		chunkDetected := 0
		for i := range out {
			if out[i].Detected() || !out[i].Fault.Kind.IsLineFault() {
				continue
			}
			f := out[i].Fault
			force := uint64(0)
			if f.Kind == core.FaultSA1 {
				force = ^uint64(0)
			}
			var hooks logic.PackedHooks
			if f.Pin >= 0 {
				hooks.Pin = func(gi, pin int, w uint64) uint64 {
					if gi == f.GateIdx && pin == f.Pin {
						return force
					}
					return w
				}
			} else {
				hooks.Stem = func(net string, w uint64) uint64 {
					if net == f.Net {
						return force
					}
					return w
				}
			}
			faulty := s.C.EvalPackedHooked(assign, hooks)
			chunkEvals += nGates
			var diff uint64
			for _, po := range s.C.Outputs {
				diff |= (good[po] ^ faulty[po]) & valid
			}
			if diff != 0 {
				out[i].Method = ByOutput
				out[i].Pattern = base + trailingZeros(diff)
				chunkDetected++
			}
		}
		// Dropped (non-line) faults are reported once, with the first chunk.
		sink.add(len(chunk), chunkDetected, dropped, chunkEvals)
		dropped = 0
	}
	return out, nil
}

func trailingZeros(w uint64) int {
	for i := 0; i < 64; i++ {
		if w>>uint(i)&1 == 1 {
			return i
		}
	}
	return 64
}

// transistorHooks builds the ternary gate-override hook for a transistor
// fault plus a leak observer; floating rows evaluate to X (single-pattern
// semantics: the retained charge is unknown).
func (s *Simulator) transistorHooks(f core.Fault, leak *bool) (logic.TernaryHooks, error) {
	tf, ok := f.Kind.TFault()
	if !ok {
		return logic.TernaryHooks{}, fmt.Errorf("faultsim: %v has no switch-level model", f.Kind)
	}
	gi, ok := s.gateIdx[f.Gate]
	if !ok {
		return logic.TernaryHooks{}, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
	}
	kind := s.C.Gates[gi].Kind
	beh, err := core.GateBehavior(kind, f.Transistor, tf)
	if err != nil {
		return logic.TernaryHooks{}, err
	}
	return logic.TernaryHooks{
		Gate: func(idx int, in []logic.V) (logic.V, bool) {
			if idx != gi {
				return logic.LX, false
			}
			vec := 0
			for i, v := range in {
				b, def := v.Bool()
				if !def {
					return logic.LX, true // X at a faulty gate input: give up precision
				}
				if b {
					vec |= 1 << uint(i)
				}
			}
			row := beh.Rows[vec]
			if row.Leak && leak != nil {
				*leak = true
			}
			if row.Floating {
				return logic.LX, true
			}
			return row.Out, true
		},
	}, nil
}

// RunTransistor fault-simulates transistor faults over the pattern set.
// Output differences at POs detect by voltage; when useIDDQ is set, a
// leak signature detects by quiescent-current measurement (the paper's
// IDDQ observability for pull-up polarity faults). The simulator's
// Engine selects the implementation: compiled LUT + cone propagation by
// default, 64-way bit-parallel PPSFP under EnginePacked, the serial
// hooked oracle under EngineReference; all three return identical
// detections. RunTransistorParallel spreads the same work over a
// goroutine pool.
func (s *Simulator) RunTransistor(faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	switch s.Engine {
	case EngineReference:
		return s.runTransistorSerial(context.Background(), faults, patterns, useIDDQ)
	case EnginePacked:
		return s.runTransistorPacked(context.Background(), faults, patterns, useIDDQ)
	}
	return s.runTransistorCompiled(context.Background(), faults, patterns, useIDDQ)
}

// outputsDiffer reports a definite PO mismatch (X never counts).
func (s *Simulator) outputsDiffer(good, faulty map[string]logic.V) bool {
	for _, po := range s.C.Outputs {
		g, gok := good[po].Bool()
		f, fok := faulty[po].Bool()
		if gok && fok && g != f {
			return true
		}
	}
	return false
}

// RunTwoPattern simulates pattern pairs against channel-break faults with
// charge retention at the faulty gate: the first pattern initialises the
// gate output, the second exposes a floating output retaining the stale
// value. Detection requires a definite PO difference under the second
// pattern. The simulator's Engine selects the implementation (compiled
// stuck-open transition LUTs by default; packed cone propagation of the
// same LUTs under EnginePacked).
func (s *Simulator) RunTwoPattern(faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	switch s.Engine {
	case EngineCompiled:
		return s.runTwoPatternCompiled(faults, pairs)
	case EnginePacked:
		return s.runTwoPatternPacked(faults, pairs)
	}
	out := make([]Detection, len(faults))
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		tf, ok := f.Kind.TFault()
		if !ok || tf != logic.TFaultOpen {
			continue
		}
		gi, ok := s.gateIdx[f.Gate]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
		}
		spec := gates.Get(s.C.Gates[gi].Kind)
		for k, pair := range pairs {
			if s.twoPatternDetects(spec, gi, f, pair) {
				out[i].Method = ByTwoPattern
				out[i].Pattern = k
				break
			}
		}
	}
	return out, nil
}

// twoPatternDetects runs one init/test pair against one channel break.
func (s *Simulator) twoPatternDetects(spec *gates.Spec, gi int, f core.Fault, pair [2]Pattern) bool {
	faults := map[string]logic.TFault{f.Transistor: logic.TFaultOpen}
	var prev map[string]logic.V

	evalFaulty := func(p Pattern) map[string]logic.V {
		hooks := logic.TernaryHooks{
			Gate: func(idx int, in []logic.V) (logic.V, bool) {
				if idx != gi {
					return logic.LX, false
				}
				res := logic.EvalSwitch(spec, in, faults, prev)
				prev = res.Nodes
				return res.Out, true
			},
		}
		return s.C.EvalHooked(map[string]logic.V(p), hooks)
	}

	evalFaulty(pair[0]) // initialisation pattern
	faulty := evalFaulty(pair[1])
	good := s.C.Eval(map[string]logic.V(pair[1]))
	return s.outputsDiffer(good, faulty)
}

// Coverage summarises a detection list.
type Coverage struct {
	Total      int
	Detected   int
	ByOutput   int
	ByIDDQ     int
	ByTwoPat   int
	Undetected []core.Fault
}

// Summarise builds coverage statistics.
func Summarise(ds []Detection) Coverage {
	var c Coverage
	for _, d := range ds {
		c.Total++
		switch d.Method {
		case ByOutput:
			c.Detected++
			c.ByOutput++
		case ByIDDQ:
			c.Detected++
			c.ByIDDQ++
		case ByTwoPattern:
			c.Detected++
			c.ByTwoPat++
		default:
			c.Undetected = append(c.Undetected, d.Fault)
		}
	}
	return c
}

// Percent returns the fault coverage in percent.
func (c Coverage) Percent() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Detected) / float64(c.Total)
}

// ExhaustivePatterns enumerates all 2^n input patterns of a circuit
// (intended for small circuits; callers should bound n).
func ExhaustivePatterns(c *logic.Circuit) []Pattern {
	n := len(c.Inputs)
	out := make([]Pattern, 0, 1<<uint(n))
	for v := 0; v < 1<<uint(n); v++ {
		p := Pattern{}
		for i, pi := range c.Inputs {
			p[pi] = logic.FromBool(v>>uint(i)&1 == 1)
		}
		out = append(out, p)
	}
	return out
}
