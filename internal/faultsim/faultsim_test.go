package faultsim

import (
	"strings"
	"testing"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

func parse(t *testing.T, src string) *logic.Circuit {
	t.Helper()
	c, err := logic.ParseBench("t", strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const c17ish = `
INPUT(a)
INPUT(b)
INPUT(c)
INPUT(d)
OUTPUT(y)
OUTPUT(z)
n1 = NAND(a, b)
n2 = NAND(c, d)
n3 = NAND(n1, c)
y  = NAND(n3, n2)
z  = XOR(n1, n2)
`

func TestStuckAtExhaustiveFullCoverage(t *testing.T) {
	c := parse(t, c17ish)
	faults := core.Universe(c, core.ClassicalOnly())
	patterns := ExhaustivePatterns(c)
	ds := New(c).RunStuckAt(faults, patterns)
	cov := Summarise(ds)
	// This circuit has no redundant lines: exhaustive patterns must catch
	// every stuck-at fault.
	if cov.Detected != cov.Total {
		t.Errorf("coverage %.1f%%: undetected %v", cov.Percent(), cov.Undetected)
	}
	for _, d := range ds {
		if d.Method == ByOutput && (d.Pattern < 0 || d.Pattern >= len(patterns)) {
			t.Errorf("fault %v has bad pattern index %d", d.Fault, d.Pattern)
		}
	}
}

func TestStuckAtDetectionIsReal(t *testing.T) {
	// Every reported detection must be reproducible by serial simulation
	// (ATPG-soundness style property).
	c := parse(t, c17ish)
	faults := core.Universe(c, core.ClassicalOnly())
	patterns := ExhaustivePatterns(c)
	sim := New(c)
	ds := sim.RunStuckAt(faults, patterns)
	for _, d := range ds {
		if !d.Detected() {
			continue
		}
		p := patterns[d.Pattern]
		good := c.Eval(map[string]logic.V(p))
		force := logic.L0
		if d.Fault.Kind == core.FaultSA1 {
			force = logic.L1
		}
		f := d.Fault
		var hooks logic.TernaryHooks
		if f.Pin >= 0 {
			hooks.Pin = func(gi, pin int, v logic.V) logic.V {
				if gi == f.GateIdx && pin == f.Pin {
					return force
				}
				return v
			}
		} else {
			hooks.Stem = func(net string, v logic.V) logic.V {
				if net == f.Net {
					return force
				}
				return v
			}
		}
		faulty := c.EvalHooked(map[string]logic.V(p), hooks)
		if !sim.outputsDiffer(good, faulty) {
			t.Errorf("fault %v: reported detection at pattern %d not reproducible", f, d.Pattern)
		}
	}
}

func TestStuckAtMoreThan64Patterns(t *testing.T) {
	// Exercise the multi-chunk path: repeat the exhaustive set 5 times
	// (80 patterns) and expect identical coverage.
	c := parse(t, c17ish)
	faults := core.Universe(c, core.ClassicalOnly())
	base := ExhaustivePatterns(c)
	var patterns []Pattern
	for i := 0; i < 5; i++ {
		patterns = append(patterns, base...)
	}
	cov := Summarise(New(c).RunStuckAt(faults, patterns))
	if cov.Detected != cov.Total {
		t.Errorf("multi-chunk coverage %.1f%%", cov.Percent())
	}
}

func TestPolarityFaultsNeedIDDQ(t *testing.T) {
	// Single XOR2: pull-up polarity faults are undetectable by voltage
	// but fully detectable with IDDQ — the paper's Table III conclusion.
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	sim := New(c)
	var pol []core.Fault
	for _, tr := range []string{"t1", "t2"} {
		pol = append(pol,
			core.Fault{Kind: core.FaultStuckAtN, Gate: c.Gates[0].Name, Transistor: tr},
			core.Fault{Kind: core.FaultStuckAtP, Gate: c.Gates[0].Name, Transistor: tr},
		)
	}
	patterns := ExhaustivePatterns(c)

	noIDDQ, err := sim.RunTransistor(pol, patterns, false)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(noIDDQ); cov.Detected != 0 {
		t.Errorf("pull-up polarity faults detected without IDDQ: %+v", cov)
	}
	withIDDQ, err := sim.RunTransistor(pol, patterns, true)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(withIDDQ); cov.Detected != cov.Total || cov.ByIDDQ != cov.Total {
		t.Errorf("IDDQ should catch all pull-up polarity faults: %+v", cov)
	}
}

func TestPullDownPolarityFaultsByOutput(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	sim := New(c)
	faults := []core.Fault{
		{Kind: core.FaultStuckAtN, Gate: c.Gates[0].Name, Transistor: "t3"},
		{Kind: core.FaultStuckAtN, Gate: c.Gates[0].Name, Transistor: "t4"},
	}
	ds, err := sim.RunTransistor(faults, ExhaustivePatterns(c), false)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Method != ByOutput {
			t.Errorf("%v: method %q, want output detection", d.Fault, d.Method)
		}
	}
}

func TestChannelBreakMaskedInDPUndetectable(t *testing.T) {
	// Channel breaks inside the DP XOR2 are invisible to single-pattern
	// voltage testing AND to classical two-pattern testing — the paper's
	// motivation for the new test procedure.
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	sim := New(c)
	var cbs []core.Fault
	for _, tr := range []string{"t1", "t2", "t3", "t4"} {
		cbs = append(cbs, core.Fault{Kind: core.FaultChannelBreak, Gate: c.Gates[0].Name, Transistor: tr})
	}
	patterns := ExhaustivePatterns(c)
	single, err := sim.RunTransistor(cbs, patterns, true)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(single); cov.Detected != 0 {
		t.Errorf("DP channel breaks detected by single-pattern test: %+v", cov)
	}
	var pairs [][2]Pattern
	for _, p1 := range patterns {
		for _, p2 := range patterns {
			pairs = append(pairs, [2]Pattern{p1, p2})
		}
	}
	two, err := sim.RunTwoPattern(cbs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(two); cov.Detected != 0 {
		t.Errorf("DP channel breaks detected by two-pattern test: %+v", cov)
	}
}

func TestNANDChannelBreakTwoPatternPaperVectors(t *testing.T) {
	// Paper section V-C: the NAND two-pattern set v1=(11->01),
	// v2=(11->10), v3=(00->11) detects all channel breaks of the
	// TIG-SiNWFET NAND.
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	sim := New(c)
	mk := func(a, b int) Pattern {
		return Pattern{"a": logic.FromBool(a == 1), "b": logic.FromBool(b == 1)}
	}
	pairs := [][2]Pattern{
		{mk(1, 1), mk(0, 1)},
		{mk(1, 1), mk(1, 0)},
		{mk(0, 0), mk(1, 1)},
	}
	var cbs []core.Fault
	for _, tr := range gates.Get(gates.NAND2).Transistors {
		cbs = append(cbs, core.Fault{Kind: core.FaultChannelBreak, Gate: c.Gates[0].Name, Transistor: tr.Name})
	}
	ds, err := sim.RunTwoPattern(cbs, pairs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range ds {
		if d.Method != ByTwoPattern {
			t.Errorf("NAND %s channel break not detected by the paper's two-pattern set", d.Fault.Transistor)
		}
	}
}

func TestSPBreakUndetectableWithoutSequence(t *testing.T) {
	// The same NAND breaks are invisible to single-pattern testing
	// (output floats -> X, never a definite flip).
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	sim := New(c)
	var cbs []core.Fault
	for _, tr := range gates.Get(gates.NAND2).Transistors {
		cbs = append(cbs, core.Fault{Kind: core.FaultChannelBreak, Gate: c.Gates[0].Name, Transistor: tr.Name})
	}
	ds, err := sim.RunTransistor(cbs, ExhaustivePatterns(c), false)
	if err != nil {
		t.Fatal(err)
	}
	if cov := Summarise(ds); cov.Detected != 0 {
		t.Errorf("SP channel breaks should need two-pattern tests: %+v", cov)
	}
}

func TestCoverageSummary(t *testing.T) {
	ds := []Detection{
		{Method: ByOutput}, {Method: ByIDDQ}, {Method: ByTwoPattern}, {Method: ByNone},
	}
	cov := Summarise(ds)
	if cov.Total != 4 || cov.Detected != 3 || cov.ByOutput != 1 || cov.ByIDDQ != 1 || cov.ByTwoPat != 1 {
		t.Errorf("summary wrong: %+v", cov)
	}
	if p := cov.Percent(); p != 75 {
		t.Errorf("percent = %v", p)
	}
	if (Coverage{}).Percent() != 0 {
		t.Error("empty coverage percent should be 0")
	}
}

func TestExhaustivePatterns(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n")
	ps := ExhaustivePatterns(c)
	if len(ps) != 4 {
		t.Fatalf("patterns = %d", len(ps))
	}
	if ps[3]["a"] != logic.L1 || ps[3]["b"] != logic.L1 {
		t.Error("pattern encoding wrong")
	}
}

func TestRunTransistorSkipsAnalogKinds(t *testing.T) {
	c := parse(t, "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XOR(a, b)\n")
	faults := []core.Fault{{Kind: core.FaultGOSCG, Gate: c.Gates[0].Name, Transistor: "t1"}}
	ds, err := New(c).RunTransistor(faults, ExhaustivePatterns(c), true)
	if err != nil {
		t.Fatal(err)
	}
	if ds[0].Detected() {
		t.Error("analog fault should be skipped, not detected")
	}
}
