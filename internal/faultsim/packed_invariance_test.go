package faultsim

import (
	"context"
	"math/rand"
	"testing"

	"cpsinw/internal/bench"
	"cpsinw/internal/core"
)

// Lane invariance of EnginePacked: the 64-lane packing is an
// implementation detail, so reshaping the pattern set around the word
// boundary must never change what is detected. Three reshapes are
// checked on every random campaign:
//
//   - padding: appending repeats of earlier patterns (making the count
//     a non-multiple of 64 and spilling into a second chunk) leaves
//     every Detection bit-identical — later duplicates can never win;
//   - splitting: running the set as two packed calls and merging is
//     bit-identical to the single call (first half wins, second half
//     detections shift by the split point);
//   - permutation: reordering patterns preserves the *set* of detected
//     faults (method and first index legitimately move).
//
// The campaigns cycle through every lane-block width (1, 2 and 4 words
// of 64 lanes), so each reshape is checked at each block geometry.

func detectedSet(ds []Detection) map[string]bool {
	out := map[string]bool{}
	for _, d := range ds {
		if d.Detected() {
			out[d.Fault.String()] = true
		}
	}
	return out
}

func TestPackedLaneInvarianceTransistor(t *testing.T) {
	rng := rand.New(rand.NewSource(64646464))
	cases := 40
	if testing.Short() {
		cases = 10
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 4+rng.Intn(6), 5+rng.Intn(30))
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := subsample(rng, universe, 50)
		// 65..120 patterns: always spills past one word, never a
		// multiple of 64.
		n := 65 + rng.Intn(56)
		if n%64 == 0 {
			n++
		}
		patterns := randomTernaryPatterns(rng, c, n)
		useIDDQ := ci%2 == 0

		sim := New(c)
		sim.Engine = EnginePacked
		sim.LaneWords = []int{1, 2, 4}[ci%3]
		base, err := sim.RunTransistor(faults, patterns, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}

		// Padding with repeats of already-present patterns.
		padded := append(append([]Pattern{}, patterns...), patterns[:7]...)
		got, err := sim.RunTransistor(faults, padded, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: padded: %v", ci, err)
		}
		diffDetections(t, "padded", base, got)

		// Splitting one packed call into two at an off-word boundary.
		split := 1 + rng.Intn(n-1)
		first, err := sim.RunTransistor(faults, patterns[:split], useIDDQ)
		if err != nil {
			t.Fatalf("case %d: split head: %v", ci, err)
		}
		second, err := sim.RunTransistor(faults, patterns[split:], useIDDQ)
		if err != nil {
			t.Fatalf("case %d: split tail: %v", ci, err)
		}
		merged := make([]Detection, len(faults))
		for i := range merged {
			switch {
			case first[i].Detected():
				merged[i] = first[i]
			case second[i].Detected():
				merged[i] = second[i]
				merged[i].Pattern += split
			default:
				merged[i] = Detection{Fault: faults[i], Pattern: -1}
			}
		}
		diffDetections(t, "split-merge", base, merged)

		// Permuting the pattern order preserves the detected set.
		perm := append([]Pattern{}, patterns...)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got, err = sim.RunTransistor(faults, perm, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: permuted: %v", ci, err)
		}
		want, have := detectedSet(base), detectedSet(got)
		if len(want) != len(have) {
			t.Fatalf("case %d: permutation changed detections: %d vs %d", ci, len(want), len(have))
		}
		for f := range want {
			if !have[f] {
				t.Errorf("case %d: %s lost under permutation", ci, f)
			}
		}
	}
}

func TestPackedLaneInvarianceBridges(t *testing.T) {
	rng := rand.New(rand.NewSource(128128))
	cases := 25
	if testing.Short() {
		cases = 8
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 4+rng.Intn(6), 5+rng.Intn(25))
		bridges := randomBridges(rng, c, 2+rng.Intn(20))
		n := 65 + rng.Intn(40)
		patterns := randomTernaryPatterns(rng, c, n)
		useIDDQ := ci%2 == 0

		sim := New(c)
		sim.Engine = EnginePacked
		sim.LaneWords = []int{1, 2, 4}[ci%3] // the bridge engine is fixed at width 1; pinning must be harmless
		base, err := sim.RunBridgesObserved(context.Background(), bridges, patterns, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: %v", ci, err)
		}

		padded := append(append([]Pattern{}, patterns...), patterns[:5]...)
		got, err := sim.RunBridgesObserved(context.Background(), bridges, padded, useIDDQ)
		if err != nil {
			t.Fatalf("case %d: padded: %v", ci, err)
		}
		diffBridgeDetections(t, "padded", base, got)

		split := 1 + rng.Intn(n-1)
		first, err := sim.RunBridgesObserved(context.Background(), bridges, patterns[:split], useIDDQ)
		if err != nil {
			t.Fatalf("case %d: split head: %v", ci, err)
		}
		second, err := sim.RunBridgesObserved(context.Background(), bridges, patterns[split:], useIDDQ)
		if err != nil {
			t.Fatalf("case %d: split tail: %v", ci, err)
		}
		merged := make([]BridgeDetection, len(bridges))
		for i := range merged {
			switch {
			case first[i].Detected:
				merged[i] = first[i]
			case second[i].Detected:
				merged[i] = second[i]
				merged[i].Pattern += split
			default:
				merged[i] = BridgeDetection{Bridge: bridges[i], Pattern: -1}
			}
		}
		diffBridgeDetections(t, "split-merge", base, merged)
	}
}
