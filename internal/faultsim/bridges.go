package faultsim

import (
	"context"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// BridgeDetection records the outcome for one bridging fault.
type BridgeDetection struct {
	Bridge   core.Bridge
	Detected bool
	Pattern  int
}

// evalBridged simulates the circuit with a bridge injected. Bridges can
// feed a value backwards relative to the topological order, so the
// evaluation iterates the stem override to a fixpoint (the bridged value
// of each net is computed from the previous iteration's partner value).
func evalBridged(c *logic.Circuit, p Pattern, b core.Bridge) map[string]logic.V {
	// Pass 1: plain values (bridge open).
	vals := c.Eval(map[string]logic.V(p))
	for iter := 0; iter < 4; iter++ {
		prev := vals
		hooks := logic.TernaryHooks{Stem: func(net string, v logic.V) logic.V {
			switch net {
			case b.A:
				na, _ := b.Kind.Resolve(v, prev[b.B])
				return na
			case b.B:
				_, nb := b.Kind.Resolve(prev[b.A], v)
				return nb
			}
			return v
		}}
		vals = c.EvalHooked(map[string]logic.V(p), hooks)
		stable := true
		for _, po := range c.Outputs {
			if vals[po] != prev[po] {
				stable = false
				break
			}
		}
		if stable && iter > 0 {
			break
		}
	}
	return vals
}

// RunBridges fault-simulates bridging faults over the pattern set,
// detecting by definite primary-output differences.
func (s *Simulator) RunBridges(bridges []core.Bridge, patterns []Pattern) []BridgeDetection {
	out, _ := s.RunBridgesContext(context.Background(), bridges, patterns)
	return out
}

// RunBridgesContext is RunBridges with cooperative cancellation checked
// between bridges (one bridge's pattern sweep is the unit of work).
func (s *Simulator) RunBridgesContext(ctx context.Context, bridges []core.Bridge, patterns []Pattern) ([]BridgeDetection, error) {
	out := make([]BridgeDetection, len(bridges))
	goods := make([]map[string]logic.V, len(patterns))
	for k, p := range patterns {
		goods[k] = s.C.Eval(map[string]logic.V(p))
	}
	for i, b := range bridges {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out[i] = BridgeDetection{Bridge: b, Pattern: -1}
		for k, p := range patterns {
			faulty := evalBridged(s.C, p, b)
			if s.outputsDiffer(goods[k], faulty) {
				out[i].Detected = true
				out[i].Pattern = k
				break
			}
		}
	}
	return out, nil
}

// BridgeCoverage summarises bridge detections.
func BridgeCoverage(ds []BridgeDetection) Coverage {
	var c Coverage
	for _, d := range ds {
		c.Total++
		if d.Detected {
			c.Detected++
			c.ByOutput++
		}
	}
	return c
}
