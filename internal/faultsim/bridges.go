package faultsim

import (
	"context"
	"sort"
	"sync"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// BridgeDetection records the outcome for one bridging fault.
type BridgeDetection struct {
	Bridge   core.Bridge
	Detected bool
	Method   DetectMethod // ByOutput, ByIDDQ under IDDQ observation, "" undetected
	Pattern  int
}

// evalBridged simulates the circuit with a bridge injected. Bridges can
// feed a value backwards relative to the topological order, so the
// evaluation iterates the stem override to a fixpoint (the bridged value
// of each net is computed from the previous iteration's partner value).
// This is the reference oracle; the compiled and packed paths below are
// defined to be bit-identical to it. evals, when non-nil, accumulates
// the full-circuit gate evaluations performed (one circuit pass per
// fixpoint iteration plus the open-bridge pass).
func evalBridged(c *logic.Circuit, p Pattern, b core.Bridge, evals *uint64) map[string]logic.V {
	// Pass 1: plain values (bridge open).
	vals := c.Eval(map[string]logic.V(p))
	if evals != nil {
		*evals += uint64(len(c.Gates))
	}
	for iter := 0; iter < 4; iter++ {
		prev := vals
		hooks := logic.TernaryHooks{Stem: func(net string, v logic.V) logic.V {
			switch net {
			case b.A:
				na, _ := b.Kind.Resolve(v, prev[b.B])
				return na
			case b.B:
				_, nb := b.Kind.Resolve(prev[b.A], v)
				return nb
			}
			return v
		}}
		vals = c.EvalHooked(map[string]logic.V(p), hooks)
		if evals != nil {
			*evals += uint64(len(c.Gates))
		}
		stable := true
		for _, po := range c.Outputs {
			if vals[po] != prev[po] {
				stable = false
				break
			}
		}
		if stable && iter > 0 {
			break
		}
	}
	return vals
}

// bridgeLeak reports the IDDQ signature of a bridge under one fault-free
// response: quiescent current flows when the two bridged nets are driven
// to definite opposite values (the drivers fight through the defect).
// Nets absent from the circuit read as 0, matching the reference
// engine's map semantics.
func bridgeLeak(good map[string]logic.V, b core.Bridge) bool {
	va, vb := good[b.A], good[b.B]
	ba, aok := va.Bool()
	bb, bok := vb.Bool()
	return aok && bok && ba != bb
}

// RunBridges fault-simulates bridging faults over the pattern set,
// detecting by definite primary-output differences.
func (s *Simulator) RunBridges(bridges []core.Bridge, patterns []Pattern) []BridgeDetection {
	out, _ := s.RunBridgesContext(context.Background(), bridges, patterns)
	return out
}

// RunBridgesContext is RunBridges with cooperative cancellation checked
// between bridges (one bridge's pattern sweep is the unit of work).
func (s *Simulator) RunBridgesContext(ctx context.Context, bridges []core.Bridge, patterns []Pattern) ([]BridgeDetection, error) {
	return s.RunBridgesObserved(ctx, bridges, patterns, false)
}

// RunBridgesObserved fault-simulates bridging faults with optional IDDQ
// observation: per pattern, a quiescent-current signature (the bridged
// nets driven to opposite rails) is checked before the voltage compare,
// mirroring the transistor-fault ordering. The simulator's Engine
// selects the implementation — the hooked fixpoint oracle
// (EngineReference), a compiled dense-net fixpoint (EngineCompiled,
// default), the 64-way packed fixpoint (EnginePacked), or a
// per-campaign compiled/packed choice (EngineAuto) — all bit-identical,
// as the bridge differential suite enforces.
func (s *Simulator) RunBridgesObserved(ctx context.Context, bridges []core.Bridge, patterns []Pattern, useIDDQ bool) ([]BridgeDetection, error) {
	switch s.resolveEngine(len(bridges), len(patterns)) {
	case EngineReference:
		return s.runBridgesReference(ctx, bridges, patterns, useIDDQ)
	case EnginePacked:
		return s.runBridgesPacked(ctx, bridges, patterns, useIDDQ)
	}
	return s.runBridgesCompiled(ctx, bridges, patterns, useIDDQ)
}

// runBridgesReference is the hooked-map oracle driver.
func (s *Simulator) runBridgesReference(ctx context.Context, bridges []core.Bridge, patterns []Pattern, useIDDQ bool) ([]BridgeDetection, error) {
	sink := s.progressSink("bridges", len(bridges))
	out := make([]BridgeDetection, len(bridges))
	goods := make([]map[string]logic.V, len(patterns))
	for k, p := range patterns {
		goods[k] = s.C.Eval(map[string]logic.V(p))
	}
	sink.add(0, 0, 0, uint64(len(patterns))*uint64(len(s.C.Gates)))
	for i, b := range bridges {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out[i] = BridgeDetection{Bridge: b, Pattern: -1}
		engineStats.referenceBridgeRuns.Add(1)
		var evals uint64
		for k, p := range patterns {
			if useIDDQ && bridgeLeak(goods[k], b) {
				out[i].Detected = true
				out[i].Method = ByIDDQ
				out[i].Pattern = k
				break
			}
			faulty := evalBridged(s.C, p, b, &evals)
			if s.outputsDiffer(goods[k], faulty) {
				out[i].Detected = true
				out[i].Method = ByOutput
				out[i].Pattern = k
				break
			}
		}
		engineStats.referenceGateEvals.Add(evals)
		sink.add(1, b2i(out[i].Detected), 0, evals)
	}
	return out, nil
}

// --- compiled dense-net bridge engine ---

// bridgeEnds resolves a bridge's nets to dense ids; absent nets carry
// ok=false and read as constant 0, matching the reference oracle's map
// semantics.
type bridgeEnds struct {
	b        core.Bridge
	aID, bID int
	aok, bok bool
}

func (s *Simulator) bridgeEnds(b core.Bridge) bridgeEnds {
	cc := s.compiled()
	e := bridgeEnds{b: b}
	e.aID, e.aok = cc.NetID[b.A]
	e.bID, e.bok = cc.NetID[b.B]
	return e
}

// stemValue applies the bridge override at the moment net nid is
// produced, reading the partner from the previous iteration's values.
// Net A is checked first, mirroring the reference hook's switch.
func (e *bridgeEnds) stemValue(nid int, v logic.V, prev []logic.V) logic.V {
	if e.aok && nid == e.aID {
		pb := logic.L0
		if e.bok {
			pb = prev[e.bID]
		}
		na, _ := e.b.Kind.Resolve(v, pb)
		return na
	}
	if e.bok && nid == e.bID {
		pa := logic.L0
		if e.aok {
			pa = prev[e.aID]
		}
		_, nb := e.b.Kind.Resolve(pa, v)
		return nb
	}
	return v
}

// evalBridgedCompiled mirrors evalBridged over dense net ids: pass 1 is
// the memoized plain baseline, then up to 4 stem-override iterations
// with the same outputs-stable early exit. vals and prev are scratch
// buffers; the returned slice is whichever holds the final iteration.
func (s *Simulator) evalBridgedCompiled(p Pattern, e *bridgeEnds, base, vals, prev []logic.V, evals *uint64) []logic.V {
	cc := s.compiled()
	copy(vals, base) // pass 1: bridge open
	for iter := 0; iter < 4; iter++ {
		vals, prev = prev, vals
		for i := range cc.C.Inputs {
			v, ok := p[cc.C.Inputs[i]]
			if !ok {
				v = logic.LX
			}
			id := cc.InputID[i]
			vals[id] = e.stemValue(id, v, prev)
		}
		for _, gi := range cc.Order {
			on := cc.GateOut[gi]
			vals[on] = e.stemValue(on, cc.LUT[gi][cc.GateInputIndex(gi, vals)], prev)
		}
		*evals += uint64(len(cc.Order))
		stable := true
		for _, po := range cc.OutputID {
			if vals[po] != prev[po] {
				stable = false
				break
			}
		}
		if stable && iter > 0 {
			break
		}
	}
	return vals
}

// bridgeLeakDense is bridgeLeak over dense baseline values.
func bridgeLeakDense(base []logic.V, e *bridgeEnds) bool {
	va, vb := logic.L0, logic.L0
	if e.aok {
		va = base[e.aID]
	}
	if e.bok {
		vb = base[e.bID]
	}
	ba, aok := va.Bool()
	bb, bok := vb.Bool()
	return aok && bok && ba != bb
}

// runBridgesCompiled drives the dense fixpoint per bridge per pattern.
// It is deliberately the straightforward mirror of the oracle — the
// middle tier of the engine ladder, trivially auditable against
// evalBridged — while the excitation analysis (skip patterns whose
// baseline values do not move under the resolution, the counterpart of
// the transistor engines' one-lookup skip) lives in the packed engine,
// the performance path.
func (s *Simulator) runBridgesCompiled(ctx context.Context, bridges []core.Bridge, patterns []Pattern, useIDDQ bool) ([]BridgeDetection, error) {
	sink := s.progressSink("bridges", len(bridges))
	cc := s.compiled()
	base := s.evalBaselines(patterns)
	vals := make([]logic.V, cc.NumNets())
	prev := make([]logic.V, cc.NumNets())
	sink.add(0, 0, 0, uint64(len(patterns))*uint64(len(s.C.Gates)))
	out := make([]BridgeDetection, len(bridges))
	for i, b := range bridges {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out[i] = BridgeDetection{Bridge: b, Pattern: -1}
		e := s.bridgeEnds(b)
		engineStats.compiledBridgeRuns.Add(1)
		var evals uint64
		for k, p := range patterns {
			if useIDDQ && bridgeLeakDense(base[k], &e) {
				out[i].Detected = true
				out[i].Method = ByIDDQ
				out[i].Pattern = k
				break
			}
			faulty := s.evalBridgedCompiled(p, &e, base[k], vals, prev, &evals)
			diff := false
			for _, po := range cc.OutputID {
				if definiteDiff(base[k][po], faulty[po]) {
					diff = true
					break
				}
			}
			if diff {
				out[i].Detected = true
				out[i].Method = ByOutput
				out[i].Pattern = k
				break
			}
		}
		engineStats.coneGateEvals.Add(evals)
		sink.add(1, b2i(out[i].Detected), 0, evals)
	}
	return out, nil
}

// --- packed bridge engine ---

// bridgeLUT is one bridge kind compiled over the 3x3 ternary value
// space: entry 3*a+b holds the resolved values of both nets.
type bridgeLUT struct {
	na, nb [9]logic.V
}

var bridgeLUTCache sync.Map // core.BridgeKind -> *bridgeLUT

func compiledBridgeLUT(kind core.BridgeKind) *bridgeLUT {
	if v, ok := bridgeLUTCache.Load(kind); ok {
		return v.(*bridgeLUT)
	}
	lut := &bridgeLUT{}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			na, nb := kind.Resolve(logic.V(a), logic.V(b))
			lut.na[3*a+b], lut.nb[3*a+b] = na, nb
		}
	}
	actual, _ := bridgeLUTCache.LoadOrStore(kind, lut)
	return actual.(*bridgeLUT)
}

// packedResolve evaluates one side of the bridge LUT across all lanes
// via the 9-entry mask loop (side selects na or nb).
func (l *bridgeLUT) packedResolve(a, b logic.PackedVec, side int) logic.PackedVec {
	tbl := &l.na
	if side == 1 {
		tbl = &l.nb
	}
	am := [3]uint64{a.Known &^ a.Val, a.Val, ^a.Known}
	bm := [3]uint64{b.Known &^ b.Val, b.Val, ^b.Known}
	var out logic.PackedVec
	for ai := 0; ai < 3; ai++ {
		if am[ai] == 0 {
			continue
		}
		for bi := 0; bi < 3; bi++ {
			m := am[ai] & bm[bi]
			if m == 0 {
				continue
			}
			switch tbl[3*ai+bi] {
			case logic.L1:
				out.Val |= m
				out.Known |= m
			case logic.L0:
				out.Known |= m
			}
		}
	}
	return out
}

// stemPlane is the packed counterpart of bridgeEnds.stemValue.
func (e *bridgeEnds) stemPlane(lut *bridgeLUT, nid int, v logic.PackedVec, prev []logic.PackedVec) logic.PackedVec {
	if e.aok && nid == e.aID {
		pb := logic.ConstPacked(logic.L0)
		if e.bok {
			pb = prev[e.bID]
		}
		return lut.packedResolve(v, pb, 0)
	}
	if e.bok && nid == e.bID {
		pa := logic.ConstPacked(logic.L0)
		if e.aok {
			pa = prev[e.aID]
		}
		return lut.packedResolve(pa, v, 1)
	}
	return v
}

// bridgeConeScratch reuses the affected-set buffers across the bridges
// of one campaign (a per-bridge map allocation costs more than the
// cone-restricted fixpoint saves on small circuits).
type bridgeConeScratch struct {
	mark  []int
	epoch int
	buf   []int
}

func newBridgeConeScratch(cc *logic.CompiledCircuit) *bridgeConeScratch {
	return &bridgeConeScratch{mark: make([]int, len(cc.C.Gates))}
}

// bridgeAffected computes the gates a bridge can influence: the driver
// gates of both nets (the override applies at production) plus every
// gate downstream of either net, in topological order. Outside this
// set the bridged fixpoint provably keeps the baseline planes, so each
// iteration only re-evaluates the affected gates. piA/piB carry the
// primary-input index of a PI-driven bridged net (-1 otherwise), whose
// override applies at assignment instead.
func (s *Simulator) bridgeAffected(e *bridgeEnds, bs *bridgeConeScratch) (gates []int, piA, piB int) {
	cc := s.compiled()
	bs.epoch++
	bs.buf = bs.buf[:0]
	add := func(g int) {
		if bs.mark[g] != bs.epoch {
			bs.mark[g] = bs.epoch
			bs.buf = append(bs.buf, g)
		}
	}
	piA, piB = -1, -1
	addNet := func(nid int, pi *int) {
		if d, ok := cc.C.Driver(cc.NetName[nid]); ok && d >= 0 {
			add(d)
			for _, g := range cc.Cone(d) {
				add(g)
			}
			return
		}
		for i, id := range cc.InputID {
			if id == nid {
				*pi = i
				break
			}
		}
		for _, g := range cc.Fanouts[nid] {
			add(g)
			for _, cg := range cc.Cone(g) {
				add(cg)
			}
		}
	}
	if e.aok {
		addNet(e.aID, &piA)
	}
	if e.bok {
		addNet(e.bID, &piB)
	}
	gates = bs.buf
	sort.Slice(gates, func(a, b int) bool { return cc.Pos[gates[a]] < cc.Pos[gates[b]] })
	return gates, piA, piB
}

// bridgedDiffPacked runs the bridged fixpoint for one chunk across all
// lanes and returns the lanes with a definite primary-output
// difference against the chunk baseline. Each lane freezes its output
// planes at the iteration where the reference oracle would have broken
// out of the fixpoint loop (outputs stable and iter > 0), so per lane
// the captured response is exactly evalBridged's. Only the affected
// gate set is re-evaluated per iteration; both plane buffers start as
// baseline copies so unaffected nets read correctly from either.
func (s *Simulator) bridgedDiffPacked(pb *packedBase, e *bridgeEnds, lut *bridgeLUT, affected []int, piA, piB int, vals, prev, outPO []logic.PackedVec, evals *uint64) uint64 {
	cc := s.compiled()
	copy(vals, pb.vals) // pass 1: bridge open = the good baseline
	copy(prev, pb.vals)
	var done uint64
	for iter := 0; iter < 4; iter++ {
		vals, prev = prev, vals
		if e.aok && piA >= 0 {
			vals[e.aID] = e.stemPlane(lut, e.aID, pb.in[piA], prev)
		}
		if e.bok && piB >= 0 && !(e.aok && e.bID == e.aID) {
			vals[e.bID] = e.stemPlane(lut, e.bID, pb.in[piB], prev)
		}
		for _, gi := range affected {
			on := cc.GateOut[gi]
			vals[on] = e.stemPlane(lut, on, cc.EvalGatePlanes(gi, vals), prev)
		}
		*evals += uint64(len(affected))
		stable := ^uint64(0)
		for _, po := range cc.OutputID {
			stable &= logic.EqMask(vals[po], prev[po])
		}
		if iter > 0 {
			if newly := stable &^ done; newly != 0 {
				for j, po := range cc.OutputID {
					outPO[j] = mergeLanes(outPO[j], vals[po], newly)
				}
				done |= newly
			}
			if done&pb.valid[0] == pb.valid[0] {
				break
			}
		}
	}
	if rest := ^done; rest != 0 {
		for j, po := range cc.OutputID {
			outPO[j] = mergeLanes(outPO[j], vals[po], rest)
		}
	}
	var diff uint64
	for j, po := range cc.OutputID {
		diff |= logic.DefiniteDiffMask(pb.vals[po], outPO[j])
	}
	return diff
}

// mergeLanes overwrites dst's lanes selected by mask with src's.
func mergeLanes(dst, src logic.PackedVec, mask uint64) logic.PackedVec {
	dst.Val = dst.Val&^mask | src.Val&mask
	dst.Known = dst.Known&^mask | src.Known&mask
	return dst
}

// bridgeLeakMaskPacked returns the lanes with the bridge IDDQ signature.
func bridgeLeakMaskPacked(pb *packedBase, e *bridgeEnds) uint64 {
	va, vb := logic.ConstPacked(logic.L0), logic.ConstPacked(logic.L0)
	if e.aok {
		va = pb.vals[e.aID]
	}
	if e.bok {
		vb = pb.vals[e.bID]
	}
	return logic.DefiniteDiffMask(va, vb)
}

// exciteMaskPacked is excitesDense per lane: the lanes where the
// resolution moves either net's baseline value. A primary-output
// difference is only possible in an excited lane, so lanes outside the
// mask (and whole chunks with an empty mask) never need the fixpoint.
func exciteMaskPacked(pb *packedBase, e *bridgeEnds, lut *bridgeLUT) uint64 {
	va, vb := logic.ConstPacked(logic.L0), logic.ConstPacked(logic.L0)
	if e.aok {
		va = pb.vals[e.aID]
	}
	if e.bok {
		vb = pb.vals[e.bID]
	}
	var m uint64
	if e.aok {
		ra := lut.packedResolve(va, vb, 0)
		m |= (ra.Val ^ va.Val) | (ra.Known ^ va.Known)
	}
	if e.bok {
		rb := lut.packedResolve(va, vb, 1)
		m |= (rb.Val ^ vb.Val) | (rb.Known ^ vb.Known)
	}
	return m
}

// runBridgesPacked drives the 64-way bridged fixpoint per bridge per
// chunk.
func (s *Simulator) runBridgesPacked(ctx context.Context, bridges []core.Bridge, patterns []Pattern, useIDDQ bool) ([]BridgeDetection, error) {
	sink := s.progressSink("bridges", len(bridges))
	cc := s.compiled()
	bases := s.packedBaselines(patterns, 1)
	vals := make([]logic.PackedVec, cc.NumNets())
	prev := make([]logic.PackedVec, cc.NumNets())
	outPO := make([]logic.PackedVec, len(cc.OutputID))
	bs := newBridgeConeScratch(cc)
	sink.add(0, 0, 0, uint64(len(bases))*uint64(len(s.C.Gates)))
	out := make([]BridgeDetection, len(bridges))
	for i, b := range bridges {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		out[i] = BridgeDetection{Bridge: b, Pattern: -1}
		e := s.bridgeEnds(b)
		lut := compiledBridgeLUT(b.Kind)
		var affected []int // computed lazily: leak-decided bridges never need it
		piA, piB := -1, -1
		engineStats.packedBridgeRuns.Add(1)
		var evals uint64
		for ci := range bases {
			pb := &bases[ci]
			var leak uint64
			if useIDDQ {
				leak = bridgeLeakMaskPacked(pb, &e) & pb.valid[0]
			}
			// The fixpoint only matters when a voltage difference could
			// come before the first leak: any output difference needs an
			// excited lane, and at equal lanes the leak check wins (the
			// per-pattern observation order of the scalar engines).
			excite := exciteMaskPacked(pb, &e, lut) & pb.valid[0]
			var diff uint64
			if excite != 0 && (leak == 0 || logic.FirstLane(excite) < logic.FirstLane(leak)) {
				if affected == nil {
					affected, piA, piB = s.bridgeAffected(&e, bs)
				}
				diff = s.bridgedDiffPacked(pb, &e, lut, affected, piA, piB, vals, prev, outPO, &evals) & pb.valid[0]
			}
			m := leak | diff
			if m == 0 {
				continue
			}
			lane := logic.FirstLane(m)
			out[i].Detected = true
			if leak>>uint(lane)&1 == 1 {
				out[i].Method = ByIDDQ
			} else {
				out[i].Method = ByOutput
			}
			out[i].Pattern = pb.start + lane
			break
		}
		engineStats.packedGateEvals.Add(evals)
		sink.add(1, b2i(out[i].Detected), 0, evals)
	}
	return out, nil
}

// BridgeCoverage summarises bridge detections.
func BridgeCoverage(ds []BridgeDetection) Coverage {
	var c Coverage
	for _, d := range ds {
		c.Total++
		if !d.Detected {
			continue
		}
		c.Detected++
		if d.Method == ByIDDQ {
			c.ByIDDQ++
		} else {
			c.ByOutput++
		}
	}
	return c
}
