package faultsim_test

import (
	"context"
	"math/rand"
	"testing"

	"cpsinw/internal/atpg"
	"cpsinw/internal/bench"
	"cpsinw/internal/core"
	"cpsinw/internal/faultsim"
	"cpsinw/internal/logic"
)

// The signature sink must not perturb detections, and the harvested
// bitsets must be bit-identical to the atpg.ExecuteAll tester oracle
// (one StepLogic per pattern, plus one StepIDDQ per pattern when the
// campaign observes IDDQ) on every engine, every lane-block width and
// across the 64-lane chunk boundaries. Patterns are fully defined:
// the dictionary models tester responses, and a tester always drives
// every input.

// captureEngines spans every engine path: the serial oracle, the
// compiled cone engine, the packed engine at each lane-block width
// (small pattern counts at w>=1 also exercise the fault-packed grouped
// path) and the auto chooser.
var captureEngines = []struct {
	name      string
	engine    faultsim.Engine
	laneWords int
}{
	{"reference", faultsim.EngineReference, 0},
	{"compiled", faultsim.EngineCompiled, 0},
	{"packed-w1", faultsim.EnginePacked, 1},
	{"packed-w2", faultsim.EnginePacked, 2},
	{"packed-w4", faultsim.EnginePacked, 4},
	{"auto", faultsim.EngineAuto, 0},
}

// binaryPatterns draws fully-defined random patterns.
func binaryPatterns(rng *rand.Rand, c *logic.Circuit, n int) []faultsim.Pattern {
	out := make([]faultsim.Pattern, n)
	for k := range out {
		p := faultsim.Pattern{}
		for _, pi := range c.Inputs {
			p[pi] = logic.FromBool(rng.Intn(2) == 1)
		}
		out[k] = p
	}
	return out
}

// sampleFaults bounds a fault list while keeping its order.
func sampleFaults(rng *rand.Rand, faults []core.Fault, max int) []core.Fault {
	if len(faults) <= max {
		return faults
	}
	keep := make([]core.Fault, 0, max)
	for i, f := range faults {
		remain := len(faults) - i
		need := max - len(keep)
		if need <= 0 {
			break
		}
		if rng.Intn(remain) < need {
			keep = append(keep, f)
		}
	}
	return keep
}

// captureProgram builds the tester program the capture bitsets model:
// logic steps 0..P-1, then (when IDDQ is observed) IDDQ steps P..2P-1.
func captureProgram(c *logic.Circuit, patterns []faultsim.Pattern, useIDDQ bool) *atpg.Program {
	p := &atpg.Program{Circuit: c}
	for _, pat := range patterns {
		vals := c.Eval(map[string]logic.V(pat))
		expect := map[string]logic.V{}
		for _, po := range c.Outputs {
			expect[po] = vals[po]
		}
		p.Steps = append(p.Steps, atpg.Step{Kind: atpg.StepLogic, Pattern: pat, Expect: expect})
	}
	if useIDDQ {
		for _, pat := range patterns {
			p.Steps = append(p.Steps, atpg.Step{Kind: atpg.StepIDDQ, Pattern: pat})
		}
	}
	return p
}

// oracleBits splits an ExecuteAll signature into out/leak bitset rows.
func oracleBits(sig atpg.Signature, nPatterns int) (out, leak []uint64) {
	words := (nPatterns + 63) / 64
	out = make([]uint64, words)
	leak = make([]uint64, words)
	for _, step := range sig {
		if step < nPatterns {
			out[step>>6] |= 1 << uint(step&63)
		} else {
			k := step - nPatterns
			leak[k>>6] |= 1 << uint(k&63)
		}
	}
	return out, leak
}

func wordsEqual(a, b []uint64) bool {
	for j := range a {
		if a[j] != b[j] {
			return false
		}
	}
	return true
}

func checkCapture(t *testing.T, label string, faults []core.Fault, sig *faultsim.SignatureCapture, wantOut, wantLeak [][]uint64) {
	t.Helper()
	for i := range faults {
		if !wordsEqual(sig.Out(i), wantOut[i]) {
			t.Errorf("%s: fault %v: out signature %x, oracle %x", label, faults[i], sig.Out(i), wantOut[i])
		}
		if !wordsEqual(sig.Leak(i), wantLeak[i]) {
			t.Errorf("%s: fault %v: leak signature %x, oracle %x", label, faults[i], sig.Leak(i), wantLeak[i])
		}
	}
}

func checkDetections(t *testing.T, label string, want, got []faultsim.Detection) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d detections", label, len(want), len(got))
	}
	for i := range want {
		if want[i].Method != got[i].Method || want[i].Pattern != got[i].Pattern {
			t.Errorf("%s: fault %v: uncaptured (%q, %d) vs captured (%q, %d)",
				label, want[i].Fault, want[i].Method, want[i].Pattern, got[i].Method, got[i].Pattern)
		}
	}
}

// runCaptureCase proves one (circuit, faults, patterns, iddq) campaign:
// every engine's captured bitsets match the ExecuteAll oracle and its
// detections match an uncaptured reference run.
func runCaptureCase(t *testing.T, c *logic.Circuit, faults []core.Fault, patterns []faultsim.Pattern, useIDDQ bool) {
	t.Helper()
	ref := faultsim.New(c)
	ref.Engine = faultsim.EngineReference
	want, err := ref.RunTransistor(faults, patterns, useIDDQ)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	prog := captureProgram(c, patterns, useIDDQ)
	wantOut := make([][]uint64, len(faults))
	wantLeak := make([][]uint64, len(faults))
	for i := range faults {
		f := faults[i]
		wantOut[i], wantLeak[i] = oracleBits(atpg.ExecuteAll(prog, &f), len(patterns))
	}

	for _, en := range captureEngines {
		s := faultsim.New(c)
		s.Engine = en.engine
		s.LaneWords = en.laneWords
		sig := faultsim.NewSignatureCapture(len(faults), len(patterns))
		s.Signatures = sig
		got, err := s.RunTransistor(faults, patterns, useIDDQ)
		if err != nil {
			t.Fatalf("%s: %v", en.name, err)
		}
		checkDetections(t, en.name, want, got)
		checkCapture(t, en.name, faults, sig, wantOut, wantLeak)
	}
}

func TestSignatureCaptureDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(20150809))
	cases := 24
	if testing.Short() {
		cases = 8
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(6), 1+rng.Intn(20))
		universe := core.Universe(c, core.UniverseOptions{
			ChannelBreak: true, StuckOn: true, Polarity: true,
		})
		faults := sampleFaults(rng, universe, 20)
		patterns := binaryPatterns(rng, c, 1+rng.Intn(140))
		runCaptureCase(t, c, faults, patterns, ci%2 == 1)
	}
}

// TestSignatureCaptureLaneBoundary pins the chunk edges explicitly: one
// pattern count on each side of the 64- and 128-lane boundaries.
func TestSignatureCaptureLaneBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(64128))
	c := bench.Random(rng.Int63(), 5, 12)
	universe := core.Universe(c, core.UniverseOptions{
		ChannelBreak: true, StuckOn: true, Polarity: true,
	})
	faults := sampleFaults(rng, universe, 12)
	for _, nPat := range []int{63, 64, 65, 127, 128, 129} {
		patterns := binaryPatterns(rng, c, nPat)
		runCaptureCase(t, c, faults, patterns, true)
	}
}

// TestStuckAtSignatureCapture proves the line-fault sweep against the
// same oracle: fault dropping is disabled while capturing, yet the
// detections match an uncaptured run.
func TestStuckAtSignatureCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(5015))
	cases := 12
	if testing.Short() {
		cases = 4
	}
	for ci := 0; ci < cases; ci++ {
		c := bench.Random(rng.Int63(), 3+rng.Intn(6), 1+rng.Intn(20))
		universe := core.Universe(c, core.ClassicalOnly())
		faults := sampleFaults(rng, universe, 24)
		patterns := binaryPatterns(rng, c, 1+rng.Intn(140))

		plain := faultsim.New(c)
		want := plain.RunStuckAt(faults, patterns)

		s := faultsim.New(c)
		sig := faultsim.NewSignatureCapture(len(faults), len(patterns))
		s.Signatures = sig
		got := s.RunStuckAt(faults, patterns)
		checkDetections(t, "stuck_at", want, got)

		prog := captureProgram(c, patterns, false)
		for i := range faults {
			f := faults[i]
			wantOut, _ := oracleBits(atpg.ExecuteAll(prog, &f), len(patterns))
			if !wordsEqual(sig.Out(i), wantOut) {
				t.Errorf("fault %v: out signature %x, oracle %x", f, sig.Out(i), wantOut)
			}
		}
	}
}

// TestParallelSignatureCapture proves the worker-pool drivers write the
// same bitsets as the serial path (disjoint fault rows, no locking).
func TestParallelSignatureCapture(t *testing.T) {
	rng := rand.New(rand.NewSource(411))
	c := bench.Random(rng.Int63(), 6, 16)
	universe := core.Universe(c, core.UniverseOptions{
		ChannelBreak: true, StuckOn: true, Polarity: true,
	})
	patterns := binaryPatterns(rng, c, 48)
	for _, en := range captureEngines {
		serial := faultsim.New(c)
		serial.Engine = en.engine
		serial.LaneWords = en.laneWords
		wantSig := faultsim.NewSignatureCapture(len(universe), len(patterns))
		serial.Signatures = wantSig
		want, err := serial.RunTransistor(universe, patterns, true)
		if err != nil {
			t.Fatalf("%s serial: %v", en.name, err)
		}

		par := faultsim.New(c)
		par.Engine = en.engine
		par.LaneWords = en.laneWords
		sig := faultsim.NewSignatureCapture(len(universe), len(patterns))
		par.Signatures = sig
		got, err := par.RunTransistorParallel(context.Background(), universe, patterns, true, 4)
		if err != nil {
			t.Fatalf("%s parallel: %v", en.name, err)
		}
		checkDetections(t, en.name, want, got)
		for i := range universe {
			if !wordsEqual(sig.Out(i), wantSig.Out(i)) || !wordsEqual(sig.Leak(i), wantSig.Leak(i)) {
				t.Errorf("%s: fault %v: parallel capture diverges from serial", en.name, universe[i])
			}
		}
	}
}
