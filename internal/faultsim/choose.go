package faultsim

// ChooseEngine picks between the compiled scalar engine and the packed
// lane-block engine for one campaign, from the three quantities that
// drive their cost models. The compiled engine pays one scalar cone
// pass per fault per pattern but drops each fault at its first
// detection; the packed engine pays one block pass per fault per 64w
// patterns (amortised further by fault packing) but always sweeps whole
// lane blocks. Packed therefore wins once the faults × patterns product
// is large enough to amortise its per-block overhead, and compiled wins
// the small and skinny campaigns. The constants are calibrated against
// the recorded BenchmarkFaultSimScaling rows in BENCH_faultsim.json
// (see docs/benchmarks.md for the recalibration procedure).
//
// The heuristic is a pure function so the service and CLIs can report
// the choice without perturbing the auto-choice counters.
func ChooseEngine(nGates, nFaults, nPatterns int) Engine {
	// Degenerate campaigns: the per-block fixed costs (packing the
	// baseline, seeding) dominate, and the compiled engine's first-hit
	// early exit is unbeatable.
	if nFaults < 4 || nPatterns <= 8 {
		return EngineCompiled
	}
	// With many patterns per fault the packed engine covers 64w of them
	// per pass; with few patterns it packs several faults per pass
	// instead. Either way its advantage scales with the work product,
	// while the compiled engine's early exit saves at most the pattern
	// axis. The gate count enters because bigger circuits make each
	// packed pass cover proportionally more scalar work per word.
	work := nFaults * nPatterns
	if nPatterns >= 32 && work >= 1024 {
		return EnginePacked
	}
	if work >= 4096 && nGates <= 2048 {
		return EnginePacked
	}
	return EngineCompiled
}

// resolveEngine maps the simulator's configured engine to the one a
// campaign will actually run, counting auto choices for /metrics. Every
// campaign entry point resolves exactly once.
func (s *Simulator) resolveEngine(nFaults, nPatterns int) Engine {
	if s.Engine != EngineAuto {
		return s.Engine
	}
	e := ChooseEngine(len(s.C.Gates), nFaults, nPatterns)
	if e == EnginePacked {
		engineStats.autoChosenPacked.Add(1)
	} else {
		engineStats.autoChosenCompiled.Add(1)
	}
	return e
}
