// Compiled transistor-fault engine: per-fault ternary behaviour LUTs
// (built once from the switch-level solver through core.GateBehavior)
// plus cone-restricted, event-driven faulty evaluation over the
// levelized compiled circuit. It is defined to be bit-identical to the
// serial EvalHooked reference engine, which stays available as the
// differential-testing oracle (Engine = EngineReference).
package faultsim

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cpsinw/internal/core"
	"cpsinw/internal/gates"
	"cpsinw/internal/logic"
)

// Engine selects a transistor-fault simulation implementation.
type Engine int

const (
	// EngineCompiled is the default: compiled gate LUTs, memoized good
	// baselines and cone-restricted event-driven faulty propagation.
	EngineCompiled Engine = iota
	// EngineReference is the original serial hooked engine, kept as the
	// oracle the compiled and packed engines are differentially tested
	// against.
	EngineReference
	// EnginePacked is the bit-parallel PPSFP engine: N×64 ternary
	// patterns per lane block, packed gate evaluation and event-driven
	// packed propagation, with fault packing into spare lanes.
	EnginePacked
	// EngineAuto resolves to EngineCompiled or EnginePacked per campaign
	// through the ChooseEngine heuristic over gates × faults × patterns
	// (it never picks the reference oracle).
	EngineAuto
)

// String names the engine for reports and metrics.
func (e Engine) String() string {
	switch e {
	case EngineReference:
		return "reference"
	case EnginePacked:
		return "packed"
	case EngineAuto:
		return "auto"
	}
	return "compiled"
}

// ParseEngine resolves an engine name; the empty string selects the
// default compiled engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "compiled":
		return EngineCompiled, nil
	case "reference":
		return EngineReference, nil
	case "packed":
		return EnginePacked, nil
	case "auto":
		return EngineAuto, nil
	}
	return EngineCompiled, fmt.Errorf("faultsim: unknown engine %q (have: auto, compiled, packed, reference)", s)
}

// EngineStats is a snapshot of the package-wide engine counters,
// surfaced by the service /metrics endpoint to quantify what the
// compiled engine saves over full re-simulation.
type EngineStats struct {
	CompiledFaultRuns   uint64 // fault x campaign units through the compiled engine
	ReferenceFaultRuns  uint64 // same through the reference engine
	ConeGateEvals       uint64 // gate LUT lookups the cone engine performed
	GateEvalsSkipped    uint64 // gate evaluations avoided vs full re-simulation
	FaultLUTsCompiled   uint64 // distinct per-fault behaviour tables built
	TwoPatternRuns      uint64 // fault x pair units through the compiled/packed engines
	PackedFaultRuns     uint64 // fault x campaign units through the packed engine
	PackedGateEvals     uint64 // packed gate evaluations (each covers up to 64 lanes)
	PackedBridgeRuns    uint64 // bridge x campaign units through the packed engine
	CompiledBridgeRuns  uint64 // bridge x campaign units through the compiled engine
	ReferenceGateEvals  uint64 // hooked-map gate evaluations by the reference oracle
	ReferenceBridgeRuns uint64 // bridge x campaign units through the reference oracle
	AutoChosenCompiled  uint64 // campaigns EngineAuto resolved to the compiled engine
	AutoChosenPacked    uint64 // campaigns EngineAuto resolved to the packed engine
}

var engineStats struct {
	compiledFaultRuns   atomic.Uint64
	referenceFaultRuns  atomic.Uint64
	coneGateEvals       atomic.Uint64
	gateEvalsSkipped    atomic.Uint64
	faultLUTsCompiled   atomic.Uint64
	twoPatternRuns      atomic.Uint64
	packedFaultRuns     atomic.Uint64
	packedGateEvals     atomic.Uint64
	packedBridgeRuns    atomic.Uint64
	compiledBridgeRuns  atomic.Uint64
	referenceGateEvals  atomic.Uint64
	referenceBridgeRuns atomic.Uint64
	autoChosenCompiled  atomic.Uint64
	autoChosenPacked    atomic.Uint64
}

// ReadEngineStats snapshots the engine counters.
func ReadEngineStats() EngineStats {
	return EngineStats{
		CompiledFaultRuns:   engineStats.compiledFaultRuns.Load(),
		ReferenceFaultRuns:  engineStats.referenceFaultRuns.Load(),
		ConeGateEvals:       engineStats.coneGateEvals.Load(),
		GateEvalsSkipped:    engineStats.gateEvalsSkipped.Load(),
		FaultLUTsCompiled:   engineStats.faultLUTsCompiled.Load(),
		TwoPatternRuns:      engineStats.twoPatternRuns.Load(),
		PackedFaultRuns:     engineStats.packedFaultRuns.Load(),
		PackedGateEvals:     engineStats.packedGateEvals.Load(),
		PackedBridgeRuns:    engineStats.packedBridgeRuns.Load(),
		CompiledBridgeRuns:  engineStats.compiledBridgeRuns.Load(),
		ReferenceGateEvals:  engineStats.referenceGateEvals.Load(),
		ReferenceBridgeRuns: engineStats.referenceBridgeRuns.Load(),
		AutoChosenCompiled:  engineStats.autoChosenCompiled.Load(),
		AutoChosenPacked:    engineStats.autoChosenPacked.Load(),
	}
}

// --- per-fault compiled behaviour tables ---

// faultLUT is one transistor fault compiled over the gate's ternary
// input space: out mirrors the transistorHooks gate override (X on any
// undefined input, X on floating rows, the behaviour row otherwise) and
// leak carries the IDDQ signature of fully-defined vectors.
type faultLUT struct {
	out  []logic.V
	leak []bool
}

type faultLUTKey struct {
	kind gates.Kind
	tr   string
	tf   logic.TFault
}

var faultLUTCache sync.Map // faultLUTKey -> *faultLUT

// compiledFaultLUT builds (and caches) the ternary table of one
// transistor fault inside one gate kind.
func compiledFaultLUT(kind gates.Kind, transistor string, tf logic.TFault) (*faultLUT, error) {
	key := faultLUTKey{kind, transistor, tf}
	if v, ok := faultLUTCache.Load(key); ok {
		return v.(*faultLUT), nil
	}
	beh, err := core.GateBehavior(kind, transistor, tf)
	if err != nil {
		return nil, err
	}
	n := gates.Get(kind).NIn
	lut := &faultLUT{out: make([]logic.V, logic.Pow3(n)), leak: make([]bool, logic.Pow3(n))}
	for idx := range lut.out {
		in := logic.TernaryVector(idx, n)
		vec, defined := 0, true
		for i, v := range in {
			b, ok := v.Bool()
			if !ok {
				defined = false
				break
			}
			if b {
				vec |= 1 << uint(i)
			}
		}
		if !defined {
			lut.out[idx] = logic.LX // X at a faulty gate input: give up precision
			continue
		}
		row := beh.Rows[vec]
		lut.leak[idx] = row.Leak
		if row.Floating {
			lut.out[idx] = logic.LX
		} else {
			lut.out[idx] = row.Out
		}
	}
	actual, loaded := faultLUTCache.LoadOrStore(key, lut)
	if !loaded {
		engineStats.faultLUTsCompiled.Add(1)
	}
	return actual.(*faultLUT), nil
}

// openLUT is a channel-break fault compiled as a Mealy machine over the
// gate's internal charge state: state s (radix-3 over the solver's node
// labels, sorted) and ternary input vector t map to the floating-aware
// output and the successor state. The all-X state is the nil-prev
// initial state of the switch-level solver.
type openLUT struct {
	nodes []string
	nIn   int
	nVec  int
	out   []logic.V // [state*nVec + t]
	next  []int32
	init  int32
}

type openLUTKey struct {
	kind gates.Kind
	tr   string
}

var openLUTCache sync.Map // openLUTKey -> *openLUT

// compiledOpenLUT builds (and caches) the stuck-open transition table.
// Unknown transistor names compile to the fault-free machine, matching
// the reference engine's EvalSwitch semantics.
func compiledOpenLUT(kind gates.Kind, transistor string) *openLUT {
	key := openLUTKey{kind, transistor}
	if v, ok := openLUTCache.Load(key); ok {
		return v.(*openLUT)
	}
	spec := gates.Get(kind)
	faults := map[string]logic.TFault{transistor: logic.TFaultOpen}

	// The solver's node set is fixed by the spec; probe it once.
	probe := logic.EvalSwitch(spec, make([]logic.V, spec.NIn), faults, nil)
	nodes := make([]string, 0, len(probe.Nodes))
	for label := range probe.Nodes {
		nodes = append(nodes, label)
	}
	sort.Strings(nodes)

	nVec := logic.Pow3(spec.NIn)
	nStates := 1
	for range nodes {
		nStates *= 3
	}
	lut := &openLUT{
		nodes: nodes,
		nIn:   spec.NIn,
		nVec:  nVec,
		out:   make([]logic.V, nStates*nVec),
		next:  make([]int32, nStates*nVec),
		init:  int32(nStates - 1), // all digits LX
	}
	encode := func(vals map[string]logic.V) int32 {
		st, mul := 0, 1
		for _, label := range nodes {
			st += int(vals[label]) * mul
			mul *= 3
		}
		return int32(st)
	}
	prev := map[string]logic.V{}
	for st := 0; st < nStates; st++ {
		rem := st
		for _, label := range nodes {
			prev[label] = logic.V(rem % 3)
			rem /= 3
		}
		for t := 0; t < nVec; t++ {
			res := logic.EvalSwitch(spec, logic.TernaryVector(t, spec.NIn), faults, prev)
			lut.out[st*nVec+t] = res.Out
			lut.next[st*nVec+t] = encode(res.Nodes)
		}
	}
	actual, loaded := openLUTCache.LoadOrStore(key, lut)
	if !loaded {
		engineStats.faultLUTsCompiled.Add(1)
	}
	return actual.(*openLUT)
}

// --- cone-restricted event-driven propagation ---

// coneScratch is the reusable per-worker state of the event-driven
// faulty evaluation: epoch-stamped faulty net values over the good
// baseline and a topological-position min-heap of pending gates.
type coneScratch struct {
	cc    *logic.CompiledCircuit
	fval  []logic.V // faulty value per net, valid when stamp == epoch
	stamp []int64
	gq    []int64 // gate queued-marker epoch
	epoch int64
	heap  []int // pending gate indices, min-heap by topological position

	// Local eval counters, flushed to the global atomics once per fault
	// (not per pattern) to keep cross-worker cache-line contention off
	// the hot path. life accumulates the flushed evals so that
	// life + evals is a monotone lifetime total the progress sinks can
	// difference per fault without racing the flush.
	evals, skipped, life uint64
}

// lifetimeEvals is the monotone eval count of this scratch (flushed
// plus pending), used by drivers to attribute per-fault deltas.
func (sc *coneScratch) lifetimeEvals() uint64 { return sc.life + sc.evals }

func newConeScratch(cc *logic.CompiledCircuit) *coneScratch {
	return &coneScratch{
		cc:    cc,
		fval:  make([]logic.V, cc.NumNets()),
		stamp: make([]int64, cc.NumNets()),
		gq:    make([]int64, len(cc.C.Gates)),
	}
}

// coneScratchOf hands out a pooled cone scratch, mirroring
// packedScratchOf for the compiled engine.
func (s *Simulator) coneScratchOf() *coneScratch {
	if v := s.coneScratchPool.Get(); v != nil {
		return v.(*coneScratch)
	}
	return newConeScratch(s.compiled())
}

func (s *Simulator) putConeScratch(sc *coneScratch) {
	sc.flushStats()
	s.coneScratchPool.Put(sc)
}

func (sc *coneScratch) push(gi int) {
	if sc.gq[gi] == sc.epoch {
		return
	}
	sc.gq[gi] = sc.epoch
	sc.heap = append(sc.heap, gi)
	pos := sc.cc.Pos
	i := len(sc.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if pos[sc.heap[parent]] <= pos[sc.heap[i]] {
			break
		}
		sc.heap[parent], sc.heap[i] = sc.heap[i], sc.heap[parent]
		i = parent
	}
}

func (sc *coneScratch) pop() int {
	top := sc.heap[0]
	last := len(sc.heap) - 1
	sc.heap[0] = sc.heap[last]
	sc.heap = sc.heap[:last]
	pos := sc.cc.Pos
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(sc.heap) && pos[sc.heap[l]] < pos[sc.heap[smallest]] {
			smallest = l
		}
		if r < len(sc.heap) && pos[sc.heap[r]] < pos[sc.heap[smallest]] {
			smallest = r
		}
		if smallest == i {
			break
		}
		sc.heap[i], sc.heap[smallest] = sc.heap[smallest], sc.heap[i]
		i = smallest
	}
	return top
}

// definiteDiff mirrors outputsDiffer for one net: both values defined
// and different (X never counts).
func definiteDiff(a, b logic.V) bool {
	av, aok := a.Bool()
	bv, bok := b.Bool()
	return aok && bok && av != bv
}

// propagateCone seeds gate gi's faulty output and propagates only where
// a gate's output actually changes versus the memoized good baseline,
// in topological order. It reports whether a primary output shows a
// definite good/faulty difference, stopping at the first one (the
// fault is dropped the moment detection fires).
func (sc *coneScratch) propagateCone(gi int, fout logic.V, base []logic.V) bool {
	cc := sc.cc
	total := uint64(len(cc.C.Gates))
	onet := cc.GateOut[gi]
	if fout == base[onet] {
		// The fault does not excite under this pattern: the whole
		// downstream re-simulation of the reference engine is skipped.
		sc.skipped += total - 1
		sc.evals++
		return false
	}
	sc.epoch++
	sc.heap = sc.heap[:0]
	evals := uint64(1)
	sc.fval[onet], sc.stamp[onet] = fout, sc.epoch
	detected := cc.IsOutput[onet] && definiteDiff(base[onet], fout)
	if !detected {
		for _, g := range cc.Fanouts[onet] {
			sc.push(g)
		}
		for len(sc.heap) > 0 {
			g := sc.pop()
			evals++
			idx := 0
			for k, nid := range cc.Fanin[g] {
				v := base[nid]
				if sc.stamp[nid] == sc.epoch {
					v = sc.fval[nid]
				}
				idx += int(v) * logic.Pow3(k)
			}
			nv := cc.LUT[g][idx]
			on := cc.GateOut[g]
			if nv == base[on] {
				continue
			}
			sc.fval[on], sc.stamp[on] = nv, sc.epoch
			if cc.IsOutput[on] && definiteDiff(base[on], nv) {
				detected = true
				break
			}
			for _, fg := range cc.Fanouts[on] {
				sc.push(fg)
			}
		}
	}
	sc.evals += evals
	sc.skipped += total - evals
	return detected
}

// flushStats publishes the accumulated local counters.
func (sc *coneScratch) flushStats() {
	if sc.evals > 0 {
		engineStats.coneGateEvals.Add(sc.evals)
		sc.life += sc.evals
		sc.evals = 0
	}
	if sc.skipped > 0 {
		engineStats.gateEvalsSkipped.Add(sc.skipped)
		sc.skipped = 0
	}
}

// --- compiled campaign drivers ---

// compiled returns the lazily-built compiled form of the circuit.
func (s *Simulator) compiled() *logic.CompiledCircuit {
	s.ccOnce.Do(func() { s.cc = s.C.Compile() })
	return s.cc
}

// EnsureCompiled forces the lazy circuit compilation now, so callers
// that trace campaign stages can time it as its own step instead of
// folding it into the first simulation call. It is a no-op for work
// the reference engine will run (which never compiles) and when the
// circuit is already compiled.
func (s *Simulator) EnsureCompiled() {
	if s.Engine != EngineReference {
		s.compiled()
	}
}

// evalBaselines memoizes the good-circuit dense responses per pattern.
func (s *Simulator) evalBaselines(patterns []Pattern) [][]logic.V {
	cc := s.compiled()
	base := make([][]logic.V, len(patterns))
	for k, p := range patterns {
		base[k] = cc.EvalInto(map[string]logic.V(p), make([]logic.V, cc.NumNets()))
	}
	return base
}

// simulateTransistorFaultCompiled is the compiled counterpart of
// simulateTransistorFault: identical Detection results, computed by LUT
// lookup plus cone propagation against the shared baselines. A non-nil
// sig disables the early exit and records fault si's full signature
// (cone propagation still short-circuits within a pattern — the
// signature is per-pattern boolean).
func (s *Simulator) simulateTransistorFaultCompiled(f core.Fault, si int, patterns []Pattern, base [][]logic.V, sc *coneScratch, useIDDQ bool, sig *SignatureCapture) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if f.Kind.IsLineFault() {
		return d, nil
	}
	tf, ok := f.Kind.TFault()
	if !ok {
		return d, nil // analog-only faults are out of scope here
	}
	if len(patterns) == 0 {
		return d, nil
	}
	gi, ok := s.gateIdx[f.Gate]
	if !ok {
		return d, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
	}
	lut, err := compiledFaultLUT(s.C.Gates[gi].Kind, f.Transistor, tf)
	if err != nil {
		return d, err
	}
	engineStats.compiledFaultRuns.Add(1)
	defer sc.flushStats()
	cc := sc.cc
	for k := range patterns {
		idx := cc.GateInputIndex(gi, base[k])
		if sig == nil {
			if useIDDQ && lut.leak[idx] {
				d.Method, d.Pattern = ByIDDQ, k
				return d, nil
			}
			if sc.propagateCone(gi, lut.out[idx], base[k]) {
				d.Method, d.Pattern = ByOutput, k
				return d, nil
			}
			continue
		}
		if useIDDQ && lut.leak[idx] {
			sig.setLeak(si, k)
			if !d.Detected() {
				d.Method, d.Pattern = ByIDDQ, k
			}
		}
		if sc.propagateCone(gi, lut.out[idx], base[k]) {
			sig.setOut(si, k)
			if !d.Detected() {
				d.Method, d.Pattern = ByOutput, k
			}
		}
	}
	return d, nil
}

// runTransistorCompiled is the serial compiled campaign driver.
func (s *Simulator) runTransistorCompiled(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	sink := s.progressSink("transistor", len(faults))
	sig := s.Signatures
	if sig != nil {
		if err := sig.check(len(faults), len(patterns)); err != nil {
			return nil, err
		}
	}
	base := s.evalBaselines(patterns)
	sc := s.coneScratchOf()
	defer s.putConeScratch(sc)
	sink.add(0, 0, 0, uint64(len(patterns))*uint64(len(s.C.Gates))) // baseline evals
	out := make([]Detection, len(faults))
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		before := sc.lifetimeEvals()
		d, err := s.simulateTransistorFaultCompiled(f, i, patterns, base, sc, useIDDQ, sig)
		if err != nil {
			return nil, err
		}
		out[i] = d
		sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(f)), sc.lifetimeEvals()-before)
	}
	return out, nil
}

// b2i is the progress-delta helper: true -> 1.
func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// runTwoPatternCompiled replays pattern pairs through the stuck-open
// transition LUTs. The faulty gate's inputs sit upstream of the fault,
// so its charge-state trajectory is a pure function of the good
// baselines, and only the test-pattern cone needs propagation.
// Cancellation is checked between faults; progress is reported per
// fault on the "two_pattern" stage.
func (s *Simulator) runTwoPatternCompiled(ctx context.Context, faults []core.Fault, pairs [][2]Pattern) ([]Detection, error) {
	sink := s.progressSink("two_pattern", len(faults))
	out := make([]Detection, len(faults))
	hasOpen := false
	for i, f := range faults {
		out[i] = Detection{Fault: f, Pattern: -1}
		if tf, ok := f.Kind.TFault(); ok && tf == logic.TFaultOpen {
			hasOpen = true
		}
	}
	if !hasOpen {
		sink.add(len(faults), 0, len(faults), 0)
		return out, nil // nothing to simulate: skip the baseline evals
	}
	cc := s.compiled()
	base0 := make([][]logic.V, len(pairs))
	base1 := make([][]logic.V, len(pairs))
	for k, pair := range pairs {
		base0[k] = cc.EvalInto(map[string]logic.V(pair[0]), make([]logic.V, cc.NumNets()))
		base1[k] = cc.EvalInto(map[string]logic.V(pair[1]), make([]logic.V, cc.NumNets()))
	}
	sink.add(0, 0, 0, uint64(2*len(pairs))*uint64(len(s.C.Gates))) // baseline evals
	sc := s.coneScratchOf()
	defer s.putConeScratch(sc)
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		tf, ok := f.Kind.TFault()
		if !ok || tf != logic.TFaultOpen {
			sink.add(1, 0, 1, 0)
			continue
		}
		gi, ok := s.gateIdx[f.Gate]
		if !ok {
			return nil, fmt.Errorf("faultsim: unknown gate %q", f.Gate)
		}
		lut := compiledOpenLUT(s.C.Gates[gi].Kind, f.Transistor)
		runs := uint64(0)
		before := sc.lifetimeEvals()
		for k := range pairs {
			runs++
			st := lut.next[int(lut.init)*lut.nVec+cc.GateInputIndex(gi, base0[k])]
			fout := lut.out[int(st)*lut.nVec+cc.GateInputIndex(gi, base1[k])]
			if sc.propagateCone(gi, fout, base1[k]) {
				out[i].Method = ByTwoPattern
				out[i].Pattern = k
				break
			}
		}
		engineStats.twoPatternRuns.Add(runs)
		sink.add(1, b2i(out[i].Detected()), 0, sc.lifetimeEvals()-before)
	}
	return out, nil
}
