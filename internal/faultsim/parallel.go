package faultsim

import (
	"runtime"
	"sync"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// simulateTransistorFault runs one transistor fault against the pattern
// set, given the precomputed good-circuit responses. The hooks are built
// fresh per call, so concurrent invocations are independent.
func (s *Simulator) simulateTransistorFault(f core.Fault, patterns []Pattern, goods []map[string]logic.V, useIDDQ bool) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if f.Kind.IsLineFault() {
		return d, nil
	}
	if _, ok := f.Kind.TFault(); !ok {
		return d, nil // analog-only faults are out of scope here
	}
	for k, p := range patterns {
		leak := false
		hooks, err := s.transistorHooks(f, &leak)
		if err != nil {
			return d, err
		}
		faulty := s.C.EvalHooked(map[string]logic.V(p), hooks)
		if useIDDQ && leak {
			d.Method = ByIDDQ
			d.Pattern = k
			return d, nil
		}
		if s.outputsDiffer(goods[k], faulty) {
			d.Method = ByOutput
			d.Pattern = k
			return d, nil
		}
	}
	return d, nil
}

// RunTransistorParallel is RunTransistor with the per-fault work spread
// over a goroutine pool: each fault needs its own hooked evaluation, so
// the fault axis is embarrassingly parallel, and the good-circuit
// responses are computed once and shared read-only.
func (s *Simulator) RunTransistorParallel(faults []core.Fault, patterns []Pattern, useIDDQ bool, workers int) ([]Detection, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(faults) < 2 {
		return s.RunTransistor(faults, patterns, useIDDQ)
	}

	goods := make([]map[string]logic.V, len(patterns))
	for k, p := range patterns {
		goods[k] = s.C.Eval(map[string]logic.V(p))
	}

	out := make([]Detection, len(faults))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				d, err := s.simulateTransistorFault(faults[i], patterns, goods, useIDDQ)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = d
			}
		}()
	}
	for i := range faults {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
