package faultsim

import (
	"context"
	"runtime"
	"sync"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// simulateTransistorFault runs one transistor fault against the pattern
// set, given the precomputed good-circuit responses. The hooks are built
// fresh per call, so concurrent invocations are independent.
func (s *Simulator) simulateTransistorFault(f core.Fault, patterns []Pattern, goods []map[string]logic.V, useIDDQ bool) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if f.Kind.IsLineFault() {
		return d, nil
	}
	if _, ok := f.Kind.TFault(); !ok {
		return d, nil // analog-only faults are out of scope here
	}
	engineStats.referenceFaultRuns.Add(1)
	nGates := uint64(len(s.C.Gates))
	for k, p := range patterns {
		leak := false
		hooks, err := s.transistorHooks(f, &leak)
		if err != nil {
			return d, err
		}
		faulty := s.C.EvalHooked(map[string]logic.V(p), hooks)
		engineStats.referenceGateEvals.Add(nGates)
		if useIDDQ && leak {
			d.Method = ByIDDQ
			d.Pattern = k
			return d, nil
		}
		if s.outputsDiffer(goods[k], faulty) {
			d.Method = ByOutput
			d.Pattern = k
			return d, nil
		}
	}
	return d, nil
}

// referenceFaultEvals reconstructs the hooked gate evaluations one
// reference fault run performed: one full-circuit pass per swept
// pattern, stopping at the detecting pattern.
func (s *Simulator) referenceFaultEvals(f core.Fault, d Detection, nPatterns int) uint64 {
	if !transistorSimulable(f) {
		return 0
	}
	swept := nPatterns
	if d.Detected() {
		swept = d.Pattern + 1
	}
	return uint64(swept) * uint64(len(s.C.Gates))
}

// runTransistorSerial is the context-aware serial engine behind both
// RunTransistor and the single-worker parallel fallback. Cancellation is
// checked between faults: a fault's pattern sweep is the unit of work.
func (s *Simulator) runTransistorSerial(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	sink := s.progressSink("transistor", len(faults))
	out := make([]Detection, len(faults))
	goods := make([]map[string]logic.V, len(patterns))
	for k, p := range patterns {
		goods[k] = s.C.Eval(map[string]logic.V(p))
	}
	// Baseline (good-circuit) evals count toward campaign progress but
	// not the per-engine faulty-evaluation counters, mirroring the
	// compiled and packed engines.
	sink.add(0, 0, 0, uint64(len(patterns))*uint64(len(s.C.Gates)))
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := s.simulateTransistorFault(f, patterns, goods, useIDDQ)
		if err != nil {
			return nil, err
		}
		out[i] = d
		sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(f)), s.referenceFaultEvals(f, d, len(patterns)))
	}
	return out, nil
}

// RunTransistorParallel is RunTransistor with the per-fault work spread
// over a goroutine pool: each fault needs its own hooked evaluation, so
// the fault axis is embarrassingly parallel, and the good-circuit
// responses are computed once and shared read-only. The pool never
// exceeds len(faults) workers, and the context cancels in-flight
// campaigns between faults.
func (s *Simulator) RunTransistorParallel(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool, workers int) ([]Detection, error) {
	if len(faults) == 0 {
		return []Detection{}, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers == 1 || len(faults) < 2 {
		switch s.Engine {
		case EngineReference:
			return s.runTransistorSerial(ctx, faults, patterns, useIDDQ)
		case EnginePacked:
			return s.runTransistorPacked(ctx, faults, patterns, useIDDQ)
		}
		return s.runTransistorCompiled(ctx, faults, patterns, useIDDQ)
	}

	// Good-circuit responses are computed once and shared read-only:
	// hooked maps for the reference engine, dense baselines for the
	// compiled engine, packed chunk planes for the packed one (each
	// worker carries its own scratch).
	sink := s.progressSink("transistor", len(faults))
	var goods []map[string]logic.V
	var base [][]logic.V
	var packedBases []packedBase
	baseEvals := uint64(len(patterns)) * uint64(len(s.C.Gates))
	switch s.Engine {
	case EngineReference:
		goods = make([]map[string]logic.V, len(patterns))
		for k, p := range patterns {
			goods[k] = s.C.Eval(map[string]logic.V(p))
		}
	case EnginePacked:
		packedBases = s.packedBaselines(patterns)
		baseEvals = uint64(len(packedBases)) * uint64(len(s.C.Gates))
	default:
		base = s.evalBaselines(patterns)
	}
	sink.add(0, 0, 0, baseEvals)

	out := make([]Detection, len(faults))
	jobs := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc *coneScratch
			var psc *packedScratch
			switch s.Engine {
			case EngineReference:
			case EnginePacked:
				psc = s.packedScratchOf()
			default:
				sc = newConeScratch(s.compiled())
			}
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain without working once canceled
				}
				var d Detection
				var err error
				var evals uint64
				switch s.Engine {
				case EngineReference:
					d, err = s.simulateTransistorFault(faults[i], patterns, goods, useIDDQ)
					evals = s.referenceFaultEvals(faults[i], d, len(patterns))
				case EnginePacked:
					before := psc.lifetimeEvals()
					d, err = s.simulateTransistorFaultPacked(faults[i], packedBases, psc, useIDDQ)
					evals = psc.lifetimeEvals() - before
				default:
					before := sc.lifetimeEvals()
					d, err = s.simulateTransistorFaultCompiled(faults[i], patterns, base, sc, useIDDQ)
					evals = sc.lifetimeEvals() - before
				}
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = d
				sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(faults[i])), evals)
			}
			if psc != nil {
				s.putPackedScratch(psc)
			}
		}()
	}
dispatch:
	for i := range faults {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
