package faultsim

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"cpsinw/internal/core"
	"cpsinw/internal/logic"
)

// simulateTransistorFault runs one transistor fault against the pattern
// set, given the precomputed good-circuit responses. The hooks are built
// fresh per call, so concurrent invocations are independent. A non-nil
// sig disables the early exit and records fault si's full signature;
// the Detection is then derived with the same per-pattern observation
// order (leak before output compare, earliest pattern wins).
func (s *Simulator) simulateTransistorFault(f core.Fault, patterns []Pattern, goods []map[string]logic.V, useIDDQ bool, sig *SignatureCapture, si int) (Detection, error) {
	d := Detection{Fault: f, Pattern: -1}
	if f.Kind.IsLineFault() {
		return d, nil
	}
	if _, ok := f.Kind.TFault(); !ok {
		return d, nil // analog-only faults are out of scope here
	}
	engineStats.referenceFaultRuns.Add(1)
	nGates := uint64(len(s.C.Gates))
	for k, p := range patterns {
		leak := false
		hooks, err := s.transistorHooks(f, &leak)
		if err != nil {
			return d, err
		}
		faulty := s.C.EvalHooked(map[string]logic.V(p), hooks)
		engineStats.referenceGateEvals.Add(nGates)
		if sig == nil {
			if useIDDQ && leak {
				d.Method = ByIDDQ
				d.Pattern = k
				return d, nil
			}
			if s.outputsDiffer(goods[k], faulty) {
				d.Method = ByOutput
				d.Pattern = k
				return d, nil
			}
			continue
		}
		if useIDDQ && leak {
			sig.setLeak(si, k)
			if !d.Detected() {
				d.Method, d.Pattern = ByIDDQ, k
			}
		}
		if s.outputsDiffer(goods[k], faulty) {
			sig.setOut(si, k)
			if !d.Detected() {
				d.Method, d.Pattern = ByOutput, k
			}
		}
	}
	return d, nil
}

// referenceFaultEvals reconstructs the hooked gate evaluations one
// reference fault run performed: one full-circuit pass per swept
// pattern, stopping at the detecting pattern (a signature-capturing
// run sweeps every pattern).
func (s *Simulator) referenceFaultEvals(f core.Fault, d Detection, nPatterns int, captured bool) uint64 {
	if !transistorSimulable(f) {
		return 0
	}
	swept := nPatterns
	if d.Detected() && !captured {
		swept = d.Pattern + 1
	}
	return uint64(swept) * uint64(len(s.C.Gates))
}

// runTransistorSerial is the context-aware serial engine behind both
// RunTransistor and the single-worker parallel fallback. Cancellation is
// checked between faults: a fault's pattern sweep is the unit of work.
func (s *Simulator) runTransistorSerial(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool) ([]Detection, error) {
	sink := s.progressSink("transistor", len(faults))
	sig := s.Signatures
	if sig != nil {
		if err := sig.check(len(faults), len(patterns)); err != nil {
			return nil, err
		}
	}
	out := make([]Detection, len(faults))
	goods := make([]map[string]logic.V, len(patterns))
	for k, p := range patterns {
		goods[k] = s.C.Eval(map[string]logic.V(p))
	}
	// Baseline (good-circuit) evals count toward campaign progress but
	// not the per-engine faulty-evaluation counters, mirroring the
	// compiled and packed engines.
	sink.add(0, 0, 0, uint64(len(patterns))*uint64(len(s.C.Gates)))
	for i, f := range faults {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d, err := s.simulateTransistorFault(f, patterns, goods, useIDDQ, sig, i)
		if err != nil {
			return nil, err
		}
		out[i] = d
		sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(f)), s.referenceFaultEvals(f, d, len(patterns), sig != nil))
	}
	return out, nil
}

// faultOrder returns the fault indices sorted by the topological
// position of each fault's gate, so contiguous worker ranges share cone
// locality (downstream propagation repeatedly touches the same region)
// and fault-packed batches group physically close faults. The reference
// engine keeps list order: it has no compiled positions and must not
// trigger a compile.
func (s *Simulator) faultOrder(faults []core.Fault, engine Engine) []int {
	ord := make([]int, len(faults))
	for i := range ord {
		ord[i] = i
	}
	if engine == EngineReference {
		return ord
	}
	cc := s.compiled()
	key := make([]int, len(faults))
	for i, f := range faults {
		if gi, ok := s.gateIdx[f.Gate]; ok {
			key[i] = cc.Pos[gi]
		} else {
			key[i] = len(cc.Pos) // unknown gates and line faults sort last, in list order
		}
	}
	sort.SliceStable(ord, func(a, b int) bool { return key[ord[a]] < key[ord[b]] })
	return ord
}

// RunTransistorParallel is RunTransistor with the per-fault work spread
// over a goroutine pool. Work is dispatched as contiguous ranges of the
// cone-locality fault order rather than single striped faults, so each
// worker's scratch stays warm on one region of the circuit and the
// packed engine can fault-pack whole batches inside a range. The pool
// never exceeds len(faults) workers; the context cancels in-flight
// campaigns between faults, and after the first engine error the
// remaining work is drained without simulating.
func (s *Simulator) RunTransistorParallel(ctx context.Context, faults []core.Fault, patterns []Pattern, useIDDQ bool, workers int) ([]Detection, error) {
	if len(faults) == 0 {
		return []Detection{}, ctx.Err()
	}
	engine := s.resolveEngine(len(faults), len(patterns))
	sig := s.Signatures
	if sig != nil {
		if err := sig.check(len(faults), len(patterns)); err != nil {
			return nil, err
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(faults) {
		workers = len(faults)
	}
	if workers == 1 || len(faults) < 2 {
		switch engine {
		case EngineReference:
			return s.runTransistorSerial(ctx, faults, patterns, useIDDQ)
		case EnginePacked:
			return s.runTransistorPacked(ctx, faults, patterns, useIDDQ)
		}
		return s.runTransistorCompiled(ctx, faults, patterns, useIDDQ)
	}

	// Good-circuit responses are computed once and shared read-only:
	// hooked maps for the reference engine, dense baselines for the
	// compiled engine, packed lane blocks for the packed one (each
	// worker carries its own scratch).
	sink := s.progressSink("transistor", len(faults))
	var goods []map[string]logic.V
	var base [][]logic.V
	var pl packedPlan
	baseEvals := uint64(len(patterns)) * uint64(len(s.C.Gates))
	switch engine {
	case EngineReference:
		goods = make([]map[string]logic.V, len(patterns))
		for k, p := range patterns {
			goods[k] = s.C.Eval(map[string]logic.V(p))
		}
	case EnginePacked:
		pl = s.packedPlanFor(faults, patterns)
		baseEvals = pl.baseEvals(len(s.C.Gates))
	default:
		base = s.evalBaselines(patterns)
	}
	sink.add(0, 0, 0, baseEvals)

	ord := s.faultOrder(faults, engine)
	out := make([]Detection, len(faults))
	ranges := make(chan [2]int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	var errSet atomic.Bool
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			errSet.Store(true)
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sc *coneScratch
			var psc *packedScratch
			switch engine {
			case EngineReference:
			case EnginePacked:
				psc = s.packedScratchOf()
				psc.ensure(pl.w)
			default:
				sc = s.coneScratchOf()
			}
			for r := range ranges {
				if ctx.Err() != nil || errSet.Load() {
					continue // drain without working once canceled or failed
				}
				idxs := ord[r[0]:r[1]]
				if engine == EnginePacked && pl.gb != nil {
					if err := s.runPackedGrouped(ctx, faults, idxs, pl.gb, psc, useIDDQ, sig, sink, out); err != nil && ctx.Err() == nil {
						fail(err)
					}
					continue
				}
				for _, i := range idxs {
					if ctx.Err() != nil || errSet.Load() {
						break
					}
					var d Detection
					var err error
					var evals uint64
					switch engine {
					case EngineReference:
						d, err = s.simulateTransistorFault(faults[i], patterns, goods, useIDDQ, sig, i)
						evals = s.referenceFaultEvals(faults[i], d, len(patterns), sig != nil)
					case EnginePacked:
						before := psc.lifetimeEvals()
						d, err = s.simulateTransistorFaultPacked(faults[i], i, pl.bases, psc, useIDDQ, sig)
						evals = psc.lifetimeEvals() - before
					default:
						before := sc.lifetimeEvals()
						d, err = s.simulateTransistorFaultCompiled(faults[i], i, patterns, base, sc, useIDDQ, sig)
						evals = sc.lifetimeEvals() - before
					}
					if err != nil {
						fail(err)
						continue
					}
					out[i] = d
					sink.add(1, b2i(d.Detected()), b2i(!transistorSimulable(faults[i])), evals)
				}
			}
			if psc != nil {
				s.putPackedScratch(psc)
			}
			if sc != nil {
				s.putConeScratch(sc)
			}
		}()
	}
	chunk := (len(faults) + workers*4 - 1) / (workers * 4)
	if chunk < 1 {
		chunk = 1
	}
dispatch:
	for lo := 0; lo < len(faults); lo += chunk {
		select {
		case ranges <- [2]int{lo, min(lo+chunk, len(faults))}:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(ranges)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
